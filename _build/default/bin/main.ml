(* sqp: command-line front end for the reproduction.  Each subcommand
   regenerates one of the paper's figures or experiment tables. *)

open Cmdliner

let dataset_conv =
  let parse = function
    | "U" | "u" | "uniform" -> Ok Sqp_workload.Datagen.Uniform
    | "C" | "c" | "clustered" -> Ok Sqp_workload.Datagen.Clustered
    | "D" | "d" | "diagonal" -> Ok Sqp_workload.Datagen.Diagonal
    | s -> Error (`Msg (Printf.sprintf "unknown dataset %S (use U, C or D)" s))
  in
  let print fmt ds =
    Format.pp_print_string fmt (Sqp_workload.Datagen.dataset_name ds)
  in
  Arg.conv (parse, print)

let dataset_arg =
  Arg.(
    value
    & opt dataset_conv Sqp_workload.Datagen.Uniform
    & info [ "d"; "dataset" ] ~docv:"DATASET"
        ~doc:"Dataset: U (uniform), C (clustered) or D (diagonal).")

let all_datasets_arg =
  Arg.(
    value & flag
    & info [ "all" ] ~doc:"Run for all three datasets (U, C, D).")

let simple name doc f = Cmd.v (Cmd.info name ~doc) Term.(const f $ const ())

let with_dataset name doc f =
  let run dataset all =
    if all then
      List.iter f Sqp_workload.Datagen.[ Uniform; Clustered; Diagonal ]
    else f dataset
  in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ dataset_arg $ all_datasets_arg)

let figures_cmd =
  simple "figures" "Reproduce Figures 1-5 (z order, decomposition, merge)."
    (fun () ->
      Sqp_core.Reports.print_figure1 ();
      Sqp_core.Reports.print_figure2 ();
      Sqp_core.Reports.print_figure3 ();
      Sqp_core.Reports.print_figure4 ();
      Sqp_core.Reports.print_figure5 ())

let figure6_cmd =
  with_dataset "figure6" "Figure 6: page-partition map of the zkd B+-tree."
    (fun ds -> Sqp_core.Reports.print_figure6 ~datasets:[ ds ] ())

let experiment_cmd =
  with_dataset "experiment" "The Section 5.3.2 range-query experiment table."
    Sqp_core.Reports.print_range_experiment

let compare_cmd =
  with_dataset "compare" "zkd B+-tree vs kd tree vs linear scan."
    Sqp_core.Reports.print_structure_comparison

let strategies_cmd =
  with_dataset "strategies" "Search-strategy ablation (merge/lazy/bigmin/scan)."
    Sqp_core.Reports.print_strategy_comparison

let policies_cmd =
  with_dataset "policies" "Buffer-replacement policies under the merge workload."
    Sqp_core.Reports.print_buffer_policies

let partial_match_cmd =
  simple "partial-match" "Partial-match page accesses vs N (predicted N^0.5)."
    Sqp_core.Reports.print_partial_match

let euv_cmd =
  simple "euv" "E(U,V) table: border sensitivity and cyclicity (Section 5.1)."
    Sqp_core.Reports.print_euv_table

let coarsen_cmd =
  simple "coarsen" "The coarsening optimization trade-off (Section 5.1)."
    Sqp_core.Reports.print_coarsening

let proximity_cmd =
  simple "proximity" "Proximity preservation of z order (Section 5.2)."
    Sqp_core.Reports.print_proximity

let join_cmd =
  simple "join" "Spatial join: merge vs nested loop (Section 4)."
    Sqp_core.Reports.print_spatial_join

let overlay_cmd =
  simple "overlay" "Overlay on elements vs grid (Section 6)."
    Sqp_core.Reports.print_overlay_scaling

let ccl_cmd =
  simple "ccl" "Connected component labelling on elements (Section 6)."
    Sqp_core.Reports.print_ccl

let interference_cmd =
  simple "interference" "CAD interference detection (Section 6)."
    Sqp_core.Reports.print_interference

let fill_cmd =
  with_dataset "fill" "Leaf fill-factor ablation (bulk-load occupancy)."
    Sqp_core.Reports.print_fill_factor

let three_d_cmd =
  simple "three-d" "3d range and partial-match experiment (higher-dim follow-up)."
    Sqp_core.Reports.print_3d_experiment

let curves_cmd =
  simple "curves" "Curve-clustering ablation: z vs Hilbert vs row-major."
    Sqp_core.Reports.print_curve_comparison

let object_join_cmd =
  simple "object-join" "Disk-resident spatial join over B+-tree leaf chains."
    Sqp_core.Reports.print_object_join

let all_cmd = simple "all" "Every figure and table, in paper order."
    Sqp_core.Reports.run_all

let () =
  let info =
    Cmd.info "sqp" ~version:"1.0.0"
      ~doc:
        "Reproduction of Orenstein's 'Spatial Query Processing in an \
         Object-Oriented Database System' (SIGMOD 1986)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            figures_cmd; figure6_cmd; experiment_cmd; compare_cmd;
            strategies_cmd; policies_cmd; partial_match_cmd; euv_cmd;
            coarsen_cmd; proximity_cmd; join_cmd; overlay_cmd; ccl_cmd;
            interference_cmd; fill_cmd; three_d_cmd; curves_cmd; object_join_cmd; all_cmd;
          ]))
