(* sqp: command-line front end for the reproduction.  Each subcommand
   regenerates one of the paper's figures or experiment tables. *)

open Cmdliner

let dataset_conv =
  let parse = function
    | "U" | "u" | "uniform" -> Ok Sqp_workload.Datagen.Uniform
    | "C" | "c" | "clustered" -> Ok Sqp_workload.Datagen.Clustered
    | "D" | "d" | "diagonal" -> Ok Sqp_workload.Datagen.Diagonal
    | s -> Error (`Msg (Printf.sprintf "unknown dataset %S (use U, C or D)" s))
  in
  let print fmt ds =
    Format.pp_print_string fmt (Sqp_workload.Datagen.dataset_name ds)
  in
  Arg.conv (parse, print)

let dataset_arg =
  Arg.(
    value
    & opt dataset_conv Sqp_workload.Datagen.Uniform
    & info [ "d"; "dataset" ] ~docv:"DATASET"
        ~doc:"Dataset: U (uniform), C (clustered) or D (diagonal).")

let all_datasets_arg =
  Arg.(
    value & flag
    & info [ "all" ] ~doc:"Run for all three datasets (U, C, D).")

let simple name doc f = Cmd.v (Cmd.info name ~doc) Term.(const f $ const ())

let with_dataset name doc f =
  let run dataset all =
    if all then
      List.iter f Sqp_workload.Datagen.[ Uniform; Clustered; Diagonal ]
    else f dataset
  in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ dataset_arg $ all_datasets_arg)

let figures_cmd =
  simple "figures" "Reproduce Figures 1-5 (z order, decomposition, merge)."
    (fun () ->
      Sqp_core.Reports.print_figure1 ();
      Sqp_core.Reports.print_figure2 ();
      Sqp_core.Reports.print_figure3 ();
      Sqp_core.Reports.print_figure4 ();
      Sqp_core.Reports.print_figure5 ())

let figure6_cmd =
  with_dataset "figure6" "Figure 6: page-partition map of the zkd B+-tree."
    (fun ds -> Sqp_core.Reports.print_figure6 ~datasets:[ ds ] ())

let experiment_cmd =
  with_dataset "experiment" "The Section 5.3.2 range-query experiment table."
    Sqp_core.Reports.print_range_experiment

let compare_cmd =
  with_dataset "compare" "zkd B+-tree vs kd tree vs linear scan."
    Sqp_core.Reports.print_structure_comparison

let strategies_cmd =
  with_dataset "strategies" "Search-strategy ablation (merge/lazy/bigmin/scan)."
    Sqp_core.Reports.print_strategy_comparison

let policies_cmd =
  with_dataset "policies" "Buffer-replacement policies under the merge workload."
    Sqp_core.Reports.print_buffer_policies

let partial_match_cmd =
  simple "partial-match" "Partial-match page accesses vs N (predicted N^0.5)."
    Sqp_core.Reports.print_partial_match

let euv_cmd =
  simple "euv" "E(U,V) table: border sensitivity and cyclicity (Section 5.1)."
    Sqp_core.Reports.print_euv_table

let coarsen_cmd =
  simple "coarsen" "The coarsening optimization trade-off (Section 5.1)."
    Sqp_core.Reports.print_coarsening

let proximity_cmd =
  simple "proximity" "Proximity preservation of z order (Section 5.2)."
    Sqp_core.Reports.print_proximity

let join_cmd =
  simple "join" "Spatial join: merge vs nested loop (Section 4)."
    Sqp_core.Reports.print_spatial_join

let overlay_cmd =
  simple "overlay" "Overlay on elements vs grid (Section 6)."
    Sqp_core.Reports.print_overlay_scaling

let ccl_cmd =
  simple "ccl" "Connected component labelling on elements (Section 6)."
    Sqp_core.Reports.print_ccl

let interference_cmd =
  simple "interference" "CAD interference detection (Section 6)."
    Sqp_core.Reports.print_interference

let fill_cmd =
  with_dataset "fill" "Leaf fill-factor ablation (bulk-load occupancy)."
    Sqp_core.Reports.print_fill_factor

let three_d_cmd =
  simple "three-d" "3d range and partial-match experiment (higher-dim follow-up)."
    Sqp_core.Reports.print_3d_experiment

let curves_cmd =
  simple "curves" "Curve-clustering ablation: z vs Hilbert vs row-major."
    Sqp_core.Reports.print_curve_comparison

let object_join_cmd =
  simple "object-join" "Disk-resident spatial join over B+-tree leaf chains."
    Sqp_core.Reports.print_object_join

let all_cmd = simple "all" "Every figure and table, in paper order."
    Sqp_core.Reports.run_all

(* The observability showcase: run the seeded stored-relation spatial
   join through the plan layer, optionally under EXPLAIN ANALYZE and/or
   a collecting tracer exported as a Chrome trace. *)
let query_cmd =
  let module W = Sqp_workload in
  let module R = Sqp_relalg in
  let module Obs = Sqp_obs in
  let analyze_arg =
    Arg.(
      value & flag
      & info [ "analyze" ]
          ~doc:
            "EXPLAIN ANALYZE: execute under measurement and print the \
             operator tree annotated with actual rows, wall time and page \
             accesses per node, then the ambient metrics registry.")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record spans while running and write them to $(docv) as a \
             Chrome trace_event file (open at chrome://tracing or \
             ui.perfetto.dev).")
  in
  let parallelism_arg =
    Arg.(
      value & opt int 1
      & info [ "p"; "parallelism" ] ~docv:"N"
          ~doc:
            "Execution streams: with 2 or more, the spatial join runs \
             z-sharded over a domain pool and the analysis includes a \
             per-shard work table.")
  in
  let run analyze trace parallelism =
    let wk = W.Seeded.standard () in
    let tracer =
      match trace with
      | None -> None
      | Some path ->
          let t = Obs.Trace.create ~capacity:8192 Obs.Trace.Collect in
          Obs.Trace.set_global t;
          Some (t, path)
    in
    let plan =
      R.Plan.optimize
        (R.Query.stored_overlap_plan ~options:wk.W.Seeded.decompose_options
           wk.W.Seeded.space wk.W.Seeded.left_objects wk.W.Seeded.right_objects)
    in
    if analyze then begin
      print_string (R.Plan.explain_analyze ~parallelism plan);
      print_newline ();
      print_endline "Ambient metrics:";
      print_string
        (Sqp_obs.Metrics.to_text
           (Sqp_obs.Metrics.snapshot (Sqp_obs.Metrics.global ())))
    end
    else begin
      print_string (R.Plan.explain ~parallelism plan);
      print_newline ();
      Format.printf "%a@." R.Relation.pp (R.Plan.run ~parallelism plan)
    end;
    match tracer with
    | None -> ()
    | Some (t, path) ->
        Obs.Trace.write_chrome path (Obs.Trace.spans t);
        Obs.Trace.set_global Obs.Trace.null;
        Printf.printf "wrote %d spans to %s\n" (List.length (Obs.Trace.spans t)) path
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "The Section 4 overlap query over paged (stored) relations, with \
          optional EXPLAIN ANALYZE and Chrome-trace output.")
    Term.(const run $ analyze_arg $ trace_arg $ parallelism_arg)

(* Offline store checking and salvage over the crash-safe page store. *)
let fsck_cmd =
  let module S = Sqp_storage in
  let path_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"PATH" ~doc:"The store file to check.")
  in
  let salvage_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "salvage" ] ~docv:"DEST"
          ~doc:
            "Rebuild a best-effort copy of the store at $(docv) from every \
             page whose checksum still verifies.")
  in
  let make_demo_arg =
    Arg.(
      value & flag
      & info [ "make-demo" ]
          ~doc:
            "First write a small demo store at PATH and flip one byte in \
             it, so the report (and salvage) have something to find.  \
             Overwrites PATH.")
  in
  let make_demo path =
    let fp = S.File_pager.create ~page_bytes:128 path in
    let ids =
      List.init 8 (fun i -> S.File_pager.alloc fp (Bytes.make 32 (Char.chr (65 + i))))
    in
    S.File_pager.free fp (List.nth ids 3);
    S.File_pager.close fp;
    (* Flip a payload byte of slot 2; its checksum no longer verifies. *)
    let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
    ignore (Unix.lseek fd ((2 * 128) + 16) Unix.SEEK_SET);
    ignore (Unix.write fd (Bytes.make 1 '\255') 0 1);
    Unix.close fd;
    Printf.printf "wrote a demo store with one corrupted page to %s\n" path
  in
  let run path salvage demo =
    if demo then make_demo path;
    match S.Fsck.scan path with
    | exception S.Storage_error.Io_error { error; _ } ->
        Printf.eprintf "fsck: cannot read %s: %s\n" path (Unix.error_message error);
        Stdlib.exit 1
    | report ->
        print_string (S.Fsck.to_text report);
        (match salvage with
        | None -> ()
        | Some dest ->
            let salvaged, lost = S.Fsck.salvage ~src:path ~dest () in
            Printf.printf "salvage: recovered %d page(s) into %s, lost %d\n" salvaged dest
              lost);
        if not (S.Fsck.clean report) then Stdlib.exit 1
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Check a page-store file: header, per-page checksums, free list, \
          live counts and any pending journal.  Exits 1 if problems are \
          found; $(b,--salvage) rebuilds what survives.")
    Term.(const run $ path_arg $ salvage_arg $ make_demo_arg)

let () =
  let info =
    Cmd.info "sqp" ~version:"1.0.0"
      ~doc:
        "Reproduction of Orenstein's 'Spatial Query Processing in an \
         Object-Oriented Database System' (SIGMOD 1986)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            figures_cmd; figure6_cmd; experiment_cmd; compare_cmd;
            strategies_cmd; policies_cmd; partial_match_cmd; euv_cmd;
            coarsen_cmd; proximity_cmd; join_cmd; overlay_cmd; ccl_cmd;
            interference_cmd; fill_cmd; three_d_cmd; curves_cmd; object_join_cmd;
            all_cmd; query_cmd; fsck_cmd;
          ]))
