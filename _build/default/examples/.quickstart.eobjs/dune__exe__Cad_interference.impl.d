examples/cad_interference.ml: List Printf Sqp_core Sqp_geom Sqp_zorder
