examples/cad_interference.mli:
