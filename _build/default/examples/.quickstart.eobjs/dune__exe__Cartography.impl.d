examples/cartography.ml: Array List Printf Sqp_core Sqp_geom Sqp_zorder
