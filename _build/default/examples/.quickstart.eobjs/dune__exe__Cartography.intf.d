examples/cartography.mli:
