examples/dbms_scenario.ml: Format Sqp_core Sqp_geom Sqp_relalg Sqp_zorder
