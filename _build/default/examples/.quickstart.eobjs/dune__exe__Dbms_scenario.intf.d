examples/dbms_scenario.mli:
