examples/land_registry.ml: Array Filename Format List Printf Sqp_btree Sqp_core Sqp_geom Sqp_relalg Sqp_zorder Sys
