examples/land_registry.mli:
