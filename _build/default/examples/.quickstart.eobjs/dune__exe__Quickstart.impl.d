examples/quickstart.ml: Array Format List Printf Sqp_btree Sqp_core Sqp_geom Sqp_workload Sqp_zorder
