examples/quickstart.mli:
