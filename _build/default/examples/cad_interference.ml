(* Mechanical CAD: interference detection between two assemblies
   (Section 6, after Mantyla & Tamminen).  Parts are boxes, discs and a
   polygonal bracket; the AG filter (coarse decomposition + spatial
   join) prunes the quadratic pair space before exact geometry runs.

   Run with: dune exec examples/cad_interference.exe *)

module Z = Sqp_zorder

let () =
  let space = Sqp_core.Ag.space ~dims:2 ~depth:8 in

  (* Assembly A: a frame of plates. *)
  let plate x y w h =
    Sqp_geom.Shape.Box (Sqp_geom.Box.of_ranges [ (x, x + w - 1); (y, y + h - 1) ])
  in
  let assembly_a =
    [
      (0, plate 20 20 200 12);   (* bottom rail *)
      (1, plate 20 180 200 12);  (* top rail *)
      (2, plate 20 32 12 148);   (* left post *)
      (3, plate 208 32 12 148);  (* right post *)
      (4, plate 100 32 12 148);  (* center post *)
    ]
  in

  (* Assembly B: fasteners and a bracket to be fitted onto the frame. *)
  let disc cx cy r = Sqp_geom.Shape.Circle (Sqp_geom.Circle.make ~cx ~cy ~radius:r) in
  let assembly_b =
    [
      (100, disc 26 26 6);      (* bolt through bottom-left joint *)
      (101, disc 214 186 6);    (* bolt through top-right joint *)
      (102, disc 60 100 5);     (* stray bolt in open space *)
      (103,
       Sqp_geom.Shape.Polygon
         (Sqp_geom.Polygon.make [ (95, 100); (130, 100); (130, 140); (95, 140) ]));
      (* bracket overlapping the center post *)
      (104, disc 150 60 4);     (* clearance hole plug, open space *)
    ]
  in

  Printf.printf "assembly A: %d parts; assembly B: %d parts (%d pairs)\n"
    (List.length assembly_a) (List.length assembly_b)
    (List.length assembly_a * List.length assembly_b);

  (* Coarse filter: decompose only to level 10 (32-cell granularity). *)
  let options = { Z.Decompose.max_level = Some 10; max_elements = None } in
  let hits, stats = Sqp_core.Interference.detect ~options space assembly_a assembly_b in
  Printf.printf
    "AG filter: %d elements, %d candidate pairs, %d exact tests -> %d interferences\n"
    stats.Sqp_core.Interference.elements
    stats.Sqp_core.Interference.candidate_pairs
    stats.Sqp_core.Interference.exact_tests
    (List.length hits);
  List.iter (fun (a, b) -> Printf.printf "  part %d interferes with part %d\n" a b) hits;

  (* Sanity: brute force agrees. *)
  let brute, bstats =
    Sqp_core.Interference.detect_brute_force space assembly_a assembly_b
  in
  Printf.printf "brute force: %d exact tests, same result: %b\n"
    bstats.Sqp_core.Interference.exact_tests (hits = brute)
