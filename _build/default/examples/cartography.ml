(* Cartography: polygon overlay and connected-component queries on two
   map layers — the geographic-information workload that motivates the
   paper's Section 6 (overlay "is an extremely important operation in
   geographic information processing").

   A land-use layer (farmland polygon) is overlaid with a soil layer
   (clay disc); the overlay answers "how much farmland sits on clay?"
   without ever rasterizing.  Lakes (separate blobs) are then counted and
   measured with connected component labelling on the element sequence.

   Run with: dune exec examples/cartography.exe *)

module Z = Sqp_zorder

let () =
  let space = Sqp_core.Ag.space ~dims:2 ~depth:7 in
  let side = Z.Space.side space in

  (* Layer 1: farmland (a quadrilateral region of the map). *)
  let farmland =
    Sqp_geom.Shape.Polygon
      (Sqp_geom.Polygon.make [ (10, 10); (115, 25); (100, 110); (20, 95) ])
  in
  (* Layer 2: clay soil (a disc). *)
  let clay =
    Sqp_geom.Shape.Circle (Sqp_geom.Circle.make ~cx:95 ~cy:60 ~radius:35)
  in

  let farm_layer = Sqp_core.Overlay.of_shape space farmland `Farm in
  let clay_layer = Sqp_core.Overlay.of_shape space clay `Clay in
  Printf.printf "farmland: %d elements (~%.0f cells of %d)\n"
    (List.length farm_layer)
    (Sqp_core.Overlay.cells space farm_layer)
    (side * side);
  Printf.printf "clay:     %d elements (~%.0f cells)\n"
    (List.length clay_layer)
    (Sqp_core.Overlay.cells space clay_layer);

  (* Overlay: regions labelled by the pair of source labels. *)
  let overlaid, stats = Sqp_core.Overlay.overlay space farm_layer clay_layer in
  let area keep =
    Sqp_core.Overlay.cells space (List.filter (fun (_, l) -> keep l) overlaid)
  in
  Printf.printf "\noverlay produced %d segments, %d output elements\n"
    stats.Sqp_core.Overlay.segments stats.Sqp_core.Overlay.output_elements;
  Printf.printf "farmland on clay:      %.0f cells\n"
    (area (function Some `Farm, Some `Clay -> true | _ -> false));
  Printf.printf "farmland off clay:     %.0f cells\n"
    (area (function Some `Farm, None -> true | _ -> false));
  Printf.printf "clay outside farmland: %.0f cells\n"
    (area (function None, Some `Clay -> true | _ -> false));

  (* Lakes: three separate blobs; count and measure them via CCL. *)
  let lakes =
    List.concat_map
      (fun (cx, cy, r) ->
        List.map
          (fun e -> (e, ()))
          (Sqp_core.Ag.decompose space
             (Sqp_geom.Shape.Circle (Sqp_geom.Circle.make ~cx ~cy ~radius:r))))
      [ (20, 110, 8); (100, 20, 12); (110, 105, 6) ]
  in
  (* The three discs are disjoint, so sorting their concatenated
     decompositions yields one valid layer. *)
  let lakes =
    List.sort (fun (a, ()) (b, ()) -> Sqp_core.Ag.compare a b) lakes
  in
  let lake_layer = Sqp_core.Overlay.union space lakes [] in
  let ccl = Sqp_core.Ccl.label space (List.map fst lake_layer) in
  Printf.printf "\n%d lakes; areas:" ccl.Sqp_core.Ccl.component_count;
  Array.iter (fun a -> Printf.printf " %.0f" a) ccl.Sqp_core.Ccl.areas;
  print_newline ();

  (* Which lake is at (100, 20)? *)
  (match
     Sqp_core.Ccl.component_of_cell space (List.map fst lake_layer) ccl 100 20
   with
  | Some label -> Printf.printf "cell (100, 20) belongs to lake #%d\n" label
  | None -> print_endline "cell (100, 20) is dry land")
