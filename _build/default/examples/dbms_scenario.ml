(* The DBMS integration scenario of Section 4, executed literally on the
   relational substrate:

     P(p@, zp, x, y)  := Points[p@, shuffle([x:x, y:y]), x, y]
     B(zb)            := Decompose(Box)
     Result           := (P [zp <> zb] B)[x, y]

   plus the general object-overlap form with two decomposed relations.

   Run with: dune exec examples/dbms_scenario.exe *)

module Z = Sqp_zorder

let () =
  let space = Sqp_core.Ag.space ~dims:2 ~depth:6 in

  (* Base relation: a handful of identified points. *)
  let points =
    [
      (1, [| 5; 3 |]); (2, [| 12; 40 |]); (3, [| 33; 20 |]); (4, [| 34; 21 |]);
      (5, [| 50; 50 |]); (6, [| 20; 22 |]); (7, [| 21; 60 |]); (8, [| 40; 18 |]);
    ]
  in
  let p = Sqp_relalg.Query.points_relation space points in
  Format.printf "%a" Sqp_relalg.Relation.pp p;

  (* The query region: one tuple in relation Box, decomposed into B. *)
  let box = Sqp_geom.Box.of_ranges [ (18, 42); (15, 25) ] in
  let b = Sqp_relalg.Query.box_relation space box in
  Format.printf "@.B = Decompose(Box %a): %d element tuples@."
    Sqp_geom.Box.pp box
    (Sqp_relalg.Relation.cardinality b);

  (* Spatial join + projection. *)
  let result = Sqp_relalg.Query.range_query space points box in
  Format.printf "@.Result = (P[zp <> zb]B)[x, y]:@.%a" Sqp_relalg.Relation.pp result;

  (* The general spatial join: overlap between two object relations. *)
  let parks =
    [
      (1, Sqp_geom.Shape.Box (Sqp_geom.Box.of_ranges [ (0, 15); (0, 15) ]));
      (2, Sqp_geom.Shape.Circle (Sqp_geom.Circle.make ~cx:40 ~cy:40 ~radius:10));
    ]
  in
  let roads =
    [
      (* A long thin horizontal road crossing the park disc. *)
      (7, Sqp_geom.Shape.Box (Sqp_geom.Box.of_ranges [ (0, 63); (39, 41) ]));
      (* A road in the far corner, touching nothing. *)
      (8, Sqp_geom.Shape.Box (Sqp_geom.Box.of_ranges [ (55, 63); (0, 5) ]));
    ]
  in
  let pairs = Sqp_relalg.Query.overlapping_pairs space parks roads in
  Format.printf "@.park/road overlaps (RS = R[zr <> zs]S projected to ids):@.%a"
    Sqp_relalg.Relation.pp pairs;

  (* Cross-check against the nested-loop join. *)
  let r =
    Sqp_relalg.Ops.rename [ ("id", "rid"); ("z", "zr") ]
      (Sqp_relalg.Query.decompose_relation space parks)
  in
  let s =
    Sqp_relalg.Ops.rename [ ("id", "sid"); ("z", "zs") ]
      (Sqp_relalg.Query.decompose_relation space roads)
  in
  let merged, _ = Sqp_relalg.Spatial_join.merge r ~zr:"zr" s ~zs:"zs" in
  let nested, _ = Sqp_relalg.Spatial_join.nested_loop r ~zr:"zr" s ~zs:"zs" in
  Format.printf "@.merge join = nested-loop join: %b@."
    (Sqp_relalg.Relation.equal_contents merged nested)
