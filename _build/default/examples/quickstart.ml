(* Quickstart: index 2d points in z order and run range queries.

   Run with: dune exec examples/quickstart.exe *)

module Z = Sqp_zorder
module Zindex = Sqp_btree.Zindex

let () =
  (* A 2^8 x 2^8 grid. *)
  let space = Sqp_core.Ag.space ~dims:2 ~depth:8 in

  (* The five operators of the element object class. *)
  let e = Sqp_core.Ag.shuffle space [| 3; 5 |] in
  Printf.printf "z value of (3, 5): %s\n" (Sqp_core.Ag.z_string e);
  let box =
    Sqp_geom.Shape.Box (Sqp_geom.Box.of_ranges [ (10, 90); (20, 60) ])
  in
  let elements = Sqp_core.Ag.decompose space box in
  Printf.printf "the box [10..90] x [20..60] decomposes into %d elements\n"
    (List.length elements);
  (match elements with
  | a :: b :: _ ->
      Printf.printf "  first two: %s, %s (precedes: %b, contains: %b)\n"
        (Sqp_core.Ag.z_string a) (Sqp_core.Ag.z_string b)
        (Sqp_core.Ag.precedes a b) (Sqp_core.Ag.contains a b)
  | _ -> ());

  (* Build a zkd B+-tree over random points (page capacity 20). *)
  let rng = Sqp_workload.Rng.create ~seed:42 in
  let points =
    Sqp_workload.Datagen.uniform rng ~side:256 ~n:2000 ~dims:2
  in
  let index = Zindex.of_points space (Array.mapi (fun i p -> (p, i)) points) in
  Printf.printf "\nindexed %d points on %d data pages (tree height %d)\n"
    (Zindex.length index)
    (Zindex.data_page_count index)
    (Zindex.Tree.height (Zindex.tree index));

  (* Range query: the decompose-and-merge algorithm of Section 3.3. *)
  let query = Sqp_geom.Box.of_ranges [ (30, 70); (100, 180) ] in
  let results, stats = Zindex.range_search index query in
  Printf.printf "query %s -> %d points\n"
    (Format.asprintf "%a" Sqp_geom.Box.pp query)
    (List.length results);
  Printf.printf
    "  cost: %d data pages, %d index-node reads, %d box elements, %d entries scanned\n"
    stats.Zindex.data_pages stats.Zindex.internal_accesses stats.Zindex.elements
    stats.Zindex.entries_scanned;
  Printf.printf "  efficiency: %.2f\n" (Zindex.efficiency index stats);

  (* Partial match: pin x, leave y free. *)
  let _, pm = Zindex.partial_match index [| Some 123; None |] in
  Printf.printf "partial match x=123: %d pages (of %d)\n" pm.Zindex.data_pages
    (Zindex.data_page_count index);

  (* The same query without the index machinery, via the in-memory merge. *)
  let prep =
    Sqp_core.Range_search.prepare space (Array.mapi (fun i p -> (p, i)) points)
  in
  let res_skip, counters = Sqp_core.Range_search.search_skip prep query in
  Printf.printf
    "\nin-memory skip merge finds %d points with %d comparisons (%d point jumps)\n"
    (List.length res_skip) counters.Sqp_core.Range_search.comparisons
    counters.Sqp_core.Range_search.point_jumps
