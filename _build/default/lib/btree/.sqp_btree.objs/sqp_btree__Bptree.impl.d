lib/btree/bptree.ml: Array Format Int List Option Printf Sqp_storage Sqp_zorder
