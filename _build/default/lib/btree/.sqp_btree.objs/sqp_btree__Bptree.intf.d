lib/btree/bptree.mli: Format Sqp_storage Sqp_zorder
