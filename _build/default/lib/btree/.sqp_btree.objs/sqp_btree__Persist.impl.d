lib/btree/persist.ml: Array Buffer Bytes Fun Int32 Int64 List Option Printf Sqp_storage Sqp_zorder String Sys Zindex
