lib/btree/persist.ml: Array Buffer Bytes Int32 Int64 List Option Sqp_storage Sqp_zorder String Zindex
