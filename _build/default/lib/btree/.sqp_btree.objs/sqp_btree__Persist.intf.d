lib/btree/persist.mli: Sqp_storage Zindex
