lib/btree/persist.mli: Zindex
