lib/btree/zindex.ml: Array Bptree Hashtbl List Option Seq Sqp_geom Sqp_zorder
