lib/btree/zindex.mli: Bptree Sqp_geom Sqp_storage Sqp_zorder
