lib/btree/zobjects.ml: Bptree Hashtbl List Sqp_geom Sqp_zorder
