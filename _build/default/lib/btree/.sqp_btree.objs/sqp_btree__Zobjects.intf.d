lib/btree/zobjects.mli: Sqp_geom Sqp_storage Sqp_zorder
