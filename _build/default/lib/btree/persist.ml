module Z = Sqp_zorder
module FP = Sqp_storage.File_pager
module Storage_error = Sqp_storage.Storage_error
module Faulty_io = Sqp_storage.Faulty_io

(* Metadata page payload: "SQPX" | dims:u8 | depth:u8 | leaf_capacity:u16 |
   entry_count:i64.
   Entry encoding: coords (dims x i32) | payload_len:u16 | payload.
   Data pages hold entries back to back, in z order. *)

let meta_magic = "SQPX"

let encode_meta ~dims ~depth ~leaf_capacity ~count =
  let buf = Bytes.create (4 + 1 + 1 + 2 + 8) in
  Bytes.blit_string meta_magic 0 buf 0 4;
  Bytes.set_uint8 buf 4 dims;
  Bytes.set_uint8 buf 5 depth;
  Bytes.set_uint16_be buf 6 leaf_capacity;
  Bytes.set_int64_be buf 8 (Int64.of_int count);
  buf

let decode_meta ~path buf =
  if Bytes.length buf < 16 || Bytes.sub_string buf 0 4 <> meta_magic then
    Storage_error.corrupt ~path "bad index metadata page";
  ( Bytes.get_uint8 buf 4,
    Bytes.get_uint8 buf 5,
    Bytes.get_uint16_be buf 6,
    Int64.to_int (Bytes.get_int64_be buf 8) )

let encode_entry dims point payload =
  let plen = String.length payload in
  if plen > 0xFFFF then invalid_arg "Persist: payload too long";
  let buf = Bytes.create ((4 * dims) + 2 + plen) in
  Array.iteri (fun i c -> Bytes.set_int32_be buf (4 * i) (Int32.of_int c)) point;
  Bytes.set_uint16_be buf (4 * dims) plen;
  Bytes.blit_string payload 0 buf ((4 * dims) + 2) plen;
  buf

let decode_entry ~path dims buf off =
  if off + (4 * dims) + 2 > Bytes.length buf then
    Storage_error.corrupt ~path "truncated index entry";
  let point = Array.init dims (fun i -> Int32.to_int (Bytes.get_int32_be buf (off + (4 * i)))) in
  let plen = Bytes.get_uint16_be buf (off + (4 * dims)) in
  if off + (4 * dims) + 2 + plen > Bytes.length buf then
    Storage_error.corrupt ~path "index entry payload runs past the page";
  let payload = Bytes.sub_string buf (off + (4 * dims) + 2) plen in
  (point, payload, off + (4 * dims) + 2 + plen)

let save ?(io = Faulty_io.none) ~path ?(page_bytes = 4096) ~encode index =
  let space = Zindex.space index in
  let dims = Z.Space.dims space and depth = Z.Space.depth space in
  (* Build the new store beside the old one, then atomically rename over
     it: a crash at any point leaves either the old or the new index. *)
  let tmp = path ^ ".tmp" in
  let store = FP.create ~io ~page_bytes tmp in
  let data_pages =
    try
      let capacity = FP.payload_capacity store in
      (* Entries in z order straight off the leaf chain. *)
      let entries =
        Zindex.Tree.to_list (Zindex.tree index)
        |> List.map (fun (_, (p, v)) -> encode_entry dims p (encode v))
      in
      (* One atomic batch: meta page plus every data page. *)
      FP.begin_batch store;
      ignore
        (FP.alloc store
           (encode_meta ~dims ~depth
              ~leaf_capacity:(Zindex.leaf_capacity index)
              ~count:(List.length entries)));
      let data_pages = ref 0 in
      let buf = Buffer.create capacity in
      let flush_page () =
        if Buffer.length buf > 0 then begin
          ignore (FP.alloc store (Buffer.to_bytes buf));
          incr data_pages;
          Buffer.clear buf
        end
      in
      List.iter
        (fun e ->
          if Bytes.length e > capacity then
            invalid_arg "Persist.save: entry larger than a page";
          if Buffer.length buf + Bytes.length e > capacity then flush_page ();
          Buffer.add_bytes buf e)
        entries;
      flush_page ();
      FP.commit_batch store;
      FP.close store;
      !data_pages
    with e ->
      FP.close store;
      (try Sys.remove tmp with Sys_error _ -> ());
      (try Sys.remove (Sqp_storage.Journal.journal_path tmp) with Sys_error _ -> ());
      raise e
  in
  Faulty_io.rename io ~src:tmp ~dst:path;
  data_pages

let load ?(io = Faulty_io.none) ?(lenient = false) ~path ~decode () =
  let store = FP.open_existing ~io path in
  Fun.protect
    ~finally:(fun () -> FP.close store)
    (fun () ->
      let meta = ref None in
      let entries = ref [] in
      FP.iter store (fun slot payload ->
          if !meta = None then begin
            (* Slot order is id order; the metadata page was written first. *)
            ignore slot;
            meta := Some (decode_meta ~path payload)
          end
          else begin
            let dims, _, _, _ = Option.get !meta in
            let off = ref 0 in
            while !off < Bytes.length payload do
              let point, p, next = decode_entry ~path dims payload !off in
              entries := (point, decode p) :: !entries;
              off := next
            done
          end);
      match !meta with
      | None -> Storage_error.corrupt ~path "empty store: no index metadata page"
      | Some (dims, depth, leaf_capacity, count) ->
          let entries = Array.of_list (List.rev !entries) in
          if Array.length entries <> count && not lenient then
            Storage_error.corrupt ~path
              (Printf.sprintf "entry count mismatch: metadata says %d, found %d" count
                 (Array.length entries));
          let space = Z.Space.make ~dims ~depth in
          Zindex.of_points ~leaf_capacity space entries)
