(** Dump / restore a {!Zindex} through the file-backed page store.

    The on-disk form is the paper's "preprocessing" artifact: the point
    set with payloads, packed onto fixed-size pages in z order, plus a
    metadata page (space shape, leaf capacity).  Loading rebuilds the
    prefix B+-tree by bulk load, so a reloaded index answers queries
    identically to the original. *)

val save :
  path:string ->
  ?page_bytes:int ->
  encode:('a -> string) ->
  'a Zindex.t ->
  int
(** Write the index contents; returns the number of data pages written.
    [page_bytes] defaults to 4096.
    @raise Invalid_argument if an encoded payload is larger than a page
    can hold. *)

val load :
  path:string ->
  decode:(string -> 'a) ->
  unit ->
  'a Zindex.t
(** Rebuild an index from a file written by {!save}.
    @raise Failure on format errors. *)
