(** Dump / restore a {!Zindex} through the file-backed page store.

    The on-disk form is the paper's "preprocessing" artifact: the point
    set with payloads, packed onto fixed-size pages in z order, plus a
    metadata page (space shape, leaf capacity).  Loading rebuilds the
    prefix B+-tree by bulk load, so a reloaded index answers queries
    identically to the original.

    Durability: {!save} writes the whole index as one journaled batch
    into [path ^ ".tmp"], then atomically renames it over [path] — a
    crash at any point leaves the previous index (or none) intact, never
    a half-written one.  {!load} runs the store's normal crash recovery
    on open. *)

val save :
  ?io:Sqp_storage.Faulty_io.injector ->
  path:string ->
  ?page_bytes:int ->
  encode:('a -> string) ->
  'a Zindex.t ->
  int
(** Write the index contents; returns the number of data pages written.
    [page_bytes] defaults to 4096.  [io] (for fault-injection tests)
    defaults to passthrough.
    @raise Invalid_argument if an encoded payload is larger than a page
    can hold. *)

val load :
  ?io:Sqp_storage.Faulty_io.injector ->
  ?lenient:bool ->
  path:string ->
  decode:(string -> 'a) ->
  unit ->
  'a Zindex.t
(** Rebuild an index from a file written by {!save}.  With
    [~lenient:true] (used after {!Sqp_storage.Fsck.salvage}) a mismatch
    between the metadata entry count and the entries actually present is
    tolerated: whatever survived is loaded.
    @raise Sqp_storage.Storage_error.Corrupt on format or checksum
    errors. *)
