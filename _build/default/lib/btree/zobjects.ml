module Z = Sqp_zorder
module B = Z.Bitstring
module Tree = Bptree.Make (Bptree.Bitstring_key)

type 'a t = { space : Z.Space.t; tree : 'a Tree.t }

let create ?policy ?pool_capacity ?(leaf_capacity = 20) ?(internal_capacity = 20)
    space =
  { space; tree = Tree.create ?policy ?pool_capacity ~leaf_capacity ~internal_capacity () }

let space t = t.space

let add_elements t payload elements =
  List.iter (fun e -> Tree.insert t.tree e payload) elements

let add ?options t payload shape =
  let elements = Sqp_geom.Shape.decompose ?options t.space shape in
  add_elements t payload elements;
  List.length elements

let entry_count t = Tree.length t.tree

let data_page_count t = Tree.leaf_count t.tree

type join_stats = {
  left_pages : int;
  right_pages : int;
  pairs : int;
  entries : int;
}

(* A z-ordered stream of (z value, payload) with page accounting. *)
type 'a stream = {
  peek : unit -> (B.t * 'a) option;
  advance : unit -> unit;
  pages : (int, unit) Hashtbl.t;
}

let tree_stream tree =
  let pages = Hashtbl.create 16 in
  let cursor = Tree.seek_first tree in
  let note () =
    match Tree.cursor_page cursor with
    | Some id -> Hashtbl.replace pages id ()
    | None -> ()
  in
  note ();
  {
    peek = (fun () -> Tree.cursor_peek cursor);
    advance =
      (fun () ->
        Tree.cursor_next cursor;
        note ());
    pages;
  }

let list_stream items =
  let remaining = ref items in
  {
    peek = (fun () -> match !remaining with [] -> None | x :: _ -> Some x);
    advance =
      (fun () -> match !remaining with [] -> () | _ :: rest -> remaining := rest);
    pages = Hashtbl.create 1;
  }

(* One synchronized sweep with containment stacks — the streaming version
   of the stack merge (cf. {!Sqp_relalg.Spatial_join.merge}). *)
let sweep left right =
  let stack_l = ref [] and stack_r = ref [] in
  let pop_closed z stack =
    let rec go = function
      | (ze, _) :: rest when not (B.is_prefix ze z) -> go rest
      | kept -> kept
    in
    stack := go !stack
  in
  let out = ref [] and pairs = ref 0 and entries = ref 0 in
  let take_left (z, v) =
    pop_closed z stack_l;
    pop_closed z stack_r;
    List.iter
      (fun (_, w) ->
        incr pairs;
        out := (v, w) :: !out)
      !stack_r;
    stack_l := (z, v) :: !stack_l
  in
  let take_right (z, w) =
    pop_closed z stack_l;
    pop_closed z stack_r;
    List.iter
      (fun (_, v) ->
        incr pairs;
        out := (v, w) :: !out)
      !stack_l;
    stack_r := (z, w) :: !stack_r
  in
  let rec loop () =
    match (left.peek (), right.peek ()) with
    | None, None -> ()
    | Some item, None ->
        incr entries;
        take_left item;
        left.advance ();
        loop ()
    | None, Some item ->
        incr entries;
        take_right item;
        right.advance ();
        loop ()
    | Some ((zl, _) as l), Some ((zr, _) as r) ->
        incr entries;
        if B.compare zl zr <= 0 then begin
          take_left l;
          left.advance ()
        end
        else begin
          take_right r;
          right.advance ()
        end;
        loop ()
  in
  loop ();
  (List.rev !out, !pairs, !entries)

let join a b =
  if Z.Space.dims a.space <> Z.Space.dims b.space
     || Z.Space.depth a.space <> Z.Space.depth b.space
  then invalid_arg "Zobjects.join: space mismatch";
  let left = tree_stream a.tree and right = tree_stream b.tree in
  let out, pairs, entries = sweep left right in
  ( out,
    {
      left_pages = Hashtbl.length left.pages;
      right_pages = Hashtbl.length right.pages;
      pairs;
      entries;
    } )

let range_candidates t box =
  match Sqp_geom.Box.clip box ~side:(Z.Space.side t.space) with
  | None -> ([], { left_pages = 0; right_pages = 0; pairs = 0; entries = 0 })
  | Some clipped ->
      let lo = Sqp_geom.Box.lo clipped and hi = Sqp_geom.Box.hi clipped in
      let box_els =
        List.map (fun e -> (e, e)) (Z.Decompose.decompose_box t.space ~lo ~hi)
      in
      let left = tree_stream t.tree and right = list_stream box_els in
      let out, pairs, entries = sweep left right in
      ( out,
        {
          left_pages = Hashtbl.length left.pages;
          right_pages = 0;
          pairs;
          entries;
        } )
