(** Disk-resident spatial objects: decompositions stored in a prefix
    B+-tree, and the spatial join executed page-at-a-time over cursors.

    Section 4 defines [R\[zr <> zs\]S] and argues existing DBMS machinery
    suffices; the merge implementation over B+-tree cursors — one
    synchronized sequential pass with containment stacks, LRU-friendly —
    is exactly what this module provides, with page-access accounting. *)

type 'a t
(** A set of spatial objects: one B+-tree entry per (element, object). *)

val create :
  ?policy:Sqp_storage.Buffer_pool.policy ->
  ?pool_capacity:int ->
  ?leaf_capacity:int ->
  ?internal_capacity:int ->
  Sqp_zorder.Space.t ->
  'a t
(** Defaults match {!Zindex.create}. *)

val space : 'a t -> Sqp_zorder.Space.t

val add :
  ?options:Sqp_zorder.Decompose.options ->
  'a t ->
  'a ->
  Sqp_geom.Shape.t ->
  int
(** Decompose the shape and insert its elements tagged with the payload;
    returns the number of elements inserted. *)

val add_elements : 'a t -> 'a -> Sqp_zorder.Element.t list -> unit
(** Insert a pre-computed decomposition. *)

val entry_count : 'a t -> int
(** Total (element, object) entries. *)

val data_page_count : 'a t -> int

type join_stats = {
  left_pages : int;      (** distinct data pages read from the left tree *)
  right_pages : int;
  pairs : int;           (** (left, right) payload pairs emitted *)
  entries : int;         (** total entries consumed from both trees *)
}

val join : 'a t -> 'b t -> ('a * 'b) list * join_stats
(** The spatial join: every payload pair whose elements are related by
    containment, via one synchronized z-order sweep of both leaf chains.
    Pairs repeat if several element pairs witness the same object pair
    (project afterwards, as the paper notes).
    @raise Invalid_argument if the spaces differ. *)

val range_candidates :
  'a t -> Sqp_geom.Box.t -> ('a * Sqp_zorder.Element.t) list * join_stats
(** Objects with an element inside/overlapping the query box: a spatial
    join against the box's decomposition, streaming only the relevant key
    range of the tree. *)
