lib/core/ag.ml: Sqp_geom Sqp_zorder
