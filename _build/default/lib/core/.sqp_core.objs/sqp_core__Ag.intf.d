lib/core/ag.mli: Sqp_geom Sqp_zorder
