lib/core/analysis.ml: Array Float List Sqp_zorder
