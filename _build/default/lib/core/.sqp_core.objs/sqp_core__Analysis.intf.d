lib/core/analysis.mli:
