lib/core/ccl.ml: Array Hashtbl List Option Sqp_zorder Union_find
