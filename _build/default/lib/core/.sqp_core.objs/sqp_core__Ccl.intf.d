lib/core/ccl.mli: Sqp_zorder
