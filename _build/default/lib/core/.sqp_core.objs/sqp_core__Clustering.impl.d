lib/core/clustering.ml: Array Hashtbl List Sqp_geom Sqp_zorder
