lib/core/clustering.mli: Sqp_geom Sqp_zorder
