lib/core/experiment.ml: Analysis Array List Sqp_btree Sqp_kdtree Sqp_report Sqp_workload Sqp_zorder
