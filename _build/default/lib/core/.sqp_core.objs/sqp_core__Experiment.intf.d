lib/core/experiment.mli: Sqp_btree Sqp_geom Sqp_workload
