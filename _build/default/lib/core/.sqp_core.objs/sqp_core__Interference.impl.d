lib/core/interference.ml: Array Hashtbl List Sqp_geom Sqp_zorder Zmerge
