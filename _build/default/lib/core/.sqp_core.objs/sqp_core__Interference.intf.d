lib/core/interference.mli: Sqp_geom Sqp_zorder
