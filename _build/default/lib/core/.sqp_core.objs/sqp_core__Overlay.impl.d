lib/core/overlay.ml: Format List Sqp_geom Sqp_zorder
