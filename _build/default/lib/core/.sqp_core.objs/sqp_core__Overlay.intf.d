lib/core/overlay.mli: Sqp_geom Sqp_zorder
