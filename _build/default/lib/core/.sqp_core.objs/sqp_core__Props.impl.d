lib/core/props.ml: Array Ccl Hashtbl List Option Sqp_zorder
