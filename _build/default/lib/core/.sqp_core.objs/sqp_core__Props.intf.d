lib/core/props.mli: Sqp_zorder
