lib/core/range_search.ml: Array Format List Printf Sqp_geom Sqp_obs Sqp_zorder
