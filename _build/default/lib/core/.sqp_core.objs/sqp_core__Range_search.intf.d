lib/core/range_search.mli: Sqp_geom Sqp_zorder
