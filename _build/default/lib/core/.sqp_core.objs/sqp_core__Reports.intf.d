lib/core/reports.mli: Experiment Sqp_workload
