lib/core/union_find.ml: Array Hashtbl
