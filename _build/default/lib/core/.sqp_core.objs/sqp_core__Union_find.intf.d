lib/core/union_find.mli:
