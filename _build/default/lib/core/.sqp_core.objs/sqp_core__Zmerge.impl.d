lib/core/zmerge.ml: List Sqp_zorder
