lib/core/zmerge.ml: List Sqp_obs Sqp_zorder
