lib/core/zmerge.mli: Sqp_zorder
