module Z = Sqp_zorder

type space = Z.Space.t

type element = Z.Element.t

let space ~dims ~depth = Z.Space.make ~dims ~depth

let shuffle = Z.Interleave.shuffle

let shuffle_region space ~lo ~hi = Z.Element.of_box space ~lo ~hi

let unshuffle space e = Z.Element.box space e

let decompose ?options space shape = Sqp_geom.Shape.decompose ?options space shape

let precedes = Z.Element.precedes

let contains = Z.Element.contains

let compare = Z.Element.compare

let z_string = Z.Bitstring.to_string

let of_z_string = Z.Bitstring.of_string

let zlo = Z.Element.zlo
let zhi = Z.Element.zhi

let related a b =
  if Z.Element.equal a b then `Equal
  else if contains a b then `Contains
  else if contains b a then `Contained
  else if precedes a b then `Precedes
  else `Follows
