(** The approximate-geometry object class.

    Section 4 lists the operations the element object class must provide:
    [shuffle], [unshuffle], [decompose], [precedes], [contains].  This
    module is that object class — a thin, documented facade over the
    z-order machinery, which is what a PROBE query processor (or any
    DBMS adding an "element" ADT) would program against. *)

type space = Sqp_zorder.Space.t

type element = Sqp_zorder.Element.t
(** An element: a variable-length bitstring (z value) denoting a region
    obtained by recursive halving. *)

val space : dims:int -> depth:int -> space
(** The [2^depth x ... x 2^depth] grid in [dims] dimensions. *)

(** {1 The five operators of Section 4} *)

val shuffle : space -> int array -> element
(** [shuffle(r: region) -> element] for a single pixel: interleave the
    coordinate bits. *)

val shuffle_region : space -> lo:int array -> hi:int array -> element option
(** General form: the element for a coordinate region, if the region is
    one ([None] otherwise). *)

val unshuffle : space -> element -> int array * int array
(** [(lo, hi)] coordinate ranges of the element's region. *)

val decompose : ?options:Sqp_zorder.Decompose.options -> space -> Sqp_geom.Shape.t -> element list
(** [decompose(b) -> set of elements], in z order. *)

val precedes : element -> element -> bool
(** Strict z-order precedence. *)

val contains : element -> element -> bool
(** Prefix containment ([contains e1 e2]: [e1] contains [e2]). *)

(** {1 Derived forms} *)

val compare : element -> element -> int

val z_string : element -> string
(** The z value as a ["0101..."] string. *)

val of_z_string : string -> element

val zlo : space -> element -> element
val zhi : space -> element -> element
(** Extreme pixel z values covered by an element (Figure 3's consecutive
    range). *)

val related : element -> element -> [ `Precedes | `Follows | `Contains | `Contained | `Equal ]
(** The complete case analysis the paper highlights: two elements can
    only nest or precede one another — partial overlap is impossible. *)
