let pages_per_block_bound ~dims =
  match dims with
  | 2 -> 6.0
  | 3 -> 28.0 /. 3.0
  | k ->
      let p = Float.pow 2.0 (float_of_int k) in
      p *. (p -. 1.0) /. (p -. 2.0)

let predicted_range_pages ~n_pages ~side ~query_extents =
  let dims = Array.length query_extents in
  Sqp_zorder.Zmath.predicted_range_pages
    ~pages_per_block:(pages_per_block_bound ~dims)
    ~n_pages ~side ~query_extents ()

let predicted_partial_match_pages = Sqp_zorder.Zmath.predicted_partial_match_pages

let fit_power samples =
  if List.length samples < 2 then invalid_arg "Analysis.fit_power: need >= 2 samples";
  List.iter
    (fun (x, y) ->
      if x <= 0.0 || y <= 0.0 then
        invalid_arg "Analysis.fit_power: non-positive sample")
    samples;
  let logs = List.map (fun (x, y) -> (log x, log y)) samples in
  let n = float_of_int (List.length logs) in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 logs in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 logs in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 logs in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 logs in
  let alpha = ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx)) in
  let c = exp ((sy -. (alpha *. sx)) /. n) in
  (c, alpha)

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geometric_mean = function
  | [] -> 0.0
  | xs ->
      exp (List.fold_left (fun a x -> a +. log x) 0.0 xs /. float_of_int (List.length xs))
