(** Performance model of Section 5, as used by the experiment harness:
    predictions to print next to measurements, and fitting helpers to
    check the predicted exponents. *)

val predicted_range_pages :
  n_pages:int -> side:int -> query_extents:int array -> float
(** The O(vN) block-model bound (see {!Sqp_zorder.Zmath}). *)

val predicted_partial_match_pages :
  n_pages:int -> dims:int -> restricted:int -> float
(** O(N^(1 - t/k)). *)

val pages_per_block_bound : dims:int -> float
(** The paper's bound on pages per rectangular block: 6 in 2d, 28/3 in
    3d; we expose the 2d/3d constants and the general pattern
    [2^k * (2^k - 1) / (2^k - 2)] fitted to those two values for other
    dimensions. *)

val fit_power : (float * float) list -> float * float
(** [(c, alpha)] least-squares fit of [y = c * x^alpha] (on logs).
    @raise Invalid_argument with fewer than 2 samples or non-positive
    values. *)

val mean : float list -> float

val geometric_mean : float list -> float
