module Z = Sqp_zorder

type rect = { xlo : int; xhi : int; ylo : int; yhi : int; idx : int }

type result = {
  component_count : int;
  labels : int array;
  areas : float array;
  adjacencies : int;
}

let rects_of space elements =
  List.mapi
    (fun idx e ->
      let lo, hi = Z.Element.box space e in
      { xlo = lo.(0); xhi = hi.(0); ylo = lo.(1); yhi = hi.(1); idx })
    elements

let check_disjoint elements =
  let rec go = function
    | [] | [ _ ] -> ()
    | a :: (b :: _ as rest) ->
        if not (Z.Element.precedes a b) then
          invalid_arg "Ccl.label: elements overlap or are out of z order";
        go rest
  in
  go (List.sort Z.Element.compare elements)

(* Enumerate pairs (a, b) with a.hi_axis + 1 = b.lo_axis and overlapping
   ranges on the other axis, for one axis orientation. *)
let adjacent_pairs rights lefts lo_other hi_other =
  (* [rights]: rects keyed by closing coordinate + 1; [lefts]: rects keyed
     by opening coordinate.  Both lists share one boundary coordinate. *)
  let lefts =
    List.sort (fun a b -> compare (lo_other a) (lo_other b)) lefts
  in
  let arr = Array.of_list lefts in
  let n = Array.length arr in
  let pairs = ref [] in
  List.iter
    (fun r ->
      (* First left whose hi >= r.lo: linear from a binary-searched start
         on lo; since intervals are disjoint within one boundary (elements
         are disjoint), lo order = hi order. *)
      let lo = ref 0 and hi = ref n in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if hi_other arr.(mid) < lo_other r then lo := mid + 1 else hi := mid
      done;
      let i = ref !lo in
      while !i < n && lo_other arr.(!i) <= hi_other r do
        pairs := (r, arr.(!i)) :: !pairs;
        incr i
      done)
    rights;
  !pairs

let label space elements =
  if Z.Space.dims space <> 2 then invalid_arg "Ccl.label: 2d only";
  check_disjoint elements;
  let rects = rects_of space elements in
  let n = List.length rects in
  let uf = Union_find.create n in
  let adjacencies = ref 0 in
  (* Vertical shared edges: a.xhi + 1 = b.xlo with y overlap. *)
  let by_key f rects =
    let tbl = Hashtbl.create 64 in
    List.iter (fun r -> Hashtbl.replace tbl (f r) (r :: (Option.value ~default:[] (Hashtbl.find_opt tbl (f r))))) rects;
    tbl
  in
  let do_axis key_close key_open lo_other hi_other =
    let closes = by_key key_close rects and opens = by_key key_open rects in
    Hashtbl.iter
      (fun boundary rights ->
        match Hashtbl.find_opt opens boundary with
        | None -> ()
        | Some lefts ->
            List.iter
              (fun (a, b) ->
                incr adjacencies;
                Union_find.union uf a.idx b.idx)
              (adjacent_pairs rights lefts lo_other hi_other))
      closes
  in
  do_axis (fun r -> r.xhi + 1) (fun r -> r.xlo) (fun r -> r.ylo) (fun r -> r.yhi);
  do_axis (fun r -> r.yhi + 1) (fun r -> r.ylo) (fun r -> r.xlo) (fun r -> r.xhi);
  let labels = Union_find.compress_labels uf in
  let count = Union_find.count uf in
  let areas = Array.make count 0.0 in
  List.iteri
    (fun i e ->
      areas.(labels.(i)) <- areas.(labels.(i)) +. Z.Element.cells space e)
    elements;
  { component_count = count; labels; areas; adjacencies = !adjacencies }

let component_of_cell space elements result x y =
  let rec go i = function
    | [] -> None
    | e :: rest ->
        let lo, hi = Z.Element.box space e in
        if x >= lo.(0) && x <= hi.(0) && y >= lo.(1) && y <= hi.(1) then
          Some result.labels.(i)
        else go (i + 1) rest
  in
  go 0 elements
