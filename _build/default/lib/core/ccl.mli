(** Connected component labelling on element sequences (Section 6).

    Computes the 4-connected components of the black region described by
    a disjoint element list, working on the elements directly (never
    expanding to pixels): element rectangles are swept for shared edges
    and merged with union-find.  Compare [SAME85c]'s quadtree algorithm;
    the element-sequence formulation is the concise AG version the paper
    advertises.  2d only. *)

type result = {
  component_count : int;
  labels : int array;
      (** label of each input element (dense, [0 .. count-1]), in input
          order *)
  areas : float array; (** pixels per component, indexed by label *)
  adjacencies : int;   (** element pairs found to share an edge *)
}

val label : Sqp_zorder.Space.t -> Sqp_zorder.Element.t list -> result
(** @raise Invalid_argument if the space is not 2d or elements overlap. *)

val component_of_cell :
  Sqp_zorder.Space.t -> Sqp_zorder.Element.t list -> result -> int -> int -> int option
(** Label of the component covering a cell, if any (helper for tests and
    examples). *)
