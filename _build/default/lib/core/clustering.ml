module Z = Sqp_zorder

type order = Z_order | Hilbert_order | Row_major

let order_name = function
  | Z_order -> "z order"
  | Hilbert_order -> "Hilbert order"
  | Row_major -> "row major"

let rank_of order space p =
  match order with
  | Z_order -> Z.Interleave.rank space p
  | Hilbert_order -> Z.Hilbert.rank space p
  | Row_major ->
      if Z.Space.dims space <> 2 then invalid_arg "Clustering: row major is 2d";
      (p.(1) * Z.Space.side space) + p.(0)

type t = {
  pages : (Sqp_geom.Point.t * int) array array; (* point, page id *)
  page_of_rank : (int, int) Hashtbl.t;          (* curve rank -> page id *)
}

let build order space ?(page_capacity = 20) points =
  if page_capacity < 1 then invalid_arg "Clustering.build: capacity < 1";
  let ranked = Array.map (fun p -> (rank_of order space p, p)) points in
  Array.sort (fun (a, _) (b, _) -> compare a b) ranked;
  let n = Array.length ranked in
  let n_pages = (n + page_capacity - 1) / page_capacity in
  let page_of_rank = Hashtbl.create n in
  let pages =
    Array.init n_pages (fun page ->
        let start = page * page_capacity in
        Array.init
          (min page_capacity (n - start))
          (fun i ->
            let rank, p = ranked.(start + i) in
            Hashtbl.replace page_of_rank rank page;
            (p, page)))
  in
  { pages; page_of_rank }

let page_count t = Array.length t.pages

let pages_touched t box =
  let seen = Hashtbl.create 16 in
  let results = ref 0 in
  Array.iter
    (Array.iter (fun (p, page) ->
         if Sqp_geom.Box.contains_point box p then begin
           incr results;
           Hashtbl.replace seen page ()
         end))
    t.pages;
  (Hashtbl.length seen, !results)

let mean_pages t boxes =
  match boxes with
  | [] -> 0.0
  | _ ->
      let total =
        List.fold_left (fun acc box -> acc + fst (pages_touched t box)) 0 boxes
      in
      float_of_int total /. float_of_int (List.length boxes)
