(** Curve-clustering ablation: how well does an ordering of the grid pack
    range queries onto few pages?

    Section 5.2's analysis rests on z order preserving proximity.  This
    module measures that directly, for any total order of points: sort the
    points by the order, pack them onto pages of fixed capacity (exactly
    what the zkd B+-tree's leaf level does), and count the distinct pages
    a query's answers land on.  Comparing z order against Hilbert order
    and row-major order isolates the contribution of the curve itself from
    everything else in the system. *)

type order = Z_order | Hilbert_order | Row_major

val order_name : order -> string

val rank_of : order -> Sqp_zorder.Space.t -> Sqp_geom.Point.t -> int
(** The position of a point along the given curve.
    @raise Invalid_argument for non-2d spaces (except [Z_order], which is
    any-dimensional). *)

type t
(** Points packed onto pages in curve order. *)

val build :
  order -> Sqp_zorder.Space.t -> ?page_capacity:int -> Sqp_geom.Point.t array -> t
(** Default capacity 20. *)

val page_count : t -> int

val pages_touched : t -> Sqp_geom.Box.t -> int * int
(** [(pages, results)]: distinct pages holding answers to the box query,
    and the number of answers. *)

val mean_pages :
  t -> Sqp_geom.Box.t list -> float
(** Mean pages touched over a query list. *)
