module W = Sqp_workload
module Z = Sqp_zorder
module Zindex = Sqp_btree.Zindex

type config = {
  dataset : W.Datagen.dataset;
  n_points : int;
  depth : int;
  page_capacity : int;
  volumes : float list;
  aspects : float list;
  locations : int;
  seed : int;
  strategy : Zindex.strategy;
}

let default dataset =
  {
    dataset;
    n_points = 5000;
    depth = 10;
    page_capacity = 20;
    volumes = W.Querygen.paper_volumes;
    aspects = W.Querygen.paper_aspects;
    locations = 5;
    seed = 1986;
    strategy = Zindex.Merge;
  }

let space_of config = Z.Space.make ~dims:2 ~depth:config.depth

let build_points config =
  let rng = W.Rng.create ~seed:config.seed in
  W.Datagen.generate rng config.dataset ~side:(1 lsl config.depth) ~n:config.n_points

let build_index config =
  let points = build_points config in
  Zindex.of_points
    ~leaf_capacity:config.page_capacity
    (space_of config)
    (Array.mapi (fun i p -> (p, i)) points)

type row = {
  volume : float;
  aspect : float;
  width : int;
  height : int;
  mean_pages : float;
  max_pages : int;
  predicted : float;
  mean_efficiency : float;
  mean_results : float;
}

let query_rng config = W.Rng.create ~seed:(config.seed + 7919)

let range_rows config =
  let index = build_index config in
  let side = 1 lsl config.depth in
  let n_pages = Zindex.data_page_count index in
  let rng = query_rng config in
  List.concat_map
    (fun volume ->
      List.map
        (fun aspect ->
          let spec = { W.Querygen.volume_fraction = volume; aspect } in
          let width, height = W.Querygen.extents_of_spec ~side spec in
          let boxes = W.Querygen.random_boxes rng ~side spec ~count:config.locations in
          let outcomes =
            List.map
              (fun box ->
                let _, stats = Zindex.range_search ~strategy:config.strategy index box in
                stats)
              boxes
          in
          let pagesf = List.map (fun s -> float_of_int s.Zindex.data_pages) outcomes in
          {
            volume;
            aspect;
            width;
            height;
            mean_pages = Analysis.mean pagesf;
            max_pages =
              List.fold_left (fun m s -> max m s.Zindex.data_pages) 0 outcomes;
            predicted =
              Analysis.predicted_range_pages ~n_pages ~side
                ~query_extents:[| width; height |];
            mean_efficiency =
              Analysis.mean (List.map (Zindex.efficiency index) outcomes);
            mean_results =
              Analysis.mean (List.map (fun s -> float_of_int s.Zindex.results) outcomes);
          })
        config.aspects)
    config.volumes

type comparison = {
  c_volume : float;
  c_aspect : float;
  zkd_pages : float;
  kd_pages : float;
  gf_pages : float;
  rt_pages : float;
  scan_pages : float;
  zkd_efficiency : float;
  kd_efficiency : float;
}

let structure_comparison config =
  let points = build_points config in
  let tagged = Array.mapi (fun i p -> (p, i)) points in
  let side = 1 lsl config.depth in
  let zkd =
    Zindex.of_points ~leaf_capacity:config.page_capacity (space_of config) tagged
  in
  let kd = Sqp_kdtree.Paged_kdtree.build ~page_capacity:config.page_capacity tagged in
  let gf =
    let t =
      Sqp_kdtree.Grid_file.create ~bucket_capacity:config.page_capacity ~side ()
    in
    Array.iter (fun (p, v) -> Sqp_kdtree.Grid_file.insert t p v) tagged;
    t
  in
  let rt = Sqp_kdtree.Rtree.of_points_str ~page_capacity:config.page_capacity tagged in
  let scan = Sqp_kdtree.Linear_scan.build ~page_capacity:config.page_capacity tagged in
  let rng = query_rng config in
  List.concat_map
    (fun volume ->
      List.map
        (fun aspect ->
          let spec = { W.Querygen.volume_fraction = volume; aspect } in
          let boxes = W.Querygen.random_boxes rng ~side spec ~count:config.locations in
          let per f = Analysis.mean (List.map f boxes) in
          {
            c_volume = volume;
            c_aspect = aspect;
            zkd_pages =
              per (fun b ->
                  let _, s = Zindex.range_search ~strategy:config.strategy zkd b in
                  float_of_int s.Zindex.data_pages);
            kd_pages =
              per (fun b ->
                  let _, s = Sqp_kdtree.Paged_kdtree.range_search kd b in
                  float_of_int s.Sqp_kdtree.Paged_kdtree.data_pages);
            gf_pages =
              per (fun b ->
                  let _, s = Sqp_kdtree.Grid_file.range_search gf b in
                  float_of_int s.Sqp_kdtree.Grid_file.data_pages);
            rt_pages =
              per (fun b ->
                  let _, s = Sqp_kdtree.Rtree.range_search rt b in
                  float_of_int s.Sqp_kdtree.Rtree.data_pages);
            scan_pages =
              per (fun b ->
                  let _, s = Sqp_kdtree.Linear_scan.range_search scan b in
                  float_of_int s.Sqp_kdtree.Linear_scan.data_pages);
            zkd_efficiency =
              per (fun b ->
                  let _, s = Zindex.range_search ~strategy:config.strategy zkd b in
                  Zindex.efficiency zkd s);
            kd_efficiency =
              per (fun b ->
                  let _, s = Sqp_kdtree.Paged_kdtree.range_search kd b in
                  Sqp_kdtree.Paged_kdtree.efficiency kd s);
          })
        config.aspects)
    config.volumes

type pm_point = { pm_n : int; pm_pages : float; pm_predicted : float }

let partial_match_scaling ?(ns = [ 625; 1250; 2500; 5000; 10000; 20000 ]) config =
  let side = 1 lsl config.depth in
  let queries_per_size = max 5 config.locations in
  let points_rng = W.Rng.create ~seed:config.seed in
  let points =
    W.Datagen.generate points_rng config.dataset ~side ~n:(List.fold_left max 0 ns)
  in
  let rng = query_rng config in
  let samples =
    List.map
      (fun n ->
        let tagged = Array.mapi (fun i p -> (p, i)) (Array.sub points 0 n) in
        let index =
          Zindex.of_points ~leaf_capacity:config.page_capacity (space_of config) tagged
        in
        let n_pages = Zindex.data_page_count index in
        let accesses =
          List.init queries_per_size (fun _ ->
              let specs =
                W.Querygen.partial_match_spec rng ~side ~dims:2 ~restricted:1
              in
              let _, stats = Zindex.partial_match ~strategy:config.strategy index specs in
              float_of_int stats.Zindex.data_pages)
        in
        {
          pm_n = n;
          pm_pages = Analysis.mean accesses;
          pm_predicted =
            Analysis.predicted_partial_match_pages ~n_pages ~dims:2 ~restricted:1;
        })
      ns
  in
  let _, alpha =
    Analysis.fit_power
      (List.map (fun s -> (float_of_int s.pm_n, max 1.0 s.pm_pages)) samples)
  in
  (samples, alpha)

let figure6 ?(depth = 6) ?(n_points = 1000) ?(seed = 1986) dataset =
  let side = 1 lsl depth in
  (* The diagonal band only holds (2*jitter + 1) * side distinct cells;
     cap the point count so generation can terminate. *)
  let n_points =
    match dataset with
    | W.Datagen.Diagonal ->
        let jitter = max 1 (side / 128) in
        min n_points (((2 * jitter) + 1) * side * 3 / 4)
    | W.Datagen.Uniform | W.Datagen.Clustered -> n_points
  in
  let config =
    { (default dataset) with depth; n_points; seed }
  in
  let index = build_index config in
  Sqp_report.Figure.page_map ~side:(1 lsl depth) (Zindex.leaf_points index)
