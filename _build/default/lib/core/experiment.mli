(** The experiments of Section 5.3.2, as a reusable driver.

    The paper's setup: a prefix B+-tree (page capacity 20) holding 5000
    2d points in z order; datasets U (uniform), C (50 clusters x 100),
    D (diagonal); rectangular queries of several shapes and four volumes
    at five random locations; measured data-page accesses and efficiency.
    All parameters are exposed in {!config}; {!default} reproduces the
    paper's values. *)

type config = {
  dataset : Sqp_workload.Datagen.dataset;
  n_points : int;     (** 5000 in the paper *)
  depth : int;        (** grid resolution d (side = 2^d) *)
  page_capacity : int;(** 20 in the paper *)
  volumes : float list;
  aspects : float list;
  locations : int;    (** random locations per shape; 5 in the paper *)
  seed : int;
  strategy : Sqp_btree.Zindex.strategy;
}

val default : Sqp_workload.Datagen.dataset -> config
(** Paper parameters on a 1024 x 1024 grid, seed 1986. *)

val build_points : config -> Sqp_geom.Point.t array

val build_index : config -> int Sqp_btree.Zindex.t

(** {1 Range-query experiment (the main table)} *)

type row = {
  volume : float;
  aspect : float;
  width : int;
  height : int;
  mean_pages : float;
  max_pages : int;
  predicted : float;    (** block-model upper bound *)
  mean_efficiency : float;
  mean_results : float;
}

val range_rows : config -> row list
(** One row per (volume, aspect), averaged over [locations] random
    placements. *)

(** {1 Structure comparison (zkd vs kd tree vs scan)} *)

type comparison = {
  c_volume : float;
  c_aspect : float;
  zkd_pages : float;
  kd_pages : float;
  gf_pages : float;   (** grid file ([NIEV84]) data buckets *)
  rt_pages : float;   (** R-tree (Guttman 1984) leaf pages *)
  scan_pages : float;
  zkd_efficiency : float;
  kd_efficiency : float;
}

val structure_comparison : config -> comparison list

(** {1 Partial-match scaling} *)

type pm_point = { pm_n : int; pm_pages : float; pm_predicted : float }

val partial_match_scaling : ?ns:int list -> config -> pm_point list * float
(** Mean data pages for x-pinned partial-match queries as the point count
    grows, and the fitted exponent of pages ~ N^alpha (paper predicts
    alpha = 1 - t/k = 0.5 in 2d). *)

(** {1 Figure 6} *)

val figure6 : ?depth:int -> ?n_points:int -> ?seed:int -> Sqp_workload.Datagen.dataset -> string
(** ASCII page-partition map (default: 64 x 64 grid, 1000 points, so the
    map fits a terminal). *)
