module Z = Sqp_zorder

type stats = {
  candidate_pairs : int;
  emitted_pairs : int;
  exact_tests : int;
  elements : int;
  result_pairs : int;
}

(* Exact interference: do the two shapes share a cell?  Cell membership is
   the shapes' own (cell-center) semantics, so the answer is independent
   of decomposition resolution. *)
let shapes_intersect space a b =
  let side = Z.Space.side space in
  let bb a = Sqp_geom.Box.clip (Sqp_geom.Shape.bounding_box a) ~side in
  match (bb a, bb b) with
  | None, _ | _, None -> false
  | Some ba, Some bb -> (
      match Sqp_geom.Box.intersection ba bb with
      | None -> false
      | Some box ->
          let lo = Sqp_geom.Box.lo box and hi = Sqp_geom.Box.hi box in
          let rec scan x y =
            if x > hi.(0) then false
            else if y > hi.(1) then scan (x + 1) lo.(1)
            else if
              Sqp_geom.Shape.contains_cell a x y && Sqp_geom.Shape.contains_cell b x y
            then true
            else scan x (y + 1)
          in
          scan lo.(0) lo.(1))

let dedup_pairs pairs =
  let tbl = Hashtbl.create 64 in
  List.filter
    (fun pair ->
      if Hashtbl.mem tbl pair then false
      else begin
        Hashtbl.replace tbl pair ();
        true
      end)
    pairs

let detect ?options space left right =
  let tag objects =
    List.concat_map
      (fun (id, shape) ->
        List.map
          (fun e -> (e, id))
          (Sqp_geom.Shape.decompose ?options space shape))
      objects
  in
  let tl = tag left and tr = tag right in
  let emitted, merge_stats = Zmerge.pairs tl tr in
  let candidates = dedup_pairs emitted in
  let exact_tests = ref 0 in
  let left_shapes = left and right_shapes = right in
  let shape_of objs id = List.assoc id objs in
  let result =
    List.filter
      (fun (lid, rid) ->
        incr exact_tests;
        shapes_intersect space (shape_of left_shapes lid) (shape_of right_shapes rid))
      candidates
  in
  let result = List.sort compare result in
  ( result,
    {
      candidate_pairs = List.length candidates;
      emitted_pairs = merge_stats.Zmerge.pairs;
      exact_tests = !exact_tests;
      elements = List.length tl + List.length tr;
      result_pairs = List.length result;
    } )

let detect_brute_force space left right =
  let exact_tests = ref 0 in
  let result =
    List.concat_map
      (fun (lid, ls) ->
        List.filter_map
          (fun (rid, rs) ->
            incr exact_tests;
            if shapes_intersect space ls rs then Some (lid, rid) else None)
          right)
      left
  in
  let result = List.sort compare result in
  ( result,
    {
      candidate_pairs = List.length result;
      emitted_pairs = 0;
      exact_tests = !exact_tests;
      elements = 0;
      result_pairs = List.length result;
    } )
