(** Interference detection for mechanical CAD (Section 6, after
    [MANT83]): find all pairs of parts from two assemblies whose volumes
    intersect.

    AG strategy: decompose every part (optionally coarsely — a budgeted
    decomposition over-approximates, which is safe for a filter), run the
    containment merge over the two tagged element sequences to get
    candidate pairs, then refine candidates with the exact geometry test.
    Brute force compares all pairs exactly. *)

type stats = {
  candidate_pairs : int;  (** distinct pairs surviving the AG filter *)
  emitted_pairs : int;    (** raw merge outputs before deduplication *)
  exact_tests : int;      (** exact geometry tests performed *)
  elements : int;         (** total elements in the decompositions *)
  result_pairs : int;
}

val detect :
  ?options:Sqp_zorder.Decompose.options ->
  Sqp_zorder.Space.t ->
  (int * Sqp_geom.Shape.t) list ->
  (int * Sqp_geom.Shape.t) list ->
  (int * int) list * stats
(** Pairs (id from first list, id from second list) of parts whose pixel
    sets intersect, sorted.  With coarse [options] the filter admits more
    candidates but the refinement keeps the result exact. *)

val detect_brute_force :
  Sqp_zorder.Space.t ->
  (int * Sqp_geom.Shape.t) list ->
  (int * Sqp_geom.Shape.t) list ->
  (int * int) list * stats
(** All-pairs exact testing (the oracle and cost baseline). *)
