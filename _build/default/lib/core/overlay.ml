module Z = Sqp_zorder

type 'a layer = (Z.Element.t * 'a) list

let check_layer space layer =
  let rec go = function
    | [] | [ _ ] -> Ok ()
    | (a, _) :: ((b, _) :: _ as rest) ->
        if not (Z.Element.precedes a b) then
          Error
            (Format.asprintf "layer elements not disjoint/ordered: %a vs %a"
               Z.Element.pp a Z.Element.pp b)
        else go rest
  in
  if not (Z.Zrange.usable space) then Error "space too deep for overlay"
  else go layer

type stats = { input_elements : int; output_elements : int; segments : int }

type 'a interval = { lo : int; hi : int; label : 'a }

let to_intervals space layer =
  List.map
    (fun (e, label) ->
      let lo, hi = Z.Zrange.of_element space e in
      { lo; hi; label })
    layer

(* Split two disjoint sorted interval lists at all boundaries of both,
   producing maximal segments with the pair of covering labels. *)
let rec segment a b =
  match (a, b) with
  | [], [] -> []
  | x :: ar, [] -> (x.lo, x.hi, Some x.label, None) :: segment ar []
  | [], y :: br -> (y.lo, y.hi, None, Some y.label) :: segment [] br
  | x :: ar, y :: br ->
      if x.hi < y.lo then (x.lo, x.hi, Some x.label, None) :: segment ar b
      else if y.hi < x.lo then (y.lo, y.hi, None, Some y.label) :: segment a br
      else if x.lo < y.lo then
        (x.lo, y.lo - 1, Some x.label, None) :: segment ({ x with lo = y.lo } :: ar) b
      else if y.lo < x.lo then
        (y.lo, x.lo - 1, None, Some y.label) :: segment a ({ y with lo = x.lo } :: br)
      else begin
        let e = min x.hi y.hi in
        let a' = if x.hi > e then { x with lo = e + 1 } :: ar else ar in
        let b' = if y.hi > e then { y with lo = e + 1 } :: br else br in
        (x.lo, e, Some x.label, Some y.label) :: segment a' b'
      end

let coalesce segments =
  let rec go = function
    | (lo1, hi1, la1, lb1) :: (lo2, hi2, la2, lb2) :: rest
      when hi1 + 1 = lo2 && la1 = la2 && lb1 = lb2 ->
        go ((lo1, hi2, la1, lb1) :: rest)
    | seg :: rest -> seg :: go rest
    | [] -> []
  in
  go segments

let overlay space la lb =
  (match check_layer space la with
  | Ok () -> ()
  | Error m -> invalid_arg ("Overlay.overlay: left " ^ m));
  (match check_layer space lb with
  | Ok () -> ()
  | Error m -> invalid_arg ("Overlay.overlay: right " ^ m));
  let segments = coalesce (segment (to_intervals space la) (to_intervals space lb)) in
  let out =
    List.concat_map
      (fun (lo, hi, l, r) ->
        List.map (fun e -> (e, (l, r))) (Z.Zrange.cover space ~lo ~hi))
      segments
  in
  ( out,
    {
      input_elements = List.length la + List.length lb;
      output_elements = List.length out;
      segments = List.length segments;
    } )

let relabel keep layer =
  List.filter_map
    (fun (e, labels) -> if keep labels then Some (e, ()) else None)
    layer

(* Boolean ops need re-canonicalization: after filtering, adjacent kept
   regions should merge back into maximal elements. *)
let canonicalize space layer =
  let intervals =
    List.map
      (fun (e, ()) ->
        let lo, hi = Z.Zrange.of_element space e in
        (lo, hi))
      layer
  in
  let rec merge = function
    | (lo1, hi1) :: (lo2, hi2) :: rest when hi1 + 1 = lo2 -> merge ((lo1, hi2) :: rest)
    | x :: rest -> x :: merge rest
    | [] -> []
  in
  List.concat_map
    (fun (lo, hi) -> List.map (fun e -> (e, ())) (Z.Zrange.cover space ~lo ~hi))
    (merge intervals)

let boolean keep space la lb =
  let out, _ = overlay space la lb in
  canonicalize space (relabel keep out)

let union space la lb = boolean (fun _ -> true) space la lb

let inter space la lb =
  boolean (function Some _, Some _ -> true | _ -> false) space la lb

let diff space la lb =
  boolean (function Some _, None -> true | _ -> false) space la lb

let xor space la lb =
  boolean
    (function Some _, None | None, Some _ -> true | _ -> false)
    space la lb

let of_shape ?options space shape label =
  List.map (fun e -> (e, label)) (Sqp_geom.Shape.decompose ?options space shape)

let cells space layer =
  List.fold_left (fun acc (e, _) -> acc +. Z.Element.cells space e) 0.0 layer
