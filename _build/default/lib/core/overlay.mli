(** Polygon/region overlay on element sequences (Section 6).

    A {e layer} is a decomposed region: disjoint elements in z order, each
    carrying a label (land use, soil type, ...).  Overlay refines two
    layers into one whose regions are labelled with the pair of source
    labels — computed directly on the element sequences by interval
    arithmetic on z ranges, never touching pixels.  The paper's claim:
    this costs surface (number of elements), while the grid algorithm
    costs volume (number of pixels); see the [overlay-scaling] bench.

    Requires an integer-z space ([total bits <= 61]). *)

type 'a layer = (Sqp_zorder.Element.t * 'a) list

val check_layer : Sqp_zorder.Space.t -> 'a layer -> (unit, string) result
(** Valid layers are z-ordered with pairwise-disjoint elements. *)

type stats = { input_elements : int; output_elements : int; segments : int }

val overlay :
  Sqp_zorder.Space.t ->
  'a layer ->
  'b layer ->
  ('a option * 'b option) layer * stats
(** Regions covered by at least one input, split at all boundaries of
    both, with canonical element covers; labels tell which side(s) cover
    each output element.  Adjacent output regions with equal labels are
    coalesced (canonically). *)

val union : Sqp_zorder.Space.t -> unit layer -> unit layer -> unit layer
val inter : Sqp_zorder.Space.t -> unit layer -> unit layer -> unit layer
val diff : Sqp_zorder.Space.t -> unit layer -> unit layer -> unit layer
val xor : Sqp_zorder.Space.t -> unit layer -> unit layer -> unit layer
(** Boolean region algebra derived from {!overlay}. *)

val of_shape :
  ?options:Sqp_zorder.Decompose.options ->
  Sqp_zorder.Space.t ->
  Sqp_geom.Shape.t ->
  'a ->
  'a layer

val cells : Sqp_zorder.Space.t -> 'a layer -> float
(** Total area (pixels) covered. *)
