module Z = Sqp_zorder

let area space elements =
  List.fold_left (fun acc e -> acc +. Z.Element.cells space e) 0.0 elements

type rect = { xlo : int; xhi : int; ylo : int; yhi : int }

let rects_of space elements =
  if Z.Space.dims space <> 2 then invalid_arg "Props: 2d only";
  List.map
    (fun e ->
      let lo, hi = Z.Element.box space e in
      { xlo = lo.(0); xhi = hi.(0); ylo = lo.(1); yhi = hi.(1) })
    elements

let check_disjoint elements =
  let sorted = List.sort Z.Element.compare elements in
  let rec go = function
    | [] | [ _ ] -> ()
    | a :: (b :: _ as rest) ->
        if not (Z.Element.precedes a b) then
          invalid_arg "Props: elements overlap";
        go rest
  in
  go sorted

(* Total shared-edge length between rects along one orientation: pairs
   with a.close + 1 = b.open and overlapping ranges on the other axis. *)
let shared_edges rects key_close key_open lo_other hi_other =
  let opens = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let k = key_open r in
      Hashtbl.replace opens k (r :: Option.value ~default:[] (Hashtbl.find_opt opens k)))
    rects;
  List.fold_left
    (fun acc r ->
      match Hashtbl.find_opt opens (key_close r + 1) with
      | None -> acc
      | Some candidates ->
          List.fold_left
            (fun acc c ->
              let overlap =
                min (hi_other r) (hi_other c) - max (lo_other r) (lo_other c) + 1
              in
              if overlap > 0 then acc + overlap else acc)
            acc candidates)
    0 rects

let perimeter space elements =
  check_disjoint elements;
  let rects = rects_of space elements in
  let rect_perimeter =
    List.fold_left
      (fun acc r -> acc + (2 * (r.xhi - r.xlo + 1)) + (2 * (r.yhi - r.ylo + 1)))
      0 rects
  in
  let shared_x =
    shared_edges rects (fun r -> r.xhi) (fun r -> r.xlo) (fun r -> r.ylo) (fun r -> r.yhi)
  in
  let shared_y =
    shared_edges rects (fun r -> r.yhi) (fun r -> r.ylo) (fun r -> r.xlo) (fun r -> r.xhi)
  in
  rect_perimeter - (2 * (shared_x + shared_y))

let centroid space elements =
  match elements with
  | [] -> None
  | _ ->
      let total = ref 0.0 and sx = ref 0.0 and sy = ref 0.0 in
      List.iter
        (fun e ->
          let lo, hi = Z.Element.box space e in
          let cells = Z.Element.cells space e in
          let cx = (float_of_int lo.(0) +. float_of_int hi.(0)) /. 2.0 in
          let cy = (float_of_int lo.(1) +. float_of_int hi.(1)) /. 2.0 in
          total := !total +. cells;
          sx := !sx +. (cells *. cx);
          sy := !sy +. (cells *. cy))
        elements;
      Some (!sx /. !total, !sy /. !total)

let component_areas space elements =
  let result = Ccl.label space elements in
  let areas = Array.copy result.Ccl.areas in
  Array.sort (fun a b -> compare b a) areas;
  areas
