(** Global properties of regions represented as element sequences.

    Section 6 motivates computing "global properties" (how many objects,
    what area) directly on the compact representation.  These operators
    work on a disjoint element list without expanding pixels: area and
    centroid are sums over elements, perimeter is the total rectangle
    perimeter minus twice the shared-edge length found by the same
    adjacency sweep CCL uses.  All 2d. *)

val area : Sqp_zorder.Space.t -> Sqp_zorder.Element.t list -> float
(** Number of cells covered. *)

val perimeter : Sqp_zorder.Space.t -> Sqp_zorder.Element.t list -> int
(** Length of the boundary between the region and its complement
    (grid-line segments; the grid border counts as boundary).
    @raise Invalid_argument if elements overlap or the space is not 2d. *)

val centroid : Sqp_zorder.Space.t -> Sqp_zorder.Element.t list -> (float * float) option
(** Mean position of covered cell centres; [None] for the empty region. *)

val component_areas :
  Sqp_zorder.Space.t -> Sqp_zorder.Element.t list -> float array
(** Area of each 4-connected component (delegates to {!Ccl}), sorted
    descending — "what is the area of each object?". *)
