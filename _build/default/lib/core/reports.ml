module Z = Sqp_zorder
module W = Sqp_workload
module T = Sqp_report.Table
module F = Sqp_report.Figure
module Zindex = Sqp_btree.Zindex

let figure_space = Z.Space.make ~dims:2 ~depth:3

let figure_box = Sqp_geom.Box.of_ranges [ (1, 3); (0, 4) ]

let heading title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let print_figure1 () =
  heading "Figure 1: the range query 1 <= X <= 3 & 0 <= Y <= 4";
  print_string
    (F.box_query figure_space figure_box
       ~points:[ [| 2; 1 |]; [| 3; 4 |]; [| 5; 2 |]; [| 6; 6 |]; [| 1; 7 |] ]);
  print_endline "(+ query region, * point, @ point inside the query)"

let print_figure2 () =
  heading "Figure 2: decomposition of the box into elements";
  let els =
    Z.Decompose.decompose_box figure_space ~lo:[| 1; 0 |] ~hi:[| 3; 4 |]
  in
  print_string (F.decomposition figure_space els);
  print_newline ();
  print_string (F.decomposition_labels figure_space els)

let print_figure3 () =
  heading "Figure 3: z values inside an element are consecutive";
  let e = Z.Bitstring.of_string "001" in
  let zlo, zhi = Z.Zrange.of_element figure_space e in
  Printf.printf "element 001 covers z values %d .. %d:\n" zlo zhi;
  for z = zlo to zhi do
    let bits = Z.Bitstring.of_int z ~width:(Z.Space.total_bits figure_space) in
    let p = Array.map fst (Z.Interleave.unshuffle figure_space bits) in
    Printf.printf "  %s = %2d -> pixel (%d, %d)\n" (Z.Bitstring.to_string bits) z
      p.(0) p.(1)
  done;
  print_endline "all share the prefix 001."

let print_figure4 () =
  heading "Figure 4: the z curve (ranks, then the path)";
  print_string (F.zcurve_ranks figure_space);
  Printf.printf "rank of (3, 5): %d\n\n" (Z.Curve.rank figure_space [| 3; 5 |]);
  print_string (F.zcurve_path (Z.Space.make ~dims:2 ~depth:2))

let print_figure5 () =
  heading "Figure 5: the range-search merge, step by step";
  let points =
    [| [| 2; 1 |]; [| 3; 4 |]; [| 5; 2 |]; [| 6; 6 |]; [| 1; 7 |]; [| 2; 3 |] |]
  in
  let prep =
    Range_search.prepare figure_space (Array.map (fun p -> (p, ())) points)
  in
  let results, trace = Range_search.search_trace prep figure_box in
  List.iter (fun step -> Printf.printf "  %s\n" step.Range_search.description) trace;
  Printf.printf "result: %s\n"
    (String.concat ", "
       (List.map (fun (p, ()) -> Format.asprintf "%a" Sqp_geom.Point.pp p) results))

let print_figure6 ?(datasets = W.Datagen.[ Uniform; Clustered; Diagonal ]) () =
  List.iter
    (fun ds ->
      heading
        (Printf.sprintf "Figure 6 (%s): zkd B+-tree page partitioning"
           (W.Datagen.dataset_name ds));
      print_string (Experiment.figure6 ds);
      print_endline "(each letter = one data page; . = empty cell)")
    datasets

let shape_label aspect =
  if aspect < 1.0 then Printf.sprintf "1:%d tall" (int_of_float (1.0 /. aspect))
  else if aspect > 1.0 then Printf.sprintf "%d:1 wide" (int_of_float aspect)
  else "square"

let print_range_experiment ?config dataset =
  let config =
    match config with Some c -> { c with Experiment.dataset } | None -> Experiment.default dataset
  in
  let rows = Experiment.range_rows config in
  heading
    (Printf.sprintf
       "Range queries, experiment %s (%d points, page capacity %d, %d locations/shape)"
       (W.Datagen.dataset_name dataset)
       config.Experiment.n_points config.Experiment.page_capacity
       config.Experiment.locations);
  T.print
    ~columns:
      [
        T.column "volume";
        T.column ~align:T.Left "shape";
        T.column "w x h";
        T.column "pages (mean)";
        T.column "pages (max)";
        T.column "predicted";
        T.column "efficiency";
        T.column "results";
      ]
    ~rows:
      (List.map
         (fun r ->
           Experiment.
             [
               T.fmt_float ~decimals:4 r.volume;
               shape_label r.aspect;
               Printf.sprintf "%dx%d" r.width r.height;
               T.fmt_float ~decimals:1 r.mean_pages;
               T.fmt_int r.max_pages;
               T.fmt_float ~decimals:1 r.predicted;
               T.fmt_float r.mean_efficiency;
               T.fmt_float ~decimals:1 r.mean_results;
             ])
         rows)
    ()

let print_shape_sweep ?config () =
  let config =
    match config with
    | Some c -> c
    | None ->
        { (Experiment.default W.Datagen.Uniform) with Experiment.volumes = [ 0.0625 ] }
  in
  heading "Shape sweep at fixed volume 1/16 (dataset U)";
  print_range_experiment ~config config.Experiment.dataset

let print_structure_comparison ?config dataset =
  let config =
    match config with Some c -> { c with Experiment.dataset } | None -> Experiment.default dataset
  in
  let rows = Experiment.structure_comparison config in
  heading
    (Printf.sprintf "zkd B+-tree vs kd tree vs grid file vs R-tree vs scan (dataset %s, data pages)"
       (W.Datagen.dataset_name dataset));
  T.print
    ~columns:
      [
        T.column "volume";
        T.column ~align:T.Left "shape";
        T.column "zkd pages";
        T.column "kd pages";
        T.column "grid-file pages";
        T.column "r-tree(STR) pages";
        T.column "scan pages";
        T.column "zkd eff";
        T.column "kd eff";
      ]
    ~rows:
      (List.map
         (fun c ->
           Experiment.
             [
               T.fmt_float ~decimals:4 c.c_volume;
               shape_label c.c_aspect;
               T.fmt_float ~decimals:1 c.zkd_pages;
               T.fmt_float ~decimals:1 c.kd_pages;
               T.fmt_float ~decimals:1 c.gf_pages;
               T.fmt_float ~decimals:1 c.rt_pages;
               T.fmt_float ~decimals:1 c.scan_pages;
               T.fmt_float c.zkd_efficiency;
               T.fmt_float c.kd_efficiency;
             ])
         rows)
    ()

let print_partial_match ?config () =
  let config =
    match config with Some c -> c | None -> Experiment.default W.Datagen.Uniform
  in
  let samples, alpha = Experiment.partial_match_scaling config in
  heading "Partial-match scaling (x pinned, y free; dataset U)";
  T.print
    ~columns:
      [ T.column "N points"; T.column "pages (mean)"; T.column "predicted N^(1/2)" ]
    ~rows:
      (List.map
         (fun s ->
           Experiment.
             [
               T.fmt_int s.pm_n;
               T.fmt_float ~decimals:1 s.pm_pages;
               T.fmt_float ~decimals:1 s.pm_predicted;
             ])
         samples)
    ();
  Printf.printf "fitted exponent: pages ~ N^%.2f (paper predicts 0.5)\n" alpha

let print_strategy_comparison ?config dataset =
  let config =
    match config with Some c -> { c with Experiment.dataset } | None -> Experiment.default dataset
  in
  let index = Experiment.build_index config in
  let side = 1 lsl config.Experiment.depth in
  let rng = W.Rng.create ~seed:(config.Experiment.seed + 31) in
  let boxes =
    List.concat_map
      (fun volume ->
        W.Querygen.random_boxes rng ~side
          { W.Querygen.volume_fraction = volume; aspect = 1.0 }
          ~count:config.Experiment.locations)
      config.Experiment.volumes
  in
  heading
    (Printf.sprintf "Search-strategy ablation (dataset %s, squares, all volumes)"
       (W.Datagen.dataset_name dataset));
  T.print
    ~columns:
      [
        T.column ~align:T.Left "strategy";
        T.column "data pages";
        T.column "internal";
        T.column "elements";
        T.column "scanned";
      ]
    ~rows:
      (List.map
         (fun (name, strategy) ->
           let totals = ref (0, 0, 0, 0) in
           List.iter
             (fun box ->
               let _, s = Zindex.range_search ~strategy index box in
               let a, b, c, d = !totals in
               totals :=
                 ( a + s.Zindex.data_pages,
                   b + s.Zindex.internal_accesses,
                   c + s.Zindex.elements,
                   d + s.Zindex.entries_scanned ))
             boxes;
           let a, b, c, d = !totals in
           let n = float_of_int (List.length boxes) in
           [
             name;
             T.fmt_float ~decimals:1 (float_of_int a /. n);
             T.fmt_float ~decimals:1 (float_of_int b /. n);
             T.fmt_float ~decimals:1 (float_of_int c /. n);
             T.fmt_float ~decimals:1 (float_of_int d /. n);
           ])
         [
           ("merge (decomposed)", Zindex.Merge);
           ("merge (lazy elements)", Zindex.Lazy_merge);
           ("bigmin skip", Zindex.Bigmin);
           ("full scan", Zindex.Scan);
         ])
    ()

let print_euv_table () =
  let space = Z.Space.make ~dims:2 ~depth:10 in
  heading "E(U,V): elements in the decomposition of a U x V box at the origin";
  let cases =
    [
      (3, 5); (6, 10); (12, 20); (100, 100); (127, 127); (128, 128);
      (255, 255); (256, 256); (255, 256); (85, 170); (1, 1000);
    ]
  in
  T.print
    ~columns:
      [
        T.column "U"; T.column "V"; T.column "E(U,V)"; T.column "bit spread(U|V)";
        T.column "E(2U,2V)";
      ]
    ~rows:
      (List.map
         (fun (u, v) ->
           [
             T.fmt_int u;
             T.fmt_int v;
             T.fmt_int (Z.Zmath.element_count space ~extents:[| u; v |]);
             T.fmt_int (Z.Zmath.bit_spread [| u; v |]);
             (if 2 * u <= Z.Space.side space && 2 * v <= Z.Space.side space then
                T.fmt_int (Z.Zmath.element_count space ~extents:[| 2 * u; 2 * v |])
              else "-");
           ])
         cases)
    ();
  print_endline
    "note 255 vs 256: a one-cell change in the border moves E by an order of magnitude."

let print_coarsening () =
  let space = Z.Space.make ~dims:2 ~depth:9 in
  let extents = [| 173; 107 |] in
  heading "Coarsening (Section 5.1): round U,V up to multiples of 2^m";
  T.print
    ~columns:
      [
        T.column "m"; T.column "U'"; T.column "V'"; T.column "elements";
        T.column "area ratio";
      ]
    ~rows:
      (List.map
         (fun r ->
           Z.Zmath.
             [
               T.fmt_int r.m;
               T.fmt_int r.extents.(0);
               T.fmt_int r.extents.(1);
               T.fmt_int r.elements;
               T.fmt_float r.area_ratio;
             ])
         (Z.Zmath.coarsening_sweep space ~extents))
    ()

let print_proximity () =
  let space = Z.Space.make ~dims:2 ~depth:8 in
  let rng = W.Rng.create ~seed:2024 in
  heading "Proximity preservation (Section 5.2): rank distance vs spatial distance";
  let rows =
    Z.Zmath.proximity_table
      ~rng:(fun n -> W.Rng.int rng n)
      space
      ~distances:[ 1; 2; 4; 8; 16; 32 ]
      ~samples:2000 ~pages:250
  in
  T.print
    ~columns:
      [
        T.column "spatial distance";
        T.column "median rank distance";
        T.column "p90 rank distance";
        T.column "within one page";
      ]
    ~rows:
      (List.map
         (fun r ->
           Z.Zmath.
             [
               T.fmt_int r.spatial_distance;
               T.fmt_int r.median_rank_distance;
               T.fmt_int r.p90_rank_distance;
               T.fmt_pct r.within_page;
             ])
         rows)
    ()

let random_boxes_objects rng space n =
  let side = Z.Space.side space in
  List.init n (fun i ->
      let w = 1 + W.Rng.int rng (side / 4) and h = 1 + W.Rng.int rng (side / 4) in
      let x = W.Rng.int rng (side - w) and y = W.Rng.int rng (side - h) in
      ( i,
        Sqp_geom.Shape.Box
          (Sqp_geom.Box.make ~lo:[| x; y |] ~hi:[| x + w - 1; y + h - 1 |]) ))

let print_spatial_join () =
  let space = Z.Space.make ~dims:2 ~depth:6 in
  let rng = W.Rng.create ~seed:99 in
  heading "Spatial join R[zr <> zs]S: merge vs nested loop (element comparisons)";
  T.print
    ~columns:
      [
        T.column "|R| objects";
        T.column "|S| objects";
        T.column "R+S elements";
        T.column "pairs";
        T.column "merge cmp";
        T.column "nested-loop cmp";
      ]
    ~rows:
      (List.map
         (fun n ->
           let robj = random_boxes_objects rng space n in
           let sobj = random_boxes_objects rng space n in
           let r = Sqp_relalg.Query.decompose_relation ~name:"R" space robj in
           let s =
             Sqp_relalg.Ops.rename
               [ ("id", "sid"); ("z", "zs") ]
               (Sqp_relalg.Query.decompose_relation ~name:"S" space sobj)
           in
           let r = Sqp_relalg.Ops.rename [ ("id", "rid"); ("z", "zr") ] r in
           let _, ms = Sqp_relalg.Spatial_join.merge r ~zr:"zr" s ~zs:"zs" in
           let _, ns = Sqp_relalg.Spatial_join.nested_loop r ~zr:"zr" s ~zs:"zs" in
           [
             T.fmt_int n;
             T.fmt_int n;
             T.fmt_int ms.Sqp_relalg.Spatial_join.sorted_items;
             T.fmt_int ms.Sqp_relalg.Spatial_join.pairs;
             T.fmt_int ms.Sqp_relalg.Spatial_join.comparisons;
             T.fmt_int ns.Sqp_relalg.Spatial_join.comparisons;
           ])
         [ 8; 16; 32; 64 ])
    ()

let overlay_shapes side =
  ( Sqp_geom.Shape.Circle
      (Sqp_geom.Circle.make ~cx:(side / 3) ~cy:(side / 2) ~radius:(side / 4)),
    Sqp_geom.Shape.Polygon
      (Sqp_geom.Polygon.make
         [
           (side / 8, side / 8);
           (side - (side / 8), side / 4);
           (side - (side / 4), side - (side / 8));
           (side / 4, side - (side / 4));
         ]) )

let print_overlay_scaling () =
  heading "Overlay: AG element merge (surface) vs grid pixel pass (volume)";
  T.print
    ~columns:
      [
        T.column "side";
        T.column "AG input elements";
        T.column "AG segments";
        T.column "grid cells";
        T.column "cells / elements";
      ]
    ~rows:
      (List.map
         (fun depth ->
           let space = Z.Space.make ~dims:2 ~depth in
           let side = Z.Space.side space in
           let sa, sb = overlay_shapes side in
           let la = Overlay.of_shape space sa `A and lb = Overlay.of_shape space sb `B in
           let _, stats = Overlay.overlay space la lb in
           let n_cells = side * side in
           [
             T.fmt_int side;
             T.fmt_int stats.Overlay.input_elements;
             T.fmt_int stats.Overlay.segments;
             T.fmt_int n_cells;
             T.fmt_float
               (float_of_int n_cells /. float_of_int (max 1 stats.Overlay.input_elements));
           ])
         [ 4; 5; 6; 7; 8 ])
    ();
  print_endline
    "element counts grow like the perimeter (x2 per doubling); cells grow x4."

let print_ccl () =
  heading "Connected component labelling: elements vs pixels";
  let space = Z.Space.make ~dims:2 ~depth:6 in
  let side = Z.Space.side space in
  let rng = W.Rng.create ~seed:5 in
  let g = Sqp_grid.Bitgrid.create ~side in
  for _ = 1 to 15 do
    let cx = W.Rng.int rng side and cy = W.Rng.int rng side in
    let r = 1 + W.Rng.int rng (side / 10) in
    for x = max 0 (cx - r) to min (side - 1) (cx + r) do
      for y = max 0 (cy - r) to min (side - 1) (cy + r) do
        if ((x - cx) * (x - cx)) + ((y - cy) * (y - cy)) <= r * r then
          Sqp_grid.Bitgrid.set g x y true
      done
    done
  done;
  let els = Sqp_grid.Bitgrid.to_elements space g in
  let ag = Ccl.label space els in
  let pix = Sqp_grid.Bitgrid.connected_components g in
  T.print
    ~columns:
      [ T.column ~align:T.Left "method"; T.column "units processed"; T.column "components" ]
    ~rows:
      [
        [ "AG (elements)"; T.fmt_int (List.length els); T.fmt_int ag.Ccl.component_count ];
        [
          "grid (pixels)";
          T.fmt_int (side * side);
          T.fmt_int pix.Sqp_grid.Bitgrid.count;
        ];
      ]
    ();
  Printf.printf "areas agree: %b\n"
    (List.sort compare (Array.to_list (Array.map int_of_float ag.Ccl.areas))
    = List.sort compare (Array.to_list pix.Sqp_grid.Bitgrid.areas))

let print_interference () =
  heading "CAD interference detection: AG filter + refine vs brute force";
  let space = Z.Space.make ~dims:2 ~depth:7 in
  let rng = W.Rng.create ~seed:11 in
  T.print
    ~columns:
      [
        T.column "parts/side";
        T.column "true pairs";
        T.column "AG candidates";
        T.column "AG exact tests";
        T.column "brute exact tests";
      ]
    ~rows:
      (List.map
         (fun n ->
           let left = random_boxes_objects rng space n in
           let right = random_boxes_objects rng space n in
           let opts = { Z.Decompose.max_level = Some 8; max_elements = None } in
           let ag, ags = Interference.detect ~options:opts space left right in
           let bf, bfs = Interference.detect_brute_force space left right in
           assert (ag = bf);
           Interference.
             [
               T.fmt_int n;
               T.fmt_int (List.length ag);
               T.fmt_int ags.candidate_pairs;
               T.fmt_int ags.exact_tests;
               T.fmt_int bfs.exact_tests;
             ])
         [ 10; 20; 40; 80 ])
    ()

let print_fill_factor ?config dataset =
  let config =
    match config with Some c -> { c with Experiment.dataset } | None -> Experiment.default dataset
  in
  let points = Experiment.build_points config in
  let tagged = Array.mapi (fun i p -> (p, i)) points in
  let space = Z.Space.make ~dims:2 ~depth:config.Experiment.depth in
  let side = 1 lsl config.Experiment.depth in
  heading
    (Printf.sprintf
       "Leaf fill factor (dataset %s): page count vs per-query page accesses"
       (W.Datagen.dataset_name dataset));
  T.print
    ~columns:
      [
        T.column "fill";
        T.column "data pages";
        T.column "pages/query (mean)";
        T.column "efficiency";
      ]
    ~rows:
      (List.map
         (fun fill ->
           let index =
             Zindex.of_points ~fill ~leaf_capacity:config.Experiment.page_capacity
               space tagged
           in
           let rng = W.Rng.create ~seed:(config.Experiment.seed + 17) in
           let boxes =
             W.Querygen.random_boxes rng ~side
               { W.Querygen.volume_fraction = 1.0 /. 16.0; aspect = 1.0 }
               ~count:10
           in
           let stats =
             List.map (fun b -> snd (Zindex.range_search index b)) boxes
           in
           [
             T.fmt_float fill;
             T.fmt_int (Zindex.data_page_count index);
             T.fmt_float ~decimals:1
               (Analysis.mean
                  (List.map (fun s -> float_of_int s.Zindex.data_pages) stats));
             T.fmt_float (Analysis.mean (List.map (Zindex.efficiency index) stats));
           ])
         [ 0.5; 0.7; 0.9; 1.0 ])
    ();
  print_endline
    "(the paper's 250-page tree corresponds to fill 1.0: 5000 points / 20 per page)"

let print_3d_experiment () =
  let space = Z.Space.make ~dims:3 ~depth:7 in
  let side = Z.Space.side space in
  let rng = W.Rng.create ~seed:1986 in
  let points = W.Datagen.uniform rng ~side ~n:4000 ~dims:3 in
  let index =
    Zindex.of_points ~leaf_capacity:20 space (Array.mapi (fun i p -> (p, i)) points)
  in
  let n_pages = Zindex.data_page_count index in
  heading
    (Printf.sprintf "3d range queries (4000 uniform points, %d^3 grid, %d pages)"
       side n_pages);
  let qrng = W.Rng.create ~seed:7 in
  let cube_rows =
    List.map
      (fun volume ->
        let extent =
          max 1 (int_of_float (Float.round (float_of_int side *. Float.cbrt volume)))
        in
        let extent = min extent side in
        let boxes =
          List.init 5 (fun _ ->
              let corner () = W.Rng.int qrng (side - extent + 1) in
              let x = corner () and y = corner () and z = corner () in
              Sqp_geom.Box.make ~lo:[| x; y; z |]
                ~hi:[| x + extent - 1; y + extent - 1; z + extent - 1 |])
        in
        let pages =
          Analysis.mean
            (List.map
               (fun b ->
                 let _, s = Zindex.range_search index b in
                 float_of_int s.Zindex.data_pages)
               boxes)
        in
        ( volume,
          extent,
          pages,
          Analysis.predicted_range_pages ~n_pages ~side
            ~query_extents:[| extent; extent; extent |] ))
      [ 1.0 /. 64.0; 1.0 /. 16.0; 1.0 /. 4.0; 1.0 /. 2.0 ]
  in
  T.print
    ~columns:
      [
        T.column "volume"; T.column "cube side"; T.column "pages (mean)";
        T.column "predicted";
      ]
    ~rows:
      (List.map
         (fun (v, e, p, pred) ->
           [
             T.fmt_float ~decimals:4 v; T.fmt_int e; T.fmt_float ~decimals:1 p;
             T.fmt_float ~decimals:1 pred;
           ])
         cube_rows)
    ();
  (* Partial match with t = 1 and t = 2 pinned axes. *)
  let pm restricted =
    let runs =
      List.init 8 (fun _ ->
          let specs =
            W.Querygen.partial_match_spec qrng ~side ~dims:3 ~restricted
          in
          let _, s = Zindex.partial_match index specs in
          float_of_int s.Zindex.data_pages)
    in
    ( Analysis.mean runs,
      Analysis.predicted_partial_match_pages ~n_pages ~dims:3 ~restricted )
  in
  let m1, p1 = pm 1 and m2, p2 = pm 2 in
  T.print
    ~columns:
      [ T.column "restricted axes t"; T.column "pages (mean)"; T.column "predicted N^(1-t/3)" ]
    ~rows:
      [
        [ "1"; T.fmt_float ~decimals:1 m1; T.fmt_float ~decimals:1 p1 ];
        [ "2"; T.fmt_float ~decimals:1 m2; T.fmt_float ~decimals:1 p2 ];
      ]
    ()

let print_curve_comparison () =
  let space = Z.Space.make ~dims:2 ~depth:9 in
  let side = Z.Space.side space in
  let rng = W.Rng.create ~seed:77 in
  let points = W.Datagen.uniform rng ~side ~n:5000 ~dims:2 in
  let qrng = W.Rng.create ~seed:78 in
  let boxes =
    List.concat_map
      (fun volume ->
        W.Querygen.random_boxes qrng ~side
          { W.Querygen.volume_fraction = volume; aspect = 1.0 }
          ~count:10)
      [ 1.0 /. 64.0; 1.0 /. 16.0 ]
  in
  heading "Curve clustering: pages holding the answers (square queries, 5000 points)";
  T.print
    ~columns:[ T.column ~align:T.Left "ordering"; T.column "pages (mean)" ]
    ~rows:
      (List.map
         (fun order ->
           let t = Clustering.build order space ~page_capacity:20 points in
           [
             Clustering.order_name order;
             T.fmt_float ~decimals:1 (Clustering.mean_pages t boxes);
           ])
         Clustering.[ Z_order; Hilbert_order; Row_major ])
    ();
  print_endline
    "z order sits within a few percent of Hilbert; both crush row-major —";
  print_endline
    "the curve's proximity preservation, isolated from the rest of the system."

let print_object_join () =
  let space = Z.Space.make ~dims:2 ~depth:8 in
  let side = Z.Space.side space in
  heading "Disk-resident spatial join (Zobjects): synchronized leaf sweep";
  T.print
    ~columns:
      [
        T.column "objects/side";
        T.column "entries";
        T.column "pages read (L+R)";
        T.column "pairs";
      ]
    ~rows:
      (List.map
         (fun n ->
           let rng = W.Rng.create ~seed:(n + 5) in
           let mk tag =
             let t = Sqp_btree.Zobjects.create space in
             for i = 0 to n - 1 do
               let w = 1 + W.Rng.int rng (side / 8)
               and h = 1 + W.Rng.int rng (side / 8) in
               let x = W.Rng.int rng (side - w) and y = W.Rng.int rng (side - h) in
               ignore
                 (Sqp_btree.Zobjects.add t (tag + i)
                    (Sqp_geom.Shape.Box
                       (Sqp_geom.Box.make ~lo:[| x; y |] ~hi:[| x + w - 1; y + h - 1 |])))
             done;
             t
           in
           let a = mk 0 and b = mk 1000 in
           let _, stats = Sqp_btree.Zobjects.join a b in
           Sqp_btree.Zobjects.
             [
               T.fmt_int n;
               T.fmt_int stats.entries;
               T.fmt_int (stats.left_pages + stats.right_pages);
               T.fmt_int stats.pairs;
             ])
         [ 16; 32; 64 ])
    ()

let print_buffer_policies ?config dataset =
  let config =
    match config with Some c -> { c with Experiment.dataset } | None -> Experiment.default dataset
  in
  let points = Experiment.build_points config in
  let tagged = Array.mapi (fun i p -> (p, i)) points in
  let space = Z.Space.make ~dims:2 ~depth:config.Experiment.depth in
  let side = 1 lsl config.Experiment.depth in
  heading
    (Printf.sprintf
       "Buffer policies under the merge workload (dataset %s, 4-frame pool)"
       (W.Datagen.dataset_name dataset));
  T.print
    ~columns:
      [
        T.column ~align:T.Left "policy";
        T.column "physical reads";
        T.column "pool hit ratio";
      ]
    ~rows:
      (List.map
         (fun (name, policy) ->
           let index =
             Zindex.of_points ~policy ~pool_capacity:4
               ~leaf_capacity:config.Experiment.page_capacity space tagged
           in
           let before =
             Sqp_storage.Stats.snapshot (Zindex.io_stats index)
           in
           let rng = W.Rng.create ~seed:(config.Experiment.seed + 63) in
           List.iter
             (fun volume ->
               List.iter
                 (fun box -> ignore (Zindex.range_search index box))
                 (W.Querygen.random_boxes rng ~side
                    { W.Querygen.volume_fraction = volume; aspect = 1.0 }
                    ~count:config.Experiment.locations))
             config.Experiment.volumes;
           let after = Sqp_storage.Stats.snapshot (Zindex.io_stats index) in
           let d = Sqp_storage.Stats.diff ~after ~before in
           [
             name;
             T.fmt_int d.Sqp_storage.Stats.physical_reads;
             T.fmt_float (Sqp_storage.Stats.hit_ratio d);
           ])
         [
           ("LRU", Sqp_storage.Buffer_pool.Lru);
           ("FIFO", Sqp_storage.Buffer_pool.Fifo);
           ("CLOCK", Sqp_storage.Buffer_pool.Clock);
         ])
    ()

let run_all () =
  print_figure1 ();
  print_figure2 ();
  print_figure3 ();
  print_figure4 ();
  print_figure5 ();
  List.iter
    (fun ds -> print_range_experiment ds)
    W.Datagen.[ Uniform; Clustered; Diagonal ];
  print_shape_sweep ();
  List.iter
    (fun ds -> print_structure_comparison ds)
    W.Datagen.[ Uniform; Clustered; Diagonal ];
  print_partial_match ();
  print_strategy_comparison W.Datagen.Uniform;
  print_euv_table ();
  print_coarsening ();
  print_proximity ();
  print_spatial_join ();
  print_object_join ();
  print_overlay_scaling ();
  print_ccl ();
  print_interference ();
  print_buffer_policies W.Datagen.Uniform;
  print_fill_factor W.Datagen.Uniform;
  print_3d_experiment ();
  print_curve_comparison ();
  print_figure6 ()
