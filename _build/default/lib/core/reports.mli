(** Printable reproductions of every figure and experiment table in the
    paper.  [bench/main.exe] and [bin/main.exe] are thin wrappers over
    this module; each function writes an ASCII table or figure to stdout.

    The experiment index in DESIGN.md maps paper artifacts to these
    functions. *)

val print_figure1 : unit -> unit
(** Figure 1: the range query [1 <= X <= 3 & 0 <= Y <= 4] as a box. *)

val print_figure2 : unit -> unit
(** Figure 2: decomposition of that box, with z-value labels. *)

val print_figure3 : unit -> unit
(** Figure 3: the z values inside element 001 are consecutive. *)

val print_figure4 : unit -> unit
(** Figure 4: the z curve and the rank of [3, 5]. *)

val print_figure5 : unit -> unit
(** Figure 5: the range-search merge, traced step by step. *)

val print_figure6 : ?datasets:Sqp_workload.Datagen.dataset list -> unit -> unit
(** Figure 6 a/b/c: page-partition maps for U, C, D. *)

val print_range_experiment :
  ?config:Experiment.config -> Sqp_workload.Datagen.dataset -> unit
(** The Section 5.3.2 range-query table for one dataset. *)

val print_shape_sweep : ?config:Experiment.config -> unit -> unit
(** Aspect sweep at fixed volume: long-narrow vs square queries. *)

val print_structure_comparison :
  ?config:Experiment.config -> Sqp_workload.Datagen.dataset -> unit
(** zkd B+-tree vs bucket kd tree vs linear scan. *)

val print_partial_match : ?config:Experiment.config -> unit -> unit
(** Partial-match page accesses vs N with fitted exponent. *)

val print_strategy_comparison :
  ?config:Experiment.config -> Sqp_workload.Datagen.dataset -> unit
(** Ablation: Merge vs Lazy_merge vs Bigmin vs Scan on the same queries. *)

val print_euv_table : unit -> unit
(** Section 5.1: E(U,V) border sensitivity and cyclicity. *)

val print_coarsening : unit -> unit
(** Section 5.1: the boundary-expansion optimization trade-off. *)

val print_proximity : unit -> unit
(** Section 5.2: proximity preservation of z order. *)

val print_spatial_join : unit -> unit
(** Section 4: merge vs nested-loop spatial join costs. *)

val print_overlay_scaling : unit -> unit
(** Section 6 / 5.1: AG overlay (surface) vs grid overlay (volume) as
    resolution grows. *)

val print_ccl : unit -> unit
(** Section 6: connected component labelling on elements vs pixels. *)

val print_interference : unit -> unit
(** Section 6: interference detection via spatial join vs brute force. *)

val print_fill_factor :
  ?config:Experiment.config -> Sqp_workload.Datagen.dataset -> unit
(** Bulk-load fill-factor ablation: page count and per-query accesses as
    leaves are packed less tightly (the paper's 250-page tree is fill
    1.0). *)

val print_3d_experiment : unit -> unit
(** The "experiments in higher dimensions are still needed" follow-up:
    range and partial-match queries over 3d uniform data, with the
    k-dimensional block-model predictions (28/3 pages per block). *)

val print_curve_comparison : unit -> unit
(** Clustering ablation: pages holding the answers of square queries when
    points are packed in z order vs Hilbert order vs row-major order. *)

val print_object_join : unit -> unit
(** Disk-resident spatial join ({!Sqp_btree.Zobjects}): page accesses of
    the synchronized leaf-chain sweep vs the quadratic pairing it
    replaces. *)

val print_buffer_policies :
  ?config:Experiment.config -> Sqp_workload.Datagen.dataset -> unit
(** Section 4's buffering claim: physical reads under LRU / FIFO / CLOCK
    with a small pool, same query stream. *)

val run_all : unit -> unit
(** Everything above, in paper order. *)
