type t = { parent : int array; rank : int array; mutable sets : int }

let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0; sets = n }

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let root = find t p in
    t.parent.(i) <- root;
    root
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra <> rb then begin
    t.sets <- t.sets - 1;
    if t.rank.(ra) < t.rank.(rb) then t.parent.(ra) <- rb
    else if t.rank.(ra) > t.rank.(rb) then t.parent.(rb) <- ra
    else begin
      t.parent.(rb) <- ra;
      t.rank.(ra) <- t.rank.(ra) + 1
    end
  end

let same t a b = find t a = find t b

let count t = t.sets

let compress_labels t =
  let n = Array.length t.parent in
  let mapping = Hashtbl.create 16 in
  Array.init n (fun i ->
      let root = find t i in
      match Hashtbl.find_opt mapping root with
      | Some l -> l
      | None ->
          let l = Hashtbl.length mapping in
          Hashtbl.replace mapping root l;
          l)
