(** Disjoint-set forest with union by rank and path compression. *)

type t

val create : int -> t
(** [create n]: elements [0 .. n-1], each its own set. *)

val find : t -> int -> int
(** Canonical representative. *)

val union : t -> int -> int -> unit

val same : t -> int -> int -> bool

val count : t -> int
(** Number of distinct sets. *)

val compress_labels : t -> int array
(** [labels.(i)]: a dense label in [0 .. count-1] for element [i]'s set. *)
