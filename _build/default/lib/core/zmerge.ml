module B = Sqp_zorder.Bitstring

type stats = { pairs : int; items : int; comparisons : int }

type ('a, 'b) item = Left of 'a | Right of 'b

let pairs left right =
  let comparisons = ref 0 in
  let items =
    List.map (fun (z, v) -> (z, Left v)) left
    @ List.map (fun (z, v) -> (z, Right v)) right
  in
  let items =
    List.sort
      (fun (za, _) (zb, _) ->
        incr comparisons;
        B.compare za zb)
      items
  in
  let stack_l = ref [] and stack_r = ref [] in
  let pop_closed z stack =
    let rec go = function
      | (ze, _) :: rest
        when (incr comparisons;
              not (B.is_prefix ze z)) ->
          go rest
      | kept -> kept
    in
    stack := go !stack
  in
  let out = ref [] and count = ref 0 in
  List.iter
    (fun (z, item) ->
      pop_closed z stack_l;
      pop_closed z stack_r;
      match item with
      | Left a ->
          List.iter
            (fun (_, b) ->
              incr count;
              out := (a, b) :: !out)
            !stack_r;
          stack_l := (z, a) :: !stack_l
      | Right b ->
          List.iter
            (fun (_, a) ->
              incr count;
              out := (a, b) :: !out)
            !stack_l;
          stack_r := (z, b) :: !stack_r)
    items;
  (List.rev !out, { pairs = !count; items = List.length items; comparisons = !comparisons })

let pairs_naive left right =
  let comparisons = ref 0 in
  let out = ref [] and count = ref 0 in
  List.iter
    (fun (za, a) ->
      List.iter
        (fun (zb, b) ->
          incr comparisons;
          if B.is_prefix za zb || B.is_prefix zb za then begin
            incr count;
            out := (a, b) :: !out
          end)
        right)
    left;
  ( List.rev !out,
    {
      pairs = !count;
      items = List.length left + List.length right;
      comparisons = !comparisons;
    } )
