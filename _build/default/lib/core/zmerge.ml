module B = Sqp_zorder.Bitstring

type stats = { pairs : int; items : int; comparisons : int }

type ('a, 'b) item = Left of 'a | Right of 'b

(* Observability: one span per merge with its work counters, plus running
   totals in the ambient metrics registry.  One branch when tracing is
   off, so the hot sequential path is unchanged. *)
let observed name merge left right =
  if not (Sqp_obs.Trace.global_enabled ()) then merge left right
  else begin
    let tracer = Sqp_obs.Trace.global () in
    Sqp_obs.Trace.span_begin tracer name;
    let ((_, s) as r) = merge left right in
    Sqp_obs.Trace.span_end
      ~attrs:(fun () ->
        Sqp_obs.Trace.
          [
            ("pairs", Int s.pairs);
            ("items", Int s.items);
            ("comparisons", Int s.comparisons);
          ])
      tracer;
    let m = Sqp_obs.Metrics.global () in
    let bump suffix n =
      Sqp_obs.Metrics.add (Sqp_obs.Metrics.counter m (name ^ "." ^ suffix)) n
    in
    bump "merges" 1;
    bump "pairs" s.pairs;
    bump "items" s.items;
    bump "comparisons" s.comparisons;
    r
  end

let pairs_impl left right =
  let comparisons = ref 0 in
  let items =
    List.map (fun (z, v) -> (z, Left v)) left
    @ List.map (fun (z, v) -> (z, Right v)) right
  in
  let items =
    List.sort
      (fun (za, _) (zb, _) ->
        incr comparisons;
        B.compare za zb)
      items
  in
  let stack_l = ref [] and stack_r = ref [] in
  let pop_closed z stack =
    let rec go = function
      | (ze, _) :: rest
        when (incr comparisons;
              not (B.is_prefix ze z)) ->
          go rest
      | kept -> kept
    in
    stack := go !stack
  in
  let out = ref [] and count = ref 0 in
  List.iter
    (fun (z, item) ->
      pop_closed z stack_l;
      pop_closed z stack_r;
      match item with
      | Left a ->
          List.iter
            (fun (_, b) ->
              incr count;
              out := (a, b) :: !out)
            !stack_r;
          stack_l := (z, a) :: !stack_l
      | Right b ->
          List.iter
            (fun (_, a) ->
              incr count;
              out := (a, b) :: !out)
            !stack_l;
          stack_r := (z, b) :: !stack_r)
    items;
  (List.rev !out, { pairs = !count; items = List.length items; comparisons = !comparisons })

let pairs left right = observed "zmerge.pairs" pairs_impl left right

let pairs_naive_impl left right =
  let comparisons = ref 0 in
  let out = ref [] and count = ref 0 in
  List.iter
    (fun (za, a) ->
      List.iter
        (fun (zb, b) ->
          incr comparisons;
          if B.is_prefix za zb || B.is_prefix zb za then begin
            incr count;
            out := (a, b) :: !out
          end)
        right)
    left;
  ( List.rev !out,
    {
      pairs = !count;
      items = List.length left + List.length right;
      comparisons = !comparisons;
    } )

let pairs_naive left right = observed "zmerge.pairs_naive" pairs_naive_impl left right
