(** Containment merge of two z-ordered element sequences — the engine
    behind the spatial join, reusable outside the relational layer.

    Input sequences need not be sorted (they are sorted internally) and
    may contain nested elements.  A pair [(a, b)] is produced whenever
    [a]'s element contains [b]'s or vice versa. *)

type stats = { pairs : int; items : int; comparisons : int }

val pairs :
  (Sqp_zorder.Element.t * 'a) list ->
  (Sqp_zorder.Element.t * 'b) list ->
  ('a * 'b) list * stats
(** Stack-based single sweep, O(n log n + output). *)

val pairs_naive :
  (Sqp_zorder.Element.t * 'a) list ->
  (Sqp_zorder.Element.t * 'b) list ->
  ('a * 'b) list * stats
(** All-pairs containment test; the oracle. *)
