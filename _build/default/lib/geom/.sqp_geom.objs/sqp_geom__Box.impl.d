lib/geom/box.ml: Array Format List Printf Sqp_zorder String
