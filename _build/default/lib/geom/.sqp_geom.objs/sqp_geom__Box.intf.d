lib/geom/box.mli: Format Point Sqp_zorder
