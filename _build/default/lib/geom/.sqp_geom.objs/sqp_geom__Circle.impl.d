lib/geom/circle.ml: Array Box Format Sqp_zorder
