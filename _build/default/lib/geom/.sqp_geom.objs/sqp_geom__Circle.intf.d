lib/geom/circle.mli: Box Format Sqp_zorder
