lib/geom/point.ml: Array Format Stdlib String
