lib/geom/polygon.ml: Array Box Format List Printf Sqp_zorder String
