lib/geom/polygon.mli: Box Format Sqp_zorder
