lib/geom/shape.ml: Box Circle Polygon Sqp_zorder
