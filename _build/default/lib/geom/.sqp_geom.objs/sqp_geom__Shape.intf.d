lib/geom/shape.mli: Box Circle Format Polygon Sqp_zorder
