type t = { lo : int array; hi : int array }

let make ~lo ~hi =
  let k = Array.length lo in
  if Array.length hi <> k || k = 0 then invalid_arg "Box.make: bad arity";
  for i = 0 to k - 1 do
    if lo.(i) > hi.(i) then invalid_arg "Box.make: lo > hi"
  done;
  { lo = Array.copy lo; hi = Array.copy hi }

let of_ranges ranges =
  let lo = Array.of_list (List.map fst ranges)
  and hi = Array.of_list (List.map snd ranges) in
  make ~lo ~hi

let dims b = Array.length b.lo

let lo b = Array.copy b.lo
let hi b = Array.copy b.hi

let extent b i = b.hi.(i) - b.lo.(i) + 1

let extents b = Array.init (dims b) (extent b)

let volume b =
  let v = ref 1.0 in
  for i = 0 to dims b - 1 do
    v := !v *. float_of_int (extent b i)
  done;
  !v

let contains_point b p =
  Array.length p = dims b
  &&
  let rec go i =
    i = dims b || (b.lo.(i) <= p.(i) && p.(i) <= b.hi.(i) && go (i + 1))
  in
  go 0

let contains_box outer inner =
  dims outer = dims inner
  &&
  let rec go i =
    i = dims outer
    || (outer.lo.(i) <= inner.lo.(i) && inner.hi.(i) <= outer.hi.(i) && go (i + 1))
  in
  go 0

let overlaps a b =
  dims a = dims b
  &&
  let rec go i =
    i = dims a || (a.lo.(i) <= b.hi.(i) && b.lo.(i) <= a.hi.(i) && go (i + 1))
  in
  go 0

let intersection a b =
  if not (overlaps a b) then None
  else
    Some
      (make
         ~lo:(Array.init (dims a) (fun i -> max a.lo.(i) b.lo.(i)))
         ~hi:(Array.init (dims a) (fun i -> min a.hi.(i) b.hi.(i))))

let equal a b = a.lo = b.lo && a.hi = b.hi

let translate b delta =
  if Array.length delta <> dims b then invalid_arg "Box.translate: arity";
  make
    ~lo:(Array.mapi (fun i v -> v + delta.(i)) b.lo)
    ~hi:(Array.mapi (fun i v -> v + delta.(i)) b.hi)

let clip b ~side =
  let lo = Array.map (fun v -> max 0 v) b.lo
  and hi = Array.map (fun v -> min (side - 1) v) b.hi in
  let rec bad i = i < dims b && (lo.(i) > hi.(i) || bad (i + 1)) in
  if bad 0 then None else Some (make ~lo ~hi)

let classifier space b =
  (* Clip to the grid: the portion outside the grid holds no pixels. *)
  match clip b ~side:(Sqp_zorder.Space.side space) with
  | None -> fun _ -> Sqp_zorder.Decompose.Outside
  | Some b -> Sqp_zorder.Decompose.box_classifier space ~lo:b.lo ~hi:b.hi

let pp fmt b =
  Format.fprintf fmt "[%s]"
    (String.concat "; "
       (List.init (dims b) (fun i -> Printf.sprintf "%d:%d" b.lo.(i) b.hi.(i))))
