(** Axis-aligned boxes with inclusive integer bounds — the query regions
    of the range-search problem and the bounding volumes of CAD parts. *)

type t = private { lo : int array; hi : int array }

val make : lo:int array -> hi:int array -> t
(** @raise Invalid_argument if arities differ or [lo.(i) > hi.(i)]. *)

val of_ranges : (int * int) list -> t
(** [of_ranges [(xlo, xhi); (ylo, yhi); ...]]. *)

val dims : t -> int

val lo : t -> int array
val hi : t -> int array

val extent : t -> int -> int
(** Inclusive extent along an axis: [hi - lo + 1]. *)

val extents : t -> int array

val volume : t -> float

val contains_point : t -> Point.t -> bool

val contains_box : t -> t -> bool
(** [contains_box outer inner]. *)

val overlaps : t -> t -> bool

val intersection : t -> t -> t option

val equal : t -> t -> bool

val translate : t -> int array -> t

val clip : t -> side:int -> t option
(** Intersect with the grid [0, side-1]^k; [None] if fully outside. *)

val classifier : Sqp_zorder.Space.t -> t -> Sqp_zorder.Decompose.classifier
(** Inside / Outside / Crosses test of elements against the box. *)

val pp : Format.formatter -> t -> unit
