type t = { cx : int; cy : int; radius : int }

let make ~cx ~cy ~radius =
  if radius < 0 then invalid_arg "Circle.make: negative radius";
  { cx; cy; radius }

let contains_cell c x y =
  let dx = x - c.cx and dy = y - c.cy in
  (dx * dx) + (dy * dy) <= c.radius * c.radius

let bounding_box c =
  Box.make
    ~lo:[| c.cx - c.radius; c.cy - c.radius |]
    ~hi:[| c.cx + c.radius; c.cy + c.radius |]

(* Distance bounds from the circle center to the box of cell centers. *)
let classify_box c ~xlo ~xhi ~ylo ~yhi : Sqp_zorder.Decompose.classification =
  let clamp v lo hi = max lo (min hi v) in
  let nx = clamp c.cx xlo xhi and ny = clamp c.cy ylo yhi in
  let min_dx = nx - c.cx and min_dy = ny - c.cy in
  let min_d2 = (min_dx * min_dx) + (min_dy * min_dy) in
  let far v lo hi = max (abs (v - lo)) (abs (v - hi)) in
  let max_dx = far c.cx xlo xhi and max_dy = far c.cy ylo yhi in
  let max_d2 = (max_dx * max_dx) + (max_dy * max_dy) in
  let r2 = c.radius * c.radius in
  if max_d2 <= r2 then Inside else if min_d2 > r2 then Outside else Crosses

let classifier space c =
  if Sqp_zorder.Space.dims space <> 2 then invalid_arg "Circle.classifier: 2d only";
  fun e ->
    let lo, hi = Sqp_zorder.Element.box space e in
    classify_box c ~xlo:lo.(0) ~xhi:hi.(0) ~ylo:lo.(1) ~yhi:hi.(1)

let pp fmt c = Format.fprintf fmt "circle[(%d,%d) r=%d]" c.cx c.cy c.radius
