(** Discs on the integer grid: a cell belongs to the disc iff its center
    lies within [radius] of the disc center (measured center-to-center). *)

type t = private { cx : int; cy : int; radius : int }

val make : cx:int -> cy:int -> radius:int -> t
(** Center cell [(cx, cy)]; radius in cells, [>= 0]. *)

val contains_cell : t -> int -> int -> bool

val bounding_box : t -> Box.t

val classify_box : t -> xlo:int -> xhi:int -> ylo:int -> yhi:int -> Sqp_zorder.Decompose.classification

val classifier : Sqp_zorder.Space.t -> t -> Sqp_zorder.Decompose.classifier

val pp : Format.formatter -> t -> unit
