type t = int array

let make = Array.of_list

let dims = Array.length

let coord p i = p.(i)

let equal a b = a = b

let compare = Stdlib.compare

let fold2 f init a b =
  if Array.length a <> Array.length b then invalid_arg "Point: dimension mismatch";
  let acc = ref init in
  Array.iteri (fun i ai -> acc := f !acc ai b.(i)) a;
  !acc

let chebyshev a b = fold2 (fun acc x y -> max acc (abs (x - y))) 0 a b

let manhattan a b = fold2 (fun acc x y -> acc + abs (x - y)) 0 a b

let euclidean_sq a b = fold2 (fun acc x y -> acc + ((x - y) * (x - y))) 0 a b

let in_grid ~side p = Array.for_all (fun c -> c >= 0 && c < side) p

let pp fmt p =
  Format.fprintf fmt "(%s)"
    (String.concat ", " (Array.to_list (Array.map string_of_int p)))
