(** Integer grid points in k dimensions. *)

type t = int array

val make : int list -> t

val dims : t -> int

val coord : t -> int -> int

val equal : t -> t -> bool

val compare : t -> t -> int
(** Lexicographic on coordinates. *)

val chebyshev : t -> t -> int

val manhattan : t -> t -> int

val euclidean_sq : t -> t -> int

val in_grid : side:int -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints as [(x, y, ...)]. *)
