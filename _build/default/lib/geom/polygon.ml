type t = { verts : (int * int) array }

let make verts =
  if List.length verts < 3 then invalid_arg "Polygon.make: need >= 3 vertices";
  { verts = Array.of_list verts }

let vertices p = Array.to_list p.verts

let bounding_box p =
  let xs = Array.map fst p.verts and ys = Array.map snd p.verts in
  let amin = Array.fold_left min max_int and amax = Array.fold_left max min_int in
  (* Vertices live on grid lines; the cells possibly covered extend from
     min vertex to max vertex - 1 (cells are [x, x+1) spans). *)
  Box.make
    ~lo:[| amin xs; amin ys |]
    ~hi:[| max (amin xs) (amax xs - 1); max (amin ys) (amax ys - 1) |]

let area2 p =
  let n = Array.length p.verts in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    let x1, y1 = p.verts.(i) and x2, y2 = p.verts.((i + 1) mod n) in
    acc := !acc + ((x1 * y2) - (x2 * y1))
  done;
  !acc

let edges p =
  let n = Array.length p.verts in
  List.init n (fun i -> (p.verts.(i), p.verts.((i + 1) mod n)))

(* Even-odd ray cast from the cell center towards +x. *)
let contains_cell p x y =
  let px = float_of_int x +. 0.5 and py = float_of_int y +. 0.5 in
  let crossings = ref 0 in
  List.iter
    (fun ((x1, y1), (x2, y2)) ->
      let x1 = float_of_int x1 and y1 = float_of_int y1
      and x2 = float_of_int x2 and y2 = float_of_int y2 in
      (* Does the edge cross the horizontal line y = py with x > px? *)
      if (y1 <= py && py < y2) || (y2 <= py && py < y1) then begin
        let t = (py -. y1) /. (y2 -. y1) in
        let xint = x1 +. (t *. (x2 -. x1)) in
        if xint > px then incr crossings
      end)
    (edges p);
  !crossings land 1 = 1

(* Liang-Barsky segment/rectangle intersection in continuous space. *)
let segment_intersects_rect (x1, y1) (x2, y2) ~rxlo ~rxhi ~rylo ~ryhi =
  let x1 = float_of_int x1 and y1 = float_of_int y1
  and x2 = float_of_int x2 and y2 = float_of_int y2 in
  let dx = x2 -. x1 and dy = y2 -. y1 in
  let t0 = ref 0.0 and t1 = ref 1.0 in
  let clip p q =
    (* Constraint p * t <= q. *)
    if p = 0.0 then q >= 0.0
    else begin
      let r = q /. p in
      if p < 0.0 then
        if r > !t1 then false
        else begin
          if r > !t0 then t0 := r;
          true
        end
      else if r < !t0 then false
      else begin
        if r < !t1 then t1 := r;
        true
      end
    end
  in
  clip (-.dx) (x1 -. rxlo)
  && clip dx (rxhi -. x1)
  && clip (-.dy) (y1 -. rylo)
  && clip dy (ryhi -. y1)
  && !t0 <= !t1

let edge_crosses_box p ~xlo ~xhi ~ylo ~yhi =
  let rxlo = float_of_int xlo and rxhi = float_of_int (xhi + 1)
  and rylo = float_of_int ylo and ryhi = float_of_int (yhi + 1) in
  List.exists
    (fun (a, b) -> segment_intersects_rect a b ~rxlo ~rxhi ~rylo ~ryhi)
    (edges p)

let classify_box p ~xlo ~xhi ~ylo ~yhi : Sqp_zorder.Decompose.classification =
  if edge_crosses_box p ~xlo ~xhi ~ylo ~yhi then Crosses
  else if contains_cell p xlo ylo then Inside
  else Outside

let classifier space p =
  if Sqp_zorder.Space.dims space <> 2 then invalid_arg "Polygon.classifier: 2d only";
  fun e ->
    let lo, hi = Sqp_zorder.Element.box space e in
    classify_box p ~xlo:lo.(0) ~xhi:hi.(0) ~ylo:lo.(1) ~yhi:hi.(1)

let pp fmt p =
  Format.fprintf fmt "polygon[%s]"
    (String.concat "; "
       (List.map (fun (x, y) -> Printf.sprintf "(%d,%d)" x y) (vertices p)))
