(** Simple 2d polygons on the integer grid.

    Vertices are given in order (either orientation); edges may not
    self-intersect (not checked).  Point membership uses the even-odd rule
    with half-open semantics robust for integer vertices: a grid cell
    [(x, y)] is tested at its center [(x + 0.5, y + 0.5)], so a polygon
    with vertices on grid lines yields an unambiguous pixel set. *)

type t

val make : (int * int) list -> t
(** @raise Invalid_argument with fewer than 3 vertices. *)

val vertices : t -> (int * int) list

val bounding_box : t -> Box.t

val area2 : t -> int
(** Twice the signed area (shoelace). *)

val contains_cell : t -> int -> int -> bool
(** Even-odd test of the cell center [(x + 0.5, y + 0.5)]. *)

val edge_crosses_box : t -> xlo:int -> xhi:int -> ylo:int -> yhi:int -> bool
(** Does any polygon edge intersect the closed cell-box
    [[xlo, xhi+1] x [ylo, yhi+1]] in continuous space? *)

val classify_box : t -> xlo:int -> xhi:int -> ylo:int -> yhi:int -> Sqp_zorder.Decompose.classification
(** Inside / Outside / Crosses for a cell-aligned box. *)

val classifier : Sqp_zorder.Space.t -> t -> Sqp_zorder.Decompose.classifier

val pp : Format.formatter -> t -> unit
