type t =
  | Box of Box.t
  | Polygon of Polygon.t
  | Circle of Circle.t

let bounding_box = function
  | Box b -> b
  | Polygon p -> Polygon.bounding_box p
  | Circle c -> Circle.bounding_box c

let contains_cell shape x y =
  match shape with
  | Box b ->
      if Box.dims b <> 2 then invalid_arg "Shape.contains_cell: non-2d box";
      Box.contains_point b [| x; y |]
  | Polygon p -> Polygon.contains_cell p x y
  | Circle c -> Circle.contains_cell c x y

let classifier space = function
  | Box b -> Box.classifier space b
  | Polygon p -> Polygon.classifier space p
  | Circle c -> Circle.classifier space c

let decompose ?options space shape =
  Sqp_zorder.Decompose.run ?options space (classifier space shape)

let pp fmt = function
  | Box b -> Box.pp fmt b
  | Polygon p -> Polygon.pp fmt p
  | Circle c -> Circle.pp fmt c
