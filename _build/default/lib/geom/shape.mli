(** Unified spatial-object type: the things a PROBE "specialized
    processor" would hand to the approximate-geometry object class. *)

type t =
  | Box of Box.t
  | Polygon of Polygon.t
  | Circle of Circle.t

val bounding_box : t -> Box.t

val contains_cell : t -> int -> int -> bool
(** 2d only for [Polygon] and [Circle]; a [Box] may be any dimension
    (cells are addressed by the first two coordinates for 2d shapes).
    @raise Invalid_argument for a non-2d box. *)

val classifier : Sqp_zorder.Space.t -> t -> Sqp_zorder.Decompose.classifier

val decompose :
  ?options:Sqp_zorder.Decompose.options ->
  Sqp_zorder.Space.t ->
  t ->
  Sqp_zorder.Element.t list
(** The paper's [decompose] operator for arbitrary objects. *)

val pp : Format.formatter -> t -> unit
