lib/grid/bitgrid.ml: Array Bytes Char Format List Printf Sqp_zorder Stack
