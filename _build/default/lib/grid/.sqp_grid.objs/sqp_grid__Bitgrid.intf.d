lib/grid/bitgrid.mli: Format Sqp_zorder
