type t = { side : int; bits : Bytes.t }

let create ~side =
  if side < 1 || side > 4096 then invalid_arg "Bitgrid.create: side out of range";
  { side; bits = Bytes.make ((side * side + 7) / 8) '\000' }

let side t = t.side

let copy t = { t with bits = Bytes.copy t.bits }

let index t x y =
  if x < 0 || x >= t.side || y < 0 || y >= t.side then
    invalid_arg (Printf.sprintf "Bitgrid: (%d, %d) out of range" x y);
  (y * t.side) + x

let get t x y =
  let i = index t x y in
  Char.code (Bytes.get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t x y b =
  let i = index t x y in
  let byte = i lsr 3 and mask = 1 lsl (i land 7) in
  let old = Char.code (Bytes.get t.bits byte) in
  Bytes.set t.bits byte (Char.chr (if b then old lor mask else old land lnot mask))

let count t =
  let n = ref 0 in
  for i = 0 to Bytes.length t.bits - 1 do
    let b = Char.code (Bytes.get t.bits i) in
    let rec pop acc v = if v = 0 then acc else pop (acc + (v land 1)) (v lsr 1) in
    n := !n + pop 0 b
  done;
  !n

let equal a b = a.side = b.side && Bytes.equal a.bits b.bits

let check_space space =
  if Sqp_zorder.Space.dims space <> 2 then invalid_arg "Bitgrid: 2d spaces only";
  if Sqp_zorder.Space.depth space > 12 then invalid_arg "Bitgrid: space too large"

let of_classifier space classify =
  check_space space;
  let s = Sqp_zorder.Space.side space in
  let g = create ~side:s in
  for x = 0 to s - 1 do
    for y = 0 to s - 1 do
      match classify (Sqp_zorder.Element.pixel space [| x; y |]) with
      | Sqp_zorder.Decompose.Inside | Sqp_zorder.Decompose.Crosses -> set g x y true
      | Sqp_zorder.Decompose.Outside -> ()
    done
  done;
  g

let of_elements space elements =
  check_space space;
  let g = create ~side:(Sqp_zorder.Space.side space) in
  List.iter
    (fun e ->
      let lo, hi = Sqp_zorder.Element.box space e in
      for x = lo.(0) to hi.(0) do
        for y = lo.(1) to hi.(1) do
          set g x y true
        done
      done)
    elements;
  g

let to_elements space t =
  check_space space;
  if Sqp_zorder.Space.side space <> t.side then invalid_arg "Bitgrid.to_elements: size mismatch";
  let classify e : Sqp_zorder.Decompose.classification =
    let lo, hi = Sqp_zorder.Element.box space e in
    let all = ref true and any = ref false in
    (try
       for x = lo.(0) to hi.(0) do
         for y = lo.(1) to hi.(1) do
           if get t x y then any := true else all := false;
           if !any && not !all then raise Exit
         done
       done
     with Exit -> ());
    if !all then Inside else if !any then Crosses else Outside
  in
  (* The classifier never answers Crosses at pixel level, so the
     decomposition is exact. *)
  Sqp_zorder.Decompose.run space classify

type op_stats = { cells_visited : int }

let binop f a b =
  if a.side <> b.side then invalid_arg "Bitgrid: size mismatch";
  let g = create ~side:a.side in
  (* Pixel at a time, as the naive grid algorithm would. *)
  for x = 0 to a.side - 1 do
    for y = 0 to a.side - 1 do
      set g x y (f (get a x y) (get b x y))
    done
  done;
  (g, { cells_visited = a.side * a.side })

let union = binop ( || )
let inter = binop ( && )
let diff = binop (fun x y -> x && not y)
let xor = binop ( <> )

let perimeter t =
  let s = t.side in
  let total = ref 0 in
  for x = 0 to s - 1 do
    for y = 0 to s - 1 do
      if get t x y then
        List.iter
          (fun (dx, dy) ->
            let nx = x + dx and ny = y + dy in
            let black = nx >= 0 && nx < s && ny >= 0 && ny < s && get t nx ny in
            if not black then incr total)
          [ (1, 0); (-1, 0); (0, 1); (0, -1) ]
    done
  done;
  !total

let centroid t =
  let n = ref 0 and sx = ref 0 and sy = ref 0 in
  for x = 0 to t.side - 1 do
    for y = 0 to t.side - 1 do
      if get t x y then begin
        incr n;
        sx := !sx + x;
        sy := !sy + y
      end
    done
  done;
  if !n = 0 then None
  else Some (float_of_int !sx /. float_of_int !n, float_of_int !sy /. float_of_int !n)

type components = { count : int; labels : int array array; areas : int array }

let connected_components t =
  let s = t.side in
  let labels = Array.make_matrix s s (-1) in
  let areas = ref [] in
  let n = ref 0 in
  let stack = Stack.create () in
  for y0 = 0 to s - 1 do
    for x0 = 0 to s - 1 do
      if get t x0 y0 && labels.(y0).(x0) = -1 then begin
        let label = !n in
        incr n;
        let area = ref 0 in
        Stack.push (x0, y0) stack;
        labels.(y0).(x0) <- label;
        while not (Stack.is_empty stack) do
          let x, y = Stack.pop stack in
          incr area;
          List.iter
            (fun (dx, dy) ->
              let nx = x + dx and ny = y + dy in
              if
                nx >= 0 && nx < s && ny >= 0 && ny < s
                && get t nx ny
                && labels.(ny).(nx) = -1
              then begin
                labels.(ny).(nx) <- label;
                Stack.push (nx, ny) stack
              end)
            [ (1, 0); (-1, 0); (0, 1); (0, -1) ]
        done;
        areas := !area :: !areas
      end
    done
  done;
  { count = !n; labels; areas = Array.of_list (List.rev !areas) }

let pp fmt t =
  for y = t.side - 1 downto 0 do
    for x = 0 to t.side - 1 do
      Format.pp_print_char fmt (if get t x y then '#' else '.')
    done;
    Format.pp_print_newline fmt ()
  done
