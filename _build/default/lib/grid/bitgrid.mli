(** Explicit 2d bit raster — the representation AG optimizes away.

    The paper's Section 5.1 argues that explicit grids cost volume where
    element sequences cost surface; this module is the explicit grid, used
    both as that baseline and as the correctness oracle for the overlay
    and connected-component algorithms on element sequences. *)

type t

val create : side:int -> t
(** All-white (empty) grid of [side x side] cells.
    @raise Invalid_argument unless [1 <= side <= 4096]. *)

val side : t -> int

val copy : t -> t

val get : t -> int -> int -> bool

val set : t -> int -> int -> bool -> unit

val count : t -> int
(** Number of black cells. *)

val equal : t -> t -> bool

(** {1 Construction from higher-level descriptions} *)

val of_classifier : Sqp_zorder.Space.t -> Sqp_zorder.Decompose.classifier -> t
(** Rasterize pixel by pixel: a cell is black iff the pixel element
    classifies [Inside] or [Crosses] — exactly the pixel set of an exact
    decomposition. *)

val of_elements : Sqp_zorder.Space.t -> Sqp_zorder.Element.t list -> t
(** Paint every cell covered by any of the elements. *)

val to_elements : Sqp_zorder.Space.t -> t -> Sqp_zorder.Element.t list
(** Exact decomposition of the black region (z-ordered). *)

(** {1 Pixel-at-a-time operations (the grid algorithms of Section 6)} *)

type op_stats = { cells_visited : int }

val union : t -> t -> t * op_stats
val inter : t -> t -> t * op_stats
val diff : t -> t -> t * op_stats
val xor : t -> t -> t * op_stats

val perimeter : t -> int
(** Boundary length of the black region: for every black cell, one unit
    per white or out-of-grid 4-neighbour.  Pixel oracle for
    {!Sqp_core.Props.perimeter}. *)

val centroid : t -> (float * float) option
(** Mean black-cell position; [None] if the grid is empty. *)

(** {1 Connected components (pixel flood fill, 4-connectivity)} *)

type components = {
  count : int;
  labels : int array array; (** [labels.(y).(x)]; [-1] for white cells *)
  areas : int array;        (** area per component, indexed by label *)
}

val connected_components : t -> components

val pp : Format.formatter -> t -> unit
(** ASCII art; black = ['#'], white = ['.']; row y=0 printed at the
    bottom. *)
