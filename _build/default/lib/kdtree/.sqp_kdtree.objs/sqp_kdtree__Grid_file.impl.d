lib/kdtree/grid_file.ml: Array Hashtbl List Printf Sqp_geom
