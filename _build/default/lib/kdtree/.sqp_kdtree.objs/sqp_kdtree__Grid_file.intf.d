lib/kdtree/grid_file.mli: Sqp_geom
