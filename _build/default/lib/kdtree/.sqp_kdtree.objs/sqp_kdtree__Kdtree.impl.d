lib/kdtree/kdtree.ml: Array List Sqp_geom
