lib/kdtree/kdtree.mli: Sqp_geom
