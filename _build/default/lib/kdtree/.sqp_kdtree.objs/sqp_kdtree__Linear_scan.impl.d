lib/kdtree/linear_scan.ml: Array List Sqp_geom
