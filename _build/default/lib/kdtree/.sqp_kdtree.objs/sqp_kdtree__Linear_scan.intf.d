lib/kdtree/linear_scan.mli: Sqp_geom
