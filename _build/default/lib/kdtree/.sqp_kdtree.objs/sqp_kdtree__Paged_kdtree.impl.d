lib/kdtree/paged_kdtree.ml: Array List Seq Sqp_geom
