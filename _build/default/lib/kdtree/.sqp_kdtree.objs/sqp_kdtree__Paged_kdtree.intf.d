lib/kdtree/paged_kdtree.mli: Sqp_geom
