lib/kdtree/rtree.ml: Array Float List Printf Sqp_geom
