lib/kdtree/rtree.mli: Sqp_geom
