type 'a bucket = {
  id : int;
  mutable points : (Sqp_geom.Point.t * 'a) list;
  mutable n : int;
  (* Region in directory-cell indices, inclusive. *)
  mutable i0 : int;
  mutable i1 : int;
  mutable j0 : int;
  mutable j1 : int;
}

type 'a t = {
  side : int;
  capacity : int;
  mutable xcuts : int array; (* sorted interior cuts: cell boundary before coordinate c *)
  mutable ycuts : int array;
  mutable dir : 'a bucket array array; (* dir.(i).(j) *)
  mutable size : int;
  mutable next_id : int;
}

let create ?(bucket_capacity = 20) ~side () =
  if bucket_capacity < 1 then invalid_arg "Grid_file.create: capacity < 1";
  if side < 1 then invalid_arg "Grid_file.create: side < 1";
  let b = { id = 0; points = []; n = 0; i0 = 0; i1 = 0; j0 = 0; j1 = 0 } in
  {
    side;
    capacity = bucket_capacity;
    xcuts = [||];
    ycuts = [||];
    dir = [| [| b |] |];
    size = 0;
    next_id = 1;
  }

let length t = t.size

(* Number of cuts <= x = index of the cell containing coordinate x. *)
let cell_of cuts x =
  let lo = ref 0 and hi = ref (Array.length cuts) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cuts.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let cell_low cuts i = if i = 0 then 0 else cuts.(i - 1)

let cell_high t cuts i =
  if i = Array.length cuts then t.side - 1 else cuts.(i) - 1

let directory_size t = (Array.length t.dir, Array.length t.dir.(0))

let distinct_buckets t =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  Array.iter
    (Array.iter (fun b ->
         if not (Hashtbl.mem seen b.id) then begin
           Hashtbl.replace seen b.id ();
           acc := b :: !acc
         end))
    t.dir;
  !acc

let bucket_count t = List.length (distinct_buckets t)

let fresh_bucket t ~i0 ~i1 ~j0 ~j1 =
  let b = { id = t.next_id; points = []; n = 0; i0; i1; j0; j1 } in
  t.next_id <- t.next_id + 1;
  b

(* Insert a new cut splitting directory column/row [pos] of the given
   axis; every cell index > pos shifts by one, and buckets spanning the
   old cell now span both halves. *)
let refine_x t pos cut =
  let nx = Array.length t.xcuts in
  t.xcuts <- Array.init (nx + 1) (fun k -> if k < pos then t.xcuts.(k) else if k = pos then cut else t.xcuts.(k - 1));
  List.iter
    (fun b ->
      if b.i0 > pos then b.i0 <- b.i0 + 1;
      if b.i1 >= pos then b.i1 <- b.i1 + 1)
    (distinct_buckets t);
  let old = t.dir in
  t.dir <-
    Array.init
      (Array.length old + 1)
      (fun i -> Array.copy old.(if i <= pos then i else i - 1))

let refine_y t pos cut =
  let ny = Array.length t.ycuts in
  t.ycuts <- Array.init (ny + 1) (fun k -> if k < pos then t.ycuts.(k) else if k = pos then cut else t.ycuts.(k - 1));
  List.iter
    (fun b ->
      if b.j0 > pos then b.j0 <- b.j0 + 1;
      if b.j1 >= pos then b.j1 <- b.j1 + 1)
    (distinct_buckets t);
  t.dir <-
    Array.map
      (fun col ->
        Array.init
          (Array.length col + 1)
          (fun j -> col.(if j <= pos then j else j - 1)))
      t.dir

let assign_region t b =
  for i = b.i0 to b.i1 do
    for j = b.j0 to b.j1 do
      t.dir.(i).(j) <- b
    done
  done

let rec split t b =
  if b.n <= t.capacity then ()
  else begin
    let spanx = b.i1 - b.i0 + 1 and spany = b.j1 - b.j0 + 1 in
    if spanx > 1 || spany > 1 then begin
      (* Split the bucket region along an existing cut. *)
      let along_x = spanx >= spany in
      let right =
        if along_x then begin
          let mid = b.i0 + (spanx / 2) in
          let r = fresh_bucket t ~i0:mid ~i1:b.i1 ~j0:b.j0 ~j1:b.j1 in
          b.i1 <- mid - 1;
          r
        end
        else begin
          let mid = b.j0 + (spany / 2) in
          let r = fresh_bucket t ~i0:b.i0 ~i1:b.i1 ~j0:mid ~j1:b.j1 in
          b.j1 <- mid - 1;
          r
        end
      in
      assign_region t right;
      let all = b.points in
      b.points <- [];
      b.n <- 0;
      List.iter
        (fun ((p, _) as entry) ->
          let target =
            if along_x then
              if cell_of t.xcuts p.(0) >= right.i0 then right else b
            else if cell_of t.ycuts p.(1) >= right.j0 then right
            else b
          in
          target.points <- entry :: target.points;
          target.n <- target.n + 1)
        all;
      split t b;
      split t right
    end
    else begin
      (* Single directory cell: refine a scale first, then retry. *)
      let xlo = cell_low t.xcuts b.i0 and xhi = cell_high t t.xcuts b.i1 in
      let ylo = cell_low t.ycuts b.j0 and yhi = cell_high t t.ycuts b.j1 in
      let xext = xhi - xlo + 1 and yext = yhi - ylo + 1 in
      if xext = 1 && yext = 1 then () (* unrefinable: tolerate overflow *)
      else if xext >= yext then begin
        let cut = xlo + (xext / 2) in
        refine_x t b.i0 cut;
        split t b
      end
      else begin
        let cut = ylo + (yext / 2) in
        refine_y t b.j0 cut;
        split t b
      end
    end
  end

let insert t p v =
  if Array.length p <> 2 then invalid_arg "Grid_file.insert: 2d points only";
  if p.(0) < 0 || p.(0) >= t.side || p.(1) < 0 || p.(1) >= t.side then
    invalid_arg "Grid_file.insert: point outside the square";
  let b = t.dir.(cell_of t.xcuts p.(0)).(cell_of t.ycuts p.(1)) in
  b.points <- (p, v) :: b.points;
  b.n <- b.n + 1;
  t.size <- t.size + 1;
  split t b

type query_stats = { data_pages : int; results : int }

let range_search t box =
  let lo = Sqp_geom.Box.lo box and hi = Sqp_geom.Box.hi box in
  let clamp v = max 0 (min (t.side - 1) v) in
  if lo.(0) >= t.side || lo.(1) >= t.side || hi.(0) < 0 || hi.(1) < 0 then
    ([], { data_pages = 0; results = 0 })
  else begin
    let ilo = cell_of t.xcuts (clamp lo.(0)) and ihi = cell_of t.xcuts (clamp hi.(0)) in
    let jlo = cell_of t.ycuts (clamp lo.(1)) and jhi = cell_of t.ycuts (clamp hi.(1)) in
    let seen = Hashtbl.create 16 in
    let acc = ref [] in
    for i = ilo to ihi do
      for j = jlo to jhi do
        let b = t.dir.(i).(j) in
        if not (Hashtbl.mem seen b.id) then begin
          Hashtbl.replace seen b.id ();
          List.iter
            (fun (p, v) ->
              if Sqp_geom.Box.contains_point box p then acc := (p, v) :: !acc)
            b.points
        end
      done
    done;
    (!acc, { data_pages = Hashtbl.length seen; results = List.length !acc })
  end

let efficiency t stats =
  if stats.data_pages = 0 then 0.0
  else
    float_of_int stats.results
    /. (float_of_int stats.data_pages *. float_of_int t.capacity)

let check_invariants t =
  let exception Bad of string in
  let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
  try
    let nx = Array.length t.dir and ny = Array.length t.dir.(0) in
    if nx <> Array.length t.xcuts + 1 then fail "x directory/scale mismatch";
    if ny <> Array.length t.ycuts + 1 then fail "y directory/scale mismatch";
    for k = 1 to Array.length t.xcuts - 1 do
      if t.xcuts.(k - 1) >= t.xcuts.(k) then fail "x cuts not increasing"
    done;
    for k = 1 to Array.length t.ycuts - 1 do
      if t.ycuts.(k - 1) >= t.ycuts.(k) then fail "y cuts not increasing"
    done;
    let buckets = distinct_buckets t in
    (* Every directory cell points at a bucket whose region contains it,
       and every region cell points back. *)
    for i = 0 to nx - 1 do
      for j = 0 to ny - 1 do
        let b = t.dir.(i).(j) in
        if i < b.i0 || i > b.i1 || j < b.j0 || j > b.j1 then
          fail "cell outside its bucket region"
      done
    done;
    List.iter
      (fun b ->
        for i = b.i0 to b.i1 do
          for j = b.j0 to b.j1 do
            if t.dir.(i).(j) != b then fail "region cell not owned by bucket"
          done
        done;
        if List.length b.points <> b.n then fail "bucket count mismatch";
        let xlo = cell_low t.xcuts b.i0 and xhi = cell_high t t.xcuts b.i1 in
        let ylo = cell_low t.ycuts b.j0 and yhi = cell_high t t.ycuts b.j1 in
        List.iter
          (fun (p, _) ->
            if p.(0) < xlo || p.(0) > xhi || p.(1) < ylo || p.(1) > yhi then
              fail "point outside bucket region")
          b.points;
        let unrefinable = xhi = xlo && yhi = ylo in
        if b.n > t.capacity && not unrefinable then
          fail "bucket %d overfull (%d)" b.id b.n)
      buckets;
    let total = List.fold_left (fun acc b -> acc + b.n) 0 buckets in
    if total <> t.size then fail "size mismatch";
    Ok ()
  with Bad m -> Error m
