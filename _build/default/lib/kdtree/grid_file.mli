(** A 2d grid file ([NIEV84], close kin of EXCELL [TAMM81/82]) — the
    "grid methods" family of the paper's related work, as a third
    disk-resident baseline next to the zkd B+-tree and the bucket kd
    tree.

    Linear scales cut each axis into intervals; a directory maps each
    grid cell to a data bucket; a bucket may serve several directory
    cells as long as its region stays rectangular.  Overflowing buckets
    split along an existing cut when their region spans several cells,
    otherwise a new cut refines the scale first.  Range queries read the
    distinct buckets under the query rectangle — two disk accesses in
    grid-file terms (directory + bucket); we count data buckets, matching
    how the other structures are measured. *)

type 'a t

val create : ?bucket_capacity:int -> side:int -> unit -> 'a t
(** Empty grid file over the coordinate square [0, side-1]^2.
    Default capacity 20. *)

val insert : 'a t -> Sqp_geom.Point.t -> 'a -> unit
(** @raise Invalid_argument if the point lies outside the square. *)

val length : 'a t -> int

val bucket_count : 'a t -> int
(** Data pages. *)

val directory_size : 'a t -> int * int
(** Cells along x and y. *)

type query_stats = { data_pages : int; results : int }

val range_search : 'a t -> Sqp_geom.Box.t -> (Sqp_geom.Point.t * 'a) list * query_stats

val efficiency : 'a t -> query_stats -> float

val check_invariants : 'a t -> (unit, string) result
(** Buckets rectangular and disjoint, covering the directory; every point
    inside its bucket's region; occupancy within capacity except
    unrefinable single-coordinate regions. *)
