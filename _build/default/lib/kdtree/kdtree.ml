type 'a node =
  | Empty
  | Node of {
      point : Sqp_geom.Point.t;
      value : 'a;
      axis : int;
      left : 'a node;   (* coord < point.(axis) *)
      right : 'a node;  (* coord >= point.(axis), excluding the node itself *)
    }

type 'a t = { dims : int; root : 'a node; size : int }

let length t = t.size

let rec node_height = function
  | Empty -> 0
  | Node { left; right; _ } -> 1 + max (node_height left) (node_height right)

let height t = node_height t.root

let build points =
  let n = Array.length points in
  if n = 0 then { dims = 0; root = Empty; size = 0 }
  else begin
    let dims = Array.length (fst points.(0)) in
    Array.iter
      (fun (p, _) ->
        if Array.length p <> dims then invalid_arg "Kdtree.build: mixed dimensions")
      points;
    let pts = Array.copy points in
    (* Build [lo, hi) with the median point at the root of the subtree. *)
    let rec go lo hi depth =
      if lo >= hi then Empty
      else begin
        let axis = depth mod dims in
        let sub = Array.sub pts lo (hi - lo) in
        Array.sort (fun (a, _) (b, _) -> compare a.(axis) b.(axis)) sub;
        Array.blit sub 0 pts lo (hi - lo);
        let mid = (lo + hi) / 2 in
        (* Push [mid] left while its predecessor has an equal coordinate,
           so the right subtree holds strictly >= and the left strictly <
           is preserved (points equal on this axis go right). *)
        let mid = ref mid in
        while !mid > lo && (fst pts.(!mid - 1)).(axis) = (fst pts.(!mid)).(axis) do
          decr mid
        done;
        let m = !mid in
        let point, value = pts.(m) in
        Node
          {
            point;
            value;
            axis;
            left = go lo m (depth + 1);
            right = go (m + 1) hi (depth + 1);
          }
      end
    in
    { dims; root = go 0 n 0; size = n }
  end

let insert t p v =
  let dims = if t.size = 0 then Array.length p else t.dims in
  if Array.length p <> dims then invalid_arg "Kdtree.insert: dimension mismatch";
  let rec go node depth =
    match node with
    | Empty ->
        Node { point = p; value = v; axis = depth mod dims; left = Empty; right = Empty }
    | Node n ->
        if p.(n.axis) < n.point.(n.axis) then Node { n with left = go n.left (depth + 1) }
        else Node { n with right = go n.right (depth + 1) }
  in
  { dims; root = go t.root 0; size = t.size + 1 }

let find t p =
  let rec go = function
    | Empty -> None
    | Node n ->
        if Sqp_geom.Point.equal n.point p then Some n.value
        else if p.(n.axis) < n.point.(n.axis) then go n.left
        else go n.right
  in
  go t.root

type search_stats = { nodes_visited : int; results : int }

let range_search t box =
  let visited = ref 0 in
  let acc = ref [] in
  let lo = Sqp_geom.Box.lo box and hi = Sqp_geom.Box.hi box in
  let rec go = function
    | Empty -> ()
    | Node n ->
        incr visited;
        if Sqp_geom.Box.contains_point box n.point then
          acc := (n.point, n.value) :: !acc;
        if lo.(n.axis) < n.point.(n.axis) then go n.left;
        if hi.(n.axis) >= n.point.(n.axis) then go n.right
  in
  go t.root;
  (!acc, { nodes_visited = !visited; results = List.length !acc })

let nearest t target =
  let visited = ref 0 in
  let best = ref None in
  let best_d2 = ref max_int in
  let rec go = function
    | Empty -> ()
    | Node n ->
        incr visited;
        let d2 = Sqp_geom.Point.euclidean_sq n.point target in
        if d2 < !best_d2 then begin
          best_d2 := d2;
          best := Some (n.point, n.value)
        end;
        let diff = target.(n.axis) - n.point.(n.axis) in
        let near, far = if diff < 0 then (n.left, n.right) else (n.right, n.left) in
        go near;
        if diff * diff <= !best_d2 then go far
  in
  go t.root;
  match !best with
  | None -> None
  | Some pv -> Some (pv, { nodes_visited = !visited; results = 1 })

let check_invariants t =
  let exception Bad of string in
  let rec walk node depth count =
    match node with
    | Empty -> count
    | Node n ->
        if Array.length n.point <> t.dims then raise (Bad "dimension mismatch");
        if n.axis <> depth mod t.dims then raise (Bad "axis out of cycle");
        let check_side side cmp_ok =
          let rec each = function
            | Empty -> ()
            | Node m ->
                if not (cmp_ok m.point.(n.axis)) then raise (Bad "discriminator violated");
                each m.left;
                each m.right
          in
          each side
        in
        check_side n.left (fun c -> c < n.point.(n.axis));
        check_side n.right (fun c -> c >= n.point.(n.axis));
        walk n.right (depth + 1) (walk n.left (depth + 1) (count + 1))
  in
  match walk t.root 0 0 with
  | count -> if count = t.size then Ok () else Error "size mismatch"
  | exception Bad m -> Error m
