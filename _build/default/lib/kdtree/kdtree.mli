(** The kd tree of [BENT75] — the paper's performance yardstick
    ("performance is comparable to that of other practical solutions
    (e.g. the kd tree)").

    In-memory point kd tree: internal nodes discriminate on one
    coordinate, cycling through the axes by depth, exactly as in Bentley's
    original formulation.  Costs are reported as nodes visited. *)

type 'a t

val build : (Sqp_geom.Point.t * 'a) array -> 'a t
(** Balanced build by repeated median partitioning.  O(n log^2 n). *)

val insert : 'a t -> Sqp_geom.Point.t -> 'a -> 'a t
(** Functional insertion (no rebalancing, as in [BENT75]). *)

val length : 'a t -> int

val height : 'a t -> int

val find : 'a t -> Sqp_geom.Point.t -> 'a option

type search_stats = { nodes_visited : int; results : int }

val range_search : 'a t -> Sqp_geom.Box.t -> (Sqp_geom.Point.t * 'a) list * search_stats
(** All points in the (inclusive) box. *)

val nearest : 'a t -> Sqp_geom.Point.t -> ((Sqp_geom.Point.t * 'a) * search_stats) option
(** Nearest neighbour by Euclidean distance; [None] on an empty tree. *)

val check_invariants : 'a t -> (unit, string) result
