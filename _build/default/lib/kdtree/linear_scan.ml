type 'a t = { pages : (Sqp_geom.Point.t * 'a) array array; size : int }

let build ?(page_capacity = 20) points =
  if page_capacity < 1 then invalid_arg "Linear_scan.build: capacity < 1";
  let n = Array.length points in
  let n_pages = (n + page_capacity - 1) / page_capacity in
  let pages =
    Array.init n_pages (fun i ->
        let start = i * page_capacity in
        Array.sub points start (min page_capacity (n - start)))
  in
  { pages; size = n }

let length t = t.size

let page_count t = Array.length t.pages

type query_stats = { data_pages : int; results : int }

let range_search t box =
  let acc = ref [] in
  Array.iter
    (Array.iter (fun (p, v) ->
         if Sqp_geom.Box.contains_point box p then acc := (p, v) :: !acc))
    t.pages;
  (!acc, { data_pages = Array.length t.pages; results = List.length !acc })
