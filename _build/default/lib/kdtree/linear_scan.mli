(** Degenerate baseline: points packed onto pages in arrival order, every
    query reads every page.  The floor any real access method must beat. *)

type 'a t

val build : ?page_capacity:int -> (Sqp_geom.Point.t * 'a) array -> 'a t

val length : 'a t -> int

val page_count : 'a t -> int

type query_stats = { data_pages : int; results : int }

val range_search : 'a t -> Sqp_geom.Box.t -> (Sqp_geom.Point.t * 'a) list * query_stats
