type 'a node =
  | Bucket of (Sqp_geom.Point.t * 'a) array
  | Split of { axis : int; at : int; left : 'a node; right : 'a node }
      (* left: coord < at; right: coord >= at *)

type 'a t = { root : 'a node; size : int; page_capacity : int }

let page_capacity t = t.page_capacity

let length t = t.size

let build ?(page_capacity = 20) points =
  if page_capacity < 1 then invalid_arg "Paged_kdtree.build: capacity < 1";
  let dims = if Array.length points = 0 then 1 else Array.length (fst points.(0)) in
  let rec go pts depth =
    let n = Array.length pts in
    if n <= page_capacity then Bucket pts
    else begin
      let axis = depth mod dims in
      let sorted = Array.copy pts in
      Array.sort (fun (a, _) (b, _) -> compare a.(axis) b.(axis)) sorted;
      let mid = n / 2 in
      (* Split value: the median coordinate; left strictly below.  Degrade
         gracefully when many points share the coordinate. *)
      let at = (fst sorted.(mid)).(axis) in
      let left = Array.of_seq (Seq.filter (fun (p, _) -> p.(axis) < at) (Array.to_seq sorted))
      and right = Array.of_seq (Seq.filter (fun (p, _) -> p.(axis) >= at) (Array.to_seq sorted)) in
      if Array.length left = 0 || Array.length right = 0 then
        (* All points equal on this axis at the median: try the next axis;
           if every axis degenerates the bucket stays oversized. *)
        let rec try_axis a =
          if a = dims then Bucket pts
          else
            let axis = (depth + a) mod dims in
            let sorted = Array.copy pts in
            Array.sort (fun (p, _) (q, _) -> compare p.(axis) q.(axis)) sorted;
            let at = (fst sorted.(n / 2)).(axis) in
            let l = Array.of_seq (Seq.filter (fun (p, _) -> p.(axis) < at) (Array.to_seq sorted))
            and r = Array.of_seq (Seq.filter (fun (p, _) -> p.(axis) >= at) (Array.to_seq sorted)) in
            if Array.length l = 0 || Array.length r = 0 then try_axis (a + 1)
            else Split { axis; at; left = go l (depth + 1); right = go r (depth + 1) }
        in
        try_axis 1
      else Split { axis; at; left = go left (depth + 1); right = go right (depth + 1) }
    end
  in
  { root = go points 0; size = Array.length points; page_capacity }

let rec count_pages = function
  | Bucket _ -> 1
  | Split { left; right; _ } -> count_pages left + count_pages right

let page_count t = count_pages t.root

type query_stats = { data_pages : int; internal_nodes : int; results : int }

let range_search t box =
  let pages = ref 0 and internals = ref 0 in
  let acc = ref [] in
  let lo = Sqp_geom.Box.lo box and hi = Sqp_geom.Box.hi box in
  let rec go = function
    | Bucket pts ->
        incr pages;
        Array.iter
          (fun (p, v) -> if Sqp_geom.Box.contains_point box p then acc := (p, v) :: !acc)
          pts
    | Split { axis; at; left; right } ->
        incr internals;
        if lo.(axis) < at then go left;
        if hi.(axis) >= at then go right
  in
  go t.root;
  (!acc, { data_pages = !pages; internal_nodes = !internals; results = List.length !acc })

let efficiency t stats =
  if stats.data_pages = 0 then 0.0
  else
    float_of_int stats.results
    /. (float_of_int stats.data_pages *. float_of_int t.page_capacity)

let pages t =
  let acc = ref [] in
  let rec go = function
    | Bucket pts -> acc := Array.to_list (Array.map fst pts) :: !acc
    | Split { left; right; _ } ->
        go left;
        go right
  in
  go t.root;
  List.rev !acc
