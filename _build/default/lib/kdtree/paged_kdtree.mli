(** Bucket kd tree: leaves hold up to a page worth of points.

    This is the disk-resident reading of the kd tree: the space is
    recursively median-split (axes cycling) until each region fits on one
    page, and a range query's cost is the number of leaf pages whose
    region it touches.  It is the structure the analysis of Section 5.3.1
    compares against (same O(vN) / O(N^(1-t/k)) page bounds). *)

type 'a t

val build : ?page_capacity:int -> (Sqp_geom.Point.t * 'a) array -> 'a t
(** Default page capacity 20, matching the paper's experiments. *)

val page_capacity : 'a t -> int

val length : 'a t -> int

val page_count : 'a t -> int

type query_stats = {
  data_pages : int;     (** leaf pages touched *)
  internal_nodes : int; (** directory nodes visited *)
  results : int;
}

val range_search : 'a t -> Sqp_geom.Box.t -> (Sqp_geom.Point.t * 'a) list * query_stats

val efficiency : 'a t -> query_stats -> float
(** [results / (data_pages * page_capacity)]. *)

val pages : 'a t -> Sqp_geom.Point.t list list
(** Points grouped by page (for partition visualizations). *)
