type rect = { x0 : int; y0 : int; x1 : int; y1 : int }

let rect_of_point p = { x0 = p.(0); y0 = p.(1); x1 = p.(0); y1 = p.(1) }

let union a b =
  { x0 = min a.x0 b.x0; y0 = min a.y0 b.y0; x1 = max a.x1 b.x1; y1 = max a.y1 b.y1 }

let area r = float_of_int (r.x1 - r.x0 + 1) *. float_of_int (r.y1 - r.y0 + 1)

let enlargement r extra = area (union r extra) -. area r

let intersects_box r box =
  let lo = Sqp_geom.Box.lo box and hi = Sqp_geom.Box.hi box in
  r.x0 <= hi.(0) && lo.(0) <= r.x1 && r.y0 <= hi.(1) && lo.(1) <= r.y1

type 'a node =
  | Leaf of (Sqp_geom.Point.t * 'a) array
  | Node of ('a node * rect) array

type 'a t = {
  capacity : int;
  mutable root : 'a node;
  mutable size : int;
}

let create ?(page_capacity = 20) () =
  if page_capacity < 4 then invalid_arg "Rtree.create: capacity < 4";
  { capacity = page_capacity; root = Leaf [||]; size = 0 }

let length t = t.size

let rec node_height = function
  | Leaf _ -> 1
  | Node children -> 1 + node_height (fst children.(0))

let height t = match t.root with Leaf [||] -> 1 | n -> node_height n

let rec count_leaves = function
  | Leaf _ -> 1
  | Node children -> Array.fold_left (fun acc (c, _) -> acc + count_leaves c) 0 children

let leaf_count t = count_leaves t.root

let mbr_of_node = function
  | Leaf pts ->
      Array.fold_left
        (fun acc (p, _) ->
          match acc with
          | None -> Some (rect_of_point p)
          | Some r -> Some (union r (rect_of_point p)))
        None pts
  | Node children ->
      Array.fold_left
        (fun acc (_, r) ->
          match acc with None -> Some r | Some a -> Some (union a r))
        None children

(* Quadratic split of tagged entries into two groups with minimum fill. *)
let quadratic_split rects entries min_fill =
  let n = Array.length entries in
  (* Seeds: the pair wasting the most area. *)
  let best = ref (0, 1) and worst = ref neg_infinity in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let waste = area (union rects.(i) rects.(j)) -. area rects.(i) -. area rects.(j) in
      if waste > !worst then begin
        worst := waste;
        best := (i, j)
      end
    done
  done;
  let s1, s2 = !best in
  let g1 = ref [ s1 ] and g2 = ref [ s2 ] in
  let r1 = ref rects.(s1) and r2 = ref rects.(s2) in
  let rest = ref [] in
  for i = n - 1 downto 0 do
    if i <> s1 && i <> s2 then rest := i :: !rest
  done;
  let take_first i =
    g1 := i :: !g1;
    r1 := union !r1 rects.(i)
  in
  let take_second i =
    g2 := i :: !g2;
    r2 := union !r2 rects.(i)
  in
  let rec assign = function
    | [] -> ()
    | remaining when List.length !g1 + List.length remaining <= min_fill ->
        (* Force: group 1 needs every remaining entry to reach min fill. *)
        List.iter take_first remaining
    | remaining when List.length !g2 + List.length remaining <= min_fill ->
        List.iter take_second remaining
    | i :: remaining ->
        let e1 = enlargement !r1 rects.(i) and e2 = enlargement !r2 rects.(i) in
        let to_first =
          if e1 < e2 then true
          else if e2 < e1 then false
          else area !r1 <= area !r2
        in
        if to_first then take_first i else take_second i;
        assign remaining
  in
  assign !rest;
  let pick idxs = Array.of_list (List.rev_map (Array.get entries) idxs) in
  ((pick !g1, !r1), (pick !g2, !r2))

(* Insert; returns the replacement node, or two nodes if it split. *)
let rec insert_rec t node p v =
  match node with
  | Leaf pts ->
      let pts = Array.append pts [| (p, v) |] in
      if Array.length pts <= t.capacity then `One (Leaf pts)
      else begin
        let rects = Array.map (fun (q, _) -> rect_of_point q) pts in
        let (e1, r1), (e2, r2) = quadratic_split rects pts (t.capacity / 2) in
        `Two ((Leaf e1, r1), (Leaf e2, r2))
      end
  | Node children ->
      let pr = rect_of_point p in
      (* Least enlargement, ties by area. *)
      let best = ref 0 and best_cost = ref infinity and best_area = ref infinity in
      Array.iteri
        (fun i (_, r) ->
          let e = enlargement r pr in
          if e < !best_cost || (e = !best_cost && area r < !best_area) then begin
            best := i;
            best_cost := e;
            best_area := area r
          end)
        children;
      let child, crect = children.(!best) in
      let children =
        match insert_rec t child p v with
        | `One replacement ->
            let updated = Array.copy children in
            updated.(!best) <- (replacement, union crect pr);
            updated
        | `Two ((n1, r1), (n2, r2)) ->
            Array.concat
              [
                Array.sub children 0 !best;
                [| (n1, r1); (n2, r2) |];
                Array.sub children (!best + 1) (Array.length children - !best - 1);
              ]
      in
      if Array.length children <= t.capacity then `One (Node children)
      else begin
        let rects = Array.map snd children in
        let (e1, r1), (e2, r2) = quadratic_split rects children (t.capacity / 2) in
        `Two ((Node e1, r1), (Node e2, r2))
      end

let insert t p v =
  if Array.length p <> 2 then invalid_arg "Rtree.insert: 2d points only";
  (match insert_rec t t.root p v with
  | `One node -> t.root <- node
  | `Two ((n1, r1), (n2, r2)) -> t.root <- Node [| (n1, r1); (n2, r2) |]);
  t.size <- t.size + 1

let of_points ?page_capacity points =
  let t = create ?page_capacity () in
  Array.iter (fun (p, v) -> insert t p v) points;
  t

(* Sort-Tile-Recursive packing: sort by x, cut into vertical slabs of
   ~sqrt(n/c) leaves each, sort each slab by y, chunk into full leaves;
   pack parent levels the same way over MBR centers. *)
let of_points_str ?page_capacity points =
  let t = create ?page_capacity () in
  let c = t.capacity in
  let n = Array.length points in
  if n = 0 then t
  else begin
    let leaves =
      let pts = Array.copy points in
      Array.sort (fun (a, _) (b, _) -> compare (a.(0), a.(1)) (b.(0), b.(1))) pts;
      let n_leaves = (n + c - 1) / c in
      let slabs = max 1 (int_of_float (Float.round (sqrt (float_of_int n_leaves)))) in
      let per_slab = (n + slabs - 1) / slabs in
      let acc = ref [] in
      let i = ref 0 in
      while !i < n do
        let len = min per_slab (n - !i) in
        let slab = Array.sub pts !i len in
        Array.sort (fun (a, _) (b, _) -> compare (a.(1), a.(0)) (b.(1), b.(0))) slab;
        let j = ref 0 in
        while !j < len do
          let k = min c (len - !j) in
          let chunk = Array.sub slab !j k in
          let node = Leaf chunk in
          (match mbr_of_node node with
          | Some r -> acc := (node, r) :: !acc
          | None -> ());
          j := !j + k
        done;
        i := !i + len
      done;
      List.rev !acc
    in
    let center r = ((r.x0 + r.x1) / 2, (r.y0 + r.y1) / 2) in
    let rec pack level =
      match level with
      | [ (node, _) ] -> node
      | _ ->
          let arr = Array.of_list level in
          Array.sort
            (fun (_, a) (_, b) -> compare (center a) (center b))
            arr;
          let m = Array.length arr in
          let parents = ref [] in
          let i = ref 0 in
          while !i < m do
            let k = min c (m - !i) in
            let children = Array.sub arr !i k in
            let node = Node children in
            (match mbr_of_node node with
            | Some r -> parents := (node, r) :: !parents
            | None -> ());
            i := !i + k
          done;
          pack (List.rev !parents)
    in
    t.root <- pack leaves;
    t.size <- n;
    t
  end

type query_stats = { data_pages : int; internal_nodes : int; results : int }

let range_search t box =
  let pages = ref 0 and internals = ref 0 in
  let acc = ref [] in
  let rec go = function
    | Leaf pts ->
        incr pages;
        Array.iter
          (fun (p, v) -> if Sqp_geom.Box.contains_point box p then acc := (p, v) :: !acc)
          pts
    | Node children ->
        incr internals;
        Array.iter (fun (c, r) -> if intersects_box r box then go c) children
  in
  (match t.root with
  | Leaf [||] -> ()
  | root -> go root);
  (!acc, { data_pages = !pages; internal_nodes = !internals; results = List.length !acc })

let efficiency t stats =
  if stats.data_pages = 0 then 0.0
  else
    float_of_int stats.results
    /. (float_of_int stats.data_pages *. float_of_int t.capacity)

let check_invariants t =
  let exception Bad of string in
  let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
  let min_fill = t.capacity / 2 in
  let rec walk node ~is_root =
    match node with
    | Leaf pts ->
        let n = Array.length pts in
        if n > t.capacity then fail "leaf overfull (%d)" n;
        if (not is_root) && n < min_fill then fail "leaf underfull (%d)" n;
        (1, n, mbr_of_node node)
    | Node children ->
        let n = Array.length children in
        if n > t.capacity then fail "node overfull";
        if (not is_root) && n < min_fill then fail "node underfull";
        if n < 2 && not is_root then fail "degenerate node";
        let depth = ref 0 and count = ref 0 in
        Array.iter
          (fun (c, r) ->
            let d, cnt, mbr = walk c ~is_root:false in
            (match mbr with
            | Some m ->
                if m <> r then fail "stored rectangle not tight"
            | None -> fail "empty subtree");
            if !depth = 0 then depth := d
            else if d <> !depth then fail "uneven leaf depth";
            count := !count + cnt)
          children;
        (!depth + 1, !count, mbr_of_node node)
  in
  match walk t.root ~is_root:true with
  | _, count, _ -> if count = t.size then Ok () else Error "size mismatch"
  | exception Bad m -> Error m
