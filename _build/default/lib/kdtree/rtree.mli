(** An R-tree (Guttman 1984, quadratic split) — the contemporary
    spatial access method the z-order approach competes with.

    The paper argues that z order needs no new access method at all; the
    R-tree is what "adding a new access method" ([STON85]) looked like at
    the time.  Points are stored in leaf pages with bounding rectangles;
    range queries descend every subtree whose rectangle intersects the
    query and the cost is the number of leaf pages touched — directly
    comparable with the zkd B+-tree, bucket kd tree and grid file. *)

type 'a t

val create : ?page_capacity:int -> unit -> 'a t
(** Default capacity 20 entries per node (leaf and internal). *)

val insert : 'a t -> Sqp_geom.Point.t -> 'a -> unit
(** 2d points.
    @raise Invalid_argument for non-2d points. *)

val of_points : ?page_capacity:int -> (Sqp_geom.Point.t * 'a) array -> 'a t
(** Repeated insertion (Guttman's dynamic build; ~70% leaf occupancy). *)

val of_points_str : ?page_capacity:int -> (Sqp_geom.Point.t * 'a) array -> 'a t
(** Sort-Tile-Recursive bulk load: full leaves, minimal overlap — the
    fair comparison against the bulk-loaded zkd B+-tree. *)

val length : 'a t -> int

val height : 'a t -> int

val leaf_count : 'a t -> int
(** Data pages. *)

type query_stats = {
  data_pages : int;      (** leaf pages touched *)
  internal_nodes : int;  (** directory nodes visited *)
  results : int;
}

val range_search : 'a t -> Sqp_geom.Box.t -> (Sqp_geom.Point.t * 'a) list * query_stats

val efficiency : 'a t -> query_stats -> float

val check_invariants : 'a t -> (unit, string) result
(** Bounding rectangles tight and containing, uniform leaf depth,
    occupancy within capacity, size consistent. *)
