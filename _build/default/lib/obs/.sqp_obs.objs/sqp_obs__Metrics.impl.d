lib/obs/metrics.ml: Array Atomic Buffer Fun Hashtbl List Mutex Printf String
