lib/obs/metrics.mli:
