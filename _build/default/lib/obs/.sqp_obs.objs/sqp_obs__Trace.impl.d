lib/obs/trace.ml: Array Buffer Char Domain Float Fun Hashtbl List Mutex Printf String Unix
