lib/obs/trace.mli:
