(** Named counters, gauges and histograms, with domain-safe accumulation
    and mergeable snapshots.

    A {!t} is a registry: metrics are created (or re-found) by name, and
    every update is an [Atomic] operation, so shards running on worker
    domains can bump the same registry — or, for per-shard views, each
    shard can own a private registry whose {!snapshot}s are {!merge}d
    into the query-wide total afterwards.  [merge] is associative and
    commutative (the [test_obs] suite checks this across real domains),
    which is exactly what makes per-shard accounting exact: merging in
    any grouping or order yields the same totals, mirroring how
    [Sqp_storage.Stats.sum] combines per-shard page counters. *)

type t
(** A metric registry. *)

val create : unit -> t
(** A fresh, empty registry. *)

val global : unit -> t
(** The ambient registry used by library instrumentation (created on
    first use; one per process). *)

(** {1 Instruments} *)

type counter
(** A monotonically increasing integer. *)

val counter : t -> string -> counter
(** Find or create the counter [name].
    @raise Invalid_argument if [name] exists with a different kind. *)

val incr : counter -> unit
(** Add 1. *)

val add : counter -> int -> unit
(** Add [n] (negative [n] is allowed but discouraged). *)

val counter_value : counter -> int
(** Current value. *)

type gauge
(** A point-in-time integer level (e.g. a stack depth); merging takes
    the maximum, so a merged gauge reads as a high-water mark. *)

val gauge : t -> string -> gauge
(** Find or create the gauge [name].
    @raise Invalid_argument if [name] exists with a different kind. *)

val set_gauge : gauge -> int -> unit
(** Set the level. *)

val record_max : gauge -> int -> unit
(** Raise the level to [n] if [n] is higher (atomic high-water mark). *)

val gauge_value : gauge -> int
(** Current level. *)

type histogram
(** Power-of-two bucketed distribution of non-negative integers, with
    exact count and sum. *)

val histogram : t -> string -> histogram
(** Find or create the histogram [name].
    @raise Invalid_argument if [name] exists with a different kind. *)

val observe : histogram -> int -> unit
(** Record one observation (negative values clamp to 0). *)

(** {1 Snapshots} *)

type reading =
  | Counter_v of int
  | Gauge_v of int
  | Histogram_v of { count : int; sum : int; buckets : (int * int) list }
      (** [buckets]: (inclusive upper bound, occupancy), non-empty
          buckets only, ascending. *)

type snapshot = (string * reading) list
(** Name-sorted readings — a consistent-enough copy of a registry (each
    metric is read atomically; the set is not a cross-metric
    transaction). *)

val snapshot : t -> snapshot
(** Read every metric of the registry. *)

val merge : snapshot -> snapshot -> snapshot
(** Combine two snapshots: counters add, gauges max, histograms add
    pointwise.  Associative and commutative.
    @raise Invalid_argument if the same name has different kinds. *)

val merge_all : snapshot list -> snapshot
(** Fold of {!merge} over the empty snapshot. *)

val reset : t -> unit
(** Zero every metric (instrument handles stay valid). *)

(** {1 Rendering} *)

val to_text : snapshot -> string
(** One ["name value"] line per metric; histograms render count, sum,
    mean and their non-empty buckets. *)

val to_json : snapshot -> string
(** The snapshot as a JSON object keyed by metric name. *)
