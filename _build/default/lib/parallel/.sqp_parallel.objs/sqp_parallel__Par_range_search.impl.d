lib/parallel/par_range_search.ml: Array List Pool Shard Sqp_geom Sqp_obs Sqp_zorder
