lib/parallel/par_range_search.mli: Pool Sqp_geom Sqp_zorder
