lib/parallel/par_spatial_join.ml: Array List Pool Shard Sqp_obs Sqp_zorder
