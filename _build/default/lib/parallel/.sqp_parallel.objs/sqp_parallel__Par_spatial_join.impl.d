lib/parallel/par_spatial_join.ml: Array List Pool Shard Sqp_zorder
