lib/parallel/par_spatial_join.mli: Pool Sqp_zorder
