lib/parallel/pool.ml: Array Condition Domain Fun List Mutex Queue
