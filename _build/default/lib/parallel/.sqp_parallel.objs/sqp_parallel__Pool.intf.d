lib/parallel/pool.mli:
