lib/parallel/shard.ml: Array Printf Sqp_zorder
