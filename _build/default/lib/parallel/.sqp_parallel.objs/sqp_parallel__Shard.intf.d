lib/parallel/shard.mli: Sqp_zorder
