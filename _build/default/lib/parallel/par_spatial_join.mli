(** Domain-parallel spatial join: the Section 4 containment merge over
    z-sorted element relations, partitioned by z shard.

    Two z elements join when one is a prefix of the other.  Fixing a
    shard depth [k]:

    - an element of level >= k (a {e resident}) lies in exactly one
      shard, named by its first [k] bits;
    - an element of level < k (a {e spanner}) contains every shard whose
      prefix it is a prefix of, and is disjoint from all others.

    Resident/resident pairs therefore never cross shards (the longer
    element extends the shorter, so they share the k-bit prefix) and are
    found by an independent per-shard sweep.  Spanner/resident pairs are
    found by pre-seeding each shard's open-element stacks with the
    spanners covering it (they stay open for the whole shard).  Pairs
    where {e both} sides are spanners are found by one small sequential
    sweep over the spanners alone.  Every pair is produced exactly once.

    Each pair is tagged with the z value of its later (longer) element —
    the sweep position at which the sequential algorithm would emit it —
    and the per-shard outputs are re-interleaved on that key, so the
    result is {e bit-identical}, including order, to
    [Sqp_core.Zmerge.pairs] on the same inputs. *)

type stats = {
  pairs : int;
  comparisons : int;   (** sort + prefix comparisons, summed over shards *)
  sorted_items : int;  (** items stably sorted, summed over shards *)
  shards_swept : int;  (** per-shard sweeps actually run *)
  spanners : int;      (** items of level < shard depth (both sides) *)
}

val pairs :
  ?shard_bits:int ->
  Pool.t ->
  (Sqp_zorder.Bitstring.t * 'a) list ->
  (Sqp_zorder.Bitstring.t * 'b) list ->
  ('a * 'b) list * stats
(** [pairs pool left right]: all [(a, b)] with [z a] a prefix of [z b] or
    vice versa, in the same order as [Sqp_core.Zmerge.pairs].
    [shard_bits] defaults to a depth suited to the pool's size; [0] runs
    a single sequential sweep.
    @raise Invalid_argument if [shard_bits] is outside
    [0, ]{!Shard.max_bits}. *)

type shard_report = {
  shard : int;        (** shard index in z order; [-1] = spanner pass *)
  items : int;        (** items sorted and swept by this shard *)
  pairs : int;        (** pairs this shard emitted *)
  comparisons : int;  (** sort + prefix comparisons in this shard *)
}
(** One sweep's share of the work — the per-shard view EXPLAIN ANALYZE
    tabulates.  Summing [items]/[pairs]/[comparisons] over all reports
    gives {!stats}' totals minus the final re-interleave comparisons. *)

val pairs_detailed :
  ?shard_bits:int ->
  Pool.t ->
  (Sqp_zorder.Bitstring.t * 'a) list ->
  (Sqp_zorder.Bitstring.t * 'b) list ->
  ('a * 'b) list * stats * shard_report list
(** {!pairs}, additionally returning one {!shard_report} per sweep that
    ran (spanner pass first, then swept shards in z order). *)
