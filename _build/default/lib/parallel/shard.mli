(** Z-prefix sharding of the search space.

    Z order's total order over pixels makes every merge of Section 3.3–4
    order-partitionable: cut the z range [0, 2^total - 1] at element
    boundaries and each piece can be merged independently.  The natural
    cuts are the 2^k elements of level [k] — each shard is the z interval
    of one k-bit prefix, so shards are aligned, z-contiguous, disjoint and
    exhaustive by construction.

    An element of level >= k lies entirely inside the single shard named
    by its first k bits.  An element of level < k {e spans} shards: its z
    interval is the union of every shard whose prefix it is a prefix of.
    That containment test ({!covers}) is how the parallel drivers handle
    boundary-spanning elements. *)

type t = {
  index : int;                    (** 0 .. 2^bits - 1, in z order *)
  prefix : Sqp_zorder.Element.t;  (** the k-bit element naming the shard *)
  zlo : Sqp_zorder.Bitstring.t;   (** prefix padded with 0s to full depth *)
  zhi : Sqp_zorder.Bitstring.t;   (** prefix padded with 1s to full depth *)
  lo : int;                       (** the same interval as integers *)
  hi : int;
}

val max_bits : int
(** Upper bound on the shard depth (12: 4096 shards is already far past
    any useful fan-out). *)

val make : Sqp_zorder.Space.t -> bits:int -> t array
(** [make space ~bits:k]: the 2^k shards of the space, in z order.
    @raise Invalid_argument if [k < 0], [k > max_bits], [k] exceeds the
    space's total bits, or the space is deeper than {!Sqp_zorder.Zrange}
    supports. *)

val shard_of_z : bits:int -> Sqp_zorder.Bitstring.t -> int
(** Index of the unique shard containing a z value of level >= [bits]
    (its first [bits] bits, read as an integer).
    @raise Invalid_argument if the z value is shorter than [bits]. *)

val spans : bits:int -> Sqp_zorder.Bitstring.t -> bool
(** Whether an element of this z value spans several shards, i.e. its
    level is < [bits]. *)

val covers : t -> Sqp_zorder.Bitstring.t -> bool
(** [covers shard z]: the element [z] contains the whole shard — true
    exactly when [z] is a prefix of the shard's prefix.  (A spanning
    element either covers a shard entirely or is disjoint from it.) *)

val default_bits : Sqp_zorder.Space.t -> domains:int -> int
(** A reasonable shard depth for a pool of [domains] streams: the
    smallest [k] with [2^k >= 4 * domains] (so the slowest shard cannot
    dominate), clamped to the space and to {!max_bits}; 0 when
    [domains = 1]. *)
