lib/relalg/ops.ml: Array Format Hashtbl List Relation Schema String Value
