lib/relalg/ops.mli: Relation Value
