lib/relalg/plan.ml: Buffer Float Format List Ops Printf Relation Schema Spatial_join Sqp_obs Sqp_parallel Sqp_storage Stored String Unix Value
