lib/relalg/plan.ml: Buffer Float Format List Ops Printf Relation Schema Spatial_join String Value
