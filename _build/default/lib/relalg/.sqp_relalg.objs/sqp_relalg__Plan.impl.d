lib/relalg/plan.ml: Buffer Float Format List Ops Printf Relation Schema Spatial_join Sqp_parallel String Value
