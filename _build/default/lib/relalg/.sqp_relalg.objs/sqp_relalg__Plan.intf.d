lib/relalg/plan.mli: Relation Schema Sqp_storage Stored Value
