lib/relalg/plan.mli: Relation Schema Value
