lib/relalg/query.ml: Array List Ops Plan Printf Relation Schema Spatial_join Sqp_geom Sqp_zorder Stored Value
