lib/relalg/query.ml: Array List Ops Printf Relation Schema Spatial_join Sqp_geom Sqp_zorder Value
