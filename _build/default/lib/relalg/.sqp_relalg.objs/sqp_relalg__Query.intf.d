lib/relalg/query.mli: Relation Sqp_geom Sqp_zorder
