lib/relalg/query.mli: Plan Relation Sqp_geom Sqp_zorder
