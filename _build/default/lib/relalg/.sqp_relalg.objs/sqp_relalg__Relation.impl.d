lib/relalg/relation.ml: Array Format Int List Schema String Value
