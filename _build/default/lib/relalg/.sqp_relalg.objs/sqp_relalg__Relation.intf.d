lib/relalg/relation.mli: Format Schema Value
