lib/relalg/schema.ml: Array Format Hashtbl List Option Printf String Value
