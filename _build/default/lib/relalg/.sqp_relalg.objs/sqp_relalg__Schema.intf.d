lib/relalg/schema.mli: Format Value
