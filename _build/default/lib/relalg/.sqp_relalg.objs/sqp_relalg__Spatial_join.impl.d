lib/relalg/spatial_join.ml: Array List Relation Schema Sqp_obs Sqp_parallel Sqp_zorder Value
