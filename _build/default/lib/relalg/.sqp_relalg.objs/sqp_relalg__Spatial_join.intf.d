lib/relalg/spatial_join.mli: Relation Sqp_parallel
