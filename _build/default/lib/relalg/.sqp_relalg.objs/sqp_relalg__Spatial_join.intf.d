lib/relalg/spatial_join.mli: Relation
