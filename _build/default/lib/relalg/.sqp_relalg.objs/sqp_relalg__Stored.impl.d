lib/relalg/stored.ml: Array Buffer Bytes Fun Int32 Int64 List Printf Relation Schema Sqp_storage Sqp_zorder String Sys Value
