lib/relalg/stored.ml: Array List Relation Schema Sqp_storage
