lib/relalg/stored.mli: Relation Schema Sqp_storage
