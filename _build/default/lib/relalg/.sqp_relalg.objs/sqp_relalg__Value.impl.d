lib/relalg/value.ml: Bool Float Format Int Sqp_zorder String
