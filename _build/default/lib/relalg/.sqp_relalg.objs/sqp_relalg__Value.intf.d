lib/relalg/value.mli: Format Sqp_zorder
