let select pred r =
  Relation.make ~name:(Relation.name r) (Relation.schema r)
    (List.filter pred (Relation.tuples r))

let project_all names r =
  let schema = Relation.schema r in
  let idxs = List.map (Schema.index schema) names in
  let out_schema = Schema.project schema names in
  Relation.make ~name:(Relation.name r) out_schema
    (List.map (fun tu -> Array.of_list (List.map (Array.get tu) idxs)) (Relation.tuples r))

let dedup tuples =
  let tbl = Hashtbl.create 64 in
  List.filter
    (fun tu ->
      let key = Array.to_list (Array.map (Format.asprintf "%a" Value.pp) tu) in
      if Hashtbl.mem tbl key then false
      else begin
        Hashtbl.replace tbl key ();
        true
      end)
    tuples

let distinct r =
  Relation.make ~name:(Relation.name r) (Relation.schema r) (dedup (Relation.tuples r))

let project names r = distinct (project_all names r)

let rename renames r =
  Relation.make ~name:(Relation.name r)
    (Schema.rename (Relation.schema r) renames)
    (Relation.tuples r)

let extend attr ty f r =
  let schema = Schema.concat (Relation.schema r) (Schema.make [ (attr, ty) ]) in
  Relation.make ~name:(Relation.name r) schema
    (List.map (fun tu -> Array.append tu [| f tu |]) (Relation.tuples r))

let product a b =
  let schema = Schema.concat (Relation.schema a) (Relation.schema b) in
  let tuples =
    List.concat_map
      (fun ta -> List.map (fun tb -> Array.append ta tb) (Relation.tuples b))
      (Relation.tuples a)
  in
  Relation.make schema tuples

let union a b =
  if not (Schema.equal (Relation.schema a) (Relation.schema b)) then
    invalid_arg "Ops.union: schema mismatch";
  Relation.make (Relation.schema a) (dedup (Relation.tuples a @ Relation.tuples b))

let compare_on idxs a b =
  let rec go = function
    | [] -> 0
    | i :: rest ->
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go rest
  in
  go idxs

let sort_by names r =
  let idxs = List.map (Schema.index (Relation.schema r)) names in
  Relation.make ~name:(Relation.name r) (Relation.schema r)
    (List.stable_sort (compare_on idxs) (Relation.tuples r))

let natural_join a b =
  let sa = Relation.schema a and sb = Relation.schema b in
  let common = Schema.common sa sb in
  if common = [] then product a b
  else begin
    let ia = List.map (Schema.index sa) common
    and ib = List.map (Schema.index sb) common in
    (* b's non-common attributes survive. *)
    let b_keep =
      List.filter (fun n -> not (List.mem n common)) (Schema.names sb)
    in
    let ib_keep = List.map (Schema.index sb) b_keep in
    let out_schema =
      Schema.concat sa
        (Schema.make (List.map (fun n -> (n, Schema.ty sb n)) b_keep))
    in
    let key_of tu idxs =
      String.concat "\x00"
        (List.map (fun i -> Format.asprintf "%a" Value.pp tu.(i)) idxs)
    in
    let table = Hashtbl.create 64 in
    List.iter
      (fun tb -> Hashtbl.add table (key_of tb ib) tb)
      (Relation.tuples b);
    let tuples =
      List.concat_map
        (fun ta ->
          List.filter_map
            (fun tb ->
              (* Hash collisions are possible in principle; re-check. *)
              if List.for_all2 (fun i j -> Value.equal ta.(i) tb.(j)) ia ib then
                Some (Array.append ta (Array.of_list (List.map (Array.get tb) ib_keep)))
              else None)
            (Hashtbl.find_all table (key_of ta ia)))
        (Relation.tuples a)
    in
    Relation.make out_schema tuples
  end

type aggregate = Count | Sum of string | Min of string | Max of string

let group_by keys aggs r =
  let schema = Relation.schema r in
  let key_idxs = List.map (Schema.index schema) keys in
  let agg_schema =
    List.map (fun (name, _) -> (name, Value.TInt)) aggs
  in
  List.iter
    (fun (_, agg) ->
      match agg with
      | Count -> ()
      | Sum a | Min a | Max a ->
          if Schema.ty schema a <> Value.TInt then
            invalid_arg "Ops.group_by: aggregate over non-int attribute")
    aggs;
  let out_schema = Schema.concat (Schema.project schema keys) (Schema.make agg_schema) in
  let groups = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun tu ->
      let key = List.map (fun i -> Format.asprintf "%a" Value.pp tu.(i)) key_idxs in
      (match Hashtbl.find_opt groups key with
      | Some rows -> Hashtbl.replace groups key (tu :: rows)
      | None ->
          Hashtbl.replace groups key [ tu ];
          order := key :: !order))
    (Relation.tuples r);
  let eval rows = function
    | Count -> Value.Int (List.length rows)
    | Sum a ->
        let i = Schema.index schema a in
        Value.Int (List.fold_left (fun acc tu -> acc + Value.to_int tu.(i)) 0 rows)
    | Min a ->
        let i = Schema.index schema a in
        Value.Int
          (List.fold_left (fun acc tu -> min acc (Value.to_int tu.(i))) max_int rows)
    | Max a ->
        let i = Schema.index schema a in
        Value.Int
          (List.fold_left (fun acc tu -> max acc (Value.to_int tu.(i))) min_int rows)
  in
  let tuples =
    List.rev_map
      (fun key ->
        let rows = Hashtbl.find groups key in
        let sample = List.hd rows in
        Array.append
          (Array.of_list (List.map (fun i -> sample.(i)) key_idxs))
          (Array.of_list (List.map (fun (_, agg) -> eval rows agg) aggs)))
      !order
  in
  Relation.make out_schema tuples

let flatten_sets r ~set_attr expand ty =
  let schema = Relation.schema r in
  let idx = Schema.index schema set_attr in
  let out_schema =
    Schema.make
      (List.map
         (fun (n, t) -> if n = set_attr then (n, ty) else (n, t))
         (Schema.attrs schema))
  in
  let tuples =
    List.concat_map
      (fun tu ->
        List.map
          (fun v ->
            let tu' = Array.copy tu in
            tu'.(idx) <- v;
            tu')
          (expand tu.(idx)))
      (Relation.tuples r)
  in
  Relation.make ~name:(Relation.name r) out_schema tuples
