(** Classic relational operators.  Section 4's point is that spatial join
    needs nothing beyond this machinery plus the element domain; these are
    the operators the scenario scripts compose with it. *)

val select : (Relation.tuple -> bool) -> Relation.t -> Relation.t

val project : string list -> Relation.t -> Relation.t
(** Duplicate-eliminating projection (set semantics, as in the paper's
    "projecting out the zr and zs fields eliminates this redundancy"). *)

val project_all : string list -> Relation.t -> Relation.t
(** Projection keeping duplicates (bag semantics). *)

val rename : (string * string) list -> Relation.t -> Relation.t

val extend : string -> Value.ty -> (Relation.tuple -> Value.t) -> Relation.t -> Relation.t
(** Append a computed attribute. *)

val product : Relation.t -> Relation.t -> Relation.t
(** @raise Invalid_argument on attribute-name clashes. *)

val union : Relation.t -> Relation.t -> Relation.t
(** Set union. @raise Invalid_argument on schema mismatch. *)

val distinct : Relation.t -> Relation.t

val sort_by : string list -> Relation.t -> Relation.t
(** Stable sort by the given attributes ("existing sort utilities can be
    used to create z ordered sequences"). *)

val natural_join : Relation.t -> Relation.t -> Relation.t
(** Hash join on the common attributes; the non-spatial workhorse whose
    implementation strategies the spatial join reuses. *)

type aggregate =
  | Count                        (** number of rows per group *)
  | Sum of string                (** sum of an [Int] attribute *)
  | Min of string
  | Max of string

val group_by :
  string list ->
  (string * aggregate) list ->
  Relation.t ->
  Relation.t
(** [group_by keys aggs r]: one output tuple per distinct key combination,
    with the named aggregate columns appended — enough relational muscle
    to phrase "area per object" over a decomposition relation.
    @raise Invalid_argument if an aggregate attribute is not [TInt]. *)

val flatten_sets :
  Relation.t -> set_attr:string -> (Value.t -> Value.t list) -> Value.ty -> Relation.t
(** The "flattening" step of the Decompose scenario: replace [set_attr]
    (whose values denote sets) by one output tuple per member. *)
