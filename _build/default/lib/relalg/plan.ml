type pred = {
  description : string;
  attrs : string list;
  test : Relation.tuple -> Schema.t -> bool;
}

let pred description attrs test = { description; attrs; test }

let attr_equals attr value =
  {
    description = Printf.sprintf "%s = %s" attr (Format.asprintf "%a" Value.pp value);
    attrs = [ attr ];
    test = (fun tu schema -> Value.equal (Relation.get tu schema attr) value);
  }

let attr_between attr lo hi =
  {
    description =
      Printf.sprintf "%s between %s and %s" attr
        (Format.asprintf "%a" Value.pp lo)
        (Format.asprintf "%a" Value.pp hi);
    attrs = [ attr ];
    test =
      (fun tu schema ->
        let v = Relation.get tu schema attr in
        Value.compare lo v <= 0 && Value.compare v hi <= 0);
  }

type t =
  | Scan of Relation.t
  | Select of pred * t
  | Project of string list * t
  | Project_all of string list * t
  | Rename of (string * string) list * t
  | Sort of string list * t
  | Natural_join of t * t
  | Spatial_join of { zl : string; zr : string; left : t; right : t }
  | Product of t * t
  | Union of t * t

let rec schema = function
  | Scan r -> Relation.schema r
  | Select (_, p) -> schema p
  | Project (names, p) | Project_all (names, p) -> Schema.project (schema p) names
  | Rename (renames, p) -> Schema.rename (schema p) renames
  | Sort (_, p) -> schema p
  | Natural_join (a, b) ->
      let sa = schema a and sb = schema b in
      let common = Schema.common sa sb in
      let keep = List.filter (fun n -> not (List.mem n common)) (Schema.names sb) in
      Schema.concat sa (Schema.make (List.map (fun n -> (n, Schema.ty sb n)) keep))
  | Spatial_join { left; right; _ } | Product (left, right) ->
      Schema.concat (schema left) (schema right)
  | Union (a, _) -> schema a

let rec estimated_rows = function
  | Scan r -> float_of_int (Relation.cardinality r)
  | Select (_, p) -> estimated_rows p /. 3.0
  | Project (_, p) -> estimated_rows p *. 0.9
  | Project_all (_, p) | Rename (_, p) | Sort (_, p) -> estimated_rows p
  | Natural_join (a, b) ->
      let ra = estimated_rows a and rb = estimated_rows b in
      ra *. rb /. Float.max 1.0 (Float.max ra rb)
  | Spatial_join { left; right; _ } ->
      (* Elements per object pair up rarely; assume ~2 witnesses per
         overlapping pair and 10% overlapping pairs. *)
      0.2 *. Float.max (estimated_rows left) (estimated_rows right)
  | Product (a, b) -> estimated_rows a *. estimated_rows b
  | Union (a, b) -> estimated_rows a +. estimated_rows b

(* {2 Optimizer} *)

let pred_applies_to s p = List.for_all (Schema.mem s) p.attrs

let rename_pred renames p =
  (* Moving a Select below [Rename renames]: rewrite its attributes from
     the renamed (outer) names back to the original (inner) names. *)
  let back = List.map (fun (old_name, fresh) -> (fresh, old_name)) renames in
  let rewrite n = match List.assoc_opt n back with Some o -> o | None -> n in
  {
    description = p.description;
    attrs = List.map rewrite p.attrs;
    test =
      (fun tu inner_schema ->
        (* Evaluate against the renamed view of the inner schema. *)
        p.test tu (Schema.rename inner_schema renames));
  }

let rec push_select p plan =
  match plan with
  | Rename (renames, inner) -> Rename (renames, push_select (rename_pred renames p) inner)
  | Sort (keys, inner) -> Sort (keys, push_select p inner)
  | Product (a, b) when pred_applies_to (schema a) p -> Product (push_select p a, b)
  | Product (a, b) when pred_applies_to (schema b) p -> Product (a, push_select p b)
  | Natural_join (a, b) when pred_applies_to (schema a) p ->
      Natural_join (push_select p a, b)
  | Natural_join (a, b) when pred_applies_to (schema b) p ->
      Natural_join (a, push_select p b)
  | Spatial_join ({ left; _ } as j) when pred_applies_to (schema left) p ->
      Spatial_join { j with left = push_select p left }
  | Spatial_join ({ right; _ } as j) when pred_applies_to (schema right) p ->
      Spatial_join { j with right = push_select p right }
  | Union (a, b) -> Union (push_select p a, push_select p b)
  | Scan _ | Select _ | Project _ | Project_all _
  | Product _ | Natural_join _ | Spatial_join _ ->
      Select (p, plan)

let rec optimize plan =
  match plan with
  | Scan _ -> plan
  | Select (p, inner) -> push_select p (optimize inner)
  | Project (names, inner) -> Project (names, optimize inner)
  | Project_all (names, inner) -> Project_all (names, optimize inner)
  | Rename (renames, inner) -> Rename (renames, optimize inner)
  | Sort (keys, inner) -> (
      match optimize inner with
      | Sort (_, deeper) -> Sort (keys, deeper) (* outer sort wins *)
      | opt -> Sort (keys, opt))
  | Natural_join (a, b) -> Natural_join (optimize a, optimize b)
  | Spatial_join j -> Spatial_join { j with left = optimize j.left; right = optimize j.right }
  | Product (a, b) -> Product (optimize a, optimize b)
  | Union (a, b) -> Union (optimize a, optimize b)

(* {2 Execution} *)

let spatial_join_threshold = 20_000.0
(* Estimated |L| * |R| above which the z-merge implementation is chosen
   over the nested loop. *)

let use_merge left_rows right_rows = left_rows *. right_rows > spatial_join_threshold

let rec run_with pool plan =
  let run = run_with pool in
  match plan with
  | Scan r -> r
  | Select (p, inner) ->
      let r = run inner in
      let s = Relation.schema r in
      Ops.select (fun tu -> p.test tu s) r
  | Project (names, inner) -> Ops.project names (run inner)
  | Project_all (names, inner) -> Ops.project_all names (run inner)
  | Rename (renames, inner) -> Ops.rename renames (run inner)
  | Sort (keys, inner) -> Ops.sort_by keys (run inner)
  | Natural_join (a, b) -> Ops.natural_join (run a) (run b)
  | Spatial_join { zl; zr; left; right } ->
      let l = run left and r = run right in
      let joined, _ =
        if
          use_merge
            (float_of_int (Relation.cardinality l))
            (float_of_int (Relation.cardinality r))
        then
          match pool with
          | Some pool -> Spatial_join.merge_parallel pool l ~zr:zl r ~zs:zr
          | None -> Spatial_join.merge l ~zr:zl r ~zs:zr
        else Spatial_join.nested_loop l ~zr:zl r ~zs:zr
      in
      joined
  | Product (a, b) -> Ops.product (run a) (run b)
  | Union (a, b) -> Ops.union (run a) (run b)

let run ?(parallelism = 1) plan =
  if parallelism < 1 then invalid_arg "Plan.run: parallelism must be >= 1";
  if parallelism = 1 then run_with None plan
  else
    Sqp_parallel.Pool.with_pool ~domains:parallelism (fun pool ->
        run_with (Some pool) plan)

(* {2 Explain} *)

let explain ?(parallelism = 1) plan =
  let buf = Buffer.create 256 in
  let line depth fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf (String.make (2 * depth) ' ');
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let rec go depth plan =
    let rows = estimated_rows plan in
    (match plan with
    | Scan r ->
        line depth "scan %s %s (~%.0f rows)"
          (match Relation.name r with "" -> "<anon>" | n -> n)
          (Format.asprintf "%a" Schema.pp (Relation.schema r))
          rows
    | Select (p, _) -> line depth "select [%s] (~%.0f rows)" p.description rows
    | Project (names, _) -> line depth "project distinct {%s} (~%.0f rows)" (String.concat ", " names) rows
    | Project_all (names, _) -> line depth "project {%s} (~%.0f rows)" (String.concat ", " names) rows
    | Rename (renames, _) ->
        line depth "rename {%s}"
          (String.concat ", " (List.map (fun (o, n) -> o ^ " -> " ^ n) renames))
    | Sort (keys, _) -> line depth "sort by {%s}" (String.concat ", " keys)
    | Natural_join (_, _) -> line depth "natural join (~%.0f rows)" rows
    | Spatial_join { zl; zr; left; right } ->
        let impl =
          if use_merge (estimated_rows left) (estimated_rows right) then
            if parallelism > 1 then
              Printf.sprintf "parallel z-merge (%d domains)" parallelism
            else "z-merge"
          else "nested loop"
        in
        line depth "spatial join %s <> %s via %s (~%.0f rows)" zl zr impl rows
    | Product _ -> line depth "product (~%.0f rows)" rows
    | Union _ -> line depth "union (~%.0f rows)" rows);
    match plan with
    | Scan _ -> ()
    | Select (_, i) | Project (_, i) | Project_all (_, i) | Rename (_, i) | Sort (_, i) ->
        go (depth + 1) i
    | Natural_join (a, b) | Product (a, b) | Union (a, b) ->
        go (depth + 1) a;
        go (depth + 1) b
    | Spatial_join { left; right; _ } ->
        go (depth + 1) left;
        go (depth + 1) right
  in
  go 0 plan;
  Buffer.contents buf
