(** Logical query plans over the relational substrate.

    The PROBE framing of Section 2 is that the DBMS optimizes
    set-at-a-time operations while the object class supplies the
    element-level semantics.  This module is that thin optimizer layer: a
    plan algebra including the spatial join, a cost-estimating EXPLAIN,
    and a rewriter that pushes selections below joins and picks the
    spatial-join implementation (z-merge vs nested loop) from estimated
    input sizes. *)

type pred = {
  description : string;          (** shown by EXPLAIN *)
  attrs : string list;           (** attributes the predicate reads *)
  test : Relation.tuple -> Schema.t -> bool;
}

val pred : string -> string list -> (Relation.tuple -> Schema.t -> bool) -> pred

val attr_equals : string -> Value.t -> pred
(** [attr = value]. *)

val attr_between : string -> Value.t -> Value.t -> pred
(** Inclusive range on one attribute. *)

type t =
  | Scan of Relation.t
  | Select of pred * t
  | Project of string list * t       (** duplicate-eliminating *)
  | Project_all of string list * t   (** bag projection *)
  | Rename of (string * string) list * t
  | Sort of string list * t
  | Natural_join of t * t
  | Spatial_join of { zl : string; zr : string; left : t; right : t }
  | Product of t * t
  | Union of t * t

val schema : t -> Schema.t
(** Output schema; raises [Invalid_argument]/[Not_found] on malformed
    plans (name clashes, missing attributes). *)

val estimated_rows : t -> float
(** Crude textbook cardinality estimate (selections 1/3, natural joins
    via 1/max-side, spatial joins via element fan-out). *)

val optimize : t -> t
(** Rewrites: push selections below renames, products and joins when
    their attributes allow; fuse [Select] over [Select]; drop redundant
    [Sort] under [Sort].  Semantics-preserving. *)

val run : ?parallelism:int -> t -> Relation.t
(** Execute (materializing operator by operator).  [parallelism] (default
    1) is the number of execution streams: with more than one, a domain
    pool is created for the duration of the run and every z-merge spatial
    join executes shard-parallel ({!Spatial_join.merge_parallel}), with
    results identical to the sequential plan.
    @raise Invalid_argument if [parallelism < 1]. *)

val explain : ?parallelism:int -> t -> string
(** An indented operator tree with schemas and row estimates, plus the
    implementation choice for each spatial join — including whether the
    z-merge would run sequentially or sharded over [parallelism]
    domains. *)
