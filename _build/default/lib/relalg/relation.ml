type tuple = Value.t array

type t = { name : string; schema : Schema.t; tuples : tuple list }

let make ?(name = "") schema tuples =
  let arity = Schema.arity schema in
  List.iter
    (fun tu ->
      if Array.length tu <> arity then
        invalid_arg "Relation.make: tuple arity does not match schema")
    tuples;
  { name; schema; tuples }

let name t = t.name

let schema t = t.schema

let tuples t = t.tuples

let cardinality t = List.length t.tuples

let get tuple schema attr = tuple.(Schema.index schema attr)

let iter t f = List.iter f t.tuples

let compare_tuples a b =
  let c = Int.compare (Array.length a) (Array.length b) in
  if c <> 0 then c
  else
    let rec go i =
      if i = Array.length a then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let sort_tuples tuples = List.sort compare_tuples tuples

let equal_contents a b =
  Schema.equal a.schema b.schema
  && List.length a.tuples = List.length b.tuples
  && List.for_all2
       (fun x y -> Array.length x = Array.length y && Array.for_all2 Value.equal x y)
       (sort_tuples a.tuples) (sort_tuples b.tuples)

let pp fmt t =
  Format.fprintf fmt "%s%a [%d tuples]@." t.name Schema.pp t.schema (cardinality t);
  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
  in
  List.iter
    (fun tu ->
      Format.fprintf fmt "  (%s)@."
        (String.concat ", "
           (Array.to_list (Array.map (Format.asprintf "%a" Value.pp) tu))))
    (take 20 t.tuples);
  if cardinality t > 20 then Format.fprintf fmt "  ...@."
