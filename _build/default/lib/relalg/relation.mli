(** Relations: a schema plus tuples (value arrays of matching arity). *)

type tuple = Value.t array

type t

val make : ?name:string -> Schema.t -> tuple list -> t
(** @raise Invalid_argument if a tuple's arity differs from the schema's. *)

val name : t -> string

val schema : t -> Schema.t

val tuples : t -> tuple list

val cardinality : t -> int

val get : tuple -> Schema.t -> string -> Value.t
(** Value of an attribute by name.
    @raise Not_found if absent. *)

val iter : t -> (tuple -> unit) -> unit

val equal_contents : t -> t -> bool
(** Same schema, same multiset of tuples (order ignored). *)

val pp : Format.formatter -> t -> unit
(** A small ASCII dump (schema + up to 20 tuples). *)
