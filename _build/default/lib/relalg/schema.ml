type t = { attrs : (string * Value.ty) array }

let make attrs =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (name, _) ->
      if Hashtbl.mem seen name then
        invalid_arg (Printf.sprintf "Schema.make: duplicate attribute %s" name);
      Hashtbl.replace seen name ())
    attrs;
  { attrs = Array.of_list attrs }

let attrs t = Array.to_list t.attrs

let arity t = Array.length t.attrs

let find_opt t name =
  let rec go i =
    if i = Array.length t.attrs then None
    else if fst t.attrs.(i) = name then Some i
    else go (i + 1)
  in
  go 0

let mem t name = Option.is_some (find_opt t name)

let index t name =
  match find_opt t name with Some i -> i | None -> raise Not_found

let ty t name = snd t.attrs.(index t name)

let names t = List.map fst (attrs t)

let common a b = List.filter (mem b) (names a)

let concat a b = make (attrs a @ attrs b)

let project t names = make (List.map (fun n -> t.attrs.(index t n)) names)

let rename t renames =
  List.iter (fun (old_name, _) -> ignore (index t old_name)) renames;
  make
    (List.map
       (fun (name, ty) ->
         match List.assoc_opt name renames with
         | Some fresh -> (fresh, ty)
         | None -> (name, ty))
       (attrs t))

let equal a b = attrs a = attrs b

let pp fmt t =
  Format.fprintf fmt "(%s)"
    (String.concat ", "
       (List.map
          (fun (n, ty) -> Printf.sprintf "%s:%s" n (Value.ty_to_string ty))
          (attrs t)))
