(** Relation schemas: ordered, uniquely named, typed attributes. *)

type t

val make : (string * Value.ty) list -> t
(** @raise Invalid_argument on duplicate attribute names. *)

val attrs : t -> (string * Value.ty) list

val arity : t -> int

val mem : t -> string -> bool

val index : t -> string -> int
(** @raise Not_found if absent. *)

val ty : t -> string -> Value.ty

val names : t -> string list

val common : t -> t -> string list
(** Attribute names present in both, in the order of the first. *)

val concat : t -> t -> t
(** @raise Invalid_argument on name clashes. *)

val project : t -> string list -> t
(** @raise Not_found on a missing attribute. *)

val rename : t -> (string * string) list -> t
(** [rename s [(old, new); ...]].
    @raise Not_found on a missing old name. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
