module B = Sqp_zorder.Bitstring

type stats = { pairs : int; comparisons : int; sorted_items : int }

let out_schema r s =
  Schema.concat (Relation.schema r) (Relation.schema s)

let zval_of schema attr tu =
  match Relation.get tu schema attr with
  | Value.Zval z -> z
  | _ -> invalid_arg "Spatial_join: z attribute does not hold an element"

let nested_loop r ~zr s ~zs =
  let schema = out_schema r s in
  let sr = Relation.schema r and ss = Relation.schema s in
  let comparisons = ref 0 in
  let tuples =
    List.concat_map
      (fun tr ->
        let zrv = zval_of sr zr tr in
        List.filter_map
          (fun ts ->
            let zsv = zval_of ss zs ts in
            incr comparisons;
            if B.is_prefix zrv zsv || B.is_prefix zsv zrv then
              Some (Array.append tr ts)
            else None)
          (Relation.tuples s))
      (Relation.tuples r)
  in
  ( Relation.make schema tuples,
    { pairs = List.length tuples; comparisons = !comparisons; sorted_items = 0 } )

type side = R | S

let merge r ~zr s ~zs =
  let schema = out_schema r s in
  let sr = Relation.schema r and ss = Relation.schema s in
  let comparisons = ref 0 in
  let items =
    List.map (fun tu -> (zval_of sr zr tu, R, tu)) (Relation.tuples r)
    @ List.map (fun tu -> (zval_of ss zs tu, S, tu)) (Relation.tuples s)
  in
  let items =
    List.sort
      (fun (za, _, _) (zb, _, _) ->
        incr comparisons;
        B.compare za zb)
      items
  in
  (* Stacks of open (containing) elements per side; an element stays open
     while the sweep position is within its z range, i.e. while it is a
     prefix of the current item's z value. *)
  let stack_r = ref [] and stack_s = ref [] in
  let pop_closed z stack =
    let rec go = function
      | (ze, _) :: rest when
          (incr comparisons;
           not (B.is_prefix ze z)) ->
          go rest
      | kept -> kept
    in
    stack := go !stack
  in
  let out = ref [] and pairs = ref 0 in
  List.iter
    (fun (z, side, tu) ->
      pop_closed z stack_r;
      pop_closed z stack_s;
      (match side with
      | R ->
          List.iter
            (fun (_, ts) ->
              incr pairs;
              out := Array.append tu ts :: !out)
            !stack_s;
          stack_r := (z, tu) :: !stack_r
      | S ->
          List.iter
            (fun (_, tr) ->
              incr pairs;
              out := Array.append tr tu :: !out)
            !stack_r;
          stack_s := (z, tu) :: !stack_s))
    items;
  ( Relation.make schema (List.rev !out),
    { pairs = !pairs; comparisons = !comparisons; sorted_items = List.length items } )

let merge_parallel ?shard_bits pool r ~zr s ~zs =
  let schema = out_schema r s in
  let sr = Relation.schema r and ss = Relation.schema s in
  let left = List.map (fun tu -> (zval_of sr zr tu, tu)) (Relation.tuples r) in
  let right = List.map (fun tu -> (zval_of ss zs tu, tu)) (Relation.tuples s) in
  let pairs, pstats = Sqp_parallel.Par_spatial_join.pairs ?shard_bits pool left right in
  let tuples = List.map (fun (tr, ts) -> Array.append tr ts) pairs in
  ( Relation.make schema tuples,
    {
      pairs = pstats.Sqp_parallel.Par_spatial_join.pairs;
      comparisons = pstats.Sqp_parallel.Par_spatial_join.comparisons;
      sorted_items = pstats.Sqp_parallel.Par_spatial_join.sorted_items;
    } )
