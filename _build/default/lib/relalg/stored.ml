module Pager = Sqp_storage.Pager
module Buffer_pool = Sqp_storage.Buffer_pool

type t = {
  name : string;
  schema : Schema.t;
  pager : Relation.tuple array Pager.t;
  page_ids : Pager.page_id array;
  pool : Relation.tuple array Buffer_pool.t;
  cardinality : int;
  tuples_per_page : int;
}

let store ?name ?(tuples_per_page = 32) ?(pool_capacity = 8) ?policy r =
  if tuples_per_page < 1 then invalid_arg "Stored.store: tuples_per_page < 1";
  let name = match name with Some n -> n | None -> Relation.name r in
  let pager = Pager.create () in
  let tuples = Array.of_list (Relation.tuples r) in
  let n = Array.length tuples in
  let npages = (n + tuples_per_page - 1) / tuples_per_page in
  let page_ids =
    Array.init npages (fun p ->
        let base = p * tuples_per_page in
        let len = min tuples_per_page (n - base) in
        Pager.alloc pager (Array.sub tuples base len))
  in
  {
    name;
    schema = Relation.schema r;
    pager;
    page_ids;
    pool = Buffer_pool.create ?policy ~capacity:pool_capacity pager;
    cardinality = n;
    tuples_per_page;
  }

let name t = t.name

let schema t = t.schema

let cardinality t = t.cardinality

let pages t = Array.length t.page_ids

let tuples_per_page t = t.tuples_per_page

let stats t = Pager.stats t.pager

let scan t =
  (* Forward page order (a real sequential scan), accumulating reversed. *)
  let out = ref [] in
  for p = 0 to Array.length t.page_ids - 1 do
    let page = Buffer_pool.get t.pool t.page_ids.(p) in
    for k = 0 to Array.length page - 1 do
      out := page.(k) :: !out
    done
  done;
  Relation.make ~name:t.name t.schema (List.rev !out)
