type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Zval of Sqp_zorder.Bitstring.t
  | Null

type ty = TInt | TFloat | TStr | TBool | TZval

let type_of = function
  | Int _ -> Some TInt
  | Float _ -> Some TFloat
  | Str _ -> Some TStr
  | Bool _ -> Some TBool
  | Zval _ -> Some TZval
  | Null -> None

let rank = function
  | Null -> 0
  | Int _ -> 1
  | Float _ -> 2
  | Str _ -> 3
  | Bool _ -> 4
  | Zval _ -> 5

let compare a b =
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | Zval x, Zval y -> Sqp_zorder.Bitstring.compare x y
  | Null, Null -> 0
  | (Int _ | Float _ | Str _ | Bool _ | Zval _ | Null), _ ->
      Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let to_int = function Int i -> i | _ -> invalid_arg "Value.to_int: not an Int"

let to_zval = function Zval z -> z | _ -> invalid_arg "Value.to_zval: not a Zval"

let to_string_exn = function Str s -> s | _ -> invalid_arg "Value.to_string_exn: not a Str"

let ty_to_string = function
  | TInt -> "int"
  | TFloat -> "float"
  | TStr -> "string"
  | TBool -> "bool"
  | TZval -> "zval"

let pp fmt = function
  | Int i -> Format.pp_print_int fmt i
  | Float f -> Format.fprintf fmt "%g" f
  | Str s -> Format.fprintf fmt "%S" s
  | Bool b -> Format.pp_print_bool fmt b
  | Zval z -> Sqp_zorder.Bitstring.pp fmt z
  | Null -> Format.pp_print_string fmt "null"
