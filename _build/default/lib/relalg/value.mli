(** Attribute values.  [Zval] is the "element" domain the paper says a
    DBMS needs to add (Section 4): a variable-length bitstring with a
    spatial interpretation, compared lexicographically. *)

type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Zval of Sqp_zorder.Bitstring.t
  | Null

type ty = TInt | TFloat | TStr | TBool | TZval

val type_of : t -> ty option
(** [None] for [Null]. *)

val compare : t -> t -> int
(** Total order: within a type, natural order ([Zval]: z order); across
    types, an arbitrary fixed order; [Null] sorts first. *)

val equal : t -> t -> bool

val to_int : t -> int
(** @raise Invalid_argument if not [Int]. *)

val to_zval : t -> Sqp_zorder.Bitstring.t
(** @raise Invalid_argument if not [Zval]. *)

val to_string_exn : t -> string
(** @raise Invalid_argument if not [Str]. *)

val ty_to_string : ty -> string

val pp : Format.formatter -> t -> unit
