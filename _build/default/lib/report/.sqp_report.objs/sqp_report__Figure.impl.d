lib/report/figure.ml: Array Buffer Hashtbl List Printf Sqp_geom Sqp_zorder String
