lib/report/figure.mli: Sqp_geom Sqp_zorder
