lib/report/table.mli:
