let grid ~side cell =
  let buf = Buffer.create (side * (side + 1)) in
  for y = side - 1 downto 0 do
    for x = 0 to side - 1 do
      Buffer.add_char buf (cell x y)
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let box_query space box ~points =
  let side = Sqp_zorder.Space.side space in
  let point_set = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace point_set (p.(0), p.(1)) ()) points;
  grid ~side (fun x y ->
      let inside = Sqp_geom.Box.contains_point box [| x; y |] in
      let is_point = Hashtbl.mem point_set (x, y) in
      match (inside, is_point) with
      | true, true -> '@'
      | true, false -> '+'
      | false, true -> '*'
      | false, false -> '.')

let letters =
  "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"

let letter i = letters.[i mod String.length letters]

let decomposition space elements =
  let side = Sqp_zorder.Space.side space in
  let canvas = Array.make_matrix side side '.' in
  List.iteri
    (fun i e ->
      let lo, hi = Sqp_zorder.Element.box space e in
      for x = lo.(0) to hi.(0) do
        for y = lo.(1) to hi.(1) do
          canvas.(x).(y) <- letter i
        done
      done)
    elements;
  grid ~side (fun x y -> canvas.(x).(y))

let decomposition_labels space elements =
  let buf = Buffer.create 256 in
  List.iteri
    (fun i e ->
      let lo, hi = Sqp_zorder.Element.box space e in
      Buffer.add_string buf
        (Printf.sprintf "%c: z=%s  x %d..%d  y %d..%d\n" (letter i)
           (Sqp_zorder.Bitstring.to_string e)
           lo.(0) hi.(0) lo.(1) hi.(1)))
    elements;
  Buffer.contents buf

let zcurve_ranks space =
  if Sqp_zorder.Space.dims space <> 2 then invalid_arg "Figure.zcurve_ranks: 2d only";
  let side = Sqp_zorder.Space.side space in
  let width = String.length (string_of_int ((side * side) - 1)) in
  let buf = Buffer.create 256 in
  for y = side - 1 downto 0 do
    for x = 0 to side - 1 do
      if x > 0 then Buffer.add_char buf ' ';
      Buffer.add_string buf
        (Printf.sprintf "%*d" width (Sqp_zorder.Curve.rank space [| x; y |]))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let zcurve_path space =
  if Sqp_zorder.Space.dims space <> 2 then invalid_arg "Figure.zcurve_path: 2d only";
  let side = Sqp_zorder.Space.side space in
  let cside = (2 * side) - 1 in
  let canvas = Array.make_matrix cside cside ' ' in
  let pts = Array.of_seq (Sqp_zorder.Curve.traverse space) in
  Array.iter (fun p -> canvas.(2 * p.(0)).(2 * p.(1)) <- 'o') pts;
  for i = 0 to Array.length pts - 2 do
    let a = pts.(i) and b = pts.(i + 1) in
    let dx = b.(0) - a.(0) and dy = b.(1) - a.(1) in
    if abs dx <= 1 && abs dy <= 1 then begin
      let mx = (2 * a.(0)) + dx and my = (2 * a.(1)) + dy in
      let ch =
        if dx = 0 then '|'
        else if dy = 0 then '-'
        else if dx * dy > 0 then '/'
        else '\\'
      in
      if canvas.(mx).(my) = ' ' then canvas.(mx).(my) <- ch
    end
  done;
  let buf = Buffer.create (cside * (cside + 1)) in
  for y = cside - 1 downto 0 do
    for x = 0 to cside - 1 do
      Buffer.add_char buf canvas.(x).(y)
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let page_map ~side pages =
  let canvas = Array.make_matrix side side '.' in
  List.iteri
    (fun i (_, points) ->
      List.iter (fun p -> canvas.(p.(0)).(p.(1)) <- letter i) points)
    pages;
  grid ~side (fun x y -> canvas.(x).(y))
