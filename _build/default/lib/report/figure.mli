(** ASCII renderings of the paper's figures. *)

val grid : side:int -> (int -> int -> char) -> string
(** Render a [side x side] cell grid, x growing right, y growing {e up}
    (row y = side-1 printed first), one char per cell. *)

val box_query : Sqp_zorder.Space.t -> Sqp_geom.Box.t -> points:Sqp_geom.Point.t list -> string
(** Figure 1: points ([*]) and the query box region ([+], or [@] for a
    point inside the box). *)

val decomposition : Sqp_zorder.Space.t -> Sqp_zorder.Element.t list -> string
(** Figure 2: each element painted with its own letter (cycling
    a-z A-Z 0-9); uncovered cells ['.']. *)

val decomposition_labels : Sqp_zorder.Space.t -> Sqp_zorder.Element.t list -> string
(** Listing of elements: letter, z value, covered coordinate ranges. *)

val zcurve_ranks : Sqp_zorder.Space.t -> string
(** Figure 4: the grid with each cell's z-curve rank. *)

val zcurve_path : Sqp_zorder.Space.t -> string
(** Figure 4 as a path drawing on a doubled canvas: cells are [o],
    consecutive-rank cells are joined with [-], [|] or diagonal [\ /]
    segments. *)

val page_map : side:int -> (int * Sqp_geom.Point.t list) list -> string
(** Figure 6: every point painted with a letter identifying its data
    page (letters cycle; empty cells ['.']). *)
