type align = Left | Right

type column = { header : string; align : align }

let column ?(align = Right) header = { header; align }

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ~columns ~rows =
  let ncols = List.length columns in
  List.iter
    (fun row ->
      if List.length row <> ncols then
        invalid_arg "Table.render: row arity mismatch")
    rows;
  let widths =
    List.mapi
      (fun i c ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length c.header) rows)
      columns
  in
  let buf = Buffer.create 256 in
  let emit_row cells =
    List.iteri
      (fun i (cell, width, align) ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad align width cell);
        ignore i)
      (List.map2 (fun (c, w) a -> (c, w, a)) (List.combine cells widths)
         (List.map (fun c -> c.align) columns));
    Buffer.add_char buf '\n'
  in
  emit_row (List.map (fun c -> c.header) columns);
  List.iteri
    (fun i w ->
      if i > 0 then Buffer.add_string buf "  ";
      Buffer.add_string buf (String.make w '-'))
    widths;
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print ?title ~columns ~rows () =
  (match title with
  | Some t ->
      print_newline ();
      print_endline t;
      print_endline (String.make (String.length t) '=')
  | None -> ());
  print_string (render ~columns ~rows)

let fmt_int = string_of_int

let fmt_float ?(decimals = 2) f = Printf.sprintf "%.*f" decimals f

let fmt_pct f = Printf.sprintf "%.1f%%" (100.0 *. f)
