(** Minimal ASCII table rendering for experiment output. *)

type align = Left | Right

type column = { header : string; align : align }

val column : ?align:align -> string -> column
(** Default alignment: [Right]. *)

val render : columns:column list -> rows:string list list -> string
(** Pads cells, draws a header rule.
    @raise Invalid_argument if a row's width differs from the header's. *)

val print : ?title:string -> columns:column list -> rows:string list list -> unit -> unit
(** [render] to stdout, with an optional underlined title. *)

val fmt_int : int -> string

val fmt_float : ?decimals:int -> float -> string
(** Default 2 decimals. *)

val fmt_pct : float -> string
(** [0.125 -> "12.5%"]. *)
