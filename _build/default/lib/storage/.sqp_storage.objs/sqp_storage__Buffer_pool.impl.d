lib/storage/buffer_pool.ml: Hashtbl List Pager Sqp_obs
