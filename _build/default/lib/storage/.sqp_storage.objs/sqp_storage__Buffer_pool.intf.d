lib/storage/buffer_pool.mli: Pager
