lib/storage/crc32.ml: Array Bytes Char Lazy String
