lib/storage/crc32.mli:
