lib/storage/faulty_io.ml: Bytes Char Float Int64 List Printf Sqp_obs Storage_error Unix
