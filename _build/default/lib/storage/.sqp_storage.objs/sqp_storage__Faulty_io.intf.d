lib/storage/faulty_io.mli: Unix
