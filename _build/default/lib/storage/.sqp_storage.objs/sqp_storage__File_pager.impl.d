lib/storage/file_pager.ml: Bytes Hashtbl Int32 Int64 Printf Stats Unix
