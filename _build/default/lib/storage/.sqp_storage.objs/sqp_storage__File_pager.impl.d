lib/storage/file_pager.ml: Bytes Crc32 Faulty_io Hashtbl Int Int32 Int64 Journal List Printf Sqp_obs Stats Storage_error Unix
