lib/storage/file_pager.mli: Faulty_io Pager Stats
