lib/storage/file_pager.mli: Pager Stats
