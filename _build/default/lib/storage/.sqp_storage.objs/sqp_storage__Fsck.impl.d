lib/storage/fsck.ml: Buffer Bytes Faulty_io File_pager Fun Hashtbl Journal List Printf Storage_error Unix
