lib/storage/fsck.mli: Faulty_io Journal
