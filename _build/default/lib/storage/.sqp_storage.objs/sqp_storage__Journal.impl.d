lib/storage/journal.ml: Bytes Crc32 Faulty_io Fun Int32 Int64 List Printf Sqp_obs Sys Unix
