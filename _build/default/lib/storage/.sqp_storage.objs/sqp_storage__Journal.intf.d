lib/storage/journal.mli: Faulty_io
