lib/storage/pager.ml: Hashtbl Printf Stats
