lib/storage/pager.ml: Hashtbl Printf Sqp_obs Stats
