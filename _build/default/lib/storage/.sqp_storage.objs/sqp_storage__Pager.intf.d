lib/storage/pager.mli: Stats
