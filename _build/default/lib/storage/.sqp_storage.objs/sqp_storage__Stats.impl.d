lib/storage/stats.ml: Format List
