lib/storage/storage_error.ml: Printf Unix
