lib/storage/storage_error.mli: Unix
