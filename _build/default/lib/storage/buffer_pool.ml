type policy = Lru | Fifo | Clock

(* Observability hook (see Pager): one branch when observability is off. *)
let obs_incr name =
  if Sqp_obs.Trace.global_enabled () then
    Sqp_obs.Metrics.incr (Sqp_obs.Metrics.counter (Sqp_obs.Metrics.global ()) name)

type 'a frame = {
  mutable value : 'a;
  mutable dirty : bool;
  mutable last_used : int;   (* LRU timestamp *)
  inserted : int;            (* FIFO sequence *)
  mutable referenced : bool; (* CLOCK reference bit *)
}

type 'a t = {
  pager : 'a Pager.t;
  policy : policy;
  capacity : int;
  frames : (Pager.page_id, 'a frame) Hashtbl.t;
  mutable tick : int;
  mutable hand : Pager.page_id list; (* CLOCK order of resident pages *)
}

let create ?(policy = Lru) ~capacity pager =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity < 1";
  { pager; policy; capacity; frames = Hashtbl.create capacity; tick = 0; hand = [] }

let policy t = t.policy

let capacity t = t.capacity

let resident t = Hashtbl.length t.frames

let write_back t id frame =
  if frame.dirty then begin
    Pager.write t.pager id frame.value;
    frame.dirty <- false
  end

let evict_victim t =
  match t.policy with
  | Lru | Fifo ->
      let metric f = match t.policy with Lru -> f.last_used | _ -> f.inserted in
      let best = ref None in
      Hashtbl.iter
        (fun id f ->
          match !best with
          | None -> best := Some (id, f)
          | Some (_, bf) -> if metric f < metric bf then best := Some (id, f))
        t.frames;
      (match !best with Some v -> v | None -> assert false)
  | Clock ->
      (* Sweep the hand, clearing reference bits, until an unreferenced
         frame is found.  Two sweeps suffice: the first clears every bit. *)
      let rec sweep order scanned passes =
        match order with
        | [] ->
            if passes > 2 then assert false
            else sweep (List.rev scanned) [] (passes + 1)
        | id :: rest -> (
            match Hashtbl.find_opt t.frames id with
            | None -> sweep rest scanned passes
            | Some f ->
                if f.referenced then begin
                  f.referenced <- false;
                  sweep rest (id :: scanned) passes
                end
                else begin
                  (* Rotate the hand to just after the victim. *)
                  t.hand <- rest @ List.rev scanned;
                  (id, f)
                end)
      in
      sweep t.hand [] 1

let evict t =
  let id, frame = evict_victim t in
  write_back t id frame;
  Hashtbl.remove t.frames id;
  t.hand <- List.filter (fun x -> x <> id) t.hand;
  obs_incr "bufferpool.evictions"

let touch t frame =
  t.tick <- t.tick + 1;
  frame.last_used <- t.tick;
  frame.referenced <- true

let install t id value dirty =
  if Hashtbl.length t.frames >= t.capacity then evict t;
  t.tick <- t.tick + 1;
  let frame =
    { value; dirty; last_used = t.tick; inserted = t.tick; referenced = true }
  in
  Hashtbl.replace t.frames id frame;
  t.hand <- t.hand @ [ id ];
  frame

let stats t = Pager.stats t.pager

let get t id =
  match Hashtbl.find_opt t.frames id with
  | Some frame ->
      (stats t).pool_hits <- (stats t).pool_hits + 1;
      obs_incr "bufferpool.hits";
      touch t frame;
      frame.value
  | None ->
      (stats t).pool_misses <- (stats t).pool_misses + 1;
      obs_incr "bufferpool.misses";
      let value = Pager.read t.pager id in
      let frame = install t id value false in
      frame.value

let update t id value =
  match Hashtbl.find_opt t.frames id with
  | Some frame ->
      (stats t).pool_hits <- (stats t).pool_hits + 1;
      obs_incr "bufferpool.hits";
      touch t frame;
      frame.value <- value;
      frame.dirty <- true
  | None ->
      (stats t).pool_misses <- (stats t).pool_misses + 1;
      obs_incr "bufferpool.misses";
      if not (Pager.mem t.pager id) then
        invalid_arg "Buffer_pool.update: unallocated page";
      ignore (install t id value true)

let flush t = Hashtbl.iter (fun id frame -> write_back t id frame) t.frames

let drop t =
  Hashtbl.reset t.frames;
  t.hand <- []

let discard t id =
  Hashtbl.remove t.frames id;
  t.hand <- List.filter (fun x -> x <> id) t.hand
