(** Buffer pool over a {!Pager}.

    Section 4 argues that plain DBMS buffering — LRU in particular — serves
    AG perfectly because merges touch each page once, sequentially.  The
    pool lets that claim be measured: hits/misses are recorded in the
    pager's {!Stats.t}, and the replacement policy is pluggable so LRU can
    be compared with FIFO and CLOCK. *)

type policy = Lru | Fifo | Clock

type 'a t

val create : ?policy:policy -> capacity:int -> 'a Pager.t -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val policy : 'a t -> policy

val capacity : 'a t -> int

val get : 'a t -> Pager.page_id -> 'a
(** Fetch through the pool: a hit costs nothing physical, a miss reads
    from the pager and may evict (writing back a dirty frame). *)

val update : 'a t -> Pager.page_id -> 'a -> unit
(** Modify a page through the pool; the frame is marked dirty and written
    back on eviction or {!flush}. *)

val flush : 'a t -> unit
(** Write all dirty frames back. *)

val drop : 'a t -> unit
(** Empty the pool without writing (for tests). *)

val discard : 'a t -> Pager.page_id -> unit
(** Forget a single frame without writing back.  Must be called when a
    page is freed while possibly resident, so a stale dirty frame is not
    flushed to a dead page later. *)

val resident : 'a t -> int
(** Number of frames currently held. *)
