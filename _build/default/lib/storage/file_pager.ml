(* Layout: slot 0 is the header, data pages are slots 1..slot_count-1 at
   byte offset slot * page_bytes.

   Header: magic "SQP1" | page_bytes:i64 | slot_count:i64 | free_head:i64
   (-1 = none) | live_count:i64.

   Live page: payload_len:i32 (< 0xFFFFFFFF) | payload bytes.
   Free page: 0xFFFFFFFF:i32 | next_free_slot:i64 (-1 = end of list). *)

type t = {
  fd : Unix.file_descr;
  page_bytes : int;
  stats : Stats.t;
  mutable slot_count : int; (* including the header slot *)
  mutable free_head : int;  (* -1 = none *)
  mutable live : int;
  live_set : (int, unit) Hashtbl.t;
  mutable closed : bool;
}

let magic = "SQP1"

let free_marker = 0xFFFFFFFF

let header_bytes = 4 + (8 * 4)

let check_open t = if t.closed then invalid_arg "File_pager: store is closed"

let pwrite t ~offset buf =
  ignore (Unix.lseek t.fd offset Unix.SEEK_SET);
  let n = Unix.write t.fd buf 0 (Bytes.length buf) in
  if n <> Bytes.length buf then failwith "File_pager: short write"

let pread t ~offset len =
  ignore (Unix.lseek t.fd offset Unix.SEEK_SET);
  let buf = Bytes.create len in
  let rec go off =
    if off < len then begin
      let n = Unix.read t.fd buf off (len - off) in
      if n = 0 then failwith "File_pager: short read";
      go (off + n)
    end
  in
  go 0;
  buf

let write_header t =
  let buf = Bytes.make t.page_bytes '\000' in
  Bytes.blit_string magic 0 buf 0 4;
  Bytes.set_int64_be buf 4 (Int64.of_int t.page_bytes);
  Bytes.set_int64_be buf 12 (Int64.of_int t.slot_count);
  Bytes.set_int64_be buf 20 (Int64.of_int t.free_head);
  Bytes.set_int64_be buf 28 (Int64.of_int t.live);
  pwrite t ~offset:0 buf

let create ~path ~page_bytes =
  if page_bytes < 16 then invalid_arg "File_pager.create: page_bytes < 16";
  if page_bytes < header_bytes then invalid_arg "File_pager.create: page too small for header";
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let t =
    {
      fd;
      page_bytes;
      stats = Stats.create ();
      slot_count = 1;
      free_head = -1;
      live = 0;
      live_set = Hashtbl.create 64;
      closed = false;
    }
  in
  write_header t;
  t

let open_existing ~path =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  let head = Bytes.create header_bytes in
  let rec fill off =
    if off < header_bytes then begin
      let n = Unix.read fd head off (header_bytes - off) in
      if n = 0 then failwith "File_pager.open_existing: truncated header";
      fill (off + n)
    end
  in
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  fill 0;
  if Bytes.sub_string head 0 4 <> magic then
    failwith "File_pager.open_existing: bad magic";
  let geti off = Int64.to_int (Bytes.get_int64_be head off) in
  let t =
    {
      fd;
      page_bytes = geti 4;
      stats = Stats.create ();
      slot_count = geti 12;
      free_head = geti 20;
      live = geti 28;
      live_set = Hashtbl.create 64;
      closed = false;
    }
  in
  if t.page_bytes < header_bytes || t.slot_count < 1 then
    failwith "File_pager.open_existing: corrupt header";
  (* Rebuild the live-slot set from the page markers. *)
  for slot = 1 to t.slot_count - 1 do
    let first4 = pread t ~offset:(slot * t.page_bytes) 4 in
    let marker = Int32.to_int (Bytes.get_int32_be first4 0) land 0xFFFFFFFF in
    if marker <> free_marker then Hashtbl.replace t.live_set slot ()
  done;
  if Hashtbl.length t.live_set <> t.live then
    failwith "File_pager.open_existing: live count mismatch";
  t

let page_bytes t = t.page_bytes

let page_count t = t.live

let stats t = t.stats

let payload_capacity t = t.page_bytes - 4

let encode_page t payload =
  if Bytes.length payload > payload_capacity t then
    invalid_arg "File_pager: payload exceeds page capacity";
  let buf = Bytes.make t.page_bytes '\000' in
  Bytes.set_int32_be buf 0 (Int32.of_int (Bytes.length payload));
  Bytes.blit payload 0 buf 4 (Bytes.length payload);
  buf

let alloc t payload =
  check_open t;
  let buf = encode_page t payload in
  let slot =
    if t.free_head >= 0 then begin
      let slot = t.free_head in
      let page = pread t ~offset:(slot * t.page_bytes) 12 in
      t.free_head <- Int64.to_int (Bytes.get_int64_be page 4);
      slot
    end
    else begin
      let slot = t.slot_count in
      t.slot_count <- slot + 1;
      slot
    end
  in
  pwrite t ~offset:(slot * t.page_bytes) buf;
  Hashtbl.replace t.live_set slot ();
  t.live <- t.live + 1;
  t.stats.allocations <- t.stats.allocations + 1;
  t.stats.physical_writes <- t.stats.physical_writes + 1;
  slot

let check_live t slot =
  if not (Hashtbl.mem t.live_set slot) then
    invalid_arg (Printf.sprintf "File_pager: page %d is not live" slot)

let read t slot =
  check_open t;
  check_live t slot;
  let buf = pread t ~offset:(slot * t.page_bytes) t.page_bytes in
  let len = Int32.to_int (Bytes.get_int32_be buf 0) in
  t.stats.physical_reads <- t.stats.physical_reads + 1;
  Bytes.sub buf 4 len

let write t slot payload =
  check_open t;
  check_live t slot;
  pwrite t ~offset:(slot * t.page_bytes) (encode_page t payload);
  t.stats.physical_writes <- t.stats.physical_writes + 1

let free t slot =
  check_open t;
  check_live t slot;
  let buf = Bytes.make t.page_bytes '\000' in
  Bytes.set_int32_be buf 0 (Int32.of_int free_marker);
  Bytes.set_int64_be buf 4 (Int64.of_int t.free_head);
  pwrite t ~offset:(slot * t.page_bytes) buf;
  t.free_head <- slot;
  Hashtbl.remove t.live_set slot;
  t.live <- t.live - 1;
  t.stats.frees <- t.stats.frees + 1

let iter t f =
  check_open t;
  for slot = 1 to t.slot_count - 1 do
    if Hashtbl.mem t.live_set slot then begin
      let buf = pread t ~offset:(slot * t.page_bytes) t.page_bytes in
      let len = Int32.to_int (Bytes.get_int32_be buf 0) in
      f slot (Bytes.sub buf 4 len)
    end
  done

let flush t =
  check_open t;
  write_header t

let close t =
  if not t.closed then begin
    write_header t;
    Unix.close t.fd;
    t.closed <- true
  end
