(** File-backed page store: fixed-size pages in a single file.

    Section 4's integration claim is that z-order processing needs nothing
    beyond "widely available" file organizations; this module is that
    plain organization — numbered fixed-size pages with a free list — used
    by the persistence helpers to dump and reload indexes.  Page contents
    are raw bytes; callers bring their own encoding.

    Not crash-safe (the header is rewritten on {!flush}/{!close}); it
    models the layout, not recovery. *)

type t

val create : path:string -> page_bytes:int -> t
(** Create or truncate the file.
    @raise Invalid_argument if [page_bytes < 16]. *)

val open_existing : path:string -> t
(** Re-open a store written by {!create}.
    @raise Failure on a bad magic number or corrupt header. *)

val page_bytes : t -> int

val page_count : t -> int
(** Allocated (live) pages. *)

val stats : t -> Stats.t

val alloc : t -> bytes -> Pager.page_id
(** Write a new page (reusing a freed slot if any).
    @raise Invalid_argument if the payload exceeds the page payload
    capacity ([page_bytes - 4]). *)

val read : t -> Pager.page_id -> bytes
(** @raise Invalid_argument on a non-live page. *)

val write : t -> Pager.page_id -> bytes -> unit

val free : t -> Pager.page_id -> unit

val iter : t -> (Pager.page_id -> bytes -> unit) -> unit
(** All live pages, in id order; does not touch the counters. *)

val flush : t -> unit
(** Persist the header. *)

val close : t -> unit
(** Flush and close the file descriptor; the handle becomes unusable. *)
