let journal_magic = "SQPJ"

let commit_magic = "JCMT"

let version = 2

let journal_path path = path ^ ".journal"

let obs_incr name =
  if Sqp_obs.Trace.global_enabled () then
    Sqp_obs.Metrics.incr (Sqp_obs.Metrics.counter (Sqp_obs.Metrics.global ()) name)

let header_len = 4 + 4 + 8 + 8

let trailer_len = 4 + 4

let write ~injector ~store_path ~page_bytes records =
  List.iter
    (fun (slot, img) ->
      if slot < 0 then invalid_arg "Journal.write: negative slot";
      if Bytes.length img <> page_bytes then
        invalid_arg "Journal.write: image length <> page_bytes")
    records;
  let count = List.length records in
  let total = header_len + (count * (8 + page_bytes)) + trailer_len in
  let buf = Bytes.create total in
  Bytes.blit_string journal_magic 0 buf 0 4;
  Bytes.set_int32_be buf 4 (Int32.of_int version);
  Bytes.set_int64_be buf 8 (Int64.of_int page_bytes);
  Bytes.set_int64_be buf 16 (Int64.of_int count);
  let off = ref header_len in
  List.iter
    (fun (slot, img) ->
      Bytes.set_int64_be buf !off (Int64.of_int slot);
      Bytes.blit img 0 buf (!off + 8) page_bytes;
      off := !off + 8 + page_bytes)
    records;
  Bytes.blit_string commit_magic 0 buf !off 4;
  let crc = Crc32.bytes_crc buf ~pos:0 ~len:(!off + 4) in
  Bytes.set_int32_be buf (!off + 4) (Int32.of_int crc);
  let h =
    Faulty_io.openfile injector (journal_path store_path)
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Faulty_io.close h)
    (fun () ->
      Faulty_io.write_fully h ~offset:0 buf;
      Faulty_io.fsync h)

let clear ~injector ~store_path =
  let jpath = journal_path store_path in
  if Sys.file_exists jpath then Faulty_io.unlink injector jpath

type status = Absent | Valid of int | Invalid of string

(* Parse and checksum a whole journal image; journals are one batch of
   pages, so reading them into memory is fine. *)
let parse buf =
  let size = Bytes.length buf in
  if size < header_len + trailer_len then Error "file shorter than a journal header"
  else if Bytes.sub_string buf 0 4 <> journal_magic then Error "bad journal magic"
  else if Int32.to_int (Bytes.get_int32_be buf 4) <> version then
    Error
      (Printf.sprintf "unsupported journal version %d"
         (Int32.to_int (Bytes.get_int32_be buf 4)))
  else begin
    let page_bytes = Int64.to_int (Bytes.get_int64_be buf 8) in
    let count = Int64.to_int (Bytes.get_int64_be buf 16) in
    if page_bytes <= 0 || page_bytes > size then Error "implausible page size"
    else if count < 0 || count > size then Error "implausible record count"
    else if size <> header_len + (count * (8 + page_bytes)) + trailer_len then
      Error
        (Printf.sprintf "length mismatch: %d bytes for %d records of %d-byte pages" size
           count page_bytes)
    else if Bytes.sub_string buf (size - trailer_len) 4 <> commit_magic then
      Error "commit marker missing"
    else begin
      let stored = Int32.to_int (Bytes.get_int32_be buf (size - 4)) land 0xFFFFFFFF in
      let computed = Crc32.bytes_crc buf ~pos:0 ~len:(size - 4) in
      if stored <> computed then
        Error (Printf.sprintf "checksum mismatch (stored %08x, computed %08x)" stored computed)
      else begin
        let records = ref [] in
        for i = count - 1 downto 0 do
          let off = header_len + (i * (8 + page_bytes)) in
          let slot = Int64.to_int (Bytes.get_int64_be buf off) in
          records := (slot, Bytes.sub buf (off + 8) page_bytes) :: !records
        done;
        Ok (page_bytes, !records)
      end
    end
  end

let read_all ~injector jpath =
  let h = Faulty_io.openfile injector jpath [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Faulty_io.close h)
    (fun () -> Faulty_io.read_fully h ~offset:0 ~len:(Faulty_io.file_size h))

let inspect ~injector ~store_path =
  let jpath = journal_path store_path in
  if not (Sys.file_exists jpath) then Absent
  else
    match parse (read_all ~injector jpath) with
    | Ok (_, records) -> Valid (List.length records)
    | Error why -> Invalid why

let recover ~injector ~store_path =
  let jpath = journal_path store_path in
  if not (Sys.file_exists jpath) then `Absent
  else
    match parse (read_all ~injector jpath) with
    | Error why ->
        Faulty_io.unlink injector jpath;
        obs_incr "journal.discards";
        `Discarded why
    | Ok (page_bytes, records) ->
        let store =
          Faulty_io.openfile injector store_path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644
        in
        Fun.protect
          ~finally:(fun () -> Faulty_io.close store)
          (fun () ->
            List.iter
              (fun (slot, img) ->
                Faulty_io.write_fully store ~offset:(slot * page_bytes) img)
              records;
            Faulty_io.fsync store);
        Faulty_io.unlink injector jpath;
        obs_incr "journal.replays";
        `Replayed (List.length records)
