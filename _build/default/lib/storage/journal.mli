(** The atomic-commit journal (write-ahead log) of a page store.

    One journal file per store, at [store ^ ".journal"], holding the
    full page images of one batch (the new header is record slot 0).
    The commit protocol is: build the whole journal in memory, write it
    in one logical operation, [fsync] it, apply the images in place,
    [fsync] the store, then unlink the journal.  The trailing commit
    marker carries a CRC-32 over every preceding byte, so a journal torn
    at {e any} byte boundary fails validation and is discarded on
    recovery — the store then still holds the pre-batch state — while a
    journal that validates is replayed idempotently (a crash during
    replay just replays again on the next open).

    Byte layout (all integers big-endian):
    {v
    "SQPJ" | version:i32 | page_bytes:i64 | count:i64
    count x ( slot:i64 | image:page_bytes )
    "JCMT" | crc32:i32 over all preceding bytes
    v} *)

val journal_path : string -> string
(** The journal file of the store at [path]. *)

val write :
  injector:Faulty_io.injector -> store_path:string -> page_bytes:int ->
  (int * bytes) list -> unit
(** Persist one batch ([slot, full page image] pairs) to the journal and
    [fsync] it.  Every image must be exactly [page_bytes] long.
    Overwrites any previous journal. *)

val clear : injector:Faulty_io.injector -> store_path:string -> unit
(** Unlink the journal (a no-op if absent). *)

type status =
  | Absent
  | Valid of int  (** records in a complete, checksummed journal *)
  | Invalid of string  (** why validation failed *)

val inspect : injector:Faulty_io.injector -> store_path:string -> status
(** Read-only validation (used by fsck); never modifies anything. *)

val recover :
  injector:Faulty_io.injector -> store_path:string ->
  [ `Absent | `Replayed of int | `Discarded of string ]
(** Crash recovery, run before reading the store's header: a valid
    journal is replayed into the store file (then fsynced and unlinked);
    an invalid one is unlinked untouched.  Idempotent. *)
