type page_id = int

type 'a t = {
  pages : (page_id, 'a) Hashtbl.t;
  stats : Stats.t;
  mutable next_id : page_id;
}

let create () = { pages = Hashtbl.create 64; stats = Stats.create (); next_id = 0 }

let stats t = t.stats

let alloc t v =
  let id = t.next_id in
  t.next_id <- id + 1;
  Hashtbl.replace t.pages id v;
  t.stats.allocations <- t.stats.allocations + 1;
  t.stats.physical_writes <- t.stats.physical_writes + 1;
  id

let read t id =
  match Hashtbl.find_opt t.pages id with
  | None -> invalid_arg (Printf.sprintf "Pager.read: unallocated page %d" id)
  | Some v ->
      t.stats.physical_reads <- t.stats.physical_reads + 1;
      v

let write t id v =
  if not (Hashtbl.mem t.pages id) then
    invalid_arg (Printf.sprintf "Pager.write: unallocated page %d" id);
  Hashtbl.replace t.pages id v;
  t.stats.physical_writes <- t.stats.physical_writes + 1

let free t id =
  if not (Hashtbl.mem t.pages id) then
    invalid_arg (Printf.sprintf "Pager.free: unallocated page %d" id);
  Hashtbl.remove t.pages id;
  t.stats.frees <- t.stats.frees + 1

let page_count t = Hashtbl.length t.pages

let mem t id = Hashtbl.mem t.pages id

let iter t f = Hashtbl.iter f t.pages
