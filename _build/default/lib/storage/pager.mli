(** Simulated disk: a store of pages addressed by id.

    Every [read] / [write] bumps the {!Stats.t} counters — this is the
    "physical I/O" layer.  Access it through a {!Buffer_pool} to model
    the DBMS buffering the paper relies on, or directly to charge one
    physical access per touch. *)

type 'a t

type page_id = int

val create : unit -> 'a t

val stats : 'a t -> Stats.t

val alloc : 'a t -> 'a -> page_id
(** Allocate a fresh page with initial contents (counts an allocation and
    a write). *)

val read : 'a t -> page_id -> 'a
(** @raise Invalid_argument on an unallocated id. *)

val write : 'a t -> page_id -> 'a -> unit

val free : 'a t -> page_id -> unit

val page_count : 'a t -> int
(** Currently allocated pages. *)

val mem : 'a t -> page_id -> bool

val iter : 'a t -> (page_id -> 'a -> unit) -> unit
(** Iterate without touching the counters (inspection only). *)
