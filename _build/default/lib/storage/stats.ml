type t = {
  mutable physical_reads : int;
  mutable physical_writes : int;
  mutable allocations : int;
  mutable frees : int;
  mutable pool_hits : int;
  mutable pool_misses : int;
}

let create () =
  {
    physical_reads = 0;
    physical_writes = 0;
    allocations = 0;
    frees = 0;
    pool_hits = 0;
    pool_misses = 0;
  }

let reset t =
  t.physical_reads <- 0;
  t.physical_writes <- 0;
  t.allocations <- 0;
  t.frees <- 0;
  t.pool_hits <- 0;
  t.pool_misses <- 0

let snapshot t =
  {
    physical_reads = t.physical_reads;
    physical_writes = t.physical_writes;
    allocations = t.allocations;
    frees = t.frees;
    pool_hits = t.pool_hits;
    pool_misses = t.pool_misses;
  }

let diff ~after ~before =
  {
    physical_reads = after.physical_reads - before.physical_reads;
    physical_writes = after.physical_writes - before.physical_writes;
    allocations = after.allocations - before.allocations;
    frees = after.frees - before.frees;
    pool_hits = after.pool_hits - before.pool_hits;
    pool_misses = after.pool_misses - before.pool_misses;
  }

let add a b =
  {
    physical_reads = a.physical_reads + b.physical_reads;
    physical_writes = a.physical_writes + b.physical_writes;
    allocations = a.allocations + b.allocations;
    frees = a.frees + b.frees;
    pool_hits = a.pool_hits + b.pool_hits;
    pool_misses = a.pool_misses + b.pool_misses;
  }

let sum ts = List.fold_left add (create ()) ts

let accumulate ~into t =
  into.physical_reads <- into.physical_reads + t.physical_reads;
  into.physical_writes <- into.physical_writes + t.physical_writes;
  into.allocations <- into.allocations + t.allocations;
  into.frees <- into.frees + t.frees;
  into.pool_hits <- into.pool_hits + t.pool_hits;
  into.pool_misses <- into.pool_misses + t.pool_misses

let total_accesses t = t.physical_reads + t.physical_writes

let hit_ratio t =
  let total = t.pool_hits + t.pool_misses in
  if total = 0 then 0.0 else float_of_int t.pool_hits /. float_of_int total

let pp fmt t =
  Format.fprintf fmt
    "reads=%d writes=%d allocs=%d frees=%d hits=%d misses=%d (hit ratio %.2f)"
    t.physical_reads t.physical_writes t.allocations t.frees t.pool_hits
    t.pool_misses (hit_ratio t)
