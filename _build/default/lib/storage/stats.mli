(** Access-cost accounting.  The paper's experiments measure page accesses
    rather than wall-clock time; these counters are the repository's unit
    of cost throughout. *)

type t = {
  mutable physical_reads : int;   (** pages fetched from the "disk" *)
  mutable physical_writes : int;  (** pages written back *)
  mutable allocations : int;      (** pages allocated *)
  mutable frees : int;
  mutable pool_hits : int;        (** buffer-pool hits *)
  mutable pool_misses : int;
}

val create : unit -> t

val reset : t -> unit

val snapshot : t -> t
(** An independent copy. *)

val diff : after:t -> before:t -> t
(** Counter-wise subtraction. *)

val total_accesses : t -> int
(** [physical_reads + physical_writes]. *)

val hit_ratio : t -> float
(** [hits / (hits + misses)]; 0 if no pool traffic. *)

val pp : Format.formatter -> t -> unit
