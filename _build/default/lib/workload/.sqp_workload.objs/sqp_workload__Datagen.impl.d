lib/workload/datagen.ml: Array Float Hashtbl List Rng
