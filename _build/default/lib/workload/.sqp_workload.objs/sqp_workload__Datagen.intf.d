lib/workload/datagen.mli: Rng Sqp_geom
