lib/workload/querygen.ml: Array Float List Rng Sqp_geom
