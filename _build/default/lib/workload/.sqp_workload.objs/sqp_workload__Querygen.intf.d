lib/workload/querygen.mli: Rng Sqp_geom
