lib/workload/rng.ml: Array Float Int64
