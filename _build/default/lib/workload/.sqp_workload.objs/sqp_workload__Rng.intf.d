lib/workload/rng.mli:
