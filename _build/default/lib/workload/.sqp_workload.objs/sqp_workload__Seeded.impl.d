lib/workload/seeded.ml: Array Datagen List Rng Sqp_geom Sqp_zorder
