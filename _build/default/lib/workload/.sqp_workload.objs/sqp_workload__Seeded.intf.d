lib/workload/seeded.mli: Sqp_geom Sqp_zorder
