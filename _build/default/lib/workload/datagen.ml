type dataset = Uniform | Clustered | Diagonal

let dataset_name = function Uniform -> "U" | Clustered -> "C" | Diagonal -> "D"

let distinct_fill ~capacity ~n draw =
  if n > capacity then invalid_arg "Datagen: more points than grid cells";
  let seen = Hashtbl.create (2 * n) in
  let acc = ref [] in
  let attempts = ref 0 in
  while Hashtbl.length seen < n do
    incr attempts;
    if !attempts > 1000 * (n + 100) then
      invalid_arg "Datagen: distribution too concentrated to yield distinct points";
    let p = draw () in
    let key = Array.to_list p in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      acc := p :: !acc
    end
  done;
  Array.of_list (List.rev !acc)

let uniform rng ~side ~n ~dims =
  let capacity =
    int_of_float (Float.pow (float_of_int side) (float_of_int dims))
  in
  distinct_fill ~capacity ~n (fun () -> Array.init dims (fun _ -> Rng.int rng side))

let clamp side v = max 0 (min (side - 1) v)

let clustered rng ~side ~clusters ~per_cluster ~spread =
  let n = clusters * per_cluster in
  let centers =
    Array.init clusters (fun _ -> (Rng.int rng side, Rng.int rng side))
  in
  distinct_fill ~capacity:(side * side) ~n (fun () ->
      let cx, cy = centers.(Rng.int rng clusters) in
      let dx = int_of_float (Rng.gaussian rng *. spread)
      and dy = int_of_float (Rng.gaussian rng *. spread) in
      [| clamp side (cx + dx); clamp side (cy + dy) |])

let diagonal rng ~side ~n ~jitter =
  distinct_fill ~capacity:(side * side) ~n (fun () ->
      let x = Rng.int rng side in
      let dy = if jitter = 0 then 0 else Rng.int_in rng (-jitter) jitter in
      [| x; clamp side (x + dy) |])

let generate rng dataset ~side ~n =
  match dataset with
  | Uniform -> uniform rng ~side ~n ~dims:2
  | Clustered ->
      let clusters = 50 in
      let per_cluster = max 1 (n / clusters) in
      clustered rng ~side ~clusters ~per_cluster
        ~spread:(float_of_int side /. 64.0)
  | Diagonal -> diagonal rng ~side ~n ~jitter:(max 1 (side / 128))

let with_ids points = Array.mapi (fun i p -> (p, i)) points
