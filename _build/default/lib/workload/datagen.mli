(** The datasets of Section 5.3.2.

    Experiment U: points uniform over the grid.
    Experiment C: clustered — 50 small clusters of 100 points each.
    Experiment D: diagonal — points uniformly along the x = y line.

    All generators return distinct points (sampling continues until the
    requested count of distinct points is reached), 2d unless stated. *)

type dataset = Uniform | Clustered | Diagonal

val dataset_name : dataset -> string
(** "U", "C" or "D". *)

val uniform : Rng.t -> side:int -> n:int -> dims:int -> Sqp_geom.Point.t array
(** @raise Invalid_argument if more distinct points are requested than the
    grid holds. *)

val clustered :
  Rng.t ->
  side:int ->
  clusters:int ->
  per_cluster:int ->
  spread:float ->
  Sqp_geom.Point.t array
(** 2d: cluster centers uniform; members Gaussian around the center with
    standard deviation [spread] (in cells), clamped to the grid. *)

val diagonal : Rng.t -> side:int -> n:int -> jitter:int -> Sqp_geom.Point.t array
(** 2d: x uniform, y = x plus uniform jitter in [-jitter, jitter],
    clamped. *)

val generate : Rng.t -> dataset -> side:int -> n:int -> Sqp_geom.Point.t array
(** The paper's three datasets with its parameters scaled to [n]:
    [Clustered] uses 50 clusters of [n/50] points (spread = side/64),
    [Diagonal] uses jitter side/128. *)

val with_ids : Sqp_geom.Point.t array -> (Sqp_geom.Point.t * int) array
(** Pair each point with its index — the payload used by the indexes. *)
