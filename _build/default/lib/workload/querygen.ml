type spec = { volume_fraction : float; aspect : float }

let paper_volumes = [ 1.0 /. 64.0; 1.0 /. 16.0; 1.0 /. 4.0; 1.0 /. 2.0 ]

let paper_aspects = [ 1.0 /. 16.0; 1.0 /. 4.0; 1.0 /. 2.0; 1.0; 2.0; 4.0; 16.0 ]

let extents_of_spec ~side spec =
  if spec.volume_fraction <= 0.0 || spec.volume_fraction > 1.0 then
    invalid_arg "Querygen: volume fraction out of (0, 1]";
  if spec.aspect <= 0.0 then invalid_arg "Querygen: aspect must be positive";
  let area = spec.volume_fraction *. float_of_int (side * side) in
  let clamp v = max 1 (min side v) in
  let w = clamp (int_of_float (Float.round (sqrt (area *. spec.aspect)))) in
  let h = clamp (int_of_float (Float.round (area /. float_of_int w))) in
  (w, h)

let random_box rng ~side spec =
  let w, h = extents_of_spec ~side spec in
  let x = Rng.int rng (side - w + 1) and y = Rng.int rng (side - h + 1) in
  Sqp_geom.Box.make ~lo:[| x; y |] ~hi:[| x + w - 1; y + h - 1 |]

let random_boxes rng ~side spec ~count =
  List.init count (fun _ -> random_box rng ~side spec)

let partial_match_spec rng ~side ~dims ~restricted =
  if restricted < 0 || restricted > dims then
    invalid_arg "Querygen.partial_match_spec: bad restricted count";
  let axes = Array.init dims (fun i -> i) in
  Rng.shuffle rng axes;
  let pinned = Array.sub axes 0 restricted in
  let specs = Array.make dims None in
  Array.iter (fun a -> specs.(a) <- Some (Rng.int rng side)) pinned;
  specs
