(** Query workloads of Section 5.3.2: rectangular queries of several
    aspect ratios ("shapes") and volumes, dropped at random locations. *)

type spec = {
  volume_fraction : float; (** query area / space area *)
  aspect : float;          (** width / height; 1.0 = square *)
}

val paper_volumes : float list
(** The four volume fractions used in the experiment tables:
    1/64, 1/16, 1/4, 1/2. *)

val paper_aspects : float list
(** Aspect sweep: 1/16, 1/4, 1/2, 1, 2, 4, 16 (partial-match-like at the
    extremes, square in the middle). *)

val extents_of_spec : side:int -> spec -> int * int
(** Integer width and height whose product approximates
    [volume_fraction * side^2] with ratio [aspect], both clamped to
    [1, side]. *)

val random_box : Rng.t -> side:int -> spec -> Sqp_geom.Box.t
(** A query box of the given shape at a uniform location fully inside the
    grid. *)

val random_boxes : Rng.t -> side:int -> spec -> count:int -> Sqp_geom.Box.t list

val partial_match_spec : Rng.t -> side:int -> dims:int -> restricted:int -> int option array
(** A random partial-match query: [restricted] axes pinned to uniform
    values, the rest free. *)
