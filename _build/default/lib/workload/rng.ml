(* splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let golden = 0x9E3779B97F4A7C15L

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: 62 random bits mod n has negligible
     bias for the n used here (n << 2^62). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  bits mod n

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t =
  let bits = Int64.to_int (Int64.shift_right_logical (next t) 11) in
  float_of_int bits /. 9007199254740992.0 (* 2^53 *)

let gaussian t =
  let rec draw () =
    let u = float t in
    if u = 0.0 then draw () else u
  in
  let u1 = draw () and u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let bool t = Int64.logand (next t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t = { state = next t }
