(** Deterministic pseudo-random numbers (splitmix64).

    Every experiment in the repository draws randomness through a seeded
    [Rng.t], so results are reproducible bit for bit. *)

type t

val create : seed:int -> t

val copy : t -> t

val next : t -> int64
(** Raw 64-bit output. *)

val int : t -> int -> int
(** [int t n]: uniform in [0, n-1].
    @raise Invalid_argument if [n <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi]: uniform in [lo, hi] inclusive. *)

val float : t -> float
(** Uniform in [0, 1). *)

val gaussian : t -> float
(** Standard normal (Box-Muller). *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates. *)

val split : t -> t
(** A statistically independent child generator. *)
