(** The canonical seeded workload shared by the benchmark harness, the
    CLI's [query] subcommand and the observability tests.

    Before this module existed, [bench/main.ml] and [bin/main.ml] each
    re-derived the same datasets from the same magic seeds; now there is
    one definition, so "the 5000-point bench dataset" or "the 48x48 box
    join" mean the same bytes everywhere they are mentioned. *)

type t = {
  space : Sqp_zorder.Space.t;  (** 2-d, depth 10 (1024 x 1024 grid) *)
  points : int array array;    (** uniform points (seed 77) *)
  query : Sqp_geom.Box.t;
      (** the fixed range query covering 1/16 of the space *)
  query_boxes : Sqp_geom.Box.t array;
      (** random query boxes up to a quarter-side wide (seed 99), the
          parallel-speedup batch *)
  left_objects : (int * Sqp_geom.Shape.t) list;
      (** spatial-join side R: random boxes (seed 13), ids from 0 *)
  right_objects : (int * Sqp_geom.Shape.t) list;
      (** spatial-join side S: same stream continued, ids from 1000 *)
  decompose_options : Sqp_zorder.Decompose.options;
      (** how join objects are decomposed (max_level 12) *)
}

val standard : ?n_points:int -> ?n_objects:int -> ?n_query_boxes:int -> unit -> t
(** The bench workload: 5000 points, 48 objects per join side, 400 query
    boxes — each scalable down (or up) without changing what the common
    prefix of any stream generates. *)

val side : t -> int
(** Grid side of [t.space]. *)

val tagged_points : t -> (int array * int) array
(** [points] tagged with their index, the form the index structures and
    range-search drivers consume. *)

val join_elements :
  t ->
  (Sqp_zorder.Bitstring.t * int) list * (Sqp_zorder.Bitstring.t * int) list
(** Both join sides decomposed to [(element, object id)] lists under
    [decompose_options] — the input shape of {!Sqp_core.Zmerge} and
    {!Sqp_parallel.Par_spatial_join}. *)
