lib/zorder/bigmin.ml: Array Interleave Space
