lib/zorder/bigmin.mli: Space
