lib/zorder/bitstring.ml: Array Bytes Char Format Hashtbl List Printf Stdlib String
