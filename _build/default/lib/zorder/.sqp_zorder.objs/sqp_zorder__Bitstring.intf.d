lib/zorder/bitstring.mli: Format
