lib/zorder/curve.ml: Array Interleave List Seq Space
