lib/zorder/curve.mli: Seq Space
