lib/zorder/decompose.ml: Array Bitstring Element List Seq Space Sqp_obs
