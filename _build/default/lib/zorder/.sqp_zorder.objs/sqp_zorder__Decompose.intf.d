lib/zorder/decompose.mli: Bitstring Element Seq Space
