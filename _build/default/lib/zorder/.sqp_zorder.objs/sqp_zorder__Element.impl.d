lib/zorder/element.ml: Array Bitstring Float Interleave Space
