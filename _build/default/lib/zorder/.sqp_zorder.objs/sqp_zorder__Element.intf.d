lib/zorder/element.mli: Bitstring Format Space
