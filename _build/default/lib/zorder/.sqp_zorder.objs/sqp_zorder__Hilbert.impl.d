lib/zorder/hilbert.ml: Array Seq Space
