lib/zorder/hilbert.mli: Seq Space
