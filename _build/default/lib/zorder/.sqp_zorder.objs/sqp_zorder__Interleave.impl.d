lib/zorder/interleave.ml: Array Bitstring Printf Space
