lib/zorder/interleave.mli: Bitstring Space
