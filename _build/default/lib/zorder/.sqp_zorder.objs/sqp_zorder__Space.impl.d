lib/zorder/space.ml: Float Format
