lib/zorder/space.mli: Format
