lib/zorder/zmath.ml: Array Curve Decompose Float Hashtbl List Space
