lib/zorder/zmath.mli: Space
