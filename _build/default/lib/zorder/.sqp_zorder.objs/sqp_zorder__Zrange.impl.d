lib/zorder/zrange.ml: Bitstring Element List Space
