lib/zorder/zrange.mli: Element Space
