let check_box space ~lo ~hi =
  let k = Space.dims space in
  if Space.total_bits space > 61 then invalid_arg "Bigmin: space too deep";
  if Array.length lo <> k || Array.length hi <> k then invalid_arg "Bigmin: arity";
  for i = 0 to k - 1 do
    if lo.(i) > hi.(i) then invalid_arg "Bigmin: lo > hi";
    if not (Space.valid_coord space lo.(i) && Space.valid_coord space hi.(i)) then
      invalid_arg "Bigmin: box out of grid"
  done

let zcode space coords = Interleave.rank space coords

let in_box space ~lo ~hi z =
  check_box space ~lo ~hi;
  let pt = Interleave.point_of_rank space z in
  let rec ok i =
    i = Array.length pt || (lo.(i) <= pt.(i) && pt.(i) <= hi.(i) && ok (i + 1))
  in
  ok 0

(* Bit position [pos] counts from the MSB of the [total]-bit z code:
   pos 0 is the most significant interleaved bit.  The machine bit index
   is [total - 1 - pos]. *)
let bit_at total v pos = (v lsr (total - 1 - pos)) land 1

(* [load_pattern total k v pos first rest]: in the z code [v], set the bit
   at interleaved position [pos] to [first], and every lower-significance
   bit belonging to the same dimension (positions pos+k, pos+2k, ...) to
   [rest].  This is the "load 10...0 / 01...1" step of the algorithm. *)
let load_pattern total k v pos first rest =
  let v = ref v in
  let set p b =
    let idx = total - 1 - p in
    if b = 1 then v := !v lor (1 lsl idx) else v := !v land lnot (1 lsl idx)
  in
  set pos first;
  let p = ref (pos + k) in
  while !p < total do
    set !p rest;
    p := !p + k
  done;
  !v

let bigmin space ~lo ~hi z =
  check_box space ~lo ~hi;
  let k = Space.dims space in
  let total = Space.total_bits space in
  let zmin = ref (zcode space lo) and zmax = ref (zcode space hi) in
  let best = ref None in
  let exception Done of int option in
  try
    for pos = 0 to total - 1 do
      let bz = bit_at total z pos
      and bmin = bit_at total !zmin pos
      and bmax = bit_at total !zmax pos in
      match (bz, bmin, bmax) with
      | 0, 0, 0 -> ()
      | 0, 0, 1 ->
          (* The box spans both halves in this bit; remember the start of
             the upper half as a candidate jump, continue in the lower. *)
          best := Some (load_pattern total k !zmin pos 1 0);
          zmax := load_pattern total k !zmax pos 0 1
      | 0, 1, 1 ->
          (* z is below the box in this bit: the box minimum is the answer. *)
          raise (Done (Some !zmin))
      | 1, 0, 0 ->
          (* z is above the box in this bit: fall back to saved candidate. *)
          raise (Done !best)
      | 1, 0, 1 -> zmin := load_pattern total k !zmin pos 1 0
      | 1, 1, 1 -> ()
      | _, 1, 0 -> assert false (* zmin bit > zmax bit: cannot happen *)
      | _ -> assert false
    done;
    (* All bits agreed: z itself lies in the box. *)
    Some z
  with Done r -> r

let litmax space ~lo ~hi z =
  check_box space ~lo ~hi;
  let k = Space.dims space in
  let total = Space.total_bits space in
  let zmin = ref (zcode space lo) and zmax = ref (zcode space hi) in
  let best = ref None in
  let exception Done of int option in
  try
    for pos = 0 to total - 1 do
      let bz = bit_at total z pos
      and bmin = bit_at total !zmin pos
      and bmax = bit_at total !zmax pos in
      match (bz, bmin, bmax) with
      | 1, 1, 1 -> ()
      | 1, 0, 1 ->
          best := Some (load_pattern total k !zmax pos 0 1);
          zmin := load_pattern total k !zmin pos 1 0
      | 1, 0, 0 -> raise (Done (Some !zmax))
      | 0, 1, 1 -> raise (Done !best)
      | 0, 0, 1 -> zmax := load_pattern total k !zmax pos 0 1
      | 0, 0, 0 -> ()
      | _, 1, 0 -> assert false
      | _ -> assert false
    done;
    Some z
  with Done r -> r
