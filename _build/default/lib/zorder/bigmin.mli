(** BIGMIN / LITMAX: z-order skip computation.

    During the merged scan of Section 3.3, when the current point's z value
    escapes the query box, the scan can jump directly to the next z value
    that is back inside the box ("parts of the space that could not
    possibly contribute to the result are skipped").  With the box's
    decomposition in hand this is a binary search over element ranges;
    BIGMIN computes the same jump target {e without} materializing the
    decomposition, straight from the box corners (Tropf-Herzog style).

    Requires [Space.total_bits <= 61] (integer z values). *)

val in_box : Space.t -> lo:int array -> hi:int array -> int -> bool
(** Does the pixel with the given z value lie in the coordinate box? *)

val bigmin : Space.t -> lo:int array -> hi:int array -> int -> int option
(** [bigmin space ~lo ~hi z]: the smallest z value [>= z] whose pixel lies
    in the box, or [None] if there is none.  If [z] itself is inside, the
    result is [Some z]. *)

val litmax : Space.t -> lo:int array -> hi:int array -> int -> int option
(** Mirror image: the largest z value [<= z] inside the box. *)
