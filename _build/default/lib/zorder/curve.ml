let rank = Interleave.rank

let point_of_rank = Interleave.point_of_rank

let traverse space =
  let total = Space.total_bits space in
  if total > 24 then invalid_arg "Curve.traverse: space too large";
  let n = 1 lsl total in
  Seq.init n (point_of_rank space)

let rank_distance space a b = abs (rank space a - rank space b)

let chebyshev_distance a b =
  let d = ref 0 in
  Array.iteri (fun i ai -> d := max !d (abs (ai - b.(i)))) a;
  !d

let step_lengths space =
  if Space.dims space <> 2 then invalid_arg "Curve.step_lengths: 2d only";
  let pts = List.of_seq (traverse space) in
  let rec go = function
    | a :: (b :: _ as rest) ->
        let dx = b.(0) - a.(0) and dy = b.(1) - a.(1) in
        ((dx * dx) + (dy * dy)) :: go rest
    | _ -> []
  in
  go pts
