(** The z curve itself (Figure 4): ranks, traversal, neighbours. *)

val rank : Space.t -> int array -> int
(** Position of a pixel along the z curve (alias of {!Interleave.rank}). *)

val point_of_rank : Space.t -> int -> int array
(** Inverse of {!rank}. *)

val traverse : Space.t -> int array Seq.t
(** All pixels in z order.  Only for small spaces (fails above 24 total
    bits to avoid accidents).
    @raise Invalid_argument if the space has more than 2^24 pixels. *)

val rank_distance : Space.t -> int array -> int array -> int
(** [abs (rank a - rank b)]: distance along the curve. *)

val chebyshev_distance : int array -> int array -> int
(** Max per-axis coordinate distance (spatial proximity measure used in
    the Section 5.2 discussion). *)

val step_lengths : Space.t -> int list
(** For a 2d space: the Euclidean-squared lengths of successive curve
    steps, in order — used to visualize how often the curve makes long
    jumps (the source of proximity violations). *)
