type classification = Inside | Outside | Crosses

type classifier = Element.t -> classification

type options = { max_level : int option; max_elements : int option }

let default_options = { max_level = None; max_elements = None }

let effective_max_level space options =
  let pixels = Space.total_bits space in
  match options.max_level with
  | None -> pixels
  | Some l -> min l pixels

let run_impl ~options space classify =
  let max_level = effective_max_level space options in
  let emitted = ref 0 in
  let over_budget () =
    match options.max_elements with
    | None -> false
    | Some b -> !emitted >= b
  in
  (* Accumulate in reverse z order, low child first, then reverse. *)
  let rec go e acc =
    match classify e with
    | Outside -> acc
    | Inside ->
        incr emitted;
        e :: acc
    | Crosses ->
        if Element.level e >= max_level || over_budget () then begin
          incr emitted;
          e :: acc
        end
        else
          let lo, hi = Element.children e in
          go hi (go lo acc)
  in
  List.rev (go Element.root [])

let run ?(options = default_options) space classify =
  if not (Sqp_obs.Trace.global_enabled ()) then run_impl ~options space classify
  else begin
    let tracer = Sqp_obs.Trace.global () in
    Sqp_obs.Trace.span_begin tracer "decompose";
    let elements = run_impl ~options space classify in
    let n = List.length elements in
    Sqp_obs.Trace.span_end
      ~attrs:(fun () -> [ ("elements", Sqp_obs.Trace.Int n) ])
      tracer;
    let m = Sqp_obs.Metrics.global () in
    Sqp_obs.Metrics.incr (Sqp_obs.Metrics.counter m "decompose.objects");
    Sqp_obs.Metrics.add (Sqp_obs.Metrics.counter m "decompose.elements") n;
    Sqp_obs.Metrics.observe
      (Sqp_obs.Metrics.histogram m "decompose.elements_per_object")
      n;
    elements
  end

let count ?(options = default_options) space classify =
  let max_level = effective_max_level space options in
  let n = ref 0 in
  let over_budget () =
    match options.max_elements with None -> false | Some b -> !n >= b
  in
  let rec go e =
    match classify e with
    | Outside -> ()
    | Inside -> incr n
    | Crosses ->
        if Element.level e >= max_level || over_budget () then incr n
        else begin
          let lo, hi = Element.children e in
          go lo;
          go hi
        end
  in
  go Element.root;
  !n

let to_seq ?(options = default_options) space classify =
  let max_level = effective_max_level space options in
  (* Explicit stack of elements still to process, top = next in z order. *)
  let rec step stack () =
    match stack with
    | [] -> Seq.Nil
    | e :: rest -> (
        match classify e with
        | Outside -> step rest ()
        | Inside -> Seq.Cons (e, step rest)
        | Crosses ->
            if Element.level e >= max_level then Seq.Cons (e, step rest)
            else
              let lo, hi = Element.children e in
              step (lo :: hi :: rest) ())
  in
  step [ Element.root ]

let seq_from space classify zmin =
  let total = Space.total_bits space in
  let max_level = total in
  (* Skip elements whose whole z range lies before [zmin]: element e is
     skippable iff zhi e < zmin, i.e. e padded with 1s is < zmin. *)
  let wholly_before e = Bitstring.compare (Bitstring.pad_to e total true) zmin < 0 in
  let rec step stack () =
    match stack with
    | [] -> Seq.Nil
    | e :: rest ->
        if wholly_before e then step rest ()
        else (
          match classify e with
          | Outside -> step rest ()
          | Inside -> Seq.Cons (e, step rest)
          | Crosses ->
              if Element.level e >= max_level then Seq.Cons (e, step rest)
              else
                let lo, hi = Element.children e in
                step (lo :: hi :: rest) ())
  in
  step [ Element.root ]

let box_classifier space ~lo ~hi =
  let k = Space.dims space in
  if Array.length lo <> k || Array.length hi <> k then
    invalid_arg "Decompose.box_classifier: wrong arity";
  for i = 0 to k - 1 do
    if lo.(i) > hi.(i) then invalid_arg "Decompose.box_classifier: lo > hi";
    if not (Space.valid_coord space lo.(i) && Space.valid_coord space hi.(i)) then
      invalid_arg "Decompose.box_classifier: bounds out of grid"
  done;
  fun e ->
    let elo, ehi = Element.box space e in
    let rec check i inside =
      if i = k then if inside then Inside else Crosses
      else if ehi.(i) < lo.(i) || elo.(i) > hi.(i) then Outside
      else
        let contained = lo.(i) <= elo.(i) && ehi.(i) <= hi.(i) in
        check (i + 1) (inside && contained)
    in
    check 0 true

let decompose_box ?options space ~lo ~hi =
  run ?options space (box_classifier space ~lo ~hi)

let is_exact_cover space classify elements =
  let total = Space.total_bits space in
  if total > 24 then invalid_arg "Decompose.is_exact_cover: space too large";
  (* z order + disjointness *)
  let rec ordered = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> Element.precedes a b && ordered rest
  in
  ordered elements
  &&
  let n = 1 lsl total in
  let covered r =
    let z = Bitstring.of_int r ~width:total in
    List.exists (fun e -> Bitstring.is_prefix e z) elements
  in
  let rec check r =
    if r = n then true
    else
      let z = Bitstring.of_int r ~width:total in
      let ok =
        match classify z with
        | Inside -> covered r
        | Outside -> not (covered r)
        | Crosses -> true (* boundary pixel: either way is acceptable *)
      in
      ok && check (r + 1)
  in
  check 0
