type t = Bitstring.t

let root = Bitstring.empty

let z e = e

let level = Bitstring.length

let is_pixel space e = level e = Space.total_bits space

let low_child e = Bitstring.append_bit e false
let high_child e = Bitstring.append_bit e true
let children e = (low_child e, high_child e)

let parent e =
  if Bitstring.is_empty e then None else Some (Bitstring.take e (level e - 1))

let split_axis space e = Space.axis_of_level space (level e)

let contains = Bitstring.is_prefix

let precedes e1 e2 = Bitstring.compare e1 e2 < 0 && not (contains e1 e2)

let compare = Bitstring.compare
let equal = Bitstring.equal

let zlo space e = Bitstring.pad_to e (Space.total_bits space) false
let zhi space e = Bitstring.pad_to e (Space.total_bits space) true

let box space e =
  let d = Space.depth space in
  let prefixes = Interleave.unshuffle space e in
  let lo = Array.map (fun (v, len) -> v lsl (d - len)) prefixes in
  let hi =
    Array.map (fun (v, len) -> ((v + 1) lsl (d - len)) - 1) prefixes
  in
  (lo, hi)

let of_box space ~lo ~hi =
  let k = Space.dims space and d = Space.depth space in
  if Array.length lo <> k || Array.length hi <> k then None
  else begin
    (* Each axis range must be [v * 2^s, (v+1) * 2^s - 1] for some shift s;
       recover (v, d - s) per axis and check the interleaving pattern. *)
    let exception Not_an_element in
    try
      let prefixes =
        Array.init k (fun i ->
            if not (Space.valid_coord space lo.(i) && Space.valid_coord space hi.(i)) then
              raise Not_an_element;
            let extent = hi.(i) - lo.(i) + 1 in
            if extent <= 0 || extent land (extent - 1) <> 0 then raise Not_an_element;
            let s =
              let rec log2 acc n = if n = 1 then acc else log2 (acc + 1) (n lsr 1) in
              log2 0 extent
            in
            if lo.(i) land (extent - 1) <> 0 then raise Not_an_element;
            (lo.(i) lsr s, d - s))
      in
      let lens = Array.map snd prefixes in
      for i = 1 to k - 1 do
        if lens.(i) > lens.(i - 1) then raise Not_an_element
      done;
      if lens.(0) - lens.(k - 1) > 1 then raise Not_an_element;
      Some (Interleave.shuffle_prefixes space prefixes)
    with Not_an_element -> None
  end

let cells space e =
  Float.pow 2.0 (float_of_int (Space.total_bits space - level e))

let side_along space e axis =
  let _, len = (Interleave.unshuffle space e).(axis) in
  1 lsl (Space.depth space - len)

let pixel = Interleave.shuffle

let first_pixel space e = fst (box space e)

let pp = Bitstring.pp
