(** Elements: the regions produced by recursive halving (Section 3.1).

    An element is identified by its z value — a bitstring of length
    [level] obtained by interleaving the defining coordinate-prefix bits.
    The root element (whole space) has the empty z value; appending 0 / 1
    descends into the low / high half of the split at the current level.

    Key facts from the paper, all realized here:
    - two elements either nest (one z value is a prefix of the other) or
      are disjoint and ordered (z-order precedence) — overlap is impossible;
    - the pixel z values inside an element are exactly the consecutive
      interval [zlo, zhi] (Figure 3). *)

type t = Bitstring.t
(** An element {e is} its z value. *)

val root : t

val z : t -> Bitstring.t
(** Identity; for readability at call sites. *)

val level : t -> int
(** Number of splits that produced the element = z-value length. *)

val is_pixel : Space.t -> t -> bool
(** Whether the element is a single grid cell ([level = dims * depth]). *)

val low_child : t -> t
val high_child : t -> t

val children : t -> t * t
(** [(low_child e, high_child e)], in z order. *)

val parent : t -> t option
(** [None] for the root. *)

val split_axis : Space.t -> t -> int
(** The axis discriminated by the {e next} split of this element. *)

val contains : t -> t -> bool
(** [contains e1 e2]: does [e1] spatially contain [e2]?  (Prefix test —
    Section 4's [contains] operator.)  Reflexive. *)

val precedes : t -> t -> bool
(** Strict z-order precedence (Section 4's [precedes] operator). *)

val compare : t -> t -> int
val equal : t -> t -> bool

val zlo : Space.t -> t -> Bitstring.t
(** Smallest full-resolution pixel z value inside the element: the z value
    padded with 0s to [total_bits]. *)

val zhi : Space.t -> t -> Bitstring.t
(** Largest pixel z value inside: padded with 1s. *)

val box : Space.t -> t -> int array * int array
(** [(lo, hi)]: inclusive per-axis coordinate ranges covered.  The root
    covers [([|0;...|], [|side-1;...|])]. *)

val of_box : Space.t -> lo:int array -> hi:int array -> t option
(** [of_box space ~lo ~hi] is [Some e] iff the coordinate ranges are
    exactly those of an element (each axis range a power-of-two-aligned
    block and the per-axis prefix lengths a valid interleaving pattern). *)

val cells : Space.t -> t -> float
(** Number of pixels covered: [2^(total_bits - level)]. *)

val side_along : Space.t -> t -> int -> int
(** [side_along space e axis]: extent of the element along [axis]. *)

val pixel : Space.t -> int array -> t
(** The pixel element at the given coordinates ([Interleave.shuffle]). *)

val first_pixel : Space.t -> t -> int array
(** Coordinates of the lower corner (the pixel whose z value is [zlo]). *)

val pp : Format.formatter -> t -> unit
