let check space =
  if Space.dims space <> 2 then invalid_arg "Hilbert: 2d only";
  if Space.total_bits space > 61 then invalid_arg "Hilbert: space too deep"

(* Classic bitwise conversion (cf. Hamilton's compact Hilbert indices for
   the square case): walk the quadrant bits from the top, rotating the
   frame as the curve recurses. *)
let rank space p =
  check space;
  let side = Space.side space in
  if not (Space.valid_coord space p.(0) && Space.valid_coord space p.(1)) then
    invalid_arg "Hilbert.rank: point out of grid";
  let x = ref p.(0) and y = ref p.(1) in
  let d = ref 0 in
  let s = ref (side / 2) in
  while !s > 0 do
    let rx = if !x land !s > 0 then 1 else 0 in
    let ry = if !y land !s > 0 then 1 else 0 in
    d := !d + (!s * !s * ((3 * rx) lxor ry));
    (* Rotate the frame so the sub-curve is in canonical position; the
       reflection is about the full grid (side - 1), as in the classic
       xy2d formulation. *)
    if ry = 0 then begin
      if rx = 1 then begin
        x := side - 1 - !x;
        y := side - 1 - !y
      end;
      let tmp = !x in
      x := !y;
      y := tmp
    end;
    s := !s / 2
  done;
  !d

let point_of_rank space r =
  check space;
  let side = Space.side space in
  if r < 0 || (Space.total_bits space < 61 && r lsr Space.total_bits space <> 0)
  then invalid_arg "Hilbert.point_of_rank: rank out of range";
  let x = ref 0 and y = ref 0 in
  let t = ref r in
  let s = ref 1 in
  while !s < side do
    let rx = 1 land (!t / 2) in
    let ry = 1 land (!t lxor rx) in
    if ry = 0 then begin
      if rx = 1 then begin
        x := !s - 1 - !x;
        y := !s - 1 - !y
      end;
      let tmp = !x in
      x := !y;
      y := tmp
    end;
    x := !x + (!s * rx);
    y := !y + (!s * ry);
    t := !t / 4;
    s := !s * 2
  done;
  [| !x; !y |]

let traverse space =
  check space;
  if Space.total_bits space > 24 then invalid_arg "Hilbert.traverse: space too large";
  Seq.init (1 lsl Space.total_bits space) (point_of_rank space)
