(** 2d Hilbert curve — the classic alternative space-filling order.

    The paper builds everything on z order because interleaving makes
    encoding, decoding and range decomposition cheap bit operations.  The
    Hilbert curve preserves proximity slightly better (consecutive ranks
    are always 4-neighbours; the z curve makes occasional long jumps) at
    the price of a more expensive code and no prefix/containment algebra.
    This module exists to quantify that trade-off in the proximity and
    clustering ablations; it is {e not} used by the AG machinery. *)

val rank : Space.t -> int array -> int
(** Position of a pixel along the Hilbert curve of the space's grid.
    @raise Invalid_argument unless the space is 2d with
    [total_bits <= 61]. *)

val point_of_rank : Space.t -> int -> int array
(** Inverse of {!rank}. *)

val traverse : Space.t -> int array Seq.t
(** All pixels in Hilbert order (small spaces only, as
    {!Curve.traverse}). *)
