let check_coords space coords =
  let k = Space.dims space in
  if Array.length coords <> k then
    invalid_arg "Interleave: wrong number of coordinates";
  Array.iter
    (fun c ->
      if not (Space.valid_coord space c) then
        invalid_arg (Printf.sprintf "Interleave: coordinate %d out of range" c))
    coords

let shuffle space coords =
  check_coords space coords;
  let k = Space.dims space and d = Space.depth space in
  Bitstring.init (k * d) (fun j ->
      let axis = j mod k and bit = j / k in
      (* bit 0 is the most significant of the d coordinate bits *)
      (coords.(axis) lsr (d - 1 - bit)) land 1 = 1)

let shuffle_prefixes space prefixes =
  let k = Space.dims space and d = Space.depth space in
  if Array.length prefixes <> k then
    invalid_arg "Interleave.shuffle_prefixes: wrong arity";
  let lens = Array.map snd prefixes in
  Array.iteri
    (fun i (v, len) ->
      if len < 0 || len > d then
        invalid_arg "Interleave.shuffle_prefixes: bad prefix length";
      if v < 0 || (len < 62 && v lsr len <> 0) then
        invalid_arg "Interleave.shuffle_prefixes: prefix value does not fit";
      if i > 0 && len > lens.(i - 1) then
        invalid_arg "Interleave.shuffle_prefixes: lengths must be non-increasing")
    prefixes;
  if lens.(0) - lens.(k - 1) > 1 then
    invalid_arg "Interleave.shuffle_prefixes: lengths differ by more than 1";
  let total = Array.fold_left ( + ) 0 lens in
  Bitstring.init total (fun j ->
      let axis = j mod k and bit = j / k in
      let v, len = prefixes.(axis) in
      (v lsr (len - 1 - bit)) land 1 = 1)

let unshuffle space z =
  let k = Space.dims space in
  let total = Bitstring.length z in
  if total > Space.total_bits space then
    invalid_arg "Interleave.unshuffle: z value too long for space";
  let prefixes = Array.make k (0, 0) in
  for j = 0 to total - 1 do
    let axis = j mod k in
    let v, len = prefixes.(axis) in
    prefixes.(axis) <- ((v lsl 1) lor (if Bitstring.get z j then 1 else 0), len + 1)
  done;
  prefixes

let rank space coords =
  if Space.total_bits space > 62 then invalid_arg "Interleave.rank: space too deep";
  Bitstring.to_int (shuffle space coords)

let point_of_rank space r =
  let k = Space.dims space and d = Space.depth space in
  if Space.total_bits space > 62 then
    invalid_arg "Interleave.point_of_rank: space too deep";
  if r < 0 || (k * d < 62 && r lsr (k * d) <> 0) then
    invalid_arg "Interleave.point_of_rank: rank out of range";
  let z = Bitstring.of_int r ~width:(k * d) in
  Array.map fst (unshuffle space z)
