(** Bit interleaving: the [shuffle] / [unshuffle] operators of Section 4.

    [shuffle] maps a grid point (or, more generally, the common coordinate
    prefixes of a region) to its z value by interleaving bits across axes,
    starting with axis 0 (X).  [unshuffle] inverts this, recovering the
    per-axis prefixes. *)

val shuffle : Space.t -> int array -> Bitstring.t
(** [shuffle space coords] is the full-resolution z value of the pixel at
    [coords] ([Space.dims space] coordinates of [Space.depth space] bits
    each).  Bit [j] of the result is bit [depth - 1 - j/k] of coordinate
    [j mod k].
    @raise Invalid_argument on wrong arity or out-of-range coordinates. *)

val shuffle_prefixes : Space.t -> (int * int) array -> Bitstring.t
(** [shuffle_prefixes space prefixes] interleaves per-axis prefixes, where
    [prefixes.(i) = (value_i, len_i)] gives the first [len_i] bits of axis
    [i] (as the integer [value_i < 2^len_i]).  The prefix lengths must be
    a valid interleaving pattern: [len_0 >= len_1 >= ... >= len_(k-1)] and
    [len_0 - len_(k-1) <= 1].
    @raise Invalid_argument otherwise. *)

val unshuffle : Space.t -> Bitstring.t -> (int * int) array
(** Inverse of {!shuffle_prefixes}: per-axis [(prefix_value, prefix_len)].
    Accepts z values of any length up to [Space.total_bits]. *)

val rank : Space.t -> int array -> int
(** [rank space coords] is the z value of a pixel read as an integer: the
    position of the pixel along the z curve (Figure 4; rank of [|3; 5|]
    in a 2d depth-3 space is 27).
    @raise Invalid_argument if [Space.total_bits space > 62]. *)

val point_of_rank : Space.t -> int -> int array
(** Inverse of {!rank}. *)
