type t = { dims : int; depth : int }

let make ~dims ~depth =
  if dims < 1 then invalid_arg "Space.make: dims must be >= 1";
  if depth < 0 then invalid_arg "Space.make: depth must be >= 0";
  if dims * depth > 512 then invalid_arg "Space.make: dims * depth too large";
  { dims; depth }

let dims t = t.dims
let depth t = t.depth

let side t =
  if t.depth > 61 then invalid_arg "Space.side: depth too large for int";
  1 lsl t.depth

let total_bits t = t.dims * t.depth

let axis_of_level t level = level mod t.dims

let cells t = Float.pow 2.0 (float_of_int (t.dims * t.depth))

let valid_coord t c = c >= 0 && c < side t

let pp fmt t = Format.fprintf fmt "%dd grid of 2^%d per axis" t.dims t.depth
