(** Description of the discrete space being indexed.

    The paper assumes a [2^d x ... x 2^d] grid in [k] dimensions, split
    recursively into equal halves with the split axis cycling
    [x, y, x, y, ...] (Section 3.1, assumptions 1-3).  A [Space.t] packages
    [k] and [d]; every element / z-value operation takes one. *)

type t = private { dims : int; depth : int }
(** [dims] is k (number of dimensions), [depth] is d (bits per axis). *)

val make : dims:int -> depth:int -> t
(** @raise Invalid_argument unless [1 <= dims] and [0 <= depth] and
    [dims * depth <= 512] (a sanity bound; z values get long). *)

val dims : t -> int
val depth : t -> int

val side : t -> int
(** [2^depth], the number of grid positions per axis.
    @raise Invalid_argument if [depth > 61]. *)

val total_bits : t -> int
(** [dims * depth]: the length of a full-resolution (pixel) z value. *)

val axis_of_level : t -> int -> int
(** [axis_of_level s level] is the axis discriminated by the split at tree
    depth [level] (0-based): [level mod dims].  Level 0 splits on axis 0
    (x), matching the paper's convention of interleaving starting with X. *)

val cells : t -> float
(** Total number of pixels, [2^(dims*depth)], as a float (may be huge). *)

val valid_coord : t -> int -> bool
(** Whether a coordinate lies in [0, side - 1]. *)

val pp : Format.formatter -> t -> unit
