let element_count space ~extents =
  let k = Space.dims space in
  if Array.length extents <> k then invalid_arg "Zmath.element_count: arity";
  Array.iter
    (fun u ->
      if u < 1 || u > Space.side space then
        invalid_arg "Zmath.element_count: extent out of range")
    extents;
  let lo = Array.make k 0 and hi = Array.map (fun u -> u - 1) extents in
  Decompose.count space (Decompose.box_classifier space ~lo ~hi)

let element_count_analytic space ~extents =
  let k = Space.dims space in
  if Array.length extents <> k then invalid_arg "Zmath.element_count_analytic: arity";
  Array.iter
    (fun u ->
      if u < 1 || u > Space.side space then
        invalid_arg "Zmath.element_count_analytic: extent out of range")
    extents;
  (* State: remaining extent per axis (anchored at the region origin),
     remaining split depth per axis, and the axis to split next.  The box
     is origin-anchored, so each split leaves a full-prefix left part and
     an origin-anchored right part. *)
  let memo = Hashtbl.create 256 in
  let rec count us ds axis =
    if Array.exists (fun u -> u = 0) us then 0
    else if Array.for_all2 (fun u d -> u = 1 lsl d) us ds then 1
    else begin
      let key = (Array.to_list us, Array.to_list ds, axis) in
      match Hashtbl.find_opt memo key with
      | Some n -> n
      | None ->
          (* Find the next axis that can still split. *)
          let rec next_axis a tried =
            if tried = k then a (* all depths 0: handled by the cases above *)
            else if ds.(a) > 0 then a
            else next_axis ((a + 1) mod k) (tried + 1)
          in
          let a = next_axis axis 0 in
          let s = 1 lsl (ds.(a) - 1) in
          let ds' = Array.copy ds in
          ds'.(a) <- ds.(a) - 1;
          let left =
            let us' = Array.copy us in
            us'.(a) <- min us.(a) s;
            count us' ds' ((a + 1) mod k)
          in
          let right =
            if us.(a) > s then begin
              let us' = Array.copy us in
              us'.(a) <- us.(a) - s;
              count us' ds' ((a + 1) mod k)
            end
            else 0
          in
          let n = left + right in
          Hashtbl.replace memo key n;
          n
    end
  in
  count (Array.copy extents) (Array.make k (Space.depth space)) 0

let bit_spread extents =
  let v = Array.fold_left ( lor ) 0 extents in
  if v = 0 then 0
  else begin
    let high = ref 0 in
    let low = ref 62 in
    for i = 0 to 62 do
      if (v lsr i) land 1 = 1 then begin
        if i > !high then high := i;
        if i < !low then low := i
      end
    done;
    !high - !low + 1
  end

let coarsen_extent u ~m =
  if u < 0 then invalid_arg "Zmath.coarsen_extent: negative";
  if m < 0 || m > 61 then invalid_arg "Zmath.coarsen_extent: bad m";
  let mask = (1 lsl m) - 1 in
  if u land mask = 0 then u else (u lor mask) + 1

let coarsen space ~extents ~m =
  Array.map (fun u -> min (Space.side space) (coarsen_extent u ~m)) extents

type coarsening_report = {
  m : int;
  extents : int array;
  elements : int;
  area_ratio : float;
}

let volume extents = Array.fold_left (fun acc u -> acc *. float_of_int u) 1.0 extents

let coarsening_sweep space ~extents =
  let true_volume = volume extents in
  List.init
    (Space.depth space + 1)
    (fun m ->
      let extents = coarsen space ~extents ~m in
      {
        m;
        extents;
        elements = element_count space ~extents;
        area_ratio = volume extents /. true_volume;
      })

type proximity_row = {
  spatial_distance : int;
  samples : int;
  median_rank_distance : int;
  p90_rank_distance : int;
  within_page : float;
}

let proximity_table ~rng space ~distances ~samples ~pages =
  if Space.dims space <> 2 then invalid_arg "Zmath.proximity_table: 2d only";
  if Space.total_bits space > 61 then invalid_arg "Zmath.proximity_table: too deep";
  let side = Space.side space in
  let cells_per_page =
    max 1 (int_of_float (Space.cells space /. float_of_int pages))
  in
  let sample_pair delta =
    (* Pick a random point, then a random second point at Chebyshev
       distance exactly delta (on the square ring around the first). *)
    let rec try_once () =
      let x = rng side and y = rng side in
      (* Ring positions: parameterize the 8*delta - ... perimeter; simpler:
         pick dx, dy in [-delta, delta] with max |dx| |dy| = delta. *)
      let dx = rng ((2 * delta) + 1) - delta in
      let dy =
        if abs dx = delta then rng ((2 * delta) + 1) - delta
        else if rng 2 = 0 then delta
        else -delta
      in
      let x2 = x + dx and y2 = y + dy in
      if x2 < 0 || x2 >= side || y2 < 0 || y2 >= side then try_once ()
      else ([| x; y |], [| x2; y2 |])
    in
    try_once ()
  in
  let percentile sorted p =
    let n = Array.length sorted in
    sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))
  in
  List.map
    (fun delta ->
      let dists =
        Array.init samples (fun _ ->
            let a, b = sample_pair delta in
            Curve.rank_distance space a b)
      in
      Array.sort compare dists;
      let within =
        Array.fold_left (fun acc d -> if d <= cells_per_page then acc + 1 else acc) 0 dists
      in
      {
        spatial_distance = delta;
        samples;
        median_rank_distance = percentile dists 0.5;
        p90_rank_distance = percentile dists 0.9;
        within_page = float_of_int within /. float_of_int samples;
      })
    distances

let predicted_range_pages ?(pages_per_block = 1.0) ~n_pages ~side ~query_extents () =
  let k = Array.length query_extents in
  (* Blocks of [pages_per_block] pages tile the space in near-cubical
     tiles; a query overlaps at most prod (q_i / block_side + 1) blocks,
     each contributing at most [pages_per_block] pages. *)
  let blocks = float_of_int n_pages /. pages_per_block in
  let block_side =
    float_of_int side /. Float.pow blocks (1.0 /. float_of_int k)
  in
  pages_per_block
  *. Array.fold_left
       (fun acc q -> acc *. ((float_of_int q /. block_side) +. 1.0))
       1.0 query_extents

let predicted_partial_match_pages ~n_pages ~dims ~restricted =
  Float.pow
    (float_of_int n_pages)
    (1.0 -. (float_of_int restricted /. float_of_int dims))
