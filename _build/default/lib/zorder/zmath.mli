(** The analysis of Section 5: element counts E(U,V), the cyclicity and
    border-sensitivity facts, the coarsening optimization (5.1), and the
    proximity-preservation measurements (5.2). *)

(** {1 Space requirements (Section 5.1)} *)

val element_count : Space.t -> extents:int array -> int
(** [element_count space ~extents] is E(U,V,...): the number of elements
    in the decomposition of the box anchored at the origin with the given
    per-axis extents (so the 2d box is [0,U-1] x [0,V-1]).
    @raise Invalid_argument if an extent is [< 1] or exceeds the side. *)

val element_count_analytic : Space.t -> extents:int array -> int
(** E(U,V,...) computed by the [OREN83]-style recurrence over the split
    tree (no decomposition materialized): a region contributes 1 when the
    box covers it exactly, 0 when disjoint, and otherwise the sum over its
    two halves.  Memoized; runs in O((k*d)^2) states.  Agrees with
    {!element_count} on every input (property-tested). *)

val bit_spread : int array -> int
(** Number of bit positions between the first and last 1 bits (inclusive)
    of the bitwise OR of the extents — the quantity the paper says E is
    "highly dependent on".  [bit_spread [|12|] = 3] (1100). *)

val coarsen_extent : int -> m:int -> int
(** [coarsen_extent u ~m]: the smallest [u' >= u] whose last [m] bits are
    zero — the paper's boundary-expansion construction (e.g.
    [coarsen_extent 0b01101101 ~m:4 = 0b01110000]). *)

val coarsen : Space.t -> extents:int array -> m:int -> int array
(** Apply {!coarsen_extent} to every axis, clamping at the grid side. *)

type coarsening_report = {
  m : int;
  extents : int array;          (** coarsened extents *)
  elements : int;               (** E of the coarsened box *)
  area_ratio : float;           (** coarsened volume / true volume *)
}

val coarsening_sweep : Space.t -> extents:int array -> coarsening_report list
(** One report per [m = 0 .. depth]: how the element count falls and the
    over-approximation grows — the trade-off of Section 5.1. *)

(** {1 Proximity (Section 5.2)} *)

type proximity_row = {
  spatial_distance : int;          (** Chebyshev distance delta *)
  samples : int;
  median_rank_distance : int;
  p90_rank_distance : int;
  within_page : float;
      (** Fraction of sampled pairs whose rank distance is below one page
          worth of pixels (space cells / pages). *)
}

val proximity_table :
  rng:(int -> int) ->
  Space.t ->
  distances:int list ->
  samples:int ->
  pages:int ->
  proximity_row list
(** Monte-Carlo measurement of proximity preservation: for each spatial
    distance delta, sample [samples] random pairs of pixels at Chebyshev
    distance exactly delta and record how far apart they land in z order.
    [rng n] must return a uniform integer in [0, n-1]. *)

(** {1 Page-access predictions (Section 5.3.1)} *)

val predicted_range_pages :
  ?pages_per_block:float ->
  n_pages:int -> side:int -> query_extents:int array -> unit -> float
(** Upper bound on data pages accessed by a range query, from the
    fixed-size-page block model of Section 5.2: the space is tiled by
    equal rectangular blocks of at most [pages_per_block] pages (6 in 2d,
    28/3 in 3d); the query overlaps at most
    [prod_i (q_i / block_side + 1)] blocks.  Expands to [v*N + perimeter
    terms + const] — the O(vN), shape-sensitive bound. *)

val predicted_partial_match_pages : n_pages:int -> dims:int -> restricted:int -> float
(** [O(N^(1 - t/k))] with constant 1. *)
