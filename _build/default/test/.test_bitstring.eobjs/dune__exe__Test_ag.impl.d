test/test_ag.ml: Alcotest Array List Sqp_btree Sqp_core Sqp_geom Sqp_zorder
