test/test_ag.mli:
