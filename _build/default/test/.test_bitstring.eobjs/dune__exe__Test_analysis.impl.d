test/test_analysis.ml: Alcotest List Sqp_core Sqp_workload String
