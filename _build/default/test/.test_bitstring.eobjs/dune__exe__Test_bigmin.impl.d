test/test_bigmin.ml: Alcotest List QCheck2 QCheck_alcotest Sqp_zorder
