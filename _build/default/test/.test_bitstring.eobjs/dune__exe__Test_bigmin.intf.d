test/test_bigmin.mli:
