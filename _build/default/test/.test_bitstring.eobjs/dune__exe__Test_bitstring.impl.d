test/test_bitstring.ml: Alcotest List QCheck2 QCheck_alcotest Sqp_zorder
