test/test_bitstring.mli:
