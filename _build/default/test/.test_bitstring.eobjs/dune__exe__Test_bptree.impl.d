test/test_bptree.ml: Alcotest Array Fun Hashtbl List QCheck2 QCheck_alcotest Sqp_btree Sqp_storage Sqp_workload Sqp_zorder
