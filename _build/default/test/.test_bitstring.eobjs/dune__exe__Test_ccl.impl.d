test/test_ccl.ml: Alcotest Array Hashtbl List QCheck2 QCheck_alcotest Sqp_core Sqp_grid Sqp_workload Sqp_zorder
