test/test_ccl.mli:
