test/test_clustering.ml: Alcotest Array List Sqp_core Sqp_geom Sqp_workload Sqp_zorder
