test/test_crash.ml: Alcotest Array Bytes Filename Fun List Printf Sqp_btree Sqp_geom Sqp_obs Sqp_storage Sqp_workload Sqp_zorder String Sys
