test/test_crash.mli:
