test/test_decompose.ml: Alcotest Array List QCheck2 QCheck_alcotest Sqp_zorder
