test/test_differential.ml: Alcotest List Sqp_btree Sqp_core Sqp_geom Sqp_kdtree Sqp_parallel Sqp_relalg Sqp_workload Sqp_zorder
