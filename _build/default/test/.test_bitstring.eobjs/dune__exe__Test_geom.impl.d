test/test_geom.ml: Alcotest List QCheck2 QCheck_alcotest Sqp_geom Sqp_zorder
