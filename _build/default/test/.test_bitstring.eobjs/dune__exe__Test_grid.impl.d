test/test_grid.ml: Alcotest Array Format List QCheck2 QCheck_alcotest Sqp_grid Sqp_zorder
