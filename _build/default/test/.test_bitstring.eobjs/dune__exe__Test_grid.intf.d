test/test_grid.mli:
