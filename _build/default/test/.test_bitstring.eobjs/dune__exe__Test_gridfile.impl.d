test/test_gridfile.ml: Alcotest Array List QCheck2 QCheck_alcotest Sqp_geom Sqp_kdtree Sqp_workload
