test/test_gridfile.mli:
