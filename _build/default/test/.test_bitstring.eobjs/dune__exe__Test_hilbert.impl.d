test/test_hilbert.ml: Alcotest Array Hashtbl List QCheck2 QCheck_alcotest Sqp_zorder
