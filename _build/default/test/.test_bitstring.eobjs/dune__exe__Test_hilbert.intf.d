test/test_hilbert.mli:
