test/test_interference.ml: Alcotest List QCheck2 QCheck_alcotest Sqp_core Sqp_geom Sqp_workload Sqp_zorder
