test/test_interference.mli:
