test/test_kdtree.ml: Alcotest Array List QCheck2 QCheck_alcotest Sqp_geom Sqp_kdtree Sqp_workload
