test/test_kdtree.mli:
