test/test_obs.ml: Alcotest Domain Gc List Printf Sqp_obs Sqp_relalg Sqp_storage Sqp_workload String
