test/test_obs.mli:
