test/test_overlay.ml: Alcotest List QCheck2 QCheck_alcotest Sqp_core Sqp_geom Sqp_grid Sqp_workload Sqp_zorder
