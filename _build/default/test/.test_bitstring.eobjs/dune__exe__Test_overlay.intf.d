test/test_overlay.mli:
