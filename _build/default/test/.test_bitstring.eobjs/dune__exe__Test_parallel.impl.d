test/test_parallel.ml: Alcotest Array Fun List Sqp_geom Sqp_parallel Sqp_storage Sqp_workload Sqp_zorder
