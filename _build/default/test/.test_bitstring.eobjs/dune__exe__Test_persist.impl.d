test/test_persist.ml: Alcotest Array Bytes Filename Fun Int32 Int64 List Printf Sqp_btree Sqp_geom Sqp_storage Sqp_workload Sqp_zorder String Sys Unix
