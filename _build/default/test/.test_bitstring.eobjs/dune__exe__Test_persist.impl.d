test/test_persist.ml: Alcotest Array Bytes Filename Fun List Printf Sqp_btree Sqp_geom Sqp_storage Sqp_workload Sqp_zorder Sys
