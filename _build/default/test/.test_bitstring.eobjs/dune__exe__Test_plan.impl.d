test/test_plan.ml: Alcotest Array List Sqp_geom Sqp_relalg Sqp_zorder String
