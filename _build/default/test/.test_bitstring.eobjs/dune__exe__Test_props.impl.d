test/test_props.ml: Alcotest List QCheck2 QCheck_alcotest Sqp_core Sqp_grid Sqp_workload Sqp_zorder
