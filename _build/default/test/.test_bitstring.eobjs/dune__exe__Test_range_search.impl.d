test/test_range_search.ml: Alcotest Array List QCheck2 QCheck_alcotest Sqp_core Sqp_geom Sqp_workload Sqp_zorder String
