test/test_range_search.mli:
