test/test_relalg.ml: Alcotest Array Filename Fun List Printf Sqp_geom Sqp_relalg Sqp_workload Sqp_zorder Sys
