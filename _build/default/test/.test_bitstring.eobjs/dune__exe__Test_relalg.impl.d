test/test_relalg.ml: Alcotest Array List Sqp_geom Sqp_relalg Sqp_workload Sqp_zorder
