test/test_relalg.mli:
