test/test_report.ml: Alcotest List Printf Sqp_geom Sqp_report Sqp_zorder String
