test/test_reports.ml: Alcotest Fun Sqp_core Sqp_workload Sys Unix
