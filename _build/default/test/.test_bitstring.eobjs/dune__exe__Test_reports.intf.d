test/test_reports.mli:
