test/test_rtree.mli:
