test/test_storage.ml: Alcotest Array List QCheck2 QCheck_alcotest Sqp_storage
