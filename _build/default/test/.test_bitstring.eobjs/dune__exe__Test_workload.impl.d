test/test_workload.ml: Alcotest Array Fun Hashtbl List Sqp_geom Sqp_workload
