test/test_zindex.ml: Alcotest Array List QCheck2 QCheck_alcotest Sqp_btree Sqp_geom Sqp_workload Sqp_zorder
