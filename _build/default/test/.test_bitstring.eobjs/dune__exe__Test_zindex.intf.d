test/test_zindex.mli:
