test/test_zmath.ml: Alcotest List Printf QCheck2 QCheck_alcotest Sqp_workload Sqp_zorder
