test/test_zmath.mli:
