test/test_zobjects.ml: Alcotest List Sqp_btree Sqp_geom Sqp_workload Sqp_zorder
