test/test_zobjects.mli:
