test/test_zorder.ml: Alcotest Array List QCheck2 QCheck_alcotest Sqp_zorder Stdlib
