test/test_zorder.mli:
