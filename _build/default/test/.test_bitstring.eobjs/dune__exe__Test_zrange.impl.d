test/test_zrange.ml: Alcotest List QCheck2 QCheck_alcotest Sqp_zorder
