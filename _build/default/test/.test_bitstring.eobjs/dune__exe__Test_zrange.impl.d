test/test_zrange.ml: Alcotest List Printf QCheck2 QCheck_alcotest Sqp_zorder
