test/test_zrange.mli:
