(* The object-class facade (Section 4's five operators) and the 1d case
   the paper mentions in passing ("the ideas extend ... to 1d"). *)

module Ag = Sqp_core.Ag
module Z = Sqp_zorder

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let space = Ag.space ~dims:2 ~depth:3

let test_shuffle () =
  check_str "pixel z value" "011011" (Ag.z_string (Ag.shuffle space [| 3; 5 |]))

let test_shuffle_region () =
  (match Ag.shuffle_region space ~lo:[| 2; 0 |] ~hi:[| 3; 3 |] with
  | Some e -> check_str "region 001" "001" (Ag.z_string e)
  | None -> Alcotest.fail "region expected");
  check "non-element region" true
    (Ag.shuffle_region space ~lo:[| 1; 0 |] ~hi:[| 2; 1 |] = None)

let test_unshuffle () =
  let lo, hi = Ag.unshuffle space (Ag.of_z_string "001") in
  Alcotest.(check (array int)) "lo" [| 2; 0 |] lo;
  Alcotest.(check (array int)) "hi" [| 3; 3 |] hi

let test_decompose () =
  let els =
    Ag.decompose space (Sqp_geom.Shape.Box (Sqp_geom.Box.of_ranges [ (1, 3); (0, 4) ]))
  in
  Alcotest.(check (list string)) "figure 2"
    [ "00001"; "00011"; "001"; "010010"; "011000"; "011010" ]
    (List.map Ag.z_string els)

let test_precedes_contains () =
  let a = Ag.of_z_string "001" and b = Ag.of_z_string "001101" in
  check "contains" true (Ag.contains a b);
  check "contains is reflexive" true (Ag.contains a a);
  check "precedes" true (Ag.precedes (Ag.of_z_string "000") a);
  check "contained not precedes" false (Ag.precedes a b)

let test_related () =
  let a = Ag.of_z_string "001" in
  check "equal" true (Ag.related a a = `Equal);
  check "contains" true (Ag.related a (Ag.of_z_string "0011") = `Contains);
  check "contained" true (Ag.related (Ag.of_z_string "0011") a = `Contained);
  check "precedes" true (Ag.related (Ag.of_z_string "000") a = `Precedes);
  check "follows" true (Ag.related (Ag.of_z_string "01") a = `Follows)

let test_related_exhaustive () =
  (* The paper's dichotomy: any two elements are related; overlap other
     than containment is impossible.  Verify geometrically. *)
  let all_elements =
    let rec gen e depth acc =
      let acc = e :: acc in
      if depth = 0 then acc
      else
        let l, h = Z.Element.children e in
        gen h (depth - 1) (gen l (depth - 1) acc)
    in
    gen Z.Element.root 4 []
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let alo, ahi = Ag.unshuffle space a and blo, bhi = Ag.unshuffle space b in
          let overlap =
            alo.(0) <= bhi.(0) && blo.(0) <= ahi.(0) && alo.(1) <= bhi.(1)
            && blo.(1) <= ahi.(1)
          in
          match Ag.related a b with
          | `Equal | `Contains | `Contained ->
              if not overlap then Alcotest.fail "containment without overlap"
          | `Precedes | `Follows ->
              if overlap then Alcotest.fail "overlap without containment")
        all_elements)
    all_elements

let test_zlo_zhi () =
  let e = Ag.of_z_string "001" in
  check_str "zlo" "001000" (Ag.z_string (Ag.zlo space e));
  check_str "zhi" "001111" (Ag.z_string (Ag.zhi space e))

(* {1 The 1d case} *)

let space1 = Ag.space ~dims:1 ~depth:6

let test_1d_shuffle_is_identity () =
  (* With one dimension, interleaving is the identity: z value = binary
     representation, z order = numeric order. *)
  for v = 0 to 63 do
    check_int "rank = value" v (Z.Interleave.rank space1 [| v |])
  done

let test_1d_interval_decomposition () =
  (* Decomposing [21, 42] gives the classic binary cover of an interval. *)
  let els = Z.Decompose.decompose_box space1 ~lo:[| 21 |] ~hi:[| 42 |] in
  let covered =
    List.concat_map
      (fun e ->
        let lo, hi = Z.Element.box space1 e in
        List.init (hi.(0) - lo.(0) + 1) (fun i -> lo.(0) + i))
      els
  in
  Alcotest.(check (list int)) "covers the interval" (List.init 22 (fun i -> 21 + i))
    (List.sort compare covered);
  check "few elements" true (List.length els <= 2 * 6)

let test_1d_range_search () =
  (* 1d points = plain numbers; the zkd B+-tree degenerates to an ordinary
     B+-tree range scan. *)
  let points = Array.init 40 (fun i -> ([| (i * 13) mod 64 |], i)) in
  let index = Sqp_btree.Zindex.of_points ~leaf_capacity:4 space1 points in
  let results, _ =
    Sqp_btree.Zindex.range_search index (Sqp_geom.Box.of_ranges [ (10, 30) ])
  in
  let expected =
    Array.to_list points
    |> List.filter (fun (p, _) -> p.(0) >= 10 && p.(0) <= 30)
    |> List.length
  in
  check_int "1d range" expected (List.length results)

let () =
  Alcotest.run "ag"
    [
      ( "facade",
        [
          Alcotest.test_case "shuffle" `Quick test_shuffle;
          Alcotest.test_case "shuffle_region" `Quick test_shuffle_region;
          Alcotest.test_case "unshuffle" `Quick test_unshuffle;
          Alcotest.test_case "decompose (figure 2)" `Quick test_decompose;
          Alcotest.test_case "precedes/contains" `Quick test_precedes_contains;
          Alcotest.test_case "related" `Quick test_related;
          Alcotest.test_case "related is geometrically exhaustive" `Quick test_related_exhaustive;
          Alcotest.test_case "zlo/zhi" `Quick test_zlo_zhi;
        ] );
      ( "one-dimensional",
        [
          Alcotest.test_case "1d shuffle = identity" `Quick test_1d_shuffle_is_identity;
          Alcotest.test_case "1d interval decomposition" `Quick test_1d_interval_decomposition;
          Alcotest.test_case "1d range search" `Quick test_1d_range_search;
        ] );
    ]
