module A = Sqp_core.Analysis
module E = Sqp_core.Experiment
module W = Sqp_workload

let check = Alcotest.(check bool)
let check_float = Alcotest.(check (float 0.0001))

let test_fit_power_exact () =
  (* y = 3 * x^2 recovers exactly. *)
  let samples = List.map (fun x -> (x, 3.0 *. x *. x)) [ 1.0; 2.0; 4.0; 8.0 ] in
  let c, alpha = A.fit_power samples in
  check_float "exponent" 2.0 alpha;
  check_float "constant" 3.0 c

let test_fit_power_sqrt () =
  let samples = List.map (fun x -> (x, sqrt x)) [ 1.0; 4.0; 16.0; 64.0 ] in
  let _, alpha = A.fit_power samples in
  check_float "exponent 0.5" 0.5 alpha

let test_fit_power_invalid () =
  List.iter
    (fun samples ->
      match A.fit_power samples with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())
    [ []; [ (1.0, 1.0) ]; [ (1.0, 1.0); (0.0, 2.0) ]; [ (1.0, -1.0); (2.0, 1.0) ] ]

let test_means () =
  check_float "mean" 2.0 (A.mean [ 1.0; 2.0; 3.0 ]);
  check_float "mean empty" 0.0 (A.mean []);
  check_float "gmean" 2.0 (A.geometric_mean [ 1.0; 2.0; 4.0 ]);
  check_float "gmean empty" 0.0 (A.geometric_mean [])

let test_pages_per_block () =
  check_float "2d" 6.0 (A.pages_per_block_bound ~dims:2);
  check_float "3d" (28.0 /. 3.0) (A.pages_per_block_bound ~dims:3);
  check "grows with k" true
    (A.pages_per_block_bound ~dims:4 > 6.0)

let test_predictions_monotone () =
  let pred q =
    A.predicted_range_pages ~n_pages:250 ~side:1024 ~query_extents:[| q; q |]
  in
  check "monotone in query size" true (pred 100 < pred 200 && pred 200 < pred 400);
  let pm t = A.predicted_partial_match_pages ~n_pages:250 ~dims:2 ~restricted:t in
  check "more restriction, fewer pages" true (pm 1 < pm 0 && pm 2 < pm 1)

(* {1 Experiment driver} *)

let small_config dataset =
  {
    (E.default dataset) with
    E.n_points = 600;
    depth = 8;
    locations = 3;
    volumes = [ 0.0625; 0.25 ];
    aspects = [ 0.25; 1.0; 4.0 ];
  }

let test_build_points_deterministic () =
  let c = small_config W.Datagen.Uniform in
  let a = E.build_points c and b = E.build_points c in
  check "same seed, same data" true (a = b);
  let c2 = { c with E.seed = 7 } in
  check "different seed differs" true (E.build_points c2 <> a)

let test_range_rows_shape () =
  let rows = E.range_rows (small_config W.Datagen.Uniform) in
  Alcotest.(check int) "rows = volumes x aspects" 6 (List.length rows);
  List.iter
    (fun r ->
      check "pages positive" true (r.E.mean_pages > 0.0);
      check "prediction above measurement (paper hypothesis)" true
        (r.E.predicted >= r.E.mean_pages *. 0.8);
      check "efficiency in range" true
        (r.E.mean_efficiency >= 0.0 && r.E.mean_efficiency <= 1.0))
    rows

let test_efficiency_grows_with_volume () =
  let rows = E.range_rows (small_config W.Datagen.Uniform) in
  let eff v =
    let matching = List.filter (fun r -> r.E.volume = v) rows in
    A.mean (List.map (fun r -> r.E.mean_efficiency) matching)
  in
  check "bigger volume, higher efficiency" true (eff 0.25 > eff 0.0625)

let test_structure_comparison_sane () =
  let rows = E.structure_comparison (small_config W.Datagen.Uniform) in
  List.iter
    (fun c ->
      check "zkd comparable to kd (within 4x)" true
        (c.E.zkd_pages <= 4.0 *. c.E.kd_pages +. 4.0);
      check "zkd beats scan on small queries" true
        (c.E.c_volume > 0.1 || c.E.zkd_pages < c.E.scan_pages))
    rows

let test_partial_match_scaling () =
  let config = { (small_config W.Datagen.Uniform) with E.locations = 5 } in
  let samples, alpha = E.partial_match_scaling ~ns:[ 500; 1000; 2000; 4000 ] config in
  Alcotest.(check int) "sample count" 4 (List.length samples);
  (* The paper predicts exponent 1 - t/k = 0.5; allow a generous band. *)
  check "exponent near 0.5" true (alpha > 0.2 && alpha < 0.8)

let test_figure6_renders () =
  let s = E.figure6 ~depth:5 ~n_points:200 W.Datagen.Uniform in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "32 rows + trailing" 33 (List.length lines);
  check "uses page letters" true (String.exists (fun c -> c <> '.' && c <> '\n') s)

let test_figure6_diagonal_capped () =
  (* Must not hang: the diagonal band holds few distinct cells. *)
  let s = E.figure6 ~depth:5 ~n_points:100000 W.Datagen.Diagonal in
  check "rendered" true (String.length s > 0)

let () =
  Alcotest.run "analysis"
    [
      ( "fitting",
        [
          Alcotest.test_case "power fit exact" `Quick test_fit_power_exact;
          Alcotest.test_case "sqrt fit" `Quick test_fit_power_sqrt;
          Alcotest.test_case "invalid inputs" `Quick test_fit_power_invalid;
          Alcotest.test_case "means" `Quick test_means;
        ] );
      ( "predictions",
        [
          Alcotest.test_case "pages per block" `Quick test_pages_per_block;
          Alcotest.test_case "monotone" `Quick test_predictions_monotone;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "deterministic" `Quick test_build_points_deterministic;
          Alcotest.test_case "range rows" `Quick test_range_rows_shape;
          Alcotest.test_case "efficiency vs volume (paper)" `Quick test_efficiency_grows_with_volume;
          Alcotest.test_case "structure comparison" `Quick test_structure_comparison_sane;
          Alcotest.test_case "partial-match exponent" `Quick test_partial_match_scaling;
          Alcotest.test_case "figure 6 renders" `Quick test_figure6_renders;
          Alcotest.test_case "figure 6 diagonal capped" `Quick test_figure6_diagonal_capped;
        ] );
    ]
