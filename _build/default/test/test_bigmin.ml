module Z = Sqp_zorder

let check = Alcotest.(check bool)

let s23 = Z.Space.make ~dims:2 ~depth:3
let s33 = Z.Space.make ~dims:3 ~depth:2

let brute_bigmin space ~lo ~hi z =
  let n = 1 lsl Z.Space.total_bits space in
  let rec go r =
    if r >= n then None
    else if r >= z && Z.Bigmin.in_box space ~lo ~hi r then Some r
    else go (r + 1)
  in
  go 0

let brute_litmax space ~lo ~hi z =
  let rec go r =
    if r < 0 then None
    else if r <= z && Z.Bigmin.in_box space ~lo ~hi r then Some r
    else go (r - 1)
  in
  go ((1 lsl Z.Space.total_bits space) - 1)

let test_in_box () =
  let lo = [| 1; 0 |] and hi = [| 3; 4 |] in
  check "27 = (3,5) outside" false (Z.Bigmin.in_box s23 ~lo ~hi 27);
  let z21 = Z.Interleave.rank s23 [| 2; 1 |] in
  check "(2,1) inside" true (Z.Bigmin.in_box s23 ~lo ~hi z21)

let test_bigmin_exhaustive_2d () =
  let boxes =
    [
      ([| 1; 0 |], [| 3; 4 |]);
      ([| 0; 0 |], [| 7; 7 |]);
      ([| 3; 3 |], [| 3; 3 |]);
      ([| 0; 6 |], [| 1; 7 |]);
      ([| 2; 2 |], [| 5; 5 |]);
      ([| 0; 0 |], [| 0; 7 |]);
    ]
  in
  List.iter
    (fun (lo, hi) ->
      for z = 0 to 63 do
        if Z.Bigmin.bigmin s23 ~lo ~hi z <> brute_bigmin s23 ~lo ~hi z then
          Alcotest.failf "bigmin mismatch at z=%d" z
      done)
    boxes

let test_litmax_exhaustive_2d () =
  let boxes =
    [ ([| 1; 0 |], [| 3; 4 |]); ([| 2; 2 |], [| 5; 5 |]); ([| 3; 3 |], [| 3; 3 |]) ]
  in
  List.iter
    (fun (lo, hi) ->
      for z = 0 to 63 do
        if Z.Bigmin.litmax s23 ~lo ~hi z <> brute_litmax s23 ~lo ~hi z then
          Alcotest.failf "litmax mismatch at z=%d" z
      done)
    boxes

let test_bigmin_exhaustive_3d () =
  let lo = [| 1; 0; 2 |] and hi = [| 2; 3; 3 |] in
  for z = 0 to 63 do
    if Z.Bigmin.bigmin s33 ~lo ~hi z <> brute_bigmin s33 ~lo ~hi z then
      Alcotest.failf "3d bigmin mismatch at z=%d" z
  done

let test_bigmin_inside_is_identity () =
  let lo = [| 1; 0 |] and hi = [| 3; 4 |] in
  for z = 0 to 63 do
    if Z.Bigmin.in_box s23 ~lo ~hi z then
      check "identity" true (Z.Bigmin.bigmin s23 ~lo ~hi z = Some z)
  done

let test_invalid () =
  List.iter
    (fun f ->
      match f () with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())
    [
      (fun () -> Z.Bigmin.bigmin s23 ~lo:[| 3; 3 |] ~hi:[| 1; 1 |] 0);
      (fun () -> Z.Bigmin.bigmin s23 ~lo:[| 0 |] ~hi:[| 1 |] 0);
      (fun () -> Z.Bigmin.bigmin s23 ~lo:[| 0; 0 |] ~hi:[| 8; 3 |] 0);
    ]

(* Property: random boxes on a 16x16 grid vs brute force. *)

let s4 = Z.Space.make ~dims:2 ~depth:4

let gen_case =
  QCheck2.Gen.(
    let coord = int_bound 15 in
    map
      (fun (x1, x2, y1, y2, z) ->
        (([| min x1 x2; min y1 y2 |], [| max x1 x2; max y1 y2 |]), z))
      (tup5 coord coord coord coord (int_bound 255)))

let prop_bigmin =
  QCheck2.Test.make ~name:"bigmin = brute force (16x16)" ~count:500 gen_case
    (fun ((lo, hi), z) -> Z.Bigmin.bigmin s4 ~lo ~hi z = brute_bigmin s4 ~lo ~hi z)

let prop_litmax =
  QCheck2.Test.make ~name:"litmax = brute force (16x16)" ~count:500 gen_case
    (fun ((lo, hi), z) -> Z.Bigmin.litmax s4 ~lo ~hi z = brute_litmax s4 ~lo ~hi z)

let () =
  Alcotest.run "bigmin"
    [
      ( "unit",
        [
          Alcotest.test_case "in_box" `Quick test_in_box;
          Alcotest.test_case "bigmin exhaustive 2d" `Quick test_bigmin_exhaustive_2d;
          Alcotest.test_case "litmax exhaustive 2d" `Quick test_litmax_exhaustive_2d;
          Alcotest.test_case "bigmin exhaustive 3d" `Quick test_bigmin_exhaustive_3d;
          Alcotest.test_case "bigmin inside = identity" `Quick test_bigmin_inside_is_identity;
          Alcotest.test_case "invalid" `Quick test_invalid;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_bigmin; prop_litmax ] );
    ]
