module B = Sqp_zorder.Bitstring

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let bs = B.of_string

let test_empty () =
  check_int "length" 0 (B.length B.empty);
  check "is_empty" true (B.is_empty B.empty);
  check_str "to_string" "" (B.to_string B.empty)

let test_of_string_roundtrip () =
  List.iter
    (fun s -> check_str s s (B.to_string (bs s)))
    [ "0"; "1"; "01"; "10"; "0110"; "11111111"; "101010101"; "0000000000000000" ]

let test_of_string_invalid () =
  Alcotest.check_raises "bad char" (Invalid_argument "Bitstring.of_string: bad char x")
    (fun () -> ignore (bs "01x0"))

let test_get () =
  let t = bs "0110" in
  check "bit 0" false (B.get t 0);
  check "bit 1" true (B.get t 1);
  check "bit 2" true (B.get t 2);
  check "bit 3" false (B.get t 3)

let test_get_out_of_bounds () =
  let t = bs "01" in
  List.iter
    (fun i ->
      match B.get t i with
      | _ -> Alcotest.failf "expected failure at index %d" i
      | exception Invalid_argument _ -> ())
    [ -1; 2; 100 ]

let test_of_int () =
  check_str "27 in 6 bits" "011011" (B.to_string (B.of_int 27 ~width:6));
  check_str "0 in 4 bits" "0000" (B.to_string (B.of_int 0 ~width:4));
  check_str "0 in 0 bits" "" (B.to_string (B.of_int 0 ~width:0));
  check_int "roundtrip" 27 (B.to_int (B.of_int 27 ~width:6))

let test_of_int_invalid () =
  List.iter
    (fun f ->
      match f () with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())
    [
      (fun () -> B.of_int (-1) ~width:4);
      (fun () -> B.of_int 16 ~width:4);
      (fun () -> B.of_int 1 ~width:63);
      (fun () -> B.of_int 0 ~width:(-1));
    ]

let test_append_bit () =
  check_str "append 1" "011" (B.to_string (B.append_bit (bs "01") true));
  check_str "append 0" "0" (B.to_string (B.append_bit B.empty false))

let test_concat () =
  check_str "both" "0110" (B.to_string (B.concat (bs "01") (bs "10")));
  check_str "left empty" "10" (B.to_string (B.concat B.empty (bs "10")));
  check_str "right empty" "01" (B.to_string (B.concat (bs "01") B.empty));
  (* Crossing byte boundaries. *)
  check_str "long"
    "0110110101101101"
    (B.to_string (B.concat (bs "01101101") (bs "01101101")))

let test_take_drop () =
  let t = bs "0110110" in
  check_str "take 3" "011" (B.to_string (B.take t 3));
  check_str "take 0" "" (B.to_string (B.take t 0));
  check_str "take all" "0110110" (B.to_string (B.take t 7));
  check_str "drop 3" "0110" (B.to_string (B.drop t 3));
  check_str "drop 0" "0110110" (B.to_string (B.drop t 0));
  check_str "drop all" "" (B.to_string (B.drop t 7))

let test_take_invariant () =
  (* take must zero trailing bits so equality stays structural. *)
  let a = B.take (bs "0111") 2 and b = B.take (bs "0100") 2 in
  check "equal after take" true (B.equal a b);
  check_int "same hash" (B.hash a) (B.hash b)

let test_pad_to () =
  check_str "pad 0s" "01000" (B.to_string (B.pad_to (bs "01") 5 false));
  check_str "pad 1s" "01111" (B.to_string (B.pad_to (bs "01") 5 true));
  check_str "pad same" "01" (B.to_string (B.pad_to (bs "01") 2 true))

let test_set () =
  check_str "set" "0100" (B.to_string (B.set (bs "0110") 2 false));
  let t = bs "0110" in
  ignore (B.set t 2 false);
  check_str "original untouched" "0110" (B.to_string t)

let test_compare_lexicographic () =
  let lt a b = B.compare (bs a) (bs b) < 0 in
  check "0 < 1" true (lt "0" "1");
  check "00 < 01" true (lt "00" "01");
  check "prefix < extension" true (lt "01" "010");
  check "prefix < extension 1" true (lt "01" "011");
  check "equal" true (B.compare (bs "0101") (bs "0101") = 0);
  check "0010 < 01" true (lt "0010" "01");
  check "empty < 0" true (lt "" "0")

let test_compare_long () =
  (* Multi-byte comparison paths. *)
  let a = bs "00000000000000001" and b = bs "00000000000000010" in
  check "17-bit compare" true (B.compare a b < 0);
  check "reverse" true (B.compare b a > 0)

let test_is_prefix () =
  check "empty prefix" true (B.is_prefix B.empty (bs "0110"));
  check "proper" true (B.is_prefix (bs "011") (bs "0110"));
  check "equal" true (B.is_prefix (bs "0110") (bs "0110"));
  check "longer" false (B.is_prefix (bs "01101") (bs "0110"));
  check "mismatch" false (B.is_prefix (bs "010") (bs "0110"))

let test_common_prefix_len () =
  check_int "disjoint at 0" 0 (B.common_prefix_len (bs "0") (bs "1"));
  check_int "partial" 2 (B.common_prefix_len (bs "0110") (bs "0101"));
  check_int "full" 4 (B.common_prefix_len (bs "0110") (bs "0110"));
  check_int "prefix" 2 (B.common_prefix_len (bs "01") (bs "0110"))

let test_shortest_separator () =
  let sep lo hi = B.to_string (B.shortest_separator ~lo:(bs lo) ~hi:(bs hi)) in
  check_str "simple" "01" (sep "0010" "0100");
  check_str "prefix case" "011" (sep "01" "0110");
  check_str "adjacent" "1" (sep "0111" "1000");
  Alcotest.check_raises "lo >= hi"
    (Invalid_argument "Bitstring.shortest_separator: lo >= hi") (fun () ->
      ignore (B.shortest_separator ~lo:(bs "01") ~hi:(bs "01")))

let test_successor () =
  let succ s =
    match B.successor (bs s) with None -> "none" | Some t -> B.to_string t
  in
  check_str "simple" "0110" (succ "0101");
  check_str "carry" "1000" (succ "0111");
  check_str "all ones" "none" (succ "111");
  check_str "zero" "001" (succ "000")

(* Property tests *)

let gen_bitstring =
  QCheck2.Gen.(
    map
      (fun bits -> B.of_bools bits)
      (list_size (int_bound 40) bool))

let prop_roundtrip =
  QCheck2.Test.make ~name:"of_string/to_string roundtrip" ~count:500 gen_bitstring
    (fun t -> B.equal t (B.of_string (B.to_string t)))

let prop_compare_antisym =
  QCheck2.Test.make ~name:"compare antisymmetric" ~count:500
    QCheck2.Gen.(pair gen_bitstring gen_bitstring)
    (fun (a, b) -> B.compare a b = -B.compare b a)

let prop_compare_transitive =
  QCheck2.Test.make ~name:"compare transitive" ~count:500
    QCheck2.Gen.(triple gen_bitstring gen_bitstring gen_bitstring)
    (fun (a, b, c) ->
      let l = List.sort B.compare [ a; b; c ] in
      match l with
      | [ x; y; z ] -> B.compare x y <= 0 && B.compare y z <= 0 && B.compare x z <= 0
      | _ -> false)

let prop_concat_take_drop =
  QCheck2.Test.make ~name:"take ++ drop = id" ~count:500
    QCheck2.Gen.(pair gen_bitstring (int_bound 40))
    (fun (t, n) ->
      let n = min n (B.length t) in
      B.equal t (B.concat (B.take t n) (B.drop t n)))

let prop_prefix_compare =
  QCheck2.Test.make ~name:"prefix sorts before extension" ~count:500
    QCheck2.Gen.(pair gen_bitstring gen_bitstring)
    (fun (a, ext) ->
      B.length ext = 0 || B.compare a (B.concat a ext) < 0)

let prop_separator =
  QCheck2.Test.make ~name:"separator: lo < s <= hi" ~count:500
    QCheck2.Gen.(pair gen_bitstring gen_bitstring)
    (fun (a, b) ->
      let c = B.compare a b in
      if c = 0 then true
      else
        let lo, hi = if c < 0 then (a, b) else (b, a) in
        let s = B.shortest_separator ~lo ~hi in
        B.compare lo s < 0 && B.compare s hi <= 0)

let prop_successor =
  QCheck2.Test.make ~name:"successor is +1 as integer" ~count:500
    QCheck2.Gen.(pair (int_bound 1000000) (int_range 20 30))
    (fun (v, width) ->
      let t = B.of_int v ~width in
      match B.successor t with
      | Some s -> B.to_int s = v + 1
      | None -> v = (1 lsl width) - 1)

let () =
  Alcotest.run "bitstring"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "of_string roundtrip" `Quick test_of_string_roundtrip;
          Alcotest.test_case "of_string invalid" `Quick test_of_string_invalid;
          Alcotest.test_case "get" `Quick test_get;
          Alcotest.test_case "get out of bounds" `Quick test_get_out_of_bounds;
          Alcotest.test_case "of_int" `Quick test_of_int;
          Alcotest.test_case "of_int invalid" `Quick test_of_int_invalid;
          Alcotest.test_case "append_bit" `Quick test_append_bit;
          Alcotest.test_case "concat" `Quick test_concat;
          Alcotest.test_case "take/drop" `Quick test_take_drop;
          Alcotest.test_case "take zeroes trailing bits" `Quick test_take_invariant;
          Alcotest.test_case "pad_to" `Quick test_pad_to;
          Alcotest.test_case "set" `Quick test_set;
          Alcotest.test_case "compare lexicographic" `Quick test_compare_lexicographic;
          Alcotest.test_case "compare long" `Quick test_compare_long;
          Alcotest.test_case "is_prefix" `Quick test_is_prefix;
          Alcotest.test_case "common_prefix_len" `Quick test_common_prefix_len;
          Alcotest.test_case "shortest_separator" `Quick test_shortest_separator;
          Alcotest.test_case "successor" `Quick test_successor;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_roundtrip;
            prop_compare_antisym;
            prop_compare_transitive;
            prop_concat_take_drop;
            prop_prefix_compare;
            prop_separator;
            prop_successor;
          ] );
    ]
