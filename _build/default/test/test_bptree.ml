module B = Sqp_zorder.Bitstring
module Ints = Sqp_btree.Bptree.Make (Sqp_btree.Bptree.Int_key)
module Bits = Sqp_btree.Bptree.Make (Sqp_btree.Bptree.Bitstring_key)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let expect_ok t =
  match Ints.check_invariants t with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invariant violation: %s" m

let small () = Ints.create ~leaf_capacity:4 ~internal_capacity:4 ()

let test_empty () =
  let t = small () in
  check_int "length" 0 (Ints.length t);
  check "find" true (Ints.find t 5 = None);
  check_int "height" 1 (Ints.height t);
  check_int "leaves" 1 (Ints.leaf_count t);
  check "delete missing" false (Ints.delete t 5);
  expect_ok t

let test_insert_find () =
  let t = small () in
  List.iter (fun k -> Ints.insert t k (k * 10)) [ 5; 3; 8; 1; 9; 2; 7; 4; 6; 0 ];
  expect_ok t;
  check_int "length" 10 (Ints.length t);
  for k = 0 to 9 do
    check "find" true (Ints.find t k = Some (k * 10))
  done;
  check "missing" true (Ints.find t 10 = None);
  check "mem" true (Ints.mem t 5)

let test_sorted_iteration () =
  let t = small () in
  List.iter (fun k -> Ints.insert t k k) [ 50; 30; 80; 10; 90; 20; 70; 40; 60; 0 ];
  Alcotest.(check (list int)) "sorted"
    [ 0; 10; 20; 30; 40; 50; 60; 70; 80; 90 ]
    (List.map fst (Ints.to_list t))

let test_split_growth () =
  let t = small () in
  for k = 0 to 99 do
    Ints.insert t k k
  done;
  expect_ok t;
  check "taller than a leaf" true (Ints.height t > 1);
  check "many leaves" true (Ints.leaf_count t >= 25);
  check_int "length" 100 (Ints.length t)

let test_random_insert_delete () =
  let rng = Sqp_workload.Rng.create ~seed:123 in
  let t = small () in
  let present = Hashtbl.create 64 in
  for _ = 1 to 500 do
    let k = Sqp_workload.Rng.int rng 200 in
    if Sqp_workload.Rng.bool rng then begin
      if not (Hashtbl.mem present k) then begin
        Ints.insert t k k;
        Hashtbl.replace present k ()
      end
    end
    else begin
      let deleted = Ints.delete t k in
      check "delete reflects membership" (Hashtbl.mem present k) deleted;
      Hashtbl.remove present k
    end;
    expect_ok t
  done;
  check_int "final size" (Hashtbl.length present) (Ints.length t);
  (* With distinct keys, rebalancing keeps every leaf at least half full
     (unless the tree is a single leaf). *)
  let pages = Ints.leaf_pages t in
  if List.length pages > 1 then
    List.iter
      (fun (_, keys) -> check "leaf occupancy" true (List.length keys >= 2))
      pages

let test_delete_to_empty () =
  let t = small () in
  for k = 0 to 63 do
    Ints.insert t k k
  done;
  for k = 0 to 63 do
    check "deleted" true (Ints.delete t k);
    expect_ok t
  done;
  check_int "empty" 0 (Ints.length t);
  check_int "height collapsed" 1 (Ints.height t)

let test_duplicates () =
  let t = small () in
  List.iter (fun v -> Ints.insert t 7 v) [ 1; 2; 3 ];
  Ints.insert t 5 0;
  Ints.insert t 9 0;
  expect_ok t;
  check_int "find_all" 3 (List.length (Ints.find_all t 7));
  Alcotest.(check (list int)) "duplicates in insertion order" [ 1; 2; 3 ]
    (Ints.find_all t 7);
  (* More duplicates than a leaf holds: oversized leaf is tolerated. *)
  for v = 4 to 12 do
    Ints.insert t 7 v
  done;
  check_int "all dups" 12 (List.length (Ints.find_all t 7));
  check "delete one" true (Ints.delete t 7);
  check_int "one fewer" 11 (List.length (Ints.find_all t 7))

let test_bulk_load () =
  let t = small () in
  let entries = Array.init 100 (fun i -> (i * 2, i)) in
  Ints.bulk_load t entries;
  expect_ok t;
  check_int "length" 100 (Ints.length t);
  check "even key present" true (Ints.find t 84 = Some 42);
  check "odd key absent" true (Ints.find t 101 = None)

let test_bulk_load_validation () =
  let t = small () in
  Ints.insert t 1 1;
  (match Ints.bulk_load t [| (1, 1) |] with
  | _ -> Alcotest.fail "expected failure on non-empty tree"
  | exception Invalid_argument _ -> ());
  let t2 = small () in
  match Ints.bulk_load t2 [| (2, 0); (1, 0) |] with
  | _ -> Alcotest.fail "expected failure on unsorted input"
  | exception Invalid_argument _ -> ()

let test_bulk_load_fill () =
  let t = Ints.create ~leaf_capacity:10 ~internal_capacity:8 () in
  Ints.bulk_load ~fill:0.5 t (Array.init 100 (fun i -> (i, i)));
  expect_ok t;
  (* fill 0.5 of 10 = 5 per leaf -> 20 leaves. *)
  check_int "leaves" 20 (Ints.leaf_count t)

let test_cursor_seek () =
  let t = small () in
  List.iter (fun k -> Ints.insert t k k) [ 10; 20; 30; 40; 50 ];
  let c = Ints.seek t 25 in
  (match Ints.cursor_peek c with
  | Some (30, _) -> ()
  | _ -> Alcotest.fail "expected 30");
  Ints.cursor_next c;
  (match Ints.cursor_peek c with
  | Some (40, _) -> ()
  | _ -> Alcotest.fail "expected 40");
  (* Seek exact. *)
  let c2 = Ints.seek t 30 in
  (match Ints.cursor_peek c2 with
  | Some (30, _) -> ()
  | _ -> Alcotest.fail "expected exact 30");
  (* Seek past the end. *)
  let c3 = Ints.seek t 99 in
  check "end" true (Ints.cursor_peek c3 = None);
  Ints.cursor_next c3 (* must not raise *)

let test_cursor_full_scan () =
  let t = small () in
  for k = 0 to 63 do
    Ints.insert t (63 - k) k
  done;
  let c = Ints.seek_first t in
  let rec collect acc =
    match Ints.cursor_peek c with
    | None -> List.rev acc
    | Some (k, _) ->
        Ints.cursor_next c;
        collect (k :: acc)
  in
  Alcotest.(check (list int)) "full scan in order" (List.init 64 Fun.id) (collect [])

let test_counters () =
  let t = Ints.create ~leaf_capacity:4 ~internal_capacity:4 () in
  for k = 0 to 63 do
    Ints.insert t k k
  done;
  Ints.reset_counters t;
  ignore (Ints.find t 13);
  let c = Ints.counters t in
  check_int "one leaf read per lookup" 1 c.Ints.leaf_reads;
  check "some internal reads" true (c.Ints.internal_reads >= 1)

let test_leaf_pages_preserve_counters () =
  let t = small () in
  for k = 0 to 63 do
    Ints.insert t k k
  done;
  Ints.reset_counters t;
  let before = (Ints.io_stats t).Sqp_storage.Stats.physical_reads in
  let pages = Ints.leaf_pages t in
  check "pages nonempty" true (List.length pages > 1);
  check_int "no counted reads" 0 (Ints.counters t).Ints.leaf_reads;
  check_int "physical restored" before (Ints.io_stats t).Sqp_storage.Stats.physical_reads;
  (* Keys across pages are sorted and complete. *)
  let all = List.concat_map snd pages in
  Alcotest.(check (list int)) "all keys in order" (List.init 64 Fun.id) all

let test_bitstring_prefix_separators () =
  (* The defining prefix-B+-tree property: separators are as short as the
     shortest distinguishing prefix, never longer than the keys. *)
  let t = Bits.create ~leaf_capacity:4 ~internal_capacity:4 () in
  let keys =
    List.init 64 (fun i -> B.of_int i ~width:12)
  in
  List.iter (fun k -> Bits.insert t k ()) keys;
  (match Bits.check_invariants t with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invariants: %s" m);
  check_int "all present" 64 (Bits.length t);
  List.iter (fun k -> check "find" true (Bits.find t k = Some ())) keys

let test_create_validation () =
  List.iter
    (fun f ->
      match f () with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())
    [
      (fun () -> ignore (Ints.create ~leaf_capacity:1 ~internal_capacity:4 ()));
      (fun () -> ignore (Ints.create ~leaf_capacity:4 ~internal_capacity:2 ()));
    ]

(* Properties *)

let prop_model_check =
  QCheck2.Test.make ~name:"tree = sorted association list (random ops)" ~count:60
    QCheck2.Gen.(list_size (int_bound 150) (pair bool (int_bound 60)))
    (fun ops ->
      let t = Ints.create ~leaf_capacity:4 ~internal_capacity:5 () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (is_insert, k) ->
          if is_insert then begin
            if not (Hashtbl.mem model k) then begin
              Ints.insert t k k;
              Hashtbl.replace model k ()
            end
          end
          else begin
            ignore (Ints.delete t k);
            Hashtbl.remove model k
          end)
        ops;
      let expected = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) model []) in
      Ints.check_invariants t = Ok ()
      && List.map fst (Ints.to_list t) = expected)

let prop_bulk_equals_insert =
  QCheck2.Test.make ~name:"bulk_load = repeated insert" ~count:60
    QCheck2.Gen.(list_size (int_bound 80) (int_bound 1000))
    (fun keys ->
      let keys = List.sort_uniq compare keys in
      let t1 = Ints.create ~leaf_capacity:6 ~internal_capacity:5 () in
      Ints.bulk_load t1 (Array.of_list (List.map (fun k -> (k, k)) keys));
      let t2 = Ints.create ~leaf_capacity:6 ~internal_capacity:5 () in
      List.iter (fun k -> Ints.insert t2 k k) keys;
      Ints.check_invariants t1 = Ok ()
      && Ints.to_list t1 = Ints.to_list t2)

let () =
  Alcotest.run "bptree"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "insert and find" `Quick test_insert_find;
          Alcotest.test_case "sorted iteration" `Quick test_sorted_iteration;
          Alcotest.test_case "splits" `Quick test_split_growth;
          Alcotest.test_case "random insert/delete invariants" `Quick test_random_insert_delete;
          Alcotest.test_case "delete to empty" `Quick test_delete_to_empty;
          Alcotest.test_case "duplicates" `Quick test_duplicates;
          Alcotest.test_case "bulk load" `Quick test_bulk_load;
          Alcotest.test_case "bulk load validation" `Quick test_bulk_load_validation;
          Alcotest.test_case "bulk load fill factor" `Quick test_bulk_load_fill;
          Alcotest.test_case "cursor seek" `Quick test_cursor_seek;
          Alcotest.test_case "cursor full scan" `Quick test_cursor_full_scan;
          Alcotest.test_case "access counters" `Quick test_counters;
          Alcotest.test_case "leaf_pages side-effect free" `Quick test_leaf_pages_preserve_counters;
          Alcotest.test_case "bitstring prefix separators" `Quick test_bitstring_prefix_separators;
          Alcotest.test_case "create validation" `Quick test_create_validation;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_model_check; prop_bulk_equals_insert ] );
    ]
