module C = Sqp_core.Ccl
module U = Sqp_core.Union_find
module Z = Sqp_zorder
module G = Sqp_grid.Bitgrid
module W = Sqp_workload

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let space = Z.Space.make ~dims:2 ~depth:5

(* {1 Union-find} *)

let test_union_find () =
  let uf = U.create 6 in
  check_int "initial sets" 6 (U.count uf);
  U.union uf 0 1;
  U.union uf 2 3;
  U.union uf 1 2;
  check_int "after unions" 3 (U.count uf);
  check "same" true (U.same uf 0 3);
  check "different" false (U.same uf 0 4);
  U.union uf 0 3; (* no-op *)
  check_int "idempotent" 3 (U.count uf);
  let labels = U.compress_labels uf in
  check_int "dense labels" 3 (1 + Array.fold_left max 0 labels);
  check "label consistency" true (labels.(0) = labels.(3) && labels.(4) <> labels.(5))

(* {1 CCL vs pixel oracle} *)

let random_grid seed blobs =
  let rng = W.Rng.create ~seed in
  let g = G.create ~side:32 in
  for _ = 1 to blobs do
    let cx = W.Rng.int rng 32 and cy = W.Rng.int rng 32 in
    let r = 1 + W.Rng.int rng 4 in
    for x = max 0 (cx - r) to min 31 (cx + r) do
      for y = max 0 (cy - r) to min 31 (cy + r) do
        if ((x - cx) * (x - cx)) + ((y - cy) * (y - cy)) <= r * r then
          G.set g x y true
      done
    done
  done;
  g

let labels_agree g els result =
  (* Two cells get the same AG label iff they get the same pixel label. *)
  let pix = G.connected_components g in
  let pairs = Hashtbl.create 16 in
  let ok = ref true in
  for x = 0 to 31 do
    for y = 0 to 31 do
      if G.get g x y then begin
        match C.component_of_cell space els result x y with
        | None -> ok := false
        | Some ag_label -> (
            let p_label = pix.G.labels.(y).(x) in
            match Hashtbl.find_opt pairs ag_label with
            | None -> Hashtbl.replace pairs ag_label p_label
            | Some expected -> if expected <> p_label then ok := false)
      end
    done
  done;
  !ok && Hashtbl.length pairs = pix.G.count

let test_single_component () =
  let els = Z.Decompose.decompose_box space ~lo:[| 3; 3 |] ~hi:[| 12; 20 |] in
  let r = C.label space els in
  check_int "one component" 1 r.C.component_count;
  Alcotest.(check (float 0.1)) "area" 180.0 r.C.areas.(0)

let test_two_separate_boxes () =
  let a = Z.Decompose.decompose_box space ~lo:[| 0; 0 |] ~hi:[| 3; 3 |] in
  let b = Z.Decompose.decompose_box space ~lo:[| 10; 10 |] ~hi:[| 13; 13 |] in
  let els = List.sort Z.Element.compare (a @ b) in
  let r = C.label space els in
  check_int "two components" 2 r.C.component_count

let test_touching_corner_not_connected () =
  (* Diagonal contact only: 4-connectivity keeps them apart. *)
  let a = Z.Decompose.decompose_box space ~lo:[| 0; 0 |] ~hi:[| 3; 3 |] in
  let b = Z.Decompose.decompose_box space ~lo:[| 4; 4 |] ~hi:[| 7; 7 |] in
  let els = List.sort Z.Element.compare (a @ b) in
  check_int "corner contact" 2 (C.label space els).C.component_count

let test_edge_adjacency_connects () =
  (* Abutting edges: one component. *)
  let a = Z.Decompose.decompose_box space ~lo:[| 0; 0 |] ~hi:[| 3; 3 |] in
  let b = Z.Decompose.decompose_box space ~lo:[| 4; 0 |] ~hi:[| 7; 3 |] in
  let els = List.sort Z.Element.compare (a @ b) in
  let r = C.label space els in
  check_int "edge contact" 1 r.C.component_count;
  check "adjacency found" true (r.C.adjacencies >= 1)

let test_u_shape () =
  (* A U: connected through the bottom even though the arms are distant. *)
  let g = G.create ~side:32 in
  for y = 5 to 20 do
    G.set g 5 y true;
    G.set g 15 y true
  done;
  for x = 5 to 15 do
    G.set g x 5 true
  done;
  let els = G.to_elements space g in
  check_int "U connected" 1 (C.label space els).C.component_count

let test_empty () =
  let r = C.label space [] in
  check_int "no components" 0 r.C.component_count

let test_overlapping_input_rejected () =
  let bad = [ Z.Bitstring.of_string "0"; Z.Bitstring.of_string "00" ] in
  match C.label space bad with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_matches_pixel_oracle () =
  for seed = 1 to 20 do
    let g = random_grid seed (3 + (seed mod 8)) in
    let els = G.to_elements space g in
    let r = C.label space els in
    let pix = G.connected_components g in
    if r.C.component_count <> pix.G.count then
      Alcotest.failf "seed %d: %d vs %d components" seed r.C.component_count pix.G.count;
    if
      List.sort compare (Array.to_list (Array.map int_of_float r.C.areas))
      <> List.sort compare (Array.to_list pix.G.areas)
    then Alcotest.failf "seed %d: areas differ" seed;
    if not (labels_agree g els r) then Alcotest.failf "seed %d: labelling differs" seed
  done

(* Property: random rectangles unioned, components match the oracle. *)

let prop_oracle =
  QCheck2.Test.make ~name:"element CCL = pixel CCL" ~count:60
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let g = random_grid seed 6 in
      let els = G.to_elements space g in
      let r = C.label space els in
      let pix = G.connected_components g in
      r.C.component_count = pix.G.count)

let () =
  Alcotest.run "ccl"
    [
      ("union-find", [ Alcotest.test_case "basics" `Quick test_union_find ]);
      ( "labelling",
        [
          Alcotest.test_case "single component" `Quick test_single_component;
          Alcotest.test_case "two boxes" `Quick test_two_separate_boxes;
          Alcotest.test_case "corner contact (4-conn)" `Quick test_touching_corner_not_connected;
          Alcotest.test_case "edge contact" `Quick test_edge_adjacency_connects;
          Alcotest.test_case "U shape" `Quick test_u_shape;
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "overlap rejected" `Quick test_overlapping_input_rejected;
          Alcotest.test_case "matches pixel oracle" `Quick test_matches_pixel_oracle;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_oracle ]);
    ]
