module C = Sqp_core.Clustering
module Z = Sqp_zorder
module W = Sqp_workload

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let space = Z.Space.make ~dims:2 ~depth:8

let points n seed =
  let rng = W.Rng.create ~seed in
  W.Datagen.uniform rng ~side:256 ~n ~dims:2

let test_ranks () =
  check_int "z rank" 27 (C.rank_of C.Z_order (Z.Space.make ~dims:2 ~depth:3) [| 3; 5 |]);
  check_int "row major" (5 * 256 + 3) (C.rank_of C.Row_major space [| 3; 5 |]);
  check "hilbert defined" true (C.rank_of C.Hilbert_order space [| 3; 5 |] >= 0)

let test_build_pages () =
  let t = C.build C.Z_order space ~page_capacity:20 (points 1000 1) in
  check_int "pages" 50 (C.page_count t)

let test_pages_touched_counts_results () =
  let pts = points 1000 1 in
  let t = C.build C.Z_order space (points 1000 1) in
  let box = Sqp_geom.Box.of_ranges [ (10, 100); (10, 100) ] in
  let pages, results = C.pages_touched t box in
  let expected =
    Array.to_list pts |> List.filter (Sqp_geom.Box.contains_point box) |> List.length
  in
  check_int "results" expected results;
  check "pages bounded" true (pages <= C.page_count t);
  check "pages at least results/capacity" true (pages * 20 >= results)

let test_curves_beat_row_major_on_squares () =
  (* The point of space-filling curves: square queries touch fewer pages
     than with row-major layout. *)
  let pts = points 2000 7 in
  let rng = W.Rng.create ~seed:5 in
  let boxes =
    W.Querygen.random_boxes rng ~side:256
      { W.Querygen.volume_fraction = 1.0 /. 16.0; aspect = 1.0 }
      ~count:20
  in
  let mean order = C.mean_pages (C.build order space pts) boxes in
  let z = mean C.Z_order and h = mean C.Hilbert_order and rm = mean C.Row_major in
  check "z beats row major" true (z < rm);
  check "hilbert beats row major" true (h < rm);
  (* Hilbert and z are close; hilbert usually no worse. *)
  check "hilbert within 30% of z" true (h < 1.3 *. z)

let test_empty_boxes () =
  let t = C.build C.Hilbert_order space (points 100 3) in
  Alcotest.(check (float 0.001)) "no boxes" 0.0 (C.mean_pages t [])

let () =
  Alcotest.run "clustering"
    [
      ( "unit",
        [
          Alcotest.test_case "ranks" `Quick test_ranks;
          Alcotest.test_case "build" `Quick test_build_pages;
          Alcotest.test_case "pages touched" `Quick test_pages_touched_counts_results;
          Alcotest.test_case "curves beat row-major" `Quick test_curves_beat_row_major_on_squares;
          Alcotest.test_case "empty boxes" `Quick test_empty_boxes;
        ] );
    ]
