(* Differential-testing oracle suite.

   One seeded harness generates random point sets and query boxes, and
   every range-search engine in the repository must agree on every query:
   Linear_scan (the trivial oracle), the in-memory merges (plain and
   skip), the zkd B+-tree (all four strategies), the bucket kd-tree, and
   the new domain-parallel driver.  Likewise the parallel spatial join
   must match the sequential containment merge exactly (including order)
   and the nested-loop oracle as a multiset. *)

module Z = Sqp_zorder
module B = Z.Bitstring
module W = Sqp_workload
module RS = Sqp_core.Range_search
module Par = Sqp_parallel
module Zindex = Sqp_btree.Zindex

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Results come back in engine-specific orders (z order, scan order,
   tree order); compare as canonically sorted lists.  Generators produce
   distinct points, so sorting by (point, payload) is a total order. *)
let canon results = List.sort compare results

let random_box rng side =
  let x1 = W.Rng.int rng side and x2 = W.Rng.int rng side in
  let y1 = W.Rng.int rng side and y2 = W.Rng.int rng side in
  Sqp_geom.Box.make ~lo:[| min x1 x2; min y1 y2 |] ~hi:[| max x1 x2; max y1 y2 |]

let range_case ~name ~dataset ~depth ~n ~queries ~seed pool =
  let space = Z.Space.make ~dims:2 ~depth in
  let side = Z.Space.side space in
  let rng = W.Rng.create ~seed in
  let pts = W.Datagen.with_ids (W.Datagen.generate rng dataset ~side ~n) in
  let linear = Sqp_kdtree.Linear_scan.build ~page_capacity:20 pts in
  let prep = RS.prepare space pts in
  let pprep = Par.Par_range_search.prepare space pts in
  let index = Zindex.of_points ~leaf_capacity:20 space pts in
  let kd = Sqp_kdtree.Paged_kdtree.build ~page_capacity:20 pts in
  let qrng = W.Rng.create ~seed:(seed + 1) in
  for q = 1 to queries do
    let box = random_box qrng side in
    let expected = canon (fst (Sqp_kdtree.Linear_scan.range_search linear box)) in
    let engines =
      [
        ("mem-merge-plain", canon (fst (RS.search_plain prep box)));
        ("mem-merge-skip", canon (fst (RS.search_skip prep box)));
        ("zkd-merge", canon (fst (Zindex.range_search ~strategy:Zindex.Merge index box)));
        ( "zkd-lazy",
          canon (fst (Zindex.range_search ~strategy:Zindex.Lazy_merge index box)) );
        ("zkd-bigmin", canon (fst (Zindex.range_search ~strategy:Zindex.Bigmin index box)));
        ("zkd-scan", canon (fst (Zindex.range_search ~strategy:Zindex.Scan index box)));
        ("paged-kdtree", canon (fst (Sqp_kdtree.Paged_kdtree.range_search kd box)));
        ("par-sharded", canon (fst (Par.Par_range_search.search pool pprep box)));
        ( "par-sharded-deep",
          canon (fst (Par.Par_range_search.search ~shard_bits:5 pool pprep box)) );
      ]
    in
    List.iter
      (fun (engine, got) ->
        if got <> expected then
          Alcotest.failf "%s: %s disagrees with linear scan on query %d (%d vs %d results)"
            name engine q (List.length got) (List.length expected))
      engines
  done

let test_range_uniform () =
  Par.Pool.with_pool ~domains:2 (fun pool ->
      range_case ~name:"uniform" ~dataset:W.Datagen.Uniform ~depth:6 ~n:300
        ~queries:70 ~seed:11 pool)

let test_range_clustered () =
  Par.Pool.with_pool ~domains:3 (fun pool ->
      range_case ~name:"clustered" ~dataset:W.Datagen.Clustered ~depth:7 ~n:300
        ~queries:70 ~seed:22 pool)

let test_range_diagonal () =
  Par.Pool.with_pool ~domains:2 (fun pool ->
      range_case ~name:"diagonal" ~dataset:W.Datagen.Diagonal ~depth:8 ~n:300
        ~queries:60 ~seed:33 pool)

(* The paper's extreme shapes: degenerate, full-space and border-hugging
   query boxes, against every engine. *)
let test_range_extreme_boxes () =
  let space = Z.Space.make ~dims:2 ~depth:6 in
  let side = Z.Space.side space in
  let rng = W.Rng.create ~seed:5 in
  let pts = W.Datagen.with_ids (W.Datagen.uniform rng ~side ~n:250 ~dims:2) in
  let linear = Sqp_kdtree.Linear_scan.build pts in
  let prep = RS.prepare space pts in
  let pprep = Par.Par_range_search.prepare space pts in
  let index = Zindex.of_points ~leaf_capacity:20 space pts in
  let boxes =
    [
      Sqp_geom.Box.of_ranges [ (0, side - 1); (0, side - 1) ];       (* full space *)
      Sqp_geom.Box.of_ranges [ (17, 17); (42, 42) ];                 (* single cell *)
      Sqp_geom.Box.of_ranges [ (side - 1, side - 1); (0, side - 1) ];(* border column *)
      Sqp_geom.Box.of_ranges [ (0, side - 1); (side - 1, side - 1) ];(* border row *)
      Sqp_geom.Box.of_ranges [ (0, 0); (0, 0) ];                     (* origin cell *)
      Sqp_geom.Box.of_ranges [ (side - 1, side - 1); (side - 1, side - 1) ];
      Sqp_geom.Box.of_ranges [ (1, side - 2); (1, side - 2) ];       (* all-crossing *)
    ]
  in
  Par.Pool.with_pool ~domains:4 (fun pool ->
      List.iter
        (fun box ->
          let expected = canon (fst (Sqp_kdtree.Linear_scan.range_search linear box)) in
          check "plain" true (canon (fst (RS.search_plain prep box)) = expected);
          check "skip" true (canon (fst (RS.search_skip prep box)) = expected);
          check "zkd" true (canon (fst (Zindex.range_search index box)) = expected);
          check "par" true
            (canon (fst (Par.Par_range_search.search pool pprep box)) = expected);
          check "par deep" true
            (canon (fst (Par.Par_range_search.search ~shard_bits:6 pool pprep box))
            = expected))
        boxes)

(* The parallel driver's result must equal the sequential skip-merge
   list *exactly* — same points, same z order — not just as a set. *)
let test_par_range_bit_identical () =
  let space = Z.Space.make ~dims:2 ~depth:6 in
  let side = Z.Space.side space in
  let rng = W.Rng.create ~seed:7 in
  let pts = W.Datagen.with_ids (W.Datagen.uniform rng ~side ~n:400 ~dims:2) in
  let prep = RS.prepare space pts in
  let pprep = Par.Par_range_search.prepare space pts in
  let qrng = W.Rng.create ~seed:8 in
  Par.Pool.with_pool ~domains:3 (fun pool ->
      for _ = 1 to 200 do
        let box = random_box qrng side in
        let seq = fst (RS.search_skip prep box) in
        List.iter
          (fun bits ->
            let par = fst (Par.Par_range_search.search ~shard_bits:bits pool pprep box) in
            if par <> seq then Alcotest.failf "shard_bits %d: order or contents differ" bits)
          [ 0; 1; 3; 5; 8 ]
      done)

(* {1 Spatial join} *)

let join_inputs ~seed ~n ~max_level space =
  let side = Z.Space.side space in
  let rng = W.Rng.create ~seed in
  let objs tag =
    List.init n (fun i ->
        let w = 1 + W.Rng.int rng (side / 4) and h = 1 + W.Rng.int rng (side / 4) in
        let x = W.Rng.int rng (side - w) and y = W.Rng.int rng (side - h) in
        ( tag + i,
          Sqp_geom.Box.make ~lo:[| x; y |] ~hi:[| x + w - 1; y + h - 1 |] ))
  in
  let opts = { Z.Decompose.max_level = Some max_level; max_elements = None } in
  let tag_of objects =
    List.concat_map
      (fun (id, b) ->
        List.map
          (fun e -> (e, id))
          (Z.Decompose.decompose_box ~options:opts space ~lo:(Sqp_geom.Box.lo b)
             ~hi:(Sqp_geom.Box.hi b)))
      objects
  in
  (tag_of (objs 0), tag_of (objs 1000))

let test_par_join_matches_sequential_and_oracle () =
  let space = Z.Space.make ~dims:2 ~depth:5 in
  Par.Pool.with_pool ~domains:3 (fun pool ->
      List.iter
        (fun (seed, n, max_level) ->
          let left, right = join_inputs ~seed ~n ~max_level space in
          let seq, seq_stats = Sqp_core.Zmerge.pairs left right in
          let oracle, _ = Sqp_core.Zmerge.pairs_naive left right in
          List.iter
            (fun bits ->
              let par, par_stats =
                Par.Par_spatial_join.pairs ~shard_bits:bits pool left right
              in
              if par <> seq then
                Alcotest.failf "seed %d bits %d: parallel join differs from merge" seed
                  bits;
              check_int "pairs counter exact" seq_stats.Sqp_core.Zmerge.pairs
                par_stats.Par.Par_spatial_join.pairs;
              check "matches nested-loop oracle" true
                (List.sort compare par = List.sort compare oracle))
            [ 0; 2; 4; 6 ])
        [ (101, 12, 6); (202, 20, 8); (303, 30, 10); (404, 8, 4) ])

let test_par_join_relation_level () =
  let space = Z.Space.make ~dims:2 ~depth:5 in
  let module R = Sqp_relalg in
  let schema_of name z =
    R.Schema.make [ (name, R.Value.TInt); (z, R.Value.TZval) ]
  in
  let rel_of name z items =
    R.Relation.make ~name (schema_of name z)
      (List.map (fun (e, id) -> [| R.Value.Int id; R.Value.Zval e |]) items)
  in
  let left, right = join_inputs ~seed:55 ~n:25 ~max_level:8 space in
  let r = rel_of "rid" "zr" left and s = rel_of "sid" "zs" right in
  let seq, seq_stats = R.Spatial_join.merge r ~zr:"zr" s ~zs:"zs" in
  let naive, _ = R.Spatial_join.nested_loop r ~zr:"zr" s ~zs:"zs" in
  Par.Pool.with_pool ~domains:4 (fun pool ->
      let par, par_stats = R.Spatial_join.merge_parallel pool r ~zr:"zr" s ~zs:"zs" in
      check "tuples bit-identical to merge" true
        (R.Relation.tuples par = R.Relation.tuples seq);
      check_int "pairs exact" seq_stats.R.Spatial_join.pairs
        par_stats.R.Spatial_join.pairs;
      check "multiset equals nested loop" true (R.Relation.equal_contents par naive))

let () =
  Alcotest.run "differential"
    [
      ( "range search",
        [
          Alcotest.test_case "uniform dataset" `Quick test_range_uniform;
          Alcotest.test_case "clustered dataset" `Quick test_range_clustered;
          Alcotest.test_case "diagonal dataset" `Quick test_range_diagonal;
          Alcotest.test_case "extreme boxes" `Quick test_range_extreme_boxes;
          Alcotest.test_case "parallel bit-identical" `Quick test_par_range_bit_identical;
        ] );
      ( "spatial join",
        [
          Alcotest.test_case "parallel = merge = oracle" `Quick
            test_par_join_matches_sequential_and_oracle;
          Alcotest.test_case "relation level" `Quick test_par_join_relation_level;
        ] );
    ]
