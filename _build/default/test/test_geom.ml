module G = Sqp_geom
module Z = Sqp_zorder

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let s5 = Z.Space.make ~dims:2 ~depth:5

(* {1 Point} *)

let test_point () =
  let a = G.Point.make [ 1; 2 ] and b = G.Point.make [ 4; 6 ] in
  check_int "dims" 2 (G.Point.dims a);
  check_int "coord" 2 (G.Point.coord a 1);
  check_int "chebyshev" 4 (G.Point.chebyshev a b);
  check_int "manhattan" 7 (G.Point.manhattan a b);
  check_int "euclidean_sq" 25 (G.Point.euclidean_sq a b);
  check "equal" true (G.Point.equal a [| 1; 2 |]);
  check "in grid" true (G.Point.in_grid ~side:8 a);
  check "not in grid" false (G.Point.in_grid ~side:2 b)

let test_point_dim_mismatch () =
  match G.Point.chebyshev [| 1 |] [| 1; 2 |] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* {1 Box} *)

let test_box_basics () =
  let b = G.Box.of_ranges [ (1, 3); (0, 4) ] in
  check_int "dims" 2 (G.Box.dims b);
  check_int "extent x" 3 (G.Box.extent b 0);
  check_int "extent y" 5 (G.Box.extent b 1);
  Alcotest.(check (float 0.001)) "volume" 15.0 (G.Box.volume b);
  check "contains point" true (G.Box.contains_point b [| 2; 4 |]);
  check "boundary inclusive" true (G.Box.contains_point b [| 3; 0 |]);
  check "outside" false (G.Box.contains_point b [| 4; 0 |])

let test_box_invalid () =
  match G.Box.make ~lo:[| 3 |] ~hi:[| 1 |] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_box_relations () =
  let a = G.Box.of_ranges [ (0, 5); (0, 5) ] in
  let b = G.Box.of_ranges [ (2, 3); (2, 3) ] in
  let c = G.Box.of_ranges [ (6, 8); (0, 5) ] in
  check "contains" true (G.Box.contains_box a b);
  check "not contains" false (G.Box.contains_box b a);
  check "overlaps" true (G.Box.overlaps a b);
  check "touching edge does not overlap" false (G.Box.overlaps a c);
  (match G.Box.intersection a b with
  | Some i -> check "inter = b" true (G.Box.equal i b)
  | None -> Alcotest.fail "intersection expected");
  check "disjoint intersection" true (G.Box.intersection a c = None)

let test_box_clip_translate () =
  let b = G.Box.of_ranges [ (-3, 5); (30, 40) ] in
  (match G.Box.clip b ~side:32 with
  | Some c ->
      Alcotest.(check (array int)) "lo" [| 0; 30 |] (G.Box.lo c);
      Alcotest.(check (array int)) "hi" [| 5; 31 |] (G.Box.hi c)
  | None -> Alcotest.fail "clip expected");
  check "fully outside" true (G.Box.clip (G.Box.of_ranges [ (40, 50); (0, 5) ]) ~side:32 = None);
  let t = G.Box.translate (G.Box.of_ranges [ (0, 1); (0, 1) ]) [| 5; 6 |] in
  Alcotest.(check (array int)) "translated lo" [| 5; 6 |] (G.Box.lo t)

let test_box_classifier_clips () =
  (* A box partly outside the grid must still classify correctly. *)
  let b = G.Box.of_ranges [ (20, 100); (20, 100) ] in
  let classify = G.Box.classifier s5 b in
  check "inside cell" true (classify (Z.Element.pixel s5 [| 25; 25 |]) = Z.Decompose.Inside);
  check "outside cell" true (classify (Z.Element.pixel s5 [| 5; 5 |]) = Z.Decompose.Outside);
  let outside = G.Box.of_ranges [ (100, 200); (0, 3) ] in
  check "fully outside" true (G.Box.classifier s5 outside Z.Element.root = Z.Decompose.Outside)

(* {1 Polygon} *)

let square = G.Polygon.make [ (2, 2); (10, 2); (10, 10); (2, 10) ]

let test_polygon_area () =
  check_int "area2 of square" 128 (abs (G.Polygon.area2 square))

let test_polygon_contains () =
  check "center" true (G.Polygon.contains_cell square 5 5);
  check "cell (2,2) center inside" true (G.Polygon.contains_cell square 2 2);
  (* Cell (10,10) has center (10.5, 10.5), outside the polygon. *)
  check "cell at far corner outside" false (G.Polygon.contains_cell square 10 10);
  check "outside" false (G.Polygon.contains_cell square 0 0)

let test_polygon_concave () =
  (* L-shape: the notch is outside. *)
  let l = G.Polygon.make [ (0, 0); (8, 0); (8, 4); (4, 4); (4, 8); (0, 8) ] in
  check "in the notch" false (G.Polygon.contains_cell l 6 6);
  check "in the L" true (G.Polygon.contains_cell l 2 2);
  check "in the arm" true (G.Polygon.contains_cell l 6 2)

let test_polygon_classify () =
  check "inside box" true
    (G.Polygon.classify_box square ~xlo:4 ~xhi:5 ~ylo:4 ~yhi:5 = Z.Decompose.Inside);
  check "outside box" true
    (G.Polygon.classify_box square ~xlo:12 ~xhi:14 ~ylo:12 ~yhi:14 = Z.Decompose.Outside);
  check "crossing box" true
    (G.Polygon.classify_box square ~xlo:0 ~xhi:4 ~ylo:0 ~yhi:4 = Z.Decompose.Crosses)

let test_polygon_decompose_consistent () =
  (* Exact decomposition pixel set = pixel classification set. *)
  let shape = G.Shape.Polygon (G.Polygon.make [ (3, 2); (28, 8); (20, 29); (5, 22) ]) in
  let els = G.Shape.decompose s5 shape in
  let classify = G.Shape.classifier s5 shape in
  for x = 0 to 31 do
    for y = 0 to 31 do
      let z = Z.Element.pixel s5 [| x; y |] in
      let covered = List.exists (fun e -> Z.Element.contains e z) els in
      let expected =
        match classify z with
        | Z.Decompose.Inside | Z.Decompose.Crosses -> true
        | Z.Decompose.Outside -> false
      in
      if covered <> expected then Alcotest.failf "pixel (%d,%d) mismatch" x y
    done
  done

(* {1 Circle} *)

let test_circle () =
  let c = G.Circle.make ~cx:10 ~cy:10 ~radius:5 in
  check "center" true (G.Circle.contains_cell c 10 10);
  check "edge" true (G.Circle.contains_cell c 15 10);
  check "outside" false (G.Circle.contains_cell c 16 10);
  check "diagonal in" true (G.Circle.contains_cell c 13 13);
  check "diagonal out" false (G.Circle.contains_cell c 14 14);
  let bb = G.Circle.bounding_box c in
  Alcotest.(check (array int)) "bb lo" [| 5; 5 |] (G.Box.lo bb)

let test_circle_classify () =
  let c = G.Circle.make ~cx:16 ~cy:16 ~radius:10 in
  check "inside" true
    (G.Circle.classify_box c ~xlo:14 ~xhi:17 ~ylo:14 ~yhi:17 = Z.Decompose.Inside);
  check "outside" true
    (G.Circle.classify_box c ~xlo:28 ~xhi:31 ~ylo:28 ~yhi:31 = Z.Decompose.Outside);
  check "crosses" true
    (G.Circle.classify_box c ~xlo:24 ~xhi:27 ~ylo:14 ~yhi:17 = Z.Decompose.Crosses)

let test_circle_decompose_area () =
  let c = G.Circle.make ~cx:16 ~cy:16 ~radius:8 in
  let els = G.Shape.decompose s5 (G.Shape.Circle c) in
  let area = List.fold_left (fun a e -> a +. Z.Element.cells s5 e) 0.0 els in
  (* Between the inscribed and circumscribed squares, near pi*r^2. *)
  check "plausible area" true (area > 3.0 *. 64.0 && area < 4.0 *. 81.0)

(* {1 Shape} *)

let test_shape_dispatch () =
  let b = G.Shape.Box (G.Box.of_ranges [ (0, 3); (0, 3) ]) in
  check "box cell" true (G.Shape.contains_cell b 2 2);
  let bb = G.Shape.bounding_box b in
  check_int "bb extent" 4 (G.Box.extent bb 0)

(* Properties *)

let prop_circle_classifier_consistent =
  QCheck2.Test.make ~name:"circle classify vs contains_cell" ~count:200
    QCheck2.Gen.(tup4 (int_bound 31) (int_bound 31) (int_bound 12) (pair (int_bound 31) (int_bound 31)))
    (fun (cx, cy, r, (x, y)) ->
      let c = G.Circle.make ~cx ~cy ~radius:r in
      match G.Circle.classify_box c ~xlo:x ~xhi:x ~ylo:y ~yhi:y with
      | Z.Decompose.Inside -> G.Circle.contains_cell c x y
      | Z.Decompose.Outside -> not (G.Circle.contains_cell c x y)
      | Z.Decompose.Crosses -> false (* single-cell boxes never cross *))

let prop_box_intersection_symmetric =
  let gen_box =
    QCheck2.Gen.(
      map
        (fun (a, b, c, d) ->
          G.Box.make ~lo:[| min a b; min c d |] ~hi:[| max a b; max c d |])
        (quad (int_bound 31) (int_bound 31) (int_bound 31) (int_bound 31)))
  in
  QCheck2.Test.make ~name:"box intersection symmetric + sound" ~count:300
    QCheck2.Gen.(pair gen_box gen_box)
    (fun (a, b) ->
      match (G.Box.intersection a b, G.Box.intersection b a) with
      | None, None -> not (G.Box.overlaps a b)
      | Some i, Some j ->
          G.Box.equal i j && G.Box.contains_box a i && G.Box.contains_box b i
      | _ -> false)

let () =
  Alcotest.run "geom"
    [
      ( "point",
        [
          Alcotest.test_case "basics" `Quick test_point;
          Alcotest.test_case "dim mismatch" `Quick test_point_dim_mismatch;
        ] );
      ( "box",
        [
          Alcotest.test_case "basics" `Quick test_box_basics;
          Alcotest.test_case "invalid" `Quick test_box_invalid;
          Alcotest.test_case "relations" `Quick test_box_relations;
          Alcotest.test_case "clip and translate" `Quick test_box_clip_translate;
          Alcotest.test_case "classifier clips to grid" `Quick test_box_classifier_clips;
        ] );
      ( "polygon",
        [
          Alcotest.test_case "area" `Quick test_polygon_area;
          Alcotest.test_case "contains_cell" `Quick test_polygon_contains;
          Alcotest.test_case "concave" `Quick test_polygon_concave;
          Alcotest.test_case "classify_box" `Quick test_polygon_classify;
          Alcotest.test_case "decompose consistent" `Quick test_polygon_decompose_consistent;
        ] );
      ( "circle",
        [
          Alcotest.test_case "contains_cell" `Quick test_circle;
          Alcotest.test_case "classify_box" `Quick test_circle_classify;
          Alcotest.test_case "decomposed area" `Quick test_circle_decompose_area;
        ] );
      ("shape", [ Alcotest.test_case "dispatch" `Quick test_shape_dispatch ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_circle_classifier_consistent; prop_box_intersection_symmetric ] );
    ]
