module G = Sqp_grid.Bitgrid
module Z = Sqp_zorder

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let s4 = Z.Space.make ~dims:2 ~depth:4

let test_create_get_set () =
  let g = G.create ~side:16 in
  check_int "empty count" 0 (G.count g);
  check "get" false (G.get g 3 4);
  G.set g 3 4 true;
  check "after set" true (G.get g 3 4);
  check_int "count" 1 (G.count g);
  G.set g 3 4 false;
  check_int "unset" 0 (G.count g)

let test_bounds () =
  let g = G.create ~side:8 in
  List.iter
    (fun (x, y) ->
      match G.get g x y with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())
    [ (-1, 0); (0, -1); (8, 0); (0, 8) ]

let test_copy_independent () =
  let g = G.create ~side:8 in
  G.set g 1 1 true;
  let h = G.copy g in
  G.set g 2 2 true;
  check "copy unaffected" false (G.get h 2 2);
  check "copy has original" true (G.get h 1 1)

let test_of_elements_roundtrip () =
  let els = Z.Decompose.decompose_box s4 ~lo:[| 3; 1 |] ~hi:[| 11; 9 |] in
  let g = G.of_elements s4 els in
  check_int "area" (9 * 9) (G.count g);
  let els2 = G.to_elements s4 g in
  check "canonical roundtrip" true (List.equal Z.Bitstring.equal els els2)

let test_of_classifier () =
  let classify = Z.Decompose.box_classifier s4 ~lo:[| 0; 0 |] ~hi:[| 7; 15 |] in
  let g = G.of_classifier s4 classify in
  check_int "half grid" 128 (G.count g)

let test_boolean_ops () =
  let a = G.create ~side:8 and b = G.create ~side:8 in
  G.set a 1 1 true;
  G.set a 2 2 true;
  G.set b 2 2 true;
  G.set b 3 3 true;
  let u, stats = G.union a b in
  check_int "union" 3 (G.count u);
  check_int "visited all cells" 64 stats.G.cells_visited;
  let i, _ = G.inter a b in
  check_int "inter" 1 (G.count i);
  check "inter cell" true (G.get i 2 2);
  let d, _ = G.diff a b in
  check_int "diff" 1 (G.count d);
  check "diff cell" true (G.get d 1 1);
  let x, _ = G.xor a b in
  check_int "xor" 2 (G.count x)

let test_size_mismatch () =
  let a = G.create ~side:8 and b = G.create ~side:16 in
  match G.union a b with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_components_simple () =
  let g = G.create ~side:8 in
  (* Two blobs + a single pixel. *)
  List.iter (fun (x, y) -> G.set g x y true)
    [ (0, 0); (0, 1); (1, 0); (5, 5); (5, 6); (6, 5); (6, 6); (3, 7) ];
  let c = G.connected_components g in
  check_int "three components" 3 c.G.count;
  Alcotest.(check (list int)) "areas sorted" [ 1; 3; 4 ]
    (List.sort compare (Array.to_list c.G.areas));
  (* Labels consistent. *)
  check "same blob same label" true (c.G.labels.(0).(0) = c.G.labels.(1).(0));
  check "different blobs differ" true (c.G.labels.(0).(0) <> c.G.labels.(5).(5));
  check "white is -1" true (c.G.labels.(7).(0) = -1)

let test_components_diagonal_not_connected () =
  let g = G.create ~side:4 in
  G.set g 0 0 true;
  G.set g 1 1 true;
  let c = G.connected_components g in
  check_int "4-connectivity" 2 c.G.count

let test_components_spiral () =
  (* A connected spiral: one component however complex the shape is. *)
  let g = G.create ~side:8 in
  let path =
    [ (0,0);(1,0);(2,0);(3,0);(4,0);(5,0);(6,0);(7,0);(7,1);(7,2);(7,3);
      (6,3);(5,3);(4,3);(3,3);(2,3);(2,2);(3,1) ]
  in
  List.iter (fun (x, y) -> G.set g x y true) path;
  check_int "spiral is one component" 1 (G.connected_components g).G.count

let test_pp () =
  let g = G.create ~side:2 in
  G.set g 0 0 true;
  let s = Format.asprintf "%a" G.pp g in
  Alcotest.(check string) "render" "..\n#.\n" s

(* Property: to_elements . of_elements preserves the pixel set. *)

let prop_elements_pixelset =
  QCheck2.Test.make ~name:"to_elements preserves pixels" ~count:100
    QCheck2.Gen.(list_size (int_bound 40) (pair (int_bound 15) (int_bound 15)))
    (fun cells ->
      let g = G.create ~side:16 in
      List.iter (fun (x, y) -> G.set g x y true) cells;
      let g2 = G.of_elements s4 (G.to_elements s4 g) in
      G.equal g g2)

let prop_component_count_conserves_area =
  QCheck2.Test.make ~name:"component areas sum to count" ~count:100
    QCheck2.Gen.(list_size (int_bound 60) (pair (int_bound 15) (int_bound 15)))
    (fun cells ->
      let g = G.create ~side:16 in
      List.iter (fun (x, y) -> G.set g x y true) cells;
      let c = G.connected_components g in
      Array.fold_left ( + ) 0 c.G.areas = G.count g)

let () =
  Alcotest.run "grid"
    [
      ( "unit",
        [
          Alcotest.test_case "create/get/set" `Quick test_create_get_set;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "of/to elements" `Quick test_of_elements_roundtrip;
          Alcotest.test_case "of_classifier" `Quick test_of_classifier;
          Alcotest.test_case "boolean ops" `Quick test_boolean_ops;
          Alcotest.test_case "size mismatch" `Quick test_size_mismatch;
          Alcotest.test_case "components" `Quick test_components_simple;
          Alcotest.test_case "4-connectivity" `Quick test_components_diagonal_not_connected;
          Alcotest.test_case "complex shape" `Quick test_components_spiral;
          Alcotest.test_case "pp" `Quick test_pp;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_elements_pixelset; prop_component_count_conserves_area ] );
    ]
