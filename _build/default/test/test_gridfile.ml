module GF = Sqp_kdtree.Grid_file
module W = Sqp_workload

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let expect_ok t =
  match GF.check_invariants t with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invariant violation: %s" m

let build ?(capacity = 8) ?(side = 256) points =
  let t = GF.create ~bucket_capacity:capacity ~side () in
  Array.iter (fun (p, v) -> GF.insert t p v) points;
  t

let random_points ?(n = 400) ?(seed = 31) ?(side = 256) () =
  let rng = W.Rng.create ~seed in
  Array.mapi (fun i p -> (p, i)) (W.Datagen.uniform rng ~side ~n ~dims:2)

let brute pts box =
  Array.to_list pts
  |> List.filter (fun (p, _) -> Sqp_geom.Box.contains_point box p)
  |> List.sort compare

let test_empty () =
  let t = GF.create ~side:64 () in
  check_int "length" 0 (GF.length t);
  check_int "one bucket" 1 (GF.bucket_count t);
  expect_ok t;
  let r, stats = GF.range_search t (Sqp_geom.Box.of_ranges [ (0, 63); (0, 63) ]) in
  check_int "no results" 0 (List.length r);
  check_int "one page" 1 stats.GF.data_pages

let test_insert_and_split () =
  let t = build ~capacity:4 (random_points ~n:100 ()) in
  expect_ok t;
  check_int "length" 100 (GF.length t);
  check "buckets grew" true (GF.bucket_count t > 10);
  let nx, ny = GF.directory_size t in
  check "directory refined" true (nx > 1 && ny > 1)

let test_invariants_during_build () =
  let t = GF.create ~bucket_capacity:4 ~side:128 () in
  Array.iter
    (fun (p, v) ->
      GF.insert t p v;
      expect_ok t)
    (random_points ~n:200 ~side:128 ());
  check_int "all inserted" 200 (GF.length t)

let test_range_matches_brute_force () =
  let pts = random_points () in
  let t = build pts in
  let rng = W.Rng.create ~seed:4 in
  for _ = 1 to 60 do
    let x1 = W.Rng.int rng 256 and x2 = W.Rng.int rng 256 in
    let y1 = W.Rng.int rng 256 and y2 = W.Rng.int rng 256 in
    let box =
      Sqp_geom.Box.make ~lo:[| min x1 x2; min y1 y2 |] ~hi:[| max x1 x2; max y1 y2 |]
    in
    let got, stats = GF.range_search t box in
    if List.sort compare got <> brute pts box then Alcotest.fail "range mismatch";
    check "pages bounded" true (stats.GF.data_pages <= GF.bucket_count t)
  done

let test_out_of_grid () =
  let t = build (random_points ()) in
  let r, stats = GF.range_search t (Sqp_geom.Box.of_ranges [ (300, 400); (0, 10) ]) in
  check_int "none" 0 (List.length r);
  check_int "no pages" 0 stats.GF.data_pages;
  (* Clipped queries still work. *)
  let got, _ = GF.range_search t (Sqp_geom.Box.of_ranges [ (-10, 300); (-10, 300) ]) in
  check_int "all points" 400 (List.length got)

let test_duplicates_tolerated () =
  let t = GF.create ~bucket_capacity:3 ~side:32 () in
  for v = 0 to 9 do
    GF.insert t [| 5; 5 |] v
  done;
  expect_ok t;
  let got, _ = GF.range_search t (Sqp_geom.Box.of_ranges [ (5, 5); (5, 5) ]) in
  check_int "all duplicates" 10 (List.length got)

let test_skewed_data () =
  (* Diagonal data stresses scale refinement. *)
  let rng = W.Rng.create ~seed:5 in
  let pts =
    Array.mapi (fun i p -> (p, i)) (W.Datagen.diagonal rng ~side:256 ~n:300 ~jitter:3)
  in
  let t = build ~capacity:5 pts in
  expect_ok t;
  let box = Sqp_geom.Box.of_ranges [ (64, 192); (64, 192) ] in
  let got, _ = GF.range_search t box in
  check "matches brute force" true (List.sort compare got = brute pts box)

let test_small_query_reads_few_pages () =
  let t = build ~capacity:20 (random_points ~n:1000 ~seed:77 ()) in
  let _, small = GF.range_search t (Sqp_geom.Box.of_ranges [ (10, 25); (10, 25) ]) in
  let total = GF.bucket_count t in
  check "few pages for a small query" true (small.GF.data_pages * 5 < total)

let test_invalid () =
  let t = GF.create ~side:16 () in
  List.iter
    (fun p ->
      match GF.insert t p 0 with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())
    [ [| -1; 0 |]; [| 16; 0 |]; [| 0 |] ]

let prop_model =
  QCheck2.Test.make ~name:"grid file = brute force (random builds)" ~count:30
    QCheck2.Gen.(
      pair (int_range 0 10000)
        (pair (pair (int_bound 63) (int_bound 63)) (pair (int_bound 63) (int_bound 63))))
    (fun (seed, ((x1, y1), (x2, y2))) ->
      let pts = random_points ~n:150 ~seed ~side:64 () in
      let t = build ~capacity:5 ~side:64 pts in
      let box =
        Sqp_geom.Box.make ~lo:[| min x1 x2; min y1 y2 |] ~hi:[| max x1 x2; max y1 y2 |]
      in
      GF.check_invariants t = Ok ()
      && List.sort compare (fst (GF.range_search t box)) = brute pts box)

let () =
  Alcotest.run "gridfile"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "insert and split" `Quick test_insert_and_split;
          Alcotest.test_case "invariants during build" `Quick test_invariants_during_build;
          Alcotest.test_case "range = brute force" `Quick test_range_matches_brute_force;
          Alcotest.test_case "out of grid" `Quick test_out_of_grid;
          Alcotest.test_case "duplicates" `Quick test_duplicates_tolerated;
          Alcotest.test_case "skewed data" `Quick test_skewed_data;
          Alcotest.test_case "small queries cheap" `Quick test_small_query_reads_few_pages;
          Alcotest.test_case "invalid input" `Quick test_invalid;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_model ]);
    ]
