module Z = Sqp_zorder
module H = Z.Hilbert

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let s4 = Z.Space.make ~dims:2 ~depth:4

let test_corners () =
  check_int "origin is rank 0" 0 (H.rank s4 [| 0; 0 |]);
  (* The Hilbert curve ends adjacent to its start: at (side-1, 0) for the
     canonical orientation. *)
  check_int "end of curve" 255 (H.rank s4 [| 15; 0 |])

let test_bijective () =
  let seen = Hashtbl.create 256 in
  for x = 0 to 15 do
    for y = 0 to 15 do
      let r = H.rank s4 [| x; y |] in
      check "rank in range" true (r >= 0 && r < 256);
      check "injective" false (Hashtbl.mem seen r);
      Hashtbl.replace seen r ()
    done
  done;
  check_int "surjective" 256 (Hashtbl.length seen)

let test_roundtrip () =
  for r = 0 to 255 do
    check_int "roundtrip" r (H.rank s4 (H.point_of_rank s4 r))
  done

let test_adjacency () =
  (* The defining property: consecutive ranks are 4-neighbours.  (The z
     curve violates this at every N-jump.) *)
  let prev = ref (H.point_of_rank s4 0) in
  for r = 1 to 255 do
    let p = H.point_of_rank s4 r in
    let d = abs (p.(0) - !prev.(0)) + abs (p.(1) - !prev.(1)) in
    if d <> 1 then Alcotest.failf "non-adjacent step at rank %d" r;
    prev := p
  done

let test_z_curve_jumps_for_contrast () =
  (* Confirm the ablation premise: z order does make non-unit steps. *)
  let jumps = ref 0 in
  let prev = ref (Z.Curve.point_of_rank s4 0) in
  for r = 1 to 255 do
    let p = Z.Curve.point_of_rank s4 r in
    let d = abs (p.(0) - !prev.(0)) + abs (p.(1) - !prev.(1)) in
    if d > 1 then incr jumps;
    prev := p
  done;
  check "z curve jumps" true (!jumps > 0)

let test_traverse () =
  let pts = List.of_seq (H.traverse s4) in
  check_int "covers grid" 256 (List.length pts);
  let tbl = Hashtbl.create 256 in
  List.iter (fun p -> Hashtbl.replace tbl (p.(0), p.(1)) ()) pts;
  check_int "all distinct" 256 (Hashtbl.length tbl)

let test_invalid () =
  List.iter
    (fun f ->
      match f () with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())
    [
      (fun () -> [| H.rank (Z.Space.make ~dims:3 ~depth:4) [| 0; 0; 0 |] |]);
      (fun () -> [| H.rank s4 [| 16; 0 |] |]);
      (fun () -> ignore (H.point_of_rank s4 (-1)); [| 0 |]);
    ]

let prop_roundtrip_large =
  QCheck2.Test.make ~name:"rank/point_of_rank roundtrip (1024 grid)" ~count:500
    QCheck2.Gen.(pair (int_bound 1023) (int_bound 1023))
    (fun (x, y) ->
      let s = Z.Space.make ~dims:2 ~depth:10 in
      H.point_of_rank s (H.rank s [| x; y |]) = [| x; y |])

let prop_adjacency_large =
  QCheck2.Test.make ~name:"consecutive ranks adjacent (256 grid)" ~count:500
    QCheck2.Gen.(int_bound 65534)
    (fun r ->
      let s = Z.Space.make ~dims:2 ~depth:8 in
      let a = H.point_of_rank s r and b = H.point_of_rank s (r + 1) in
      abs (a.(0) - b.(0)) + abs (a.(1) - b.(1)) = 1)

let () =
  Alcotest.run "hilbert"
    [
      ( "unit",
        [
          Alcotest.test_case "corners" `Quick test_corners;
          Alcotest.test_case "bijective" `Quick test_bijective;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "adjacency" `Quick test_adjacency;
          Alcotest.test_case "z jumps (contrast)" `Quick test_z_curve_jumps_for_contrast;
          Alcotest.test_case "traverse" `Quick test_traverse;
          Alcotest.test_case "invalid" `Quick test_invalid;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_roundtrip_large; prop_adjacency_large ] );
    ]
