module I = Sqp_core.Interference
module Zm = Sqp_core.Zmerge
module Z = Sqp_zorder
module B = Z.Bitstring
module W = Sqp_workload

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let space = Z.Space.make ~dims:2 ~depth:6

(* {1 Zmerge} *)

let test_zmerge_simple () =
  let l = [ (B.of_string "00", "a"); (B.of_string "01", "b") ] in
  let r = [ (B.of_string "0011", "x"); (B.of_string "1", "y") ] in
  let pairs, stats = Zm.pairs l r in
  Alcotest.(check (list (pair string string))) "containment" [ ("a", "x") ] pairs;
  check_int "items" 4 stats.Zm.items

let test_zmerge_unsorted_input () =
  (* Inputs may arrive in any order; the merge sorts. *)
  let l = [ (B.of_string "01", "b"); (B.of_string "00", "a") ] in
  let r = [ (B.of_string "0011", "x") ] in
  let pairs, _ = Zm.pairs l r in
  check "found" true (pairs = [ ("a", "x") ])

let test_zmerge_nested_same_side () =
  (* Nested elements on one side each pair with a contained element. *)
  let l = [ (B.of_string "0", "outer"); (B.of_string "00", "inner") ] in
  let r = [ (B.of_string "000", "x") ] in
  let pairs, _ = Zm.pairs l r in
  check_int "both containers found" 2 (List.length pairs);
  check "outer" true (List.mem ("outer", "x") pairs);
  check "inner" true (List.mem ("inner", "x") pairs)

let test_zmerge_equal_elements () =
  let l = [ (B.of_string "0101", 1) ] and r = [ (B.of_string "0101", 2) ] in
  let pairs, _ = Zm.pairs l r in
  check_int "exactly one pair" 1 (List.length pairs)

let test_zmerge_matches_naive () =
  let rng = W.Rng.create ~seed:6 in
  for _ = 1 to 30 do
    let rand_els n =
      List.init n (fun i ->
          let len = W.Rng.int rng 10 in
          (B.init len (fun _ -> W.Rng.bool rng), i))
    in
    let l = rand_els 40 and r = rand_els 40 in
    let p1, _ = Zm.pairs l r in
    let p2, _ = Zm.pairs_naive l r in
    if List.sort compare p1 <> List.sort compare p2 then
      Alcotest.fail "zmerge disagrees with naive"
  done

(* {1 Interference detection} *)

let mk_box x y w h =
  Sqp_geom.Shape.Box (Sqp_geom.Box.of_ranges [ (x, x + w - 1); (y, y + h - 1) ])

let random_parts rng n =
  List.init n (fun i ->
      let w = 1 + W.Rng.int rng 12 and h = 1 + W.Rng.int rng 12 in
      let x = W.Rng.int rng (64 - w) and y = W.Rng.int rng (64 - h) in
      (i, mk_box x y w h))

let test_simple_overlap () =
  let left = [ (1, mk_box 0 0 8 8) ] and right = [ (2, mk_box 4 4 8 8) ] in
  let hits, _ = I.detect space left right in
  Alcotest.(check (list (pair int int))) "overlap" [ (1, 2) ] hits

let test_touching_boxes_interfere () =
  (* Cell-adjacent boxes that share no cell do not interfere. *)
  let left = [ (1, mk_box 0 0 4 4) ] and right = [ (2, mk_box 4 0 4 4) ] in
  let hits, _ = I.detect space left right in
  check_int "no shared cell" 0 (List.length hits)

let test_circle_polygon_mix () =
  let left =
    [
      (1, Sqp_geom.Shape.Circle (Sqp_geom.Circle.make ~cx:20 ~cy:20 ~radius:6));
      (2, mk_box 40 40 8 8);
    ]
  in
  let right =
    [
      (10, Sqp_geom.Shape.Polygon (Sqp_geom.Polygon.make [ (15, 15); (30, 18); (22, 30) ]));
      (11, mk_box 0 0 4 4);
    ]
  in
  let ag, _ = I.detect space left right in
  let bf, _ = I.detect_brute_force space left right in
  check "matches brute force" true (ag = bf);
  check "circle hits polygon" true (List.mem (1, 10) ag)

let test_matches_brute_force_random () =
  let rng = W.Rng.create ~seed:12 in
  for _ = 1 to 10 do
    let left = random_parts rng 12 and right = random_parts rng 12 in
    let ag, stats = I.detect space left right in
    let bf, _ = I.detect_brute_force space left right in
    if ag <> bf then Alcotest.fail "detect disagrees with brute force";
    check "filter sound" true (stats.I.result_pairs <= stats.I.candidate_pairs)
  done

let test_coarse_options_still_exact () =
  let rng = W.Rng.create ~seed:13 in
  let left = random_parts rng 15 and right = random_parts rng 15 in
  let bf, _ = I.detect_brute_force space left right in
  List.iter
    (fun level ->
      let options = { Z.Decompose.max_level = Some level; max_elements = None } in
      let ag, stats = I.detect ~options space left right in
      if ag <> bf then Alcotest.failf "coarse level %d wrong" level;
      check "coarser -> fewer elements" true (stats.I.elements > 0))
    [ 4; 6; 8; 12 ]

let test_filter_prunes () =
  (* Sparse scene: the AG filter must test far fewer pairs than n^2. *)
  let left = List.init 12 (fun i -> (i, mk_box (i * 5) 0 3 3)) in
  let right = List.init 12 (fun i -> (100 + i, mk_box (i * 5) 32 3 3)) in
  let _, stats = I.detect space left right in
  check "few candidates" true (stats.I.exact_tests * 4 < 144)

let test_empty_sides () =
  let hits, _ = I.detect space [] [ (1, mk_box 0 0 4 4) ] in
  check_int "no pairs" 0 (List.length hits);
  let hits2, _ = I.detect space [] [] in
  check_int "empty" 0 (List.length hits2)

(* Property *)

let prop_brute_force =
  QCheck2.Test.make ~name:"detect = brute force" ~count:30
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let rng = W.Rng.create ~seed in
      let left = random_parts rng 8 and right = random_parts rng 8 in
      fst (I.detect space left right) = fst (I.detect_brute_force space left right))

let () =
  Alcotest.run "interference"
    [
      ( "zmerge",
        [
          Alcotest.test_case "simple" `Quick test_zmerge_simple;
          Alcotest.test_case "unsorted input" `Quick test_zmerge_unsorted_input;
          Alcotest.test_case "nested same side" `Quick test_zmerge_nested_same_side;
          Alcotest.test_case "equal elements" `Quick test_zmerge_equal_elements;
          Alcotest.test_case "matches naive" `Quick test_zmerge_matches_naive;
        ] );
      ( "interference",
        [
          Alcotest.test_case "simple overlap" `Quick test_simple_overlap;
          Alcotest.test_case "touching boxes" `Quick test_touching_boxes_interfere;
          Alcotest.test_case "mixed shapes" `Quick test_circle_polygon_mix;
          Alcotest.test_case "random = brute force" `Quick test_matches_brute_force_random;
          Alcotest.test_case "coarse filter stays exact" `Quick test_coarse_options_still_exact;
          Alcotest.test_case "filter prunes" `Quick test_filter_prunes;
          Alcotest.test_case "empty inputs" `Quick test_empty_sides;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_brute_force ]);
    ]
