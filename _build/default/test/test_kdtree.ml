module K = Sqp_kdtree.Kdtree
module P = Sqp_kdtree.Paged_kdtree
module L = Sqp_kdtree.Linear_scan
module W = Sqp_workload

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let points ?(n = 200) ?(seed = 9) ?(side = 64) () =
  let rng = W.Rng.create ~seed in
  Array.mapi (fun i p -> (p, i)) (W.Datagen.uniform rng ~side ~n ~dims:2)

let brute pts box =
  Array.to_list pts
  |> List.filter (fun (p, _) -> Sqp_geom.Box.contains_point box p)
  |> List.sort compare

let test_build_invariants () =
  let t = K.build (points ()) in
  check_int "length" 200 (K.length t);
  (match K.check_invariants t with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invariants: %s" m);
  (* A median-built tree over 200 points is shallow. *)
  check "balanced-ish" true (K.height t <= 12)

let test_find () =
  let pts = points () in
  let t = K.build pts in
  Array.iter (fun (p, v) -> check "find each" true (K.find t p = Some v)) pts;
  check "missing" true (K.find t [| 200; 200 |] = None)

let test_insert () =
  let t = Array.fold_left (fun t (p, v) -> K.insert t p v) (K.build [||]) (points ()) in
  check_int "length" 200 (K.length t);
  (match K.check_invariants t with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invariants: %s" m)

let test_range_search () =
  let pts = points () in
  let t = K.build pts in
  let rng = W.Rng.create ~seed:4 in
  for _ = 1 to 50 do
    let x1 = W.Rng.int rng 64 and x2 = W.Rng.int rng 64 in
    let y1 = W.Rng.int rng 64 and y2 = W.Rng.int rng 64 in
    let box =
      Sqp_geom.Box.make ~lo:[| min x1 x2; min y1 y2 |] ~hi:[| max x1 x2; max y1 y2 |]
    in
    let got, stats = K.range_search t box in
    if List.sort compare got <> brute pts box then Alcotest.fail "range mismatch";
    check "visited bounded" true (stats.K.nodes_visited <= K.length t)
  done

let test_nearest () =
  let pts = points () in
  let t = K.build pts in
  let rng = W.Rng.create ~seed:8 in
  for _ = 1 to 50 do
    let q = [| W.Rng.int rng 64; W.Rng.int rng 64 |] in
    match K.nearest t q with
    | None -> Alcotest.fail "nearest on non-empty tree"
    | Some ((p, _), _) ->
        let d = Sqp_geom.Point.euclidean_sq p q in
        Array.iter
          (fun (p', _) ->
            if Sqp_geom.Point.euclidean_sq p' q < d then
              Alcotest.fail "non-optimal nearest neighbour")
          pts
  done;
  check "empty tree" true (K.nearest (K.build [||]) [| 0; 0 |] = None)

let test_paged_build () =
  let t = P.build ~page_capacity:10 (points ()) in
  check_int "length" 200 (P.length t);
  check "page count sane" true (P.page_count t >= 20);
  let sizes = List.map List.length (P.pages t) in
  check "no empty pages" true (List.for_all (fun s -> s > 0) sizes);
  check_int "points conserved" 200 (List.fold_left ( + ) 0 sizes)

let test_paged_range () =
  let pts = points () in
  let t = P.build ~page_capacity:10 pts in
  let box = Sqp_geom.Box.of_ranges [ (10, 40); (5, 50) ] in
  let got, stats = P.range_search t box in
  check "results" true (List.sort compare got = brute pts box);
  check "pages <= total" true (stats.P.data_pages <= P.page_count t);
  check "efficiency in [0,1]" true
    (P.efficiency t stats >= 0.0 && P.efficiency t stats <= 1.0)

let test_paged_degenerate () =
  (* All points on one vertical line: splits must still terminate. *)
  let pts = Array.init 100 (fun i -> ([| 7; i mod 64 |], i)) in
  let t = P.build ~page_capacity:10 pts in
  check_int "length" 100 (P.length t);
  let box = Sqp_geom.Box.of_ranges [ (0, 10); (0, 63) ] in
  let got, _ = P.range_search t box in
  check "finds all distinct cells" true (List.length got = 100)

let test_paged_identical_points () =
  (* Fully degenerate: every point identical; bucket stays oversized. *)
  let pts = Array.init 50 (fun i -> ([| 3; 3 |], i)) in
  let t = P.build ~page_capacity:10 pts in
  let got, _ = P.range_search t (Sqp_geom.Box.of_ranges [ (3, 3); (3, 3) ]) in
  check_int "all found" 50 (List.length got)

let test_linear_scan () =
  let pts = points () in
  let t = L.build ~page_capacity:20 pts in
  check_int "pages" 10 (L.page_count t);
  let box = Sqp_geom.Box.of_ranges [ (0, 20); (0, 20) ] in
  let got, stats = L.range_search t box in
  check "results" true (List.sort compare got = brute pts box);
  check_int "always reads everything" 10 stats.L.data_pages

(* Property: paged kd results = in-memory kd results = brute force. *)

let prop_agreement =
  QCheck2.Test.make ~name:"kd variants = brute force" ~count:50
    QCheck2.Gen.(
      tup3 (int_range 0 1000)
        (pair (int_bound 63) (int_bound 63))
        (pair (int_bound 63) (int_bound 63)))
    (fun (seed, (x1, y1), (x2, y2)) ->
      let pts = points ~seed () in
      let box =
        Sqp_geom.Box.make ~lo:[| min x1 x2; min y1 y2 |] ~hi:[| max x1 x2; max y1 y2 |]
      in
      let expected = brute pts box in
      let t = K.build pts and pt = P.build ~page_capacity:16 pts in
      List.sort compare (fst (K.range_search t box)) = expected
      && List.sort compare (fst (P.range_search pt box)) = expected)

let () =
  Alcotest.run "kdtree"
    [
      ( "in-memory",
        [
          Alcotest.test_case "build invariants" `Quick test_build_invariants;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "insert" `Quick test_insert;
          Alcotest.test_case "range search" `Quick test_range_search;
          Alcotest.test_case "nearest neighbour" `Quick test_nearest;
        ] );
      ( "paged",
        [
          Alcotest.test_case "build" `Quick test_paged_build;
          Alcotest.test_case "range search" `Quick test_paged_range;
          Alcotest.test_case "degenerate line" `Quick test_paged_degenerate;
          Alcotest.test_case "identical points" `Quick test_paged_identical_points;
        ] );
      ("linear scan", [ Alcotest.test_case "scan" `Quick test_linear_scan ]);
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_agreement ]);
    ]
