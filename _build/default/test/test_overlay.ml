module O = Sqp_core.Overlay
module Z = Sqp_zorder
module G = Sqp_grid.Bitgrid
module W = Sqp_workload

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let space = Z.Space.make ~dims:2 ~depth:5

let layer_of_box lo hi =
  List.map (fun e -> (e, ())) (Z.Decompose.decompose_box space ~lo ~hi)

let grid_of layer = G.of_elements space (List.map fst layer)

let random_layer seed =
  let rng = W.Rng.create ~seed in
  let g = G.create ~side:32 in
  for _ = 1 to 3 + W.Rng.int rng 5 do
    let w = 1 + W.Rng.int rng 12 and h = 1 + W.Rng.int rng 12 in
    let x = W.Rng.int rng (32 - w) and y = W.Rng.int rng (32 - h) in
    for i = x to x + w - 1 do
      for j = y to y + h - 1 do
        G.set g i j true
      done
    done
  done;
  (List.map (fun e -> (e, ())) (G.to_elements space g), g)

let test_check_layer () =
  let good = layer_of_box [| 2; 3 |] [| 9; 12 |] in
  check "valid" true (O.check_layer space good = Ok ());
  (* Reversed order is invalid. *)
  (match O.check_layer space (List.rev good) with
  | Error _ -> ()
  | Ok () -> if List.length good > 1 then Alcotest.fail "reversal accepted");
  (* Nested elements are invalid. *)
  let nested = [ (Z.Bitstring.of_string "0", ()); (Z.Bitstring.of_string "00", ()) ] in
  match O.check_layer space nested with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "nested accepted"

let test_overlay_labels () =
  let a = layer_of_box [| 0; 0 |] [| 15; 15 |] in
  let b = layer_of_box [| 8; 8 |] [| 23; 23 |] in
  let out, stats = O.overlay space a b in
  check "valid output" true
    (O.check_layer space (List.map (fun (e, _) -> (e, ())) out) = Ok ());
  let cells keep = O.cells space (List.filter (fun (_, l) -> keep l) out) in
  Alcotest.(check (float 0.1)) "a only" (256.0 -. 64.0)
    (cells (function Some (), None -> true | _ -> false));
  Alcotest.(check (float 0.1)) "both" 64.0
    (cells (function Some (), Some () -> true | _ -> false));
  Alcotest.(check (float 0.1)) "b only" (256.0 -. 64.0)
    (cells (function None, Some () -> true | _ -> false));
  check "segments sane" true (stats.O.segments >= 3)

let test_overlay_empty () =
  let a = layer_of_box [| 0; 0 |] [| 7; 7 |] in
  let out, _ = O.overlay space a [] in
  check "same area" true (O.cells space out = O.cells space a);
  check "labels are a-only" true
    (List.for_all (function _, (Some (), None) -> true | _ -> false) out);
  let out2, _ = O.overlay space [] [] in
  check "empty" true (out2 = [])

let test_boolean_ops_vs_grid () =
  for seed = 1 to 15 do
    let la, ga = random_layer seed in
    let lb, gb = random_layer (seed + 100) in
    List.iter
      (fun (name, op, gop) ->
        let result = op space la lb in
        (match O.check_layer space result with
        | Ok () -> ()
        | Error m -> Alcotest.failf "%s invalid layer: %s" name m);
        let expected, _ = gop ga gb in
        if not (G.equal (grid_of result) expected) then
          Alcotest.failf "%s mismatch at seed %d" name seed)
      [
        ("union", O.union, G.union);
        ("inter", O.inter, G.inter);
        ("diff", O.diff, G.diff);
        ("xor", O.xor, G.xor);
      ]
  done

let test_boolean_canonical () =
  (* Union of the two halves must canonicalize back to the root. *)
  let left = layer_of_box [| 0; 0 |] [| 15; 31 |] in
  let right = layer_of_box [| 16; 0 |] [| 31; 31 |] in
  match O.union space left right with
  | [ (e, ()) ] -> check_int "root" 0 (Z.Element.level e)
  | l -> Alcotest.failf "expected single root element, got %d" (List.length l)

let test_of_shape () =
  let layer =
    O.of_shape space (Sqp_geom.Shape.Box (Sqp_geom.Box.of_ranges [ (1, 6); (2, 9) ])) "lbl"
  in
  check "labelled" true (List.for_all (fun (_, l) -> l = "lbl") layer);
  Alcotest.(check (float 0.1)) "area" 48.0 (O.cells space layer)

let test_invalid_input_rejected () =
  let bad = [ (Z.Bitstring.of_string "0", ()); (Z.Bitstring.of_string "00", ()) ] in
  match O.overlay space bad [] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* Properties *)

let gen_boxes =
  QCheck2.Gen.(
    let coord = int_bound 31 in
    map
      (fun (x1, x2, y1, y2) ->
        ([| min x1 x2; min y1 y2 |], [| max x1 x2; max y1 y2 |]))
      (quad coord coord coord coord))

let prop_union_area =
  QCheck2.Test.make ~name:"inclusion-exclusion on areas" ~count:200
    QCheck2.Gen.(pair gen_boxes gen_boxes)
    (fun ((lo1, hi1), (lo2, hi2)) ->
      let a = layer_of_box lo1 hi1 and b = layer_of_box lo2 hi2 in
      let area l = O.cells space l in
      let u = O.union space a b and i = O.inter space a b in
      abs_float (area u +. area i -. (area a +. area b)) < 0.5)

let prop_xor_is_union_minus_inter =
  QCheck2.Test.make ~name:"xor = union - inter" ~count:200
    QCheck2.Gen.(pair gen_boxes gen_boxes)
    (fun ((lo1, hi1), (lo2, hi2)) ->
      let a = layer_of_box lo1 hi1 and b = layer_of_box lo2 hi2 in
      let x = O.xor space a b in
      let alt = O.diff space (O.union space a b) (O.inter space a b) in
      List.equal (fun (e1, ()) (e2, ()) -> Z.Bitstring.equal e1 e2) x alt)

let () =
  Alcotest.run "overlay"
    [
      ( "unit",
        [
          Alcotest.test_case "check_layer" `Quick test_check_layer;
          Alcotest.test_case "overlay labels and areas" `Quick test_overlay_labels;
          Alcotest.test_case "overlay with empty" `Quick test_overlay_empty;
          Alcotest.test_case "boolean ops = grid oracle" `Quick test_boolean_ops_vs_grid;
          Alcotest.test_case "canonical output" `Quick test_boolean_canonical;
          Alcotest.test_case "of_shape" `Quick test_of_shape;
          Alcotest.test_case "invalid input rejected" `Quick test_invalid_input_rejected;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_union_area; prop_xor_is_union_minus_inter ] );
    ]
