(* Properties of the parallel execution layer: the domain pool, the
   z-prefix sharder, per-shard statistics merging, and determinism of the
   parallel drivers across pool sizes and repeated runs. *)

module Z = Sqp_zorder
module B = Z.Bitstring
module W = Sqp_workload
module Par = Sqp_parallel
module Pool = Par.Pool
module Shard = Par.Shard

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* {1 Pool} *)

let test_pool_map_order () =
  Pool.with_pool ~domains:3 (fun pool ->
      let input = Array.init 200 Fun.id in
      let out = Pool.map pool (fun x -> x * x) input in
      Array.iteri (fun i y -> check_int "square in order" (i * i) y) out)

let test_pool_single_domain () =
  Pool.with_pool ~domains:1 (fun pool ->
      check_int "no workers" 1 (Pool.domains pool);
      let out = Pool.run pool [ (fun () -> 1); (fun () -> 2); (fun () -> 3) ] in
      check "sequential degenerate" true (out = [ 1; 2; 3 ]))

let test_pool_empty_batch () =
  Pool.with_pool ~domains:2 (fun pool ->
      check "empty map" true (Pool.map pool Fun.id [||] = [||]);
      check "empty run" true (Pool.run pool [] = []))

exception Boom of int

let test_pool_exception_propagates () =
  Pool.with_pool ~domains:3 (fun pool ->
      (try
         ignore
           (Pool.map pool
              (fun x -> if x = 7 then raise (Boom x) else x)
              (Array.init 20 Fun.id));
         Alcotest.fail "expected Boom"
       with Boom 7 -> ());
      (* The batch drained cleanly: the pool is still usable. *)
      let out = Pool.map pool succ [| 1; 2; 3 |] in
      check "pool survives a failed batch" true (out = [| 2; 3; 4 |]))

let test_pool_many_batches () =
  Pool.with_pool ~domains:4 (fun pool ->
      for batch = 1 to 50 do
        let out = Pool.map pool (fun x -> x + batch) (Array.init 17 Fun.id) in
        Array.iteri (fun i y -> check_int "batch result" (i + batch) y) out
      done)

let test_pool_shutdown_idempotent () =
  let pool = Pool.create ~domains:2 in
  ignore (Pool.map pool Fun.id [| 1 |]);
  Pool.shutdown pool;
  Pool.shutdown pool

let test_pool_invalid () =
  Alcotest.check_raises "domains 0" (Invalid_argument "Pool.create: domains must be >= 1")
    (fun () -> ignore (Pool.create ~domains:0))

(* {1 Sharder} *)

let test_shard_partition () =
  (* The shards tile [0, 2^total - 1] contiguously, in z order, for every
     depth. *)
  List.iter
    (fun (dims, depth) ->
      let space = Z.Space.make ~dims ~depth in
      let total = dims * depth in
      for bits = 0 to min 6 total do
        let shards = Shard.make space ~bits in
        check_int "shard count" (1 lsl bits) (Array.length shards);
        Array.iteri
          (fun i sh ->
            check_int "index" i sh.Shard.index;
            check_int "prefix length" bits (B.length sh.Shard.prefix);
            check_int "zlo length" total (B.length sh.Shard.zlo);
            check_int "zhi length" total (B.length sh.Shard.zhi);
            check_int "zlo as int" sh.Shard.lo (B.to_int sh.Shard.zlo);
            check_int "zhi as int" sh.Shard.hi (B.to_int sh.Shard.zhi);
            if i = 0 then check_int "starts at 0" 0 sh.Shard.lo
            else check_int "contiguous" (shards.(i - 1).Shard.hi + 1) sh.Shard.lo;
            check "non-empty" true (sh.Shard.lo <= sh.Shard.hi))
          shards;
        check_int "ends at 2^total - 1" ((1 lsl total) - 1)
          shards.(Array.length shards - 1).Shard.hi
      done)
    [ (2, 3); (2, 5); (3, 3); (1, 6) ]

let test_shard_of_z_matches_interval () =
  let space = Z.Space.make ~dims:2 ~depth:5 in
  let total = 10 in
  let rng = W.Rng.create ~seed:99 in
  List.iter
    (fun bits ->
      let shards = Shard.make space ~bits in
      for _ = 1 to 500 do
        let z = B.of_int (W.Rng.int rng (1 lsl total)) ~width:total in
        let i = Shard.shard_of_z ~bits z in
        let sh = shards.(i) in
        let zi = B.to_int z in
        check "z in its shard's interval" true (sh.Shard.lo <= zi && zi <= sh.Shard.hi)
      done)
    [ 0; 1; 2; 3; 4; 5; 6 ]

let test_shard_spans_covers () =
  let space = Z.Space.make ~dims:2 ~depth:4 in
  let bits = 3 in
  let shards = Shard.make space ~bits in
  let rng = W.Rng.create ~seed:7 in
  for _ = 1 to 300 do
    let level = W.Rng.int rng 9 (* 0..8 *) in
    let z = B.of_int (W.Rng.int rng (1 lsl level)) ~width:level in
    if level < bits then (
      check "short elements span" true (Shard.spans ~bits z);
      (* A spanner covers exactly the shards extending its prefix:
         2^(bits - level) of them, and is disjoint from the rest. *)
      let covered =
        Array.to_list shards |> List.filter (fun sh -> Shard.covers sh z)
      in
      check_int "covers 2^(bits-level) shards" (1 lsl (bits - level))
        (List.length covered);
      List.iter
        (fun sh -> check "covered shard extends prefix" true
            (B.is_prefix z sh.Shard.prefix))
        covered)
    else (
      check "long elements do not span" false (Shard.spans ~bits z);
      let home = Shard.shard_of_z ~bits z in
      check_int "home shard by prefix" (B.to_int (B.take z bits)) home)
  done

let test_shard_default_bits () =
  let space = Z.Space.make ~dims:2 ~depth:6 (* 12 total bits *) in
  check_int "1 domain -> sequential" 0 (Shard.default_bits space ~domains:1);
  List.iter
    (fun domains ->
      let k = Shard.default_bits space ~domains in
      check "enough shards for 4x fan-out" true (1 lsl k >= min (4 * domains) (1 lsl 12));
      check "within space" true (k <= 12);
      check "within max" true (k <= Shard.max_bits))
    [ 2; 3; 4; 8; 64; 10_000 ];
  let tiny = Z.Space.make ~dims:1 ~depth:2 in
  check "clamped to tiny space" true (Shard.default_bits tiny ~domains:64 <= 2)

(* {1 Stats merging} *)

let pager_workload seed =
  (* A deterministic little pager session, returning its final stats. *)
  let pager = Sqp_storage.Pager.create () in
  let rng = W.Rng.create ~seed in
  let ids = Array.init 30 (fun i -> Sqp_storage.Pager.alloc pager (i * i)) in
  for _ = 1 to 200 do
    let id = ids.(W.Rng.int rng 30) in
    if W.Rng.bool rng then ignore (Sqp_storage.Pager.read pager id)
    else Sqp_storage.Pager.write pager id (W.Rng.int rng 1000)
  done;
  Sqp_storage.Pager.free pager ids.(0);
  Sqp_storage.Stats.snapshot (Sqp_storage.Pager.stats pager)

let test_stats_sum_exact () =
  let module St = Sqp_storage.Stats in
  (* Each parallel task owns its own pager; summed snapshots must equal
     the counters of the same workloads run back to back. *)
  let seeds = Array.init 8 (fun i -> 1000 + i) in
  let parallel_total =
    Pool.with_pool ~domains:4 (fun pool ->
        St.sum (Array.to_list (Pool.map pool pager_workload seeds)))
  in
  let sequential_total = St.sum (Array.to_list (Array.map pager_workload seeds)) in
  check "merged totals equal sequential sum" true (parallel_total = sequential_total);
  (* And the sum really is field-wise. *)
  let singles = Array.map pager_workload seeds in
  check_int "physical_reads add up"
    (Array.fold_left (fun acc s -> acc + s.St.physical_reads) 0 singles)
    parallel_total.St.physical_reads;
  check_int "physical_writes add up"
    (Array.fold_left (fun acc s -> acc + s.St.physical_writes) 0 singles)
    parallel_total.St.physical_writes

(* {1 Determinism of the parallel drivers} *)

let range_setup () =
  let space = Z.Space.make ~dims:2 ~depth:6 in
  let side = Z.Space.side space in
  let rng = W.Rng.create ~seed:42 in
  let pts = W.Datagen.with_ids (W.Datagen.uniform rng ~side ~n:500 ~dims:2) in
  let prep = Par.Par_range_search.prepare space pts in
  let qrng = W.Rng.create ~seed:43 in
  let boxes =
    Array.init 60 (fun _ ->
        let x1 = W.Rng.int qrng side and x2 = W.Rng.int qrng side in
        let y1 = W.Rng.int qrng side and y2 = W.Rng.int qrng side in
        Sqp_geom.Box.make ~lo:[| min x1 x2; min y1 y2 |]
          ~hi:[| max x1 x2; max y1 y2 |])
  in
  (prep, boxes)

let test_range_deterministic_across_domains () =
  let prep, boxes = range_setup () in
  let run domains =
    Pool.with_pool ~domains (fun pool ->
        Array.map (Par.Par_range_search.search ~shard_bits:4 pool prep) boxes)
  in
  let base = run 1 in
  List.iter
    (fun domains ->
      let got = run domains in
      Array.iteri
        (fun i (res, ctrs) ->
          let bres, bctrs = base.(i) in
          check "results identical across pool sizes" true (res = bres);
          check "counters identical across pool sizes" true (ctrs = bctrs))
        got)
    [ 2; 4 ]

let test_range_deterministic_across_runs () =
  let run () =
    let prep, boxes = range_setup () in
    Pool.with_pool ~domains:3 (fun pool ->
        Array.map (Par.Par_range_search.search pool prep) boxes)
  in
  check "same seed, same everything" true (run () = run ())

let join_setup () =
  let space = Z.Space.make ~dims:2 ~depth:5 in
  let side = Z.Space.side space in
  let rng = W.Rng.create ~seed:77 in
  let opts = { Z.Decompose.max_level = Some 8; max_elements = None } in
  let objects tag n =
    List.init n (fun i ->
        let w = 1 + W.Rng.int rng (side / 3) and h = 1 + W.Rng.int rng (side / 3) in
        let x = W.Rng.int rng (side - w) and y = W.Rng.int rng (side - h) in
        List.map
          (fun e -> (e, tag + i))
          (Z.Decompose.decompose_box ~options:opts space ~lo:[| x; y |]
             ~hi:[| x + w - 1; y + h - 1 |]))
    |> List.concat
  in
  (objects 0 20, objects 500 20)

let test_join_deterministic_across_domains () =
  let left, right = join_setup () in
  let run domains =
    Pool.with_pool ~domains (fun pool ->
        Par.Par_spatial_join.pairs ~shard_bits:4 pool left right)
  in
  let base_pairs, base_stats = run 1 in
  List.iter
    (fun domains ->
      let pairs, stats = run domains in
      check "pairs identical across pool sizes" true (pairs = base_pairs);
      check "stats identical across pool sizes" true (stats = base_stats))
    [ 2; 4 ]

let test_join_spanner_accounting () =
  let left, right = join_setup () in
  let bits = 4 in
  let expected_spanners =
    List.length (List.filter (fun (z, _) -> Shard.spans ~bits z) left)
    + List.length (List.filter (fun (z, _) -> Shard.spans ~bits z) right)
  in
  Pool.with_pool ~domains:2 (fun pool ->
      let _, stats = Par.Par_spatial_join.pairs ~shard_bits:bits pool left right in
      check_int "spanner count" expected_spanners stats.Par.Par_spatial_join.spanners;
      check "sweeps bounded by shards + spanner pass" true
        (stats.Par.Par_spatial_join.shards_swept <= (1 lsl bits) + 1))

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_pool_map_order;
          Alcotest.test_case "single domain" `Quick test_pool_single_domain;
          Alcotest.test_case "empty batch" `Quick test_pool_empty_batch;
          Alcotest.test_case "exception propagates" `Quick test_pool_exception_propagates;
          Alcotest.test_case "many batches" `Quick test_pool_many_batches;
          Alcotest.test_case "shutdown idempotent" `Quick test_pool_shutdown_idempotent;
          Alcotest.test_case "invalid sizes" `Quick test_pool_invalid;
        ] );
      ( "sharder",
        [
          Alcotest.test_case "shards partition z space" `Quick test_shard_partition;
          Alcotest.test_case "shard_of_z matches intervals" `Quick
            test_shard_of_z_matches_interval;
          Alcotest.test_case "spans and covers" `Quick test_shard_spans_covers;
          Alcotest.test_case "default depth" `Quick test_shard_default_bits;
        ] );
      ( "stats merge",
        [ Alcotest.test_case "per-shard sum is exact" `Quick test_stats_sum_exact ] );
      ( "determinism",
        [
          Alcotest.test_case "range: across pool sizes" `Quick
            test_range_deterministic_across_domains;
          Alcotest.test_case "range: across runs" `Quick
            test_range_deterministic_across_runs;
          Alcotest.test_case "join: across pool sizes" `Quick
            test_join_deterministic_across_domains;
          Alcotest.test_case "join: spanner accounting" `Quick
            test_join_spanner_accounting;
        ] );
    ]
