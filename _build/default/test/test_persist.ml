module FP = Sqp_storage.File_pager
module Zindex = Sqp_btree.Zindex
module Persist = Sqp_btree.Persist
module Z = Sqp_zorder
module W = Sqp_workload

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("sqp_test_" ^ name)

let with_file name f =
  let path = tmp name in
  if Sys.file_exists path then Sys.remove path;
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* {1 File pager} *)

let test_fp_roundtrip () =
  with_file "roundtrip" (fun path ->
      let s = FP.create ~path ~page_bytes:128 in
      let a = FP.alloc s (Bytes.of_string "hello") in
      let b = FP.alloc s (Bytes.of_string "world!") in
      Alcotest.(check string) "a" "hello" (Bytes.to_string (FP.read s a));
      Alcotest.(check string) "b" "world!" (Bytes.to_string (FP.read s b));
      FP.write s a (Bytes.of_string "HELLO");
      Alcotest.(check string) "rewritten" "HELLO" (Bytes.to_string (FP.read s a));
      check_int "live" 2 (FP.page_count s);
      FP.close s)

let test_fp_reopen () =
  with_file "reopen" (fun path ->
      let s = FP.create ~path ~page_bytes:64 in
      let ids = List.init 5 (fun i -> FP.alloc s (Bytes.of_string (string_of_int i))) in
      FP.free s (List.nth ids 2);
      FP.close s;
      let s2 = FP.open_existing ~path in
      check_int "live after reopen" 4 (FP.page_count s2);
      List.iteri
        (fun i id ->
          if i <> 2 then
            Alcotest.(check string) "content" (string_of_int i)
              (Bytes.to_string (FP.read s2 id)))
        ids;
      (match FP.read s2 (List.nth ids 2) with
      | _ -> Alcotest.fail "freed page readable"
      | exception Invalid_argument _ -> ());
      FP.close s2)

let test_fp_free_reuse () =
  with_file "reuse" (fun path ->
      let s = FP.create ~path ~page_bytes:64 in
      let a = FP.alloc s (Bytes.of_string "a") in
      let _b = FP.alloc s (Bytes.of_string "b") in
      FP.free s a;
      let c = FP.alloc s (Bytes.of_string "c") in
      check_int "slot reused" a c;
      FP.close s)

let test_fp_overflow () =
  with_file "overflow" (fun path ->
      let s = FP.create ~path ~page_bytes:64 in
      (match FP.alloc s (Bytes.make 61 'x') with
      | _ -> Alcotest.fail "expected overflow"
      | exception Invalid_argument _ -> ());
      (* Exactly at capacity is fine. *)
      let id = FP.alloc s (Bytes.make 60 'x') in
      check_int "full page" 60 (Bytes.length (FP.read s id));
      FP.close s)

let test_fp_iter_order () =
  with_file "iter" (fun path ->
      let s = FP.create ~path ~page_bytes:64 in
      let _ = FP.alloc s (Bytes.of_string "1") in
      let b = FP.alloc s (Bytes.of_string "2") in
      let _ = FP.alloc s (Bytes.of_string "3") in
      FP.free s b;
      let seen = ref [] in
      FP.iter s (fun _ payload -> seen := Bytes.to_string payload :: !seen);
      Alcotest.(check (list string)) "live pages in order" [ "1"; "3" ] (List.rev !seen);
      FP.close s)

let test_fp_bad_magic () =
  with_file "magic" (fun path ->
      let oc = open_out path in
      output_string oc "this is not a page store";
      close_out oc;
      match FP.open_existing ~path with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure _ -> ())

let test_fp_closed () =
  with_file "closed" (fun path ->
      let s = FP.create ~path ~page_bytes:64 in
      FP.close s;
      match FP.alloc s (Bytes.of_string "x") with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())

(* {1 Index persistence} *)

let build_index n =
  let space = Z.Space.make ~dims:2 ~depth:8 in
  let rng = W.Rng.create ~seed:123 in
  let points = W.Datagen.uniform rng ~side:256 ~n ~dims:2 in
  Zindex.of_points space (Array.mapi (fun i p -> (p, i)) points)

let test_save_load_roundtrip () =
  with_file "index" (fun path ->
      let index = build_index 500 in
      let pages = Persist.save ~path ~encode:string_of_int index in
      check "some data pages" true (pages > 0);
      let loaded = Persist.load ~path ~decode:int_of_string () in
      check_int "length" 500 (Zindex.length loaded);
      check_int "capacity preserved" (Zindex.leaf_capacity index)
        (Zindex.leaf_capacity loaded);
      (* Queries agree. *)
      let rng = W.Rng.create ~seed:9 in
      for _ = 1 to 20 do
        let x1 = W.Rng.int rng 256 and x2 = W.Rng.int rng 256 in
        let y1 = W.Rng.int rng 256 and y2 = W.Rng.int rng 256 in
        let box =
          Sqp_geom.Box.make ~lo:[| min x1 x2; min y1 y2 |]
            ~hi:[| max x1 x2; max y1 y2 |]
        in
        let a, _ = Zindex.range_search index box in
        let b, _ = Zindex.range_search loaded box in
        if a <> b then Alcotest.fail "reloaded index answers differently"
      done)

let test_save_load_3d_and_strings () =
  with_file "index3d" (fun path ->
      let space = Z.Space.make ~dims:3 ~depth:4 in
      let rng = W.Rng.create ~seed:3 in
      let points = W.Datagen.uniform rng ~side:16 ~n:100 ~dims:3 in
      let index =
        Zindex.of_points ~leaf_capacity:8 space
          (Array.map (fun p -> (p, Printf.sprintf "p%d-%d-%d" p.(0) p.(1) p.(2))) points)
      in
      ignore (Persist.save ~path ~encode:Fun.id index);
      let loaded = Persist.load ~path ~decode:Fun.id () in
      check_int "length" 100 (Zindex.length loaded);
      check_int "capacity" 8 (Zindex.leaf_capacity loaded);
      Array.iter
        (fun p ->
          check "payload preserved" true
            (Zindex.find loaded p = Some (Printf.sprintf "p%d-%d-%d" p.(0) p.(1) p.(2))))
        points)

let test_save_empty_index () =
  with_file "empty" (fun path ->
      let space = Z.Space.make ~dims:2 ~depth:4 in
      let index = Zindex.create space in
      let pages = Persist.save ~path ~encode:string_of_int index in
      check_int "no data pages" 0 pages;
      let loaded = Persist.load ~path ~decode:int_of_string () in
      check_int "empty" 0 (Zindex.length loaded))

let () =
  Alcotest.run "persist"
    [
      ( "file pager",
        [
          Alcotest.test_case "roundtrip" `Quick test_fp_roundtrip;
          Alcotest.test_case "reopen" `Quick test_fp_reopen;
          Alcotest.test_case "free-slot reuse" `Quick test_fp_free_reuse;
          Alcotest.test_case "overflow" `Quick test_fp_overflow;
          Alcotest.test_case "iter order" `Quick test_fp_iter_order;
          Alcotest.test_case "bad magic" `Quick test_fp_bad_magic;
          Alcotest.test_case "closed handle" `Quick test_fp_closed;
        ] );
      ( "index persistence",
        [
          Alcotest.test_case "save/load roundtrip" `Quick test_save_load_roundtrip;
          Alcotest.test_case "3d + string payloads" `Quick test_save_load_3d_and_strings;
          Alcotest.test_case "empty index" `Quick test_save_empty_index;
        ] );
    ]
