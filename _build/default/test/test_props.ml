module P = Sqp_core.Props
module Z = Sqp_zorder
module G = Sqp_grid.Bitgrid
module W = Sqp_workload

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let space = Z.Space.make ~dims:2 ~depth:5

let box_els lo hi = Z.Decompose.decompose_box space ~lo ~hi

let test_area () =
  Alcotest.(check (float 0.001)) "box area" 35.0
    (P.area space (box_els [| 1; 2 |] [| 7; 6 |]));
  Alcotest.(check (float 0.001)) "empty" 0.0 (P.area space [])

let test_perimeter_rectangle () =
  (* A 7x5 rectangle has perimeter 24 regardless of its decomposition. *)
  check_int "rectangle" 24 (P.perimeter space (box_els [| 1; 2 |] [| 7; 6 |]));
  (* A single cell: 4. *)
  check_int "cell" 4 (P.perimeter space (box_els [| 3; 3 |] [| 3; 3 |]));
  (* The whole space: the outer border. *)
  check_int "whole space" (4 * 32) (P.perimeter space [ Z.Element.root ])

let test_perimeter_disjoint_boxes () =
  let els =
    List.sort Z.Element.compare
      (box_els [| 0; 0 |] [| 1; 1 |] @ box_els [| 4; 4 |] [| 5; 5 |])
  in
  check_int "two squares" 16 (P.perimeter space els)

let test_perimeter_vs_pixel_oracle () =
  for seed = 1 to 15 do
    let rng = W.Rng.create ~seed in
    let g = G.create ~side:32 in
    for _ = 1 to 4 + W.Rng.int rng 6 do
      let w = 1 + W.Rng.int rng 10 and h = 1 + W.Rng.int rng 10 in
      let x = W.Rng.int rng (32 - w) and y = W.Rng.int rng (32 - h) in
      for i = x to x + w - 1 do
        for j = y to y + h - 1 do
          G.set g i j true
        done
      done
    done;
    let els = G.to_elements space g in
    if P.perimeter space els <> G.perimeter g then
      Alcotest.failf "perimeter mismatch at seed %d" seed
  done

let test_centroid () =
  (match P.centroid space (box_els [| 2; 2 |] [| 5; 5 |]) with
  | Some (cx, cy) ->
      Alcotest.(check (float 0.001)) "cx" 3.5 cx;
      Alcotest.(check (float 0.001)) "cy" 3.5 cy
  | None -> Alcotest.fail "centroid expected");
  check "empty" true (P.centroid space [] = None)

let test_centroid_vs_pixel_oracle () =
  let rng = W.Rng.create ~seed:8 in
  let g = G.create ~side:32 in
  for _ = 1 to 30 do
    G.set g (W.Rng.int rng 32) (W.Rng.int rng 32) true
  done;
  let els = G.to_elements space g in
  match (P.centroid space els, G.centroid g) with
  | Some (ax, ay), Some (bx, by) ->
      check "cx" true (abs_float (ax -. bx) < 1e-9);
      check "cy" true (abs_float (ay -. by) < 1e-9)
  | _ -> Alcotest.fail "both should exist"

let test_component_areas () =
  let els =
    List.sort Z.Element.compare
      (box_els [| 0; 0 |] [| 3; 3 |] @ box_els [| 10; 10 |] [| 11; 11 |])
  in
  Alcotest.(check (array (float 0.001))) "descending areas" [| 16.0; 4.0 |]
    (P.component_areas space els)

let test_overlap_rejected () =
  let bad = [ Z.Bitstring.of_string "0"; Z.Bitstring.of_string "00" ] in
  match P.perimeter space bad with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* Property: perimeter of AG representation = pixel perimeter for random
   blobs. *)

let prop_perimeter =
  QCheck2.Test.make ~name:"element perimeter = pixel perimeter" ~count:60
    QCheck2.Gen.(list_size (int_bound 50) (pair (int_bound 31) (int_bound 31)))
    (fun cells ->
      let g = G.create ~side:32 in
      List.iter (fun (x, y) -> G.set g x y true) cells;
      P.perimeter space (G.to_elements space g) = G.perimeter g)

let () =
  Alcotest.run "props"
    [
      ( "unit",
        [
          Alcotest.test_case "area" `Quick test_area;
          Alcotest.test_case "perimeter of rectangles" `Quick test_perimeter_rectangle;
          Alcotest.test_case "perimeter of disjoint boxes" `Quick test_perimeter_disjoint_boxes;
          Alcotest.test_case "perimeter vs pixels" `Quick test_perimeter_vs_pixel_oracle;
          Alcotest.test_case "centroid" `Quick test_centroid;
          Alcotest.test_case "centroid vs pixels" `Quick test_centroid_vs_pixel_oracle;
          Alcotest.test_case "component areas" `Quick test_component_areas;
          Alcotest.test_case "overlap rejected" `Quick test_overlap_rejected;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_perimeter ]);
    ]
