module RS = Sqp_core.Range_search
module Z = Sqp_zorder
module W = Sqp_workload

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let space = Z.Space.make ~dims:2 ~depth:6

let make_points ?(n = 200) ?(seed = 1) () =
  let rng = W.Rng.create ~seed in
  Array.mapi (fun i p -> (p, i)) (W.Datagen.uniform rng ~side:64 ~n ~dims:2)

let brute pts box =
  Array.to_list pts
  |> List.filter (fun (p, _) -> Sqp_geom.Box.contains_point box p)
  |> List.sort (fun (a, _) (b, _) ->
         compare (Z.Interleave.rank space a) (Z.Interleave.rank space b))

let test_prepare () =
  let prep = RS.prepare space (make_points ()) in
  check_int "length" 200 (RS.prepared_length prep)

let test_plain_and_skip_agree_with_brute () =
  let pts = make_points () in
  let prep = RS.prepare space pts in
  let rng = W.Rng.create ~seed:77 in
  for _ = 1 to 60 do
    let x1 = W.Rng.int rng 64 and x2 = W.Rng.int rng 64 in
    let y1 = W.Rng.int rng 64 and y2 = W.Rng.int rng 64 in
    let box =
      Sqp_geom.Box.make ~lo:[| min x1 x2; min y1 y2 |] ~hi:[| max x1 x2; max y1 y2 |]
    in
    let expected = brute pts box in
    let plain, _ = RS.search_plain prep box in
    let skip, _ = RS.search_skip prep box in
    if plain <> expected then Alcotest.fail "plain mismatch";
    if skip <> expected then Alcotest.fail "skip mismatch"
  done

let test_skip_does_less_work_on_small_queries () =
  let pts = make_points ~n:1000 () in
  let prep = RS.prepare space pts in
  let box = Sqp_geom.Box.of_ranges [ (2, 6); (50, 55) ] in
  let _, plain = RS.search_plain prep box in
  let _, skip = RS.search_skip prep box in
  check "skips points" true (skip.RS.point_steps < plain.RS.point_steps);
  check "uses jumps" true (skip.RS.point_jumps + skip.RS.element_jumps > 0)

let test_empty_inputs () =
  let prep = RS.prepare space [||] in
  let box = Sqp_geom.Box.of_ranges [ (0, 10); (0, 10) ] in
  check "no points" true (fst (RS.search_skip prep box) = []);
  check "no points plain" true (fst (RS.search_plain prep box) = [])

let test_out_of_grid_box () =
  let prep = RS.prepare space (make_points ()) in
  let box = Sqp_geom.Box.of_ranges [ (100, 200); (100, 200) ] in
  check "nothing" true (fst (RS.search_skip prep box) = []);
  (* Partially outside is clipped. *)
  let box2 = Sqp_geom.Box.of_ranges [ (-10, 63); (-10, 63) ] in
  check_int "clipped to whole grid" 200 (List.length (fst (RS.search_skip prep box2)))

let test_duplicate_points () =
  let pts = [| ([| 5; 5 |], 0); ([| 5; 5 |], 1); ([| 6; 6 |], 2) |] in
  let prep = RS.prepare space pts in
  let box = Sqp_geom.Box.of_ranges [ (5, 5); (5, 5) ] in
  check_int "both duplicates found" 2 (List.length (fst (RS.search_skip prep box)))

let test_trace_reports_matches () =
  let pts = [| ([| 2; 1 |], 0); ([| 6; 6 |], 1) |] in
  let prep = RS.prepare space pts in
  let box = Sqp_geom.Box.of_ranges [ (1, 3); (0, 4) ] in
  let results, trace = RS.search_trace prep box in
  check_int "one match" 1 (List.length results);
  check "trace nonempty" true (List.length trace >= 2);
  check "reports the point" true
    (List.exists
       (fun s ->
         String.length s.RS.description >= 6
         && String.sub s.RS.description 0 5 = "point"
         && String.length s.RS.description > 0)
       trace)

let test_counters_zero_on_empty () =
  let prep = RS.prepare space [||] in
  let _, c = RS.search_skip prep (Sqp_geom.Box.of_ranges [ (200, 300); (0, 1) ]) in
  check_int "no comparisons" 0 c.RS.comparisons

(* Property: agreement with brute force over random configurations. *)

let prop_agreement =
  QCheck2.Test.make ~name:"plain = skip = brute force" ~count:60
    QCheck2.Gen.(
      tup3 (int_range 0 10000)
        (pair (int_bound 63) (int_bound 63))
        (pair (int_bound 63) (int_bound 63)))
    (fun (seed, (x1, y1), (x2, y2)) ->
      let pts = make_points ~n:120 ~seed () in
      let prep = RS.prepare space pts in
      let box =
        Sqp_geom.Box.make ~lo:[| min x1 x2; min y1 y2 |] ~hi:[| max x1 x2; max y1 y2 |]
      in
      let expected = brute pts box in
      fst (RS.search_plain prep box) = expected
      && fst (RS.search_skip prep box) = expected)

let () =
  Alcotest.run "range_search"
    [
      ( "unit",
        [
          Alcotest.test_case "prepare" `Quick test_prepare;
          Alcotest.test_case "agrees with brute force" `Quick
            test_plain_and_skip_agree_with_brute;
          Alcotest.test_case "skip saves work" `Quick test_skip_does_less_work_on_small_queries;
          Alcotest.test_case "empty inputs" `Quick test_empty_inputs;
          Alcotest.test_case "out-of-grid box" `Quick test_out_of_grid_box;
          Alcotest.test_case "duplicate points" `Quick test_duplicate_points;
          Alcotest.test_case "trace" `Quick test_trace_reports_matches;
          Alcotest.test_case "counters on empty" `Quick test_counters_zero_on_empty;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_agreement ]);
    ]
