module T = Sqp_report.Table
module F = Sqp_report.Figure
module Z = Sqp_zorder

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let test_table_render () =
  let out =
    T.render
      ~columns:[ T.column ~align:T.Left "name"; T.column "n" ]
      ~rows:[ [ "alpha"; "1" ]; [ "b"; "22" ] ]
  in
  check_str "layout" "name    n\n-----  --\nalpha   1\nb      22\n" out

let test_table_arity_check () =
  match
    T.render ~columns:[ T.column "a" ] ~rows:[ [ "1"; "2" ] ]
  with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_formatters () =
  check_str "int" "42" (T.fmt_int 42);
  check_str "float" "3.14" (T.fmt_float 3.14159);
  check_str "float decimals" "3.1416" (T.fmt_float ~decimals:4 3.14159);
  check_str "pct" "12.5%" (T.fmt_pct 0.125)

let test_grid_orientation () =
  (* y = 0 must be the bottom row. *)
  let s = F.grid ~side:2 (fun x y -> if x = 0 && y = 0 then 'o' else '.') in
  check_str "origin at bottom left" "..\no.\n" s

let test_box_query_figure () =
  let space = Z.Space.make ~dims:2 ~depth:3 in
  let box = Sqp_geom.Box.of_ranges [ (1, 3); (0, 4) ] in
  let s = F.box_query space box ~points:[ [| 2; 1 |]; [| 6; 6 |] ] in
  check "query region drawn" true (String.contains s '+');
  check "inside point marked" true (String.contains s '@');
  check "outside point marked" true (String.contains s '*')

let test_decomposition_figure () =
  let space = Z.Space.make ~dims:2 ~depth:3 in
  let els = Z.Decompose.decompose_box space ~lo:[| 1; 0 |] ~hi:[| 3; 4 |] in
  let s = F.decomposition space els in
  (* 6 elements -> letters a..f present, empty cells dotted. *)
  List.iter
    (fun c -> check (Printf.sprintf "letter %c" c) true (String.contains s c))
    [ 'a'; 'b'; 'c'; 'd'; 'e'; 'f' ];
  check "uncovered" true (String.contains s '.');
  let labels = F.decomposition_labels space els in
  check "labels mention z" true (String.length labels > 0)

let test_zcurve_ranks () =
  let s = F.zcurve_ranks (Z.Space.make ~dims:2 ~depth:1) in
  (* 2x2 grid: rows printed top (y=1: 1 3) then bottom (y=0: 0 2). *)
  check_str "2x2 ranks" "1 3\n0 2\n" s

let test_zcurve_path () =
  let s = F.zcurve_path (Z.Space.make ~dims:2 ~depth:1) in
  check "points drawn" true (String.contains s 'o');
  check "diagonal step" true (String.contains s '\\' || String.contains s '/')

let test_page_map () =
  let s = F.page_map ~side:4 [ (0, [ [| 0; 0 |]; [| 1; 0 |] ]); (1, [ [| 3; 3 |] ]) ] in
  check "page a" true (String.contains s 'a');
  check "page b" true (String.contains s 'b');
  check "empty cells" true (String.contains s '.')

let () =
  Alcotest.run "report"
    [
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity check" `Quick test_table_arity_check;
          Alcotest.test_case "formatters" `Quick test_formatters;
        ] );
      ( "figure",
        [
          Alcotest.test_case "grid orientation" `Quick test_grid_orientation;
          Alcotest.test_case "box query (fig 1)" `Quick test_box_query_figure;
          Alcotest.test_case "decomposition (fig 2)" `Quick test_decomposition_figure;
          Alcotest.test_case "z curve ranks (fig 4)" `Quick test_zcurve_ranks;
          Alcotest.test_case "z curve path" `Quick test_zcurve_path;
          Alcotest.test_case "page map (fig 6)" `Quick test_page_map;
        ] );
    ]
