(* Integration smoke tests: every report function runs to completion on a
   reduced configuration.  Output content is pinned elsewhere (figures in
   test_report.ml, numbers in per-module tests); here we exercise the
   full printing paths end to end. *)

module Reports = Sqp_core.Reports
module E = Sqp_core.Experiment
module W = Sqp_workload

let check = Alcotest.(check bool)

(* Run [f] with stdout captured so test output stays readable. *)
let quietly f =
  let dev_null = open_out (if Sys.win32 then "NUL" else "/dev/null") in
  let saved = Unix.dup Unix.stdout in
  flush stdout;
  Unix.dup2 (Unix.descr_of_out_channel dev_null) Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      close_out dev_null)
    f

let small =
  {
    (E.default W.Datagen.Uniform) with
    E.n_points = 300;
    depth = 7;
    locations = 2;
    volumes = [ 0.0625; 0.25 ];
    aspects = [ 0.5; 1.0; 2.0 ];
  }

let run name f = Alcotest.test_case name `Quick (fun () -> quietly f; check name true true)

let () =
  Alcotest.run "reports"
    [
      ( "figures",
        [
          run "figure 1" Reports.print_figure1;
          run "figure 2" Reports.print_figure2;
          run "figure 3" Reports.print_figure3;
          run "figure 4" Reports.print_figure4;
          run "figure 5" Reports.print_figure5;
          run "figure 6 (all datasets)" (fun () -> Reports.print_figure6 ());
        ] );
      ( "tables",
        [
          run "range experiment" (fun () ->
              Reports.print_range_experiment ~config:small W.Datagen.Uniform);
          run "range experiment D" (fun () ->
              Reports.print_range_experiment ~config:small W.Datagen.Diagonal);
          run "structure comparison" (fun () ->
              Reports.print_structure_comparison ~config:small W.Datagen.Clustered);
          run "strategy comparison" (fun () ->
              Reports.print_strategy_comparison ~config:small W.Datagen.Uniform);
          run "buffer policies" (fun () ->
              Reports.print_buffer_policies ~config:small W.Datagen.Uniform);
          run "fill factor" (fun () ->
              Reports.print_fill_factor ~config:small W.Datagen.Uniform);
          run "partial match" (fun () ->
              (* depth 7 holds only 16384 cells; use the default depth. *)
              Reports.print_partial_match
                ~config:{ small with E.depth = 10; locations = 3 }
                ());
          run "euv" Reports.print_euv_table;
          run "coarsening" Reports.print_coarsening;
          run "proximity" Reports.print_proximity;
          run "spatial join" Reports.print_spatial_join;
          run "object join" Reports.print_object_join;
          run "overlay scaling" Reports.print_overlay_scaling;
          run "ccl" Reports.print_ccl;
          run "interference" Reports.print_interference;
          run "curve comparison" Reports.print_curve_comparison;
        ] );
    ]
