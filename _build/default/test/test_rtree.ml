module R = Sqp_kdtree.Rtree
module W = Sqp_workload

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let expect_ok t =
  match R.check_invariants t with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invariant violation: %s" m

let random_points ?(n = 400) ?(seed = 3) ?(side = 256) () =
  let rng = W.Rng.create ~seed in
  Array.mapi (fun i p -> (p, i)) (W.Datagen.uniform rng ~side ~n ~dims:2)

let brute pts box =
  Array.to_list pts
  |> List.filter (fun (p, _) -> Sqp_geom.Box.contains_point box p)
  |> List.sort compare

let test_empty () =
  let t = R.create () in
  check_int "length" 0 (R.length t);
  check_int "height" 1 (R.height t);
  expect_ok t;
  let r, stats = R.range_search t (Sqp_geom.Box.of_ranges [ (0, 10); (0, 10) ]) in
  check_int "no results" 0 (List.length r);
  check_int "no pages" 0 stats.R.data_pages

let test_build_invariants () =
  let t = R.create ~page_capacity:8 () in
  Array.iter
    (fun (p, v) ->
      R.insert t p v;
      expect_ok t)
    (random_points ~n:300 ());
  check_int "length" 300 (R.length t);
  check "grew" true (R.height t >= 2);
  check "leaves" true (R.leaf_count t >= 300 / 8)

let test_range_matches_brute_force () =
  let pts = random_points () in
  let t = R.of_points ~page_capacity:10 pts in
  expect_ok t;
  let rng = W.Rng.create ~seed:4 in
  for _ = 1 to 60 do
    let x1 = W.Rng.int rng 256 and x2 = W.Rng.int rng 256 in
    let y1 = W.Rng.int rng 256 and y2 = W.Rng.int rng 256 in
    let box =
      Sqp_geom.Box.make ~lo:[| min x1 x2; min y1 y2 |] ~hi:[| max x1 x2; max y1 y2 |]
    in
    let got, stats = R.range_search t box in
    if List.sort compare got <> brute pts box then Alcotest.fail "range mismatch";
    check "pages bounded" true (stats.R.data_pages <= R.leaf_count t)
  done

let test_small_query_cheap () =
  let t = R.of_points ~page_capacity:20 (random_points ~n:1000 ~seed:8 ()) in
  let _, small = R.range_search t (Sqp_geom.Box.of_ranges [ (5, 20); (5, 20) ]) in
  check "selective" true (small.R.data_pages * 5 < R.leaf_count t)

let test_duplicates () =
  let t = R.create ~page_capacity:4 () in
  for v = 0 to 19 do
    R.insert t [| 7; 7 |] v
  done;
  expect_ok t;
  let got, _ = R.range_search t (Sqp_geom.Box.of_ranges [ (7, 7); (7, 7) ]) in
  check_int "all duplicates" 20 (List.length got)

let test_clustered_data () =
  let rng = W.Rng.create ~seed:6 in
  let pts =
    Array.mapi (fun i p -> (p, i))
      (W.Datagen.clustered rng ~side:256 ~clusters:8 ~per_cluster:40 ~spread:4.0)
  in
  let t = R.of_points ~page_capacity:10 pts in
  expect_ok t;
  let box = Sqp_geom.Box.of_ranges [ (0, 127); (0, 127) ] in
  let got, _ = R.range_search t box in
  check "matches brute force" true (List.sort compare got = brute pts box)

let test_str_bulk_load () =
  let pts = random_points ~n:500 ~seed:10 () in
  let t = R.of_points_str ~page_capacity:20 pts in
  check_int "length" 500 (R.length t);
  (* Full packing: exactly ceil(500/20) = 25 leaves. *)
  check_int "packed leaves" 25 (R.leaf_count t);
  let rng = W.Rng.create ~seed:11 in
  for _ = 1 to 40 do
    let x1 = W.Rng.int rng 256 and x2 = W.Rng.int rng 256 in
    let y1 = W.Rng.int rng 256 and y2 = W.Rng.int rng 256 in
    let box =
      Sqp_geom.Box.make ~lo:[| min x1 x2; min y1 y2 |] ~hi:[| max x1 x2; max y1 y2 |]
    in
    let got, _ = R.range_search t box in
    if List.sort compare got <> brute pts box then Alcotest.fail "STR range mismatch"
  done

let test_str_beats_insertion_on_pages () =
  let pts = random_points ~n:2000 ~seed:12 () in
  let dynamic = R.of_points ~page_capacity:20 pts in
  let packed = R.of_points_str ~page_capacity:20 pts in
  let box = Sqp_geom.Box.of_ranges [ (40, 140); (40, 140) ] in
  let _, ds = R.range_search dynamic box in
  let _, ps = R.range_search packed box in
  check "STR touches fewer leaves" true (ps.R.data_pages <= ds.R.data_pages)

let test_invalid () =
  let t = R.create () in
  (match R.insert t [| 1 |] 0 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  match R.create ~page_capacity:2 () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let prop_model =
  QCheck2.Test.make ~name:"r-tree = brute force (random builds)" ~count:30
    QCheck2.Gen.(
      pair (int_range 0 10000)
        (pair (pair (int_bound 63) (int_bound 63)) (pair (int_bound 63) (int_bound 63))))
    (fun (seed, ((x1, y1), (x2, y2))) ->
      let pts = random_points ~n:120 ~seed ~side:64 () in
      let t = R.of_points ~page_capacity:6 pts in
      let box =
        Sqp_geom.Box.make ~lo:[| min x1 x2; min y1 y2 |] ~hi:[| max x1 x2; max y1 y2 |]
      in
      R.check_invariants t = Ok ()
      && List.sort compare (fst (R.range_search t box)) = brute pts box)

let () =
  Alcotest.run "rtree"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "build invariants" `Quick test_build_invariants;
          Alcotest.test_case "range = brute force" `Quick test_range_matches_brute_force;
          Alcotest.test_case "small queries cheap" `Quick test_small_query_cheap;
          Alcotest.test_case "duplicates" `Quick test_duplicates;
          Alcotest.test_case "clustered data" `Quick test_clustered_data;
          Alcotest.test_case "STR bulk load" `Quick test_str_bulk_load;
          Alcotest.test_case "STR vs insertion" `Quick test_str_beats_insertion_on_pages;
          Alcotest.test_case "invalid" `Quick test_invalid;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_model ]);
    ]
