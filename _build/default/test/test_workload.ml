module W = Sqp_workload

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* {1 Rng} *)

let test_rng_deterministic () =
  let a = W.Rng.create ~seed:42 and b = W.Rng.create ~seed:42 in
  for _ = 1 to 100 do
    check "same stream" true (W.Rng.next a = W.Rng.next b)
  done;
  let c = W.Rng.create ~seed:43 in
  check "different seed" true (W.Rng.next (W.Rng.create ~seed:42) <> W.Rng.next c)

let test_rng_bounds () =
  let rng = W.Rng.create ~seed:1 in
  for _ = 1 to 1000 do
    let v = W.Rng.int rng 10 in
    check "in range" true (v >= 0 && v < 10);
    let w = W.Rng.int_in rng (-5) 5 in
    check "int_in range" true (w >= -5 && w <= 5);
    let f = W.Rng.float rng in
    check "float range" true (f >= 0.0 && f < 1.0)
  done

let test_rng_invalid () =
  let rng = W.Rng.create ~seed:1 in
  (match W.Rng.int rng 0 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  match W.Rng.int_in rng 5 4 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_rng_uniformity () =
  let rng = W.Rng.create ~seed:5 in
  let buckets = Array.make 10 0 in
  let n = 20000 in
  for _ = 1 to n do
    let v = W.Rng.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter
    (fun c ->
      (* Expected 2000 per bucket; allow +-15%. *)
      check "roughly uniform" true (c > 1700 && c < 2300))
    buckets

let test_rng_gaussian_moments () =
  let rng = W.Rng.create ~seed:9 in
  let n = 20000 in
  let sum = ref 0.0 and sum2 = ref 0.0 in
  for _ = 1 to n do
    let g = W.Rng.gaussian rng in
    sum := !sum +. g;
    sum2 := !sum2 +. (g *. g)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sum2 /. float_of_int n) -. (mean *. mean) in
  check "mean near 0" true (abs_float mean < 0.05);
  check "variance near 1" true (abs_float (var -. 1.0) < 0.1)

let test_rng_shuffle () =
  let rng = W.Rng.create ~seed:3 in
  let a = Array.init 20 Fun.id in
  W.Rng.shuffle rng a;
  check "permutation" true
    (List.sort compare (Array.to_list a) = List.init 20 Fun.id);
  check "actually moved" true (a <> Array.init 20 Fun.id)

let test_rng_split_independent () =
  let rng = W.Rng.create ~seed:11 in
  let child = W.Rng.split rng in
  check "distinct streams" true (W.Rng.next rng <> W.Rng.next child)

(* {1 Datagen} *)

let all_distinct pts =
  let tbl = Hashtbl.create 64 in
  Array.for_all
    (fun p ->
      let k = Array.to_list p in
      if Hashtbl.mem tbl k then false
      else begin
        Hashtbl.replace tbl k ();
        true
      end)
    pts

let in_grid side pts =
  Array.for_all (fun p -> Array.for_all (fun c -> c >= 0 && c < side) p) pts

let test_uniform () =
  let rng = W.Rng.create ~seed:1 in
  let pts = W.Datagen.uniform rng ~side:64 ~n:500 ~dims:2 in
  check_int "count" 500 (Array.length pts);
  check "distinct" true (all_distinct pts);
  check "in grid" true (in_grid 64 pts)

let test_uniform_3d () =
  let rng = W.Rng.create ~seed:1 in
  let pts = W.Datagen.uniform rng ~side:16 ~n:200 ~dims:3 in
  check "3d points" true (Array.for_all (fun p -> Array.length p = 3) pts);
  check "distinct" true (all_distinct pts)

let test_uniform_overfull () =
  let rng = W.Rng.create ~seed:1 in
  match W.Datagen.uniform rng ~side:4 ~n:17 ~dims:2 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_clustered () =
  let rng = W.Rng.create ~seed:2 in
  let pts = W.Datagen.clustered rng ~side:256 ~clusters:10 ~per_cluster:50 ~spread:4.0 in
  check_int "count" 500 (Array.length pts);
  check "distinct" true (all_distinct pts);
  check "in grid" true (in_grid 256 pts)

let test_diagonal () =
  let rng = W.Rng.create ~seed:3 in
  let pts = W.Datagen.diagonal rng ~side:256 ~n:300 ~jitter:4 in
  check_int "count" 300 (Array.length pts);
  check "near the diagonal" true
    (Array.for_all (fun p -> abs (p.(0) - p.(1)) <= 4) pts)

let test_generate_paper_datasets () =
  List.iter
    (fun ds ->
      let rng = W.Rng.create ~seed:4 in
      let pts = W.Datagen.generate rng ds ~side:1024 ~n:5000 in
      check "5000 points" true (Array.length pts = 5000);
      check "distinct" true (all_distinct pts))
    W.Datagen.[ Uniform; Clustered; Diagonal ]

let test_dataset_names () =
  Alcotest.(check string) "U" "U" (W.Datagen.dataset_name W.Datagen.Uniform);
  Alcotest.(check string) "C" "C" (W.Datagen.dataset_name W.Datagen.Clustered);
  Alcotest.(check string) "D" "D" (W.Datagen.dataset_name W.Datagen.Diagonal)

let test_clustered_is_clustered () =
  (* Clustered data has lower mean nearest-neighbour distance than uniform. *)
  let nn_mean pts =
    let n = Array.length pts in
    let total = ref 0.0 in
    for i = 0 to n - 1 do
      let best = ref max_int in
      for j = 0 to n - 1 do
        if i <> j then
          best := min !best (Sqp_geom.Point.euclidean_sq pts.(i) pts.(j))
      done;
      total := !total +. sqrt (float_of_int !best)
    done;
    !total /. float_of_int n
  in
  let ru = W.Rng.create ~seed:5 and rc = W.Rng.create ~seed:5 in
  let u = W.Datagen.uniform ru ~side:512 ~n:300 ~dims:2 in
  let c = W.Datagen.clustered rc ~side:512 ~clusters:10 ~per_cluster:30 ~spread:5.0 in
  check "clusters tighter" true (nn_mean c < nn_mean u)

(* {1 Querygen} *)

let test_extents () =
  let w, h = W.Querygen.extents_of_spec ~side:256 { W.Querygen.volume_fraction = 0.25; aspect = 1.0 } in
  check_int "square width" 128 w;
  check_int "square height" 128 h;
  let w2, h2 = W.Querygen.extents_of_spec ~side:256 { W.Querygen.volume_fraction = 0.25; aspect = 4.0 } in
  check "wide" true (w2 > h2);
  check "area approx" true (abs ((w2 * h2) - 16384) < 2048)

let test_extents_clamped () =
  let w, h = W.Querygen.extents_of_spec ~side:64 { W.Querygen.volume_fraction = 1.0; aspect = 16.0 } in
  check "clamped to side" true (w <= 64 && h <= 64 && w >= 1 && h >= 1)

let test_extents_invalid () =
  List.iter
    (fun spec ->
      match W.Querygen.extents_of_spec ~side:64 spec with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())
    [
      { W.Querygen.volume_fraction = 0.0; aspect = 1.0 };
      { W.Querygen.volume_fraction = 1.5; aspect = 1.0 };
      { W.Querygen.volume_fraction = 0.5; aspect = 0.0 };
    ]

let test_random_box_inside () =
  let rng = W.Rng.create ~seed:6 in
  for _ = 1 to 200 do
    let spec = { W.Querygen.volume_fraction = 0.1; aspect = 2.0 } in
    let box = W.Querygen.random_box rng ~side:128 spec in
    let lo = Sqp_geom.Box.lo box and hi = Sqp_geom.Box.hi box in
    check "inside grid" true
      (lo.(0) >= 0 && lo.(1) >= 0 && hi.(0) < 128 && hi.(1) < 128)
  done

let test_partial_match_spec () =
  let rng = W.Rng.create ~seed:7 in
  let spec = W.Querygen.partial_match_spec rng ~side:64 ~dims:4 ~restricted:2 in
  check_int "arity" 4 (Array.length spec);
  check_int "pinned" 2
    (Array.fold_left (fun n s -> if s <> None then n + 1 else n) 0 spec);
  Array.iter
    (function Some v -> check "pinned value in grid" true (v >= 0 && v < 64) | None -> ())
    spec

let () =
  Alcotest.run "workload"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "invalid" `Quick test_rng_invalid;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
        ] );
      ( "datagen",
        [
          Alcotest.test_case "uniform" `Quick test_uniform;
          Alcotest.test_case "uniform 3d" `Quick test_uniform_3d;
          Alcotest.test_case "overfull grid" `Quick test_uniform_overfull;
          Alcotest.test_case "clustered" `Quick test_clustered;
          Alcotest.test_case "diagonal" `Quick test_diagonal;
          Alcotest.test_case "paper datasets" `Quick test_generate_paper_datasets;
          Alcotest.test_case "names" `Quick test_dataset_names;
          Alcotest.test_case "clustering is real" `Quick test_clustered_is_clustered;
        ] );
      ( "querygen",
        [
          Alcotest.test_case "extents" `Quick test_extents;
          Alcotest.test_case "extents clamped" `Quick test_extents_clamped;
          Alcotest.test_case "extents invalid" `Quick test_extents_invalid;
          Alcotest.test_case "random box inside grid" `Quick test_random_box_inside;
          Alcotest.test_case "partial match spec" `Quick test_partial_match_spec;
        ] );
    ]
