module Z = Sqp_zorder

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let s8 = Z.Space.make ~dims:2 ~depth:8
let s10 = Z.Space.make ~dims:2 ~depth:10

let test_element_count_tiny () =
  (* 1x1 box at origin = one pixel element. *)
  check_int "1x1" 1 (Z.Zmath.element_count s8 ~extents:[| 1; 1 |]);
  (* Whole space = the root. *)
  check_int "whole" 1 (Z.Zmath.element_count s8 ~extents:[| 256; 256 |]);
  (* Half space. *)
  check_int "half" 1 (Z.Zmath.element_count s8 ~extents:[| 128; 256 |])

let test_element_count_powers () =
  (* Power-of-two squares at the origin are single elements. *)
  List.iter
    (fun side -> check_int "pow2 square" 1 (Z.Zmath.element_count s8 ~extents:[| side; side |]))
    [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ]

let test_cyclicity () =
  (* E(U,V) = E(2U,2V) — the paper's Section 5.1 fact. *)
  List.iter
    (fun (u, v) ->
      check_int
        (Printf.sprintf "E(%d,%d) = E(%d,%d)" u v (2 * u) (2 * v))
        (Z.Zmath.element_count s10 ~extents:[| u; v |])
        (Z.Zmath.element_count s10 ~extents:[| 2 * u; 2 * v |]))
    [ (3, 5); (7, 11); (100, 100); (127, 1); (85, 170) ]

let test_border_sensitivity () =
  (* 255x255 decomposes into many elements; 256x256 into one. *)
  let e255 = Z.Zmath.element_count s10 ~extents:[| 255; 255 |] in
  let e256 = Z.Zmath.element_count s10 ~extents:[| 256; 256 |] in
  check "255 >> 256" true (e255 > 50 * e256)

let test_bit_spread () =
  check_int "12 = 1100" 2 (Z.Zmath.bit_spread [| 12 |]);
  check_int "1" 1 (Z.Zmath.bit_spread [| 1 |]);
  check_int "0" 0 (Z.Zmath.bit_spread [| 0 |]);
  check_int "255" 8 (Z.Zmath.bit_spread [| 255 |]);
  check_int "256" 1 (Z.Zmath.bit_spread [| 256 |]);
  check_int "or of pair" 8 (Z.Zmath.bit_spread [| 0x80; 1 |])

let test_coarsen_extent () =
  (* The paper's example: U = 01101101, m = 4 -> U' = 01110000. *)
  check_int "paper example" 0b01110000 (Z.Zmath.coarsen_extent 0b01101101 ~m:4);
  check_int "already aligned" 16 (Z.Zmath.coarsen_extent 16 ~m:4);
  check_int "m=0" 13 (Z.Zmath.coarsen_extent 13 ~m:0)

let test_coarsening_monotone () =
  let reports = Z.Zmath.coarsening_sweep s8 ~extents:[| 173; 107 |] in
  check_int "rows" 9 (List.length reports);
  (* Area ratio grows with m; element count at max m is 1 (whole rounded
     block is a single aligned square or the full space). *)
  let rec check_ratio prev = function
    | [] -> ()
    | (r : Z.Zmath.coarsening_report) :: rest ->
        check "ratio nondecreasing" true (r.area_ratio >= prev -. 1e-9);
        check "ratio >= 1" true (r.area_ratio >= 1.0);
        check_ratio r.area_ratio rest
  in
  check_ratio 1.0 reports;
  let last = List.nth reports 8 in
  check_int "fully coarse" 1 last.elements;
  (* Coarsening should dramatically reduce elements vs m = 0. *)
  let first = List.hd reports in
  check "reduction" true (first.elements > 10 * last.elements)

let test_proximity_table () =
  let rng =
    let r = Sqp_workload.Rng.create ~seed:7 in
    fun n -> Sqp_workload.Rng.int r n
  in
  let rows =
    Z.Zmath.proximity_table ~rng s8 ~distances:[ 1; 16 ] ~samples:500 ~pages:100
  in
  match rows with
  | [ near; far ] ->
      check "near pairs closer in rank" true
        (near.Z.Zmath.median_rank_distance <= far.Z.Zmath.median_rank_distance);
      check "near more often within page" true
        (near.Z.Zmath.within_page >= far.Z.Zmath.within_page);
      check "fractions in [0,1]" true
        (near.Z.Zmath.within_page >= 0.0 && near.Z.Zmath.within_page <= 1.0)
  | _ -> Alcotest.fail "expected two rows"

let test_predicted_range_pages () =
  (* v*N behaviour: doubling the area of the query roughly doubles the
     prediction for large queries. *)
  let pred q =
    Z.Zmath.predicted_range_pages ~pages_per_block:6.0 ~n_pages:250 ~side:1024
      ~query_extents:[| q; q |] ()
  in
  check "monotone" true (pred 512 > pred 256 && pred 256 > pred 128);
  let vn = 0.25 *. 250.0 in
  check "close to vN for big squares" true (pred 512 >= vn && pred 512 < 3.0 *. vn);
  (* Shape sensitivity: same area, long-narrow costs more. *)
  let narrow =
    Z.Zmath.predicted_range_pages ~pages_per_block:6.0 ~n_pages:250 ~side:1024
      ~query_extents:[| 64; 1024 |] ()
  in
  check "narrow > square" true (narrow > pred 256)

let test_predicted_partial_match () =
  Alcotest.(check (float 0.001)) "sqrt N" 50.0
    (Z.Zmath.predicted_partial_match_pages ~n_pages:2500 ~dims:2 ~restricted:1);
  Alcotest.(check (float 0.001)) "t=0 gives N" 2500.0
    (Z.Zmath.predicted_partial_match_pages ~n_pages:2500 ~dims:2 ~restricted:0)

let test_analytic_matches_decomposition () =
  List.iter
    (fun (u, v) ->
      check_int
        (Printf.sprintf "analytic E(%d,%d)" u v)
        (Z.Zmath.element_count s10 ~extents:[| u; v |])
        (Z.Zmath.element_count_analytic s10 ~extents:[| u; v |]))
    [ (3, 5); (100, 100); (255, 255); (256, 256); (1, 1000); (1024, 1024); (173, 107) ]

let test_analytic_3d () =
  let s3 = Z.Space.make ~dims:3 ~depth:5 in
  List.iter
    (fun extents ->
      check_int "3d analytic"
        (Z.Zmath.element_count s3 ~extents)
        (Z.Zmath.element_count_analytic s3 ~extents))
    [ [| 5; 9; 21 |]; [| 32; 32; 32 |]; [| 1; 1; 1 |]; [| 31; 17; 2 |] ]

(* Property: cyclicity over random extents. *)

let prop_analytic =
  QCheck2.Test.make ~name:"analytic count = decomposition count" ~count:200
    QCheck2.Gen.(pair (int_range 1 256) (int_range 1 256))
    (fun (u, v) ->
      Z.Zmath.element_count s8 ~extents:[| u; v |]
      = Z.Zmath.element_count_analytic s8 ~extents:[| u; v |])

let prop_cyclic =
  QCheck2.Test.make ~name:"E(U,V) = E(2U,2V)" ~count:100
    QCheck2.Gen.(pair (int_range 1 127) (int_range 1 127))
    (fun (u, v) ->
      Z.Zmath.element_count s8 ~extents:[| u; v |]
      = Z.Zmath.element_count s8 ~extents:[| 2 * u; 2 * v |])

let prop_coarsen_extent =
  QCheck2.Test.make ~name:"coarsen_extent: smallest aligned >= u" ~count:300
    QCheck2.Gen.(pair (int_bound 100000) (int_bound 16))
    (fun (u, m) ->
      let u' = Z.Zmath.coarsen_extent u ~m in
      u' >= u && u' land ((1 lsl m) - 1) = 0 && u' - u < 1 lsl m)

let prop_coarsen_fewer_elements =
  (* With all trailing bits cleared, the decomposition at the origin can
     only shrink or stay equal when measured against a full coarsening. *)
  QCheck2.Test.make ~name:"full coarsening yields at most as many elements"
    ~count:100
    QCheck2.Gen.(pair (int_range 1 255) (int_range 1 255))
    (fun (u, v) ->
      let e = Z.Zmath.element_count s8 ~extents:[| u; v |] in
      let coarse = Z.Zmath.coarsen s8 ~extents:[| u; v |] ~m:8 in
      let e' = Z.Zmath.element_count s8 ~extents:coarse in
      e' <= e)

let () =
  Alcotest.run "zmath"
    [
      ( "unit",
        [
          Alcotest.test_case "element_count tiny" `Quick test_element_count_tiny;
          Alcotest.test_case "element_count powers" `Quick test_element_count_powers;
          Alcotest.test_case "cyclicity" `Quick test_cyclicity;
          Alcotest.test_case "analytic recurrence" `Quick test_analytic_matches_decomposition;
          Alcotest.test_case "analytic recurrence 3d" `Quick test_analytic_3d;
          Alcotest.test_case "border sensitivity 255/256" `Quick test_border_sensitivity;
          Alcotest.test_case "bit_spread" `Quick test_bit_spread;
          Alcotest.test_case "coarsen_extent (paper example)" `Quick test_coarsen_extent;
          Alcotest.test_case "coarsening sweep" `Quick test_coarsening_monotone;
          Alcotest.test_case "proximity table" `Quick test_proximity_table;
          Alcotest.test_case "predicted range pages" `Quick test_predicted_range_pages;
          Alcotest.test_case "predicted partial match" `Quick test_predicted_partial_match;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_analytic; prop_cyclic; prop_coarsen_extent; prop_coarsen_fewer_elements ] );
    ]
