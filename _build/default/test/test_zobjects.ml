module Zo = Sqp_btree.Zobjects
module Z = Sqp_zorder
module W = Sqp_workload

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let space = Z.Space.make ~dims:2 ~depth:6

let mk_box x y w h =
  Sqp_geom.Shape.Box (Sqp_geom.Box.of_ranges [ (x, x + w - 1); (y, y + h - 1) ])

let build shapes =
  let t = Zo.create space in
  List.iter (fun (id, s) -> ignore (Zo.add t id s)) shapes;
  t

let dedup l = List.sort_uniq compare l

let brute_overlaps left right =
  List.concat_map
    (fun (lid, ls) ->
      List.filter_map
        (fun (rid, rs) ->
          (* Pixel-set overlap via decompositions. *)
          let la = Sqp_geom.Shape.decompose space ls in
          let lb = Sqp_geom.Shape.decompose space rs in
          let hit =
            List.exists
              (fun a ->
                List.exists
                  (fun b -> Z.Bitstring.is_prefix a b || Z.Bitstring.is_prefix b a)
                  lb)
              la
          in
          if hit then Some (lid, rid) else None)
        right)
    left

let test_add () =
  let t = Zo.create space in
  let n = Zo.add t 1 (mk_box 0 0 8 8) in
  check_int "one element for an aligned square" 1 n;
  check_int "entries" 1 (Zo.entry_count t);
  let n2 = Zo.add t 2 (mk_box 1 1 3 3) in
  check "unaligned box has several elements" true (n2 > 1)

let test_join_simple () =
  let a = build [ (1, mk_box 0 0 8 8); (2, mk_box 32 32 4 4) ] in
  let b = build [ (10, mk_box 4 4 8 8); (11, mk_box 48 48 2 2) ] in
  let pairs, stats = Zo.join a b in
  check "1 overlaps 10" true (List.mem (1, 10) (dedup pairs));
  check "2 matches nothing" false (List.exists (fun (l, _) -> l = 2) pairs);
  check "pages counted" true (stats.Zo.left_pages >= 1 && stats.Zo.right_pages >= 1);
  check_int "entries consumed = total" (Zo.entry_count a + Zo.entry_count b) stats.Zo.entries

let test_join_matches_brute_force () =
  let rng = W.Rng.create ~seed:44 in
  let random_shapes tag n =
    List.init n (fun i ->
        let w = 1 + W.Rng.int rng 10 and h = 1 + W.Rng.int rng 10 in
        let x = W.Rng.int rng (64 - w) and y = W.Rng.int rng (64 - h) in
        (tag + i, mk_box x y w h))
  in
  for _ = 1 to 5 do
    let left = random_shapes 0 10 and right = random_shapes 100 10 in
    let a = build left and b = build right in
    let pairs, _ = Zo.join a b in
    if dedup pairs <> dedup (brute_overlaps left right) then
      Alcotest.fail "join disagrees with brute force"
  done

let test_join_space_mismatch () =
  let a = Zo.create space and b = Zo.create (Z.Space.make ~dims:2 ~depth:5) in
  match Zo.join a b with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_join_empty () =
  let a = Zo.create space and b = build [ (1, mk_box 0 0 4 4) ] in
  let pairs, _ = Zo.join a b in
  check_int "empty join" 0 (List.length pairs)

let test_range_candidates () =
  let t =
    build [ (1, mk_box 0 0 8 8); (2, mk_box 20 20 8 8); (3, mk_box 50 50 8 8) ]
  in
  let box = Sqp_geom.Box.of_ranges [ (4, 24); (4, 24) ] in
  let hits, stats = Zo.range_candidates t box in
  let ids = dedup (List.map fst hits) in
  Alcotest.(check (list int)) "objects 1 and 2" [ 1; 2 ] ids;
  check "pages counted" true (stats.Zo.left_pages >= 1);
  (* Fully outside the grid: nothing. *)
  let none, _ = Zo.range_candidates t (Sqp_geom.Box.of_ranges [ (100, 120); (0, 3) ]) in
  check_int "out of grid" 0 (List.length none)

let test_range_candidates_match_interference_semantics () =
  let shapes =
    [ (1, mk_box 3 3 9 9); (2, mk_box 40 1 5 20); (3, mk_box 10 40 20 5) ]
  in
  let t = build shapes in
  let rng = W.Rng.create ~seed:77 in
  for _ = 1 to 20 do
    let x1 = W.Rng.int rng 64 and x2 = W.Rng.int rng 64 in
    let y1 = W.Rng.int rng 64 and y2 = W.Rng.int rng 64 in
    let box =
      Sqp_geom.Box.make ~lo:[| min x1 x2; min y1 y2 |] ~hi:[| max x1 x2; max y1 y2 |]
    in
    let hits, _ = Zo.range_candidates t box in
    let got = dedup (List.map fst hits) in
    let expected =
      List.filter_map
        (fun (id, shape) ->
          match shape with
          | Sqp_geom.Shape.Box b -> if Sqp_geom.Box.overlaps b box then Some id else None
          | _ -> None)
        shapes
      |> List.sort compare
    in
    if got <> expected then Alcotest.fail "range_candidates mismatch"
  done

let test_payloads_can_differ_between_trees () =
  (* Type-level check really: payloads of the two sides are independent. *)
  let a = Zo.create space and b = Zo.create space in
  ignore (Zo.add a "left" (mk_box 0 0 4 4));
  ignore (Zo.add b 42 (mk_box 2 2 4 4));
  let pairs, _ = Zo.join a b in
  check "pair found" true (List.mem ("left", 42) pairs)

let () =
  Alcotest.run "zobjects"
    [
      ( "unit",
        [
          Alcotest.test_case "add" `Quick test_add;
          Alcotest.test_case "join simple" `Quick test_join_simple;
          Alcotest.test_case "join = brute force" `Quick test_join_matches_brute_force;
          Alcotest.test_case "space mismatch" `Quick test_join_space_mismatch;
          Alcotest.test_case "empty join" `Quick test_join_empty;
          Alcotest.test_case "range candidates" `Quick test_range_candidates;
          Alcotest.test_case "range candidates semantics" `Quick
            test_range_candidates_match_interference_semantics;
          Alcotest.test_case "heterogeneous payloads" `Quick test_payloads_can_differ_between_trees;
        ] );
    ]
