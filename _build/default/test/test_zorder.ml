(* Space, Interleave, Element, Curve. *)

module Z = Sqp_zorder
module B = Z.Bitstring

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let s23 = Z.Space.make ~dims:2 ~depth:3
let s34 = Z.Space.make ~dims:3 ~depth:4

let test_space () =
  check_int "dims" 2 (Z.Space.dims s23);
  check_int "depth" 3 (Z.Space.depth s23);
  check_int "side" 8 (Z.Space.side s23);
  check_int "total bits" 6 (Z.Space.total_bits s23);
  check_int "axis level 0" 0 (Z.Space.axis_of_level s23 0);
  check_int "axis level 1" 1 (Z.Space.axis_of_level s23 1);
  check_int "axis level 2" 0 (Z.Space.axis_of_level s23 2);
  Alcotest.(check (float 0.001)) "cells" 64.0 (Z.Space.cells s23);
  check "valid coord" true (Z.Space.valid_coord s23 7);
  check "invalid coord" false (Z.Space.valid_coord s23 8)

let test_space_invalid () =
  List.iter
    (fun f ->
      match f () with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())
    [
      (fun () -> Z.Space.make ~dims:0 ~depth:3);
      (fun () -> Z.Space.make ~dims:2 ~depth:(-1));
      (fun () -> Z.Space.make ~dims:100 ~depth:100);
    ]

let test_shuffle_paper_example () =
  (* Figure 4: [3, 5] -> (011, 101) -> 011011 = 27. *)
  check_str "z of (3,5)" "011011" (B.to_string (Z.Interleave.shuffle s23 [| 3; 5 |]));
  check_int "rank of (3,5)" 27 (Z.Interleave.rank s23 [| 3; 5 |])

let test_shuffle_origin_and_corner () =
  check_str "origin" "000000" (B.to_string (Z.Interleave.shuffle s23 [| 0; 0 |]));
  check_str "corner" "111111" (B.to_string (Z.Interleave.shuffle s23 [| 7; 7 |]))

let test_shuffle_3d () =
  (* x contributes bits 0,3,6,9; y bits 1,4,7,10; z bits 2,5,8,11 *)
  let z = Z.Interleave.shuffle s34 [| 0b1111; 0; 0 |] in
  check_str "x only" "100100100100" (B.to_string z)

let test_shuffle_invalid () =
  List.iter
    (fun coords ->
      match Z.Interleave.shuffle s23 coords with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())
    [ [| 1 |]; [| 1; 2; 3 |]; [| -1; 0 |]; [| 8; 0 |] ]

let test_unshuffle_full () =
  let z = Z.Interleave.shuffle s23 [| 5; 2 |] in
  let prefixes = Z.Interleave.unshuffle s23 z in
  Alcotest.(check (pair int int)) "x" (5, 3) prefixes.(0);
  Alcotest.(check (pair int int)) "y" (2, 3) prefixes.(1)

let test_unshuffle_partial () =
  (* "001" = first bit of x (0), first bit of y (0), second bit of x (1). *)
  let prefixes = Z.Interleave.unshuffle s23 (B.of_string "001") in
  Alcotest.(check (pair int int)) "x prefix" (1, 2) prefixes.(0);
  Alcotest.(check (pair int int)) "y prefix" (0, 1) prefixes.(1)

let test_point_of_rank () =
  Alcotest.(check (array int)) "inverse" [| 3; 5 |] (Z.Interleave.point_of_rank s23 27);
  for r = 0 to 63 do
    check_int "rank roundtrip" r (Z.Interleave.rank s23 (Z.Interleave.point_of_rank s23 r))
  done

let test_element_basics () =
  let e = B.of_string "001" in
  check_int "level" 3 (Z.Element.level e);
  check "not pixel" false (Z.Element.is_pixel s23 e);
  check "pixel" true (Z.Element.is_pixel s23 (B.of_string "001101"));
  check_int "split axis" 1 (Z.Element.split_axis s23 e);
  let lo, hi = Z.Element.children e in
  check_str "low child" "0010" (B.to_string lo);
  check_str "high child" "0011" (B.to_string hi);
  (match Z.Element.parent e with
  | Some p -> check_str "parent" "00" (B.to_string p)
  | None -> Alcotest.fail "parent expected");
  check "root has no parent" true (Z.Element.parent Z.Element.root = None)

let test_element_box_paper () =
  (* Figure 2: element 001 covers 2 <= X <= 3 and 0 <= Y <= 3. *)
  let lo, hi = Z.Element.box s23 (B.of_string "001") in
  Alcotest.(check (array int)) "lo" [| 2; 0 |] lo;
  Alcotest.(check (array int)) "hi" [| 3; 3 |] hi

let test_element_box_root () =
  let lo, hi = Z.Element.box s23 Z.Element.root in
  Alcotest.(check (array int)) "lo" [| 0; 0 |] lo;
  Alcotest.(check (array int)) "hi" [| 7; 7 |] hi

let test_element_of_box () =
  let of_box lo hi = Z.Element.of_box s23 ~lo ~hi in
  (match of_box [| 2; 0 |] [| 3; 3 |] with
  | Some e -> check_str "001" "001" (B.to_string e)
  | None -> Alcotest.fail "expected element");
  (match of_box [| 0; 0 |] [| 7; 7 |] with
  | Some e -> check_int "root" 0 (Z.Element.level e)
  | None -> Alcotest.fail "root expected");
  check "not aligned" true (of_box [| 1; 0 |] [| 2; 1 |] = None);
  check "not power of two" true (of_box [| 0; 0 |] [| 2; 2 |] = None);
  (* x split once more than y is fine: the level-3 element 000. *)
  (match of_box [| 0; 0 |] [| 1; 3 |] with
  | Some e -> Alcotest.(check string) "000" "000" (B.to_string e)
  | None -> Alcotest.fail "expected element 000");
  (* y-range wider than x-range is not a valid split pattern: the bottom
     half would need y split before x. *)
  check "bad interleave pattern" true (of_box [| 0; 0 |] [| 7; 3 |] = None);
  (* Prefix lengths differing by more than one are impossible too. *)
  check "lengths differ by 2" true (of_box [| 0; 0 |] [| 0; 3 |] = None);
  check "x wider ok" true (of_box [| 0; 0 |] [| 3; 3 |] <> None)

let test_element_zlo_zhi () =
  let e = B.of_string "001" in
  check_str "zlo" "001000" (B.to_string (Z.Element.zlo s23 e));
  check_str "zhi" "001111" (B.to_string (Z.Element.zhi s23 e))

let test_element_relations () =
  let e = B.of_string "001" and p = B.of_string "001101" in
  check "contains" true (Z.Element.contains e p);
  check "not contains" false (Z.Element.contains p e);
  check "contains self" true (Z.Element.contains e e);
  check "precedes" true (Z.Element.precedes (B.of_string "000") e);
  check "contains is not precedes" false (Z.Element.precedes e p)

let test_element_cells_sides () =
  let e = B.of_string "001" in
  Alcotest.(check (float 0.001)) "cells" 8.0 (Z.Element.cells s23 e);
  check_int "x side" 2 (Z.Element.side_along s23 e 0);
  check_int "y side" 4 (Z.Element.side_along s23 e 1)

let test_curve_traverse () =
  let pts = List.of_seq (Z.Curve.traverse s23) in
  check_int "count" 64 (List.length pts);
  (* Consecutive ranks. *)
  List.iteri (fun i p -> check_int "rank" i (Z.Curve.rank s23 p)) pts

let test_curve_distances () =
  check_int "chebyshev" 4 (Z.Curve.chebyshev_distance [| 0; 1 |] [| 4; 3 |]);
  check_int "rank distance" 27 (Z.Curve.rank_distance s23 [| 0; 0 |] [| 3; 5 |])

let test_step_lengths () =
  let steps = Z.Curve.step_lengths (Z.Space.make ~dims:2 ~depth:2) in
  check_int "count" 15 (List.length steps);
  (* The N-shape: most steps are unit, some are longer diagonal jumps. *)
  check "has unit steps" true (List.mem 1 steps);
  check "has jumps" true (List.exists (fun d -> d > 1) steps)

(* Properties *)

let gen_point side =
  QCheck2.Gen.(pair (int_bound (side - 1)) (int_bound (side - 1)))

let prop_shuffle_unshuffle =
  QCheck2.Test.make ~name:"shuffle/unshuffle roundtrip" ~count:500 (gen_point 256)
    (fun (x, y) ->
      let s = Z.Space.make ~dims:2 ~depth:8 in
      let prefixes = Z.Interleave.unshuffle s (Z.Interleave.shuffle s [| x; y |]) in
      prefixes.(0) = (x, 8) && prefixes.(1) = (y, 8))

let prop_element_box_roundtrip =
  QCheck2.Test.make ~name:"element -> box -> element" ~count:500
    QCheck2.Gen.(list_size (int_bound 12) bool)
    (fun bits ->
      let s = Z.Space.make ~dims:2 ~depth:6 in
      let e = B.of_bools bits in
      let lo, hi = Z.Element.box s e in
      match Z.Element.of_box s ~lo ~hi with
      | Some e' -> B.equal e e'
      | None -> false)

let prop_zorder_pixel_consecutive =
  (* Figure 3's theorem: pixel z values inside an element form exactly the
     interval [zlo, zhi]. *)
  QCheck2.Test.make ~name:"element pixels consecutive in z" ~count:200
    QCheck2.Gen.(list_size (int_bound 8) bool)
    (fun bits ->
      let s = Z.Space.make ~dims:2 ~depth:4 in
      let e = B.of_bools bits in
      let zlo = B.to_int (Z.Element.zlo s e) and zhi = B.to_int (Z.Element.zhi s e) in
      let lo, hi = Z.Element.box s e in
      let inside = ref 0 in
      let ok = ref true in
      for r = 0 to 255 do
        let p = Z.Interleave.point_of_rank s r in
        let is_in = p.(0) >= lo.(0) && p.(0) <= hi.(0) && p.(1) >= lo.(1) && p.(1) <= hi.(1) in
        if is_in then incr inside;
        if is_in <> (r >= zlo && r <= zhi) then ok := false
      done;
      !ok && !inside = zhi - zlo + 1)

let prop_rank_monotone_in_z =
  QCheck2.Test.make ~name:"rank order = z order" ~count:500
    QCheck2.Gen.(pair (gen_point 64) (gen_point 64))
    (fun ((x1, y1), (x2, y2)) ->
      let s = Z.Space.make ~dims:2 ~depth:6 in
      let za = Z.Interleave.shuffle s [| x1; y1 |]
      and zb = Z.Interleave.shuffle s [| x2; y2 |] in
      let sign c = Stdlib.compare c 0 in
      sign
        (compare (Z.Interleave.rank s [| x1; y1 |]) (Z.Interleave.rank s [| x2; y2 |]))
      = sign (B.compare za zb))

let () =
  Alcotest.run "zorder"
    [
      ( "space",
        [
          Alcotest.test_case "basics" `Quick test_space;
          Alcotest.test_case "invalid" `Quick test_space_invalid;
        ] );
      ( "interleave",
        [
          Alcotest.test_case "paper example (3,5)=27" `Quick test_shuffle_paper_example;
          Alcotest.test_case "origin and corner" `Quick test_shuffle_origin_and_corner;
          Alcotest.test_case "3d" `Quick test_shuffle_3d;
          Alcotest.test_case "invalid" `Quick test_shuffle_invalid;
          Alcotest.test_case "unshuffle full" `Quick test_unshuffle_full;
          Alcotest.test_case "unshuffle partial" `Quick test_unshuffle_partial;
          Alcotest.test_case "point_of_rank" `Quick test_point_of_rank;
        ] );
      ( "element",
        [
          Alcotest.test_case "basics" `Quick test_element_basics;
          Alcotest.test_case "box (paper fig 2)" `Quick test_element_box_paper;
          Alcotest.test_case "box of root" `Quick test_element_box_root;
          Alcotest.test_case "of_box" `Quick test_element_of_box;
          Alcotest.test_case "zlo/zhi" `Quick test_element_zlo_zhi;
          Alcotest.test_case "relations" `Quick test_element_relations;
          Alcotest.test_case "cells and sides" `Quick test_element_cells_sides;
        ] );
      ( "curve",
        [
          Alcotest.test_case "traverse" `Quick test_curve_traverse;
          Alcotest.test_case "distances" `Quick test_curve_distances;
          Alcotest.test_case "step lengths" `Quick test_step_lengths;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_shuffle_unshuffle;
            prop_element_box_roundtrip;
            prop_zorder_pixel_consecutive;
            prop_rank_monotone_in_z;
          ] );
    ]
