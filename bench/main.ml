(* Benchmark harness.

   Part 1 regenerates every figure and experiment table from the paper
   (page-access counts, element counts, efficiencies — the units the
   paper reports); part 2 runs Bechamel timing micro-benchmarks over the
   main code paths so wall-clock behaviour can be tracked too.

   Run with: dune exec bench/main.exe *)

module Z = Sqp_zorder
module W = Sqp_workload
module Zindex = Sqp_btree.Zindex

open Bechamel
open Toolkit

(* All fixtures come from the shared seeded workload, so the CLI's
   [query] subcommand and the tests measure the same bytes. *)
let wk = W.Seeded.standard ()

let space = wk.W.Seeded.space

let points = wk.W.Seeded.points

let tagged = W.Seeded.tagged_points wk

let index = Zindex.of_points ~leaf_capacity:20 space tagged

let kd = Sqp_kdtree.Paged_kdtree.build ~page_capacity:20 tagged

let prep = Sqp_core.Range_search.prepare space tagged

let query = wk.W.Seeded.query

let query_lo = Sqp_geom.Box.lo query and query_hi = Sqp_geom.Box.hi query

let bench_zorder =
  Test.make_grouped ~name:"zorder"
    [
      Test.make ~name:"shuffle"
        (Staged.stage (fun () -> Z.Interleave.shuffle space [| 123; 456 |]));
      Test.make ~name:"unshuffle"
        (let z = Z.Interleave.shuffle space [| 123; 456 |] in
         Staged.stage (fun () -> Z.Interleave.unshuffle space z));
      Test.make ~name:"decompose-box"
        (Staged.stage (fun () ->
             Z.Decompose.decompose_box space ~lo:query_lo ~hi:query_hi));
      Test.make ~name:"bigmin"
        (Staged.stage (fun () ->
             Z.Bigmin.bigmin space ~lo:query_lo ~hi:query_hi 123456));
    ]

let bench_range =
  Test.make_grouped ~name:"range-query(5000pts,1/16)"
    [
      Test.make ~name:"zkd-merge"
        (Staged.stage (fun () ->
             Zindex.range_search ~strategy:Zindex.Merge index query));
      Test.make ~name:"zkd-lazy"
        (Staged.stage (fun () ->
             Zindex.range_search ~strategy:Zindex.Lazy_merge index query));
      Test.make ~name:"zkd-bigmin"
        (Staged.stage (fun () ->
             Zindex.range_search ~strategy:Zindex.Bigmin index query));
      Test.make ~name:"zkd-scan"
        (Staged.stage (fun () ->
             Zindex.range_search ~strategy:Zindex.Scan index query));
      Test.make ~name:"paged-kdtree"
        (Staged.stage (fun () -> Sqp_kdtree.Paged_kdtree.range_search kd query));
      Test.make ~name:"mem-merge-plain"
        (Staged.stage (fun () -> Sqp_core.Range_search.search_plain prep query));
      Test.make ~name:"mem-merge-skip"
        (Staged.stage (fun () -> Sqp_core.Range_search.search_skip prep query));
    ]

let join_l, join_r = W.Seeded.join_elements wk

let bench_join =
  Test.make_grouped ~name:"spatial-join(48x48 boxes)"
    [
      Test.make ~name:"z-merge"
        (Staged.stage (fun () -> Sqp_core.Zmerge.pairs join_l join_r));
      Test.make ~name:"nested-loop"
        (Staged.stage (fun () -> Sqp_core.Zmerge.pairs_naive join_l join_r));
    ]

let overlay_space = Z.Space.make ~dims:2 ~depth:8

let overlay_a, overlay_b =
  let s = Z.Space.side overlay_space in
  ( Sqp_core.Overlay.of_shape overlay_space
      (Sqp_geom.Shape.Circle
         (Sqp_geom.Circle.make ~cx:(s / 3) ~cy:(s / 2) ~radius:(s / 4)))
      (),
    Sqp_core.Overlay.of_shape overlay_space
      (Sqp_geom.Shape.Polygon
         (Sqp_geom.Polygon.make
            [
              (s / 8, s / 8);
              (s - (s / 8), s / 4);
              (s - (s / 4), s - (s / 8));
              (s / 4, s - (s / 4));
            ]))
      () )

let grid_a = Sqp_grid.Bitgrid.of_elements overlay_space (List.map fst overlay_a)

let grid_b = Sqp_grid.Bitgrid.of_elements overlay_space (List.map fst overlay_b)

let bench_overlay =
  Test.make_grouped ~name:"overlay(256x256)"
    [
      Test.make ~name:"ag-elements"
        (Staged.stage (fun () ->
             Sqp_core.Overlay.overlay overlay_space overlay_a overlay_b));
      Test.make ~name:"grid-pixels"
        (Staged.stage (fun () -> Sqp_grid.Bitgrid.inter grid_a grid_b));
    ]

let ccl_fixture =
  let s = Z.Space.side overlay_space in
  let g = Sqp_grid.Bitgrid.create ~side:s in
  let rng = W.Rng.create ~seed:3 in
  for _ = 1 to 40 do
    let cx = W.Rng.int rng s and cy = W.Rng.int rng s in
    let r = 1 + W.Rng.int rng (s / 16) in
    for x = max 0 (cx - r) to min (s - 1) (cx + r) do
      for y = max 0 (cy - r) to min (s - 1) (cy + r) do
        if ((x - cx) * (x - cx)) + ((y - cy) * (y - cy)) <= r * r then
          Sqp_grid.Bitgrid.set g x y true
      done
    done
  done;
  (g, Sqp_grid.Bitgrid.to_elements overlay_space g)

let bench_ccl =
  let g, els = ccl_fixture in
  Test.make_grouped ~name:"ccl(256x256,40 blobs)"
    [
      Test.make ~name:"ag-elements"
        (Staged.stage (fun () -> Sqp_core.Ccl.label overlay_space els));
      Test.make ~name:"grid-pixels"
        (Staged.stage (fun () -> Sqp_grid.Bitgrid.connected_components g));
    ]

let kd_mem = Sqp_kdtree.Kdtree.build tagged

let bench_nearest =
  Test.make_grouped ~name:"nearest-neighbour(5000pts)"
    [
      Test.make ~name:"zkd-expanding-box"
        (Staged.stage (fun () -> Zindex.nearest index [| 500; 501 |]));
      Test.make ~name:"kdtree"
        (Staged.stage (fun () -> Sqp_kdtree.Kdtree.nearest kd_mem [| 500; 501 |]));
    ]

let bench_btree =
  Test.make_grouped ~name:"bptree"
    [
      Test.make ~name:"point-lookup"
        (Staged.stage (fun () -> Zindex.find index [| 123; 456 |]));
      Test.make ~name:"bulk-build-5000"
        (Staged.stage (fun () -> Zindex.of_points ~leaf_capacity:20 space tagged));
    ]

(* {1 Parallel execution} *)

module Pool = Sqp_parallel.Pool
module Par_rs = Sqp_parallel.Par_range_search
module Par_join = Sqp_parallel.Par_spatial_join

let pprep = Par_rs.prepare space tagged

(* The speedup workload: a batch of seeded random boxes over the
   5000-point dataset, answered one task per query. *)
let par_boxes = wk.W.Seeded.query_boxes

let bench_parallel pool =
  Test.make_grouped ~name:"parallel"
    [
      Test.make ~name:"range-sequential"
        (Staged.stage (fun () -> Sqp_core.Range_search.search_skip prep query));
      Test.make ~name:"range-sharded"
        (Staged.stage (fun () -> Par_rs.search pool pprep query));
      Test.make ~name:"join-sequential"
        (Staged.stage (fun () -> Sqp_core.Zmerge.pairs join_l join_r));
      Test.make ~name:"join-sharded"
        (Staged.stage (fun () -> Par_join.pairs pool join_l join_r));
    ]

let time_batch pool =
  ignore (Par_rs.search_batch pool pprep par_boxes) (* warm-up *);
  let best = ref infinity in
  for _ = 1 to 5 do
    let t0 = Unix.gettimeofday () in
    ignore (Par_rs.search_batch pool pprep par_boxes);
    best := Float.min !best (Unix.gettimeofday () -. t0)
  done;
  !best

let speedup_table () =
  let cores = Domain.recommended_domain_count () in
  let rows =
    List.map
      (fun domains -> (domains, Pool.with_pool ~domains time_batch))
      [ 1; 2; 4; 8 ]
  in
  let base = List.assoc 1 rows in
  print_newline ();
  Printf.printf
    "Parallel range-search throughput (%d queries over %d points, %d core%s)\n"
    (Array.length par_boxes) (Array.length points) cores
    (if cores = 1 then "" else "s");
  print_endline "=====================================================================";
  List.iter
    (fun (domains, seconds) ->
      Printf.printf "  %d domain%s  %8.2f ms   speedup %.2fx\n" domains
        (if domains = 1 then " " else "s")
        (seconds *. 1e3) (base /. seconds))
    rows;
  if cores = 1 then
    print_endline
      "  (single core: extra domains add GC-synchronization overhead and no\n\
      \   parallelism, so speedups < 1x here; >1x needs a multi-core machine)";
  let oc = open_out "BENCH_parallel.json" in
  Printf.fprintf oc
    "{\n  \"workload\": \"range-search batch\",\n  \"queries\": %d,\n  \
     \"points\": %d,\n  \"cores\": %d,\n  \"runs\": [\n%s\n  ]\n}\n"
    (Array.length par_boxes) (Array.length points) cores
    (String.concat ",\n"
       (List.map
          (fun (domains, seconds) ->
            Printf.sprintf
              "    { \"domains\": %d, \"seconds\": %.6f, \"speedup\": %.3f }"
              domains seconds (base /. seconds))
          rows));
  close_out oc;
  print_endline "  -> BENCH_parallel.json"

(* {1 Observability snapshot}

   Run the seeded stored-relation spatial join under a collecting tracer,
   sequentially and sharded over 2 domains, and dump what was measured:
   BENCH_obs.json (per-run page totals + the ambient metrics registry)
   and BENCH_trace.json (a Chrome trace_event file — load it at
   chrome://tracing or ui.perfetto.dev for the flame chart). *)

module Obs = Sqp_obs
module R = Sqp_relalg

let obs_report () =
  let tracer = Obs.Trace.create ~capacity:4096 Obs.Trace.Collect in
  Obs.Trace.set_global tracer;
  Obs.Metrics.reset (Obs.Metrics.global ());
  let plan () =
    R.Query.stored_overlap_plan ~options:wk.W.Seeded.decompose_options space
      wk.W.Seeded.left_objects wk.W.Seeded.right_objects
  in
  let seq = R.Plan.run_analyze (plan ()) in
  let par = R.Plan.run_analyze ~parallelism:2 (plan ()) in
  print_newline ();
  print_endline
    "EXPLAIN ANALYZE: stored 48x48 spatial join, sequential then 2 domains";
  print_endline
    "=====================================================================";
  print_string (R.Plan.render_analysis seq);
  print_newline ();
  print_string (R.Plan.render_analysis par);
  Obs.Trace.write_chrome "BENCH_trace.json" (Obs.Trace.spans tracer);
  let pages (s : Sqp_storage.Stats.t) =
    Printf.sprintf
      "{ \"reads\": %d, \"writes\": %d, \"hits\": %d, \"misses\": %d }"
      s.Sqp_storage.Stats.physical_reads s.Sqp_storage.Stats.physical_writes
      s.Sqp_storage.Stats.pool_hits s.Sqp_storage.Stats.pool_misses
  in
  let run_json (a : R.Plan.analysis) =
    Printf.sprintf
      "{ \"rows\": %d, \"wall_seconds\": %.6f, \"pages\": %s }"
      (R.Relation.cardinality a.R.Plan.result)
      a.R.Plan.wall_seconds
      (pages a.R.Plan.total_pages)
  in
  let oc = open_out "BENCH_obs.json" in
  Printf.fprintf oc
    "{\n\
    \  \"workload\": \"stored 48x48 spatial join\",\n\
    \  \"sequential\": %s,\n\
    \  \"parallel2\": %s,\n\
    \  \"spans_collected\": %d,\n\
    \  \"spans_dropped\": %d,\n\
    \  \"metrics\": %s\n\
     }\n"
    (run_json seq) (run_json par)
    (List.length (Obs.Trace.spans tracer))
    (Obs.Trace.dropped tracer)
    (Obs.Metrics.to_json (Obs.Metrics.snapshot (Obs.Metrics.global ())));
  close_out oc;
  print_endline "  -> BENCH_obs.json, BENCH_trace.json";
  Obs.Trace.set_global Obs.Trace.null

(* Fast correctness smoke for CI: the parallel drivers must agree with
   the sequential paths on a slice of the bench workload. *)
let quick_smoke () =
  let failures = ref 0 in
  Pool.with_pool ~domains:2 (fun pool ->
      Array.iter
        (fun box ->
          let seq = fst (Sqp_core.Range_search.search_skip prep box) in
          let par = fst (Par_rs.search pool pprep box) in
          if seq <> par then incr failures)
        (Array.sub par_boxes 0 50);
      let seq_pairs = fst (Sqp_core.Zmerge.pairs join_l join_r) in
      let par_pairs = fst (Par_join.pairs pool join_l join_r) in
      if seq_pairs <> par_pairs then incr failures);
  if !failures = 0 then
    print_endline "quick smoke: parallel = sequential (50 range queries + join)"
  else begin
    Printf.printf "quick smoke: %d mismatches\n" !failures;
    exit 1
  end

(* {1 Packed kernel microbenches}

   Packed (Zpacked/Zkernel) vs reference (Bitstring/list) on the query
   hot paths: z compare (via sorting), the Zmerge containment sweep, both
   range-search merges, and the relational spatial join.  Hand-rolled
   best-of-N wall clock — the two sides run identical workloads, so the
   ratio is the point.  Writes BENCH_kernels.json. *)
let kernels_table ~quick () =
  let reps = if quick then 3 else 7 in
  let n_boxes = if quick then 40 else Array.length par_boxes in
  (* Best-of-[reps], but at least [min_span] seconds of repetitions:
     sub-millisecond rows need far more than [reps] samples before the
     minimum settles on this (noisy) class of machine. *)
  let min_span = if quick then 0.05 else 0.5 in
  let time_best f =
    ignore (f ()) (* warm-up (also warms the decompose cache) *);
    let best = ref infinity in
    let spent = ref 0.0 and runs = ref 0 in
    while !runs < reps || !spent < min_span do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      let dt = Unix.gettimeofday () -. t0 in
      best := Float.min !best dt;
      spent := !spent +. dt;
      incr runs
    done;
    !best
  in
  let zs_bits = Array.map (fun (p, _) -> Z.Interleave.shuffle space p) tagged in
  let zs_packed =
    match Z.Zpacked.pack_array zs_bits with
    | Some p -> p
    | None -> failwith "bench: seeded z values must pack"
  in
  let boxes = Array.sub par_boxes 0 n_boxes in
  let schema_of name z =
    R.Schema.make [ (name, R.Value.TInt); (z, R.Value.TZval) ]
  in
  let rel_of name z items =
    R.Relation.make ~name (schema_of name z)
      (List.map (fun (e, id) -> [| R.Value.Int id; R.Value.Zval e |]) items)
  in
  let join_rel_r = rel_of "rid" "zr" join_l
  and join_rel_s = rel_of "sid" "zs" join_r in
  let rows =
    List.map
      (fun (name, reference, packed) ->
        let reference_seconds = time_best reference in
        let packed_seconds = time_best packed in
        (name, reference_seconds, packed_seconds))
      [
        ( "compare(sort 5000 z values)",
          (fun () -> Array.sort Z.Bitstring.compare (Array.copy zs_bits)),
          fun () -> Array.sort Z.Zpacked.compare (Array.copy zs_packed) );
        ( "merge(zmerge 48x48 join)",
          (fun () -> ignore (Sqp_core.Zmerge.pairs_reference join_l join_r)),
          fun () -> ignore (Sqp_core.Zmerge.pairs join_l join_r) );
        ( Printf.sprintf "range-search-plain(%d boxes)" n_boxes,
          (fun () ->
            Array.iter
              (fun b -> ignore (Sqp_core.Range_search.search_plain_reference prep b))
              boxes),
          fun () ->
            Array.iter
              (fun b -> ignore (Sqp_core.Range_search.search_plain prep b))
              boxes );
        ( Printf.sprintf "range-search-skip(%d boxes)" n_boxes,
          (fun () ->
            Array.iter
              (fun b -> ignore (Sqp_core.Range_search.search_skip_reference prep b))
              boxes),
          fun () ->
            Array.iter
              (fun b -> ignore (Sqp_core.Range_search.search_skip prep b))
              boxes );
        ( "join(spatial-join merge)",
          (fun () ->
            ignore (R.Spatial_join.merge_reference join_rel_r ~zr:"zr" join_rel_s ~zs:"zs")),
          fun () ->
            ignore (R.Spatial_join.merge join_rel_r ~zr:"zr" join_rel_s ~zs:"zs") );
      ]
  in
  print_newline ();
  Printf.printf "Packed z-value kernels vs bitstring reference (best of %d%s)\n"
    reps
    (if Z.Decompose.cache_enabled () then "" else ", decompose cache off");
  print_endline "=====================================================================";
  Printf.printf "  %-34s %12s %12s %9s\n" "kernel" "reference" "packed" "speedup";
  List.iter
    (fun (name, rs, ps) ->
      Printf.printf "  %-34s %9.3f ms %9.3f ms %8.2fx\n" name (rs *. 1e3)
        (ps *. 1e3) (rs /. ps))
    rows;
  let oc = open_out "BENCH_kernels.json" in
  Printf.fprintf oc "{\n  \"benchmark\": \"kernels\",\n  \"rows\": [\n%s\n  ]\n}\n"
    (String.concat ",\n"
       (List.map
          (fun (name, rs, ps) ->
            Printf.sprintf
              "    { \"name\": %S, \"reference_seconds\": %.6f, \
               \"packed_seconds\": %.6f, \"speedup\": %.2f }"
              name rs ps (rs /. ps))
          rows));
  close_out oc;
  print_endline "  -> BENCH_kernels.json"

let run_bechamel pool =
  let tests =
    Test.make_grouped ~name:"sqp"
      [
        bench_zorder; bench_range; bench_join; bench_overlay; bench_ccl;
        bench_nearest; bench_btree; bench_parallel pool;
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  print_newline ();
  print_endline "Timing micro-benchmarks (Bechamel, monotonic clock)";
  print_endline "===================================================";
  List.iter
    (fun (name, o) ->
      let estimate =
        match Analyze.OLS.estimates o with Some (e :: _) -> e | _ -> nan
      in
      let r2 = match Analyze.OLS.r_square o with Some r -> r | None -> nan in
      let pretty v =
        if v >= 1e9 then Printf.sprintf "%8.2f s " (v /. 1e9)
        else if v >= 1e6 then Printf.sprintf "%8.2f ms" (v /. 1e6)
        else if v >= 1e3 then Printf.sprintf "%8.2f us" (v /. 1e3)
        else Printf.sprintf "%8.2f ns" v
      in
      Printf.printf "  %-45s %s/run   (r2 %.3f)\n" name (pretty estimate) r2)
    rows

(* Closed-loop loopback serving benchmark: the same range-query batch
   pushed through lib/server's full path (framing, admission, shared
   pool) at increasing client counts.  Writes BENCH_serving.json.
   [sqp bench-net] is the standalone-CLI flavour of the same loop. *)
let serving_table () =
  let catalog = Sqp_server.Catalog.of_seeded wk in
  let boxes = wk.W.Seeded.query_boxes in
  let requests_per_client = 40 in
  print_newline ();
  print_endline "Network serving (loopback, closed loop, 40 range queries/client)";
  print_endline "================================================================";
  Printf.printf "  %8s %10s %12s %14s\n" "clients" "requests" "req/s" "mean ms";
  let rows =
    List.map
      (fun clients ->
        let metrics = Obs.Metrics.create () in
        let server = Sqp_server.Server.start ~metrics catalog in
        let port = Sqp_server.Server.port server in
        let t0 = Unix.gettimeofday () in
        let threads =
          List.init clients (fun c ->
              Thread.create
                (fun () ->
                  Sqp_server.Client.with_connect ~port (fun cl ->
                      for i = 0 to requests_per_client - 1 do
                        let box = boxes.(((c * 97) + i) mod Array.length boxes) in
                        match
                          Sqp_server.Client.range_search cl
                            ~lo:(Sqp_geom.Box.lo box) ~hi:(Sqp_geom.Box.hi box)
                        with
                        | Ok _ -> ()
                        | Error e ->
                            Printf.eprintf "serving bench: %s\n"
                              (Sqp_server.Client.error_to_string e);
                            exit 1
                      done))
                ())
        in
        List.iter Thread.join threads;
        let wall = Unix.gettimeofday () -. t0 in
        Sqp_server.Server.stop server;
        let total = clients * requests_per_client in
        let rps = float_of_int total /. wall in
        let mean_ms = wall /. float_of_int total *. 1e3 *. float_of_int clients in
        Printf.printf "  %8d %10d %12.0f %14.2f\n" clients total rps mean_ms;
        (clients, total, wall, rps, mean_ms))
      [ 1; 2; 4 ]
  in
  let oc = open_out "BENCH_serving.json" in
  Printf.fprintf oc "{\n  \"benchmark\": \"serving_closed_loop\",\n  \"rows\": [\n%s\n  ]\n}\n"
    (String.concat ",\n"
       (List.map
          (fun (clients, total, wall, rps, mean_ms) ->
            Printf.sprintf
              "    { \"clients\": %d, \"requests\": %d, \"wall_seconds\": %.4f, \
               \"throughput_rps\": %.1f, \"mean_latency_ms\": %.3f }"
              clients total wall rps mean_ms)
          rows));
  close_out oc;
  print_endline "  -> BENCH_serving.json"

let () =
  let has flag = Array.exists (String.equal flag) Sys.argv in
  if has "--no-decompose-cache" then Z.Decompose.set_cache_enabled false;
  if has "--kernels" then kernels_table ~quick:(has "--quick") ()
  else if has "--quick" then quick_smoke ()
  else if has "--obs" then obs_report ()
  else begin
    Sqp_core.Reports.run_all ();
    Pool.with_pool ~domains:2 run_bechamel;
    speedup_table ();
    kernels_table ~quick:false ();
    serving_table ();
    obs_report ()
  end
