(* sqp: command-line front end for the reproduction.  Each subcommand
   regenerates one of the paper's figures or experiment tables. *)

open Cmdliner
module Srv = Sqp_server

let dataset_conv =
  let parse = function
    | "U" | "u" | "uniform" -> Ok Sqp_workload.Datagen.Uniform
    | "C" | "c" | "clustered" -> Ok Sqp_workload.Datagen.Clustered
    | "D" | "d" | "diagonal" -> Ok Sqp_workload.Datagen.Diagonal
    | s -> Error (`Msg (Printf.sprintf "unknown dataset %S (use U, C or D)" s))
  in
  let print fmt ds =
    Format.pp_print_string fmt (Sqp_workload.Datagen.dataset_name ds)
  in
  Arg.conv (parse, print)

let dataset_arg =
  Arg.(
    value
    & opt dataset_conv Sqp_workload.Datagen.Uniform
    & info [ "d"; "dataset" ] ~docv:"DATASET"
        ~doc:"Dataset: U (uniform), C (clustered) or D (diagonal).")

let all_datasets_arg =
  Arg.(
    value & flag
    & info [ "all" ] ~doc:"Run for all three datasets (U, C, D).")

let simple name doc f = Cmd.v (Cmd.info name ~doc) Term.(const f $ const ())

let with_dataset name doc f =
  let run dataset all =
    if all then
      List.iter f Sqp_workload.Datagen.[ Uniform; Clustered; Diagonal ]
    else f dataset
  in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ dataset_arg $ all_datasets_arg)

let figures_cmd =
  simple "figures" "Reproduce Figures 1-5 (z order, decomposition, merge)."
    (fun () ->
      Sqp_core.Reports.print_figure1 ();
      Sqp_core.Reports.print_figure2 ();
      Sqp_core.Reports.print_figure3 ();
      Sqp_core.Reports.print_figure4 ();
      Sqp_core.Reports.print_figure5 ())

let figure6_cmd =
  with_dataset "figure6" "Figure 6: page-partition map of the zkd B+-tree."
    (fun ds -> Sqp_core.Reports.print_figure6 ~datasets:[ ds ] ())

let experiment_cmd =
  with_dataset "experiment" "The Section 5.3.2 range-query experiment table."
    Sqp_core.Reports.print_range_experiment

let compare_cmd =
  with_dataset "compare" "zkd B+-tree vs kd tree vs linear scan."
    Sqp_core.Reports.print_structure_comparison

let strategies_cmd =
  with_dataset "strategies" "Search-strategy ablation (merge/lazy/bigmin/scan)."
    Sqp_core.Reports.print_strategy_comparison

let policies_cmd =
  with_dataset "policies" "Buffer-replacement policies under the merge workload."
    Sqp_core.Reports.print_buffer_policies

let partial_match_cmd =
  simple "partial-match" "Partial-match page accesses vs N (predicted N^0.5)."
    Sqp_core.Reports.print_partial_match

let euv_cmd =
  simple "euv" "E(U,V) table: border sensitivity and cyclicity (Section 5.1)."
    Sqp_core.Reports.print_euv_table

let coarsen_cmd =
  simple "coarsen" "The coarsening optimization trade-off (Section 5.1)."
    Sqp_core.Reports.print_coarsening

let proximity_cmd =
  simple "proximity" "Proximity preservation of z order (Section 5.2)."
    Sqp_core.Reports.print_proximity

let join_cmd =
  simple "join" "Spatial join: merge vs nested loop (Section 4)."
    Sqp_core.Reports.print_spatial_join

let overlay_cmd =
  simple "overlay" "Overlay on elements vs grid (Section 6)."
    Sqp_core.Reports.print_overlay_scaling

let ccl_cmd =
  simple "ccl" "Connected component labelling on elements (Section 6)."
    Sqp_core.Reports.print_ccl

let interference_cmd =
  simple "interference" "CAD interference detection (Section 6)."
    Sqp_core.Reports.print_interference

let fill_cmd =
  with_dataset "fill" "Leaf fill-factor ablation (bulk-load occupancy)."
    Sqp_core.Reports.print_fill_factor

let three_d_cmd =
  simple "three-d" "3d range and partial-match experiment (higher-dim follow-up)."
    Sqp_core.Reports.print_3d_experiment

let curves_cmd =
  simple "curves" "Curve-clustering ablation: z vs Hilbert vs row-major."
    Sqp_core.Reports.print_curve_comparison

let object_join_cmd =
  simple "object-join" "Disk-resident spatial join over B+-tree leaf chains."
    Sqp_core.Reports.print_object_join

let all_cmd = simple "all" "Every figure and table, in paper order."
    Sqp_core.Reports.run_all

(* The observability showcase: run the seeded stored-relation spatial
   join through the plan layer, optionally under EXPLAIN ANALYZE and/or
   a collecting tracer exported as a Chrome trace. *)
let query_cmd =
  let module W = Sqp_workload in
  let module R = Sqp_relalg in
  let module Obs = Sqp_obs in
  let analyze_arg =
    Arg.(
      value & flag
      & info [ "analyze" ]
          ~doc:
            "EXPLAIN ANALYZE: execute under measurement and print the \
             operator tree annotated with actual rows, wall time and page \
             accesses per node, then the ambient metrics registry.")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record spans while running and write them to $(docv) as a \
             Chrome trace_event file (open at chrome://tracing or \
             ui.perfetto.dev).")
  in
  let parallelism_arg =
    Arg.(
      value & opt int 1
      & info [ "p"; "parallelism" ] ~docv:"N"
          ~doc:
            "Execution streams: with 2 or more, the spatial join runs \
             z-sharded over a domain pool and the analysis includes a \
             per-shard work table.")
  in
  let costs_arg =
    Arg.(
      value & flag
      & info [ "costs" ]
          ~doc:
            "Cost-based mode: run the ANALYZE statistics pass first, print \
             the statistics-free EXPLAIN (before), then the cost-based \
             EXPLAIN with the predicted cost column (after) and the join \
             decisions.  With $(b,--analyze), the measured tree gains the \
             predicted-vs-actual table.")
  in
  let run analyze costs trace parallelism =
    let module O = Sqp_optimizer in
    let wk = W.Seeded.standard () in
    let tracer =
      match trace with
      | None -> None
      | Some path ->
          let t = Obs.Trace.create ~capacity:8192 Obs.Trace.Collect in
          Obs.Trace.set_global t;
          Some (t, path)
    in
    let plan =
      R.Plan.optimize
        (R.Query.stored_overlap_plan ~options:wk.W.Seeded.decompose_options
           wk.W.Seeded.space wk.W.Seeded.left_objects wk.W.Seeded.right_objects)
    in
    let stats_plan =
      (* [None]: statistics-free, exactly the old behavior.  [Some]: the
         ANALYZE pass over the same catalog the server would build, then
         the cost-based rewrite of the same plan. *)
      if not costs then None
      else begin
        let cat = Srv.Catalog.of_seeded wk in
        let st = Srv.Catalog.analyze cat in
        print_endline "EXPLAIN before (size heuristic, no statistics):";
        print_string (R.Plan.explain ~parallelism plan);
        print_newline ();
        let chosen, decisions = O.Optimizer.choose_plan st plan in
        print_endline "EXPLAIN after (cost-based, statistics from ANALYZE):";
        print_string (O.Optimizer.explain ~parallelism st chosen);
        List.iter
          (fun (d : O.Optimizer.join_decision) ->
            Printf.printf
              "join %s <> %s: merge %.0f vs nested %.0f work units -> %s%s%s\n"
              d.O.Optimizer.zl d.O.Optimizer.zr d.O.Optimizer.cost_merge
              d.O.Optimizer.cost_nested
              (match d.O.Optimizer.chosen with
              | R.Plan.Merge -> "merge"
              | R.Plan.Nested_loop -> "nested loop")
              (if d.O.Optimizer.commuted then " (inputs commuted)" else "")
              (if
                 d.O.Optimizer.heuristic_would_merge
                 = (d.O.Optimizer.chosen = R.Plan.Merge)
                 && not d.O.Optimizer.commuted
               then ""
               else " [overrides heuristic]"))
          decisions;
        (* Storage recalibration: what ANALYZE measured about the
           front-coded point index, and the page prediction for a
           representative range box before/after the learned density. *)
        (match
           ( Srv.Catalog.page_estimate cat
               ~lo:(Sqp_geom.Box.lo wk.W.Seeded.query_boxes.(0))
               ~hi:(Sqp_geom.Box.hi wk.W.Seeded.query_boxes.(0)),
             wk.W.Seeded.query_boxes.(0) )
         with
        | Some pe, box ->
            Printf.printf
              "storage: P packed %d rows into %d front-coded pages (%.1f \
               entries/page, %.2fx vs fixed-width's %d pages)\n"
              pe.Srv.Catalog.rows pe.Srv.Catalog.compressed_pages
              pe.Srv.Catalog.entries_per_page pe.Srv.Catalog.compression_ratio
              pe.Srv.Catalog.fixed_pages;
            Printf.printf
              "range pages for box [%s]-[%s]: %.1f predicted fixed-width, \
               %.1f at the learned density\n"
              (String.concat ","
                 (Array.to_list
                    (Array.map string_of_int (Sqp_geom.Box.lo box))))
              (String.concat ","
                 (Array.to_list
                    (Array.map string_of_int (Sqp_geom.Box.hi box))))
              pe.Srv.Catalog.fixed_predicted pe.Srv.Catalog.learned_predicted
        | None, _ -> ());
        print_newline ();
        Some (st, chosen)
      end
    in
    let plan = match stats_plan with Some (_, p) -> p | None -> plan in
    if analyze then begin
      (match stats_plan with
      | None -> print_string (R.Plan.explain_analyze ~parallelism plan)
      | Some (st, _) ->
          let a = R.Plan.run_analyze ~parallelism plan in
          print_string (R.Plan.render_analysis a);
          print_newline ();
          print_string
            (O.Optimizer.render_comparison
               (O.Optimizer.compare_analysis st plan a.R.Plan.report)));
      print_newline ();
      print_endline "Ambient metrics:";
      print_string
        (Sqp_obs.Metrics.to_text
           (Sqp_obs.Metrics.snapshot (Sqp_obs.Metrics.global ())))
    end
    else begin
      (match stats_plan with
      | None ->
          print_string (R.Plan.explain ~parallelism plan);
          print_newline ()
      | Some _ -> () (* both EXPLAINs already printed above *));
      Format.printf "%a@." R.Relation.pp (R.Plan.run ~parallelism plan)
    end;
    match tracer with
    | None -> ()
    | Some (t, path) ->
        Obs.Trace.write_chrome path (Obs.Trace.spans t);
        Obs.Trace.set_global Obs.Trace.null;
        Printf.printf "wrote %d spans to %s\n" (List.length (Obs.Trace.spans t)) path
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "The Section 4 overlap query over paged (stored) relations, with \
          optional cost-based optimization ($(b,--costs)), EXPLAIN ANALYZE \
          and Chrome-trace output.")
    Term.(const run $ analyze_arg $ costs_arg $ trace_arg $ parallelism_arg)

(* Offline store checking and salvage over the crash-safe page store. *)
let fsck_cmd =
  let module S = Sqp_storage in
  let path_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"PATH" ~doc:"The store file to check.")
  in
  let salvage_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "salvage" ] ~docv:"DEST"
          ~doc:
            "Rebuild a best-effort copy of the store at $(docv) from every \
             page whose checksum still verifies.")
  in
  let make_demo_arg =
    Arg.(
      value & flag
      & info [ "make-demo" ]
          ~doc:
            "First write a small demo store at PATH and flip one byte in \
             it, so the report (and salvage) have something to find.  \
             Overwrites PATH.")
  in
  let make_demo path =
    let fp = S.File_pager.create ~page_bytes:128 path in
    let ids =
      List.init 8 (fun i -> S.File_pager.alloc fp (Bytes.make 32 (Char.chr (65 + i))))
    in
    S.File_pager.free fp (List.nth ids 3);
    S.File_pager.close fp;
    (* Flip a payload byte of slot 2; its checksum no longer verifies. *)
    let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
    ignore (Unix.lseek fd ((2 * 128) + 16) Unix.SEEK_SET);
    ignore (Unix.write fd (Bytes.make 1 '\255') 0 1);
    Unix.close fd;
    Printf.printf "wrote a demo store with one corrupted page to %s\n" path
  in
  (* When the store is a {!Sqp_btree.Persist} index dump, report its
     format version and validate the page structure too — for v3 this
     walks every front-coded run's restart points. *)
  let index_report path =
    match Sqp_btree.Persist.inspect ~path () with
    | exception _ -> true  (* not an index dump (or unreadable): page-store report stands alone *)
    | info ->
        let module P = Sqp_btree.Persist in
        Printf.printf
          "index: format v%d, %dd space (depth %d), %d entries on %d data \
           page(s)%s\n"
          info.P.version info.P.dims info.P.depth info.P.count
          info.P.data_pages
          (match info.P.page_budget with
          | Some b -> Printf.sprintf ", page budget %dB" b
          | None -> "");
        if info.P.found <> info.P.count then
          Printf.printf "index: only %d of %d entries decode\n" info.P.found
            info.P.count;
        List.iter
          (fun (slot, what) -> Printf.printf "index: page %d: %s\n" slot what)
          (List.rev info.P.page_errors);
        info.P.page_errors = [] && info.P.found = info.P.count
  in
  let run path salvage demo =
    if demo then make_demo path;
    match S.Fsck.scan path with
    | exception S.Storage_error.Io_error { error; _ } ->
        Printf.eprintf "fsck: cannot read %s: %s\n" path (Unix.error_message error);
        Stdlib.exit 1
    | report ->
        print_string (S.Fsck.to_text report);
        let index_ok = index_report path in
        (match salvage with
        | None -> ()
        | Some dest ->
            let salvaged, lost = S.Fsck.salvage ~src:path ~dest () in
            Printf.printf "salvage: recovered %d page(s) into %s, lost %d\n" salvaged dest
              lost);
        if not (S.Fsck.clean report && index_ok) then Stdlib.exit 1
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Check a page-store file: header, per-page checksums, free list, \
          live counts and any pending journal.  Exits 1 if problems are \
          found; $(b,--salvage) rebuilds what survives.")
    Term.(const run $ path_arg $ salvage_arg $ make_demo_arg)

(* {1 Network serving}

   [serve] exposes the seeded catalog over the wire protocol; [shell]
   is the interactive/scripted client; [bench-net] a closed-loop
   loopback load generator.  Together they are the "database server
   interface" deployment mode of the serving tier (lib/server). *)

let host_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Address to bind or connect to.")

let port_arg ~default =
  Arg.(
    value & opt int default
    & info [ "port" ] ~docv:"PORT" ~doc:"TCP port (serve: 0 picks one).")

let serve_cmd =
  let parallelism_arg =
    Arg.(
      value & opt int 2
      & info [ "p"; "parallelism" ] ~docv:"N"
          ~doc:"Domains of the shared execution pool.")
  in
  let in_flight_arg =
    Arg.(
      value & opt int 8
      & info [ "max-in-flight" ] ~docv:"N"
          ~doc:"Concurrent query executions before requests queue.")
  in
  let queue_arg =
    Arg.(
      value & opt int 32
      & info [ "max-queue" ] ~docv:"N"
          ~doc:"Queued requests beyond that before load is shed.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Default per-request deadline when the client sends none.")
  in
  let points_arg =
    Arg.(
      value & opt int 5000
      & info [ "points" ] ~docv:"N" ~doc:"Points in the seeded catalog.")
  in
  let objects_arg =
    Arg.(
      value & opt int 48
      & info [ "objects" ] ~docv:"N"
          ~doc:"Objects per spatial-join side in the seeded catalog.")
  in
  let no_decompose_cache_arg =
    Arg.(
      value & flag
      & info [ "no-decompose-cache" ]
          ~doc:
            "Disable the LRU memo cache of box decompositions (escape hatch; \
             every query then re-decomposes its box).")
  in
  let idle_timeout_arg =
    Arg.(
      value & opt float 0.
      & info [ "idle-timeout-s" ] ~docv:"S"
          ~doc:
            "Close sessions that start no frame for $(docv) seconds (0 = \
             never; reaps leaked connections).")
  in
  let frame_timeout_arg =
    Arg.(
      value & opt float 30.
      & info [ "frame-timeout-s" ] ~docv:"S"
          ~doc:
            "Bound reading one frame's payload and writing one response (0 = \
             unbounded) — the slow-loris guard.")
  in
  let shard_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "shard" ] ~docv:"SPEC"
          ~doc:
            "Serve one cluster shard's z-range slice of the seeded catalog: \
             $(i,I/N) (the I-th of N even ranges, 0-based — what $(b,sqp \
             route --spawn) uses) or $(i,ZLO:ZHI) (an explicit inclusive z \
             interval).")
  in
  let live_empty_arg =
    Arg.(
      value & flag
      & info [ "live-empty" ]
          ~doc:
            "Start the live table empty instead of pre-seeded — how a \
             rebalance target begins life (rows arrive via the router's \
             chunked copy).")
  in
  let run host port parallelism max_in_flight max_queue default_deadline_ms
      n_points n_objects no_decompose_cache idle_timeout_s frame_timeout_s
      shard_spec live_empty =
    if no_decompose_cache then Sqp_zorder.Decompose.set_cache_enabled false;
    let wk = Sqp_workload.Seeded.standard ~n_points ~n_objects () in
    let shard =
      Option.map
        (fun spec ->
          let fail () =
            Printf.eprintf
              "sqp serve: bad --shard %S (want I/N or ZLO:ZHI)\n" spec;
            Stdlib.exit 2
          in
          match String.split_on_char '/' spec with
          | [ i; n ] -> (
              match (int_of_string_opt i, int_of_string_opt n) with
              | Some i, Some n when n > 0 && i >= 0 && i < n ->
                  List.nth
                    (Srv.Shard_map.even_ranges wk.Sqp_workload.Seeded.space n)
                    i
              | _ -> fail ())
          | [ _ ] -> (
              match String.split_on_char ':' spec with
              | [ lo; hi ] -> (
                  match (int_of_string_opt lo, int_of_string_opt hi) with
                  | Some lo, Some hi when lo <= hi -> (lo, hi)
                  | _ -> fail ())
              | _ -> fail ())
          | _ -> fail ())
        shard_spec
    in
    let catalog = Srv.Catalog.of_seeded ?shard ~live_empty wk in
    let config =
      {
        Srv.Server.default_config with
        host;
        port;
        parallelism;
        max_in_flight;
        max_queue;
        default_deadline_ms;
        idle_timeout_s = (if idle_timeout_s > 0. then Some idle_timeout_s else None);
        frame_timeout_s =
          (if frame_timeout_s > 0. then Some frame_timeout_s else None);
      }
    in
    let server = Srv.Server.start ~config catalog in
    (* Machine-parseable bound-port line, first and flushed: orchestrators
       (sqp route --spawn, the cluster tests, CI) parse exactly this. *)
    Printf.printf "SQP_SERVE_PORT=%d\n%!" (Srv.Server.port server);
    Printf.printf
      "sqp serve: listening on %s:%d (parallelism %d, %d in flight, queue %d)\n"
      host (Srv.Server.port server) parallelism max_in_flight max_queue;
    (match Srv.Catalog.shard_range catalog with
    | Some (zlo, zhi) ->
        Printf.printf "shard: z=[%d,%d]%s\n" zlo zhi
          (if live_empty then ", live table empty" else "")
    | None -> ());
    Printf.printf "catalog: %s\n%!"
      (String.concat ", "
         (Srv.Catalog.names catalog
         @ List.map
             (fun n -> n ^ " (live)")
             (Srv.Catalog.live_names catalog)));
    let stop_requested = ref false in
    let on_signal _ = stop_requested := true in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    while not !stop_requested do
      Thread.delay 0.05
    done;
    print_endline "sqp serve: draining...";
    Srv.Server.stop server;
    print_endline "sqp serve: drained; final metrics:";
    print_string
      (Sqp_obs.Metrics.to_text
         (Sqp_obs.Metrics.snapshot (Sqp_obs.Metrics.global ())));
    print_endline "sqp serve: bye."
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve the seeded catalog over the binary wire protocol until \
          SIGTERM/SIGINT, then drain gracefully (in-flight queries finish, \
          new ones are refused) and exit 0.")
    Term.(
      const run $ host_arg $ port_arg ~default:7477 $ parallelism_arg
      $ in_flight_arg $ queue_arg $ deadline_arg $ points_arg $ objects_arg
      $ no_decompose_cache_arg $ idle_timeout_arg $ frame_timeout_arg
      $ shard_arg $ live_empty_arg)

(* The canonical join plan, as a client would send it over the wire. *)
let join_wire_plan =
  Sqp_relalg.Wire.(
    Project
      ( [ "rid"; "sid" ],
        Spatial_join { zl = "zr"; zr = "zs"; left = Scan "R"; right = Scan "S" } ))

let shell_cmd =
  let module R = Sqp_relalg in
  let commands_arg =
    Arg.(
      value & opt_all string []
      & info [ "c"; "command" ] ~docv:"CMD"
          ~doc:
            "Run $(docv) and exit (repeatable, in order) instead of reading \
             commands interactively.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Deadline shipped with each query.")
  in
  let help_text =
    "commands:\n\
    \  range X1 Y1 X2 Y2   points inside the box (inclusive corners)\n\
    \  join                candidate overlapping (rid, sid) pairs of R and S\n\
    \  explain join        the join's optimized plan, without executing\n\
    \  analyze join        EXPLAIN ANALYZE of the join (executes remotely)\n\
    \  analyze             rebuild server statistics (the ANALYZE pass);\n\
    \                      afterwards plans are cost-based and EXPLAIN\n\
    \                      gains a predicted-cost column\n\
    \  health              server liveness, catalog and load\n\
    \  insert X Y ID       add point (X, Y) with payload ID to live table L\n\
    \  delete X Y          remove the first live entry at exactly (X, Y)\n\
    \  lrange X1 Y1 X2 Y2  snapshot range query over live table L\n\
    \  create-index        online rebuild of L's packed index (concurrent-safe)\n\
    \  recover             ask a degraded (read-only) server to reopen its\n\
    \                      stores and resume mutations\n\
    \  help                this text\n\
    \  quit                leave"
  in
  let run host port commands deadline_ms =
    let failed = ref false in
    let print_rows rel =
      Format.printf "%a(%d tuples)@." R.Relation.pp rel (R.Relation.cardinality rel)
    in
    (* Any failure — remote or transport — is one diagnostic line; the
       session stays alive so the user can retry or `recover`. *)
    let report = function
      | Ok () -> ()
      | Error e ->
          failed := true;
          Printf.printf "error: %s\n" (Srv.Client.error_to_string e)
    in
    let exec client line =
      match String.split_on_char ' ' (String.trim line) |> List.filter (( <> ) "") with
      | [] -> true
      | [ "quit" ] | [ "exit" ] -> false
      | [ "help" ] ->
          print_endline help_text;
          true
      | [ "health" ] ->
          report
            (Result.map
               (fun (h : Srv.Protocol.health) ->
                 Printf.printf
                   "%s: %s\n  mode %s; in flight %d, queued %d, served %d\n"
                   (if h.Srv.Protocol.healthy then "healthy" else "UNHEALTHY")
                   h.Srv.Protocol.detail
                   (if h.Srv.Protocol.mode = "" then "unknown"
                    else h.Srv.Protocol.mode)
                   h.Srv.Protocol.in_flight h.Srv.Protocol.queued
                   h.Srv.Protocol.served;
                 if not h.Srv.Protocol.healthy then failed := true)
               (Srv.Client.health client));
          true
      | [ "join" ] ->
          report (Result.map print_rows (Srv.Client.query ?deadline_ms client join_wire_plan));
          true
      | [ "explain"; "join" ] ->
          report
            (Result.map print_string (Srv.Client.explain ?deadline_ms client join_wire_plan));
          true
      | [ "analyze"; "join" ] ->
          report
            (Result.map
               (fun (rendered, rows) ->
                 print_string rendered;
                 print_rows rows)
               (Srv.Client.analyze ?deadline_ms client join_wire_plan));
          true
      | [ "analyze" ] ->
          report
            (Result.map print_string (Srv.Client.refresh_stats ?deadline_ms client));
          true
      | [ "insert"; x; y; id ] -> (
          match (int_of_string_opt x, int_of_string_opt y, int_of_string_opt id) with
          | Some x, Some y, Some id ->
              report
                (Result.map
                   (fun (applied, seq) ->
                     Printf.printf "ack: applied %d, seq %d\n" applied seq)
                   (Srv.Client.insert ?deadline_ms client ~table:"L"
                      [ ([| x; y |], id) ]));
              true
          | _ ->
              failed := true;
              print_endline "insert wants three integers; try: insert 10 20 7";
              true)
      | [ "delete"; x; y ] -> (
          match (int_of_string_opt x, int_of_string_opt y) with
          | Some x, Some y ->
              report
                (Result.map
                   (fun (applied, seq) ->
                     Printf.printf "ack: applied %d, seq %d\n" applied seq)
                   (Srv.Client.delete ?deadline_ms client ~table:"L" [ [| x; y |] ]));
              true
          | _ ->
              failed := true;
              print_endline "delete wants two integers; try: delete 10 20";
              true)
      | [ "lrange"; x1; y1; x2; y2 ] -> (
          match
            (int_of_string_opt x1, int_of_string_opt y1, int_of_string_opt x2,
             int_of_string_opt y2)
          with
          | Some x1, Some y1, Some x2, Some y2 ->
              report
                (Result.map print_rows
                   (Srv.Client.live_range ?deadline_ms client ~table:"L"
                      ~lo:[| min x1 x2; min y1 y2 |]
                      ~hi:[| max x1 x2; max y1 y2 |]));
              true
          | _ ->
              failed := true;
              print_endline "lrange wants four integers; try: lrange 0 0 100 100";
              true)
      | [ "create-index" ] ->
          report
            (Result.map
               (fun (applied, seq) ->
                 Printf.printf "index rebuilt: %d entries at seq %d\n" applied seq)
               (Srv.Client.create_index ?deadline_ms client ~table:"L"));
          true
      | [ "recover" ] ->
          report (Result.map print_endline (Srv.Client.recover client));
          true
      | [ "range"; x1; y1; x2; y2 ] -> (
          match
            (int_of_string_opt x1, int_of_string_opt y1, int_of_string_opt x2,
             int_of_string_opt y2)
          with
          | Some x1, Some y1, Some x2, Some y2 ->
              report
                (Result.map print_rows
                   (Srv.Client.range_search ?deadline_ms client
                      ~lo:[| min x1 x2; min y1 y2 |]
                      ~hi:[| max x1 x2; max y1 y2 |]));
              true
          | _ ->
              failed := true;
              print_endline "range wants four integers; try: range 100 100 300 300";
              true)
      | cmd :: _ ->
          failed := true;
          Printf.printf "unknown command %S (try: help)\n" cmd;
          true
    in
    Srv.Client.with_connect ~host ~port (fun client ->
        if commands <> [] then List.iter (fun c -> ignore (exec client c)) commands
        else begin
          Printf.printf "connected to %s:%d; 'help' lists commands\n%!" host port;
          let rec repl () =
            print_string "sqp> ";
            flush stdout;
            match input_line stdin with
            | line -> if exec client line then repl ()
            | exception End_of_file -> ()
          in
          repl ()
        end);
    if !failed then Stdlib.exit 1
  in
  Cmd.v
    (Cmd.info "shell"
       ~doc:
         "Interactive (or $(b,-c)-scripted) client for a running $(b,sqp \
          serve); exits 1 if any command draws an error.")
    Term.(const run $ host_arg $ port_arg ~default:7477 $ commands_arg $ deadline_arg)

let bench_net_cmd =
  let clients_arg =
    Arg.(
      value & opt int 4
      & info [ "clients" ] ~docv:"N" ~doc:"Concurrent client connections.")
  in
  let requests_arg =
    Arg.(
      value & opt int 100
      & info [ "requests" ] ~docv:"N" ~doc:"Requests per client (closed loop).")
  in
  let quick_arg =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"CI smoke mode: 2 clients x 15 requests.")
  in
  let faults_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "faults" ] ~docv:"RATE"
          ~doc:
            "Inject faults into every client socket at $(docv) (0..1): \
             connection resets and EPIPEs at $(docv), EINTRs and delays at \
             $(docv), short reads/writes at 0.2.  The workload gains insert \
             frames, clients retry with idempotency keys, and the summary \
             reports goodput, retries per request and reconnects (written to \
             BENCH_chaos.json by default).")
  in
  let fault_seed_arg =
    Arg.(
      value & opt int 42
      & info [ "fault-seed" ] ~docv:"SEED"
          ~doc:"Seed of the fault plan (deterministic per seed).")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Where to write the summary (default BENCH_server.json, or \
             BENCH_chaos.json under --faults).")
  in
  let run host port clients requests quick faults fault_seed json_path =
    let clients = if quick then 2 else clients in
    let requests = if quick then 15 else requests in
    let json_path =
      match json_path with
      | Some p -> p
      | None -> (
          match faults with
          | Some _ -> "BENCH_chaos.json"
          | None -> "BENCH_server.json")
    in
    (* port 0: self-host an ephemeral server so the bench is one command. *)
    let own_server =
      if port = 0 then
        Some
          (Srv.Server.start
             ~config:{ Srv.Server.default_config with host }
             (Srv.Catalog.of_seeded (Sqp_workload.Seeded.standard ())))
      else None
    in
    let port =
      match own_server with Some s -> Srv.Server.port s | None -> port
    in
    (* Exactly-once differential (self-hosted only): under faults the
       acked insert frames must equal the live table's batch-sequence
       advance — a double-applied retry would break the equation. *)
    let live_seq () =
      match own_server with
      | Some s -> (
          match Srv.Catalog.live (Srv.Server.catalog s) "L" with
          | Some lv -> Some (Sqp_btree.Live.seq lv)
          | None -> None)
      | None -> None
    in
    let seq_before = live_seq () in
    let wrap =
      match faults with
      | None -> None
      | Some rate ->
          let rate = if rate < 0. then 0. else if rate > 1. then 1. else rate in
          Some
            (Srv.Faulty_net.wrap
               (Srv.Faulty_net.seeded ~p_eintr:rate ~p_short:0.2 ~p_delay:rate
                  ~delay_s:0.0005 ~p_reset:rate ~seed:fault_seed ()))
    in
    let wk = Sqp_workload.Seeded.standard () in
    let boxes = wk.Sqp_workload.Seeded.query_boxes in
    let side = Sqp_zorder.Space.side wk.Sqp_workload.Seeded.space in
    let acked_inserts = Atomic.make 0 in
    let retries_total = Atomic.make 0 in
    let reconnects_total = Atomic.make 0 in
    (* Under faults a torn first attempt is routine: give the retry loop
       room.  Without faults keep the old fail-fast behavior. *)
    let max_attempts = match faults with Some _ -> 100 | None -> 4 in
    let latencies_of_client c =
      Srv.Client.with_connect ~host ~port ?wrap ~max_attempts
        ~client_id:((fault_seed * 1000) + c) (fun client ->
          let lat =
            Array.init requests (fun i ->
                let t0 = Unix.gettimeofday () in
                let reply =
                  if faults <> None && i mod 5 = 2 then
                    Result.map
                      (fun (applied, _seq) ->
                        ignore (Atomic.fetch_and_add acked_inserts 1);
                        ignore applied)
                      (Srv.Client.insert client ~table:"L"
                         (List.init 4 (fun j ->
                              let n = (c * 1_000_000) + (i * 100) + j in
                              ( [| n * 7919 mod side; n * 104729 mod side |],
                                900_000_000 + n ))))
                  else if i mod 10 = 9 then
                    Result.map (fun _ -> ())
                      (Srv.Client.query client join_wire_plan)
                  else
                    let box = boxes.(((c * 131) + i) mod Array.length boxes) in
                    Result.map
                      (fun _ -> ())
                      (Srv.Client.range_search client ~lo:(Sqp_geom.Box.lo box)
                         ~hi:(Sqp_geom.Box.hi box))
                in
                (match reply with
                | Ok () -> ()
                | Error e ->
                    Printf.eprintf "bench-net: request failed: %s\n"
                      (Srv.Client.error_to_string e);
                    Stdlib.exit 1);
                Unix.gettimeofday () -. t0)
          in
          ignore (Atomic.fetch_and_add retries_total (Srv.Client.retries client));
          ignore
            (Atomic.fetch_and_add reconnects_total (Srv.Client.reconnects client));
          lat)
    in
    let t0 = Unix.gettimeofday () in
    let results = Array.make clients [||] in
    let threads =
      List.init clients (fun c ->
          Thread.create (fun () -> results.(c) <- latencies_of_client c) ())
    in
    List.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. t0 in
    let seq_after = live_seq () in
    (match (faults, seq_before, seq_after) with
    | Some _, Some before, Some after ->
        let acked = Atomic.get acked_inserts in
        if after - before <> acked then begin
          Printf.eprintf
            "bench-net: exactly-once violated: %d insert frames acked but the \
             live table advanced %d batches\n"
            acked (after - before);
          Stdlib.exit 1
        end
    | _ -> ());
    (match own_server with Some s -> Srv.Server.stop s | None -> ());
    let latencies = Array.concat (Array.to_list results) in
    Array.sort compare latencies;
    let total = Array.length latencies in
    let pct p = latencies.(min (total - 1) (p * total / 100)) *. 1e3 in
    let throughput = float_of_int total /. wall in
    let retries = Atomic.get retries_total in
    let reconnects = Atomic.get reconnects_total in
    let retries_per_request = float_of_int retries /. float_of_int (max 1 total) in
    (match faults with
    | None ->
        Printf.printf
          "bench-net: %d clients x %d requests in %.2fs (%.0f req/s)\n\
           latency ms: p50 %.2f  p90 %.2f  p99 %.2f  max %.2f\n"
          clients requests wall throughput (pct 50) (pct 90) (pct 99)
          (latencies.(total - 1) *. 1e3)
    | Some rate ->
        Printf.printf
          "bench-net --faults %.3g (seed %d): %d clients x %d requests in %.2fs\n\
           goodput %.0f req/s; %d retries (%.2f/request), %d reconnects; %d \
           insert frames exactly-once\n\
           latency ms: p50 %.2f  p90 %.2f  p99 %.2f  max %.2f\n"
          rate fault_seed clients requests wall throughput retries
          retries_per_request reconnects (Atomic.get acked_inserts) (pct 50)
          (pct 90) (pct 99)
          (latencies.(total - 1) *. 1e3));
    let oc = open_out json_path in
    (match faults with
    | None ->
        Printf.fprintf oc
          "{\n\
          \  \"benchmark\": \"server_closed_loop\",\n\
          \  \"clients\": %d,\n\
          \  \"requests_per_client\": %d,\n\
          \  \"total_requests\": %d,\n\
          \  \"wall_seconds\": %.4f,\n\
          \  \"throughput_rps\": %.1f,\n\
          \  \"latency_ms\": { \"p50\": %.3f, \"p90\": %.3f, \"p99\": %.3f, \
           \"max\": %.3f }\n\
           }\n"
          clients requests total wall throughput (pct 50) (pct 90) (pct 99)
          (latencies.(total - 1) *. 1e3)
    | Some rate ->
        Printf.fprintf oc
          "{\n\
          \  \"benchmark\": \"server_chaos_closed_loop\",\n\
          \  \"fault_rate\": %.4f,\n\
          \  \"fault_seed\": %d,\n\
          \  \"clients\": %d,\n\
          \  \"requests_per_client\": %d,\n\
          \  \"total_requests\": %d,\n\
          \  \"wall_seconds\": %.4f,\n\
          \  \"goodput_rps\": %.1f,\n\
          \  \"retries\": %d,\n\
          \  \"retries_per_request\": %.3f,\n\
          \  \"reconnects\": %d,\n\
          \  \"insert_frames_acked\": %d,\n\
          \  \"latency_ms\": { \"p50\": %.3f, \"p90\": %.3f, \"p99\": %.3f, \
           \"max\": %.3f }\n\
           }\n"
          rate fault_seed clients requests total wall throughput retries
          retries_per_request reconnects (Atomic.get acked_inserts) (pct 50)
          (pct 90) (pct 99)
          (latencies.(total - 1) *. 1e3));
    close_out oc;
    Printf.printf "wrote %s\n" json_path
  in
  Cmd.v
    (Cmd.info "bench-net"
       ~doc:
         "Closed-loop loopback benchmark against $(b,sqp serve) (or a \
          self-hosted ephemeral server with --port 0); writes \
          BENCH_server.json — or, with $(b,--faults), a chaos run with \
          client-side fault injection, exactly-once retries and \
          BENCH_chaos.json.")
    Term.(
      const run $ host_arg $ port_arg ~default:0 $ clients_arg $ requests_arg
      $ quick_arg $ faults_arg $ fault_seed_arg $ json_arg)

(* Mixed ingest benchmark: writer threads stream insert/delete batches
   into the live table while reader threads run snapshot range queries
   against it — sustained write throughput plus read-latency percentiles
   under write pressure, the serving-tier counterpart of the
   differential torture suite. *)
let bench_ingest_cmd =
  let module Rng = Sqp_workload.Rng in
  let writers_arg =
    Arg.(
      value & opt int 2
      & info [ "writers" ] ~docv:"N" ~doc:"Concurrent writer connections.")
  in
  let readers_arg =
    Arg.(
      value & opt int 2
      & info [ "readers" ] ~docv:"N"
          ~doc:"Concurrent reader connections issuing live range queries.")
  in
  let seconds_arg =
    Arg.(
      value & opt float 5.0
      & info [ "seconds" ] ~docv:"S" ~doc:"Wall-clock duration of the run.")
  in
  let batch_arg =
    Arg.(
      value & opt int 32
      & info [ "batch" ] ~docv:"N" ~doc:"Points per insert frame.")
  in
  let quick_arg =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"CI smoke mode: 1 second, batches of 16.")
  in
  let json_arg =
    Arg.(
      value & opt string "BENCH_ingest.json"
      & info [ "json" ] ~docv:"FILE" ~doc:"Where to write the summary.")
  in
  let run host port writers readers seconds batch quick json_path =
    let seconds = if quick then 1.0 else seconds in
    let batch = if quick then 16 else batch in
    let own_server =
      if port = 0 then
        Some
          (Srv.Server.start
             ~config:{ Srv.Server.default_config with host }
             (Srv.Catalog.of_seeded (Sqp_workload.Seeded.standard ())))
      else None
    in
    let port =
      match own_server with Some s -> Srv.Server.port s | None -> port
    in
    let wk = Sqp_workload.Seeded.standard () in
    let side = Sqp_zorder.Space.side wk.Sqp_workload.Seeded.space in
    let die e =
      Printf.eprintf "bench-ingest: request failed: %s\n"
        (Srv.Client.error_to_string e);
      Stdlib.exit 1
    in
    let t0 = Unix.gettimeofday () in
    let deadline = t0 +. seconds in
    let ops_applied = Atomic.make 0 in
    let frames_sent = Atomic.make 0 in
    let writer w =
      Srv.Client.with_connect ~host ~port (fun client ->
          let rng = Rng.create ~seed:(1_000 + w) in
          (* a ring of recently inserted points so deletes mostly hit *)
          let recent = Array.make 256 [| 0; 0 |] in
          let inserted = ref 0 in
          let next_id = ref (w * 10_000_000) in
          while Unix.gettimeofday () < deadline do
            let reply =
              if !inserted >= batch && Rng.int rng 4 = 0 then
                Srv.Client.delete client ~table:"L"
                  (List.init (max 1 (batch / 2)) (fun _ ->
                       recent.(Rng.int rng (min !inserted 256))))
              else
                Srv.Client.insert client ~table:"L"
                  (List.init batch (fun _ ->
                       let p = [| Rng.int rng side; Rng.int rng side |] in
                       recent.(!inserted mod 256) <- p;
                       incr inserted;
                       incr next_id;
                       (p, !next_id)))
            in
            match reply with
            | Ok (applied, _seq) ->
                ignore (Atomic.fetch_and_add ops_applied applied);
                Atomic.incr frames_sent
            | Error e -> die e
          done)
    in
    let read_latencies = Array.make (max 1 readers) [] in
    let reader r =
      Srv.Client.with_connect ~host ~port (fun client ->
          let rng = Rng.create ~seed:(2_000 + r) in
          let ext = max 1 (side / 8) in
          let acc = ref [] in
          while Unix.gettimeofday () < deadline do
            let x = Rng.int rng (side - ext) and y = Rng.int rng (side - ext) in
            let q0 = Unix.gettimeofday () in
            (match
               Srv.Client.live_range client ~table:"L" ~lo:[| x; y |]
                 ~hi:[| x + ext - 1; y + ext - 1 |]
             with
            | Ok _ -> acc := (Unix.gettimeofday () -. q0) :: !acc
            | Error e -> die e);
            read_latencies.(r) <- !acc
          done)
    in
    let threads =
      List.init writers (fun w -> Thread.create writer w)
      @ List.init readers (fun r -> Thread.create reader r)
    in
    List.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. t0 in
    (match own_server with Some s -> Srv.Server.stop s | None -> ());
    let ops = Atomic.get ops_applied in
    let throughput = float_of_int ops /. wall in
    let latencies =
      Array.of_list (List.concat (Array.to_list read_latencies))
    in
    Array.sort compare latencies;
    let reads = Array.length latencies in
    let pct p =
      if reads = 0 then 0.0
      else latencies.(min (reads - 1) (p * reads / 100)) *. 1e3
    in
    let lat_max = if reads = 0 then 0.0 else latencies.(reads - 1) *. 1e3 in
    Printf.printf
      "bench-ingest: %d writers, %d readers for %.2fs\n\
       writes: %d ops applied in %d frames (%.0f ops/s sustained)\n\
       reads:  %d live range queries; latency ms: p50 %.2f  p90 %.2f  p99 %.2f  \
       max %.2f\n"
      writers readers wall ops (Atomic.get frames_sent) throughput reads (pct 50)
      (pct 90) (pct 99) lat_max;
    let oc = open_out json_path in
    Printf.fprintf oc
      "{\n\
      \  \"benchmark\": \"live_ingest_mixed\",\n\
      \  \"writers\": %d,\n\
      \  \"readers\": %d,\n\
      \  \"batch\": %d,\n\
      \  \"wall_seconds\": %.4f,\n\
      \  \"write_ops_applied\": %d,\n\
      \  \"write_frames\": %d,\n\
      \  \"write_ops_per_s\": %.1f,\n\
      \  \"read_requests\": %d,\n\
      \  \"read_latency_ms\": { \"p50\": %.3f, \"p90\": %.3f, \"p99\": %.3f, \
       \"max\": %.3f }\n\
       }\n"
      writers readers batch wall ops (Atomic.get frames_sent) throughput reads
      (pct 50) (pct 90) (pct 99) lat_max;
    close_out oc;
    Printf.printf "wrote %s\n" json_path
  in
  Cmd.v
    (Cmd.info "bench-ingest"
       ~doc:
         "Mixed-workload ingest benchmark against the live table of $(b,sqp \
          serve) (or a self-hosted ephemeral server with --port 0): sustained \
          write throughput under concurrent snapshot reads; writes \
          BENCH_ingest.json.")
    Term.(
      const run $ host_arg $ port_arg ~default:0 $ writers_arg $ readers_arg
      $ seconds_arg $ batch_arg $ quick_arg $ json_arg)

(* Optimizer benchmark: for each seeded workload, time the plan the
   cost-based optimizer chooses against every forced alternative (and
   against the statistics-free size heuristic), and write the table to
   BENCH_optimizer.json.  The invariants the JSON records — chosen never
   slower than the worst alternative, and strictly better than the
   heuristic somewhere — are what docs/COST_MODEL.md's calibration
   section points at. *)
let bench_optimizer_cmd =
  let module R = Sqp_relalg in
  let module W = Sqp_workload in
  let module O = Sqp_optimizer in
  let quick_arg =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"CI smoke mode: 3 timing repetitions instead of 9.")
  in
  let json_arg =
    Arg.(
      value & opt string "BENCH_optimizer.json"
      & info [ "json" ] ~docv:"FILE" ~doc:"Where to write the results.")
  in
  let rec force impl plan =
    match plan with
    | R.Plan.Spatial_join { zl; zr; left; right; impl = _ } ->
        R.Plan.Spatial_join
          { zl; zr; left = force impl left; right = force impl right; impl = Some impl }
    | R.Plan.Select (p, t) -> R.Plan.Select (p, force impl t)
    | R.Plan.Project (ns, t) -> R.Plan.Project (ns, force impl t)
    | R.Plan.Project_all (ns, t) -> R.Plan.Project_all (ns, force impl t)
    | R.Plan.Rename (rs, t) -> R.Plan.Rename (rs, force impl t)
    | R.Plan.Sort (ns, t) -> R.Plan.Sort (ns, force impl t)
    | R.Plan.Natural_join (a, b) -> R.Plan.Natural_join (force impl a, force impl b)
    | R.Plan.Product (a, b) -> R.Plan.Product (force impl a, force impl b)
    | R.Plan.Union (a, b) -> R.Plan.Union (force impl a, force impl b)
    | (R.Plan.Scan _ | R.Plan.Scan_stored _) as leaf -> leaf
  in
  let run quick json_path =
    let reps = if quick then 3 else 9 in
    let median_ms f =
      ignore (f ()) (* warm caches (buffer pools, decompose memo) *);
      let samples =
        List.init reps (fun _ ->
            let t0 = Unix.gettimeofday () in
            ignore (f ());
            (Unix.gettimeofday () -. t0) *. 1e3)
      in
      List.nth (List.sort compare samples) (reps / 2)
    in
    let impl_name = function
      | R.Plan.Merge -> "merge"
      | R.Plan.Nested_loop -> "nested_loop"
    in
    (* One join workload: the chosen plan vs both forced implementations
       vs the statistics-free heuristic, all over the same catalog. *)
    let join_workload name (wk : W.Seeded.t) =
      let cat = Srv.Catalog.of_seeded wk in
      let st = Srv.Catalog.analyze cat in
      let plan = R.Plan.optimize (Srv.Catalog.overlap_plan cat) in
      let chosen_plan, decisions = O.Optimizer.choose_plan st plan in
      let d = List.hd decisions in
      let alts =
        [
          ("forced merge", force R.Plan.Merge plan);
          ("forced nested_loop", force R.Plan.Nested_loop plan);
          ("heuristic", plan);
        ]
      in
      let timed =
        List.map (fun (label, p) -> (label, median_ms (fun () -> R.Plan.run p))) alts
      in
      let chosen_ms = median_ms (fun () -> R.Plan.run chosen_plan) in
      let heuristic_ms = List.assoc "heuristic" timed in
      let worst_ms = List.fold_left (fun a (_, ms) -> max a ms) 0.0 timed in
      Printf.printf
        "%s: %.0fx%.0f rows; chosen %s%s %.3f ms | %s | heuristic would %s\n"
        name d.O.Optimizer.left_rows d.O.Optimizer.right_rows
        (impl_name d.O.Optimizer.chosen)
        (if d.O.Optimizer.commuted then " (commuted)" else "")
        chosen_ms
        (String.concat " | "
           (List.map (fun (l, ms) -> Printf.sprintf "%s %.3f ms" l ms) timed))
        (if d.O.Optimizer.heuristic_would_merge then "merge" else "nested_loop");
      Printf.sprintf
        "    { \"workload\": %S,\n\
        \      \"left_rows\": %.0f, \"right_rows\": %.0f,\n\
        \      \"chosen\": { \"impl\": %S, \"commuted\": %b, \"ms\": %.4f },\n\
        \      \"alternatives\": [ %s ],\n\
        \      \"heuristic_impl\": %S,\n\
        \      \"chosen_not_slower_than_worst\": %b,\n\
        \      \"beats_heuristic\": %b }"
        name d.O.Optimizer.left_rows d.O.Optimizer.right_rows
        (impl_name d.O.Optimizer.chosen)
        d.O.Optimizer.commuted chosen_ms
        (String.concat ", "
           (List.map
              (fun (l, ms) -> Printf.sprintf "{ \"label\": %S, \"ms\": %.4f }" l ms)
              timed))
        (if d.O.Optimizer.heuristic_would_merge then "merge" else "nested_loop")
        (chosen_ms <= worst_ms *. 1.05)
        (chosen_ms < heuristic_ms)
    in
    (* Range workload: per query box, the chosen access path (direct
       plain/skip merge at exact decomposition, or the coarsened plan)
       vs every forced method, summed over the batch. *)
    let range_workload (wk : W.Seeded.t) =
      let cat = Srv.Catalog.of_seeded wk in
      let st = Srv.Catalog.analyze cat in
      ignore st;
      let prep = Srv.Catalog.prepared_points cat in
      let boxes =
        wk.W.Seeded.query
        :: Array.to_list (Array.sub wk.W.Seeded.query_boxes 0 5)
      in
      let sum f =
        median_ms (fun () -> List.iter (fun b -> ignore (f b)) boxes)
      in
      let plain_ms = sum (fun b -> Sqp_core.Range_search.search_plain prep b) in
      let skip_ms = sum (fun b -> Sqp_core.Range_search.search_skip prep b) in
      let plan_ms =
        sum (fun b ->
            R.Plan.run
              (R.Plan.optimize
                 (Srv.Catalog.range_plan cat ~lo:(Sqp_geom.Box.lo b)
                    ~hi:(Sqp_geom.Box.hi b))))
      in
      let chosen_one b =
        let lo = Sqp_geom.Box.lo b and hi = Sqp_geom.Box.hi b in
        match Srv.Catalog.range_access cat ~lo ~hi with
        | Srv.Catalog.Direct best -> (
            match best.O.Cost.method_ with
            | O.Cost.Plain -> ignore (Sqp_core.Range_search.search_plain prep b)
            | O.Cost.Skip -> ignore (Sqp_core.Range_search.search_skip prep b))
        | Srv.Catalog.Planned ->
            ignore
              (R.Plan.run
                 (R.Plan.optimize (Srv.Catalog.range_plan cat ~lo ~hi)))
      in
      let chosen_ms = median_ms (fun () -> List.iter chosen_one boxes) in
      let worst_ms = max plain_ms (max skip_ms plan_ms) in
      Printf.printf
        "range batch (%d boxes): chosen %.3f ms | plain %.3f ms | skip %.3f ms \
         | plan %.3f ms\n"
        (List.length boxes) chosen_ms plain_ms skip_ms plan_ms;
      Printf.sprintf
        "    { \"workload\": \"range_batch\",\n\
        \      \"boxes\": %d,\n\
        \      \"chosen\": { \"impl\": \"per-box cost decision\", \"ms\": %.4f },\n\
        \      \"alternatives\": [ { \"label\": \"plain/exact\", \"ms\": %.4f },\n\
        \                         { \"label\": \"skip/exact\", \"ms\": %.4f },\n\
        \                         { \"label\": \"plan path\", \"ms\": %.4f } ],\n\
        \      \"chosen_not_slower_than_worst\": %b }"
        (List.length boxes) chosen_ms plain_ms skip_ms plan_ms
        (chosen_ms <= worst_ms *. 1.05)
    in
    let big = W.Seeded.standard () in
    (* A join whose element product sits {e under} the 20k size-heuristic
       threshold while both sides are big enough that the merge wins:
       the workload where statistics beat the heuristic. *)
    let small =
      let fits k =
        let wk = W.Seeded.standard ~n_objects:k () in
        let l, r = W.Seeded.join_elements wk in
        let p = List.length l * List.length r in
        if p <= 20_000 && p >= 4_000 then Some wk else None
      in
      List.find_map fits [ 24; 20; 16; 12; 10; 8; 6; 4 ]
    in
    let rows =
      join_workload "overlap_join" big
      :: (match small with
         | Some wk -> [ join_workload "small_join" wk ]
         | None -> [])
      @ [ range_workload big ]
    in
    let oc = open_out json_path in
    Printf.fprintf oc
      "{\n\
      \  \"benchmark\": \"optimizer_chosen_vs_forced\",\n\
      \  \"repetitions\": %d,\n\
      \  \"workloads\": [\n%s\n  ]\n}\n"
      reps
      (String.concat ",\n" rows);
    close_out oc;
    Printf.printf "wrote %s\n" json_path
  in
  Cmd.v
    (Cmd.info "bench-optimizer"
       ~doc:
         "Cost-based optimizer benchmark: the chosen plan vs every forced \
          alternative (join implementations, range access paths) on the \
          seeded workloads; writes BENCH_optimizer.json.")
    Term.(const run $ quick_arg $ json_arg)

(* Compression benchmark: front-coded pages against the fixed-width
   baseline at the same byte budget — entries per page, data pages
   touched per range query, on-disk dump sizes (v3 vs v2), and the
   latency guardrails on the range and kernel-join paths. *)
let bench_compress_cmd =
  let module W = Sqp_workload in
  let module Zi = Sqp_btree.Zindex in
  let module P = Sqp_btree.Persist in
  let quick_arg =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"CI smoke mode: 3 timing repetitions instead of 9.")
  in
  let json_arg =
    Arg.(
      value & opt string "BENCH_compress.json"
      & info [ "json" ] ~docv:"FILE" ~doc:"Where to write the results.")
  in
  let run quick json_path =
    let reps = if quick then 3 else 9 in
    let median_ms f =
      ignore (f ()) (* warm caches *);
      let samples =
        List.init reps (fun _ ->
            let t0 = Unix.gettimeofday () in
            ignore (f ());
            (Unix.gettimeofday () -. t0) *. 1e3)
      in
      List.nth (List.sort compare samples) (reps / 2)
    in
    let wk = W.Seeded.standard () in
    let space = wk.W.Seeded.space in
    let pts = W.Seeded.tagged_points wk in
    let budget = 512 in
    (* The payload is a row id: charge it as a u32, so the density
       comparison measures the key layouts rather than payload padding. *)
    let comp = Zi.of_points ~page_budget:budget ~value_bytes:4 space pts in
    let fixed =
      Zi.of_points ~page_budget:budget ~value_bytes:4 ~compressed:false space
        pts
    in
    let boxes = Array.to_list wk.W.Seeded.query_boxes in
    (* Differential sweep: identical rows, fewer pages. *)
    let pages_comp = ref 0 and pages_fixed = ref 0 and mismatches = ref 0 in
    List.iter
      (fun b ->
        let rc, sc = Zi.range_search comp b in
        let rf, sf = Zi.range_search fixed b in
        if rc <> rf then incr mismatches;
        pages_comp := !pages_comp + sc.Zi.data_pages;
        pages_fixed := !pages_fixed + sf.Zi.data_pages)
      boxes;
    let cstats =
      match Zi.compression_stats comp with
      | Some c -> c
      | None -> assert false (* built with a budget *)
    in
    let fixed_epp = Zi.avg_leaf_entries fixed in
    (* On-disk dumps of the same index in both formats. *)
    let v3_path = Filename.temp_file "sqp_bench_compress" ".v3" in
    let v2_path = Filename.temp_file "sqp_bench_compress" ".v2" in
    let v3_pages = P.save ~format:P.V3 ~path:v3_path ~encode:string_of_int comp in
    let v2_pages = P.save ~format:P.V2 ~path:v2_path ~encode:string_of_int comp in
    let file_size p = (Unix.stat p).Unix.st_size in
    let v3_bytes = file_size v3_path and v2_bytes = file_size v2_path in
    Sys.remove v3_path;
    Sys.remove v2_path;
    (* Latency guardrails: the compressed layout must not slow the range
       path, and the streaming runs sweep must hold its own against the
       flat-array kernel. *)
    let range_ms idx =
      median_ms (fun () ->
          List.iter (fun b -> ignore (Zi.range_search idx b)) boxes)
    in
    let range_comp_ms = range_ms comp and range_fixed_ms = range_ms fixed in
    let l_elts, r_elts = W.Seeded.join_elements wk in
    let comparisons = ref 0 in
    let join =
      match
        ( Sqp_core.Zseq.of_list ~comparisons l_elts,
          Sqp_core.Zseq.of_list ~comparisons r_elts )
      with
      | Some ls, Some rs ->
          let lr = Sqp_core.Zseq.to_runs ls and rr = Sqp_core.Zseq.to_runs rs in
          let flat_pairs, _ = Sqp_core.Zseq.pairs ~comparisons ls rs in
          let runs_pairs, _ = Sqp_core.Zseq.pairs_runs ~comparisons lr rr in
          let flat_ms =
            median_ms (fun () -> Sqp_core.Zseq.pairs ~comparisons ls rs)
          in
          let runs_ms =
            median_ms (fun () -> Sqp_core.Zseq.pairs_runs ~comparisons lr rr)
          in
          let z_bytes =
            Sqp_core.Zseq.runs_bytes lr + Sqp_core.Zseq.runs_bytes rr
          in
          let z_raw =
            Sqp_core.Zseq.runs_raw_bytes lr + Sqp_core.Zseq.runs_raw_bytes rr
          in
          Some (flat_ms, runs_ms, flat_pairs = runs_pairs, z_bytes, z_raw)
      | _ -> None
    in
    Printf.printf
      "leaf density (budget %dB): %.1f entries/page front-coded vs %.1f \
       fixed-width (%.2fx, %d vs %d leaves)\n"
      budget cstats.Zi.avg_entries_per_leaf fixed_epp cstats.Zi.ratio
      cstats.Zi.leaves (Zi.data_page_count fixed);
    Printf.printf
      "range batch (%d boxes): %d data pages compressed vs %d fixed (rows %s); \
       %.3f ms vs %.3f ms\n"
      (List.length boxes) !pages_comp !pages_fixed
      (if !mismatches = 0 then "identical" else
         Printf.sprintf "MISMATCH on %d boxes" !mismatches)
      range_comp_ms range_fixed_ms;
    Printf.printf "on disk: v3 %d pages / %d bytes vs v2 %d pages / %d bytes\n"
      v3_pages v3_bytes v2_pages v2_bytes;
    (match join with
    | Some (flat_ms, runs_ms, same, zb, zr) ->
        Printf.printf
          "kernel join: flat %.3f ms vs runs %.3f ms (pairs %s); z bytes %d vs \
           %d raw (%.2fx)\n"
          flat_ms runs_ms
          (if same then "identical" else "MISMATCH")
          zb zr
          (float_of_int zr /. float_of_int (max 1 zb))
    | None -> print_endline "kernel join: skipped (z values exceed Zpacked)");
    let oc = open_out json_path in
    Printf.fprintf oc
      "{\n\
      \  \"benchmark\": \"compressed_vs_fixed_storage\",\n\
      \  \"repetitions\": %d,\n\
      \  \"page_budget_bytes\": %d,\n\
      \  \"leaf_density\": { \"compressed\": %.2f, \"fixed\": %.2f, \"ratio\": \
       %.3f },\n\
      \  \"leaves\": { \"compressed\": %d, \"fixed\": %d },\n\
      \  \"range_batch\": { \"boxes\": %d, \"data_pages_compressed\": %d,\n\
      \                    \"data_pages_fixed\": %d, \"rows_identical\": %b,\n\
      \                    \"ms_compressed\": %.4f, \"ms_fixed\": %.4f },\n\
      \  \"on_disk\": { \"v3_pages\": %d, \"v3_bytes\": %d, \"v2_pages\": %d, \
       \"v2_bytes\": %d },\n\
       %s\
      \  \"density_ratio_at_least_1_5\": %b,\n\
      \  \"fewer_pages_than_fixed\": %b\n\
       }\n"
      reps budget cstats.Zi.avg_entries_per_leaf fixed_epp cstats.Zi.ratio
      cstats.Zi.leaves (Zi.data_page_count fixed) (List.length boxes)
      !pages_comp !pages_fixed (!mismatches = 0) range_comp_ms range_fixed_ms
      v3_pages v3_bytes v2_pages v2_bytes
      (match join with
      | Some (flat_ms, runs_ms, same, zb, zr) ->
          Printf.sprintf
            "  \"kernel_join\": { \"ms_flat\": %.4f, \"ms_runs\": %.4f, \
             \"pairs_identical\": %b,\n\
            \                    \"z_bytes_runs\": %d, \"z_bytes_raw\": %d },\n"
            flat_ms runs_ms same zb zr
      | None -> "")
      (cstats.Zi.ratio >= 1.5)
      (!pages_comp < !pages_fixed);
    close_out oc;
    Printf.printf "wrote %s\n" json_path;
    if !mismatches > 0 then Stdlib.exit 1
  in
  Cmd.v
    (Cmd.info "bench-compress"
       ~doc:
         "Prefix-compression benchmark: front-coded vs fixed-width pages at \
          the same byte budget (leaf density, pages per range query, v3 vs v2 \
          dump sizes, kernel latencies); writes BENCH_compress.json.")
    Term.(const run $ quick_arg $ json_arg)

(* {1 Cluster: shard spawning, the router daemon, the scaling bench} *)

(* Spawn [sqp serve --port 0 --shard spec] as a child process and parse
   the machine-parseable SQP_SERVE_PORT= line off its stdout.  A drain
   thread keeps reading so the child can never block on a full pipe. *)
type spawned_shard = { pid : int; port : int; drain : Thread.t }

let spawn_shard ?(live_empty = false) ~points ~objects ~spec () =
  let exe = Sys.executable_name in
  let args =
    [ exe; "serve"; "--port"; "0"; "--points"; string_of_int points;
      "--objects"; string_of_int objects; "--shard"; spec ]
    @ (if live_empty then [ "--live-empty" ] else [])
  in
  let out_r, out_w = Unix.pipe ~cloexec:false () in
  let pid = Unix.create_process exe (Array.of_list args) Unix.stdin out_w Unix.stderr in
  Unix.close out_w;
  let ic = Unix.in_channel_of_descr out_r in
  let prefix = "SQP_SERVE_PORT=" in
  let rec find_port () =
    let line = input_line ic in
    if String.length line > String.length prefix
       && String.sub line 0 (String.length prefix) = prefix
    then
      int_of_string
        (String.sub line (String.length prefix)
           (String.length line - String.length prefix))
    else find_port ()
  in
  match find_port () with
  | exception _ ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] pid);
      failwith (Printf.sprintf "shard %s failed to report a port" spec)
  | port ->
      let drain =
        Thread.create
          (fun () -> try while true do ignore (input_line ic) done with _ -> ())
          ()
      in
      { pid; port; drain }

let stop_shard s =
  (try Unix.kill s.pid Sys.sigterm with Unix.Unix_error _ -> ());
  ignore (try Unix.waitpid [] s.pid with Unix.Unix_error _ -> (s.pid, Unix.WEXITED 0));
  Thread.join s.drain

let spawn_even_shards ?(live_empty = false) ~points ~objects n =
  List.init n (fun i ->
      spawn_shard ~live_empty ~points ~objects
        ~spec:(Printf.sprintf "%d/%d" i n) ())

let route_cmd =
  let spawn_arg =
    Arg.(
      value & opt int 0
      & info [ "spawn" ] ~docv:"N"
          ~doc:
            "Spawn $(docv) local shard processes ($(b,sqp serve --shard I/N)) \
             on ephemeral ports and route over them; they are terminated on \
             shutdown.")
  in
  let shards_arg =
    Arg.(
      value & opt (some string) None
      & info [ "shards" ] ~docv:"LIST"
          ~doc:
            "Comma-separated host:port list of already-running shards, in \
             z-range order; shard i must have been started with $(b,--shard \
             i/N).  Mutually exclusive with $(b,--spawn).")
  in
  let points_arg =
    Arg.(
      value & opt int 5000
      & info [ "points" ] ~docv:"N" ~doc:"Points in each spawned shard's seeds.")
  in
  let objects_arg =
    Arg.(
      value & opt int 48
      & info [ "objects" ] ~docv:"N"
          ~doc:"Objects per join side in each spawned shard's seeds.")
  in
  let run host port spawn shards points objects =
    let wk = Sqp_workload.Seeded.standard ~n_points:points ~n_objects:objects () in
    let space = wk.Sqp_workload.Seeded.space in
    let spawned, endpoints =
      match (spawn, shards) with
      | n, None when n > 0 ->
          let ss = spawn_even_shards ~points ~objects n in
          (ss, List.map (fun s -> ("127.0.0.1", s.port)) ss)
      | 0, Some list ->
          ( [],
            List.map
              (fun hp ->
                match String.rindex_opt hp ':' with
                | Some i ->
                    ( String.sub hp 0 i,
                      int_of_string
                        (String.sub hp (i + 1) (String.length hp - i - 1)) )
                | None ->
                    Printf.eprintf "sqp route: bad endpoint %S\n" hp;
                    Stdlib.exit 2)
              (String.split_on_char ',' list) )
      | _ ->
          Printf.eprintf
            "sqp route: give exactly one of --spawn N or --shards LIST\n";
          Stdlib.exit 2
    in
    let map = Srv.Shard_map.even space endpoints in
    let config = { Sqp_cluster.Router.default_config with host; port } in
    let router =
      try Sqp_cluster.Router.start ~config ~space ~map ()
      with e ->
        List.iter stop_shard spawned;
        raise e
    in
    Printf.printf "SQP_ROUTE_PORT=%d\n%!" (Sqp_cluster.Router.port router);
    Printf.printf "sqp route: listening on %s:%d (epoch %d, %d shards)\n%!" host
      (Sqp_cluster.Router.port router)
      map.Srv.Shard_map.epoch (List.length endpoints);
    List.iteri
      (fun i (e : Srv.Shard_map.entry) ->
        Printf.printf "  shard %d: %s:%d z=[%d,%d]\n%!" i e.host e.port e.zlo
          e.zhi)
      map.Srv.Shard_map.entries;
    let stop_requested = ref false in
    let on_signal _ = stop_requested := true in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    while not !stop_requested do
      Thread.delay 0.05
    done;
    print_endline "sqp route: draining...";
    Sqp_cluster.Router.stop router;
    List.iter stop_shard spawned;
    print_endline "sqp route: drained; final metrics:";
    print_string
      (Sqp_obs.Metrics.to_text
         (Sqp_obs.Metrics.snapshot (Sqp_obs.Metrics.global ())));
    print_endline "sqp route: bye."
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:
         "Run the cluster router over N z-range shards (spawned locally or \
          already running), speaking the same wire protocol as a single \
          server, until SIGTERM/SIGINT; then drain, stop spawned shards and \
          exit 0.")
    Term.(
      const run $ host_arg $ port_arg ~default:7478 $ spawn_arg $ shards_arg
      $ points_arg $ objects_arg)

let bench_cluster_cmd =
  let quick_arg =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"CI smoke mode: fewer points and queries.")
  in
  let json_arg =
    Arg.(
      value & opt string "BENCH_cluster.json"
      & info [ "json" ] ~docv:"FILE" ~doc:"Where to write the summary.")
  in
  let clients_arg =
    Arg.(
      value & opt int 2
      & info [ "clients" ] ~docv:"N" ~doc:"Concurrent client connections.")
  in
  let run quick json_path clients =
    let points = if quick then 4000 else 20000 in
    let objects = 48 in
    let queries = if quick then 60 else 400 in
    let wk = Sqp_workload.Seeded.standard ~n_points:points () in
    let space = wk.Sqp_workload.Seeded.space in
    let boxes = wk.Sqp_workload.Seeded.query_boxes in
    (* Throughput scaling on one box comes from data partitioning, not
       extra cores: the statistics-free (Planned) range path costs
       per-query work proportional to the shard's point count, and the
       box cover prunes the fan-out to the overlapping shards — so no
       Refresh_stats here, on purpose. *)
    let run_one n_shards =
      let shards = spawn_even_shards ~points ~objects n_shards in
      Fun.protect ~finally:(fun () -> List.iter stop_shard shards)
      @@ fun () ->
      let map =
        Srv.Shard_map.even space
          (List.map (fun s -> ("127.0.0.1", s.port)) shards)
      in
      let metrics = Sqp_obs.Metrics.create () in
      let router =
        Sqp_cluster.Router.start
          ~config:{ Sqp_cluster.Router.default_config with port = 0 }
          ~metrics ~space ~map ()
      in
      Fun.protect ~finally:(fun () -> Sqp_cluster.Router.stop router)
      @@ fun () ->
      let rport = Sqp_cluster.Router.port router in
      let per_client = queries / clients in
      let t0 = Unix.gettimeofday () in
      let threads =
        List.init clients (fun c ->
            Thread.create
              (fun () ->
                Srv.Client.with_connect ~port:rport (fun client ->
                    for i = 0 to per_client - 1 do
                      let box = boxes.(((c * 131) + i) mod Array.length boxes) in
                      match
                        Srv.Client.range_search client
                          ~lo:(Sqp_geom.Box.lo box) ~hi:(Sqp_geom.Box.hi box)
                      with
                      | Ok _ -> ()
                      | Error e ->
                          Printf.eprintf "bench-cluster: %s\n"
                            (Srv.Client.error_to_string e);
                          Stdlib.exit 1
                    done))
              ())
      in
      List.iter Thread.join threads;
      let wall = Unix.gettimeofday () -. t0 in
      let total = per_client * clients in
      let jt0 = Unix.gettimeofday () in
      let join_rows =
        Srv.Client.with_connect ~port:rport (fun client ->
            match Srv.Client.query client join_wire_plan with
            | Ok rel -> Sqp_relalg.Relation.cardinality rel
            | Error e ->
                Printf.eprintf "bench-cluster: join failed: %s\n"
                  (Srv.Client.error_to_string e);
                Stdlib.exit 1)
      in
      let join_ms = (Unix.gettimeofday () -. jt0) *. 1e3 in
      let qps = float_of_int total /. wall in
      Printf.printf
        "bench-cluster: %d shard%s: %d range queries in %.2fs (%.1f q/s); \
         join %d rows in %.1fms\n\
         %!"
        n_shards
        (if n_shards = 1 then "" else "s")
        total wall qps join_rows join_ms;
      (n_shards, total, wall, qps, join_rows, join_ms)
    in
    let runs = List.map run_one [ 1; 2; 4 ] in
    let monotonic =
      match runs with
      | [ (_, _, _, q1, _, _); (_, _, _, q2, _, _); (_, _, _, q4, _, _) ] ->
          q1 <= q2 && q2 <= q4
      | _ -> false
    in
    let join_consistent =
      match runs with
      | (_, _, _, _, r1, _) :: rest ->
          List.for_all (fun (_, _, _, _, r, _) -> r = r1) rest
      | [] -> false
    in
    if not join_consistent then begin
      Printf.eprintf
        "bench-cluster: join row counts diverge across shard counts\n";
      Stdlib.exit 1
    end;
    if not monotonic then
      Printf.eprintf
        "bench-cluster: WARNING: throughput not monotonic across 1/2/4 shards\n";
    let oc = open_out json_path in
    Printf.fprintf oc
      "{\n\
      \  \"benchmark\": \"cluster_scaling_closed_loop\",\n\
      \  \"quick\": %b,\n\
      \  \"points\": %d,\n\
      \  \"clients\": %d,\n\
      \  \"monotonic_1_2_4\": %b,\n\
      \  \"join_rows_consistent\": %b,\n\
      \  \"runs\": [\n%s\n  ]\n\
       }\n"
      quick points clients monotonic join_consistent
      (String.concat ",\n"
         (List.map
            (fun (n, total, wall, qps, jr, jms) ->
              Printf.sprintf
                "    { \"shards\": %d, \"queries\": %d, \"wall_seconds\": \
                 %.4f, \"throughput_qps\": %.1f, \"join_rows\": %d, \
                 \"join_ms\": %.2f }"
                n total wall qps jr jms)
            runs));
    close_out oc;
    Printf.printf "wrote %s\n" json_path
  in
  Cmd.v
    (Cmd.info "bench-cluster"
       ~doc:
         "Cluster scaling benchmark: the same closed-loop range-query \
          workload against a router over 1, 2 and 4 spawned z-range shards; \
          verifies the spatial join answers identically at every shard count \
          and writes BENCH_cluster.json (throughput must grow with the shard \
          count — per-query work shrinks with the shard's slice).")
    Term.(const run $ quick_arg $ json_arg $ clients_arg)

let () =
  let info =
    Cmd.info "sqp" ~version:"1.0.0"
      ~doc:
        "Reproduction of Orenstein's 'Spatial Query Processing in an \
         Object-Oriented Database System' (SIGMOD 1986)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            figures_cmd; figure6_cmd; experiment_cmd; compare_cmd;
            strategies_cmd; policies_cmd; partial_match_cmd; euv_cmd;
            coarsen_cmd; proximity_cmd; join_cmd; overlay_cmd; ccl_cmd;
            interference_cmd; fill_cmd; three_d_cmd; curves_cmd; object_join_cmd;
            all_cmd; query_cmd; fsck_cmd; serve_cmd; shell_cmd; bench_net_cmd;
            bench_ingest_cmd; bench_optimizer_cmd; bench_compress_cmd;
            route_cmd; bench_cluster_cmd;
          ]))
