(* Land registry: the full DBMS loop on one scenario.

   Parcels (polygons) and protected wetlands (discs) live in relations;
   the spatial join finds parcels intersecting wetlands; aggregation
   answers "how much of each parcel is wet?"; the query planner shows the
   optimized plan; and the parcel-centroid index is persisted to a file
   and reloaded.

   Run with: dune exec examples/land_registry.exe *)

module R = Sqp_relalg
module P = Sqp_relalg.Plan
module Z = Sqp_zorder

let () =
  let space = Sqp_core.Ag.space ~dims:2 ~depth:7 in

  (* Parcels: id, polygon. *)
  let parcels =
    [
      (101, Sqp_geom.Shape.Polygon (Sqp_geom.Polygon.make [ (5, 5); (45, 8); (40, 40); (8, 35) ]));
      (102, Sqp_geom.Shape.Box (Sqp_geom.Box.of_ranges [ (50, 90); (10, 50) ]));
      (103, Sqp_geom.Shape.Box (Sqp_geom.Box.of_ranges [ (95, 125); (60, 120) ]));
    ]
  in
  (* Wetlands: id, disc. *)
  let wetlands =
    [
      (201, Sqp_geom.Shape.Circle (Sqp_geom.Circle.make ~cx:45 ~cy:25 ~radius:12));
      (202, Sqp_geom.Shape.Circle (Sqp_geom.Circle.make ~cx:110 ~cy:90 ~radius:9));
    ]
  in

  (* Decompose both sets into element relations. *)
  let r =
    R.Ops.rename [ ("id", "parcel"); ("z", "zr") ]
      (R.Query.decompose_relation ~name:"parcels" space parcels)
  in
  let s =
    R.Ops.rename [ ("id", "wetland"); ("z", "zs") ]
      (R.Query.decompose_relation ~name:"wetlands" space wetlands)
  in
  Printf.printf "parcels: %d element tuples; wetlands: %d element tuples\n"
    (R.Relation.cardinality r) (R.Relation.cardinality s);

  (* Which parcels touch which wetlands?  Plan it, explain it, run it. *)
  let plan =
    P.Project
      ( [ "parcel"; "wetland" ],
        P.Spatial_join { zl = "zr"; zr = "zs"; left = P.Scan r; right = P.Scan s; impl = None } )
  in
  print_newline ();
  print_endline "plan:";
  print_string (P.explain (P.optimize plan));
  let pairs = P.run (P.optimize plan) in
  Format.printf "@.%a" R.Relation.pp pairs;

  (* How wet is each parcel?  Intersect decompositions via overlay and
     aggregate areas relationally. *)
  print_endline "wet area per parcel:";
  List.iter
    (fun (pid, shape) ->
      let parcel_layer = Sqp_core.Overlay.of_shape space shape () in
      let wet_area =
        List.fold_left
          (fun acc (_, wshape) ->
            let wet_layer = Sqp_core.Overlay.of_shape space wshape () in
            acc
            +. Sqp_core.Overlay.cells space
                 (Sqp_core.Overlay.inter space parcel_layer wet_layer))
          0.0 wetlands
      in
      let total = Sqp_core.Overlay.cells space parcel_layer in
      Printf.printf "  parcel %d: %.0f of %.0f cells wet (%.1f%%)\n" pid wet_area
        total
        (100.0 *. wet_area /. total))
    parcels;

  (* Global properties of the union of all wetlands. *)
  let wet_union =
    List.fold_left
      (fun acc (_, shape) ->
        Sqp_core.Overlay.union space acc (Sqp_core.Overlay.of_shape space shape ()))
      [] wetlands
  in
  let els = List.map fst wet_union in
  Printf.printf "\nwetland region: area %.0f, perimeter %d, %d separate ponds\n"
    (Sqp_core.Props.area space els)
    (Sqp_core.Props.perimeter space els)
    (Sqp_core.Ccl.label space els).Sqp_core.Ccl.component_count;

  (* Persist an index of parcel centroids and reload it. *)
  let centroid shape =
    let layer = Sqp_core.Overlay.of_shape space shape () in
    match Sqp_core.Props.centroid space (List.map fst layer) with
    | Some (x, y) -> [| int_of_float x; int_of_float y |]
    | None -> [| 0; 0 |]
  in
  let index =
    Sqp_btree.Zindex.of_points space
      (Array.of_list (List.map (fun (id, s) -> (centroid s, id)) parcels))
  in
  let path = Filename.temp_file "land_registry" ".sqp" in
  let pages = Sqp_btree.Persist.save ~path ~encode:string_of_int index in
  let reloaded = Sqp_btree.Persist.load ~path ~decode:int_of_string () in
  Printf.printf
    "\npersisted %d parcel centroids on %d pages; reloaded %d entries\n"
    (Sqp_btree.Zindex.length index) pages
    (Sqp_btree.Zindex.length reloaded);
  (match Sqp_btree.Zindex.nearest reloaded [| 60; 30 |] with
  | Some ((p, id), _) ->
      Printf.printf "nearest parcel to (60, 30): %d at (%d, %d)\n" id p.(0) p.(1)
  | None -> ());
  Sys.remove path
