module type KEY = sig
  type t

  val compare : t -> t -> int
  val separator : lo:t -> hi:t -> t
  val pp : Format.formatter -> t -> unit
  val encoded_bytes : t -> int
  val delta_bytes : prev:t -> t -> int
end

module Bitstring_key = struct
  type t = Sqp_zorder.Bitstring.t

  let compare = Sqp_zorder.Bitstring.compare
  let separator ~lo ~hi = Sqp_zorder.Bitstring.shortest_separator ~lo ~hi
  let pp = Sqp_zorder.Bitstring.pp

  (* Charges mirror the Zrun entry encodings: a whole key is a length
     byte plus its packed bits; a delta is a shared-prefix byte plus the
     packed suffix. *)
  let encoded_bytes b = 1 + ((Sqp_zorder.Bitstring.length b + 7) / 8)

  let delta_bytes ~prev b =
    let shared = Sqp_zorder.Bitstring.common_prefix_len prev b in
    1 + ((Sqp_zorder.Bitstring.length b - shared + 7) / 8)
end

module Int_key = struct
  type t = int

  let compare = Int.compare

  (* For integers, [hi] itself is a valid (and the only canonical)
     separator with lo < s <= hi. *)
  let separator ~lo ~hi =
    if lo >= hi then invalid_arg "Int_key.separator: lo >= hi";
    hi

  let pp = Format.pp_print_int

  let encoded_bytes _ = 8

  (* Leading equal bytes against the predecessor are elided, as a
     front coder over the big-endian representation would. *)
  let delta_bytes ~prev x =
    let rec significant n = if n = 0 then 0 else 1 + significant (n lsr 8) in
    1 + significant (prev lxor x)
end

(* Byte-budget page model: instead of fixed entry counts, a node is full
   when its encoded size would exceed [page_bytes].  With [compressed]
   set, keys after a node's first are charged their front-coded delta
   size; otherwise every key is charged [fixed_entry_bytes] (the v2
   fixed-width on-disk footprint), so the same byte budget reproduces
   the uncompressed baseline's fan-out for differential comparisons. *)
type budget = {
  page_bytes : int;
  compressed : bool;
  entry_overhead : int;  (* per-entry payload/bookkeeping charge *)
  fixed_entry_bytes : int;  (* per-key charge when not compressed *)
}

module Make (Key : KEY) = struct
  module Pool = Sqp_storage.Buffer_pool
  module Pager = Sqp_storage.Pager

  type 'a node =
    | Leaf of {
        keys : Key.t array;
        vals : 'a array;
        next : Pager.page_id option;
      }
    | Node of { seps : Key.t array; children : Pager.page_id array }

  type access_counters = {
    mutable leaf_reads : int;
    mutable internal_reads : int;
  }

  type 'a t = {
    pager : 'a node Pager.t;
    pool : 'a node Pool.t;
    mutable root : Pager.page_id;
    leaf_capacity : int;
    internal_capacity : int;
    budget : budget option;
    counters : access_counters;
    mutable size : int;
  }

  let create ?policy ?(pool_capacity = 8) ?budget ~leaf_capacity
      ~internal_capacity () =
    if leaf_capacity < 2 then invalid_arg "Bptree.create: leaf_capacity < 2";
    if internal_capacity < 3 then invalid_arg "Bptree.create: internal_capacity < 3";
    (match budget with
    | None -> ()
    | Some b ->
        if b.page_bytes < 16 then invalid_arg "Bptree.create: page_bytes < 16";
        if b.entry_overhead < 0 then
          invalid_arg "Bptree.create: negative entry_overhead";
        if b.fixed_entry_bytes < 1 then
          invalid_arg "Bptree.create: fixed_entry_bytes < 1");
    let pager = Pager.create () in
    let pool = Pool.create ?policy ~capacity:pool_capacity pager in
    let root = Pager.alloc pager (Leaf { keys = [||]; vals = [||]; next = None }) in
    {
      pager;
      pool;
      root;
      leaf_capacity;
      internal_capacity;
      budget;
      counters = { leaf_reads = 0; internal_reads = 0 };
      size = 0;
    }

  let budget t = t.budget

  (* {2 Byte accounting (budget mode)} *)

  let leaf_bytes b keys =
    let n = Array.length keys in
    let total = ref (n * b.entry_overhead) in
    if b.compressed then begin
      if n > 0 then total := !total + Key.encoded_bytes keys.(0);
      for i = 1 to n - 1 do
        total := !total + Key.delta_bytes ~prev:keys.(i - 1) keys.(i)
      done
    end
    else total := !total + (n * b.fixed_entry_bytes);
    !total

  (* Internal nodes: 4 bytes per child pointer plus the (front-coded)
     separators. *)
  let node_bytes b seps nchildren =
    let n = Array.length seps in
    let total = ref (4 * nchildren) in
    if b.compressed then begin
      if n > 0 then total := !total + Key.encoded_bytes seps.(0);
      for i = 1 to n - 1 do
        total := !total + Key.delta_bytes ~prev:seps.(i - 1) seps.(i)
      done
    end
    else total := !total + (n * b.fixed_entry_bytes);
    !total

  (* A budget-mode node must keep enough entries to split (2 keys / 3
     children of the halves), so byte overflow only triggers a split
     when one is possible. *)
  let leaf_overfull t keys =
    match t.budget with
    | None -> Array.length keys > t.leaf_capacity
    | Some b -> Array.length keys > 2 && leaf_bytes b keys > b.page_bytes

  let node_overfull t seps children =
    match t.budget with
    | None -> Array.length children > t.internal_capacity
    | Some b ->
        Array.length children > 3
        && node_bytes b seps (Array.length children) > b.page_bytes

  let io_stats t = Pager.stats t.pager

  let counters t = t.counters

  let reset_counters t =
    t.counters.leaf_reads <- 0;
    t.counters.internal_reads <- 0

  let read_node t page =
    let n = Pool.get t.pool page in
    (match n with
    | Leaf _ -> t.counters.leaf_reads <- t.counters.leaf_reads + 1
    | Node _ -> t.counters.internal_reads <- t.counters.internal_reads + 1);
    n

  let write_node t page n = Pool.update t.pool page n

  let free_node t page =
    Pool.discard t.pool page;
    Pager.free t.pager page

  let length t = t.size

  (* First index with keys.(i) >= k. *)
  let lower_bound keys k =
    let lo = ref 0 and hi = ref (Array.length keys) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Key.compare keys.(mid) k < 0 then lo := mid + 1 else hi := mid
    done;
    !lo

  (* First index with keys.(i) > k. *)
  let upper_bound keys k =
    let lo = ref 0 and hi = ref (Array.length keys) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Key.compare keys.(mid) k <= 0 then lo := mid + 1 else hi := mid
    done;
    !lo

  (* Child index for key [k]: first i with k < seps.(i), else the last
     child.  Keys equal to a separator route right of it. *)
  let route seps k =
    let n = Array.length seps in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Key.compare k seps.(mid) < 0 then hi := mid else lo := mid + 1
    done;
    !lo

  let array_insert a i x =
    let n = Array.length a in
    Array.init (n + 1) (fun j -> if j < i then a.(j) else if j = i then x else a.(j - 1))

  let array_remove a i =
    let n = Array.length a in
    Array.init (n - 1) (fun j -> if j < i then a.(j) else a.(j + 1))

  let sub = Array.sub

  (* Split position for an overfull leaf: a point near the middle where
     adjacent keys differ (a separator must exist between the halves).
     [None] if every key is equal — the leaf is then allowed to stay
     oversized rather than break separator invariants. *)
  let leaf_split_point keys =
    let n = Array.length keys in
    let mid = n / 2 in
    let ok s = s > 0 && s < n && Key.compare keys.(s - 1) keys.(s) < 0 in
    let rec search delta =
      if mid + delta >= n && mid - delta <= 0 then None
      else if ok (mid + delta) then Some (mid + delta)
      else if ok (mid - delta) then Some (mid - delta)
      else search (delta + 1)
    in
    search 0

  let rec insert_rec t page k v =
    match read_node t page with
    | Leaf { keys; vals; next } -> (
        let i = upper_bound keys k in
        let keys = array_insert keys i k and vals = array_insert vals i v in
        if not (leaf_overfull t keys) then begin
          write_node t page (Leaf { keys; vals; next });
          None
        end
        else
          match leaf_split_point keys with
          | None ->
              (* All keys equal: tolerate an oversized leaf. *)
              write_node t page (Leaf { keys; vals; next });
              None
          | Some s ->
              let n = Array.length keys in
              let right =
                Leaf { keys = sub keys s (n - s); vals = sub vals s (n - s); next }
              in
              let right_id = Pager.alloc t.pager right in
              write_node t page
                (Leaf { keys = sub keys 0 s; vals = sub vals 0 s; next = Some right_id });
              let sep = Key.separator ~lo:keys.(s - 1) ~hi:keys.(s) in
              Some (sep, right_id))
    | Node { seps; children } -> (
        let i = route seps k in
        match insert_rec t children.(i) k v with
        | None -> None
        | Some (sep, new_child) ->
            let seps = array_insert seps i sep
            and children = array_insert children (i + 1) new_child in
            if not (node_overfull t seps children) then begin
              write_node t page (Node { seps; children });
              None
            end
            else begin
              let m = Array.length seps / 2 in
              let right =
                Node
                  {
                    seps = sub seps (m + 1) (Array.length seps - m - 1);
                    children = sub children (m + 1) (Array.length children - m - 1);
                  }
              in
              let right_id = Pager.alloc t.pager right in
              write_node t page
                (Node { seps = sub seps 0 m; children = sub children 0 (m + 1) });
              Some (seps.(m), right_id)
            end)

  let insert t k v =
    (match insert_rec t t.root k v with
    | None -> ()
    | Some (sep, right_id) ->
        let new_root =
          Node { seps = [| sep |]; children = [| t.root; right_id |] }
        in
        t.root <- Pager.alloc t.pager new_root);
    t.size <- t.size + 1

  (* {2 Deletion with rebalancing} *)

  (* Budget-mode trees are bulk-built; deletion keeps them structurally
     sound (empty leaves and single-child nodes are cleaned up) without
     chasing a byte-occupancy target. *)
  let leaf_min t =
    match t.budget with Some _ -> 1 | None -> max 1 (t.leaf_capacity / 2)

  let node_min t =
    match t.budget with Some _ -> 2 | None -> max 2 (t.internal_capacity / 2)

  let node_size = function
    | Leaf { keys; _ } -> Array.length keys
    | Node { children; _ } -> Array.length children

  let underfull t = function
    | Leaf _ as n -> node_size n < leaf_min t
    | Node _ as n -> node_size n < node_min t

  (* Rebalance children.(i) of the internal node at [page], which may have
     become underfull.  Reads go through the pool but not the counters
     (maintenance, not query work, though physical I/O is still counted). *)
  let fix_child t page i =
    match Pool.get t.pool page with
    | Leaf _ -> assert false
    | Node { seps; children } ->
        let child = Pool.get t.pool children.(i) in
        if not (underfull t child) then ()
        else begin
          (* Prefer the left sibling; fall back to the right one. *)
          let li, ri = if i > 0 then (i - 1, i) else (i, i + 1) in
          let left_id = children.(li) and right_id = children.(ri) in
          let left = Pool.get t.pool left_id and right = Pool.get t.pool right_id in
          match (left, right) with
          | Leaf l, Leaf r ->
              let nl = Array.length l.keys and nr = Array.length r.keys in
              if i = ri && nl > leaf_min t then begin
                (* Borrow the left sibling's last entry. *)
                let k = l.keys.(nl - 1) and v = l.vals.(nl - 1) in
                write_node t left_id
                  (Leaf { l with keys = sub l.keys 0 (nl - 1); vals = sub l.vals 0 (nl - 1) });
                write_node t right_id
                  (Leaf { r with keys = array_insert r.keys 0 k; vals = array_insert r.vals 0 v });
                let sep = Key.separator ~lo:l.keys.(nl - 2) ~hi:k in
                write_node t page (Node { seps = Array.mapi (fun j s -> if j = li then sep else s) seps; children })
              end
              else if i = li && nr > leaf_min t then begin
                (* Borrow the right sibling's first entry. *)
                let k = r.keys.(0) and v = r.vals.(0) in
                write_node t right_id
                  (Leaf { r with keys = sub r.keys 1 (nr - 1); vals = sub r.vals 1 (nr - 1) });
                write_node t left_id
                  (Leaf { l with keys = Array.append l.keys [| k |]; vals = Array.append l.vals [| v |] });
                let sep = Key.separator ~lo:k ~hi:r.keys.(1) in
                write_node t page (Node { seps = Array.mapi (fun j s -> if j = li then sep else s) seps; children })
              end
              else begin
                (* Merge right into left. *)
                write_node t left_id
                  (Leaf
                     {
                       keys = Array.append l.keys r.keys;
                       vals = Array.append l.vals r.vals;
                       next = r.next;
                     });
                free_node t right_id;
                write_node t page
                  (Node { seps = array_remove seps li; children = array_remove children ri })
              end
          | Node l, Node r ->
              let nl = Array.length l.children and nr = Array.length r.children in
              let psep = seps.(li) in
              if i = ri && nl > node_min t then begin
                (* Rotate right through the parent. *)
                let moved_child = l.children.(nl - 1) and moved_sep = l.seps.(nl - 2) in
                write_node t left_id
                  (Node { seps = sub l.seps 0 (nl - 2); children = sub l.children 0 (nl - 1) });
                write_node t right_id
                  (Node
                     {
                       seps = array_insert r.seps 0 psep;
                       children = array_insert r.children 0 moved_child;
                     });
                write_node t page
                  (Node { seps = Array.mapi (fun j s -> if j = li then moved_sep else s) seps; children })
              end
              else if i = li && nr > node_min t then begin
                (* Rotate left through the parent. *)
                let moved_child = r.children.(0) and moved_sep = r.seps.(0) in
                write_node t right_id
                  (Node { seps = sub r.seps 1 (nr - 2); children = sub r.children 1 (nr - 1) });
                write_node t left_id
                  (Node
                     {
                       seps = Array.append l.seps [| psep |];
                       children = Array.append l.children [| moved_child |];
                     });
                write_node t page
                  (Node { seps = Array.mapi (fun j s -> if j = li then moved_sep else s) seps; children })
              end
              else begin
                (* Merge right into left around the parent separator. *)
                write_node t left_id
                  (Node
                     {
                       seps = Array.concat [ l.seps; [| psep |]; r.seps ];
                       children = Array.append l.children r.children;
                     });
                free_node t right_id;
                write_node t page
                  (Node { seps = array_remove seps li; children = array_remove children ri })
              end
          | Leaf _, Node _ | Node _, Leaf _ -> assert false
        end

  let rec delete_rec t page k =
    match read_node t page with
    | Leaf { keys; vals; next } ->
        let i = lower_bound keys k in
        if i < Array.length keys && Key.compare keys.(i) k = 0 then begin
          write_node t page
            (Leaf { keys = array_remove keys i; vals = array_remove vals i; next });
          true
        end
        else false
    | Node { seps; children } ->
        let i = route seps k in
        let found = delete_rec t children.(i) k in
        if found then fix_child t page i;
        found

  let delete t k =
    let found = delete_rec t t.root k in
    if found then begin
      t.size <- t.size - 1;
      (* Collapse a root with a single child. *)
      match Pool.get t.pool t.root with
      | Node { children = [| only |]; _ } ->
          let old = t.root in
          t.root <- only;
          free_node t old
      | Node _ | Leaf _ -> ()
    end;
    found

  (* {2 Bulk loading} *)

  let bulk_load ?(fill = 1.0) t entries =
    if t.size <> 0 then invalid_arg "Bptree.bulk_load: tree not empty";
    if fill <= 0.0 || fill > 1.0 then invalid_arg "Bptree.bulk_load: bad fill";
    let n = Array.length entries in
    for i = 1 to n - 1 do
      if Key.compare (fst entries.(i - 1)) (fst entries.(i)) > 0 then
        invalid_arg "Bptree.bulk_load: input not sorted"
    done;
    if n = 0 then ()
    else begin
      let per_leaf = max 2 (int_of_float (fill *. float_of_int t.leaf_capacity)) in
      (* Where a leaf starting at [s] would end: a fixed entry count, or
         in budget mode the longest prefix fitting [fill] of the byte
         budget (always at least 2 entries). *)
      let leaf_stop s =
        match t.budget with
        | None -> min n (s + per_leaf)
        | Some b ->
            let target = fill *. float_of_int b.page_bytes in
            let bytes = ref 0 and j = ref s in
            let fits () =
              let k = fst entries.(!j) in
              let c =
                b.entry_overhead
                +
                if not b.compressed then b.fixed_entry_bytes
                else if !j = s then Key.encoded_bytes k
                else Key.delta_bytes ~prev:(fst entries.(!j - 1)) k
              in
              if !j - s >= 2 && float_of_int (!bytes + c) > target then false
              else begin
                bytes := !bytes + c;
                true
              end
            in
            while !j < n && fits () do
              incr j
            done;
            !j
      in
      (* Chunk into leaves; never split a run of equal keys across leaves. *)
      let chunks = ref [] in
      let start = ref 0 in
      while !start < n do
        let stop = ref (leaf_stop !start) in
        while
          !stop < n && !stop > !start + 1 && Key.compare (fst entries.(!stop - 1)) (fst entries.(!stop)) = 0
        do
          decr stop
        done;
        (* If the whole chunk is one equal run, extend instead. *)
        (if !stop < n && Key.compare (fst entries.(!stop - 1)) (fst entries.(!stop)) = 0 then
           let j = ref !stop in
           let () =
             while !j < n && Key.compare (fst entries.(!j - 1)) (fst entries.(!j)) = 0 do
               incr j
             done
           in
           stop := !j);
        chunks := (!start, !stop) :: !chunks;
        start := !stop
      done;
      let chunks = List.rev !chunks in
      (* Build leaves left to right, chaining next pointers afterwards via
         a second pass (alloc order is left to right so we can link as we
         go by patching the previous leaf). *)
      let leaves =
        List.map
          (fun (s, e) ->
            let keys = Array.init (e - s) (fun i -> fst entries.(s + i))
            and vals = Array.init (e - s) (fun i -> snd entries.(s + i)) in
            let id = Pager.alloc t.pager (Leaf { keys; vals; next = None }) in
            (id, keys.(0), keys.(Array.length keys - 1)))
          chunks
      in
      let rec link = function
        | (id, _, _) :: ((next_id, _, _) :: _ as rest) ->
            (match Pool.get t.pool id with
            | Leaf l -> write_node t id (Leaf { l with next = Some next_id })
            | Node _ -> assert false);
            link rest
        | _ -> ()
      in
      link leaves;
      (* Build internal levels. *)
      let rec build level =
        match level with
        | [] -> assert false
        | [ (id, _, _) ] -> id
        | _ ->
            let groups =
              match t.budget with
              | None ->
                  let per_node = max 2 t.internal_capacity in
                  let rec group acc cur cur_n = function
                    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
                    | x :: rest ->
                        if cur_n = per_node then
                          group (List.rev cur :: acc) [ x ] 1 rest
                        else group acc (x :: cur) (cur_n + 1) rest
                  in
                  group [] [] 0 level
              | Some b ->
                  (* Greedy byte packing with the real separators: a new
                     child costs its pointer plus the separator against
                     the previous child. *)
                  let target = fill *. float_of_int b.page_bytes in
                  let rec group acc cur cur_n bytes prev_sep prev_max =
                    function
                    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
                    | ((_, rmin, rmax) as x) :: rest ->
                        if cur_n = 0 then group acc [ x ] 1 4 None rmax rest
                        else
                          let sep = Key.separator ~lo:prev_max ~hi:rmin in
                          let c =
                            4
                            +
                            if not b.compressed then b.fixed_entry_bytes
                            else
                              match prev_sep with
                              | None -> Key.encoded_bytes sep
                              | Some p -> Key.delta_bytes ~prev:p sep
                          in
                          if cur_n >= 2 && float_of_int (bytes + c) > target
                          then group (List.rev cur :: acc) [ x ] 1 4 None rmax rest
                          else
                            group acc (x :: cur) (cur_n + 1) (bytes + c)
                              (Some sep) rmax rest
                  in
                  let _, _, m0 = List.hd level in
                  group [] [] 0 0 None m0 level
            in
            (* Avoid a trailing 1-child group: rebalance with the previous
               group if needed. *)
            let groups =
              let rec fix = function
                | [ g1; [ single ] ] ->
                    let n1 = List.length g1 in
                    let keep = n1 - 1 in
                    let rec split i = function
                      | [] -> ([], [])
                      | x :: rest ->
                          if i = 0 then ([], x :: rest)
                          else
                            let a, b = split (i - 1) rest in
                            (x :: a, b)
                    in
                    let a, b = split keep g1 in
                    [ a; b @ [ single ] ]
                | g :: rest -> g :: fix rest
                | [] -> []
              in
              fix groups
            in
            let parents =
              List.map
                (fun group ->
                  let arr = Array.of_list group in
                  let children = Array.map (fun (id, _, _) -> id) arr in
                  let seps =
                    Array.init
                      (Array.length arr - 1)
                      (fun i ->
                        let _, _, lmax = arr.(i) and _, rmin, _ = arr.(i + 1) in
                        Key.separator ~lo:lmax ~hi:rmin)
                  in
                  let id = Pager.alloc t.pager (Node { seps; children }) in
                  let _, fmin, _ = arr.(0)
                  and _, _, lmax = arr.(Array.length arr - 1) in
                  (id, fmin, lmax))
                groups
            in
            build parents
      in
      let new_root = build leaves in
      let old_root = t.root in
      t.root <- new_root;
      free_node t old_root;
      t.size <- n
    end

  (* {2 Queries} *)

  let rec find_leaf t page k =
    match read_node t page with
    | Leaf l -> (page, l.keys, l.vals, l.next)
    | Node { seps; children } -> find_leaf t children.(route seps k) k

  let find t k =
    let _, keys, vals, _ = find_leaf t t.root k in
    let i = lower_bound keys k in
    if i < Array.length keys && Key.compare keys.(i) k = 0 then Some vals.(i)
    else None

  let mem t k = Option.is_some (find t k)

  type 'a cursor = {
    tree : 'a t;
    mutable page : Pager.page_id option;
    mutable keys : Key.t array;
    mutable vals : 'a array;
    mutable next : Pager.page_id option;
    mutable idx : int;
  }

  let load_leaf c page =
    match read_node c.tree page with
    | Leaf l ->
        c.page <- Some page;
        c.keys <- l.keys;
        c.vals <- l.vals;
        c.next <- l.next;
        c.idx <- 0
    | Node _ -> assert false

  let rec skip_empty c =
    if c.idx >= Array.length c.keys then
      match c.next with
      | None -> c.page <- None
      | Some next ->
          load_leaf c next;
          skip_empty c

  let seek t k =
    let page, keys, vals, next = find_leaf t t.root k in
    let c = { tree = t; page = Some page; keys; vals; next; idx = lower_bound keys k } in
    skip_empty c;
    c

  let rec leftmost t page =
    match read_node t page with
    | Leaf _ -> page
    | Node { children; _ } -> leftmost t children.(0)

  let seek_first t =
    let page = leftmost t t.root in
    let c = { tree = t; page = Some page; keys = [||]; vals = [||]; next = None; idx = 0 } in
    load_leaf c page;
    skip_empty c;
    c

  let cursor_peek c =
    match c.page with
    | None -> None
    | Some _ -> Some (c.keys.(c.idx), c.vals.(c.idx))

  let cursor_next c =
    match c.page with
    | None -> ()
    | Some _ ->
        c.idx <- c.idx + 1;
        skip_empty c

  let cursor_page c = c.page

  let find_all t k =
    let c = seek t k in
    let rec go acc =
      match cursor_peek c with
      | Some (k', v) when Key.compare k' k = 0 ->
          cursor_next c;
          go (v :: acc)
      | Some _ | None -> List.rev acc
    in
    go []

  let iter t f =
    let c = seek_first t in
    let rec go () =
      match cursor_peek c with
      | None -> ()
      | Some (k, v) ->
          f k v;
          cursor_next c;
          go ()
    in
    go ()

  let to_list t =
    let acc = ref [] in
    iter t (fun k v -> acc := (k, v) :: !acc);
    List.rev !acc

  let rec height_rec t page =
    match Pool.get t.pool page with
    | Leaf _ -> 1
    | Node { children; _ } -> 1 + height_rec t children.(0)

  let height t = height_rec t t.root

  let rec count_leaves t page =
    match Pool.get t.pool page with
    | Leaf _ -> 1
    | Node { children; _ } ->
        Array.fold_left (fun acc c -> acc + count_leaves t c) 0 children

  let leaf_count t = count_leaves t t.root

  let leaf_pages t =
    (* Inspection only: snapshot the counters and restore them. *)
    let stats = io_stats t in
    let before = Sqp_storage.Stats.snapshot stats in
    let cb = { leaf_reads = t.counters.leaf_reads; internal_reads = t.counters.internal_reads } in
    let first = leftmost t t.root in
    let rec walk page acc =
      match Pool.get t.pool page with
      | Node _ -> assert false
      | Leaf { keys; next; _ } -> (
          let acc = (page, Array.to_list keys) :: acc in
          match next with None -> List.rev acc | Some n -> walk n acc)
    in
    let result = walk first [] in
    stats.physical_reads <- before.physical_reads;
    stats.physical_writes <- before.physical_writes;
    stats.pool_hits <- before.pool_hits;
    stats.pool_misses <- before.pool_misses;
    t.counters.leaf_reads <- cb.leaf_reads;
    t.counters.internal_reads <- cb.internal_reads;
    result

  (* {2 Compression accounting} *)

  (* Inspection-only leaf count: snapshot and restore the pool/I-O
     counters the walk would otherwise perturb. *)
  let quiet_leaf_count t =
    let stats = io_stats t in
    let before = Sqp_storage.Stats.snapshot stats in
    let n = count_leaves t t.root in
    stats.physical_reads <- before.physical_reads;
    stats.physical_writes <- before.physical_writes;
    stats.pool_hits <- before.pool_hits;
    stats.pool_misses <- before.pool_misses;
    n

  let avg_leaf_entries t = float_of_int t.size /. float_of_int (quiet_leaf_count t)

  type compression = {
    leaves : int;
    entries : int;
    avg_entries_per_leaf : float;
    fixed_entries_per_leaf : float;
    ratio : float;
  }

  let compression_stats t =
    match t.budget with
    | None -> None
    | Some b ->
        let leaves = quiet_leaf_count t in
        let entries = t.size in
        let avg = float_of_int entries /. float_of_int (max 1 leaves) in
        let fixed =
          float_of_int b.page_bytes
          /. float_of_int (b.fixed_entry_bytes + b.entry_overhead)
        in
        Some
          {
            leaves;
            entries;
            avg_entries_per_leaf = avg;
            fixed_entries_per_leaf = fixed;
            ratio = avg /. fixed;
          }

  (* {2 Invariant checking} *)

  let check_invariants t =
    let exception Bad of string in
    let fail fmt = Format.kasprintf (fun s -> raise (Bad s)) fmt in
    let check_sorted keys what =
      for i = 1 to Array.length keys - 1 do
        if Key.compare keys.(i - 1) keys.(i) > 0 then
          fail "%s: keys out of order at %d" what i
      done
    in
    (* Returns (depth, count, min_key, max_key) of the subtree; bounds are
       the separator interval the subtree must respect. *)
    let rec walk page lo hi ~is_root =
      match Pool.get t.pool page with
      | Leaf { keys; vals; _ } ->
          if Array.length keys <> Array.length vals then
            fail "leaf %d: keys/vals length mismatch" page;
          check_sorted keys (Printf.sprintf "leaf %d" page);
          let n = Array.length keys in
          (* Leaf occupancy is a soft bound: a split inside a run of equal
             keys can legally leave a slim sibling (see leaf_split_point),
             so only emptiness is structural. *)
          if (not is_root) && n < 1 then fail "leaf %d empty" page;
          let overfull =
            match t.budget with
            | None -> n > t.leaf_capacity
            | Some b -> n > 2 && leaf_bytes b keys > b.page_bytes
          in
          if overfull then begin
            (* Oversized leaves are only legal when all keys are equal. *)
            let all_equal =
              n = 0 || Array.for_all (fun k -> Key.compare k keys.(0) = 0) keys
            in
            if not all_equal then fail "leaf %d overfull (%d)" page n
          end;
          Array.iter
            (fun k ->
              (match lo with
              | Some b when Key.compare k b < 0 ->
                  fail "leaf %d: key below separator bound" page
              | _ -> ());
              match hi with
              | Some b when Key.compare k b >= 0 ->
                  fail "leaf %d: key above separator bound" page
              | _ -> ())
            keys;
          (1, n)
      | Node { seps; children } ->
          let nc = Array.length children in
          if nc <> Array.length seps + 1 then
            fail "node %d: children/seps arity mismatch" page;
          if nc < 2 then fail "node %d: fewer than 2 children" page;
          if (not is_root) && nc < node_min t then fail "node %d underfull" page;
          (match t.budget with
          | None -> if nc > t.internal_capacity then fail "node %d overfull" page
          | Some b ->
              if nc > 3 && node_bytes b seps nc > b.page_bytes then
                fail "node %d overfull (%d bytes)" page (node_bytes b seps nc));
          check_sorted seps (Printf.sprintf "node %d" page);
          (match (lo, hi) with
          | Some l, _ when Key.compare seps.(0) l < 0 -> fail "node %d: sep below bound" page
          | _, Some h when Key.compare seps.(Array.length seps - 1) h > 0 ->
              fail "node %d: sep above bound" page
          | _ -> ());
          let depth = ref 0 and count = ref 0 in
          for i = 0 to nc - 1 do
            let clo = if i = 0 then lo else Some seps.(i - 1)
            and chi = if i = nc - 1 then hi else Some seps.(i) in
            let d, c = walk children.(i) clo chi ~is_root:false in
            if !depth = 0 then depth := d
            else if d <> !depth then fail "node %d: uneven leaf depth" page;
            count := !count + c
          done;
          (!depth + 1, !count)
    in
    match walk t.root None None ~is_root:true with
    | _, count ->
        if count <> t.size then Error (Printf.sprintf "size mismatch: %d vs %d" count t.size)
        else Ok ()
    | exception Bad msg -> Error msg
end
