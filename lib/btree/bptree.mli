(** Prefix B+-tree over the simulated page store.

    This is the structure of the paper's experiments (Section 5.3.2: "we
    implemented a prefix B+tree to store points in z order").  It is a
    standard B+-tree — data in leaves, leaves chained for sequential
    scans — whose internal separator keys are {e shortest separators}
    (for bitstring keys: shortest distinguishing prefixes), the defining
    feature of the prefix B+-tree.

    The tree is functorized over the key so the same code serves z values
    (bitstrings) and ordinary integer keys in tests. *)

module type KEY = sig
  type t

  val compare : t -> t -> int

  val separator : lo:t -> hi:t -> t
  (** Given [lo < hi], any [s] with [lo < s <= hi]; a good implementation
      returns a short one. *)

  val pp : Format.formatter -> t -> unit

  val encoded_bytes : t -> int
  (** Bytes this key occupies stored whole (first key of a page). *)

  val delta_bytes : prev:t -> t -> int
  (** Bytes this key occupies front-coded against its in-page
      predecessor — for z values, a shared-prefix byte plus the packed
      suffix. *)
end

module Bitstring_key : KEY with type t = Sqp_zorder.Bitstring.t

module Int_key : KEY with type t = int

type budget = {
  page_bytes : int;  (** byte capacity of a node *)
  compressed : bool;
      (** charge keys after the first their {!KEY.delta_bytes}; when
          false, every key costs [fixed_entry_bytes], reproducing the
          fixed-width baseline's fan-out under the same byte budget *)
  entry_overhead : int;  (** per-entry payload/bookkeeping charge *)
  fixed_entry_bytes : int;  (** per-key charge when not compressed *)
}
(** Byte-budget page model: a node is full when its encoded size exceeds
    [page_bytes], so prefix compression directly raises the effective
    fan-out (the tree gets shallower, range scans touch fewer pages).
    The budget should be at least 4x the largest whole-entry encoding so
    split halves always fit. *)

module Make (Key : KEY) : sig
  type 'a t

  type access_counters = {
    mutable leaf_reads : int;
    mutable internal_reads : int;
  }

  val create :
    ?policy:Sqp_storage.Buffer_pool.policy ->
    ?pool_capacity:int ->
    ?budget:budget ->
    leaf_capacity:int ->
    internal_capacity:int ->
    unit ->
    'a t
  (** [leaf_capacity]: max entries per leaf (the paper uses 20);
      [internal_capacity]: max children per internal node.
      [pool_capacity]: buffer-pool frames (default 8).
      With [budget], entry-count capacities are superseded by the byte
      model ({!budget}); deletion then only cleans up empty nodes rather
      than rebalancing to a byte target (budget trees are bulk-built).
      @raise Invalid_argument if [leaf_capacity < 2],
      [internal_capacity < 3], or the budget is malformed
      ([page_bytes < 16], negative overhead). *)

  val budget : 'a t -> budget option

  val io_stats : 'a t -> Sqp_storage.Stats.t
  (** Physical I/O + pool hit/miss counters of the underlying pager. *)

  val counters : 'a t -> access_counters
  (** Logical node-access counters (what the paper reports: page
      accesses, split by leaf = data page vs internal = index page). *)

  val reset_counters : 'a t -> unit

  (** {1 Updates} *)

  val insert : 'a t -> Key.t -> 'a -> unit
  (** Duplicate keys are permitted; later duplicates land after earlier
      ones. *)

  val delete : 'a t -> Key.t -> bool
  (** Remove one entry with the given key; [false] if absent.  Rebalances
      (borrow / merge) to maintain occupancy invariants. *)

  val bulk_load : ?fill:float -> 'a t -> (Key.t * 'a) array -> unit
  (** Replace the contents with the given {e sorted} entries, packing
      leaves to [fill] (default 1.0) of capacity.
      @raise Invalid_argument if the tree is non-empty, the input is
      unsorted, or [fill] is outside (0, 1]. *)

  (** {1 Queries} *)

  val find : 'a t -> Key.t -> 'a option

  val find_all : 'a t -> Key.t -> 'a list

  val mem : 'a t -> Key.t -> bool

  val length : 'a t -> int

  val height : 'a t -> int
  (** 1 for a single-leaf tree. *)

  val leaf_count : 'a t -> int

  (** {1 Cursors: the random + sequential access of Section 3.3} *)

  type 'a cursor

  val seek : 'a t -> Key.t -> 'a cursor
  (** Position at the first entry with key [>= k] (random access: one
      root-to-leaf descent). *)

  val seek_first : 'a t -> 'a cursor

  val cursor_peek : 'a cursor -> (Key.t * 'a) option
  (** [None] at end of data. *)

  val cursor_next : 'a cursor -> unit
  (** Advance one entry (sequential access; crossing to the next leaf
      reads one page). *)

  val cursor_page : 'a cursor -> Sqp_storage.Pager.page_id option
  (** The leaf page the cursor currently rests on. *)

  (** {1 Whole-tree access} *)

  val iter : 'a t -> (Key.t -> 'a -> unit) -> unit
  (** In key order, via the leaf chain.  Counts accesses. *)

  val to_list : 'a t -> (Key.t * 'a) list

  val leaf_pages : 'a t -> (Sqp_storage.Pager.page_id * Key.t list) list
  (** Leaves in key order with their keys — used to draw Figure 6's
      page-partition maps.  Does not touch the counters. *)

  (** {1 Compression accounting} *)

  val avg_leaf_entries : 'a t -> float
  (** Mean entries per leaf — the effective leaf capacity of a
      budget-mode tree.  Does not touch the counters. *)

  type compression = {
    leaves : int;
    entries : int;
    avg_entries_per_leaf : float;
    fixed_entries_per_leaf : float;
        (** what a fixed-width entry layout fits in the same budget *)
    ratio : float;  (** [avg_entries_per_leaf / fixed_entries_per_leaf] *)
  }

  val compression_stats : 'a t -> compression option
  (** [None] unless the tree has a byte budget.  Does not touch the
      counters. *)

  val check_invariants : 'a t -> (unit, string) result
  (** Verify ordering, separator correctness, uniform leaf depth,
      non-emptiness and internal-node occupancy bounds.  Leaf occupancy is
      not enforced: splitting inside a run of equal keys can legally leave
      a slim leaf.  For tests. *)
end
