module type KEY = sig
  type t

  val compare : t -> t -> int
end

module Bitstring_key = struct
  type t = Sqp_zorder.Bitstring.t

  let compare = Sqp_zorder.Bitstring.compare
end

module Make (Key : KEY) = struct
  (* Separator invariant: keys in [children.(i)] are < [seps.(i)] and
     keys in [children.(i+1)] are >= [seps.(i)].  Removals never update
     separators (only shrink subtrees), which preserves both bounds. *)
  type 'a node =
    | Leaf of { keys : Key.t array; vals : 'a array }
    | Node of { seps : Key.t array; children : 'a node array }

  type 'a t = {
    root : 'a node;
    count : int;
    leaf_capacity : int;
    internal_capacity : int;
  }

  let empty ?(leaf_capacity = 20) ?(internal_capacity = 20) () =
    if leaf_capacity < 2 then invalid_arg "Cowtree.empty: leaf_capacity < 2";
    if internal_capacity < 3 then invalid_arg "Cowtree.empty: internal_capacity < 3";
    {
      root = Leaf { keys = [||]; vals = [||] };
      count = 0;
      leaf_capacity;
      internal_capacity;
    }

  let length t = t.count

  let is_empty t = t.count = 0

  (* First index with keys.(i) >= k. *)
  let lower_bound keys k =
    let lo = ref 0 and hi = ref (Array.length keys) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Key.compare keys.(mid) k < 0 then lo := mid + 1 else hi := mid
    done;
    !lo

  (* First index with keys.(i) > k. *)
  let upper_bound keys k =
    let lo = ref 0 and hi = ref (Array.length keys) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Key.compare keys.(mid) k <= 0 then lo := mid + 1 else hi := mid
    done;
    !lo

  (* Child index for key [k]: first i with k < seps.(i), else the last
     child.  Keys equal to a separator live right of it (both for the
     append-after-duplicates insert and for seeks, since the left
     subtree holds strictly smaller keys only). *)
  let route seps k =
    let lo = ref 0 and hi = ref (Array.length seps) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Key.compare k seps.(mid) < 0 then hi := mid else lo := mid + 1
    done;
    !lo

  let array_insert a i x =
    let n = Array.length a in
    Array.init (n + 1) (fun j -> if j < i then a.(j) else if j = i then x else a.(j - 1))

  let array_remove a i =
    let n = Array.length a in
    Array.init (n - 1) (fun j -> if j < i then a.(j) else a.(j + 1))

  let array_set a i x =
    let a' = Array.copy a in
    a'.(i) <- x;
    a'

  let sub = Array.sub

  (* Split position for an overfull leaf: a point near the middle where
     adjacent keys differ.  [None] if every key is equal — the leaf then
     stays oversized rather than split a duplicate run. *)
  let leaf_split_point keys =
    let n = Array.length keys in
    let mid = n / 2 in
    let ok s = s > 0 && s < n && Key.compare keys.(s - 1) keys.(s) < 0 in
    let rec search delta =
      if mid + delta >= n && mid - delta <= 0 then None
      else if ok (mid + delta) then Some (mid + delta)
      else if ok (mid - delta) then Some (mid - delta)
      else search (delta + 1)
    in
    search 0

  (* {2 Insert} *)

  (* Returns either the replacement node, or (left, sep, right) when the
     node split. *)
  let rec insert_rec t node k v =
    match node with
    | Leaf { keys; vals } -> (
        let i = upper_bound keys k in
        let keys = array_insert keys i k and vals = array_insert vals i v in
        if Array.length keys <= t.leaf_capacity then `One (Leaf { keys; vals })
        else
          match leaf_split_point keys with
          | None -> `One (Leaf { keys; vals }) (* all-equal: stay oversized *)
          | Some s ->
              let n = Array.length keys in
              `Split
                ( Leaf { keys = sub keys 0 s; vals = sub vals 0 s },
                  keys.(s),
                  Leaf { keys = sub keys s (n - s); vals = sub vals s (n - s) } ))
    | Node { seps; children } -> (
        let i = route seps k in
        match insert_rec t children.(i) k v with
        | `One child -> `One (Node { seps; children = array_set children i child })
        | `Split (l, sep, r) ->
            let seps = array_insert seps i sep in
            let children = array_set children i l in
            let children = array_insert children (i + 1) r in
            if Array.length children <= t.internal_capacity then
              `One (Node { seps; children })
            else
              let m = Array.length seps / 2 in
              `Split
                ( Node { seps = sub seps 0 m; children = sub children 0 (m + 1) },
                  seps.(m),
                  Node
                    {
                      seps = sub seps (m + 1) (Array.length seps - m - 1);
                      children = sub children (m + 1) (Array.length children - m - 1);
                    } ))

  let insert t k v =
    let root =
      match insert_rec t t.root k v with
      | `One n -> n
      | `Split (l, sep, r) -> Node { seps = [| sep |]; children = [| l; r |] }
    in
    { t with root; count = t.count + 1 }

  (* {2 Remove}

     Relaxed: an emptied leaf is unlinked from its parent (and an
     emptied subtree propagates up), but no borrowing or merging is
     done.  Separators of surviving children are untouched, which keeps
     their routing bounds valid. *)

  let rec remove_rec node k =
    match node with
    | Leaf { keys; vals } ->
        let i = lower_bound keys k in
        if i < Array.length keys && Key.compare keys.(i) k = 0 then
          if Array.length keys = 1 then `Emptied
          else `One (Leaf { keys = array_remove keys i; vals = array_remove vals i })
        else `Absent
    | Node { seps; children } -> (
        let i = route seps k in
        match remove_rec children.(i) k with
        | `Absent -> `Absent
        | `One child -> `One (Node { seps; children = array_set children i child })
        | `Emptied ->
            if Array.length children = 1 then `Emptied
            else
              (* Dropping child i removes the separator next to it: the
                 one on its left (or sep 0 for the leftmost child). *)
              let si = if i = 0 then 0 else i - 1 in
              `One
                (Node { seps = array_remove seps si; children = array_remove children i }))

  let remove t k =
    match remove_rec t.root k with
    | `Absent -> None
    | `Emptied ->
        Some { t with root = Leaf { keys = [||]; vals = [||] }; count = t.count - 1 }
    | `One root ->
        (* Collapse a chain of single-child roots. *)
        let rec collapse = function
          | Node { children = [| only |]; _ } -> collapse only
          | n -> n
        in
        Some { t with root = collapse root; count = t.count - 1 }

  (* {2 Lookup} *)

  let rec find_leaf node k =
    match node with
    | Leaf { keys; vals } -> (keys, vals)
    | Node { seps; children } -> find_leaf children.(route seps k) k

  let find t k =
    let keys, vals = find_leaf t.root k in
    let i = lower_bound keys k in
    if i < Array.length keys && Key.compare keys.(i) k = 0 then Some vals.(i)
    else None

  (* {2 Cursors} *)

  type 'a cursor = {
    mutable stack : ('a node array * int) list;
        (* (children, index into them) from root to the leaf's parent *)
    mutable keys : Key.t array;
    mutable vals : 'a array;
    mutable idx : int;
    mutable ended : bool;
  }

  let rec descend_leftmost c node =
    match node with
    | Leaf { keys; vals } ->
        c.keys <- keys;
        c.vals <- vals;
        c.idx <- 0
    | Node { children; _ } ->
        c.stack <- (children, 0) :: c.stack;
        descend_leftmost c children.(0)

  (* Advance past the current leaf: climb until a frame has a next
     sibling, descend to its leftmost leaf.  Leaves are never empty
     (removals unlink them), so landing on a leaf yields an entry —
     except for the empty-tree root leaf, handled by the caller. *)
  let rec advance_leaf c =
    match c.stack with
    | [] -> c.ended <- true
    | (children, i) :: rest ->
        if i + 1 < Array.length children then begin
          c.stack <- (children, i + 1) :: rest;
          descend_leftmost c children.(i + 1)
        end
        else begin
          c.stack <- rest;
          advance_leaf c
        end

  let fix c = if c.idx >= Array.length c.keys && not c.ended then advance_leaf c

  let seek t k =
    let c = { stack = []; keys = [||]; vals = [||]; idx = 0; ended = false } in
    let rec descend node =
      match node with
      | Leaf { keys; vals } ->
          c.keys <- keys;
          c.vals <- vals;
          c.idx <- lower_bound keys k
      | Node { seps; children } ->
          let i = route seps k in
          c.stack <- (children, i) :: c.stack;
          descend children.(i)
    in
    descend t.root;
    fix c;
    c

  let seek_first t =
    let c = { stack = []; keys = [||]; vals = [||]; idx = 0; ended = false } in
    descend_leftmost c t.root;
    fix c;
    c

  let cursor_peek c =
    if c.ended || c.idx >= Array.length c.keys then None
    else Some (c.keys.(c.idx), c.vals.(c.idx))

  let cursor_next c =
    if not c.ended then begin
      c.idx <- c.idx + 1;
      fix c
    end

  let find_all t k =
    let c = seek t k in
    let rec go acc =
      match cursor_peek c with
      | Some (k', v) when Key.compare k' k = 0 ->
          cursor_next c;
          go (v :: acc)
      | Some _ | None -> List.rev acc
    in
    go []

  let iter t f =
    let c = seek_first t in
    let rec go () =
      match cursor_peek c with
      | None -> ()
      | Some (k, v) ->
          f k v;
          cursor_next c;
          go ()
    in
    go ()

  let to_list t =
    let acc = ref [] in
    iter t (fun k v -> acc := (k, v) :: !acc);
    List.rev !acc

  (* {2 Bulk build} *)

  let of_sorted_array ?(leaf_capacity = 20) ?(internal_capacity = 20) entries =
    let t0 = empty ~leaf_capacity ~internal_capacity () in
    let n = Array.length entries in
    for i = 1 to n - 1 do
      if Key.compare (fst entries.(i - 1)) (fst entries.(i)) > 0 then
        invalid_arg "Cowtree.of_sorted_array: input not sorted"
    done;
    if n = 0 then t0
    else begin
      (* Chunk into leaves; never split a run of equal keys. *)
      let chunks = ref [] in
      let start = ref 0 in
      while !start < n do
        let stop = ref (min n (!start + leaf_capacity)) in
        while
          !stop < n && !stop > !start + 1
          && Key.compare (fst entries.(!stop - 1)) (fst entries.(!stop)) = 0
        do
          decr stop
        done;
        (if !stop < n && Key.compare (fst entries.(!stop - 1)) (fst entries.(!stop)) = 0
         then
           let j = ref !stop in
           let () =
             while !j < n && Key.compare (fst entries.(!j - 1)) (fst entries.(!j)) = 0 do
               incr j
             done
           in
           stop := !j);
        chunks := (!start, !stop) :: !chunks;
        start := !stop
      done;
      (* [!chunks] is in reverse build order; [rev_map] restores it. *)
      let leaves =
        List.rev_map
          (fun (s, e) ->
            ( Leaf
                {
                  keys = Array.init (e - s) (fun i -> fst entries.(s + i));
                  vals = Array.init (e - s) (fun i -> snd entries.(s + i));
                },
              fst entries.(s) ))
          !chunks
      in
      (* Build internal levels; each (node, min key of its subtree). *)
      let rec build level =
        match level with
        | [] -> assert false
        | [ (node, _) ] -> node
        | _ ->
            let rec group acc cur cur_n = function
              | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
              | x :: rest ->
                  if cur_n = internal_capacity then group (List.rev cur :: acc) [ x ] 1 rest
                  else group acc (x :: cur) (cur_n + 1) rest
            in
            let groups = group [] [] 0 level in
            (* Avoid a trailing single-child group by rebalancing with
               the previous one. *)
            let groups =
              let rec fix = function
                | [ g1; [ single ] ] when List.length g1 >= 2 ->
                    let keep = List.length g1 - 1 in
                    let a = List.filteri (fun i _ -> i < keep) g1
                    and b = List.filteri (fun i _ -> i >= keep) g1 in
                    [ a; b @ [ single ] ]
                | g :: rest -> g :: fix rest
                | [] -> []
              in
              fix groups
            in
            build
              (List.map
                 (fun grp ->
                   let arr = Array.of_list grp in
                   let children = Array.map fst arr in
                   let seps =
                     Array.init (Array.length arr - 1) (fun i -> snd arr.(i + 1))
                   in
                   (Node { seps; children }, snd arr.(0)))
                 groups)
      in
      { t0 with root = build leaves; count = n }
    end

  (* {2 Invariant checking} *)

  let check_invariants t =
    let exception Bad of string in
    let fail fmt = Format.kasprintf (fun s -> raise (Bad s)) fmt in
    let check_sorted keys what =
      for i = 1 to Array.length keys - 1 do
        if Key.compare keys.(i - 1) keys.(i) > 0 then fail "%s: keys out of order" what
      done
    in
    let rec walk node lo hi ~is_root =
      match node with
      | Leaf { keys; vals } ->
          if Array.length keys <> Array.length vals then fail "leaf: keys/vals mismatch";
          check_sorted keys "leaf";
          let n = Array.length keys in
          if (not is_root) && n < 1 then fail "empty non-root leaf";
          if n > t.leaf_capacity then begin
            let all_equal =
              n = 0 || Array.for_all (fun k -> Key.compare k keys.(0) = 0) keys
            in
            if not all_equal then fail "leaf overfull (%d)" n
          end;
          Array.iter
            (fun k ->
              (match lo with
              | Some b when Key.compare k b < 0 -> fail "leaf key below bound"
              | _ -> ());
              match hi with
              | Some b when Key.compare k b >= 0 -> fail "leaf key above bound"
              | _ -> ())
            keys;
          (1, n)
      | Node { seps; children } ->
          let nc = Array.length children in
          if nc <> Array.length seps + 1 then fail "node arity mismatch";
          if nc < 1 then fail "node without children";
          if (not is_root) && nc < 1 then fail "underfull node";
          if nc > t.internal_capacity then fail "node overfull";
          check_sorted seps "node";
          (match (lo, hi) with
          | Some l, _ when Array.length seps > 0 && Key.compare seps.(0) l < 0 ->
              fail "sep below bound"
          | _, Some h when Array.length seps > 0 && Key.compare seps.(Array.length seps - 1) h > 0
            ->
              fail "sep above bound"
          | _ -> ());
          let depth = ref 0 and cnt = ref 0 in
          for i = 0 to nc - 1 do
            let clo = if i = 0 then lo else Some seps.(i - 1)
            and chi = if i = nc - 1 then hi else Some seps.(i) in
            let d, c = walk children.(i) clo chi ~is_root:false in
            if !depth = 0 then depth := d
            else if d <> !depth then fail "uneven leaf depth";
            cnt := !cnt + c
          done;
          (!depth + 1, !cnt)
    in
    match walk t.root None None ~is_root:true with
    | _, count ->
        if count <> t.count then
          Error (Printf.sprintf "size mismatch: %d counted vs %d recorded" count t.count)
        else Ok ()
    | exception Bad msg -> Error msg
end
