(** Persistent (copy-on-write) B+-tree: the page-level mechanism behind
    snapshot reads on the live zkd index.

    Where {!Bptree} mutates pages in a buffer pool, this tree never
    mutates a node after publishing it: every insert or remove
    path-copies the root-to-leaf spine and returns a {e new} tree value
    that shares every untouched subtree with the old one.  A reader
    holding an old root therefore sees a perfectly frozen index — the
    copy-on-write-pages snapshot scheme of the live-ingest design — while
    writers race ahead, and "taking a snapshot" is one pointer read.

    Ordering and duplicate semantics mirror {!Bptree} exactly: duplicate
    keys are permitted, an insert lands {e after} existing equals, a
    remove takes the {e first} equal entry, and a run of equal keys never
    splits across leaves (an all-equal leaf may exceed capacity rather
    than break separator invariants).  Internal separators are the
    minimum key of the right subtree at split time.

    Removals are {e relaxed}: emptied leaves are unlinked and a
    single-child root collapses, but interior occupancy is not
    rebalanced — an adversarial delete stream can leave thin nodes.  The
    live index restores tightness with an online rebuild
    ({!Live.rebuild_online}), which is also the paper-faithful answer
    (bulk loading is the paper's "preprocessing step"). *)

module type KEY = sig
  type t

  val compare : t -> t -> int
end

module Make (Key : KEY) : sig
  type 'a t
  (** An immutable tree value.  All operations are pure: "mutators"
      return a new tree. *)

  val empty : ?leaf_capacity:int -> ?internal_capacity:int -> unit -> 'a t
  (** Defaults match {!Bptree}: 20 entries per leaf, 20 children per
      internal node.
      @raise Invalid_argument if [leaf_capacity < 2] or
      [internal_capacity < 3]. *)

  val length : 'a t -> int

  val is_empty : 'a t -> bool

  val insert : 'a t -> Key.t -> 'a -> 'a t
  (** Duplicates permitted; later duplicates land after earlier ones. *)

  val remove : 'a t -> Key.t -> 'a t option
  (** Remove the first entry with this exact key; [None] if absent. *)

  val find : 'a t -> Key.t -> 'a option
  (** The first entry with this key. *)

  val find_all : 'a t -> Key.t -> 'a list
  (** All entries with this key, in insertion order. *)

  val of_sorted_array : ?leaf_capacity:int -> ?internal_capacity:int ->
    (Key.t * 'a) array -> 'a t
  (** Bulk build from entries already in key order, packing leaves full
      (never splitting a run of equal keys).
      @raise Invalid_argument if the input is unsorted. *)

  val iter : 'a t -> (Key.t -> 'a -> unit) -> unit
  (** In key order. *)

  val to_list : 'a t -> (Key.t * 'a) list

  (** {1 Cursors}

      A cursor walks one frozen tree value; it is cheap (a spine stack)
      and single-threaded, but any number of cursors may read the same
      tree from different threads or domains. *)

  type 'a cursor

  val seek : 'a t -> Key.t -> 'a cursor
  (** Position at the first entry with key [>= k]. *)

  val seek_first : 'a t -> 'a cursor

  val cursor_peek : 'a cursor -> (Key.t * 'a) option
  (** [None] at end of data. *)

  val cursor_next : 'a cursor -> unit

  val check_invariants : 'a t -> (unit, string) result
  (** Ordering, separator bounds, uniform leaf depth, no empty leaves,
      entry count.  Occupancy is deliberately not enforced (see the
      module comment on relaxed removals). *)
end

module Bitstring_key : KEY with type t = Sqp_zorder.Bitstring.t
