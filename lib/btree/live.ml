module Z = Sqp_zorder
module FP = Sqp_storage.File_pager
module Storage_error = Sqp_storage.Storage_error
module Metrics = Sqp_obs.Metrics
module Cow = Cowtree.Make (Cowtree.Bitstring_key)

type 'a op =
  | Insert of Sqp_geom.Point.t * 'a
  | Delete of Sqp_geom.Point.t

(* A published version: the frozen tree plus the sequence number of the
   last batch folded into it.  Readers load this with one [Atomic.get]. *)
type 'a version = { tree : (Sqp_geom.Point.t * 'a) Cow.t; vseq : int }

type 'a feed = { buf : (int * 'a op list) Queue.t; mutable live : bool }

type 'a t = {
  space : Z.Space.t;
  encode : 'a -> string;
  decode : string -> 'a;
  lc : int;
  ic : int;
  version : 'a version Atomic.t;
  writer : Mutex.t;
  mutable store : FP.t option;
  mutable feeds : 'a feed list;
  m_batches : Metrics.counter;
  m_inserts : Metrics.counter;
  m_deletes : Metrics.counter;
  m_chunks : Metrics.counter;
  m_checkpoints : Metrics.counter;
  m_entries : Metrics.gauge;
}

type 'a snapshot = { s_space : Z.Space.t; s_tree : (Sqp_geom.Point.t * 'a) Cow.t; s_seq : int }

type scan_stats = { entries_scanned : int; elements : int; results : int }

(* {1 Record codecs}

   One page store per table; each record (page payload) starts with a
   tag byte: 'M' metadata, 'B' a base-image chunk, 'L' a logged batch
   part, 'Z' a front-coded base-image chunk (checkpoints write 'Z'
   whenever the space's z values pack into {!Sqp_zorder.Zpacked}; 'B'
   remains both the fallback and the legacy decode path, so stores
   written before compression keep loading).  A batch too big for one
   page is split over parts allocated in the same atomic store batch,
   so it is still all-or-nothing. *)

let magic = "SQPL1"

let buf_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let buf_u16 b v =
  buf_u8 b (v lsr 8);
  buf_u8 b v

let buf_u32 b v =
  buf_u16 b (v lsr 16);
  buf_u16 b v

let buf_i64 b v =
  buf_u32 b (v lsr 32);
  buf_u32 b v

let buf_str b s =
  if String.length s > 0xffff then invalid_arg "Live: payload exceeds 65535 bytes";
  buf_u16 b (String.length s);
  Buffer.add_string b s

type reader = { data : string; mutable pos : int; r_path : string }

let fail r what = Storage_error.corrupt ~path:r.r_path what

let need r n = if r.pos + n > String.length r.data then fail r "truncated live record"

let rd_u8 r =
  need r 1;
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let rd_u16 r =
  let hi = rd_u8 r in
  (hi lsl 8) lor rd_u8 r

let rd_u32 r =
  let hi = rd_u16 r in
  (hi lsl 16) lor rd_u16 r

let rd_i64 r =
  let hi = rd_u32 r in
  (hi lsl 32) lor rd_u32 r

let rd_str r =
  let n = rd_u16 r in
  need r n;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let encode_point space b p =
  if Array.length p <> Z.Space.dims space then invalid_arg "Live: point arity mismatch";
  Array.iter
    (fun c ->
      if not (Z.Space.valid_coord space c) then invalid_arg "Live: coordinate out of space";
      buf_u32 b c)
    p

let decode_point space r = Array.init (Z.Space.dims space) (fun _ -> rd_u32 r)

let encode_op t op =
  let b = Buffer.create 32 in
  (match op with
  | Insert (p, v) ->
      buf_u8 b 0;
      encode_point t.space b p;
      buf_str b (t.encode v)
  | Delete p ->
      buf_u8 b 1;
      encode_point t.space b p);
  Buffer.contents b

let decode_op ~space ~decode r =
  match rd_u8 r with
  | 0 ->
      let p = decode_point space r in
      let v = decode (rd_str r) in
      Insert (p, v)
  | 1 -> Delete (decode_point space r)
  | n -> fail r (Printf.sprintf "unknown live op tag %d" n)

let encode_entry t (p, v) =
  let b = Buffer.create 32 in
  encode_point t.space b p;
  buf_str b (t.encode v);
  Buffer.contents b

(* Greedy packing of encoded items into parts of at most [cap] bytes
   (beyond the fixed per-part header). *)
let pack ~cap ~header items =
  let parts = ref [] and cur = ref [] and cur_bytes = ref header in
  List.iter
    (fun item ->
      let n = String.length item in
      if header + n > cap then invalid_arg "Live: record exceeds page capacity";
      if !cur_bytes + n > cap then begin
        parts := List.rev !cur :: !parts;
        cur := [];
        cur_bytes := header
      end;
      cur := item :: !cur;
      cur_bytes := !cur_bytes + n)
    items;
  if !cur <> [] then parts := List.rev !cur :: !parts;
  List.rev !parts

let meta_record space ~base_seq =
  let b = Buffer.create 16 in
  buf_u8 b (Char.code 'M');
  Buffer.add_string b magic;
  buf_u8 b (Z.Space.dims space);
  buf_u8 b (Z.Space.depth space);
  buf_i64 b base_seq;
  Buffer.to_bytes b

let log_header_bytes = 1 + 8 + 2 + 2 (* 'L' seq part count *)

let base_header_bytes = 1 + 4 + 2 (* 'B' part count *)

let restart_interval = 16

(* 'Z' part:u32 count:u16 run_bytes:u16, then the 7-byte run header. *)
let z_base_header_bytes = 1 + 4 + 2 + 2 + 7

(* Allocate the base-image chunks for [entries] (already in z order)
   inside the currently open store batch: front-coded 'Z' chunks when
   the space packs, legacy 'B' chunks otherwise. *)
let alloc_base t store entries =
  let cap = FP.payload_capacity store in
  if not (Z.Zpacked.fits_space t.space) then
    let encoded = List.map (encode_entry t) entries in
    List.iteri
      (fun part items ->
        let b = Buffer.create cap in
        buf_u8 b (Char.code 'B');
        buf_u32 b part;
        buf_u16 b (List.length items);
        List.iter (Buffer.add_string b) items;
        ignore (FP.alloc store (Buffer.to_bytes b)))
      (pack ~cap ~header:base_header_bytes encoded)
  else begin
    let total = Z.Space.total_bits t.space in
    let kb bits = (bits + 7) / 8 in
    (* Greedy byte-exact packing mirroring the Zrun entry encodings:
       a restart costs its offset slot plus the whole key, any other a
       shared byte plus its suffix. *)
    let parts = ref [] and zs = ref [] and ps = ref [] and n = ref 0 in
    let bytes = ref z_base_header_bytes in
    let prev = ref Z.Zpacked.empty in
    let flush () =
      if !n > 0 then begin
        parts := (List.rev !zs, List.rev !ps) :: !parts;
        zs := [];
        ps := [];
        n := 0;
        bytes := z_base_header_bytes
      end
    in
    List.iter
      (fun (p, v) ->
        let z = Z.Zpacked.shuffle t.space p in
        let payload = t.encode v in
        let plen = String.length payload in
        let cost_at i prev =
          (if i mod restart_interval = 0 then 2 + kb total
           else 1 + kb (total - Z.Zpacked.common_prefix_len prev z))
          + 2 + plen
        in
        let cost = cost_at !n !prev in
        if !n > 0 && !bytes + cost > cap then flush ();
        let cost = if !n = 0 then cost_at 0 !prev else cost in
        if z_base_header_bytes + cost > cap then
          invalid_arg "Live: record exceeds page capacity";
        zs := z :: !zs;
        ps := payload :: !ps;
        bytes := !bytes + cost;
        prev := z;
        incr n)
      entries;
    flush ();
    List.iteri
      (fun part (zl, pl) ->
        let run =
          Z.Zrun.encode ~restart_interval ~fixed_len:total (Array.of_list zl)
        in
        let rs = Z.Zrun.to_string run in
        let b = Buffer.create cap in
        buf_u8 b (Char.code 'Z');
        buf_u32 b part;
        buf_u16 b (List.length zl);
        buf_u16 b (String.length rs);
        Buffer.add_string b rs;
        List.iter (fun payload -> buf_str b payload) pl;
        ignore (FP.alloc store (Buffer.to_bytes b)))
      (List.rev !parts)
  end

let alloc_log t store ~seq ops =
  let encoded = List.map (encode_op t) ops in
  let cap = FP.payload_capacity store in
  List.iteri
    (fun part items ->
      let b = Buffer.create cap in
      buf_u8 b (Char.code 'L');
      buf_i64 b seq;
      buf_u16 b part;
      buf_u16 b (List.length items);
      List.iter (Buffer.add_string b) items;
      ignore (FP.alloc store (Buffer.to_bytes b)))
    (pack ~cap ~header:log_header_bytes encoded)

(* {1 Construction} *)

let zval space p = Z.Interleave.shuffle space p

let make_t ?(leaf_capacity = 20) ?(internal_capacity = 20) ~encode ~decode ~store space
    tree vseq =
  let reg = Metrics.global () in
  let t =
    {
      space;
      encode;
      decode;
      lc = leaf_capacity;
      ic = internal_capacity;
      version = Atomic.make { tree; vseq };
      writer = Mutex.create ();
      store;
      feeds = [];
      m_batches = Metrics.counter reg "ingest.batches";
      m_inserts = Metrics.counter reg "ingest.inserts";
      m_deletes = Metrics.counter reg "ingest.deletes";
      m_chunks = Metrics.counter reg "ingest.backfill_chunks";
      m_checkpoints = Metrics.counter reg "ingest.checkpoints";
      m_entries = Metrics.gauge reg "ingest.entries";
    }
  in
  Metrics.set_gauge t.m_entries (Cow.length tree);
  t

let create ?(leaf_capacity = 20) ?(internal_capacity = 20) ~encode ~decode space =
  make_t ~leaf_capacity ~internal_capacity ~encode ~decode ~store:None space
    (Cow.empty ~leaf_capacity ~internal_capacity ())
    0

let create_durable ?io ?(page_bytes = 1024) ?(leaf_capacity = 20)
    ?(internal_capacity = 20) ~encode ~decode ~path space =
  let store = FP.create ?io ~page_bytes path in
  ignore (FP.alloc store (meta_record space ~base_seq:0));
  make_t ~leaf_capacity ~internal_capacity ~encode ~decode ~store:(Some store) space
    (Cow.empty ~leaf_capacity ~internal_capacity ())
    0

(* Rebuild the logical state (space, tree, last seq) from an open store:
   the base-image chunks in part order, then every logged batch past the
   base in sequence order. *)
let load_store ~decode ~leaf_capacity ~internal_capacity ~path store =
  let meta = ref None in
  (* (part, `Raw (reader at first entry, count)) for 'B' chunks,
     (part, `Run (z run, reader at first payload)) for 'Z' chunks. *)
  let bases = ref [] in
  let logs = ref [] (* (seq, part, reader at first op, count) *) in
  FP.iter store (fun _slot payload ->
      let r = { data = Bytes.to_string payload; pos = 0; r_path = path } in
      match Char.chr (rd_u8 r) with
      | 'M' ->
          need r (String.length magic);
          let m = String.sub r.data r.pos (String.length magic) in
          r.pos <- r.pos + String.length magic;
          if m <> magic then fail r "bad live-table magic";
          let dims = rd_u8 r in
          let depth = rd_u8 r in
          let base_seq = rd_i64 r in
          if !meta <> None then fail r "duplicate live-table metadata";
          meta := Some (Z.Space.make ~dims ~depth, base_seq)
      | 'B' ->
          let part = rd_u32 r in
          let count = rd_u16 r in
          bases := (part, `Raw (r, count)) :: !bases
      | 'Z' ->
          let part = rd_u32 r in
          let count = rd_u16 r in
          let run_bytes = rd_u16 r in
          need r run_bytes;
          let run =
            try Z.Zrun.of_string ~pos:r.pos ~len:run_bytes r.data
            with Invalid_argument msg -> fail r msg
          in
          r.pos <- r.pos + run_bytes;
          if Z.Zrun.count run <> count then
            fail r "base chunk entry count disagrees with its z run";
          bases := (part, `Run (run, r)) :: !bases
      | 'L' ->
          let seq = rd_i64 r in
          let part = rd_u16 r in
          let count = rd_u16 r in
          logs := (seq, part, r, count) :: !logs
      | c -> fail r (Printf.sprintf "unknown live record tag %C" c)
      | exception Invalid_argument _ -> fail r "unknown live record tag");
  let space, base_seq =
    match !meta with
    | Some m -> m
    | None -> Storage_error.corrupt ~path "live table has no metadata record"
  in
  let entries = ref [] in
  List.iter
    (fun (_, chunk) ->
      match chunk with
      | `Raw (r, count) ->
          for _ = 1 to count do
            let p = decode_point space r in
            let v = decode (rd_str r) in
            entries := (zval space p, (p, v)) :: !entries
          done
      | `Run (run, r) ->
          let zs =
            try Z.Zrun.decode run with Invalid_argument msg -> fail r msg
          in
          Array.iter
            (fun z ->
              let p = Array.map fst (Z.Zpacked.unshuffle space z) in
              let v = decode (rd_str r) in
              entries := (Z.Zpacked.to_bitstring z, (p, v)) :: !entries)
            zs)
    (List.sort (fun (a, _) (b, _) -> compare a b) !bases);
  let entries = Array.of_list (List.rev !entries) in
  let tree =
    try Cow.of_sorted_array ~leaf_capacity ~internal_capacity entries
    with Invalid_argument _ ->
      Storage_error.corrupt ~path "live base image out of z order"
  in
  let tree = ref tree and last_seq = ref base_seq in
  List.iter
    (fun (seq, _, r, count) ->
      if seq > base_seq then begin
        for _ = 1 to count do
          match decode_op ~space ~decode r with
          | Insert (p, v) -> tree := Cow.insert !tree (zval space p) (p, v)
          | Delete p -> (
              match Cow.remove !tree (zval space p) with
              | Some tr -> tree := tr
              | None -> ())
        done;
        if seq > !last_seq then last_seq := seq
      end)
    (List.sort
       (fun (s1, p1, _, _) (s2, p2, _, _) -> compare (s1, p1) (s2, p2))
       !logs);
  (space, !tree, !last_seq)

let open_durable ?io ?(leaf_capacity = 20) ?(internal_capacity = 20) ~encode ~decode
    ~path () =
  let store = FP.open_existing ?io path in
  let space, tree, last_seq =
    load_store ~decode ~leaf_capacity ~internal_capacity ~path store
  in
  make_t ~leaf_capacity ~internal_capacity ~encode ~decode ~store:(Some store) space
    tree last_seq

let close t = match t.store with None -> () | Some s -> FP.close s

let durable_ok t = match t.store with None -> true | Some s -> not (FP.is_closed s)

let space t = t.space

let length t = (Atomic.get t.version).tree |> Cow.length

let seq t = (Atomic.get t.version).vseq

(* {1 Mutation} *)

let apply_op_mem space tree op =
  match op with
  | Insert (p, v) -> (Cow.insert tree (zval space p) (p, v), true)
  | Delete p -> (
      match Cow.remove tree (zval space p) with
      | Some tr -> (tr, true)
      | None -> (tree, false))

let validate_op t op =
  let check p =
    if Array.length p <> Z.Space.dims t.space then
      invalid_arg "Live.apply: point arity mismatch";
    Array.iter
      (fun c ->
        if not (Z.Space.valid_coord t.space c) then
          invalid_arg "Live.apply: coordinate out of space")
      p
  in
  match op with Insert (p, _) -> check p | Delete p -> check p

let apply t ops =
  match ops with
  | [] -> ((Atomic.get t.version).vseq, 0)
  | _ ->
      List.iter (validate_op t) ops;
      Mutex.protect t.writer (fun () ->
          let cur = Atomic.get t.version in
          let seq = cur.vseq + 1 in
          (* Durability first: if the store batch dies, memory is
             untouched and a reopen sees the pre-batch state. *)
          (match t.store with
          | None -> ()
          | Some store -> (
              FP.begin_batch store;
              match alloc_log t store ~seq ops with
              | () -> FP.commit_batch store
              | exception e ->
                  (* An encode failure leaves the batch open — roll it
                     back so the next apply can begin one.  (A failed
                     commit already poisoned and closed the handle.) *)
                  if FP.in_batch store then (try FP.abort_batch store with _ -> ());
                  raise e));
          let tree, applied =
            List.fold_left
              (fun (tr, n) op ->
                let tr, did = apply_op_mem t.space tr op in
                (match op with
                | Insert _ -> Metrics.incr t.m_inserts
                | Delete _ -> if did then Metrics.incr t.m_deletes);
                (tr, if did then n + 1 else n))
              (cur.tree, 0) ops
          in
          Atomic.set t.version { tree; vseq = seq };
          Metrics.incr t.m_batches;
          Metrics.set_gauge t.m_entries (Cow.length tree);
          List.iter (fun f -> if f.live then Queue.push (seq, ops) f.buf) t.feeds;
          (seq, applied))

let insert t p v = fst (apply t [ Insert (p, v) ])

let delete t p = snd (apply t [ Delete p ]) = 1

(* {1 Snapshots} *)

let snapshot t =
  let v = Atomic.get t.version in
  { s_space = t.space; s_tree = v.tree; s_seq = v.vseq }

let snapshot_seq s = s.s_seq

let snapshot_length s = Cow.length s.s_tree

let snapshot_entries s =
  let acc = ref [] in
  Cow.iter s.s_tree (fun _ e -> acc := e :: !acc);
  List.rev !acc

let find s p = Option.map snd (Cow.find s.s_tree (zval s.s_space p))

(* Section 3.3's merge over the frozen tree: identical in shape to
   [Zindex.merge_with_elements] with the eager decomposition, minus the
   page bookkeeping (COW nodes are not pages). *)
let range_search s box =
  if Sqp_geom.Box.dims box <> Z.Space.dims s.s_space then
    invalid_arg "Live.range_search: dimension mismatch";
  let none = { entries_scanned = 0; elements = 0; results = 0 } in
  match Sqp_geom.Box.clip box ~side:(Z.Space.side s.s_space) with
  | None -> ([], none)
  | Some box ->
      let lo = Sqp_geom.Box.lo box and hi = Sqp_geom.Box.hi box in
      let els = Array.of_list (Z.Decompose.decompose_box s.s_space ~lo ~hi) in
      let total = Z.Space.total_bits s.s_space in
      let zlos = Array.map (fun e -> Z.Bitstring.pad_to e total false) els in
      let zhis = Array.map (fun e -> Z.Bitstring.pad_to e total true) els in
      let scanned = ref 0 and acc = ref [] in
      (* First element whose zhi >= z. *)
      let reseek z =
        let lo = ref 0 and hi = ref (Array.length els) in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if Z.Bitstring.compare zhis.(mid) z < 0 then lo := mid + 1 else hi := mid
        done;
        !lo
      in
      let contains p = Sqp_geom.Box.contains_point box p in
      if Array.length els > 0 then begin
        let c = ref (Cow.seek s.s_tree zlos.(0)) in
        let rec loop ei =
          if ei < Array.length els then
            match Cow.cursor_peek !c with
            | None -> ()
            | Some (z, (p, v)) ->
                incr scanned;
                if Z.Bitstring.compare zhis.(ei) z < 0 then
                  (* Random access into B: skip dead elements wholesale. *)
                  loop (reseek z)
                else if Z.Bitstring.compare z zlos.(ei) < 0 then begin
                  (* Random access into P: jump the cursor forward. *)
                  c := Cow.seek s.s_tree zlos.(ei);
                  loop ei
                end
                else begin
                  if contains p then acc := (p, v) :: !acc;
                  Cow.cursor_next !c;
                  loop ei
                end
        in
        loop 0
      end;
      ( List.rev !acc,
        {
          entries_scanned = !scanned;
          elements = Array.length els;
          results = List.length !acc;
        } )

let equi_join sa sb =
  if Z.Space.dims sa.s_space <> Z.Space.dims sb.s_space
     || Z.Space.depth sa.s_space <> Z.Space.depth sb.s_space
  then invalid_arg "Live.equi_join: spaces differ";
  let ca = Cow.seek_first sa.s_tree and cb = Cow.seek_first sb.s_tree in
  let acc = ref [] in
  (* Collect the full run of entries at key [z] from a cursor. *)
  let run c z =
    let out = ref [] in
    let rec go () =
      match Cow.cursor_peek c with
      | Some (z', e) when Z.Bitstring.compare z' z = 0 ->
          out := e :: !out;
          Cow.cursor_next c;
          go ()
      | _ -> ()
    in
    go ();
    List.rev !out
  in
  let rec loop () =
    match (Cow.cursor_peek ca, Cow.cursor_peek cb) with
    | None, _ | _, None -> ()
    | Some (za, _), Some (zb, _) ->
        let cmp = Z.Bitstring.compare za zb in
        if cmp < 0 then begin
          Cow.cursor_next ca;
          loop ()
        end
        else if cmp > 0 then begin
          Cow.cursor_next cb;
          loop ()
        end
        else begin
          let ra = run ca za and rb = run cb za in
          List.iter (fun a -> List.iter (fun b -> acc := (a, b) :: !acc) rb) ra;
          loop ()
        end
  in
  loop ();
  List.rev !acc

(* {1 Online rebuild and checkpoint} *)

(* Rewrite the durable store to a fresh base image at [v], truncating
   the log — one atomic store batch, so a crash leaves either the old
   store (base + log) or the new one, complete. *)
let checkpoint_locked t (v : 'a version) =
  match t.store with
  | None -> ()
  | Some store ->
      let old = ref [] in
      FP.iter store (fun slot _ -> old := slot :: !old);
      let entries = ref [] in
      Cow.iter v.tree (fun _ e -> entries := e :: !entries);
      FP.begin_batch store;
      (match
         List.iter (FP.free store) !old;
         ignore (FP.alloc store (meta_record t.space ~base_seq:v.vseq));
         alloc_base t store (List.rev !entries)
       with
      | () -> FP.commit_batch store
      | exception e ->
          if FP.in_batch store then (try FP.abort_batch store with _ -> ());
          raise e);
      Metrics.incr t.m_checkpoints

let checkpoint t =
  Mutex.protect t.writer (fun () -> checkpoint_locked t (Atomic.get t.version))

(* A failed commit poisons and closes the page-store handle (the journal
   alone knows which side of the commit the disk landed on), so recovery
   is a reopen: run journal recovery, then rebuild the in-memory tree
   from whatever state the disk settled at.  Memory is only ever mutated
   after a successful commit, so the reload can only agree with, or
   supersede (journal replay), what readers were already seeing. *)
let recover t =
  Mutex.protect t.writer (fun () ->
      match t.store with
      | None -> ()
      | Some store when not (FP.is_closed store) -> ()
      | Some store ->
          let path = FP.path store in
          let io = FP.injector store in
          let store' = FP.open_existing ~io path in
          let space, tree, last_seq =
            load_store ~decode:t.decode ~leaf_capacity:t.lc ~internal_capacity:t.ic
              ~path store'
          in
          if
            Z.Space.dims space <> Z.Space.dims t.space
            || Z.Space.depth space <> Z.Space.depth t.space
          then begin
            FP.close store';
            Storage_error.corrupt ~path "recovered live table has a different space"
          end;
          t.store <- Some store';
          Atomic.set t.version { tree; vseq = last_seq };
          Metrics.set_gauge t.m_entries (Cow.length tree);
          (* Journal recovery only reads (or truncates), so it cannot
             tell whether the disk that poisoned the store is writable
             again.  Probe with a checkpoint — one atomic batch — so a
             still-full disk surfaces as Io_error here, not on the next
             acked mutation.  On failure the batch is aborted (or the
             handle re-poisoned) and the error propagates: the table
             stays unrecovered. *)
          checkpoint_locked t { tree; vseq = last_seq })

let rebuild_online ?(chunk_size = 256) ?on_chunk t =
  if chunk_size < 1 then invalid_arg "Live.rebuild_online: chunk_size < 1";
  (* Subscribe and snapshot atomically, so every batch is in exactly one
     of {snapshot, feed}. *)
  let feed = { buf = Queue.create (); live = true } in
  let v0 =
    Mutex.protect t.writer (fun () ->
        t.feeds <- feed :: t.feeds;
        Atomic.get t.version)
  in
  (* Backfill: walk the frozen snapshot in z order, one chunk at a time.
     Writers keep committing concurrently; their batches queue up in the
     feed. *)
  let acc = ref [] in
  let c = Cow.seek_first v0.tree in
  let chunk = ref 0 in
  let rec scan n =
    match Cow.cursor_peek c with
    | None -> ()
    | Some (z, e) ->
        acc := (z, e) :: !acc;
        Cow.cursor_next c;
        if n + 1 >= chunk_size then begin
          Metrics.incr t.m_chunks;
          (match on_chunk with Some f -> f !chunk | None -> ());
          incr chunk;
          scan 0
        end
        else scan (n + 1)
  in
  scan 0;
  let building =
    ref
      (Cow.of_sorted_array ~leaf_capacity:t.lc ~internal_capacity:t.ic
         (Array.of_list (List.rev !acc)))
  in
  let apply_feed batches =
    List.iter
      (fun (_seq, ops) ->
        List.iter
          (fun op -> building := fst (apply_op_mem t.space !building op))
          ops)
      batches
  in
  (* Catch-up: drain the feed without the lock until it runs dry, then
     take the lock for the final drain and the swap. *)
  let drain () =
    Mutex.protect t.writer (fun () ->
        let out = ref [] in
        Queue.iter (fun b -> out := b :: !out) feed.buf;
        Queue.clear feed.buf;
        List.rev !out)
  in
  let rec catch_up () =
    match drain () with
    | [] -> ()
    | batches ->
        apply_feed batches;
        catch_up ()
  in
  catch_up ();
  let final_seq =
    Mutex.protect t.writer (fun () ->
        (* Holding the writer lock: no new batch can land, so what is
           left in the feed is the complete delta. *)
        let out = ref [] in
        Queue.iter (fun b -> out := b :: !out) feed.buf;
        apply_feed (List.rev !out);
        feed.live <- false;
        t.feeds <- List.filter (fun f -> f != feed) t.feeds;
        let cur = Atomic.get t.version in
        (* Swap in the freshly packed tree (same contents, tight pages)
           and checkpoint the store at this state. *)
        let packed_entries = ref [] in
        Cow.iter !building (fun z e -> packed_entries := (z, e) :: !packed_entries);
        let packed =
          Cow.of_sorted_array ~leaf_capacity:t.lc ~internal_capacity:t.ic
            (Array.of_list (List.rev !packed_entries))
        in
        let v = { tree = packed; vseq = cur.vseq } in
        checkpoint_locked t v;
        Atomic.set t.version v;
        cur.vseq)
  in
  let points = ref [] in
  Cow.iter !building (fun _ e -> points := e :: !points);
  let index = Zindex.of_points t.space (Array.of_list (List.rev !points)) in
  (index, final_seq)

let save_index ?io ?(page_bytes = 1024) ~path t =
  let index, at_seq = rebuild_online t in
  ignore (Persist.save ?io ~path ~page_bytes ~encode:t.encode index);
  at_seq
