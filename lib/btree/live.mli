(** Live ingest: a concurrently mutable zkd B+-tree with snapshot reads,
    durable write-ahead batches, and online index rebuild.

    The paper presents the zkd B+-tree as a dynamic structure; this
    module is the reproduction's mutable face of it.  Entries are keyed
    by their full-resolution z value in a copy-on-write tree
    ({!Cowtree}), and the current tree root is published through an
    [Atomic.t]:

    - {b writers} are serialized by a mutex and apply whole batches —
      journal first (one {!File_pager} atomic batch, PR 3 machinery),
      then memory, then publish.  A crash at any byte leaves the store
      at exactly the pre-batch or post-batch state.
    - {b readers} take a {!snapshot} with one atomic load and then see a
      perfectly frozen index: long range scans and spatial joins never
      block writers and never observe a half-applied batch.
    - {b online rebuild} backfills a fresh, tightly packed index from a
      snapshot in z-range chunks while mutations keep flowing, catches
      up by draining a mutation feed, and swaps the result in atomically
      (also checkpointing the durable store, truncating the log).

    Mutation counters land in the global {!Sqp_obs.Metrics} registry
    under [ingest.*]. *)

module Cow : module type of Cowtree.Make (Cowtree.Bitstring_key)

type 'a op =
  | Insert of Sqp_geom.Point.t * 'a
  | Delete of Sqp_geom.Point.t
      (** Remove the first entry at exactly this point; a no-op if the
          point is absent (reported via the applied count). *)

type 'a t

(** {1 Construction} *)

val create :
  ?leaf_capacity:int ->
  ?internal_capacity:int ->
  encode:('a -> string) ->
  decode:(string -> 'a) ->
  Sqp_zorder.Space.t ->
  'a t
(** Purely in-memory table (no durability).  [encode]/[decode] are still
    required so the table can be checkpointed or saved later. *)

val create_durable :
  ?io:Sqp_storage.Faulty_io.injector ->
  ?page_bytes:int ->
  ?leaf_capacity:int ->
  ?internal_capacity:int ->
  encode:('a -> string) ->
  decode:(string -> 'a) ->
  path:string ->
  Sqp_zorder.Space.t ->
  'a t
(** Fresh durable table backed by a journaled page store at [path]
    (truncates any previous store there).  Every {!apply} is one atomic
    page-store batch. *)

val open_durable :
  ?io:Sqp_storage.Faulty_io.injector ->
  ?leaf_capacity:int ->
  ?internal_capacity:int ->
  encode:('a -> string) ->
  decode:(string -> 'a) ->
  path:string ->
  unit ->
  'a t
(** Reopen a durable table: runs page-store crash recovery, then
    replays the base image and the logged batches in sequence order.
    The space (dims, depth) is recovered from the store's metadata.
    @raise Sqp_storage.Storage_error.Corrupt on unexplainable damage. *)

val close : 'a t -> unit
(** Close the backing store, if any; idempotent. *)

val durable_ok : 'a t -> bool
(** [false] when the backing store's handle has been poisoned by a
    failed commit (e.g. [ENOSPC] mid-batch) — mutations will fail until
    {!recover} reopens it.  Always [true] for in-memory tables. *)

val recover : 'a t -> unit
(** Reopen a poisoned backing store in place: run page-store crash
    recovery (replay or discard of the journal), rebuild the in-memory
    tree from the recovered state, checkpoint it (both a fresh base
    image and a {e writability probe} — journal recovery alone never
    writes, so it cannot tell whether the disk is still full), and
    resume serving mutations.  A no-op when the store is healthy or the
    table is in-memory.  Memory is only mutated after a successful
    commit, so the reload lands on the acknowledged state (or the
    journaled batch, if replay completed it).
    @raise Sqp_storage.Storage_error.Corrupt on unexplainable damage.
    @raise Sqp_storage.Storage_error.Io_error if the disk is still sick
    (e.g. still out of space). *)

val space : 'a t -> Sqp_zorder.Space.t

val length : 'a t -> int

val seq : 'a t -> int
(** Sequence number of the last applied batch (0 when none). *)

(** {1 Mutation} *)

val apply : 'a t -> 'a op list -> int * int
(** Apply one batch atomically; [(seq, applied)] where [applied] counts
    the ops that took effect (inserts always; deletes only when the
    point was present).  An empty batch does not consume a sequence
    number.  Writers are serialized; readers are never blocked.
    @raise Invalid_argument on a point outside the table's space. *)

val insert : 'a t -> Sqp_geom.Point.t -> 'a -> int
(** Single-op batch; returns the batch's sequence number. *)

val delete : 'a t -> Sqp_geom.Point.t -> bool
(** Single-op batch; [true] if an entry was removed. *)

(** {1 Snapshot reads} *)

type 'a snapshot
(** A frozen view: one atomic load, valid forever, shared freely across
    threads and domains. *)

type scan_stats = {
  entries_scanned : int;  (** entries examined during the merge *)
  elements : int;         (** query-box elements generated *)
  results : int;
}
(** Deterministic per-query counters (the sequential path of the
    differential suite asserts these bit-for-bit). *)

val snapshot : 'a t -> 'a snapshot

val snapshot_seq : 'a snapshot -> int

val snapshot_length : 'a snapshot -> int

val snapshot_entries : 'a snapshot -> (Sqp_geom.Point.t * 'a) list
(** All entries in z order. *)

val find : 'a snapshot -> Sqp_geom.Point.t -> 'a option
(** First entry at exactly this point. *)

val range_search :
  'a snapshot -> Sqp_geom.Box.t -> (Sqp_geom.Point.t * 'a) list * scan_stats
(** Section 3.3's merge (eager decomposition) over the frozen tree:
    all entries in the inclusive box, in z order. *)

val equi_join :
  'a snapshot -> 'b snapshot ->
  ((Sqp_geom.Point.t * 'a) * (Sqp_geom.Point.t * 'b)) list
(** Co-location join: all pairs at equal z values (equal points), by
    merging the two frozen trees; pairs in z order, runs crossed in
    insertion order.
    @raise Invalid_argument if the spaces differ. *)

(** {1 Online index build} *)

val rebuild_online :
  ?chunk_size:int ->
  ?on_chunk:(int -> unit) ->
  'a t ->
  'a Zindex.t * int
(** Build a packed index over the live table without blocking writers:
    snapshot-scan in z-range chunks of [chunk_size] (default 256)
    entries — [on_chunk] runs between chunks, which is where the torture
    suite injects concurrent writes — then drain the mutation feed until
    caught up, take the writer lock for the final drain, and atomically
    swap the live tree for the freshly packed one (checkpointing the
    durable store in the same step).  Returns the finished {!Zindex}
    and the sequence number of the state it reflects. *)

val save_index :
  ?io:Sqp_storage.Faulty_io.injector ->
  ?page_bytes:int ->
  path:string ->
  'a t ->
  int
(** {!rebuild_online} then {!Persist.save} the result atomically
    (tmp + rename): after a crash the file at [path] is either the
    complete new index or whatever was there before — never a torso.
    Returns the sequence number the saved index reflects. *)

val checkpoint : 'a t -> unit
(** Durable tables only (no-op otherwise): rewrite the base image at the
    current state and truncate the batch log, as one atomic page-store
    batch. *)
