module Z = Sqp_zorder
module FP = Sqp_storage.File_pager
module Storage_error = Sqp_storage.Storage_error
module Faulty_io = Sqp_storage.Faulty_io

(* v2 metadata page payload: "SQPX" | dims:u8 | depth:u8 |
   leaf_capacity:u16 | entry_count:i64.
   v2 entry encoding: coords (dims x i32) | payload_len:u16 | payload;
   data pages hold entries back to back, in z order.

   v3 metadata page payload: "SQPZ" | dims:u8 | depth:u8 |
   leaf_capacity:u16 | entry_count:i64 | page_budget:u32 (0 = entry-count
   pages).  v3 data page payload: nentries:u16 | run_bytes:u16 |
   front-coded z run ({!Sqp_zorder.Zrun}, fixed-length mode) | payloads
   (payload_len:u16 | payload, one per entry, in run order).  Points are
   recovered by unshuffling the full-resolution z values. *)

let meta_magic_v2 = "SQPX"
let meta_magic_v3 = "SQPZ"

type format = V2 | V3

let restart_interval = 16

let encode_meta_v2 ~dims ~depth ~leaf_capacity ~count =
  let buf = Bytes.create (4 + 1 + 1 + 2 + 8) in
  Bytes.blit_string meta_magic_v2 0 buf 0 4;
  Bytes.set_uint8 buf 4 dims;
  Bytes.set_uint8 buf 5 depth;
  Bytes.set_uint16_be buf 6 leaf_capacity;
  Bytes.set_int64_be buf 8 (Int64.of_int count);
  buf

let encode_meta_v3 ~dims ~depth ~leaf_capacity ~count ~page_budget =
  let buf = Bytes.create (4 + 1 + 1 + 2 + 8 + 4) in
  Bytes.blit_string meta_magic_v3 0 buf 0 4;
  Bytes.set_uint8 buf 4 dims;
  Bytes.set_uint8 buf 5 depth;
  Bytes.set_uint16_be buf 6 leaf_capacity;
  Bytes.set_int64_be buf 8 (Int64.of_int count);
  Bytes.set_int32_be buf 16 (Int32.of_int page_budget);
  buf

type meta = {
  version : int;
  dims : int;
  depth : int;
  leaf_capacity : int;
  count : int;
  page_budget : int option;  (* v3 only, [None] when 0 / v2 *)
}

let decode_meta ~path buf =
  if Bytes.length buf < 16 then
    Storage_error.corrupt ~path "bad index metadata page";
  let magic = Bytes.sub_string buf 0 4 in
  let version =
    if magic = meta_magic_v2 then 2
    else if magic = meta_magic_v3 then 3
    else Storage_error.corrupt ~path "bad index metadata page"
  in
  if version = 3 && Bytes.length buf < 20 then
    Storage_error.corrupt ~path "truncated v3 index metadata page";
  let page_budget =
    if version = 2 then None
    else
      match Int32.to_int (Bytes.get_int32_be buf 16) with
      | 0 -> None
      | b -> Some b
  in
  {
    version;
    dims = Bytes.get_uint8 buf 4;
    depth = Bytes.get_uint8 buf 5;
    leaf_capacity = Bytes.get_uint16_be buf 6;
    count = Int64.to_int (Bytes.get_int64_be buf 8);
    page_budget;
  }

(* {1 v2 entry codec} *)

let encode_entry dims point payload =
  let plen = String.length payload in
  if plen > 0xFFFF then invalid_arg "Persist: payload too long";
  let buf = Bytes.create ((4 * dims) + 2 + plen) in
  Array.iteri (fun i c -> Bytes.set_int32_be buf (4 * i) (Int32.of_int c)) point;
  Bytes.set_uint16_be buf (4 * dims) plen;
  Bytes.blit_string payload 0 buf ((4 * dims) + 2) plen;
  buf

let decode_entry ~path dims buf off =
  if off + (4 * dims) + 2 > Bytes.length buf then
    Storage_error.corrupt ~path "truncated index entry";
  let point = Array.init dims (fun i -> Int32.to_int (Bytes.get_int32_be buf (off + (4 * i)))) in
  let plen = Bytes.get_uint16_be buf (off + (4 * dims)) in
  if off + (4 * dims) + 2 + plen > Bytes.length buf then
    Storage_error.corrupt ~path "index entry payload runs past the page";
  let payload = Bytes.sub_string buf (off + (4 * dims) + 2) plen in
  (point, payload, off + (4 * dims) + 2 + plen)

(* {1 v3 page codec} *)

(* Exact incremental size arithmetic mirroring [Zrun.encode] in
   fixed-length mode, so pages are packed to the byte without trial
   encodes: a restart entry costs its 2-byte table slot plus the whole
   key, any other costs a shared byte plus its suffix. *)
let key_bytes bits = (bits + 7) / 8

let v3_entry_cost ~total ~index ~prev z payload_len =
  let key_cost =
    if index mod restart_interval = 0 then 2 + key_bytes total
    else
      let shared = Z.Zpacked.common_prefix_len prev z in
      1 + key_bytes (total - shared)
  in
  key_cost + 2 + payload_len

(* Fixed per-page overhead: run header (7) + nentries:u16 + run_bytes:u16. *)
let v3_page_overhead = 7 + 4

let encode_page_v3 ~total zs payloads =
  let run = Z.Zrun.encode ~restart_interval ~fixed_len:total zs in
  let rs = Z.Zrun.to_string run in
  let buf = Buffer.create (4 + String.length rs) in
  Buffer.add_uint16_be buf (Array.length zs);
  Buffer.add_uint16_be buf (String.length rs);
  Buffer.add_string buf rs;
  List.iter
    (fun p ->
      Buffer.add_uint16_be buf (String.length p);
      Buffer.add_string buf p)
    payloads;
  Buffer.to_bytes buf

let decode_page_v3 ~path buf =
  let s = Bytes.unsafe_to_string buf in
  let len = String.length s in
  if len < 4 then Storage_error.corrupt ~path "truncated v3 data page";
  let u16 i = (Char.code s.[i] lsl 8) lor Char.code s.[i + 1] in
  let nentries = u16 0 and run_bytes = u16 2 in
  if 4 + run_bytes > len then
    Storage_error.corrupt ~path "v3 z run overruns the page";
  let run =
    try Z.Zrun.of_string ~pos:4 ~len:run_bytes s
    with Invalid_argument msg ->
      Storage_error.corrupt ~path ("v3 z run: " ^ msg)
  in
  if Z.Zrun.count run <> nentries then
    Storage_error.corrupt ~path "v3 page entry count disagrees with its z run";
  let zs =
    try Z.Zrun.decode run
    with Invalid_argument msg ->
      Storage_error.corrupt ~path ("v3 z run: " ^ msg)
  in
  let payloads = Array.make nentries "" in
  let off = ref (4 + run_bytes) in
  for i = 0 to nentries - 1 do
    if !off + 2 > len then
      Storage_error.corrupt ~path "truncated v3 payload table";
    let plen = u16 !off in
    if !off + 2 + plen > len then
      Storage_error.corrupt ~path "v3 payload runs past the page";
    payloads.(i) <- String.sub s (!off + 2) plen;
    off := !off + 2 + plen
  done;
  (zs, payloads)

(* {1 Save} *)

let save_error_cleanup store tmp e =
  FP.close store;
  (try Sys.remove tmp with Sys_error _ -> ());
  (try Sys.remove (Sqp_storage.Journal.journal_path tmp) with Sys_error _ -> ());
  raise e

let save ?(io = Faulty_io.none) ?format ~path ?(page_bytes = 4096) ~encode index =
  let space = Zindex.space index in
  let dims = Z.Space.dims space and depth = Z.Space.depth space in
  let total = Z.Space.total_bits space in
  let format =
    match format with
    | Some f -> f
    | None ->
        (* Spaces too deep for packed z values stay on the v2 encoding. *)
        if Z.Zpacked.fits_space space then V3 else V2
  in
  if format = V3 && not (Z.Zpacked.fits_space space) then
    invalid_arg "Persist.save: space too deep for the v3 format";
  (* Build the new store beside the old one, then atomically rename over
     it: a crash at any point leaves either the old or the new index. *)
  let tmp = path ^ ".tmp" in
  let store = FP.create ~io ~page_bytes tmp in
  let data_pages =
    try
      let capacity = FP.payload_capacity store in
      let entries = Zindex.Tree.to_list (Zindex.tree index) in
      let count = List.length entries in
      FP.begin_batch store;
      let data_pages = ref 0 in
      (match format with
      | V2 ->
          ignore
            (FP.alloc store
               (encode_meta_v2 ~dims ~depth
                  ~leaf_capacity:(Zindex.leaf_capacity index)
                  ~count));
          let buf = Buffer.create capacity in
          let flush_page () =
            if Buffer.length buf > 0 then begin
              ignore (FP.alloc store (Buffer.to_bytes buf));
              incr data_pages;
              Buffer.clear buf
            end
          in
          List.iter
            (fun (_, (p, v)) ->
              let e = encode_entry dims p (encode v) in
              if Bytes.length e > capacity then
                invalid_arg "Persist.save: entry larger than a page";
              if Buffer.length buf + Bytes.length e > capacity then flush_page ();
              Buffer.add_bytes buf e)
            entries;
          flush_page ()
      | V3 ->
          ignore
            (FP.alloc store
               (encode_meta_v3 ~dims ~depth
                  ~leaf_capacity:(Zindex.leaf_capacity index)
                  ~count
                  ~page_budget:
                    (Option.value ~default:0 (Zindex.page_budget index))));
          (* Greedy packing against the exact encoded size. *)
          let zs = ref [] and ps = ref [] and n = ref 0 in
          let bytes = ref v3_page_overhead in
          let prev = ref Z.Zpacked.empty in
          let flush_page () =
            if !n > 0 then begin
              let page =
                encode_page_v3 ~total
                  (Array.of_list (List.rev !zs))
                  (List.rev !ps)
              in
              assert (Bytes.length page <= capacity);
              ignore (FP.alloc store page);
              incr data_pages;
              zs := [];
              ps := [];
              n := 0;
              bytes := v3_page_overhead
            end
          in
          List.iter
            (fun (zbs, (_, v)) ->
              let z =
                match Z.Zpacked.of_bitstring zbs with
                | Some z -> z
                | None -> assert false (* fits_space checked above *)
              in
              let payload = encode v in
              let plen = String.length payload in
              if plen > 0xFFFF then invalid_arg "Persist: payload too long";
              let cost =
                v3_entry_cost ~total ~index:!n ~prev:!prev z plen
              in
              if !n > 0 && !bytes + cost > capacity then flush_page ();
              let cost =
                if !n = 0 then v3_entry_cost ~total ~index:0 ~prev:!prev z plen
                else cost
              in
              if v3_page_overhead + cost > capacity then
                invalid_arg "Persist.save: entry larger than a page";
              zs := z :: !zs;
              ps := payload :: !ps;
              bytes := !bytes + cost;
              prev := z;
              incr n)
            entries;
          flush_page ());
      FP.commit_batch store;
      FP.close store;
      !data_pages
    with e -> save_error_cleanup store tmp e
  in
  Faulty_io.rename io ~src:tmp ~dst:path;
  data_pages

(* {1 Load} *)

let point_of_z space z = Array.map fst (Z.Zpacked.unshuffle space z)

let load ?(io = Faulty_io.none) ?(lenient = false) ~path ~decode () =
  let store = FP.open_existing ~io path in
  Fun.protect
    ~finally:(fun () -> FP.close store)
    (fun () ->
      let meta = ref None in
      let entries = ref [] in
      FP.iter store (fun slot payload ->
          match !meta with
          | None ->
              (* Slot order is id order; the metadata page was written
                 first. *)
              ignore slot;
              meta := Some (decode_meta ~path payload)
          | Some m when m.version = 2 ->
              let off = ref 0 in
              while !off < Bytes.length payload do
                let point, p, next = decode_entry ~path m.dims payload !off in
                entries := (point, decode p) :: !entries;
                off := next
              done
          | Some m ->
              let space = Z.Space.make ~dims:m.dims ~depth:m.depth in
              let zs, payloads = decode_page_v3 ~path payload in
              Array.iteri
                (fun i z ->
                  entries := (point_of_z space z, decode payloads.(i)) :: !entries)
                zs);
      match !meta with
      | None -> Storage_error.corrupt ~path "empty store: no index metadata page"
      | Some m ->
          let entries = Array.of_list (List.rev !entries) in
          if Array.length entries <> m.count && not lenient then
            Storage_error.corrupt ~path
              (Printf.sprintf "entry count mismatch: metadata says %d, found %d"
                 m.count (Array.length entries));
          let space = Z.Space.make ~dims:m.dims ~depth:m.depth in
          Zindex.of_points ~leaf_capacity:m.leaf_capacity
            ?page_budget:m.page_budget space entries)

(* {1 Inspection (fsck)} *)

type info = {
  version : int;
  dims : int;
  depth : int;
  count : int;  (* per metadata *)
  found : int;  (* entries actually decoded *)
  data_pages : int;
  page_budget : int option;
  page_errors : (int * string) list;  (* slot, problem *)
}

let inspect ?(io = Faulty_io.none) ~path () =
  let store = FP.open_existing ~io path in
  Fun.protect
    ~finally:(fun () -> FP.close store)
    (fun () ->
      let meta = ref None in
      let found = ref 0 and data_pages = ref 0 in
      let errors = ref [] in
      FP.iter store (fun slot payload ->
          match !meta with
          | None -> meta := Some (decode_meta ~path payload)
          | Some m -> (
              incr data_pages;
              match
                if m.version = 2 then begin
                  let off = ref 0 and n = ref 0 in
                  while !off < Bytes.length payload do
                    let _, _, next = decode_entry ~path m.dims payload !off in
                    incr n;
                    off := next
                  done;
                  !n
                end
                else begin
                  (* Deep-check the run structure, not just decodability. *)
                  let s = Bytes.unsafe_to_string payload in
                  if Bytes.length payload >= 4 then begin
                    let run_bytes =
                      (Char.code s.[2] lsl 8) lor Char.code s.[3]
                    in
                    if 4 + run_bytes <= String.length s then
                      match
                        Z.Zrun.validate (Z.Zrun.of_string ~pos:4 ~len:run_bytes s)
                      with
                      | Ok () -> ()
                      | Error msg -> Storage_error.corrupt ~path msg
                  end;
                  let zs, _ = decode_page_v3 ~path payload in
                  Array.length zs
                end
              with
              | n -> found := !found + n
              | exception Storage_error.Corrupt { what; _ } ->
                  errors := (slot, what) :: !errors
              | exception Invalid_argument msg ->
                  errors := (slot, msg) :: !errors));
      match !meta with
      | None -> Storage_error.corrupt ~path "empty store: no index metadata page"
      | Some m ->
          {
            version = m.version;
            dims = m.dims;
            depth = m.depth;
            count = m.count;
            found = !found;
            data_pages = !data_pages;
            page_budget = m.page_budget;
            page_errors = List.rev !errors;
          })
