(** Dump / restore a {!Zindex} through the file-backed page store.

    The on-disk form is the paper's "preprocessing" artifact: the point
    set with payloads, packed onto fixed-size pages in z order, plus a
    metadata page (space shape, leaf capacity).  Loading rebuilds the
    prefix B+-tree by bulk load, so a reloaded index answers queries
    identically to the original.

    Two page formats coexist:

    - {b v2} ([SQPX]): fixed-width entries — coords as [i32] each, then
      a length-prefixed payload.
    - {b v3} ([SQPZ], the default): each data page stores its entries'
      full-resolution z values as one front-coded
      {!Sqp_zorder.Zrun} (restart points every 16 entries), followed by
      the length-prefixed payloads; points are recovered by unshuffling.
      On the standard workload this packs ~1.6x more entries per page.
      The metadata page additionally records the index's in-memory page
      budget so {!load} rebuilds with the same compressed geometry.

    {!load} sniffs the metadata magic, so v2 files written by previous
    releases keep loading transparently.  Container-level durability is
    unchanged: {!save} writes the whole index as one journaled batch
    into [path ^ ".tmp"], then atomically renames it over [path] — a
    crash at any point leaves the previous index (or none) intact, never
    a half-written one.  {!load} runs the store's normal crash recovery
    on open. *)

type format = V2 | V3

val save :
  ?io:Sqp_storage.Faulty_io.injector ->
  ?format:format ->
  path:string ->
  ?page_bytes:int ->
  encode:('a -> string) ->
  'a Zindex.t ->
  int
(** Write the index contents; returns the number of data pages written.
    [page_bytes] defaults to 4096.  [format] defaults to [V3] when the
    space's z values fit {!Sqp_zorder.Zpacked} (≤126 bits) and [V2]
    otherwise; pass [V2] to write the legacy format explicitly.  [io]
    (for fault-injection tests) defaults to passthrough.
    @raise Invalid_argument if an encoded payload is larger than a page
    can hold, or [V3] is forced on a space too deep for it. *)

val load :
  ?io:Sqp_storage.Faulty_io.injector ->
  ?lenient:bool ->
  path:string ->
  decode:(string -> 'a) ->
  unit ->
  'a Zindex.t
(** Rebuild an index from a file written by {!save} (either format).
    With [~lenient:true] (used after {!Sqp_storage.Fsck.salvage}) a
    mismatch between the metadata entry count and the entries actually
    present is tolerated: whatever survived is loaded.
    @raise Sqp_storage.Storage_error.Corrupt on format or checksum
    errors. *)

(** {1 Inspection} *)

type info = {
  version : int;  (** 2 or 3 *)
  dims : int;
  depth : int;
  count : int;  (** entries per the metadata page *)
  found : int;  (** entries decoded from intact data pages *)
  data_pages : int;
  page_budget : int option;  (** v3: recorded in-memory byte budget *)
  page_errors : (int * string) list;
      (** slot, problem — for v3 pages this includes full restart-point
          structure validation ({!Sqp_zorder.Zrun.validate}) *)
}

val inspect :
  ?io:Sqp_storage.Faulty_io.injector -> path:string -> unit -> info
(** Index-format report for [sqp fsck]: the format version plus per-page
    structural problems, without rebuilding the index.  Unlike {!load},
    a damaged data page is reported, not fatal.
    @raise Sqp_storage.Storage_error.Corrupt only when the store has no
    readable metadata page. *)
