module Z = Sqp_zorder
module Tree = Bptree.Make (Bptree.Bitstring_key)

type 'a t = {
  space : Z.Space.t;
  tree : (Sqp_geom.Point.t * 'a) Tree.t;
  leaf_capacity : int;
}

type strategy = Merge | Lazy_merge | Bigmin | Scan

type query_stats = {
  data_pages : int;
  leaf_accesses : int;
  internal_accesses : int;
  elements : int;
  entries_scanned : int;
  results : int;
  pool_hits : int;
  pool_misses : int;
}

let default_value_bytes = 8

let create ?policy ?pool_capacity ?(leaf_capacity = 20) ?(internal_capacity = 20)
    ?page_budget ?(compressed = true) ?(value_bytes = default_value_bytes) space =
  let budget =
    Option.map
      (fun page_bytes ->
        (* Per-entry overhead: payload charge plus a 2-byte length slot,
           matching the v3 on-disk entry; fixed-width keys are charged
           the v2 footprint (4 bytes per coordinate). *)
        {
          Bptree.page_bytes;
          compressed;
          entry_overhead = 2 + value_bytes;
          fixed_entry_bytes = 4 * Z.Space.dims space;
        })
      page_budget
  in
  {
    space;
    tree =
      Tree.create ?policy ?pool_capacity ?budget ~leaf_capacity
        ~internal_capacity ();
    leaf_capacity;
  }

let space t = t.space

let zval t p = Z.Interleave.shuffle t.space p

let of_points ?policy ?pool_capacity ?leaf_capacity ?internal_capacity
    ?page_budget ?compressed ?value_bytes ?fill space points =
  let t =
    create ?policy ?pool_capacity ?leaf_capacity ?internal_capacity ?page_budget
      ?compressed ?value_bytes space
  in
  let entries =
    Array.map (fun (p, v) -> (Z.Interleave.shuffle space p, (p, v))) points
  in
  Array.sort (fun (a, _) (b, _) -> Z.Bitstring.compare a b) entries;
  Tree.bulk_load ?fill t.tree entries;
  t

let insert t p v = Tree.insert t.tree (zval t p) (p, v)

let delete t p = Tree.delete t.tree (zval t p)

let find t p = Option.map snd (Tree.find t.tree (zval t p))

let length t = Tree.length t.tree

let data_page_count t = Tree.leaf_count t.tree

let leaf_capacity t = t.leaf_capacity

let page_budget t = Option.map (fun b -> b.Bptree.page_bytes) (Tree.budget t.tree)

let compressed t =
  match Tree.budget t.tree with Some b -> b.Bptree.compressed | None -> false

let avg_leaf_entries t = Tree.avg_leaf_entries t.tree

type compression = Tree.compression = {
  leaves : int;
  entries : int;
  avg_entries_per_leaf : float;
  fixed_entries_per_leaf : float;
  ratio : float;
}

let compression_stats t = Tree.compression_stats t.tree

let tree t = t.tree

(* {2 Search} *)

type 'a query_state = {
  mutable pages : int list;       (* distinct leaf pages, most recent first *)
  mutable page_set : (int, unit) Hashtbl.t;
  mutable scanned : int;
  mutable elements_used : int;
  mutable acc : (Sqp_geom.Point.t * 'a) list;
  hits0 : int;                    (* buffer-pool baseline at query start *)
  misses0 : int;
}

let new_state t =
  let io = Tree.io_stats t.tree in
  {
    pages = [];
    page_set = Hashtbl.create 16;
    scanned = 0;
    elements_used = 0;
    acc = [];
    hits0 = io.Sqp_storage.Stats.pool_hits;
    misses0 = io.Sqp_storage.Stats.pool_misses;
  }

let note_page st cursor =
  match Tree.cursor_page cursor with
  | None -> ()
  | Some id ->
      if not (Hashtbl.mem st.page_set id) then begin
        Hashtbl.replace st.page_set id ();
        st.pages <- id :: st.pages
      end

(* The merge of Section 3.3 over an arbitrary z-ordered element sequence
   (eager list or lazy generator).  [reseek_elements] implements the
   "random access to B" direction: given the current point z value it
   must yield the element sequence starting at the first element not
   wholly before that z value. *)
let merge_with_elements t st box_contains elements ~reseek_elements =
  let total = Z.Space.total_bits t.space in
  let zhi_of e = Z.Bitstring.pad_to e total true in
  let zlo_of e = Z.Bitstring.pad_to e total false in
  let cursor = ref None in
  let seek_at z =
    let c = Tree.seek t.tree z in
    cursor := Some c;
    note_page st c;
    c
  in
  let rec loop c elements =
    match Tree.cursor_peek c with
    | None -> ()
    | Some (z, (p, v)) -> (
        st.scanned <- st.scanned + 1;
        (* Advance the element sequence past elements wholly before z. *)
        match Seq.uncons elements with
        | None -> ()
        | Some (e, rest) ->
            if Z.Bitstring.compare (zhi_of e) z < 0 then begin
              (* Random access into B: skip dead elements wholesale. *)
              let elements = reseek_elements z in
              loop c elements
            end
            else if Z.Bitstring.compare z (zlo_of e) < 0 then begin
              (* Random access into P: jump the cursor forward. *)
              let c = seek_at (zlo_of e) in
              loop c (Seq.cons e rest)
            end
            else begin
              (* zlo <= z <= zhi: the point is inside element e. *)
              if box_contains p then st.acc <- (p, v) :: st.acc;
              note_page st c;
              Tree.cursor_next c;
              note_page st c;
              loop c (Seq.cons e rest)
            end)
  in
  match Seq.uncons elements with
  | None -> ()
  | Some (e, rest) ->
      let c = seek_at (zlo_of e) in
      loop c (Seq.cons e rest)

let finish t st =
  let counters = Tree.counters t.tree in
  let io = Tree.io_stats t.tree in
  let results = List.length st.acc in
  ( List.rev st.acc,
    {
      data_pages = Hashtbl.length st.page_set;
      leaf_accesses = counters.Tree.leaf_reads;
      internal_accesses = counters.Tree.internal_reads;
      elements = st.elements_used;
      entries_scanned = st.scanned;
      results;
      pool_hits = io.Sqp_storage.Stats.pool_hits - st.hits0;
      pool_misses = io.Sqp_storage.Stats.pool_misses - st.misses0;
    } )

let range_search ?(strategy = Merge) t box =
  if Sqp_geom.Box.dims box <> Z.Space.dims t.space then
    invalid_arg "Zindex.range_search: dimension mismatch";
  Tree.reset_counters t.tree;
  let st = new_state t in
  let box =
    match Sqp_geom.Box.clip box ~side:(Z.Space.side t.space) with
    | Some b -> Some b
    | None -> None
  in
  match box with
  | None -> finish t st
  | Some box -> (
      let contains p = Sqp_geom.Box.contains_point box p in
      let lo = Sqp_geom.Box.lo box and hi = Sqp_geom.Box.hi box in
      match strategy with
      | Merge ->
          let els = Z.Decompose.decompose_box t.space ~lo ~hi in
          st.elements_used <- List.length els;
          let arr = Array.of_list els in
          let total = Z.Space.total_bits t.space in
          let zhis = Array.map (fun e -> Z.Bitstring.pad_to e total true) arr in
          (* Binary search: first element whose zhi >= z. *)
          let reseek z =
            let lo = ref 0 and hi = ref (Array.length arr) in
            while !lo < !hi do
              let mid = (!lo + !hi) / 2 in
              if Z.Bitstring.compare zhis.(mid) z < 0 then lo := mid + 1 else hi := mid
            done;
            let start = !lo in
            Seq.init (Array.length arr - start) (fun i -> arr.(start + i))
          in
          merge_with_elements t st contains (List.to_seq els) ~reseek_elements:reseek;
          finish t st
      | Lazy_merge ->
          let classify = Z.Decompose.box_classifier t.space ~lo ~hi in
          let counted seq =
            Seq.map
              (fun e ->
                st.elements_used <- st.elements_used + 1;
                e)
              seq
          in
          let reseek z = counted (Z.Decompose.seq_from t.space classify z) in
          merge_with_elements t st contains
            (counted (Z.Decompose.to_seq t.space classify))
            ~reseek_elements:reseek;
          finish t st
      | Bigmin ->
          if not (Z.Zrange.usable t.space) then
            invalid_arg "Zindex: Bigmin strategy needs total bits <= 61";
          let total = Z.Space.total_bits t.space in
          let c = ref (Tree.seek t.tree (Z.Interleave.shuffle t.space lo)) in
          note_page st !c;
          let rec loop () =
            match Tree.cursor_peek !c with
            | None -> ()
            | Some (zbs, (p, v)) -> (
                st.scanned <- st.scanned + 1;
                let z = Z.Bitstring.to_int zbs in
                match Z.Bigmin.bigmin t.space ~lo ~hi z with
                | None -> ()
                | Some z' when z' = z ->
                    st.acc <- (p, v) :: st.acc;
                    Tree.cursor_next !c;
                    note_page st !c;
                    loop ()
                | Some z' ->
                    st.elements_used <- st.elements_used + 1;
                    c := Tree.seek t.tree (Z.Bitstring.of_int z' ~width:total);
                    note_page st !c;
                    loop ())
          in
          loop ();
          finish t st
      | Scan ->
          let c = Tree.seek_first t.tree in
          note_page st c;
          let rec loop () =
            match Tree.cursor_peek c with
            | None -> ()
            | Some (_, (p, v)) ->
                st.scanned <- st.scanned + 1;
                if contains p then st.acc <- (p, v) :: st.acc;
                note_page st c;
                Tree.cursor_next c;
                note_page st c;
                loop ()
          in
          loop ();
          finish t st)

let partial_match ?strategy t specs =
  let k = Z.Space.dims t.space in
  if Array.length specs <> k then invalid_arg "Zindex.partial_match: arity";
  let side = Z.Space.side t.space in
  let lo = Array.map (function Some v -> v | None -> 0) specs
  and hi = Array.map (function Some v -> v | None -> side - 1) specs in
  range_search ?strategy t (Sqp_geom.Box.make ~lo ~hi)

let add_stats a b =
  {
    data_pages = a.data_pages + b.data_pages;
    leaf_accesses = a.leaf_accesses + b.leaf_accesses;
    internal_accesses = a.internal_accesses + b.internal_accesses;
    elements = a.elements + b.elements;
    entries_scanned = a.entries_scanned + b.entries_scanned;
    results = a.results + b.results;
    pool_hits = a.pool_hits + b.pool_hits;
    pool_misses = a.pool_misses + b.pool_misses;
  }

let box_around t center radius =
  let r = int_of_float (ceil radius) in
  let side = Z.Space.side t.space in
  let clamp v = max 0 (min (side - 1) v) in
  Sqp_geom.Box.make
    ~lo:(Array.map (fun c -> clamp (c - r)) center)
    ~hi:(Array.map (fun c -> clamp (c + r)) center)

let dist2 a b =
  let acc = ref 0.0 in
  Array.iteri
    (fun i ai ->
      let d = float_of_int (ai - b.(i)) in
      acc := !acc +. (d *. d))
    a;
  !acc

let within_distance ?strategy t center ~radius =
  if radius < 0.0 then invalid_arg "Zindex.within_distance: negative radius";
  let results, stats = range_search ?strategy t (box_around t center radius) in
  let kept = List.filter (fun (p, _) -> dist2 p center <= radius *. radius) results in
  (kept, { stats with results = List.length kept })

let nearest ?strategy t center =
  if length t = 0 then None
  else begin
    let side = Z.Space.side t.space in
    (* Grow the search box until a candidate is found, then once more to
       rule out a closer point hiding just outside the box: any point
       outside a box of (integer) radius r is at Euclidean distance > r
       from the centre. *)
    let stats = ref None in
    let merge s = stats := Some (match !stats with None -> s | Some a -> add_stats a s) in
    let best candidates =
      List.fold_left
        (fun acc (p, v) ->
          let d = dist2 p center in
          match acc with
          | Some (_, _, bd) when bd <= d -> acc
          | _ -> Some (p, v, d))
        None candidates
    in
    let rec grow r =
      let found, s = range_search ?strategy t (box_around t center (float_of_int r)) in
      merge s;
      match best found with
      | Some (p, v, d) ->
          let safe = float_of_int r *. float_of_int r in
          if d <= safe || r >= 2 * side then ((p, v), d)
          else begin
            (* The candidate might not be the true nearest: search the box
               that provably encloses the candidate's distance. *)
            let r' = int_of_float (ceil (sqrt d)) in
            let found', s' = range_search ?strategy t (box_around t center (float_of_int r')) in
            merge s';
            match best found' with
            | Some (p', v', _) -> ((p', v'), 0.0)
            | None -> ((p, v), d)
          end
      | None -> grow (max 1 (2 * r))
    in
    let (p, v), _ = grow 1 in
    match !stats with Some s -> Some ((p, v), s) | None -> None
  end

let k_nearest ?strategy t center ~k =
  if k < 0 then invalid_arg "Zindex.k_nearest: negative k";
  if k = 0 || length t = 0 then
    ( [],
      {
        data_pages = 0;
        leaf_accesses = 0;
        internal_accesses = 0;
        elements = 0;
        entries_scanned = 0;
        results = 0;
        pool_hits = 0;
        pool_misses = 0;
      } )
  else begin
    let side = Z.Space.side t.space in
    let stats = ref None in
    let merge s =
      stats := Some (match !stats with None -> s | Some a -> add_stats a s)
    in
    let sorted found =
      List.sort
        (fun (p, _) (q, _) -> compare (dist2 p center, p) (dist2 q center, q))
        found
    in
    let rec grow r =
      let found, s = range_search ?strategy t (box_around t center (float_of_int r)) in
      merge s;
      let have = List.length found in
      if have >= k || r >= 2 * side then begin
        let best = sorted found in
        let rec take n = function
          | [] -> []
          | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
        in
        let candidates = take k best in
        (* The k-th candidate's distance may exceed the guaranteed radius;
           one more search at that distance settles it. *)
        match List.rev candidates with
        | [] -> []
        | (far, _) :: _ ->
            let d = sqrt (dist2 far center) in
            if (d <= float_of_int r && have >= k) || r >= 2 * side then candidates
            else begin
              let r' = int_of_float (ceil d) in
              let found', s' =
                range_search ?strategy t (box_around t center (float_of_int r'))
              in
              merge s';
              take k (sorted found')
            end
      end
      else grow (max 1 (2 * r))
    in
    let result = grow 1 in
    let s = Option.get !stats in
    (result, { s with results = List.length result })
  end

let efficiency t stats =
  if stats.data_pages = 0 then 0.0
  else
    (* Budget-mode trees have no fixed slot count; use the measured
       effective capacity instead. *)
    let cap =
      match Tree.budget t.tree with
      | None -> float_of_int t.leaf_capacity
      | Some _ -> max 1.0 (Tree.avg_leaf_entries t.tree)
    in
    float_of_int stats.results /. (float_of_int stats.data_pages *. cap)

let leaf_points t =
  List.map
    (fun (page, keys) ->
      (page, List.map (fun z -> Array.map fst (Z.Interleave.unshuffle t.space z)) keys))
    (Tree.leaf_pages t.tree)

let io_stats t = Tree.io_stats t.tree
