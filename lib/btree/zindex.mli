(** The zkd B+-tree: points stored in z order in a prefix B+-tree, with
    the paper's range-search algorithm (Section 3.3) on top.

    Each point is shuffled to its full-resolution z value, which is the
    B+-tree key; the tree's cursors provide the "random and sequential
    access" the algorithm needs.  Four search strategies are provided:

    - [Merge]: decompose the query box eagerly, then merge the point
      sequence with the element sequence, skipping in both directions
      (the paper's optimized algorithm);
    - [Lazy_merge]: same, but box elements are generated on demand
      (the second optimization of Section 3.3);
    - [Bigmin]: skip computation straight from the box corners without
      materializing the decomposition (Tropf-Herzog style);
    - [Scan]: read every data page and filter (the baseline that shows
      why one wants an MDS at all). *)

module Tree : module type of Bptree.Make (Bptree.Bitstring_key)

type 'a t

type strategy = Merge | Lazy_merge | Bigmin | Scan

type query_stats = {
  data_pages : int;       (** distinct leaf pages touched *)
  leaf_accesses : int;    (** leaf-node reads, with repetition *)
  internal_accesses : int;(** index-node reads (descents) *)
  elements : int;         (** query-box elements generated / used *)
  entries_scanned : int;  (** entries examined in leaves *)
  results : int;
  pool_hits : int;        (** buffer-pool hits during this query *)
  pool_misses : int;      (** buffer-pool misses (physical page reads) *)
}

val create :
  ?policy:Sqp_storage.Buffer_pool.policy ->
  ?pool_capacity:int ->
  ?leaf_capacity:int ->
  ?internal_capacity:int ->
  ?page_budget:int ->
  ?compressed:bool ->
  ?value_bytes:int ->
  Sqp_zorder.Space.t ->
  'a t
(** Defaults: leaf capacity 20 (the paper's page size), internal capacity
    20, LRU pool of 8 frames.  [page_budget] switches pages to the byte
    model of {!Bptree.budget}: each node holds as many entries as fit in
    that many bytes, front-coded when [compressed] (default [true]) or
    at the v2 fixed width otherwise — the latter is the calibrated
    baseline for differential tests.  [value_bytes] (default 8) is the
    per-entry payload charge. *)

val space : 'a t -> Sqp_zorder.Space.t

val of_points :
  ?policy:Sqp_storage.Buffer_pool.policy ->
  ?pool_capacity:int ->
  ?leaf_capacity:int ->
  ?internal_capacity:int ->
  ?page_budget:int ->
  ?compressed:bool ->
  ?value_bytes:int ->
  ?fill:float ->
  Sqp_zorder.Space.t ->
  (Sqp_geom.Point.t * 'a) array ->
  'a t
(** Bulk build: shuffle, sort by z value, pack leaves ([fill] default 1.0).
    This is the paper's "preprocessing step" (step 1 of Section 3.3).
    Compression options as in {!create}. *)

val insert : 'a t -> Sqp_geom.Point.t -> 'a -> unit

val delete : 'a t -> Sqp_geom.Point.t -> bool
(** Remove one entry at exactly this point. *)

val find : 'a t -> Sqp_geom.Point.t -> 'a option
(** Exact-match lookup. *)

val length : 'a t -> int

val data_page_count : 'a t -> int

val leaf_capacity : 'a t -> int
(** Page capacity the index was built with. *)

val page_budget : 'a t -> int option
(** The byte budget per page, when the index uses the byte model. *)

val compressed : 'a t -> bool
(** Whether pages are front-coded (implies a byte budget). *)

val avg_leaf_entries : 'a t -> float
(** Measured mean entries per data page — the effective leaf capacity.
    Does not disturb the counters. *)

type compression = Tree.compression = {
  leaves : int;
  entries : int;
  avg_entries_per_leaf : float;
  fixed_entries_per_leaf : float;
  ratio : float;
}

val compression_stats : 'a t -> compression option
(** [None] unless the index uses a byte budget; [ratio] is the
    entries-per-page gain over a fixed-width layout of the same budget.
    Does not disturb the counters. *)

val tree : 'a t -> (Sqp_geom.Point.t * 'a) Tree.t
(** The underlying prefix B+-tree (for inspection and tests). *)

val range_search :
  ?strategy:strategy ->
  'a t ->
  Sqp_geom.Box.t ->
  (Sqp_geom.Point.t * 'a) list * query_stats
(** All points in the (inclusive) box, in z order, plus access statistics
    for this query alone. *)

val partial_match :
  ?strategy:strategy ->
  'a t ->
  (int option) array ->
  (Sqp_geom.Point.t * 'a) list * query_stats
(** [partial_match t specs]: [specs.(i) = Some v] pins axis [i] to [v],
    [None] leaves it unrestricted (Section 5.3.1's partial match query). *)

(** {1 Proximity queries (Section 6)}

    "Proximity queries can often be translated into containment or overlap
    queries": both operations below run ordinary range searches over
    expanding / expanded boxes and refine with exact distances. *)

val within_distance :
  ?strategy:strategy ->
  'a t ->
  Sqp_geom.Point.t ->
  radius:float ->
  (Sqp_geom.Point.t * 'a) list * query_stats
(** All points within Euclidean distance [radius] of the centre: one range
    search over the bounding box of the disc, filtered exactly. *)

val nearest :
  ?strategy:strategy ->
  'a t ->
  Sqp_geom.Point.t ->
  ((Sqp_geom.Point.t * 'a) * query_stats) option
(** Nearest neighbour by Euclidean distance ([None] on an empty index):
    range searches over boxes of doubling radius until the best candidate
    is provably closer than the unexplored region.  The returned stats
    accumulate over all rounds. *)

val k_nearest :
  ?strategy:strategy ->
  'a t ->
  Sqp_geom.Point.t ->
  k:int ->
  (Sqp_geom.Point.t * 'a) list * query_stats
(** The [k] nearest points by Euclidean distance (fewer if the index is
    smaller), closest first; ties broken by z order.  Same expanding-box
    scheme as {!nearest}. *)

val efficiency : 'a t -> query_stats -> float
(** [results / (data_pages * leaf_capacity)]: the fraction of retrieved
    page slots holding answers — the experiments' "efficiency" measure. *)

val leaf_points : 'a t -> (Sqp_storage.Pager.page_id * Sqp_geom.Point.t list) list
(** Points grouped by leaf page, in z order — the raw material of
    Figure 6.  Does not disturb the counters. *)

val io_stats : 'a t -> Sqp_storage.Stats.t
