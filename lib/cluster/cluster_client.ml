module P = Sqp_server.Protocol
module SM = Sqp_server.Shard_map
module Client = Sqp_server.Client
module Z = Sqp_zorder
module R = Sqp_relalg

type t = {
  router : Client.t;
  connect_timeout : float;
  mutable smap : SM.t;
  mutable shards : (string * Client.t) list;  (* keyed "host:port" *)
  mutable refetches : int;
  mutable closed : bool;
}

let fetch_map router =
  match Client.shard_map_get router with
  | Ok m -> m
  | Error e -> failwith ("cluster client: no shard map: " ^ Client.error_to_string e)

let connect ?(host = "127.0.0.1") ?connect_timeout ~router_port () =
  let router = Client.connect ~host ?connect_timeout ~port:router_port () in
  let smap = fetch_map router in
  {
    router;
    connect_timeout =
      (match connect_timeout with Some s -> s | None -> 5.0);
    smap;
    shards = [];
    refetches = 0;
    closed = false;
  }

let epoch t = t.smap.SM.epoch
let refetches t = t.refetches

let shard_client t (e : SM.entry) =
  let key = Printf.sprintf "%s:%d" e.SM.host e.SM.port in
  match List.assoc_opt key t.shards with
  | Some c -> c
  | None ->
      let c =
        Client.connect ~host:e.SM.host ~connect_timeout:t.connect_timeout
          ~port:e.SM.port ()
      in
      t.shards <- (key, c) :: t.shards;
      c

let drop_shard t (e : SM.entry) =
  let key = Printf.sprintf "%s:%d" e.SM.host e.SM.port in
  match List.assoc_opt key t.shards with
  | None -> ()
  | Some c ->
      t.shards <- List.remove_assoc key t.shards;
      Client.close c

let refetch t =
  t.refetches <- t.refetches + 1;
  t.smap <- fetch_map t.router

let routing_options = { Z.Decompose.max_level = Some 8; max_elements = Some 64 }

let merge_rows rels =
  match rels with
  | [] -> Error (Client.Transport { attempts = 1; message = "no shard answered" })
  | r0 :: _ ->
      Ok
        (R.Relation.make ~name:(R.Relation.name r0) (R.Relation.schema r0)
           (List.concat_map R.Relation.tuples rels))

let range_search ?deadline_ms t ~space ~lo ~hi =
  if t.closed then invalid_arg "Cluster_client.range_search: closed";
  let payload =
    P.encode_request
      { P.deadline_ms; idem = None; request = P.Range_search { lo; hi } }
  in
  let intervals =
    Z.Zrange.elements_to_intervals space
      (Z.Decompose.decompose_box ~options:routing_options space ~lo ~hi)
  in
  let attempt () =
    let m = t.smap in
    let targets =
      List.filter
        (fun (e : SM.entry) ->
          Z.Zrange.overlaps_interval intervals ~lo:e.SM.zlo ~hi:e.SM.zhi)
        m.SM.entries
    in
    let rec gather acc = function
      | [] -> `Rows (List.rev acc)
      | e :: rest -> (
          match
            try
              Client.forward ?deadline_ms (shard_client t e)
                ~epoch:m.SM.epoch ~payload
            with exn ->
              Error
                (Client.Transport
                   { attempts = 1; message = Printexc.to_string exn })
          with
          | Ok (P.Rows rel) -> gather (rel :: acc) rest
          | Ok (P.Error { code = P.Stale_epoch; _ }) -> `Stale
          | Error (Client.Remote { code = P.Stale_epoch; _ }) -> `Stale
          | Ok (P.Error { code; message }) ->
              `Err (Client.Remote { code; message })
          | Ok _ ->
              `Err
                (Client.Transport
                   { attempts = 1; message = "protocol violation: expected rows" })
          | Error (Client.Transport _ as err) ->
              drop_shard t e;
              `Err err
          | Error err -> `Err err)
    in
    gather [] targets
  in
  let rec go tries =
    match attempt () with
    | `Rows rels -> merge_rows rels
    | `Err e -> Error e
    | `Stale when tries < 3 ->
        refetch t;
        go (tries + 1)
    | `Stale ->
        Error
          (Client.Remote
             {
               code = P.Stale_epoch;
               message = "shard map still moving after refetches";
             })
  in
  go 1

let close t =
  if not t.closed then begin
    t.closed <- true;
    Client.close t.router;
    List.iter (fun (_, c) -> Client.close c) t.shards;
    t.shards <- []
  end
