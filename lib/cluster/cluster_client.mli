(** A map-caching cluster client: fetch the {!Sqp_server.Shard_map}
    once from the router, then send range reads {e directly} to the
    owning shards, skipping the router hop entirely.

    The cached map is a lease without a clock: every direct sub-request
    travels in a [Forward] envelope stamped with the cached epoch, so a
    shard whose map has moved on (a rebalance flipped the epoch)
    refuses with [Stale_epoch] instead of answering from a range it no
    longer owns.  On that signal the client refetches the map from the
    router and retries — the {e stale-epoch rejection and refetch}
    protocol.  Everything that is not a range read (plans, mutations,
    admin) still goes through the router, which owns the split/merge
    logic. *)

type t

val connect :
  ?host:string ->
  ?connect_timeout:float ->
  router_port:int ->
  unit ->
  t
(** Dial the router, fetch and cache its shard map.
    @raise Unix.Unix_error if the router is unreachable.
    @raise Failure if the router has no shard map. *)

val epoch : t -> int
(** Epoch of the cached map. *)

val refetches : t -> int
(** How many times a [Stale_epoch] rejection forced a map refetch —
    observable proof the fencing protocol ran. *)

val range_search :
  ?deadline_ms:int ->
  t ->
  space:Sqp_zorder.Space.t ->
  lo:int array ->
  hi:int array ->
  Sqp_relalg.Relation.t Sqp_server.Client.reply
(** Decompose the box, contact only the shards whose owned z interval
    overlaps it (direct connections, epoch-fenced), concatenate the
    z-ordered per-shard rows in shard order.  Retries through a map
    refetch on [Stale_epoch], then gives up with the typed error. *)

val close : t -> unit
(** Close the router connection and every cached shard connection.
    Idempotent. *)
