module P = Sqp_server.Protocol
module SM = Sqp_server.Shard_map
module Client = Sqp_server.Client
module Net = Sqp_server.Net
module Z = Sqp_zorder
module R = Sqp_relalg
module W = Sqp_relalg.Wire
module Metrics = Sqp_obs.Metrics

type config = {
  host : string;
  port : int;
  max_frame_bytes : int;
  idle_timeout_s : float option;
  frame_timeout_s : float option;
  session_io : (Unix.file_descr -> P.io) option;
  shard_wrap : (Unix.file_descr -> P.io) option;
  connect_timeout : float;
  shard_attempts : int;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    max_frame_bytes = P.default_max_frame_bytes;
    idle_timeout_s = None;
    frame_timeout_s = None;
    session_io = None;
    shard_wrap = None;
    connect_timeout = 5.0;
    shard_attempts = 4;
  }

(* {1 Shard connection pools}

   One small free-list of clients per endpoint: sessions are threads, so
   concurrent fan-outs must not share a connection (the protocol has no
   frame multiplexing).  A client whose transport failed is closed, not
   returned — the next caller re-dials. *)

type pool = { mutable free : Client.t list; pm : Mutex.t }

(* Rebalance in flight: the state machine of [split].  [watermark] is
   the highest z already copied to the target (mutations at or below it
   are dual-written); [chunk] is the element being copied right now
   (mutations inside it wait); [tables] is the set of live tables the
   move covers — copy, dual-writes and cleanup must agree on it;
   [moved] counts, per (table, coordinate), how many entries the target
   now holds that the source also still holds — the cleanup list;
   [shadowed] records the origin idempotency keys whose dual-write has
   already executed, so a replay (client retry, stale re-route) neither
   re-applies it nor double-counts [moved]. *)
type rebal = {
  move_lo : int;
  move_hi : int;
  dst_host : string;
  dst_port : int;
  tables : string list;
  mutable watermark : int;
  mutable chunk : (int * int) option;
  mutable failed : string option;
  moved : (string * int array, int) Hashtbl.t;
  shadowed : (int * int, unit) Hashtbl.t;
}

type t = {
  config : config;
  space : Z.Space.t;
  mutable rmap : SM.t;
  mutable rebal : rebal option;
  mutable splitting : bool;
      (* true from [split]'s claim to its return — outlives [rebal],
         which is cleared at the epoch flip *)
  mutable gate : int ref;
      (* current generation bucket of in-flight routed mutations: every
         gated mutation increments it (rebalance or not); the copy loop
         and the flip swap in a fresh bucket and drain the old one, so
         "wait for every mutation that started before now" terminates
         even under continuous traffic *)
  m : Mutex.t;
  cv : Condition.t;
  pools : (string, pool) Hashtbl.t;
  pools_m : Mutex.t;
  mutable net : Net.t option;
  mutable stopped : bool;
  c_requests : Metrics.counter;
  h_fanout : Metrics.histogram;
  c_skipped : Metrics.counter;
  c_stale_retries : Metrics.counter;
  g_epoch : Metrics.gauge;
  c_reb_chunks : Metrics.counter;
  c_reb_rows : Metrics.counter;
  c_reb_dual : Metrics.counter;
  g_reb_active : Metrics.gauge;
}

let port t = match t.net with Some n -> Net.port n | None -> 0

let current_map t =
  Mutex.lock t.m;
  let m = t.rmap in
  Mutex.unlock t.m;
  m

let map = current_map

let set_map t m =
  Mutex.lock t.m;
  if m.SM.epoch >= t.rmap.SM.epoch then begin
    t.rmap <- m;
    Metrics.set_gauge t.g_epoch m.SM.epoch
  end;
  Mutex.unlock t.m

let indexed entries = List.mapi (fun i e -> (i, e)) entries

let endpoint_key host port = Printf.sprintf "%s:%d" host port

let take_client t ~host ~port =
  let key = endpoint_key host port in
  Mutex.lock t.pools_m;
  let p =
    match Hashtbl.find_opt t.pools key with
    | Some p -> p
    | None ->
        let p = { free = []; pm = Mutex.create () } in
        Hashtbl.add t.pools key p;
        p
  in
  Mutex.unlock t.pools_m;
  Mutex.lock p.pm;
  match p.free with
  | c :: rest ->
      p.free <- rest;
      Mutex.unlock p.pm;
      (p, c)
  | [] ->
      Mutex.unlock p.pm;
      let c =
        Client.connect ~host ~connect_timeout:t.config.connect_timeout
          ~max_attempts:t.config.shard_attempts ?wrap:t.config.shard_wrap ~port
          ()
      in
      (p, c)

let put_client p c =
  Mutex.lock p.pm;
  p.free <- c :: p.free;
  Mutex.unlock p.pm

(* Run [f] on a pooled client for [host:port]; the client goes back to
   the pool unless the call ended in a transport failure. *)
let with_endpoint t ~host ~port f =
  match take_client t ~host ~port with
  | exception e ->
      Error
        (Client.Transport
           {
             attempts = 1;
             message =
               Printf.sprintf "shard %s:%d unreachable: %s" host port
                 (match e with
                 | Unix.Unix_error (err, fn, _) ->
                     Printf.sprintf "%s: %s" fn (Unix.error_message err)
                 | e -> Printexc.to_string e);
           })
  | p, c -> (
      let r = try f c with e -> Error (Client.Transport { attempts = 1; message = Printexc.to_string e }) in
      match r with
      | Error (Client.Transport _) ->
          Client.close c;
          r
      | _ ->
          put_client p c;
          r)

let with_entry t (e : SM.entry) f = with_endpoint t ~host:e.SM.host ~port:e.SM.port f

let shard_label (e : SM.entry) =
  Printf.sprintf "%s:%d z=[%d,%d]" e.SM.host e.SM.port e.SM.zlo e.SM.zhi

let response_of_reply (e : SM.entry) = function
  | Ok resp -> resp
  | Error (Client.Remote { code; message }) -> P.Error { code; message }
  | Error (Client.Transport { attempts; message }) ->
      P.Error
        {
          code = P.Server_error;
          message =
            Printf.sprintf "shard %s unreachable after %d attempt%s: %s"
              (shard_label e) attempts
              (if attempts = 1 then "" else "s")
              message;
        }

(* {1 Scatter}

   One thread per sub-request (they block on I/O, not CPU); results come
   back in target-list order, so z-ordered merges need no sort. *)

let scatter jobs =
  match jobs with
  | [] -> []
  | [ j ] -> [ j () ]
  | _ ->
      let arr = Array.of_list jobs in
      let out = Array.make (Array.length arr) None in
      let threads =
        Array.mapi
          (fun i j -> Thread.create (fun () -> out.(i) <- Some (j ())) ())
          arr
      in
      Array.iter Thread.join threads;
      Array.to_list out
      |> List.map (function Some r -> r | None -> assert false)

let is_stale = function P.Error { code = P.Stale_epoch; _ } -> true | _ -> false

let first_error results =
  List.find_map
    (fun (_, _, r) -> match r with P.Error _ as e -> Some e | _ -> None)
    results

(* Forward the client's original payload, verbatim, to each target —
   version byte, deadline and idempotency key travel untouched, so the
   shard-side dedup windows see the origin client's key and the
   exactly-once contract holds end to end. *)
let forward_to t m ?deadline_ms payload targets =
  scatter
    (List.map
       (fun (i, e) () ->
         ( i,
           e,
           response_of_reply e
             (with_entry t e (fun c ->
                  Client.forward ?deadline_ms c ~epoch:m.SM.epoch ~payload)) ))
       targets)

(* {1 Map repair}

   On [Stale_epoch] somebody's epoch moved without us (or a shard missed
   a push): adopt the highest epoch visible anywhere, then push it back
   out.  Bounded by the caller's retry budget. *)

let push_map t m =
  List.map
    (fun (i, e) ->
      match with_entry t e (fun c -> Client.shard_map_set c ~map:m ~self:i) with
      | Ok _ -> Ok ()
      | Error err -> Error (shard_label e ^ ": " ^ Client.error_to_string err))
    (indexed m.SM.entries)

let resync t =
  Metrics.incr t.c_stale_retries;
  let m0 = current_map t in
  let best =
    List.fold_left
      (fun best (_, e) ->
        match with_entry t e (fun c -> Client.shard_map_get c) with
        | Ok m when m.SM.epoch > best.SM.epoch -> m
        | _ -> best)
      m0 (indexed m0.SM.entries)
  in
  set_map t best;
  ignore (push_map t best)

let max_route_attempts = 3

(* [f m] routes one request under map [m]; [`Stale] means some shard
   fenced us off and the maps need repair before re-routing. *)
let rec with_stale_retry t attempt f =
  let m = current_map t in
  match f m with
  | `Done r -> r
  | `Stale ->
      if attempt >= max_route_attempts then
        P.Error
          {
            code = P.Stale_epoch;
            message = "cluster: shard map still moving after retries; try again";
          }
      else begin
        resync t;
        with_stale_retry t (attempt + 1) f
      end

(* {1 Fan-out pruning}

   Decompose the query box once — coarsely; over-approximation only adds
   a shard that will answer with zero rows — and keep the shards whose
   owned interval overlaps the cover. *)

let routing_options =
  { Z.Decompose.max_level = Some 8; max_elements = Some 64 }

let read_targets t m ~lo ~hi =
  let cover = Z.Decompose.decompose_box ~options:routing_options t.space ~lo ~hi in
  let intervals = Z.Zrange.elements_to_intervals t.space cover in
  let targets =
    List.filter
      (fun (_, e) ->
        Z.Zrange.overlaps_interval intervals ~lo:e.SM.zlo ~hi:e.SM.zhi)
      (indexed m.SM.entries)
  in
  let total = List.length m.SM.entries in
  let n = List.length targets in
  Metrics.observe t.h_fanout n;
  Metrics.add t.c_skipped (total - n);
  if targets = [] then indexed m.SM.entries else targets

(* {1 Merging} *)

let rows_of results =
  List.map
    (fun (_, _, r) -> match r with P.Rows rel -> rel | _ -> assert false)
    results

let schema_check rels =
  match rels with
  | [] | [ _ ] -> true
  | r0 :: rest ->
      List.for_all
        (fun r -> R.Schema.equal (R.Relation.schema r0) (R.Relation.schema r))
        rest

(* Shards own ascending disjoint z ranges and answer range reads in z
   order, so concatenation in shard order IS the global z order. *)
let merge_concat results =
  match first_error results with
  | Some e -> e
  | None -> (
      match rows_of results with
      | [] -> P.Error { code = P.Server_error; message = "no shard answered" }
      | r0 :: _ as rels ->
          if not (schema_check rels) then
            P.Error
              { code = P.Server_error; message = "shards answered with divergent schemas" }
          else
            P.Rows
              (R.Relation.make ~name:(R.Relation.name r0)
                 (R.Relation.schema r0)
                 (List.concat_map R.Relation.tuples rels)))

let tuple_cmp a b =
  let n = Array.length a and m = Array.length b in
  if n <> m then compare n m
  else
    let rec go i =
      if i = n then 0
      else
        let c = R.Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

(* Distinct merge for broadcast plans: cross-shard duplicates (an
   element pair replicated onto several shards) collapse; rows come back
   in one canonical sorted order, the same at every shard count. *)
let merge_distinct rels =
  match rels with
  | [] -> None
  | r0 :: _ ->
      if not (schema_check rels) then None
      else
        Some
          (R.Relation.make ~name:(R.Relation.name r0) (R.Relation.schema r0)
             (List.sort_uniq tuple_cmp (List.concat_map R.Relation.tuples rels)))

(* {1 Plan admissibility}

   A routed plan must be exact under "evaluate on every shard, distinct
   the union".  Row-local operators and [Spatial_join] are: boundary
   replication guarantees both sides of any overlapping element pair
   meet on at least one shard.  [Product]/[Natural_join] are not (their
   matching rows may live on different shards), and a root [Sort] would
   promise an order the distinct merge cannot keep.  The root must be
   the duplicate-eliminating [Project] so the merge's distinct is a
   no-op semantically. *)

let rec fragment_safe = function
  | W.Scan _ -> true
  | W.Select_equals (_, _, p)
  | W.Select_between (_, _, _, p)
  | W.Project (_, p)
  | W.Project_all (_, p)
  | W.Rename (_, p)
  | W.Sort (_, p) ->
      fragment_safe p
  | W.Spatial_join { left; right; _ } -> fragment_safe left && fragment_safe right
  | W.Union (a, b) -> fragment_safe a && fragment_safe b
  | W.Natural_join _ | W.Product _ -> false

let routable_plan = function
  | W.Project (_, inner) -> fragment_safe inner
  | _ -> false

let plan_rejection =
  P.Error
    {
      code = P.Bad_request;
      message =
        "cluster: a routed plan needs a duplicate-eliminating Project root \
         and may not contain Product or Natural_join (cross-shard pairs \
         would be lost) or a root Sort (shard order cannot be stitched)";
    }

(* {1 Rebalance gate}

   Every routed mutation passes here.  Points inside the chunk being
   copied wait (briefly — one chunk is a few thousand cells); points in
   the already-copied region are dual-written to the target so the copy
   cannot go stale.

   The pass couples three facts read under one lock hold: the
   generation bucket joined (so the copy loop and the flip can drain
   every mutation that entered before them, including ones that predate
   the rebalance), the rebalance snapshot (whether to dual-write, and
   up to which watermark), and the routing map.  Snapshotting the map
   here — not before the gate — is what makes the epoch flip safe: the
   flip installs the new map and clears [rebal] in one critical
   section, so a mutation either sees the old map {e and} dual-writes,
   or sees the new map and routes straight to the new owner — never a
   dual-write plus a new-map forward to the same shard. *)

type pass = {
  bucket : int ref;  (* the generation this mutation joined *)
  dual : (rebal * int) option;  (* rebalance and its watermark at gate time *)
  pmap : SM.t;  (* routing map, consistent with [dual] *)
}

let gate_begin t zs =
  Mutex.lock t.m;
  let rec wait_clear z =
    match t.rebal with
    | Some { chunk = Some (clo, chi); _ } when z >= clo && z <= chi ->
        Condition.wait t.cv t.m;
        wait_clear z
    | _ -> ()
  in
  List.iter wait_clear zs;
  let bucket = t.gate in
  incr bucket;
  let dual =
    match t.rebal with Some rb -> Some (rb, rb.watermark) | None -> None
  in
  let pmap = t.rmap in
  Mutex.unlock t.m;
  { bucket; dual; pmap }

let gate_end t pass ~record =
  Mutex.lock t.m;
  decr pass.bucket;
  (match pass.dual with
  | Some (rb, _) ->
      List.iter
        (fun (table, p, delta) ->
          let key = (table, p) in
          let n = try Hashtbl.find rb.moved key with Not_found -> 0 in
          Hashtbl.replace rb.moved key (n + delta))
        record
  | None -> ());
  Condition.broadcast t.cv;
  Mutex.unlock t.m

(* Swap in a fresh generation bucket and wait until every mutation in
   the old one has called [gate_end].  Caller holds [t.m]; new
   mutations join the fresh bucket, so this terminates under load. *)
let drain_gate t =
  let old = t.gate in
  t.gate <- ref 0;
  while !old > 0 do
    Condition.wait t.cv t.m
  done

let rebal_fail t msg =
  Mutex.lock t.m;
  (match t.rebal with
  | Some rb when rb.failed = None -> rb.failed <- Some msg
  | _ -> ());
  Mutex.unlock t.m

(* A dual-write executes once per origin idempotency key: replays
   (client retries, stale re-routes through [with_stale_retry]) find
   the key in [shadowed] and skip both the write and its [moved]
   record.  Unkeyed (v1) mutations cannot be tracked and execute each
   time — the same at-least-once contract an unkeyed client already
   has against a single server. *)
let shadow_fresh t rb = function
  | None -> true
  | Some { P.client_id; request_seq } ->
      Mutex.lock t.m;
      let k = (client_id, request_seq) in
      let fresh = not (Hashtbl.mem rb.shadowed k) in
      if fresh then Hashtbl.add rb.shadowed k ();
      Mutex.unlock t.m;
      fresh

(* {1 Mutation routing} *)

let owner_idx m z =
  let rec go i = function
    | [] -> None
    | (e : SM.entry) :: rest ->
        if z >= e.zlo && z <= e.zhi then Some (i, e) else go (i + 1) rest
  in
  go 0 m.SM.entries

(* [Shard_map.make] guarantees contiguous coverage from z = 0, so an
   unowned z can only mean a map built for a smaller space than the
   router's — a deployment error worth naming, not an assert. *)
exception Unowned_z of int

let group_by_owner m items z_of =
  let n = List.length m.SM.entries in
  let buckets = Array.make n [] in
  List.iter
    (fun it ->
      match owner_idx m (z_of it) with
      | Some (i, _) -> buckets.(i) <- it :: buckets.(i)
      | None -> raise (Unowned_z (z_of it)))
    items;
  List.filteri (fun i _ -> buckets.(i) <> [])
  @@ List.mapi
       (fun i e -> (i, e, List.rev buckets.(i)))
       m.SM.entries

let unowned_error m z =
  P.Error
    {
      code = P.Bad_request;
      message =
        Printf.sprintf
          "cluster: no shard owns z value %d (map epoch %d covers z up to %d \
           — was the map built for a smaller space?)"
          z m.SM.epoch
          (match List.rev m.SM.entries with
          | e :: _ -> e.SM.zhi
          | [] -> -1);
    }

let merge_acks results =
  match first_error results with
  | Some e -> e
  | None ->
      let applied, seq =
        List.fold_left
          (fun (a, s) (_, _, r) ->
            match r with
            | P.Ack { applied; seq } -> (a + applied, max s seq)
            | _ -> (a, s))
          (0, 0) results
      in
      P.Ack { applied; seq }

(* Forward per-shard sub-batches under the origin client's own deadline
   and idempotency key — each shard's dedup window then answers a
   replayed sub-batch with its original Ack, whoever retried (this
   router or the origin client). *)
let forward_subbatches t m (frame : P.request_frame) groups make_req =
  scatter
    (List.map
       (fun (i, e, sub) () ->
         let payload =
           P.encode_request
             {
               P.deadline_ms = frame.P.deadline_ms;
               idem = frame.P.idem;
               request = make_req sub;
             }
         in
         ( i,
           e,
           response_of_reply e
             (with_entry t e (fun c ->
                  Client.forward ?deadline_ms:frame.P.deadline_ms c
                    ~epoch:m.SM.epoch ~payload)) ))
       groups)

let stale_or_acks results =
  if List.exists (fun (_, _, r) -> is_stale r) results then `Stale
  else `Done (merge_acks results)

(* Shared shell of [route_insert]/[route_delete]: gate, dual-write the
   already-copied region (idempotently, under the origin's key), then
   forward per-owner sub-batches under the map snapshotted {e by} the
   gate.  A mutation to a live table the rebalance is not copying
   cannot be made safe (its moved-range rows would be orphaned at the
   flip), so it poisons the rebalance instead — the split aborts with
   the map unflipped and nothing is lost. *)
let route_mutation t (frame : P.request_frame) ~table ~points ~z_of ~point_of
    ~(shadow_write : rebal -> 'a list -> (unit, Client.error) result)
    ~(shadow_delta : int) ~(make_req : 'a list -> P.request) =
  let zs = List.map z_of points in
  let pass = gate_begin t zs in
  let m = pass.pmap in
  let record = ref [] in
  (match pass.dual with
  | Some (rb, wm) ->
      if not (List.mem table rb.tables) then begin
        (* the whole moving range is at stake, not just the copied
           prefix: a row landing above the watermark would simply never
           be copied, then hidden at the flip — the same orphaning,
           deferred *)
        if
          List.exists
            (fun it ->
              let z = z_of it in
              z >= rb.move_lo && z <= rb.move_hi)
            points
        then
          rebal_fail t
            (Printf.sprintf
               "mutation to live table %S, which this rebalance is not \
                copying — aborting the move to avoid orphaning its rows"
               table)
      end
      else begin
        let shadow =
          List.filter
            (fun it -> let z = z_of it in z >= rb.move_lo && z <= wm)
            points
        in
        if shadow <> [] then
          if shadow_fresh t rb frame.P.idem then begin
            Metrics.add t.c_reb_dual (List.length shadow);
            match shadow_write rb shadow with
            | Ok () ->
                record :=
                  List.map
                    (fun it -> (table, Array.copy (point_of it), shadow_delta))
                    shadow
            | Error err ->
                rebal_fail t
                  ("dual write failed: " ^ Client.error_to_string err)
          end
      end
  | None -> ());
  match group_by_owner m points z_of with
  | exception Unowned_z z ->
      gate_end t pass ~record:[];
      `Done (unowned_error m z)
  | groups ->
      let results = forward_subbatches t m frame groups make_req in
      gate_end t pass ~record:!record;
      stale_or_acks results

let route_insert t frame ~table ~(points : (int array * int) list) =
  let z_of (p, _) = SM.z_of_point t.space p in
  route_mutation t frame ~table ~points ~z_of ~point_of:fst ~shadow_delta:1
    ~shadow_write:(fun rb shadow ->
      match
        with_endpoint t ~host:rb.dst_host ~port:rb.dst_port (fun c ->
            Client.insert ?idem:frame.P.idem c ~table shadow)
      with
      | Ok _ -> Ok ()
      | Error err -> Error err)
    ~make_req:(fun sub -> P.Insert { table; points = sub })

let route_delete t frame ~table ~(points : int array list) =
  let z_of p = SM.z_of_point t.space p in
  route_mutation t frame ~table ~points ~z_of ~point_of:Fun.id
    ~shadow_delta:(-1)
    ~shadow_write:(fun rb shadow ->
      match
        with_endpoint t ~host:rb.dst_host ~port:rb.dst_port (fun c ->
            Client.delete ?idem:frame.P.idem c ~table shadow)
      with
      | Ok _ -> Ok ()
      | Error err -> Error err)
    ~make_req:(fun sub -> P.Delete { table; points = sub })

(* {1 Broadcast plans and admin} *)

let broadcast t m ?deadline_ms payload =
  forward_to t m ?deadline_ms payload (indexed m.SM.entries)

let stitch_sections m results render =
  String.concat "\n"
    (Printf.sprintf "cluster: epoch %d, %d shard%s" m.SM.epoch
       (List.length m.SM.entries)
       (if List.length m.SM.entries = 1 then "" else "s")
    :: List.map
         (fun (i, e, r) ->
           Printf.sprintf "-- shard %d (%s) --\n%s" i (shard_label e) (render r))
         results)

let route_query results =
  if List.exists (fun (_, _, r) -> is_stale r) results then `Stale
  else
    `Done
      (match first_error results with
      | Some e -> e
      | None -> (
          match merge_distinct (rows_of results) with
          | Some rel -> P.Rows rel
          | None ->
              P.Error
                {
                  code = P.Server_error;
                  message = "shards answered with divergent schemas";
                }))

let route_analyze m results =
  if List.exists (fun (_, _, r) -> is_stale r) results then `Stale
  else
    `Done
      (match first_error results with
      | Some e -> e
      | None ->
          let rels =
            List.map
              (fun (_, _, r) ->
                match r with P.Analyzed { rows; _ } -> rows | _ -> assert false)
              results
          in
          (match merge_distinct rels with
          | None ->
              P.Error
                {
                  code = P.Server_error;
                  message = "shards answered with divergent schemas";
                }
          | Some rows ->
              let rendered =
                stitch_sections m results (fun r ->
                    match r with
                    | P.Analyzed { rendered; rows } ->
                        Printf.sprintf "%s(%d rows from this shard)\n" rendered
                          (R.Relation.cardinality rows)
                    | _ -> "")
              in
              P.Analyzed { rendered; rows }))

let route_explain m results =
  if List.exists (fun (_, _, r) -> is_stale r) results then `Stale
  else
    `Done
      (match first_error results with
      | Some e -> e
      | None ->
          P.Text
            (stitch_sections m results (fun r ->
                 match r with P.Text s -> s | _ -> "")))

let route_texts m results =
  if List.exists (fun (_, _, r) -> is_stale r) results then `Stale
  else
    `Done
      (match first_error results with
      | Some e -> e
      | None ->
          P.Text
            (stitch_sections m results (fun r ->
                 match r with P.Text s -> s | _ -> "")))

let route_health t m =
  let results =
    scatter
      (List.map
         (fun (i, e) () ->
           (i, e, with_entry t e (fun c -> Client.health c)))
         (indexed m.SM.entries))
  in
  let bad =
    List.filter_map
      (fun (i, e, r) ->
        match r with
        | Ok h when h.P.healthy -> None
        | Ok h -> Some (Printf.sprintf "shard %d (%s): %s" i (shard_label e) h.P.mode)
        | Error err ->
            Some
              (Printf.sprintf "shard %d (%s): %s" i (shard_label e)
                 (Client.error_to_string err)))
      results
  in
  let sum f =
    List.fold_left
      (fun acc (_, _, r) -> match r with Ok h -> acc + f h | Error _ -> acc)
      0 results
  in
  let modes =
    List.filter_map
      (fun (_, _, r) ->
        match r with Ok h -> Some h.P.mode | Error _ -> Some "unreachable")
      results
  in
  let mode =
    if List.for_all (fun m -> m = "serving") modes then "serving"
    else String.concat "; " bad
  in
  let detail =
    Printf.sprintf "cluster: epoch %d, %d shards%s" m.SM.epoch
      (List.length m.SM.entries)
      (if bad = [] then "" else "; " ^ String.concat "; " bad)
  in
  P.Health_report
    {
      P.healthy = bad = [];
      detail;
      in_flight = sum (fun h -> h.P.in_flight);
      queued = sum (fun h -> h.P.queued);
      served = sum (fun h -> h.P.served);
      mode;
    }

(* {1 The handle: one payload in, one payload out} *)

let z_intervals_of_box t ~lo ~hi =
  match Z.Decompose.decompose_box ~options:routing_options t.space ~lo ~hi with
  | cover -> Ok (Z.Zrange.elements_to_intervals t.space cover)
  | exception Invalid_argument msg -> Error msg

let route t (frame : P.request_frame) payload =
  let deadline_ms = frame.P.deadline_ms in
  match frame.P.request with
  | P.Range_search { lo; hi } | P.Live_range { lo; hi; _ } -> (
      match z_intervals_of_box t ~lo ~hi with
      | Error msg -> P.Error { code = P.Bad_request; message = msg }
      | Ok _ ->
          with_stale_retry t 1 (fun m ->
              let targets = read_targets t m ~lo ~hi in
              let results = forward_to t m ?deadline_ms payload targets in
              if List.exists (fun (_, _, r) -> is_stale r) results then `Stale
              else `Done (merge_concat results)))
  | P.Query plan ->
      if not (routable_plan plan) then plan_rejection
      else
        with_stale_retry t 1 (fun m ->
            route_query (broadcast t m ?deadline_ms payload))
  | P.Analyze plan ->
      if not (routable_plan plan) then plan_rejection
      else
        with_stale_retry t 1 (fun m ->
            route_analyze m (broadcast t m ?deadline_ms payload))
  | P.Explain plan ->
      if not (routable_plan plan) then plan_rejection
      else
        with_stale_retry t 1 (fun m ->
            route_explain m (broadcast t m ?deadline_ms payload))
  | P.Insert { table; points } -> (
      match List.map (fun (p, _) -> SM.z_of_point t.space p) points with
      | exception Invalid_argument msg ->
          P.Error { code = P.Bad_request; message = msg }
      | _ ->
          (* mutations snapshot their map inside the gate, not here —
             the stale-retry loop only drives resync + re-route *)
          with_stale_retry t 1 (fun _ -> route_insert t frame ~table ~points))
  | P.Delete { table; points } -> (
      match List.map (SM.z_of_point t.space) points with
      | exception Invalid_argument msg ->
          P.Error { code = P.Bad_request; message = msg }
      | _ ->
          with_stale_retry t 1 (fun _ -> route_delete t frame ~table ~points))
  | P.Create_index _ ->
      with_stale_retry t 1 (fun m ->
          stale_or_acks (broadcast t m ?deadline_ms payload))
  | P.Refresh_stats | P.Recover ->
      with_stale_retry t 1 (fun m ->
          route_texts m (broadcast t m ?deadline_ms payload))
  | P.Health -> route_health t (current_map t)
  | P.Shard_map_get -> P.Shard_map (current_map t)
  | P.Shard_map_set { map = m; self = _ } -> (
      Mutex.lock t.m;
      let current = t.rmap in
      let busy = t.splitting in
      Mutex.unlock t.m;
      if busy then
        P.Error
          { code = P.Server_error; message = "rebalance in progress; retry later" }
      else if m.SM.epoch < current.SM.epoch then
        P.Error
          {
            code = P.Stale_epoch;
            message =
              Printf.sprintf "router holds epoch %d, refusing epoch %d"
                current.SM.epoch m.SM.epoch;
          }
      else begin
        set_map t m;
        ignore (push_map t m);
        P.Ack { applied = List.length m.SM.entries; seq = m.SM.epoch }
      end)
  | P.Forward _ ->
      P.Error
        {
          code = P.Bad_request;
          message = "the router does not accept forwarded envelopes";
        }

let handle t payload =
  Metrics.incr t.c_requests;
  let version = if P.payload_version payload = 1 then 1 else 2 in
  let encode resp = P.encode_response ~version resp in
  match P.decode_request payload with
  | Error (code, message) -> encode (P.Error { code; message })
  | Ok frame -> (
      match route t frame payload with
      | resp -> encode resp
      | exception e ->
          encode
            (P.Error
               {
                 code = P.Server_error;
                 message = "router: " ^ Printexc.to_string e;
               }))

(* {1 Rebalancing: split one shard's range} *)

let chunk_cells = 4096.

(* The moving range's canonical element cover, each element split until
   it is at most [chunk_cells] pixels: every chunk is simultaneously an
   aligned z interval and an axis-aligned box, so [Live_range] reads it
   exactly and the watermark advances in z order. *)
let chunks_of t ~lo ~hi =
  let rec refine e =
    if Z.Element.cells t.space e <= chunk_cells then [ e ]
    else
      let l, h = Z.Element.children e in
      refine l @ refine h
  in
  List.concat_map refine (Z.Zrange.cover t.space ~lo ~hi)

let copy_chunk t ~src ~dst ~table element =
  let lo, hi = Z.Element.box t.space element in
  match
    with_entry t src (fun c -> Client.live_range c ~table ~lo ~hi)
  with
  | Error err ->
      Error
        (Printf.sprintf "chunk read (%s): %s" table (Client.error_to_string err))
  | Ok rel -> (
      let schema = R.Relation.schema rel in
      let k = Z.Space.dims t.space in
      let entries =
        List.map
          (fun tu ->
            let id = R.Value.to_int (R.Relation.get tu schema "id") in
            let p =
              Array.init k (fun i ->
                  R.Value.to_int
                    (R.Relation.get tu schema (Printf.sprintf "x%d" i)))
            in
            (p, id))
          (R.Relation.tuples rel)
      in
      if entries = [] then Ok []
      else
        match
          with_endpoint t ~host:dst.SM.host ~port:dst.SM.port (fun c ->
              Client.insert c ~table entries)
        with
        | Ok _ -> Ok (List.map fst entries)
        | Error err ->
            Error
              (Printf.sprintf "chunk write (%s): %s" table
                 (Client.error_to_string err)))

let split ?(tables = [ "L" ]) t ~from_ ~at ~host ~port =
  (* 1. claim: one rebalance at a time, validated against the live map *)
  Mutex.lock t.m;
  let claim =
    if t.splitting then Error "a rebalance is already in progress"
    else if tables = [] then Error "no tables to move"
    else
      match List.nth_opt t.rmap.SM.entries from_ with
      | None -> Error (Printf.sprintf "no shard entry %d" from_)
      | Some e ->
          if at <= e.SM.zlo || at > e.SM.zhi then
            Error
              (Printf.sprintf "split point %d outside (%d, %d]" at e.SM.zlo
                 e.SM.zhi)
          else begin
            let rb =
              {
                move_lo = at;
                move_hi = e.SM.zhi;
                dst_host = host;
                dst_port = port;
                tables;
                watermark = at - 1;
                chunk = None;
                failed = None;
                moved = Hashtbl.create 64;
                shadowed = Hashtbl.create 64;
              }
            in
            t.splitting <- true;
            t.rebal <- Some rb;
            Metrics.set_gauge t.g_reb_active 1;
            Ok (e, rb)
          end
  in
  Mutex.unlock t.m;
  match claim with
  | Error _ as e -> e
  | Ok (src, rb) -> (
      let finish r =
        Mutex.lock t.m;
        t.rebal <- None;
        t.splitting <- false;
        Metrics.set_gauge t.g_reb_active 0;
        Condition.broadcast t.cv;
        Mutex.unlock t.m;
        r
      in
      let dst_entry =
        { SM.zlo = at; zhi = src.SM.zhi; host; port }
      in
      (* 2. target must be alive before we move a single row *)
      match with_endpoint t ~host ~port (fun c -> Client.health c) with
      | Error err ->
          finish (Error ("target unreachable: " ^ Client.error_to_string err))
      | Ok _ -> (
          (* 3. chunked copy with catch-up: claim chunk -> drain every
             mutation already past the gate (they may still be landing
             rows in this chunk at the source — including ones that
             entered before this rebalance began) -> snapshot-read each
             table from source -> append to target -> advance the
             watermark (dual-writes take over for this chunk) *)
          let rec copy = function
            | [] -> Ok ()
            | element :: rest -> (
                let clo, chi = Z.Zrange.of_element t.space element in
                Mutex.lock t.m;
                rb.chunk <- Some (clo, chi);
                drain_gate t;
                Mutex.unlock t.m;
                let copied =
                  List.fold_left
                    (fun acc table ->
                      match acc with
                      | Error _ as e -> e
                      | Ok done_ -> (
                          match copy_chunk t ~src ~dst:dst_entry ~table element with
                          | Ok pts -> Ok ((table, pts) :: done_)
                          | Error msg -> Error msg))
                    (Ok []) rb.tables
                in
                Mutex.lock t.m;
                (match copied with
                | Ok per_table ->
                    List.iter
                      (fun (table, pts) ->
                        List.iter
                          (fun p ->
                            let key = (table, p) in
                            let n =
                              try Hashtbl.find rb.moved key with Not_found -> 0
                            in
                            Hashtbl.replace rb.moved key (n + 1))
                          pts)
                      per_table
                | Error _ -> ());
                (* the watermark only advances once every table's slice
                   of the chunk is on the target — dual-writes for any
                   table are then safe for this range *)
                (match copied with
                | Ok _ -> rb.watermark <- chi
                | Error _ -> ());
                rb.chunk <- None;
                Condition.broadcast t.cv;
                Mutex.unlock t.m;
                match copied with
                | Ok per_table ->
                    Metrics.incr t.c_reb_chunks;
                    Metrics.add t.c_reb_rows
                      (List.fold_left
                         (fun n (_, pts) -> n + List.length pts)
                         0 per_table);
                    copy rest
                | Error msg -> Error msg)
          in
          match copy (chunks_of t ~lo:at ~hi:src.SM.zhi) with
          | Error msg -> finish (Error msg)
          | Ok () -> (
              match rb.failed with
              | Some msg -> finish (Error msg)
              | None -> (
                  (* 4. atomic flip: install epoch+1 and retire the
                     dual-write gate in ONE critical section — a
                     mutation gated after this point routes under the
                     new map straight to the new owner and is never
                     also shadow-written to it.  Then drain mutations
                     already past the gate: their dual-writes and
                     old-epoch forwards (which the not-yet-fenced
                     source still accepts) finish and land their
                     [moved] records before the cleanup snapshot.
                     Only after the drain is the map pushed; requests
                     racing at the old epoch from here on are fenced
                     off by the shards and re-routed by the
                     stale-retry loop. *)
                  Mutex.lock t.m;
                  let old = t.rmap in
                  let entries =
                    List.concat
                      (List.mapi
                         (fun i (e : SM.entry) ->
                           if i = from_ then
                             [ { e with SM.zhi = at - 1 }; dst_entry ]
                           else [ e ])
                         old.SM.entries)
                  in
                  let flipped = SM.make ~epoch:(old.SM.epoch + 1) entries in
                  t.rmap <- flipped;
                  Metrics.set_gauge t.g_epoch flipped.SM.epoch;
                  t.rebal <- None;
                  Metrics.set_gauge t.g_reb_active 0;
                  Condition.broadcast t.cv;
                  drain_gate t;
                  Mutex.unlock t.m;
                  let push_errors =
                    List.filter_map
                      (function Error m -> Some m | Ok () -> None)
                      (push_map t flipped)
                  in
                  (* 5. cleanup: the source still physically holds every
                     moved row (its ownership filter already hides them
                     from reads); delete them so the space comes back.
                     No gated mutation can touch [moved] any more — the
                     gate is retired and drained. *)
                  let moved_by_table = Hashtbl.create 4 in
                  Hashtbl.iter
                    (fun (table, p) n ->
                      if n > 0 then
                        let cur =
                          try Hashtbl.find moved_by_table table
                          with Not_found -> []
                        in
                        Hashtbl.replace moved_by_table table
                          (List.init n (fun _ -> p) @ cur))
                    rb.moved;
                  let rec cleanup table = function
                    | [] -> ()
                    | pts ->
                        let batch, rest =
                          if List.length pts > 512 then
                            (List.filteri (fun i _ -> i < 512) pts,
                             List.filteri (fun i _ -> i >= 512) pts)
                          else (pts, [])
                        in
                        ignore
                          (with_entry t src (fun c ->
                               Client.delete c ~table batch));
                        cleanup table rest
                  in
                  Hashtbl.iter (fun table pts -> cleanup table pts)
                    moved_by_table;
                  if push_errors = [] then finish (Ok ())
                  else
                    finish
                      (Error
                         ("map flipped but some pushes failed (will self-heal \
                           on stale retries): "
                        ^ String.concat "; " push_errors))))))

(* {1 Lifecycle} *)

let start ?(config = default_config) ?metrics ~space ~map () =
  if not (Z.Zrange.usable space) then
    invalid_arg "Router.start: space exceeds 61 z bits";
  let reg = match metrics with Some m -> m | None -> Metrics.global () in
  let t =
    {
      config;
      space;
      rmap = map;
      rebal = None;
      splitting = false;
      gate = ref 0;
      m = Mutex.create ();
      cv = Condition.create ();
      pools = Hashtbl.create 8;
      pools_m = Mutex.create ();
      net = None;
      stopped = false;
      c_requests = Metrics.counter reg "cluster.requests";
      h_fanout = Metrics.histogram reg "cluster.fanout";
      c_skipped = Metrics.counter reg "cluster.shards_skipped";
      c_stale_retries = Metrics.counter reg "cluster.stale_retries";
      g_epoch = Metrics.gauge reg "cluster.epoch";
      c_reb_chunks = Metrics.counter reg "cluster.rebalance.chunks";
      c_reb_rows = Metrics.counter reg "cluster.rebalance.rows_moved";
      c_reb_dual = Metrics.counter reg "cluster.rebalance.dual_writes";
      g_reb_active = Metrics.gauge reg "cluster.rebalance.active";
    }
  in
  Metrics.set_gauge t.g_epoch map.SM.epoch;
  (* Every shard must accept the map before we serve a single request:
     a shard that cannot be fenced cannot be routed to. *)
  (match
     List.filter_map
       (function Error m -> Some m | Ok () -> None)
       (push_map t map)
   with
  | [] -> ()
  | errs -> failwith ("Router.start: " ^ String.concat "; " errs));
  let net_config =
    {
      Net.host = config.host;
      port = config.port;
      max_frame_bytes = config.max_frame_bytes;
      idle_timeout_s = config.idle_timeout_s;
      frame_timeout_s = config.frame_timeout_s;
      session_io = config.session_io;
    }
  in
  let net =
    Net.start ~config:net_config ~metrics:reg ~metrics_prefix:"cluster"
      ~handle:(fun payload -> handle t payload)
      ()
  in
  t.net <- Some net;
  t

let stop t =
  Mutex.lock t.m;
  let already = t.stopped in
  t.stopped <- true;
  Mutex.unlock t.m;
  if not already then begin
    (match t.net with Some n -> Net.stop n | None -> ());
    Mutex.lock t.pools_m;
    let pools = Hashtbl.fold (fun _ p acc -> p :: acc) t.pools [] in
    Hashtbl.reset t.pools;
    Mutex.unlock t.pools_m;
    List.iter
      (fun p ->
        Mutex.lock p.pm;
        let cs = p.free in
        p.free <- [];
        Mutex.unlock p.pm;
        List.iter Client.close cs)
      pools
  end
