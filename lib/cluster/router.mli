(** The cluster router: one coordinator process fronting N [sqp serve]
    shard nodes, each owning a contiguous z-range of the space.

    The router speaks the {e same} wire protocol as a single server —
    clients cannot tell the difference — and turns each request into
    sub-requests against the shards named by its versioned
    {!Sqp_server.Shard_map}:

    - {b Range reads} ([Range_search], [Live_range]): the query box is
      decomposed {e once} into a z-interval cover, and only the shards
      whose owned interval overlaps it are contacted
      ({!Sqp_zorder.Zrange.overlaps_interval}).  Shards own contiguous
      disjoint ranges in ascending order, and each returns its rows in z
      order, so concatenating the answers in shard order preserves the
      global z order with no merge work.
    - {b Plans} ([Query], [Analyze], [Explain]): broadcast to every
      shard, because a join's element rows live wherever their z
      intervals reach.  Exactness across shard cuts comes from
      {e boundary-element replication} (a shard's catalog keeps every
      element row whose z interval overlaps its range — see
      {!Sqp_server.Catalog.of_seeded}) plus a {e distinct} merge at the
      router: every overlapping pair is found by at least one shard, and
      cross-shard duplicates collapse.  This is sound only for plans
      whose root is the duplicate-eliminating [Project] and which
      contain no [Product]/[Natural_join] (those would need cross-shard
      pairs no single shard can see) and no root [Sort] (shard order
      cannot be stitched); anything else draws [Bad_request].
      [Analyze] answers stitch the per-shard rendered trees into one
      report — the per-shard breakdown of EXPLAIN ANALYZE.
    - {b Mutations} ([Insert], [Delete]): split by each point's z value
      and forwarded to the owning shard {e with the origin client's
      idempotency key} — the shard-side dedup windows then make the
      mutation exactly-once end to end, across router retries and
      client retries alike.  The combined [Ack] sums the per-shard
      [applied] counts and takes the highest [seq].
    - {b Broadcast admin} ([Create_index], [Refresh_stats], [Recover],
      [Health]): sent to every shard; answers are aggregated.

    {b Epoch fencing.}  Every forwarded sub-request travels in a
    [Forward] envelope stamped with the router's current map epoch; a
    shard holding a different epoch refuses with [Stale_epoch] and the
    router refetches/repushes maps and re-routes (bounded retries).
    This is what makes {!split} safe: requests racing an epoch flip
    cannot be answered by a shard that no longer owns the range.

    {b Rebalancing} ({!split}) moves the upper part of one shard's
    range to a fresh shard with the same chunked-copy + catch-up +
    atomic-flip shape as {!Sqp_btree.Live.rebuild_online}: the moving
    range's canonical element cover is copied chunk by chunk (each
    aligned element is both a z interval and a box, so [Live_range]
    reads it exactly), each chunk covering {e every} table the split
    names; before a chunk is read, all in-flight routed mutations are
    drained (a generation-counted gate), so no write can race the
    snapshot.  Mutations touching the in-flight chunk block briefly;
    mutations in the already-copied region are dual-written to the
    target {e idempotently} — the shadow write carries the origin
    client's idempotency key, so client retries and stale re-routes
    collapse in the target's dedup window.  The flip installs the new
    map (epoch + 1) and retires the dual-write gate in one critical
    section (a mutation routed under the new map is never also
    shadow-written), drains the stragglers, pushes the map to every
    shard, and deletes the moved rows from the source.  Reads routed
    under the old epoch are fenced off by the shards themselves. *)

type config = {
  host : string;  (** bind address *)
  port : int;  (** 0 picks an ephemeral port *)
  max_frame_bytes : int;
  idle_timeout_s : float option;
  frame_timeout_s : float option;
  session_io : (Unix.file_descr -> Sqp_server.Protocol.io) option;
      (** wrap client-facing session sockets (fault injection) *)
  shard_wrap : (Unix.file_descr -> Sqp_server.Protocol.io) option;
      (** wrap router→shard sockets (fault injection on the back side) *)
  connect_timeout : float;  (** bound on dialing a shard *)
  shard_attempts : int;  (** transport retries per shard sub-request *)
}

val default_config : config
(** [127.0.0.1:0], 8 MiB frames, no timeouts, 5 s connect timeout,
    4 transport attempts per shard call. *)

type t

val start :
  ?config:config ->
  ?metrics:Sqp_obs.Metrics.t ->
  space:Sqp_zorder.Space.t ->
  map:Sqp_server.Shard_map.t ->
  unit ->
  t
(** Push [map] to every shard it names (each learns its own entry
    index, hence its owned interval), then bind and serve.  [space]
    must be the shards' space — it drives box decomposition for
    fan-out pruning and z computation for mutation routing.  Metrics
    (default global registry): [cluster.requests], [cluster.fanout]
    (histogram: shards contacted per pruned read), [cluster.shards_skipped],
    [cluster.stale_retries], [cluster.epoch] gauge,
    [cluster.rebalance.chunks], [cluster.rebalance.rows_moved],
    [cluster.rebalance.dual_writes], [cluster.rebalance.active] gauge,
    plus the [cluster.sessions*]/[cluster.bad_frames] instruments of the
    underlying {!Sqp_server.Net}.
    @raise Failure if a shard cannot be reached or refuses the map.
    @raise Unix.Unix_error if the router address cannot be bound. *)

val port : t -> int

val map : t -> Sqp_server.Shard_map.t
(** The current routing truth (latest epoch). *)

val split :
  ?tables:string list ->
  t ->
  from_:int ->
  at:int ->
  host:string ->
  port:int ->
  (unit, string) result
(** [split t ~from_ ~at ~host ~port] moves the z range [\[at, hi\]] of
    entry [from_] (which keeps [\[lo, at - 1\]]) to the — already
    running, typically [--live-empty] — shard at [host:port], with the
    copy/catch-up/flip protocol described above.  [tables] (default
    [["L"]], the canonical serving catalog's ingest table) names the
    live tables to move; it must cover {e every} live table the shards
    serve — a gated mutation to a table outside the list aborts the
    split (map unflipped) rather than orphan that table's moved-range
    rows.  Serving continues throughout; only mutations touching the
    chunk being copied right now block.  [Error] (with the map
    unflipped) if the move is invalid, the target is unreachable, or a
    copy/dual-write failed; the target may then hold a partial copy
    and should be restarted before retrying. *)

val stop : t -> unit
(** Graceful: drain client sessions (via {!Sqp_server.Net.stop}), then
    close pooled shard connections.  Idempotent. *)
