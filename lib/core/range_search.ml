module Z = Sqp_zorder

type space = Z.Space.t

type 'a prepared = {
  space : space;
  zs : Z.Bitstring.t array;            (* sorted *)
  pts : (Sqp_geom.Point.t * 'a) array; (* aligned with zs *)
  pz : Z.Zpacked.t array option;
      (* zs packed into words, when the space fits Zpacked.max_bits;
         None sends every search down the bitstring reference path *)
  keys : int array option;
      (* single-word keys for pz, when the whole space fits one 63-bit
         word: the kernels then merge over flat int arrays *)
}

let prepare space points =
  let tagged =
    Array.map (fun (p, v) -> (Z.Interleave.shuffle space p, (p, v))) points
  in
  Array.sort (fun (a, _) (b, _) -> Z.Bitstring.compare a b) tagged;
  let zs = Array.map fst tagged in
  let pz = if Z.Zpacked.fits_space space then Z.Zpacked.pack_array zs else None in
  {
    space;
    zs;
    pts = Array.map snd tagged;
    pz;
    keys = Option.bind pz Z.Zkernel.uniform_word_keys;
  }

let prepared_length p = Array.length p.zs

type counters = {
  point_steps : int;
  element_steps : int;
  point_jumps : int;
  element_jumps : int;
  comparisons : int;
}

type range = { zlo : Z.Bitstring.t; zhi : Z.Bitstring.t }

let box_ranges prep box =
  let total = Z.Space.total_bits prep.space in
  let lo = Sqp_geom.Box.lo box and hi = Sqp_geom.Box.hi box in
  let els = Z.Decompose.decompose_box prep.space ~lo ~hi in
  Array.of_list
    (List.map
       (fun e ->
         {
           zlo = Z.Bitstring.pad_to e total false;
           zhi = Z.Bitstring.pad_to e total true;
         })
       els)

(* The same scan ranges, built directly in packed form: elements of a
   fitting space always pack, and padding is O(1) word arithmetic. *)
let packed_ranges prep box =
  let total = Z.Space.total_bits prep.space in
  let lo = Sqp_geom.Box.lo box and hi = Sqp_geom.Box.hi box in
  let els = Z.Decompose.decompose_box prep.space ~lo ~hi in
  Array.of_list
    (List.map
       (fun e ->
         let p =
           match Z.Zpacked.of_bitstring e with
           | Some p -> p
           | None -> assert false (* fits_space checked at prepare *)
         in
         {
           Z.Zkernel.rlo = Z.Zpacked.pad_to p total false;
           rhi = Z.Zpacked.pad_to p total true;
         })
       els)

(* And as bare word keys for narrow spaces: two flat int arrays, no
   intermediate packed pairs — per-query range construction is a large
   share of a cache-warm search, so it is kept allocation-lean. *)
let key_ranges prep box =
  let total = Z.Space.total_bits prep.space in
  let lo = Sqp_geom.Box.lo box and hi = Sqp_geom.Box.hi box in
  let els = Z.Decompose.decompose_box prep.space ~lo ~hi in
  let n = List.length els in
  let klo = Array.make n 0 and khi = Array.make n 0 in
  let j = ref 0 in
  List.iter
    (fun e ->
      let p =
        match Z.Zpacked.of_bitstring e with
        | Some p -> p
        | None -> assert false (* narrow spaces a fortiori fit *)
      in
      let lo_k, hi_k = Z.Zkernel.element_keys ~total p in
      klo.(!j) <- lo_k;
      khi.(!j) <- hi_k;
      incr j)
    els;
  { Z.Zkernel.klo; khi }

let clip prep box =
  Sqp_geom.Box.clip box ~side:(Z.Space.side prep.space)

(* Observability: one span per search carrying the merge's work counters
   (probes = comparisons, skips = random accesses), plus running totals in
   the ambient metrics registry.  A single branch when tracing is off. *)
let observed name search prep box =
  if not (Sqp_obs.Trace.global_enabled ()) then search prep box
  else begin
    let tracer = Sqp_obs.Trace.global () in
    Sqp_obs.Trace.span_begin tracer name;
    let ((results, c) as r) = search prep box in
    Sqp_obs.Trace.span_end
      ~attrs:(fun () ->
        Sqp_obs.Trace.
          [
            ("rows", Int (List.length results));
            ("comparisons", Int c.comparisons);
            ("point_steps", Int c.point_steps);
            ("element_steps", Int c.element_steps);
            ("point_jumps", Int c.point_jumps);
            ("element_jumps", Int c.element_jumps);
          ])
      tracer;
    let m = Sqp_obs.Metrics.global () in
    let bump suffix n =
      Sqp_obs.Metrics.add (Sqp_obs.Metrics.counter m (name ^ "." ^ suffix)) n
    in
    bump "queries" 1;
    bump "rows" (List.length results);
    bump "comparisons" c.comparisons;
    bump "skips" (c.point_jumps + c.element_jumps);
    r
  end

let no_counters =
  { point_steps = 0; element_steps = 0; point_jumps = 0; element_jumps = 0; comparisons = 0 }

let counters_of_kernel (c : Z.Zkernel.range_counters) =
  {
    point_steps = c.Z.Zkernel.point_steps;
    element_steps = c.element_steps;
    point_jumps = c.point_jumps;
    element_jumps = c.element_jumps;
    comparisons = c.comparisons;
  }

let search_plain_reference_impl prep box =
  match clip prep box with
  | None ->
      ([], { point_steps = 0; element_steps = 0; point_jumps = 0; element_jumps = 0; comparisons = 0 })
  | Some box ->
      let ranges = box_ranges prep box in
      let np = Array.length prep.zs and nb = Array.length ranges in
      let point_steps = ref 0 and element_steps = ref 0 and comparisons = ref 0 in
      let acc = ref [] in
      let i = ref 0 and j = ref 0 in
      while !i < np && !j < nb do
        let z = prep.zs.(!i) and r = ranges.(!j) in
        incr comparisons;
        if Z.Bitstring.compare z r.zlo < 0 then begin
          incr i;
          incr point_steps
        end
        else begin
          incr comparisons;
          if Z.Bitstring.compare z r.zhi > 0 then begin
            incr j;
            incr element_steps
          end
          else begin
            acc := prep.pts.(!i) :: !acc;
            incr i;
            incr point_steps
          end
        end
      done;
      ( List.rev !acc,
        {
          point_steps = !point_steps;
          element_steps = !element_steps;
          point_jumps = 0;
          element_jumps = 0;
          comparisons = !comparisons;
        } )

let search_plain_reference prep box =
  observed "range_search.plain_reference" search_plain_reference_impl prep box

let search_plain_impl prep box =
  match prep.pz with
  | None -> search_plain_reference_impl prep box
  | Some pz -> (
      match clip prep box with
      | None -> ([], no_counters)
      | Some box ->
          let acc = ref [] in
          let emit i = acc := prep.pts.(i) :: !acc in
          let c =
            match prep.keys with
            | Some ks -> Z.Zkernel.range_plain_keys ks (key_ranges prep box) emit
            | None -> Z.Zkernel.range_plain pz (packed_ranges prep box) emit
          in
          (List.rev !acc, counters_of_kernel c))

let search_plain prep box = observed "range_search.plain" search_plain_impl prep box

(* First index in [zs[lo, hi)] with zs.(i) >= z (binary search = random
   access). *)
let lower_bound_z ?(lo = 0) ?hi zs z comparisons =
  let lo = ref lo and hi = ref (match hi with Some h -> h | None -> Array.length zs) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    incr comparisons;
    if Z.Bitstring.compare zs.(mid) z < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* First index in [ranges] with zhi >= z. *)
let first_live_range ranges z comparisons =
  let lo = ref 0 and hi = ref (Array.length ranges) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    incr comparisons;
    if Z.Bitstring.compare ranges.(mid).zhi z < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let search_skip_reference_impl prep box =
  match clip prep box with
  | None ->
      ([], { point_steps = 0; element_steps = 0; point_jumps = 0; element_jumps = 0; comparisons = 0 })
  | Some box ->
      let ranges = box_ranges prep box in
      let np = Array.length prep.zs and nb = Array.length ranges in
      let point_steps = ref 0 and element_steps = ref 0 in
      let point_jumps = ref 0 and element_jumps = ref 0 in
      let comparisons = ref 0 in
      let acc = ref [] in
      let i = ref 0 and j = ref 0 in
      (if np > 0 && nb > 0 then begin
         (* Initial random access: position P at the box's first z value. *)
         i := lower_bound_z prep.zs ranges.(0).zlo comparisons;
         incr point_jumps
       end);
      while !i < np && !j < nb do
        let z = prep.zs.(!i) and r = ranges.(!j) in
        incr comparisons;
        if Z.Bitstring.compare z r.zlo < 0 then begin
          (* Point is before the current element: jump P forward.  The
             target cannot be behind the cursor (zs is sorted), so the
             binary search is bounded below by it. *)
          i := lower_bound_z ~lo:!i prep.zs r.zlo comparisons;
          incr point_jumps
        end
        else begin
          incr comparisons;
          if Z.Bitstring.compare z r.zhi > 0 then begin
            (* Point is past the current element: jump B forward. *)
            j := first_live_range ranges z comparisons;
            incr element_jumps
          end
          else begin
            acc := prep.pts.(!i) :: !acc;
            incr i;
            incr point_steps
          end
        end
      done;
      ( List.rev !acc,
        {
          point_steps = !point_steps;
          element_steps = !element_steps;
          point_jumps = !point_jumps;
          element_jumps = !element_jumps;
          comparisons = !comparisons;
        } )

let search_skip_reference prep box =
  observed "range_search.skip_reference" search_skip_reference_impl prep box

let search_skip_impl prep box =
  match prep.pz with
  | None -> search_skip_reference_impl prep box
  | Some pz -> (
      match clip prep box with
      | None -> ([], no_counters)
      | Some box ->
          let acc = ref [] in
          let emit i = acc := prep.pts.(i) :: !acc in
          let c =
            match prep.keys with
            | Some ks -> Z.Zkernel.range_skip_keys ks (key_ranges prep box) emit
            | None -> Z.Zkernel.range_skip pz (packed_ranges prep box) emit
          in
          (List.rev !acc, counters_of_kernel c))

let search_skip prep box = observed "range_search.skip" search_skip_impl prep box

type trace_step = {
  description : string;
  point_z : string option;
  element_z : string option;
}

let search_trace prep box =
  match clip prep box with
  | None -> ([], [ { description = "query box outside the grid"; point_z = None; element_z = None } ])
  | Some box ->
      let total = Z.Space.total_bits prep.space in
      let lo = Sqp_geom.Box.lo box and hi = Sqp_geom.Box.hi box in
      let els = Array.of_list (Z.Decompose.decompose_box prep.space ~lo ~hi) in
      let ranges =
        Array.map
          (fun e ->
            (e, Z.Bitstring.pad_to e total false, Z.Bitstring.pad_to e total true))
          els
      in
      let np = Array.length prep.zs and nb = Array.length ranges in
      let steps = ref [] and acc = ref [] in
      let note description i j =
        steps :=
          {
            description;
            point_z = (if i < np then Some (Z.Bitstring.to_string prep.zs.(i)) else None);
            element_z =
              (if j < nb then
                 let e, _, _ = ranges.(j) in
                 Some (Z.Bitstring.to_string e)
               else None);
          }
          :: !steps
      in
      let i = ref 0 and j = ref 0 in
      let dummy = ref 0 in
      while !i < np && !j < nb do
        let z = prep.zs.(!i) in
        let e, rlo, rhi = ranges.(!j) in
        if Z.Bitstring.compare z rlo < 0 then begin
          note
            (Printf.sprintf "point z %s before element %s: random access into P"
               (Z.Bitstring.to_string z) (Z.Bitstring.to_string e))
            !i !j;
          i := lower_bound_z prep.zs rlo dummy
        end
        else if Z.Bitstring.compare z rhi > 0 then begin
          note
            (Printf.sprintf "point z %s after element %s: advance B"
               (Z.Bitstring.to_string z) (Z.Bitstring.to_string e))
            !i !j;
          let z' = z in
          let rec bump () =
            if !j < nb then
              let _, _, rhi = ranges.(!j) in
              if Z.Bitstring.compare rhi z' < 0 then begin
                incr j;
                bump ()
              end
          in
          bump ()
        end
        else begin
          let p, _ = prep.pts.(!i) in
          note
            (Printf.sprintf "point z %s inside element %s: report %s"
               (Z.Bitstring.to_string z) (Z.Bitstring.to_string e)
               (Format.asprintf "%a" Sqp_geom.Point.pp p))
            !i !j;
          acc := prep.pts.(!i) :: !acc;
          incr i
        end
      done;
      note "merge exhausted" !i !j;
      (List.rev !acc, List.rev !steps)
