(** The range-search algorithm of Section 3.3, on in-memory sequences.

    Step 1 builds the z-ordered point sequence P, step 2 the z-ordered
    element sequence B (the decomposed box), step 3 merges them looking
    for points contained in elements.  Two merge variants are provided:
    the plain O(|P| + |B|) merge and the optimized merge that uses random
    accesses (binary search) to skip dead stretches of either sequence —
    plus a step-by-step trace used to reproduce Figure 5.

    The disk-resident version of the same algorithm lives in
    {!Sqp_btree.Zindex}; this module is the algorithmic core, with exact
    work counters, suitable for analysis and benchmarks. *)

type space = Sqp_zorder.Space.t

type 'a prepared
(** The sorted point sequence P ([z, point, payload]). *)

val prepare : space -> (Sqp_geom.Point.t * 'a) array -> 'a prepared
(** Step 1: shuffle every point and sort by z value. *)

val prepared_length : 'a prepared -> int

type counters = {
  point_steps : int;    (** sequential advances in P *)
  element_steps : int;  (** sequential advances in B *)
  point_jumps : int;    (** random accesses into P *)
  element_jumps : int;  (** random accesses into B *)
  comparisons : int;
}

val search_plain :
  'a prepared -> Sqp_geom.Box.t -> (Sqp_geom.Point.t * 'a) list * counters
(** The unoptimized merge: walk both sequences entry by entry.  Runs on
    the packed word kernel ({!Sqp_zorder.Zkernel.range_plain}) whenever
    the space fits [Zpacked.max_bits] bits; results {e and counters} are
    identical to {!search_plain_reference} either way. *)

val search_skip :
  'a prepared -> Sqp_geom.Box.t -> (Sqp_geom.Point.t * 'a) list * counters
(** The optimized merge: when the current point z value leaves the
    current element, binary-search the other sequence ("parts of the
    space that could not possibly contribute are skipped").  Packed
    kernel + bitstring fallback, like {!search_plain}. *)

val search_plain_reference :
  'a prepared -> Sqp_geom.Box.t -> (Sqp_geom.Point.t * 'a) list * counters
(** The byte-wise bitstring implementation of {!search_plain} — works
    for any space, serves as the differential oracle and benchmark
    baseline. *)

val search_skip_reference :
  'a prepared -> Sqp_geom.Box.t -> (Sqp_geom.Point.t * 'a) list * counters
(** Bitstring implementation of {!search_skip}; same oracle role. *)

type trace_step = {
  description : string;
  point_z : string option;   (** current P record's z value *)
  element_z : string option; (** current B record's element *)
}

val search_trace :
  'a prepared -> Sqp_geom.Box.t -> (Sqp_geom.Point.t * 'a) list * trace_step list
(** The skip merge, narrated step by step (Figure 5's walkthrough). *)
