module B = Sqp_zorder.Bitstring

type stats = { pairs : int; items : int; comparisons : int }

type ('a, 'b) item = Left of 'a | Right of 'b

(* Observability: one span per merge with its work counters, plus running
   totals in the ambient metrics registry.  One branch when tracing is
   off, so the hot sequential path is unchanged. *)
let observed name merge left right =
  if not (Sqp_obs.Trace.global_enabled ()) then merge left right
  else begin
    let tracer = Sqp_obs.Trace.global () in
    Sqp_obs.Trace.span_begin tracer name;
    let ((_, s) as r) = merge left right in
    Sqp_obs.Trace.span_end
      ~attrs:(fun () ->
        Sqp_obs.Trace.
          [
            ("pairs", Int s.pairs);
            ("items", Int s.items);
            ("comparisons", Int s.comparisons);
          ])
      tracer;
    let m = Sqp_obs.Metrics.global () in
    let bump suffix n =
      Sqp_obs.Metrics.add (Sqp_obs.Metrics.counter m (name ^ "." ^ suffix)) n
    in
    bump "merges" 1;
    bump "pairs" s.pairs;
    bump "items" s.items;
    bump "comparisons" s.comparisons;
    r
  end

(* Reference (oracle) path: list-based bitstring sweep.  Each side is
   stable-sorted separately and the two sorted lists are merged tagged in
   a single pass — equal z values take the left side first, which is
   exactly the order a stable sort of left-then-right would produce. *)
let pairs_reference_impl left right =
  let comparisons = ref 0 in
  let cmp (za, _) (zb, _) =
    incr comparisons;
    B.compare za zb
  in
  let sl = List.sort cmp left and sr = List.sort cmp right in
  let items =
    let rec go l r acc =
      match (l, r) with
      | [], [] -> List.rev acc
      | (z, a) :: tl, [] -> go tl [] ((z, Left a) :: acc)
      | [], (z, b) :: tr -> go [] tr ((z, Right b) :: acc)
      | ((zl, a) :: tl as l'), ((zr, b) :: tr as r') ->
          incr comparisons;
          if B.compare zl zr <= 0 then go tl r' ((zl, Left a) :: acc)
          else go l' tr ((zr, Right b) :: acc)
    in
    go sl sr []
  in
  let stack_l = ref [] and stack_r = ref [] in
  let pop_closed z stack =
    let rec go = function
      | (ze, _) :: rest
        when (incr comparisons;
              not (B.is_prefix ze z)) ->
          go rest
      | kept -> kept
    in
    stack := go !stack
  in
  let out = ref [] and count = ref 0 in
  List.iter
    (fun (z, item) ->
      pop_closed z stack_l;
      pop_closed z stack_r;
      match item with
      | Left a ->
          List.iter
            (fun (_, b) ->
              incr count;
              out := (a, b) :: !out)
            !stack_r;
          stack_l := (z, a) :: !stack_l
      | Right b ->
          List.iter
            (fun (_, a) ->
              incr count;
              out := (a, b) :: !out)
            !stack_l;
          stack_r := (z, b) :: !stack_r)
    items;
  (List.rev !out, { pairs = !count; items = List.length items; comparisons = !comparisons })

let pairs_reference left right =
  observed "zmerge.pairs_reference" pairs_reference_impl left right

(* Fast path: pack both sides into word-encoded z values and run the
   flat-array kernel sweep; output (content and order) is bit-identical
   to the reference.  Any z value longer than Zpacked.max_bits sends the
   whole call to the reference path. *)
let pairs_impl left right =
  let zl = Array.of_list (List.map fst left)
  and zr = Array.of_list (List.map fst right) in
  match (Sqp_zorder.Zpacked.pack_array zl, Sqp_zorder.Zpacked.pack_array zr) with
  | Some pl, Some pr ->
      let comparisons = ref 0 in
      let l = Zseq.of_packed ~comparisons pl (Array.of_list (List.map snd left))
      and r = Zseq.of_packed ~comparisons pr (Array.of_list (List.map snd right)) in
      let out, st = Zseq.pairs ~comparisons l r in
      ( out,
        {
          pairs = st.Sqp_zorder.Zkernel.pairs;
          items = Zseq.length l + Zseq.length r;
          comparisons = !comparisons;
        } )
  | _ -> pairs_reference_impl left right

let pairs left right = observed "zmerge.pairs" pairs_impl left right

let pairs_naive_impl left right =
  let comparisons = ref 0 in
  let out = ref [] and count = ref 0 in
  List.iter
    (fun (za, a) ->
      List.iter
        (fun (zb, b) ->
          incr comparisons;
          if B.is_prefix za zb || B.is_prefix zb za then begin
            incr count;
            out := (a, b) :: !out
          end)
        right)
    left;
  ( List.rev !out,
    {
      pairs = !count;
      items = List.length left + List.length right;
      comparisons = !comparisons;
    } )

let pairs_naive left right = observed "zmerge.pairs_naive" pairs_naive_impl left right
