(** Containment merge of two z-ordered element sequences — the engine
    behind the spatial join, reusable outside the relational layer.

    Input sequences need not be sorted (they are sorted internally) and
    may contain nested elements.  A pair [(a, b)] is produced whenever
    [a]'s element contains [b]'s or vice versa. *)

type stats = { pairs : int; items : int; comparisons : int }

val pairs :
  (Sqp_zorder.Element.t * 'a) list ->
  (Sqp_zorder.Element.t * 'b) list ->
  ('a * 'b) list * stats
(** Stack-based single sweep, O(n log n + output).  Runs on the packed
    flat-array kernel ({!Sqp_zorder.Zkernel} over {!Zseq}) whenever every
    z value fits [Zpacked.max_bits] bits, falling back to
    {!pairs_reference} otherwise; both paths produce the same pairs in
    the same order. *)

val pairs_reference :
  (Sqp_zorder.Element.t * 'a) list ->
  (Sqp_zorder.Element.t * 'b) list ->
  ('a * 'b) list * stats
(** The list-based bitstring sweep (works for any z length) — the
    differential oracle for {!pairs} and the benchmark baseline. *)

val pairs_naive :
  (Sqp_zorder.Element.t * 'a) list ->
  (Sqp_zorder.Element.t * 'b) list ->
  ('a * 'b) list * stats
(** All-pairs containment test; the oracle. *)
