module Z = Sqp_zorder
module P = Z.Zpacked
module K = Z.Zkernel

type 'a t = { zs : P.t array; ps : 'a array; keyed : K.keyed option }

let of_packed ~comparisons zs ps =
  if Array.length zs <> Array.length ps then
    invalid_arg "Zseq.of_packed: length mismatch";
  let perm, keyed = K.sort_keyed ~comparisons zs in
  {
    zs = Array.map (fun k -> zs.(k)) perm;
    ps = Array.map (fun k -> ps.(k)) perm;
    keyed;
  }

let of_list ~comparisons items =
  let zs = Array.of_list (List.map fst items) in
  match P.pack_array zs with
  | None -> None
  | Some packed ->
      let ps = Array.of_list (List.map snd items) in
      Some (of_packed ~comparisons packed ps)

let of_sorted zs ps =
  if Array.length zs <> Array.length ps then
    invalid_arg "Zseq.of_sorted: length mismatch";
  for i = 1 to Array.length zs - 1 do
    if P.compare zs.(i - 1) zs.(i) > 0 then
      invalid_arg "Zseq.of_sorted: not sorted"
  done;
  { zs; ps; keyed = None }

let length t = Array.length t.zs

let z t i = t.zs.(i)
let payload t i = t.ps.(i)

let packed t = t.zs
let payloads t = t.ps

let lower_bound ~comparisons t key =
  K.lower_bound ~comparisons t.zs ~lo:0 ~hi:(Array.length t.zs) key

let pairs ~comparisons l r =
  let out = ref [] in
  let emit li ri = out := (l.ps.(li), r.ps.(ri)) :: !out in
  let stats =
    match (l.keyed, r.keyed) with
    | Some kl, Some kr -> K.sweep_pairs_keyed ~comparisons kl kr emit
    | _ -> K.sweep_pairs ~comparisons l.zs r.zs emit
  in
  (List.rev !out, stats)

(* {1 Delta-encoded runs} *)

type 'a runs = { blocks : Z.Zrun.t array; rps : 'a array }

let to_runs ?restart_interval ?(block = 4096) t =
  if block < 1 || block > 0xFFFF then invalid_arg "Zseq.to_runs: bad block size";
  let n = Array.length t.zs in
  (* All-equal lengths (the usual case: full-resolution keys) use the
     fixed-length encoding, eliding per-entry length bytes. *)
  let fixed_len =
    if n = 0 then None
    else
      let l = P.length t.zs.(0) in
      if Array.for_all (fun z -> P.length z = l) t.zs then Some l else None
  in
  let nblocks = (n + block - 1) / block in
  let blocks =
    Array.init nblocks (fun b ->
        let lo = b * block in
        let len = min block (n - lo) in
        Z.Zrun.encode ?restart_interval ?fixed_len
          (Array.sub t.zs lo len))
  in
  { blocks; rps = t.ps }

let of_runs r =
  let zs = Array.concat (Array.to_list (Array.map Z.Zrun.decode r.blocks)) in
  of_sorted zs r.rps

let runs_length r = Array.length r.rps

let runs_payloads r = r.rps

let runs_bytes r =
  Array.fold_left (fun acc b -> acc + Z.Zrun.byte_length b) 0 r.blocks

let runs_raw_bytes r =
  Array.fold_left (fun acc b -> acc + Z.Zrun.raw_bytes b) 0 r.blocks

let runs_cursor r =
  let b = ref 0 and cur = ref None in
  let rec next () =
    match !cur with
    | Some c -> (
        match Z.Zrun.next c with
        | Some _ as z -> z
        | None ->
            cur := None;
            next ())
    | None ->
        if !b >= Array.length r.blocks then None
        else begin
          cur := Some (Z.Zrun.cursor r.blocks.(!b));
          incr b;
          next ()
        end
  in
  next

let pairs_runs ~comparisons l r =
  let out = ref [] in
  let emit li ri = out := (l.rps.(li), r.rps.(ri)) :: !out in
  let stats =
    K.sweep_pairs_stream ~comparisons (runs_cursor l) (runs_cursor r) emit
  in
  (List.rev !out, stats)
