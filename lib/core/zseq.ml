module Z = Sqp_zorder
module P = Z.Zpacked
module K = Z.Zkernel

type 'a t = { zs : P.t array; ps : 'a array; keyed : K.keyed option }

let of_packed ~comparisons zs ps =
  if Array.length zs <> Array.length ps then
    invalid_arg "Zseq.of_packed: length mismatch";
  let perm, keyed = K.sort_keyed ~comparisons zs in
  {
    zs = Array.map (fun k -> zs.(k)) perm;
    ps = Array.map (fun k -> ps.(k)) perm;
    keyed;
  }

let of_list ~comparisons items =
  let zs = Array.of_list (List.map fst items) in
  match P.pack_array zs with
  | None -> None
  | Some packed ->
      let ps = Array.of_list (List.map snd items) in
      Some (of_packed ~comparisons packed ps)

let of_sorted zs ps =
  if Array.length zs <> Array.length ps then
    invalid_arg "Zseq.of_sorted: length mismatch";
  for i = 1 to Array.length zs - 1 do
    if P.compare zs.(i - 1) zs.(i) > 0 then
      invalid_arg "Zseq.of_sorted: not sorted"
  done;
  { zs; ps; keyed = None }

let length t = Array.length t.zs

let z t i = t.zs.(i)
let payload t i = t.ps.(i)

let packed t = t.zs
let payloads t = t.ps

let lower_bound ~comparisons t key =
  K.lower_bound ~comparisons t.zs ~lo:0 ~hi:(Array.length t.zs) key

let pairs ~comparisons l r =
  let out = ref [] in
  let emit li ri = out := (l.ps.(li), r.ps.(ri)) :: !out in
  let stats =
    match (l.keyed, r.keyed) with
    | Some kl, Some kr -> K.sweep_pairs_keyed ~comparisons kl kr emit
    | _ -> K.sweep_pairs ~comparisons l.zs r.zs emit
  in
  (List.rev !out, stats)
