(** Flat z-sorted sequences of packed z values with payloads.

    The in-memory shape the packed kernels ({!Sqp_zorder.Zkernel}) run
    over: two parallel arrays — {!Sqp_zorder.Zpacked} z values in
    ascending z order and the corresponding payloads — supporting
    binary-search skip and the containment sweep.  Construction is total:
    [of_list] returns [None] when any z value exceeds
    [Zpacked.max_bits], telling the caller to stay on the list-based
    [Bitstring] reference path. *)

type 'a t

(** {1 Construction} *)

val of_list :
  comparisons:int ref -> (Sqp_zorder.Element.t * 'a) list -> 'a t option
(** Pack every z value (or return [None]), then stable-sort by z —
    equal z values keep their list order.  Sort comparisons are counted
    into [comparisons]. *)

val of_packed :
  comparisons:int ref -> Sqp_zorder.Zpacked.t array -> 'a array -> 'a t
(** Same, from already-packed (unsorted) parallel arrays.  The inputs are
    not modified.
    @raise Invalid_argument if the arrays differ in length. *)

val of_sorted : Sqp_zorder.Zpacked.t array -> 'a array -> 'a t
(** Adopt already-sorted parallel arrays (no copy).
    @raise Invalid_argument if lengths differ or z values descend. *)

(** {1 Observation} *)

val length : 'a t -> int

val z : 'a t -> int -> Sqp_zorder.Zpacked.t
val payload : 'a t -> int -> 'a

val packed : 'a t -> Sqp_zorder.Zpacked.t array
(** The underlying sorted z array (not a copy — do not mutate). *)

val payloads : 'a t -> 'a array
(** The underlying payload array, aligned with {!packed}. *)

val lower_bound : comparisons:int ref -> 'a t -> Sqp_zorder.Zpacked.t -> int
(** First index with [z t i >= key] (binary-search skip). *)

(** {1 Merging} *)

val pairs :
  comparisons:int ref ->
  'a t ->
  'b t ->
  ('a * 'b) list * Sqp_zorder.Zkernel.sweep_stats
(** Containment pairs via {!Sqp_zorder.Zkernel.sweep_pairs}; output order
    matches the list-based [Zmerge] sweep bit for bit. *)

(** {1 Delta-encoded runs}

    The compact block form of a sequence: z values front-coded into
    {!Sqp_zorder.Zrun} blocks (payloads stay a flat array), read back
    lazily through a cursor so the streaming sweep never materializes
    the full z array.  [Live] checkpoint bases and [Persist.save] use
    the same block codec on disk. *)

type 'a runs

val to_runs : ?restart_interval:int -> ?block:int -> 'a t -> 'a runs
(** Front-code the sequence into blocks of at most [block] values
    (default 4096).  When every z value has the same bit length — the
    full-resolution common case — blocks use the fixed-length encoding.
    @raise Invalid_argument if [block] is outside [\[1, 65535\]]. *)

val of_runs : 'a runs -> 'a t
(** Decode back to the flat form ({!of_sorted} of the materialized
    arrays); a round trip is exact. *)

val runs_length : 'a runs -> int

val runs_payloads : 'a runs -> 'a array
(** The payload array, aligned with decode order (not a copy). *)

val runs_bytes : 'a runs -> int
(** Serialized size of the z blocks (headers included). *)

val runs_raw_bytes : 'a runs -> int
(** What the same z values would occupy without front coding — divide
    by {!runs_bytes} for the compression ratio. *)

val runs_cursor : 'a runs -> unit -> Sqp_zorder.Zpacked.t option
(** A pull source over all blocks in order, materializing one value per
    call — feed it to {!Sqp_zorder.Zkernel.sweep_pairs_stream}. *)

val pairs_runs :
  comparisons:int ref ->
  'a runs ->
  'b runs ->
  ('a * 'b) list * Sqp_zorder.Zkernel.sweep_stats
(** {!pairs} straight off the compressed form via the streaming sweep —
    differential-tested to match {!pairs} output exactly. *)
