type counter = int Atomic.t

type gauge = int Atomic.t

let hist_buckets = 63
(* Bucket [i] holds observations whose bit length is [i]: 0 -> bucket 0,
   [2^(i-1), 2^i - 1] -> bucket i.  63 buckets cover every non-negative
   OCaml int. *)

type histogram = { counts : int Atomic.t array; total : int Atomic.t; sum : int Atomic.t }

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = { mutex : Mutex.t; table : (string, metric) Hashtbl.t }

let create () = { mutex = Mutex.create (); table = Hashtbl.create 32 }

let the_global = create ()

let global () = the_global

let find_or_add t name make =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      match Hashtbl.find_opt t.table name with
      | Some m -> m
      | None ->
          let m = make () in
          Hashtbl.replace t.table name m;
          m)

let counter t name =
  match find_or_add t name (fun () -> Counter (Atomic.make 0)) with
  | Counter c -> c
  | _ -> invalid_arg (Printf.sprintf "Metrics.counter: %S is not a counter" name)

let incr c = ignore (Atomic.fetch_and_add c 1)

let add c n = ignore (Atomic.fetch_and_add c n)

let counter_value = Atomic.get

let gauge t name =
  match find_or_add t name (fun () -> Gauge (Atomic.make 0)) with
  | Gauge g -> g
  | _ -> invalid_arg (Printf.sprintf "Metrics.gauge: %S is not a gauge" name)

let set_gauge g n = Atomic.set g n

let rec record_max g n =
  let cur = Atomic.get g in
  if n > cur && not (Atomic.compare_and_set g cur n) then record_max g n

let gauge_value = Atomic.get

let histogram t name =
  let make () =
    Histogram
      {
        counts = Array.init hist_buckets (fun _ -> Atomic.make 0);
        total = Atomic.make 0;
        sum = Atomic.make 0;
      }
  in
  match find_or_add t name make with
  | Histogram h -> h
  | _ -> invalid_arg (Printf.sprintf "Metrics.histogram: %S is not a histogram" name)

let bucket_of v =
  let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
  bits 0 v

let bucket_upper i = if i = 0 then 0 else (1 lsl i) - 1

let observe h v =
  let v = max 0 v in
  ignore (Atomic.fetch_and_add h.counts.(bucket_of v) 1);
  ignore (Atomic.fetch_and_add h.total 1);
  ignore (Atomic.fetch_and_add h.sum v)

type reading =
  | Counter_v of int
  | Gauge_v of int
  | Histogram_v of { count : int; sum : int; buckets : (int * int) list }

type snapshot = (string * reading) list

let read = function
  | Counter c -> Counter_v (Atomic.get c)
  | Gauge g -> Gauge_v (Atomic.get g)
  | Histogram h ->
      let buckets = ref [] in
      for i = hist_buckets - 1 downto 0 do
        let n = Atomic.get h.counts.(i) in
        if n > 0 then buckets := (bucket_upper i, n) :: !buckets
      done;
      Histogram_v { count = Atomic.get h.total; sum = Atomic.get h.sum; buckets = !buckets }

let snapshot t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      Hashtbl.fold (fun name m acc -> (name, read m) :: acc) t.table []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let merge_buckets a b =
  (* Both ascending in upper bound; pointwise sum. *)
  let rec go a b =
    match (a, b) with
    | [], rest | rest, [] -> rest
    | (ua, na) :: ra, (ub, nb) :: rb ->
        if ua = ub then (ua, na + nb) :: go ra rb
        else if ua < ub then (ua, na) :: go ra b
        else (ub, nb) :: go a rb
  in
  go a b

let merge_reading name a b =
  match (a, b) with
  | Counter_v x, Counter_v y -> Counter_v (x + y)
  | Gauge_v x, Gauge_v y -> Gauge_v (max x y)
  | Histogram_v x, Histogram_v y ->
      Histogram_v
        {
          count = x.count + y.count;
          sum = x.sum + y.sum;
          buckets = merge_buckets x.buckets y.buckets;
        }
  | _ -> invalid_arg (Printf.sprintf "Metrics.merge: %S has mismatched kinds" name)

let merge a b =
  (* Both name-sorted; merge like a sorted union. *)
  let rec go a b =
    match (a, b) with
    | [], rest | rest, [] -> rest
    | (na, ra) :: resta, (nb, rb) :: restb ->
        let c = String.compare na nb in
        if c = 0 then (na, merge_reading na ra rb) :: go resta restb
        else if c < 0 then (na, ra) :: go resta b
        else (nb, rb) :: go a restb
  in
  go a b

let merge_all snaps = List.fold_left merge [] snaps

let reset t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | Counter c -> Atomic.set c 0
          | Gauge g -> Atomic.set g 0
          | Histogram h ->
              Array.iter (fun a -> Atomic.set a 0) h.counts;
              Atomic.set h.total 0;
              Atomic.set h.sum 0)
        t.table)

let to_text snap =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, r) ->
      match r with
      | Counter_v v -> Buffer.add_string buf (Printf.sprintf "%-44s %d\n" name v)
      | Gauge_v v -> Buffer.add_string buf (Printf.sprintf "%-44s %d (gauge)\n" name v)
      | Histogram_v { count; sum; buckets } ->
          let mean = if count = 0 then 0.0 else float_of_int sum /. float_of_int count in
          Buffer.add_string buf
            (Printf.sprintf "%-44s count=%d sum=%d mean=%.1f\n" name count sum mean);
          List.iter
            (fun (ub, n) ->
              Buffer.add_string buf (Printf.sprintf "%44s   <= %-10d %d\n" "" ub n))
            buckets)
    snap;
  Buffer.contents buf

let to_json snap =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\n";
  List.iteri
    (fun i (name, r) ->
      if i > 0 then Buffer.add_string buf ",\n";
      let body =
        match r with
        | Counter_v v -> Printf.sprintf "{ \"type\": \"counter\", \"value\": %d }" v
        | Gauge_v v -> Printf.sprintf "{ \"type\": \"gauge\", \"value\": %d }" v
        | Histogram_v { count; sum; buckets } ->
            Printf.sprintf
              "{ \"type\": \"histogram\", \"count\": %d, \"sum\": %d, \"buckets\": [%s] }"
              count sum
              (String.concat ", "
                 (List.map (fun (ub, n) -> Printf.sprintf "[%d, %d]" ub n) buckets))
      in
      Buffer.add_string buf (Printf.sprintf "  \"%s\": %s" name body))
    snap;
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf
