type value = Int of int | Float of float | Str of string

type attrs = (string * value) list

type span = {
  name : string;
  depth : int;
  start : float;
  duration : float;
  tid : int;
  attrs : attrs;
}

type sink = Null | Collect | Emit of (span -> unit)

type frame = { f_name : string; f_depth : int; f_start : float }

type t = {
  sink : sink;
  cap : int;
  clock : (unit -> float) ref;
  mutex : Mutex.t;
  ring : span option array;      (* circular; next write at [head] *)
  mutable head : int;
  mutable stored : int;
  mutable lost : int;
  stacks : (int, frame list ref) Hashtbl.t;  (* domain id -> open spans *)
}

let create ?(capacity = 4096) sink =
  if capacity < 1 then invalid_arg "Trace.create: capacity < 1";
  {
    sink;
    cap = capacity;
    clock = ref Unix.gettimeofday;
    mutex = Mutex.create ();
    ring = Array.make capacity None;
    head = 0;
    stored = 0;
    lost = 0;
    stacks = Hashtbl.create 8;
  }

let null = create ~capacity:1 Null

let enabled t = t.sink <> Null

let capacity t = t.cap

let set_clock t clock = t.clock := clock

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let stack_of t did =
  match Hashtbl.find_opt t.stacks did with
  | Some s -> s
  | None ->
      let s = ref [] in
      Hashtbl.replace t.stacks did s;
      s

let record t span =
  match t.sink with
  | Null -> ()
  | Emit f -> f span
  | Collect ->
      if t.stored = t.cap then t.lost <- t.lost + 1 else t.stored <- t.stored + 1;
      t.ring.(t.head) <- Some span;
      t.head <- (t.head + 1) mod t.cap

let span_begin t name =
  if enabled t then begin
    let now = !(t.clock) () in
    let did = (Domain.self () :> int) in
    locked t (fun () ->
        let stack = stack_of t did in
        let depth = List.length !stack in
        stack := { f_name = name; f_depth = depth; f_start = now } :: !stack)
  end

let span_end ?attrs t =
  if enabled t then begin
    let now = !(t.clock) () in
    let did = (Domain.self () :> int) in
    let attrs = match attrs with None -> [] | Some f -> f () in
    locked t (fun () ->
        let stack = stack_of t did in
        match !stack with
        | [] -> () (* unbalanced end: ignore *)
        | fr :: rest ->
            stack := rest;
            record t
              {
                name = fr.f_name;
                depth = fr.f_depth;
                start = fr.f_start;
                duration = Float.max 0.0 (now -. fr.f_start);
                tid = did;
                attrs;
              })
  end

let with_span ?attrs t name f =
  if not (enabled t) then f ()
  else begin
    span_begin t name;
    match f () with
    | v ->
        span_end ?attrs t;
        v
    | exception e ->
        span_end ?attrs t;
        raise e
  end

let open_depth t =
  if not (enabled t) then 0
  else
    let did = (Domain.self () :> int) in
    locked t (fun () ->
        match Hashtbl.find_opt t.stacks did with
        | None -> 0
        | Some s -> List.length !s)

let spans t =
  locked t (fun () ->
      let out = ref [] in
      (* Oldest slot is [head] when full, 0 otherwise. *)
      let first = if t.stored = t.cap then t.head else 0 in
      for k = 0 to t.stored - 1 do
        match t.ring.((first + k) mod t.cap) with
        | Some s -> out := s :: !out
        | None -> ()
      done;
      List.rev !out)

let dropped t = locked t (fun () -> t.lost)

let clear t =
  locked t (fun () ->
      Array.fill t.ring 0 t.cap None;
      t.head <- 0;
      t.stored <- 0;
      t.lost <- 0)

(* {1 Ambient tracer} *)

let the_global = ref null

let set_global t = the_global := t

let global () = !the_global

let global_enabled () = enabled !the_global

(* {1 Chrome trace export} *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let value_json = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.6f" f
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)

let to_chrome_json spans =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{ \"traceEvents\": [\n";
  List.iteri
    (fun i sp ->
      if i > 0 then Buffer.add_string buf ",\n";
      let args =
        String.concat ", "
          (("\"depth\": " ^ string_of_int sp.depth)
          :: List.map
               (fun (k, v) -> Printf.sprintf "\"%s\": %s" (json_escape k) (value_json v))
               sp.attrs)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "  { \"name\": \"%s\", \"cat\": \"sqp\", \"ph\": \"X\", \"ts\": %.3f, \
            \"dur\": %.3f, \"pid\": 0, \"tid\": %d, \"args\": { %s } }"
           (json_escape sp.name) (sp.start *. 1e6) (sp.duration *. 1e6) sp.tid args))
    spans;
  Buffer.add_string buf "\n], \"displayTimeUnit\": \"ms\" }\n";
  Buffer.contents buf

let write_chrome path spans =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json spans))
