(** Structured tracing: nestable, timed spans with key/value attributes.

    The paper argues about {e counts} — elements generated, stretches
    skipped, pages touched — so the observability layer's job is to make
    those counts visible per query and per operator, not just as global
    totals.  A {e span} is one timed region of execution (a range-search
    merge, one shard's sweep, one plan operator); spans nest, carry
    attributes, and are delivered to a pluggable {e sink}.

    The [Null] sink is the off switch: every entry point checks it first
    and returns before allocating, taking a timestamp, or touching a
    lock, so instrumented code paths cost one branch when tracing is
    disabled (the [test_obs] suite checks the null path allocates
    nothing).  The [Collect] sink keeps finished spans in a bounded ring
    buffer for inspection and for export as a Chrome [trace_event] JSON
    file (load it at [chrome://tracing] or {{:https://ui.perfetto.dev}
    Perfetto} for a flame chart). *)

type value =
  | Int of int
  | Float of float
  | Str of string  (** Attribute values. *)

type attrs = (string * value) list
(** Per-span key/value attributes (elements emitted, skips taken, pages
    hit/missed, ...). *)

type span = {
  name : string;        (** what ran, e.g. ["range_search.skip"] *)
  depth : int;          (** nesting depth at [span_begin] (0 = root) *)
  start : float;        (** seconds on the tracer's clock *)
  duration : float;     (** seconds between begin and end *)
  tid : int;            (** id of the domain that ran the span *)
  attrs : attrs;        (** attributes attached at [span_end] *)
}
(** One finished span, as delivered to sinks. *)

type sink =
  | Null                      (** drop everything; zero overhead *)
  | Collect                   (** keep finished spans in the ring buffer *)
  | Emit of (span -> unit)    (** stream each finished span to a callback *)

type t
(** A tracer: a sink, a clock, a bounded ring of finished spans, and one
    open-span stack per domain (so worker-domain spans nest correctly). *)

val create : ?capacity:int -> sink -> t
(** [create ~capacity sink]: a fresh tracer whose ring keeps the most
    recent [capacity] finished spans (default 4096).
    @raise Invalid_argument if [capacity < 1]. *)

val null : t
(** The shared always-off tracer. *)

val enabled : t -> bool
(** [false] exactly for [Null]-sink tracers. *)

val capacity : t -> int
(** Ring-buffer bound this tracer was created with. *)

val set_clock : t -> (unit -> float) -> unit
(** Replace the time source (default [Unix.gettimeofday]).  Timestamps
    only ever feed durations and trace output, so any monotonic-enough
    seconds counter works; tests inject deterministic clocks here. *)

val span_begin : t -> string -> unit
(** Open a span on the calling domain's stack.  A no-op on a disabled
    tracer. *)

val span_end : ?attrs:(unit -> attrs) -> t -> unit
(** Close the innermost open span of the calling domain, attaching
    [attrs] (the thunk runs only when the tracer is enabled, so building
    the attribute list costs nothing when tracing is off).  A no-op on a
    disabled tracer or when no span is open on this domain. *)

val with_span : ?attrs:(unit -> attrs) -> t -> string -> (unit -> 'a) -> 'a
(** [with_span t name f]: [f ()] inside a [name] span; the span is closed
    (and [attrs] forced) even if [f] raises.  On a disabled tracer this
    is exactly [f ()]. *)

val open_depth : t -> int
(** Open (unclosed) spans on the calling domain — 0 when every
    [span_begin] has been balanced by a [span_end]. *)

val spans : t -> span list
(** Finished spans currently in the ring, oldest first.  At most
    {!capacity} spans; older ones are overwritten. *)

val dropped : t -> int
(** Finished spans overwritten (lost) because the ring was full. *)

val clear : t -> unit
(** Empty the ring and reset {!dropped}; open spans are unaffected. *)

(** {1 The ambient tracer}

    Library instrumentation (storage, range search, merges, plan
    execution) reports to a process-global tracer, [null] by default, so
    enabling observability is one call and disabling it costs one
    branch. *)

val set_global : t -> unit
(** Install [t] as the ambient tracer. *)

val global : unit -> t
(** The ambient tracer ([null] until {!set_global}). *)

val global_enabled : unit -> bool
(** [enabled (global ())], as a single cheap test — the guard every
    instrumented code path uses. *)

(** {1 Chrome trace export} *)

val to_chrome_json : span list -> string
(** The spans as a Chrome [trace_event] JSON document (an object with a
    ["traceEvents"] array of complete — ["ph": "X"] — events; durations
    in microseconds; span attributes under ["args"]). *)

val write_chrome : string -> span list -> unit
(** [write_chrome path spans]: {!to_chrome_json} to a file. *)
