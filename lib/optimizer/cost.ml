module Z = Sqp_zorder

type params = {
  compare : float;
  emit : float;
  sort : float;
  outer : float;
  refine : float;
  decompose : float;
  page_access : float;
  parallel_overhead : float;
  distinct_witnesses : float;
      (* mean join witnesses (shared cover elements) per distinct object
         pair; divides a duplicate-eliminating projection over a join *)
  plan_row : float;
      (* interpretive overhead per row flowing through a plan operator
         (boxed tuples, schema lookups) relative to the packed direct
         kernels — the constant that separates the two range executors *)
}

(* Calibrated against the seeded workloads (see docs/COST_MODEL.md,
   "Calibration"): the unit is one z comparison; everything else is a
   small multiple measured from the counters the executor exposes. *)
let default_params =
  {
    compare = 1.0;
    emit = 2.0;
    sort = 1.0;
    outer = 0.5;
    refine = 3.0;
    decompose = 4.0;
    page_access = 50.0;
    parallel_overhead = 2000.0;
    distinct_witnesses = 6.0;
    plan_row = 8.0;
  }

let log2 x = if x <= 1.0 then 0.0 else log x /. log 2.0

(* {1 Range search} *)

type range_method = Plain | Skip

type range_alternative = {
  label : string;
  method_ : range_method;
  max_level : int option;
  elements : int;
  predicted_rows : float;
  needs_refine : bool;
  cost : float;
}

let cover ~space ?max_level ~lo ~hi () =
  let options =
    { Z.Decompose.default_options with Z.Decompose.max_level }
  in
  Z.Decompose.decompose_box ~options space ~lo ~hi

let box_volume lo hi =
  Array.fold_left ( *. ) 1.0
    (Array.mapi (fun i l -> float_of_int (hi.(i) - l + 1)) lo)

let cover_cells space elements =
  List.fold_left (fun acc e -> acc +. Z.Element.cells space e) 0.0 elements

let predicted_rows_of_cover hist elements =
  let raw =
    List.fold_left (fun acc e -> acc +. Histogram.element_mass hist e) 0.0 elements
  in
  Float.min raw (float_of_int (Histogram.rows hist))

let predicted_range_rows ~space ~hist ?max_level ~lo ~hi () =
  predicted_rows_of_cover hist (cover ~space ?max_level ~lo ~hi ())

let predicted_range_pages ?entries_per_page ?rows ~n_pages ~space ~lo ~hi () =
  (* When ANALYZE has measured how many entries actually fit on a page
     (front-coded pages hold more than the fixed-width assumption), the
     learned density overrides the caller's page count. *)
  let n_pages =
    match (entries_per_page, rows) with
    | Some epp, Some r when epp > 0.0 ->
        if r <= 0 then 0
        else max 1 (int_of_float (ceil (float_of_int r /. epp)))
    | _ -> n_pages
  in
  if n_pages = 0 then 0.0
  else
    let query_extents = Array.mapi (fun i l -> hi.(i) - l + 1) lo in
    Z.Zmath.predicted_range_pages ~n_pages ~side:(Z.Space.side space)
      ~query_extents ()

let plain_cost p ~points ~elements ~rows =
  (p.compare *. (float_of_int points +. float_of_int elements))
  +. (p.decompose *. float_of_int elements)
  +. (p.emit *. rows)

let skip_cost p ~points ~elements ~rows =
  (* Each live element costs ~2 binary searches over P; dead stretches
     of P are never visited.  Conservatively every cover element is
     live. *)
  let searches = float_of_int ((2 * elements) + 2) in
  (p.compare *. (searches *. log2 (float_of_int points +. 1.0)))
  +. (p.compare *. rows)
  +. (p.decompose *. float_of_int elements)
  +. (p.emit *. rows)

let range_alternatives ?(params = default_params) ~space ~hist ~points ~lo ~hi
    () =
  let total = Z.Space.total_bits space in
  let dims = Z.Space.dims space in
  let volume = box_volume lo hi in
  let budgets =
    (* Pixel-exact, then progressively coarser stopping levels (one
       fewer split round per step, i.e. the paper's m = 1, 2, ... low
       bits zeroed per axis). *)
    None
    :: List.filter_map
         (fun m ->
           let l = total - (m * dims) in
           if l > 0 then Some (Some l) else None)
         [ 1; 2; 3; 4 ]
  in
  let alts =
    List.concat_map
      (fun max_level ->
        let elements_list = cover ~space ?max_level ~lo ~hi () in
        let elements = List.length elements_list in
        let rows = predicted_rows_of_cover hist elements_list in
        let needs_refine = cover_cells space elements_list > volume in
        let refine_cost =
          if needs_refine then params.refine *. rows else 0.0
        in
        let level_label =
          match max_level with
          | None -> ""
          | Some l -> Printf.sprintf "/coarse(%d)" (total - l)
        in
        List.map
          (fun method_ ->
            let base =
              match method_ with
              | Plain -> plain_cost params ~points ~elements ~rows
              | Skip -> skip_cost params ~points ~elements ~rows
            in
            {
              label =
                (match method_ with Plain -> "plain" | Skip -> "skip")
                ^ level_label;
              method_;
              max_level;
              elements;
              predicted_rows = rows;
              needs_refine;
              cost = base +. refine_cost;
            })
          [ Plain; Skip ])
      budgets
  in
  List.stable_sort (fun a b -> Float.compare a.cost b.cost) alts

(* {1 Spatial join} *)

let join_pairs hl hr =
  if Histogram.prefix_bits hl <> Histogram.prefix_bits hr then
    invalid_arg "Cost.join_pairs: histograms have different prefix_bits";
  let lbits = float_of_int (Histogram.prefix_bits hl) in
  let contain_p avg_level =
    Float.min 1.0 (Float.pow 2.0 (lbits -. avg_level))
  in
  Histogram.fold_nonempty
    (fun b l_mass l_level acc ->
      let r_mass = Histogram.bucket_mass hr b in
      if r_mass <= 0.0 then acc
      else
        let r_level = Histogram.bucket_avg_level hr b in
        acc +. (l_mass *. r_mass *. (contain_p l_level +. contain_p r_level)))
    hl 0.0

let merge_cost ?(params = default_params) ~left_rows ~right_rows ~pairs () =
  let n = left_rows +. right_rows in
  (params.sort *. n *. log2 n) +. (params.compare *. n) +. (params.emit *. pairs)

let nested_loop_cost ?(params = default_params) ~left_rows ~right_rows ~pairs
    () =
  (params.compare *. left_rows *. right_rows)
  +. (params.outer *. left_rows)
  +. (params.emit *. pairs)

let parallel_merge_cost ?(params = default_params) ~domains ~left_rows
    ~right_rows ~pairs () =
  if domains <= 1 then merge_cost ~params ~left_rows ~right_rows ~pairs ()
  else
    (merge_cost ~params ~left_rows ~right_rows ~pairs ()
    /. float_of_int domains)
    +. (params.parallel_overhead *. float_of_int domains)

let scan_pages_cost ?(params = default_params) ~pages () =
  params.page_access *. float_of_int pages

let plan_path_cost ?(params = default_params) ~points alt =
  (* What the plan executor pays at this alternative's budget: a full
     merge join of the point relation with the cover (the plan's join
     never skips), the exact refine when the cover over-approximates,
     and the per-row interpreter overhead — the direct kernel pays
     [alt.cost] instead, with no such constant.  Method-independent. *)
  let points = float_of_int points in
  let elements = float_of_int alt.elements in
  let rows = alt.predicted_rows in
  merge_cost ~params ~left_rows:points ~right_rows:elements ~pairs:rows ()
  +. (if alt.needs_refine then params.refine *. rows else 0.0)
  +. (params.decompose *. elements)
  +. (params.plan_row *. (points +. elements +. rows))
