(** The cost model: Section 5 of the paper, parameterized by catalog
    statistics.

    Every formula here is derived and worked through in
    [docs/COST_MODEL.md]; the unit tests pin the predictions against
    EXPLAIN ANALYZE actuals within the factors documented there.  Costs
    are in abstract {e work units} where one z-value comparison is 1.0;
    they rank alternatives, they are not wall-clock predictions. *)

type params = {
  compare : float;       (** one z-value comparison (the unit) *)
  emit : float;          (** materializing one output row *)
  sort : float;          (** per item · log2(items) when sorting *)
  outer : float;         (** per outer row of a nested loop *)
  refine : float;        (** re-checking one candidate row exactly *)
  decompose : float;     (** producing one cover element *)
  page_access : float;   (** touching one data page (hit or miss) *)
  parallel_overhead : float;  (** per-domain cost of sharding a merge *)
  distinct_witnesses : float;
      (** mean join witnesses (shared cover elements) per distinct
          object pair; divides a duplicate-eliminating projection over
          a join's output *)
  plan_row : float;
      (** interpretive overhead per row flowing through a plan operator
          (boxed tuples, schema lookups) relative to the packed direct
          kernels; see {!plan_path_cost} *)
}

val default_params : params

(** {1 Range search (Sections 3.3 and 5.1)} *)

type range_method = Plain | Skip

type range_alternative = {
  label : string;             (** e.g. ["skip/coarse(-2)"] *)
  method_ : range_method;
  max_level : int option;     (** decompose budget; [None] = pixel-exact *)
  elements : int;             (** |B|: cover size at that budget *)
  predicted_rows : float;     (** candidate rows out of the merge *)
  needs_refine : bool;        (** cover over-approximates the box *)
  cost : float;
}

val range_alternatives :
  ?params:params ->
  space:Sqp_zorder.Space.t ->
  hist:Histogram.t ->
  points:int ->
  lo:int array ->
  hi:int array ->
  unit ->
  range_alternative list
(** Every costed way to answer one range query over a z-sorted point
    set of [points] entries with z histogram [hist]: the plain and the
    skip merge, each at pixel-exact decomposition and at each coarsened
    budget of the sweep.  Sorted by ascending cost, so the head is the
    optimizer's choice.  Covers are computed by {!Sqp_zorder.Decompose}
    (memoized), masses by {!Histogram.element_mass}. *)

val predicted_range_rows :
  space:Sqp_zorder.Space.t ->
  hist:Histogram.t ->
  ?max_level:int ->
  lo:int array ->
  hi:int array ->
  unit ->
  float
(** Expected rows matching the (possibly coarsened) cover of the box. *)

val predicted_range_pages :
  ?entries_per_page:float ->
  ?rows:int ->
  n_pages:int ->
  space:Sqp_zorder.Space.t ->
  lo:int array ->
  hi:int array ->
  unit ->
  float
(** The paper's 5.3.1 block-model bound on data pages touched by a
    range query over a z-ordered paged relation of [n_pages] pages
    ({!Sqp_zorder.Zmath.predicted_range_pages}); 0 when [n_pages = 0].
    When both [entries_per_page] (the density ANALYZE measured — e.g.
    {!Zindex.avg_leaf_entries} of a front-coded index) and [rows] are
    given, the effective page count is recomputed as
    [ceil (rows / entries_per_page)] instead of trusting [n_pages]:
    compressed pages hold more entries, so the calibrated prediction
    drops accordingly. *)

val plan_path_cost : ?params:params -> points:int -> range_alternative -> float
(** What the {e plan executor} (relational operators over boxed tuples)
    would pay to answer the range query at this alternative's decompose
    budget: the full merge join of the point relation with the cover,
    the exact refine when the cover over-approximates the box, and the
    per-row interpreter overhead [plan_row].  Method-independent (the
    plan's join does not skip).  The server compares the cheapest exact
    alternative's [cost] (the direct kernel) against the cheapest
    budget under this function to pick the access path; see
    docs/COST_MODEL.md, "Two executors". *)

(** {1 Spatial join (Sections 4 and 5)} *)

val join_pairs : Histogram.t -> Histogram.t -> float
(** Expected containment pairs between two element sets, from their
    z-prefix histograms: per bucket [b],
    [l_b * r_b * (min 1 2^(L - ll_b) + min 1 2^(L - lr_b))] where
    [ll_b]/[lr_b] are the buckets' mean element levels — the probability
    that one side's element extends the other's beyond the shared
    [L]-bit prefix, assuming uniformity within the bucket.
    @raise Invalid_argument if the histograms' [prefix_bits] differ. *)

val merge_cost :
  ?params:params -> left_rows:float -> right_rows:float -> pairs:float -> unit -> float
(** Sort both sides, sweep once, emit the pairs. *)

val nested_loop_cost :
  ?params:params -> left_rows:float -> right_rows:float -> pairs:float -> unit -> float
(** Compare every pair of rows, emit the matches. *)

val parallel_merge_cost :
  ?params:params ->
  domains:int ->
  left_rows:float ->
  right_rows:float ->
  pairs:float ->
  unit ->
  float
(** {!merge_cost} with its sort/sweep work divided across [domains]
    and the per-domain sharding overhead added. *)

val scan_pages_cost : ?params:params -> pages:int -> unit -> float
(** Page-access cost of scanning a paged relation once. *)
