module B = Sqp_zorder.Bitstring

type t = {
  prefix_bits : int;
  mass : float array;       (* per-bucket row mass; sums to [rows] *)
  level_sum : float array;  (* per-bucket sum of entry levels, mass-weighted *)
  rows : int;
  total_level : float;
}

let prefix_bits t = t.prefix_bits
let rows t = t.rows
let avg_level t = if t.rows = 0 then 0.0 else t.total_level /. float_of_int t.rows
let bucket_count t = Array.length t.mass

let check_bucket t i =
  if i < 0 || i >= Array.length t.mass then
    invalid_arg "Histogram: bucket index out of range"

let bucket_mass t i =
  check_bucket t i;
  t.mass.(i)

let bucket_avg_level t i =
  check_bucket t i;
  if t.mass.(i) <= 0.0 then avg_level t else t.level_sum.(i) /. t.mass.(i)

(* The bucket range [lo, hi) (as bucket indices) covered by a z value:
   a value of length >= prefix_bits lands in exactly one bucket; a
   shorter value (a coarse element) covers the 2^(prefix_bits - len)
   buckets sharing its prefix. *)
let bucket_range prefix_bits z =
  let len = B.length z in
  if len >= prefix_bits then begin
    let i = B.to_int (B.take z prefix_bits) in
    (i, i + 1)
  end
  else begin
    let base = if len = 0 then 0 else B.to_int z in
    let span = 1 lsl (prefix_bits - len) in
    (base * span, (base * span) + span)
  end

let build ?prefix_bits ~space zs =
  let total = Sqp_zorder.Space.total_bits space in
  let prefix_bits =
    match prefix_bits with
    | None -> min 8 total
    | Some b ->
        if b < 0 then invalid_arg "Histogram.build: prefix_bits < 0";
        min b total
  in
  let n = 1 lsl prefix_bits in
  let mass = Array.make n 0.0 and level_sum = Array.make n 0.0 in
  let rows = ref 0 and total_level = ref 0.0 in
  Seq.iter
    (fun z ->
      incr rows;
      let level = float_of_int (B.length z) in
      total_level := !total_level +. level;
      let lo, hi = bucket_range prefix_bits z in
      let share = 1.0 /. float_of_int (hi - lo) in
      for i = lo to hi - 1 do
        mass.(i) <- mass.(i) +. share;
        level_sum.(i) <- level_sum.(i) +. (share *. level)
      done)
    zs;
  { prefix_bits; mass; level_sum; rows = !rows; total_level = !total_level }

let element_mass t e =
  let lo, hi = bucket_range t.prefix_bits e in
  let level = B.length e in
  if level >= t.prefix_bits then begin
    (* The element is at or below bucket granularity: it covers a
       2^-(level - prefix_bits) fraction of its bucket; entries deeper
       than the element land inside it with that probability (uniformity
       within the bucket), and entries coarser than the element are the
       ones *containing* it, not contained — their containment
       probability is the same expression with the roles swapped, which
       the caller accounts for.  We charge the geometric fraction. *)
    t.mass.(lo) /. float_of_int (1 lsl (level - t.prefix_bits))
  end
  else begin
    let acc = ref 0.0 in
    for i = lo to hi - 1 do
      acc := !acc +. t.mass.(i)
    done;
    !acc
  end

let fold_nonempty f t init =
  let acc = ref init in
  Array.iteri
    (fun i m -> if m > 0.0 then acc := f i m (bucket_avg_level t i) !acc)
    t.mass;
  !acc

let render t =
  let n = Array.length t.mass in
  let peak = Array.fold_left Float.max 0.0 t.mass in
  let glyphs = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#' |] in
  let spark =
    String.init (min n 64) (fun col ->
        (* Collapse buckets into at most 64 columns. *)
        let per = max 1 (n / min n 64) in
        let lo = col * per in
        let m = ref 0.0 in
        for i = lo to min (n - 1) (lo + per - 1) do
          m := Float.max !m t.mass.(i)
        done;
        if peak <= 0.0 then ' '
        else glyphs.(min 7 (int_of_float (ceil (!m /. peak *. 7.0)))))
  in
  Printf.sprintf "%d rows, avg level %.1f, %d buckets [%s]" t.rows
    (avg_level t) n spark
