(** Equi-width z-prefix histograms — the statistic behind every
    selectivity estimate in the optimizer.

    A histogram over a z-valued column partitions z space by the first
    [prefix_bits] bits of each value: bucket [i] covers exactly the
    element whose z value is the [prefix_bits]-bit encoding of [i], so
    the buckets are pairwise disjoint, cover the space, and are
    contiguous in z order.  A column entry shorter than [prefix_bits]
    (a coarse element spanning several buckets) contributes fractional
    mass to every bucket it covers, keeping the total mass equal to the
    row count.

    Besides mass, each bucket tracks the mean bitstring length (element
    level) of its entries — the quantity the containment-join estimate
    of {!Cost} needs (see docs/COST_MODEL.md). *)

type t

val prefix_bits : t -> int
(** Number of leading z bits a bucket discriminates (the histogram has
    [2^prefix_bits] buckets). *)

val rows : t -> int
(** Number of column entries the histogram was built from.  Bucket
    masses sum to this (up to float rounding). *)

val avg_level : t -> float
(** Mean bitstring length over all entries (0 when empty). *)

val build :
  ?prefix_bits:int -> space:Sqp_zorder.Space.t -> Sqp_zorder.Bitstring.t Seq.t -> t
(** [build ~space zs] scans the sequence once.  [prefix_bits] defaults
    to [min 8 (Space.total_bits space)]; it is clamped to that bound.
    @raise Invalid_argument if [prefix_bits < 0]. *)

val bucket_count : t -> int
val bucket_mass : t -> int -> float
(** Mass (possibly fractional) in bucket [i].
    @raise Invalid_argument if [i] is out of range. *)

val bucket_avg_level : t -> int -> float
(** Mean entry level in bucket [i]; {!avg_level} for an empty bucket,
    so estimates degrade gracefully rather than dividing by zero. *)

val element_mass : t -> Sqp_zorder.Element.t -> float
(** Expected number of entries whose z value makes them {e contained
    in} the element [e] (their z value extends [e]'s): the histogram
    mass geometrically inside [e]'s z range, assuming uniformity within
    each bucket.  Coarse entries (shorter than [e]) are counted by the
    fraction of their own range that [e] covers, which matches the
    symmetric containment probability used by {!Cost.join_pairs}. *)

val fold_nonempty : (int -> float -> float -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold_nonempty f t init] folds [f bucket mass avg_level] over the
    non-empty buckets in z order. *)

val render : t -> string
(** A short human-readable sketch: total rows, level stats, and a
    sparkline of bucket masses in z order — shown by the [analyze]
    shell command. *)
