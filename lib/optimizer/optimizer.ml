module P = Sqp_relalg.Plan
module Relation = Sqp_relalg.Relation
module Schema = Sqp_relalg.Schema
module Value = Sqp_relalg.Value
module Stored = Sqp_relalg.Stored
module SStats = Sqp_storage.Stats

type estimate = { est_rows : float; est_pages : float; est_cost : float }

(* Internal per-node info: the estimate plus the z-column histograms
   visible in the node's output schema, keyed by column name — how a
   spatial join higher up finds the distributions of its two inputs. *)
type info = {
  rows : float;
  pages : float;   (* subtree-inclusive predicted page accesses *)
  cost : float;    (* subtree-inclusive predicted work units *)
  hists : (string * Histogram.t) list;
}

let build_hists ~prefix_bits ~space rel =
  let schema = Relation.schema rel in
  List.filter_map
    (fun (n, ty) ->
      if ty <> Value.TZval then None
      else
        let idx = Schema.index schema n in
        let zs =
          List.to_seq (Relation.tuples rel)
          |> Seq.map (fun tu -> Value.to_zval tu.(idx))
        in
        Some (n, Histogram.build ~prefix_bits ~space zs))
    (Schema.attrs schema)

let stats_hists (stats : Stats.t) name =
  match Stats.find stats name with
  | Some rs -> rs.Stats.z_columns
  | None -> []

(* Estimated pairs out of a spatial join, and whether the estimate came
   from histograms (vs the textbook fallback). *)
let join_pairs_est li ~zl ri ~zr =
  match (List.assoc_opt zl li.hists, List.assoc_opt zr ri.hists) with
  | Some hl, Some hr when Histogram.prefix_bits hl = Histogram.prefix_bits hr
    ->
      (Cost.join_pairs hl hr, true)
  | _ -> (0.2 *. Float.max li.rows ri.rows, false)

let rec info ?(params = Cost.default_params) (stats : Stats.t) record plan =
  let prefix_bits = stats.Stats.prefix_bits in
  let space = stats.Stats.space in
  let recur = info ~params stats record in
  let i =
    match plan with
    | P.Scan r ->
        let name = Relation.name r in
        let hists =
          match stats_hists stats name with
          | [] when Relation.cardinality r <= 100_000 ->
              (* Anonymous in-memory input (e.g. a per-query box cover):
                 already materialized, so an exact histogram is cheap. *)
              build_hists ~prefix_bits ~space r
          | hs -> hs
        in
        let rows = float_of_int (Relation.cardinality r) in
        { rows; pages = 0.0; cost = params.Cost.compare *. rows; hists }
    | P.Scan_stored st ->
        let rows =
          match Stats.find stats (Stored.name st) with
          | Some rs -> float_of_int rs.Stats.rows
          | None -> float_of_int (Stored.cardinality st)
        in
        let pages = float_of_int (Stored.pages st) in
        {
          rows;
          pages;
          cost =
            Cost.scan_pages_cost ~params ~pages:(Stored.pages st) ()
            +. (params.Cost.compare *. rows);
          hists = stats_hists stats (Stored.name st);
        }
    | P.Select (_, inner) ->
        let i = recur inner in
        {
          i with
          rows = i.rows /. 3.0;
          cost = i.cost +. (params.Cost.compare *. i.rows);
        }
    | P.Project (names, inner) ->
        let i = recur inner in
        let rec has_join = function
          | P.Spatial_join _ -> true
          | P.Scan _ | P.Scan_stored _ -> false
          | P.Select (_, i) | P.Project (_, i) | P.Project_all (_, i)
          | P.Rename (_, i) | P.Sort (_, i) ->
              has_join i
          | P.Natural_join (a, b) | P.Product (a, b) | P.Union (a, b) ->
              has_join a || has_join b
        in
        let dedup =
          (* A distinct projection over a containment join collapses the
             per-element witnesses of each object pair. *)
          if has_join inner then 1.0 /. params.Cost.distinct_witnesses else 0.9
        in
        {
          rows = i.rows *. dedup;
          pages = i.pages;
          cost = i.cost +. (params.Cost.emit *. i.rows);
          hists = List.filter (fun (n, _) -> List.mem n names) i.hists;
        }
    | P.Project_all (names, inner) ->
        let i = recur inner in
        {
          i with
          cost = i.cost +. (params.Cost.emit *. i.rows);
          hists = List.filter (fun (n, _) -> List.mem n names) i.hists;
        }
    | P.Rename (renames, inner) ->
        let i = recur inner in
        let rename n =
          match List.assoc_opt n renames with Some n' -> n' | None -> n
        in
        { i with hists = List.map (fun (n, h) -> (rename n, h)) i.hists }
    | P.Sort (_, inner) ->
        let i = recur inner in
        let n = i.rows in
        {
          i with
          cost =
            (i.cost +. (params.Cost.sort *. n *. if n <= 1.0 then 0.0 else log n /. log 2.0));
        }
    | P.Natural_join (a, b) ->
        let ia = recur a and ib = recur b in
        let rows = ia.rows *. ib.rows /. Float.max 1.0 (Float.max ia.rows ib.rows) in
        {
          rows;
          pages = ia.pages +. ib.pages;
          cost =
            ia.cost +. ib.cost
            +. (params.Cost.compare *. (ia.rows +. ib.rows))
            +. (params.Cost.emit *. rows);
          hists = ia.hists @ ib.hists;
        }
    | P.Spatial_join { zl; zr; left; right; impl } ->
        let li = recur left and ri = recur right in
        let pairs, _ = join_pairs_est li ~zl ri ~zr in
        let chosen =
          match impl with
          | Some i -> i
          | None -> P.default_join_impl ~left_rows:li.rows ~right_rows:ri.rows
        in
        let own =
          match chosen with
          | P.Merge ->
              Cost.merge_cost ~params ~left_rows:li.rows ~right_rows:ri.rows
                ~pairs ()
          | P.Nested_loop ->
              Cost.nested_loop_cost ~params ~left_rows:li.rows
                ~right_rows:ri.rows ~pairs ()
        in
        {
          rows = pairs;
          pages = li.pages +. ri.pages;
          cost = li.cost +. ri.cost +. own;
          hists = li.hists @ ri.hists;
        }
    | P.Product (a, b) ->
        let ia = recur a and ib = recur b in
        let rows = ia.rows *. ib.rows in
        {
          rows;
          pages = ia.pages +. ib.pages;
          cost = ia.cost +. ib.cost +. (params.Cost.emit *. rows);
          hists = ia.hists @ ib.hists;
        }
    | P.Union (a, b) ->
        let ia = recur a and ib = recur b in
        {
          rows = ia.rows +. ib.rows;
          pages = ia.pages +. ib.pages;
          cost = ia.cost +. ib.cost +. (params.Cost.emit *. (ia.rows +. ib.rows));
          hists = [];
        }
  in
  record plan i;
  i

let estimate ?params stats plan =
  let i = info ?params stats (fun _ _ -> ()) plan in
  { est_rows = i.rows; est_pages = i.pages; est_cost = i.cost }

(* {1 Plan choice} *)

type join_decision = {
  zl : string;
  zr : string;
  left_rows : float;
  right_rows : float;
  predicted_pairs : float;
  cost_merge : float;
  cost_nested : float;
  chosen : P.join_impl;
  commuted : bool;
  heuristic_would_merge : bool;
}

let choose_plan ?(params = Cost.default_params) stats plan =
  let decisions = ref [] in
  let est p = info ~params stats (fun _ _ -> ()) p in
  let rec go plan =
    match plan with
    | P.Scan _ | P.Scan_stored _ -> plan
    | P.Select (p, i) -> P.Select (p, go i)
    | P.Project (n, i) -> P.Project (n, go i)
    | P.Project_all (n, i) -> P.Project_all (n, go i)
    | P.Rename (r, i) -> P.Rename (r, go i)
    | P.Sort (k, i) -> P.Sort (k, go i)
    | P.Natural_join (a, b) -> P.Natural_join (go a, go b)
    | P.Product (a, b) -> P.Product (go a, go b)
    | P.Union (a, b) -> P.Union (go a, go b)
    | P.Spatial_join { zl; zr; left; right; impl = _ } ->
        let left = go left and right = go right in
        let li = est left and ri = est right in
        let pairs, _ = join_pairs_est li ~zl ri ~zr in
        let cost_merge =
          Cost.merge_cost ~params ~left_rows:li.rows ~right_rows:ri.rows ~pairs
            ()
        in
        let cost_nested =
          Cost.nested_loop_cost ~params ~left_rows:li.rows ~right_rows:ri.rows
            ~pairs ()
        in
        (* The commuted nested loop saves the per-outer-row overhead when
           the right side is smaller, but pays a compensating projection
           to restore the column order. *)
        let cost_nested_commuted =
          Cost.nested_loop_cost ~params ~left_rows:ri.rows ~right_rows:li.rows
            ~pairs ()
          +. (params.Cost.emit *. pairs)
        in
        let best = Float.min cost_merge (Float.min cost_nested cost_nested_commuted) in
        let chosen, commuted =
          if best = cost_merge then (P.Merge, false)
          else if best = cost_nested then (P.Nested_loop, false)
          else (P.Nested_loop, true)
        in
        decisions :=
          {
            zl;
            zr;
            left_rows = li.rows;
            right_rows = ri.rows;
            predicted_pairs = pairs;
            cost_merge;
            cost_nested = Float.min cost_nested cost_nested_commuted;
            chosen;
            commuted;
            heuristic_would_merge =
              P.default_join_impl ~left_rows:li.rows ~right_rows:ri.rows
              = P.Merge;
          }
          :: !decisions;
        if commuted then
          let original =
            P.Spatial_join { zl; zr; left; right; impl = None }
          in
          P.Project_all
            ( Schema.names (P.schema original),
              P.Spatial_join
                { zl = zr; zr = zl; left = right; right = left;
                  impl = Some chosen } )
        else P.Spatial_join { zl; zr; left; right; impl = Some chosen }
  in
  let chosen = go (P.optimize plan) in
  (chosen, List.rev !decisions)

let choose_parallelism ?(params = Cost.default_params) stats ~max_domains plan
    =
  if max_domains <= 1 then 1
  else begin
    let seq = ref 0.0 and par = ref 0.0 in
    let est p = info ~params stats (fun _ _ -> ()) p in
    let rec go = function
      | P.Scan _ | P.Scan_stored _ -> ()
      | P.Select (_, i) | P.Project (_, i) | P.Project_all (_, i)
      | P.Rename (_, i) | P.Sort (_, i) ->
          go i
      | P.Natural_join (a, b) | P.Product (a, b) | P.Union (a, b) ->
          go a;
          go b
      | P.Spatial_join { zl; zr; left; right; impl } ->
          go left;
          go right;
          let li = est left and ri = est right in
          let chosen =
            match impl with
            | Some i -> i
            | None -> P.default_join_impl ~left_rows:li.rows ~right_rows:ri.rows
          in
          if chosen = P.Merge then begin
            let pairs, _ = join_pairs_est li ~zl ri ~zr in
            seq :=
              !seq
              +. Cost.merge_cost ~params ~left_rows:li.rows ~right_rows:ri.rows
                   ~pairs ();
            par :=
              !par
              +. Cost.parallel_merge_cost ~params ~domains:max_domains
                   ~left_rows:li.rows ~right_rows:ri.rows ~pairs ()
          end
    in
    go plan;
    if !seq > 0.0 && !par < !seq then max_domains else 1
  end

(* {1 EXPLAIN integration} *)

let estimates_table ?params stats plan =
  let tbl = ref [] in
  ignore (info ?params stats (fun p i -> tbl := (p, i) :: !tbl) plan);
  !tbl

let render_estimate i =
  let pages =
    if i.pages > 0.0 then Printf.sprintf " pages=%.0f" i.pages else ""
  in
  Printf.sprintf "[cost=%.0f rows=%.0f%s]" i.cost i.rows pages

let cost_column ?params stats root =
  let tbl = estimates_table ?params stats root in
  fun node ->
    match List.find_opt (fun (p, _) -> p == node) tbl with
    | Some (_, i) -> render_estimate i
    | None -> ""

let explain ?parallelism ?params stats plan =
  P.explain ?parallelism ~annotate:(cost_column ?params stats plan) plan

(* {1 Predicted vs. actual} *)

type comparison_row = {
  op : string;
  predicted_rows : float;
  actual_rows : int;
  predicted_pages : float;
  actual_pages : int;
}

let page_accesses (s : SStats.t) = s.SStats.pool_hits + s.SStats.pool_misses

let compare_analysis ?params stats plan (report : P.node_report) =
  let tbl = estimates_table ?params stats plan in
  let est_of node =
    match List.find_opt (fun (p, _) -> p == node) tbl with
    | Some (_, i) -> i
    | None -> { rows = 0.0; pages = 0.0; cost = 0.0; hists = [] }
  in
  let rows = ref [] in
  let rec go plan (r : P.node_report) =
    let i = est_of plan in
    rows :=
      {
        op = r.P.op;
        predicted_rows = i.rows;
        actual_rows = r.P.rows;
        predicted_pages = i.pages;
        actual_pages = page_accesses (P.sum_pages r);
      }
      :: !rows;
    let children_plans =
      match plan with
      | P.Scan _ | P.Scan_stored _ -> []
      | P.Select (_, i) | P.Project (_, i) | P.Project_all (_, i)
      | P.Rename (_, i) | P.Sort (_, i) ->
          [ i ]
      | P.Natural_join (a, b) | P.Product (a, b) | P.Union (a, b) -> [ a; b ]
      | P.Spatial_join { left; right; _ } -> [ left; right ]
    in
    List.iter2 go children_plans r.P.children
  in
  go plan report;
  List.rev !rows

let ratio pred act =
  if act = 0 then if pred <= 0.5 then 1.0 else Float.infinity
  else pred /. float_of_int act

let render_comparison rows =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "predicted vs actual:\n";
  Printf.bprintf buf "  %-44s %10s %8s %6s %10s %8s %6s\n" "operator"
    "rows-pred" "rows-act" "ratio" "pages-pred" "pages-act" "ratio";
  List.iter
    (fun r ->
      let short =
        if String.length r.op <= 44 then r.op else String.sub r.op 0 44
      in
      Printf.bprintf buf "  %-44s %10.0f %8d %6.2f %10.0f %8d %6.2f\n" short
        r.predicted_rows r.actual_rows
        (ratio r.predicted_rows r.actual_rows)
        r.predicted_pages r.actual_pages
        (ratio r.predicted_pages r.actual_pages))
    rows;
  Buffer.contents buf
