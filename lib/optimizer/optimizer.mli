(** The cost-based optimizer: estimate, choose, explain, validate.

    Given catalog statistics ({!Stats.analyze}) and a logical plan,
    this module (1) estimates per-operator rows, page accesses, and
    work units with the {!Cost} formulas, (2) rewrites the plan to the
    cheapest equivalent — forcing each spatial join's implementation
    and, when profitable, commuting its inputs — (3) renders the
    predictions as the EXPLAIN cost column, and (4) reconciles them
    against EXPLAIN ANALYZE actuals.  Rewrites preserve the result as
    a multiset of rows (the differential tests pin this); forced
    choices are marked [(forced)] by {!Sqp_relalg.Plan.explain}.

    The formulas and their error factors are documented in
    docs/COST_MODEL.md; the EXPLAIN output grammar in docs/EXPLAIN.md. *)

type estimate = {
  est_rows : float;   (** predicted output rows of the operator *)
  est_pages : float;  (** predicted page accesses, subtree-inclusive *)
  est_cost : float;   (** predicted work units, subtree-inclusive *)
}

val estimate : ?params:Cost.params -> Stats.t -> Sqp_relalg.Plan.t -> estimate
(** Root estimate; histogram-based where the statistics cover the
    plan's leaves and z columns, textbook fallbacks elsewhere. *)

type join_decision = {
  zl : string;
  zr : string;
  left_rows : float;
  right_rows : float;
  predicted_pairs : float;
  cost_merge : float;
  cost_nested : float;
  chosen : Sqp_relalg.Plan.join_impl;
  commuted : bool;
      (** inputs were swapped (a compensating projection restores the
          column order, so output rows are unchanged as a multiset) *)
  heuristic_would_merge : bool;
      (** what the default size heuristic would have picked *)
}

val choose_plan :
  ?params:Cost.params ->
  Stats.t ->
  Sqp_relalg.Plan.t ->
  Sqp_relalg.Plan.t * join_decision list
(** Push-down-optimize, then force every spatial join to its cheaper
    implementation (decisions reported outside-in).  The returned plan
    returns exactly the same rows (as a multiset) as the input plan. *)

val choose_parallelism :
  ?params:Cost.params -> Stats.t -> max_domains:int -> Sqp_relalg.Plan.t -> int
(** 1, or [max_domains] when sharding the plan's merge joins across
    the pool is predicted to beat their sequential cost including the
    sharding overhead. *)

val cost_column :
  ?params:Cost.params -> Stats.t -> Sqp_relalg.Plan.t -> Sqp_relalg.Plan.t -> string
(** [cost_column stats root node] is the EXPLAIN cost annotation for
    [node] as an operator of [root] (the root fixes nothing today but
    keeps the signature stable for context-dependent costs):
    ["\[cost=... rows=... pages=...\]"] — pass partially applied as
    {!Sqp_relalg.Plan.explain}'s [annotate]. *)

val explain :
  ?parallelism:int -> ?params:Cost.params -> Stats.t -> Sqp_relalg.Plan.t -> string
(** {!Sqp_relalg.Plan.explain} with the cost column appended to every
    operator line. *)

(** {1 Predicted vs. actual} *)

type comparison_row = {
  op : string;            (** operator label, as reported by ANALYZE *)
  predicted_rows : float;
  actual_rows : int;
  predicted_pages : float;   (** subtree-inclusive, like [est_pages] *)
  actual_pages : int;        (** subtree-inclusive page accesses *)
}

val compare_analysis :
  ?params:Cost.params ->
  Stats.t ->
  Sqp_relalg.Plan.t ->
  Sqp_relalg.Plan.node_report ->
  comparison_row list
(** Walk the plan and its measured report in lockstep (they have the
    same shape) and pair every operator's predictions with its actuals,
    pre-order.  Actual pages count buffer-pool hits plus misses. *)

val render_comparison : comparison_row list -> string
(** The predicted-vs-actual table EXPLAIN ANALYZE appends when
    statistics are available: one row per operator with the rows and
    pages ratios. *)
