module R = Sqp_relalg
module M = Sqp_obs.Metrics

type relation_stats = {
  rel_name : string;
  rows : int;
  pages : int;
  tuples_per_page : int;
  z_columns : (string * Histogram.t) list;
}

type t = {
  space : Sqp_zorder.Space.t;
  prefix_bits : int;
  relations : (string * relation_stats) list;
  live_rows : (string * int) list;
}

(* The paged leaves of a plan, for page/tuples-per-page accounting.
   A plan whose output is exactly one stored scan (possibly under
   projections) reports that relation's page shape; anything else is
   treated as memory-resident (its pages are charged to its own leaves
   when *that* relation is also analyzed). *)
let rec paged_leaf = function
  | R.Plan.Scan_stored st -> Some st
  | R.Plan.Project (_, p) | R.Plan.Project_all (_, p) | R.Plan.Rename (_, p) ->
      paged_leaf p
  | _ -> None

let analyze_one ~prefix_bits ~space (name, plan) =
  let rel = R.Plan.run plan in
  let schema = R.Relation.schema rel in
  let z_names =
    List.filter_map
      (fun (n, ty) -> if ty = R.Value.TZval then Some n else None)
      (R.Schema.attrs schema)
  in
  let z_columns =
    List.map
      (fun col ->
        let idx = R.Schema.index schema col in
        let zs =
          List.to_seq (R.Relation.tuples rel)
          |> Seq.map (fun tu -> R.Value.to_zval tu.(idx))
        in
        (col, Histogram.build ~prefix_bits ~space zs))
      z_names
  in
  let pages, tuples_per_page =
    match paged_leaf plan with
    | Some st -> (R.Stored.pages st, R.Stored.tuples_per_page st)
    | None -> (0, 0)
  in
  {
    rel_name = name;
    rows = R.Relation.cardinality rel;
    pages;
    tuples_per_page;
    z_columns;
  }

let analyze ?prefix_bits ?(lives = []) ~space named_plans =
  let prefix_bits =
    match prefix_bits with
    | None -> min 8 (Sqp_zorder.Space.total_bits space)
    | Some b ->
        if b < 0 then invalid_arg "Stats.analyze: prefix_bits < 0";
        min b (Sqp_zorder.Space.total_bits space)
  in
  let m = M.global () in
  let relations =
    List.map
      (fun (name, plan) ->
        let rs = analyze_one ~prefix_bits ~space (name, plan) in
        M.add (M.counter m "optimizer.analyze.relations") 1;
        M.add (M.counter m "optimizer.analyze.rows") rs.rows;
        M.add
          (M.counter m "optimizer.analyze.histograms")
          (List.length rs.z_columns);
        (name, rs))
      named_plans
  in
  { space; prefix_bits; relations; live_rows = lives }

let find t name = List.assoc_opt name t.relations

let find_z t col =
  List.find_map
    (fun (_, rs) ->
      match List.assoc_opt col rs.z_columns with
      | Some h -> Some (rs, h)
      | None -> None)
    t.relations

let summary t =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "statistics: %d relations, histogram prefix %d bits\n"
    (List.length t.relations) t.prefix_bits;
  List.iter
    (fun (name, rs) ->
      Printf.bprintf buf "  %-4s %7d rows%s\n" name rs.rows
        (if rs.pages > 0 then
           Printf.sprintf ", %d pages (%d tuples/page)" rs.pages
             rs.tuples_per_page
         else ", memory-resident");
      List.iter
        (fun (col, h) ->
          Printf.bprintf buf "       %s: %s\n" col (Histogram.render h))
        rs.z_columns)
    t.relations;
  List.iter
    (fun (name, n) -> Printf.bprintf buf "  live %-4s %7d rows\n" name n)
    t.live_rows;
  Buffer.contents buf
