(** Catalog statistics: the ANALYZE pass.

    [analyze] executes each named plan once, counts its rows, and builds
    a z-prefix {!Histogram} for every z-valued column.  The result is a
    point-in-time snapshot the optimizer costs against; the server
    stores it in the catalog and refreshes it on the [analyze] wire
    frame (see {!Sqp_server.Protocol}).  Collection totals are mirrored
    to the ambient {!Sqp_obs.Metrics} registry under [optimizer.analyze.*]. *)

type relation_stats = {
  rel_name : string;
  rows : int;
  pages : int;             (** data pages when paged, 0 when memory-resident *)
  tuples_per_page : int;   (** 0 when memory-resident *)
  z_columns : (string * Histogram.t) list;
      (** one histogram per z-valued column, in schema order *)
}

type t = {
  space : Sqp_zorder.Space.t;
  prefix_bits : int;       (** histogram resolution used throughout *)
  relations : (string * relation_stats) list;  (** in analysis order *)
  live_rows : (string * int) list;
      (** row counts of live tables at analysis time *)
}

val analyze :
  ?prefix_bits:int ->
  ?lives:(string * int) list ->
  space:Sqp_zorder.Space.t ->
  (string * Sqp_relalg.Plan.t) list ->
  t
(** Run every plan and collect statistics.  [prefix_bits] defaults as in
    {!Histogram.build}.  Cost: one full execution of each plan — ANALYZE
    is explicit, never implicit. *)

val find : t -> string -> relation_stats option
(** Stats for a relation by catalog name. *)

val find_z : t -> string -> (relation_stats * Histogram.t) option
(** Stats owning a z column of the given {e column} name (e.g. ["zr"]
    finds relation ["R"]) — how join costing locates the histograms for
    a [Spatial_join]'s two sides without resolving plan leaves. *)

val summary : t -> string
(** Multi-line human-readable report (one line per relation plus each
    histogram's {!Histogram.render} sketch) — the [analyze] shell
    command's response body. *)
