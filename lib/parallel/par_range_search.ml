module Z = Sqp_zorder
module B = Z.Bitstring

type 'a prepared = {
  space : Z.Space.t;
  zs : B.t array;            (* sorted *)
  pts : (Sqp_geom.Point.t * 'a) array; (* aligned with zs *)
  pz : Z.Zpacked.t array option;
      (* zs packed into words when the space fits Zpacked.max_bits;
         None keeps every shard merge on the bitstring reference path *)
  keys : int array option;
      (* single-word keys for pz when the whole space fits one 63-bit
         word: shard merges then run over flat int arrays *)
}

let prepare space points =
  let tagged =
    Array.map (fun (p, v) -> (Z.Interleave.shuffle space p, (p, v))) points
  in
  Array.sort (fun (a, _) (b, _) -> B.compare a b) tagged;
  let zs = Array.map fst tagged in
  let pz = if Z.Zpacked.fits_space space then Z.Zpacked.pack_array zs else None in
  {
    space;
    zs;
    pts = Array.map snd tagged;
    pz;
    keys = Option.bind pz Z.Zkernel.uniform_word_keys;
  }

let prepared_length p = Array.length p.zs

let space p = p.space

type counters = {
  point_steps : int;
  element_steps : int;
  point_jumps : int;
  element_jumps : int;
  comparisons : int;
  shards_searched : int;
}

let no_counters =
  {
    point_steps = 0;
    element_steps = 0;
    point_jumps = 0;
    element_jumps = 0;
    comparisons = 0;
    shards_searched = 0;
  }

let add_counters a b =
  {
    point_steps = a.point_steps + b.point_steps;
    element_steps = a.element_steps + b.element_steps;
    point_jumps = a.point_jumps + b.point_jumps;
    element_jumps = a.element_jumps + b.element_jumps;
    comparisons = a.comparisons + b.comparisons;
    shards_searched = a.shards_searched + b.shards_searched;
  }

type range = { rlo : B.t; rhi : B.t }

let box_ranges space box =
  let total = Z.Space.total_bits space in
  let lo = Sqp_geom.Box.lo box and hi = Sqp_geom.Box.hi box in
  let els = Z.Decompose.decompose_box space ~lo ~hi in
  Array.of_list
    (List.map
       (fun e -> { rlo = B.pad_to e total false; rhi = B.pad_to e total true })
       els)

(* First index in [zs[lo, hi)] with zs.(i) >= z. *)
let lower_bound_z zs ~lo ~hi z comparisons =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    incr comparisons;
    if B.compare zs.(mid) z < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* First index in [ranges] with rhi >= z. *)
let first_live_range ranges z comparisons =
  let lo = ref 0 and hi = ref (Array.length ranges) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    incr comparisons;
    if B.compare ranges.(mid).rhi z < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* The skip-merge of Range_search.search_skip, restricted to the point
   slice [i0, i1) and the given (clipped) ranges.  [merge_slice] proper
   dispatches to the packed word kernel when the prepared snapshot
   carries packed z values; [merge_slice_reference] is the bitstring
   path.  Both produce identical rows and counters
   (Zkernel.range_skip mirrors this loop step for step). *)
let merge_slice_reference zs pts ~i0 ~i1 ranges =
  let nb = Array.length ranges in
  let point_steps = ref 0 and element_steps = ref 0 in
  let point_jumps = ref 0 and element_jumps = ref 0 in
  let comparisons = ref 0 in
  let acc = ref [] in
  let i = ref i0 and j = ref 0 in
  if i1 > i0 && nb > 0 then begin
    i := lower_bound_z zs ~lo:i0 ~hi:i1 ranges.(0).rlo comparisons;
    incr point_jumps
  end;
  while !i < i1 && !j < nb do
    let z = zs.(!i) and r = ranges.(!j) in
    incr comparisons;
    if B.compare z r.rlo < 0 then begin
      i := lower_bound_z zs ~lo:!i ~hi:i1 r.rlo comparisons;
      incr point_jumps
    end
    else begin
      incr comparisons;
      if B.compare z r.rhi > 0 then begin
        j := first_live_range ranges z comparisons;
        incr element_jumps
      end
      else begin
        acc := pts.(!i) :: !acc;
        incr i;
        incr point_steps
      end
    end
  done;
  ( List.rev !acc,
    {
      point_steps = !point_steps;
      element_steps = !element_steps;
      point_jumps = !point_jumps;
      element_jumps = !element_jumps;
      comparisons = !comparisons;
      shards_searched = 1;
    } )

let pack_exn b =
  match Z.Zpacked.of_bitstring b with
  | Some p -> p
  | None -> assert false (* only called when the space fits *)

let merge_slice ?pz ?keys zs pts ~i0 ~i1 ranges =
  match pz with
  | None -> merge_slice_reference zs pts ~i0 ~i1 ranges
  | Some pz ->
      let acc = ref [] in
      let emit i = acc := pts.(i) :: !acc in
      let c =
        match keys with
        | Some ks ->
            (* Shard-clipped bounds stay full length, so their word keys
               compare exactly like the padded packed pairs would. *)
            let kranges =
              {
                Z.Zkernel.klo =
                  Array.map (fun r -> Z.Zkernel.word_key (pack_exn r.rlo)) ranges;
                khi =
                  Array.map (fun r -> Z.Zkernel.word_key (pack_exn r.rhi)) ranges;
              }
            in
            Z.Zkernel.range_skip_keys ~i0 ~i1 ks kranges emit
        | None ->
            let pranges =
              Array.map
                (fun r -> { Z.Zkernel.rlo = pack_exn r.rlo; rhi = pack_exn r.rhi })
                ranges
            in
            Z.Zkernel.range_skip ~i0 ~i1 pz pranges emit
      in
      ( List.rev !acc,
        {
          point_steps = c.Z.Zkernel.point_steps;
          element_steps = c.element_steps;
          point_jumps = c.point_jumps;
          element_jumps = c.element_jumps;
          comparisons = c.comparisons;
          shards_searched = 1;
        } )

let bmin a b = if B.compare a b <= 0 then a else b
let bmax a b = if B.compare a b >= 0 then a else b

(* Query ranges intersected with one shard's z interval.  Ranges are
   ascending and disjoint, so the overlapping ones are contiguous. *)
let clip_ranges ranges (shard : Shard.t) =
  let nb = Array.length ranges in
  let first =
    let lo = ref 0 and hi = ref nb in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if B.compare ranges.(mid).rhi shard.zlo < 0 then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  let out = ref [] in
  let k = ref first in
  while !k < nb && B.compare ranges.(!k).rlo shard.zhi <= 0 do
    let r = ranges.(!k) in
    out := { rlo = bmax r.rlo shard.zlo; rhi = bmin r.rhi shard.zhi } :: !out;
    incr k
  done;
  Array.of_list (List.rev !out)

let clip prep box = Sqp_geom.Box.clip box ~side:(Z.Space.side prep.space)

type shard_counters = { shard : int; shard_rows : int; shard_counters : counters }

let search_detailed ?shard_bits pool prep box =
  match clip prep box with
  | None -> ([], no_counters, [])
  | Some box ->
      let bits =
        match shard_bits with
        | Some b -> b
        | None -> Shard.default_bits prep.space ~domains:(Pool.domains pool)
      in
      let ranges = box_ranges prep.space box in
      let shards = Shard.make prep.space ~bits in
      let n = Array.length prep.zs in
      let nshards = Array.length shards in
      (* Slice boundaries: points of shard i live in [bounds.(i), bounds.(i+1)). *)
      let dummy = ref 0 in
      let bounds =
        Array.init (nshards + 1) (fun i ->
            if i = nshards then n
            else lower_bound_z prep.zs ~lo:0 ~hi:n shards.(i).zlo dummy)
      in
      let tasks =
        Array.to_list shards
        |> List.filter_map (fun (sh : Shard.t) ->
               let clipped = clip_ranges ranges sh in
               if Array.length clipped = 0 then None
               else
                 Some
                   (fun () ->
                     let run () =
                       merge_slice ?pz:prep.pz ?keys:prep.keys prep.zs prep.pts
                         ~i0:bounds.(sh.index) ~i1:bounds.(sh.index + 1) clipped
                     in
                     if not (Sqp_obs.Trace.global_enabled ()) then
                       (sh.index, run ())
                     else begin
                       let tracer = Sqp_obs.Trace.global () in
                       Sqp_obs.Trace.span_begin tracer "par_range_search.shard";
                       let ((rows, c) as r) = run () in
                       Sqp_obs.Trace.span_end
                         ~attrs:(fun () ->
                           Sqp_obs.Trace.
                             [
                               ("shard", Int sh.index);
                               ("rows", Int (List.length rows));
                               ("comparisons", Int c.comparisons);
                             ])
                         tracer;
                       (sh.index, r)
                     end))
      in
      let per_shard = Pool.run pool tasks in
      let results = List.concat_map (fun (_, (rows, _)) -> rows) per_shard in
      let counters =
        List.fold_left
          (fun acc (_, (_, c)) -> add_counters acc c)
          no_counters per_shard
      in
      let reports =
        List.map
          (fun (i, (rows, c)) ->
            { shard = i; shard_rows = List.length rows; shard_counters = c })
          per_shard
      in
      (results, counters, reports)

let search ?shard_bits pool prep box =
  let run () =
    let results, counters, _ = search_detailed ?shard_bits pool prep box in
    (results, counters)
  in
  if not (Sqp_obs.Trace.global_enabled ()) then run ()
  else begin
    let tracer = Sqp_obs.Trace.global () in
    Sqp_obs.Trace.span_begin tracer "par_range_search";
    let ((rows, c) as r) = run () in
    Sqp_obs.Trace.span_end
      ~attrs:(fun () ->
        Sqp_obs.Trace.
          [
            ("rows", Int (List.length rows));
            ("comparisons", Int c.comparisons);
            ("shards_searched", Int c.shards_searched);
          ])
      tracer;
    let m = Sqp_obs.Metrics.global () in
    let bump suffix n =
      Sqp_obs.Metrics.add (Sqp_obs.Metrics.counter m ("par_range_search." ^ suffix)) n
    in
    bump "queries" 1;
    bump "rows" (List.length rows);
    bump "comparisons" c.comparisons;
    bump "skips" (c.point_jumps + c.element_jumps);
    bump "shards_searched" c.shards_searched;
    r
  end

let search_one prep box =
  match clip prep box with
  | None -> ([], no_counters)
  | Some box ->
      let ranges = box_ranges prep.space box in
      merge_slice ?pz:prep.pz ?keys:prep.keys prep.zs prep.pts ~i0:0
        ~i1:(Array.length prep.zs) ranges

let search_batch pool prep boxes = Pool.map pool (search_one prep) boxes
