(** Domain-parallel range search: the Section 3.3 skip-merge, fanned out
    over z shards.

    The query box is decomposed into z-ordered elements once; each shard
    then merges its slice of the point array against the query ranges
    clipped to its z interval.  Because the shards partition the z range
    and both inputs are z-sorted, concatenating the per-shard outputs in
    shard order reproduces the sequential result {e exactly} — same
    points, same (z) order — for any number of domains.  The differential
    suite in [test/test_differential.ml] enforces this. *)

type 'a prepared
(** A z-sorted, shareable snapshot of the point set: built once, then
    searched concurrently by any number of shards and queries. *)

val prepare :
  Sqp_zorder.Space.t -> (Sqp_geom.Point.t * 'a) array -> 'a prepared
(** Shuffle each point to its z value and sort — the same preprocessing
    step as [Sqp_core.Range_search.prepare]. *)

val prepared_length : 'a prepared -> int
(** Number of points in the snapshot. *)

val space : 'a prepared -> Sqp_zorder.Space.t
(** The space the points were prepared in. *)

type counters = {
  point_steps : int;
  element_steps : int;
  point_jumps : int;
  element_jumps : int;
  comparisons : int;
  shards_searched : int;  (** shard merges actually run (parallel tasks) *)
}
(** Work counters summed over all shards (deterministic: independent of
    scheduling). *)

val search :
  ?shard_bits:int ->
  Pool.t ->
  'a prepared ->
  Sqp_geom.Box.t ->
  (Sqp_geom.Point.t * 'a) list * counters
(** All points inside the (inclusive, clipped) box, in z order.
    [shard_bits] defaults to {!Shard.default_bits} for the pool's size;
    [~shard_bits:0] is a single-shard (sequential) merge. *)

type shard_counters = {
  shard : int;              (** shard index, in z order *)
  shard_rows : int;         (** points this shard reported *)
  shard_counters : counters;  (** this shard's own work *)
}
(** One shard merge's share of the work — the per-shard view EXPLAIN
    ANALYZE tabulates. *)

val search_detailed :
  ?shard_bits:int ->
  Pool.t ->
  'a prepared ->
  Sqp_geom.Box.t ->
  (Sqp_geom.Point.t * 'a) list * counters * shard_counters list
(** {!search}, additionally returning one {!shard_counters} per shard
    merge that ran, in z (= output) order. *)

val search_batch :
  Pool.t ->
  'a prepared ->
  Sqp_geom.Box.t array ->
  ((Sqp_geom.Point.t * 'a) list * counters) array
(** Heavy-traffic mode: one task per query, each a whole-space sequential
    merge, results in query order.  This is the throughput shape the
    speedup bench measures. *)
