module B = Sqp_zorder.Bitstring

type stats = {
  pairs : int;
  comparisons : int;
  sorted_items : int;
  shards_swept : int;
  spanners : int;
}

type ('a, 'b) arrival = L of 'a | R of 'b

let sort_items comparisons items =
  List.stable_sort
    (fun (za, _) (zb, _) ->
      incr comparisons;
      B.compare za zb)
    items

(* One containment sweep (the body of Zmerge.pairs), with the stacks
   optionally pre-seeded by spanners that contain the whole z interval
   being swept — seeds are prefixes of every arriving z, so they are
   never popped and pair with every arrival of the opposite side.  Each
   emitted pair is tagged with the z of the arrival that produced it. *)
let sweep ~seed_l ~seed_r items =
  let comparisons = ref 0 in
  let stack_l = ref seed_l and stack_r = ref seed_r in
  let pop_closed z stack =
    let rec go = function
      | (ze, _) :: rest
        when (incr comparisons;
              not (B.is_prefix ze z)) ->
          go rest
      | kept -> kept
    in
    stack := go !stack
  in
  let out = ref [] and pairs = ref 0 in
  List.iter
    (fun (z, arr) ->
      pop_closed z stack_l;
      pop_closed z stack_r;
      match arr with
      | L a ->
          List.iter
            (fun (_, b) ->
              incr pairs;
              out := (z, (a, b)) :: !out)
            !stack_r;
          stack_l := (z, a) :: !stack_l
      | R b ->
          List.iter
            (fun (_, a) ->
              incr pairs;
              out := (z, (a, b)) :: !out)
            !stack_l;
          stack_r := (z, b) :: !stack_r)
    items;
  (List.rev !out, !pairs, !comparisons)

let partition ~bits items =
  let buckets = Array.make (1 lsl bits) [] in
  let spanners = ref [] in
  List.iter
    (fun ((z, _) as it) ->
      if Shard.spans ~bits z then spanners := it :: !spanners
      else begin
        let i = Shard.shard_of_z ~bits z in
        buckets.(i) <- it :: buckets.(i)
      end)
    items;
  (Array.map List.rev buckets, List.rev !spanners)

let default_bits ~domains =
  if domains <= 1 then 0
  else begin
    let rec ceil_log2 k n = if 1 lsl k >= n then k else ceil_log2 (k + 1) n in
    min Shard.max_bits (ceil_log2 0 (4 * domains))
  end

type shard_report = { shard : int; items : int; pairs : int; comparisons : int }

let pairs_detailed ?shard_bits pool left right =
  let bits =
    match shard_bits with
    | Some b ->
        if b < 0 || b > Shard.max_bits then
          invalid_arg "Par_spatial_join.pairs: shard_bits out of range";
        b
    | None -> default_bits ~domains:(Pool.domains pool)
  in
  let nshards = 1 lsl bits in
  let buckets_l, spanners_l = partition ~bits left in
  let buckets_r, spanners_r = partition ~bits right in
  (* The spanner pass finds every pair whose later (longer) element is
     itself a spanner; both sides of such a pair are spanners. *)
  let span_comparisons = ref 0 in
  let span_items =
    sort_items span_comparisons
      (List.map (fun (z, a) -> (z, L a)) spanners_l
      @ List.map (fun (z, b) -> (z, R b)) spanners_r)
  in
  let span_out, span_pairs, span_sweep_cmp = sweep ~seed_l:[] ~seed_r:[] span_items in
  (* Seeds are pushed in ascending z order so each stack ends newest
     (longest prefix) first, exactly as the sequential sweep leaves it. *)
  let sorted_spanners_l = sort_items (ref 0) spanners_l in
  let sorted_spanners_r = sort_items (ref 0) spanners_r in
  let seeds_for prefix spanners =
    List.fold_left
      (fun st ((z, _) as it) -> if B.is_prefix z prefix then it :: st else st)
      [] spanners
  in
  let tasks =
    List.init nshards (fun i -> i)
    |> List.filter_map (fun i ->
           if buckets_l.(i) = [] && buckets_r.(i) = [] then None
           else
             Some
               (fun () ->
                 let run () =
                   let prefix = B.of_int i ~width:bits in
                   let comparisons = ref 0 in
                   let items =
                     sort_items comparisons
                       (List.map (fun (z, a) -> (z, L a)) buckets_l.(i)
                       @ List.map (fun (z, b) -> (z, R b)) buckets_r.(i))
                   in
                   let seed_l = seeds_for prefix sorted_spanners_l in
                   let seed_r = seeds_for prefix sorted_spanners_r in
                   let out, pairs, sweep_cmp = sweep ~seed_l ~seed_r items in
                   (i, out, pairs, !comparisons + sweep_cmp, List.length items)
                 in
                 if not (Sqp_obs.Trace.global_enabled ()) then run ()
                 else begin
                   let tracer = Sqp_obs.Trace.global () in
                   Sqp_obs.Trace.span_begin tracer "par_join.shard";
                   let ((_, _, pairs, cmp, items) as r) = run () in
                   Sqp_obs.Trace.span_end
                     ~attrs:(fun () ->
                       Sqp_obs.Trace.
                         [
                           ("shard", Int i);
                           ("pairs", Int pairs);
                           ("comparisons", Int cmp);
                           ("items", Int items);
                         ])
                     tracer;
                   r
                 end))
  in
  let per_shard = Pool.run pool tasks in
  (* Re-interleave on the emission key.  Keys collide only within one
     sweep's output (shards have disjoint prefixes; spanner keys are
     shorter than resident keys), so a stable sort restores the global
     sequential emission order. *)
  let merge_comparisons = ref 0 in
  let tagged =
    span_out @ List.concat_map (fun (_, out, _, _, _) -> out) per_shard
  in
  let ordered =
    List.stable_sort
      (fun (ka, _) (kb, _) ->
        incr merge_comparisons;
        B.compare ka kb)
      tagged
  in
  let pairs_total =
    List.fold_left (fun acc (_, _, p, _, _) -> acc + p) span_pairs per_shard
  in
  let comparisons_total =
    List.fold_left
      (fun acc (_, _, _, c, _) -> acc + c)
      (!span_comparisons + span_sweep_cmp + !merge_comparisons)
      per_shard
  in
  let sorted_items_total =
    List.fold_left
      (fun acc (_, _, _, _, n) -> acc + n)
      (List.length span_items) per_shard
  in
  let reports =
    (* The spanner/spanner pass reports as pseudo-shard -1 when it did
       any work; real shards follow in z order. *)
    let span_report =
      if span_items = [] then []
      else
        [
          {
            shard = -1;
            items = List.length span_items;
            pairs = span_pairs;
            comparisons = !span_comparisons + span_sweep_cmp;
          };
        ]
    in
    span_report
    @ List.map
        (fun (i, _, p, c, n) -> { shard = i; items = n; pairs = p; comparisons = c })
        per_shard
  in
  ( List.map snd ordered,
    {
      pairs = pairs_total;
      comparisons = comparisons_total;
      sorted_items = sorted_items_total;
      shards_swept = List.length per_shard;
      spanners = List.length spanners_l + List.length spanners_r;
    },
    reports )

let pairs ?shard_bits pool left right =
  let run () =
    let out, stats, _ = pairs_detailed ?shard_bits pool left right in
    (out, stats)
  in
  if not (Sqp_obs.Trace.global_enabled ()) then run ()
  else begin
    let tracer = Sqp_obs.Trace.global () in
    Sqp_obs.Trace.span_begin tracer "par_join.pairs";
    let ((_, s) as r) = run () in
    Sqp_obs.Trace.span_end
      ~attrs:(fun () ->
        Sqp_obs.Trace.
          [
            ("pairs", Int s.pairs);
            ("comparisons", Int s.comparisons);
            ("sorted_items", Int s.sorted_items);
            ("shards_swept", Int s.shards_swept);
            ("spanners", Int s.spanners);
          ])
      tracer;
    let m = Sqp_obs.Metrics.global () in
    let bump suffix n =
      Sqp_obs.Metrics.add (Sqp_obs.Metrics.counter m ("par_join." ^ suffix)) n
    in
    bump "joins" 1;
    bump "pairs" s.pairs;
    bump "comparisons" s.comparisons;
    bump "shards_swept" s.shards_swept;
    bump "spanners" s.spanners;
    r
  end
