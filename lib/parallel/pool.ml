type t = {
  domains : int;
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  work_available : Condition.t;
  batch_done : Condition.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

let domains t = t.domains

(* Jobs are wrapped by [map] and never raise. *)
let rec worker_loop t =
  Mutex.lock t.mutex;
  let rec await () =
    if t.stopping then None
    else if Queue.is_empty t.queue then begin
      Condition.wait t.work_available t.mutex;
      await ()
    end
    else Some (Queue.pop t.queue)
  in
  let job = await () in
  Mutex.unlock t.mutex;
  match job with
  | None -> ()
  | Some job ->
      job ();
      worker_loop t

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let t =
    {
      domains;
      queue = Queue.create ();
      mutex = Mutex.create ();
      work_available = Condition.create ();
      batch_done = Condition.create ();
      stopping = false;
      workers = [];
    }
  in
  t.workers <- List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map t f items =
  let n = Array.length items in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let first_error = ref None in
    let remaining = ref n in
    (* Mutable batch state (results, remaining, first_error) is only
       touched under the pool mutex, which also publishes the task's
       writes to the caller. *)
    let job i () =
      let r = match f items.(i) with v -> Ok v | exception e -> Error e in
      Mutex.lock t.mutex;
      (match r with
      | Ok v -> results.(i) <- Some v
      | Error e -> if !first_error = None then first_error := Some e);
      decr remaining;
      if !remaining = 0 then Condition.broadcast t.batch_done;
      Mutex.unlock t.mutex
    in
    Mutex.lock t.mutex;
    for i = 0 to n - 1 do
      Queue.add (job i) t.queue
    done;
    Condition.broadcast t.work_available;
    Mutex.unlock t.mutex;
    (* The caller helps drain the queue, then waits for stragglers. *)
    let rec help () =
      Mutex.lock t.mutex;
      match Queue.pop t.queue with
      | job ->
          Mutex.unlock t.mutex;
          job ();
          help ()
      | exception Queue.Empty -> Mutex.unlock t.mutex
    in
    help ();
    Mutex.lock t.mutex;
    while !remaining > 0 do
      Condition.wait t.batch_done t.mutex
    done;
    Mutex.unlock t.mutex;
    (match !first_error with Some e -> raise e | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let run t thunks =
  Array.to_list (map t (fun f -> f ()) (Array.of_list thunks))
