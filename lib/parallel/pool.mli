(** A small reusable pool of worker domains.

    The paper's merges are pure functions of immutable z-sorted arrays, so
    the only machinery parallel execution needs is a way to fan a batch of
    independent tasks out over OCaml 5 domains and collect the results in
    task order.  The pool spawns its workers once (domain spawn costs
    milliseconds; merge tasks cost microseconds) and reuses them for every
    subsequent batch.

    The caller participates in each batch, so a pool created with
    [~domains:1] spawns no worker domains at all and degenerates to plain
    sequential execution — handy for differential testing and for running
    the same code path on single-core machines. *)

type t

val create : domains:int -> t
(** [create ~domains:n] spawns [n - 1] worker domains ([n] total
    execution streams counting the caller).
    @raise Invalid_argument if [n < 1]. *)

val domains : t -> int
(** Total execution streams, including the calling domain. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f items] applies [f] to every item, running tasks on the
    worker domains and the calling domain, and returns the results in
    input order (execution order is nondeterministic; the result array is
    not).  If any task raises, one of the raised exceptions is re-raised
    in the caller after the whole batch has drained.

    Batches are not reentrant: do not call [map] from inside a task of
    the same pool.  Concurrent batches from {e different} threads or
    domains are safe, however: each batch tracks its own completion
    under the pool mutex, callers opportunistically execute whatever
    task is at the head of the shared queue (work from another batch
    included), and nobody blocks on a batch that is not their own.  The
    network server relies on this to run many sessions over one
    long-lived pool. *)

val run : t -> (unit -> 'a) list -> 'a list
(** [run t thunks]: {!map} over a list of thunks. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent.  The pool must not be
    used afterwards. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f]: create, run [f], always shutdown. *)
