module Z = Sqp_zorder
module B = Z.Bitstring

type t = {
  index : int;
  prefix : Z.Element.t;
  zlo : B.t;
  zhi : B.t;
  lo : int;
  hi : int;
}

let max_bits = 12

let make space ~bits =
  if bits < 0 || bits > max_bits then
    invalid_arg (Printf.sprintf "Shard.make: bits %d out of [0, %d]" bits max_bits);
  let total = Z.Space.total_bits space in
  if bits > total then invalid_arg "Shard.make: bits deeper than the space";
  Array.init (1 lsl bits) (fun index ->
      let prefix = B.of_int index ~width:bits in
      let lo, hi = Z.Zrange.of_element space prefix in
      {
        index;
        prefix;
        zlo = B.pad_to prefix total false;
        zhi = B.pad_to prefix total true;
        lo;
        hi;
      })

let shard_of_z ~bits z =
  if B.length z < bits then invalid_arg "Shard.shard_of_z: z shorter than shard depth";
  B.to_int (B.take z bits)

let spans ~bits z = B.length z < bits

let covers shard z = B.is_prefix z shard.prefix

let default_bits space ~domains =
  if domains <= 1 then 0
  else begin
    let target = 4 * domains in
    let rec ceil_log2 k n = if 1 lsl k >= n then k else ceil_log2 (k + 1) n in
    min (ceil_log2 0 target) (min max_bits (Z.Space.total_bits space))
  end
