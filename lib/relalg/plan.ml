type pred = {
  description : string;
  attrs : string list;
  test : Relation.tuple -> Schema.t -> bool;
}

let pred description attrs test = { description; attrs; test }

let attr_equals attr value =
  {
    description = Printf.sprintf "%s = %s" attr (Format.asprintf "%a" Value.pp value);
    attrs = [ attr ];
    test = (fun tu schema -> Value.equal (Relation.get tu schema attr) value);
  }

let attr_between attr lo hi =
  {
    description =
      Printf.sprintf "%s between %s and %s" attr
        (Format.asprintf "%a" Value.pp lo)
        (Format.asprintf "%a" Value.pp hi);
    attrs = [ attr ];
    test =
      (fun tu schema ->
        let v = Relation.get tu schema attr in
        Value.compare lo v <= 0 && Value.compare v hi <= 0);
  }

type join_impl = Merge | Nested_loop

type t =
  | Scan of Relation.t
  | Scan_stored of Stored.t
  | Select of pred * t
  | Project of string list * t
  | Project_all of string list * t
  | Rename of (string * string) list * t
  | Sort of string list * t
  | Natural_join of t * t
  | Spatial_join of {
      zl : string;
      zr : string;
      left : t;
      right : t;
      impl : join_impl option;
          (* [None]: pick by the size heuristic at execution time;
             [Some _]: forced by the cost-based optimizer. *)
    }
  | Product of t * t
  | Union of t * t

let spatial_join ?impl ~zl ~zr left right =
  Spatial_join { zl; zr; left; right; impl }

let rec schema = function
  | Scan r -> Relation.schema r
  | Scan_stored st -> Stored.schema st
  | Select (_, p) -> schema p
  | Project (names, p) | Project_all (names, p) -> Schema.project (schema p) names
  | Rename (renames, p) -> Schema.rename (schema p) renames
  | Sort (_, p) -> schema p
  | Natural_join (a, b) ->
      let sa = schema a and sb = schema b in
      let common = Schema.common sa sb in
      let keep = List.filter (fun n -> not (List.mem n common)) (Schema.names sb) in
      Schema.concat sa (Schema.make (List.map (fun n -> (n, Schema.ty sb n)) keep))
  | Spatial_join { left; right; _ } | Product (left, right) ->
      Schema.concat (schema left) (schema right)
  | Union (a, _) -> schema a

let rec estimated_rows = function
  | Scan r -> float_of_int (Relation.cardinality r)
  | Scan_stored st -> float_of_int (Stored.cardinality st)
  | Select (_, p) -> estimated_rows p /. 3.0
  | Project (_, p) -> estimated_rows p *. 0.9
  | Project_all (_, p) | Rename (_, p) | Sort (_, p) -> estimated_rows p
  | Natural_join (a, b) ->
      let ra = estimated_rows a and rb = estimated_rows b in
      ra *. rb /. Float.max 1.0 (Float.max ra rb)
  | Spatial_join { left; right; _ } ->
      (* Elements per object pair up rarely; assume ~2 witnesses per
         overlapping pair and 10% overlapping pairs. *)
      0.2 *. Float.max (estimated_rows left) (estimated_rows right)
  | Product (a, b) -> estimated_rows a *. estimated_rows b
  | Union (a, b) -> estimated_rows a +. estimated_rows b

(* {2 Optimizer} *)

let pred_applies_to s p = List.for_all (Schema.mem s) p.attrs

let rename_pred renames p =
  (* Moving a Select below [Rename renames]: rewrite its attributes from
     the renamed (outer) names back to the original (inner) names. *)
  let back = List.map (fun (old_name, fresh) -> (fresh, old_name)) renames in
  let rewrite n = match List.assoc_opt n back with Some o -> o | None -> n in
  {
    description = p.description;
    attrs = List.map rewrite p.attrs;
    test =
      (fun tu inner_schema ->
        (* Evaluate against the renamed view of the inner schema. *)
        p.test tu (Schema.rename inner_schema renames));
  }

let rec push_select p plan =
  match plan with
  | Rename (renames, inner) -> Rename (renames, push_select (rename_pred renames p) inner)
  | Sort (keys, inner) -> Sort (keys, push_select p inner)
  | Product (a, b) when pred_applies_to (schema a) p -> Product (push_select p a, b)
  | Product (a, b) when pred_applies_to (schema b) p -> Product (a, push_select p b)
  | Natural_join (a, b) when pred_applies_to (schema a) p ->
      Natural_join (push_select p a, b)
  | Natural_join (a, b) when pred_applies_to (schema b) p ->
      Natural_join (a, push_select p b)
  | Spatial_join ({ left; _ } as j) when pred_applies_to (schema left) p ->
      Spatial_join { j with left = push_select p left }
  | Spatial_join ({ right; _ } as j) when pred_applies_to (schema right) p ->
      Spatial_join { j with right = push_select p right }
  | Union (a, b) -> Union (push_select p a, push_select p b)
  | Scan _ | Scan_stored _ | Select _ | Project _ | Project_all _
  | Product _ | Natural_join _ | Spatial_join _ ->
      Select (p, plan)

let rec optimize plan =
  match plan with
  | Scan _ | Scan_stored _ -> plan
  | Select (p, inner) -> push_select p (optimize inner)
  | Project (names, inner) -> Project (names, optimize inner)
  | Project_all (names, inner) -> Project_all (names, optimize inner)
  | Rename (renames, inner) -> Rename (renames, optimize inner)
  | Sort (keys, inner) -> (
      match optimize inner with
      | Sort (_, deeper) -> Sort (keys, deeper) (* outer sort wins *)
      | opt -> Sort (keys, opt))
  | Natural_join (a, b) -> Natural_join (optimize a, optimize b)
  | Spatial_join j -> Spatial_join { j with left = optimize j.left; right = optimize j.right }
  | Product (a, b) -> Product (optimize a, optimize b)
  | Union (a, b) -> Union (optimize a, optimize b)

(* {2 Execution} *)

let spatial_join_threshold = 20_000.0
(* Estimated |L| * |R| above which the z-merge implementation is chosen
   over the nested loop. *)

let use_merge left_rows right_rows = left_rows *. right_rows > spatial_join_threshold

let resolve_impl impl left_rows right_rows =
  match impl with
  | Some i -> i
  | None -> if use_merge left_rows right_rows then Merge else Nested_loop

let default_join_impl ~left_rows ~right_rows = resolve_impl None left_rows right_rows

let rec run_with pool plan =
  let run = run_with pool in
  match plan with
  | Scan r -> r
  | Scan_stored st -> Stored.scan st
  | Select (p, inner) ->
      let r = run inner in
      let s = Relation.schema r in
      Ops.select (fun tu -> p.test tu s) r
  | Project (names, inner) -> Ops.project names (run inner)
  | Project_all (names, inner) -> Ops.project_all names (run inner)
  | Rename (renames, inner) -> Ops.rename renames (run inner)
  | Sort (keys, inner) -> Ops.sort_by keys (run inner)
  | Natural_join (a, b) -> Ops.natural_join (run a) (run b)
  | Spatial_join { zl; zr; left; right; impl } ->
      let l = run left and r = run right in
      let joined, _ =
        match
          resolve_impl impl
            (float_of_int (Relation.cardinality l))
            (float_of_int (Relation.cardinality r))
        with
        | Merge -> (
            match pool with
            | Some pool -> Spatial_join.merge_parallel pool l ~zr:zl r ~zs:zr
            | None -> Spatial_join.merge l ~zr:zl r ~zs:zr)
        | Nested_loop -> Spatial_join.nested_loop l ~zr:zl r ~zs:zr
      in
      joined
  | Product (a, b) -> Ops.product (run a) (run b)
  | Union (a, b) -> Ops.union (run a) (run b)

let run ?(parallelism = 1) plan =
  if parallelism < 1 then invalid_arg "Plan.run: parallelism must be >= 1";
  if parallelism = 1 then run_with None plan
  else
    Sqp_parallel.Pool.with_pool ~domains:parallelism (fun pool ->
        run_with (Some pool) plan)

(* The server executes many queries over one long-lived pool instead of
   paying a pool spawn per query; a 1-domain pool degenerates to the
   sequential path so results stay bit-identical either way. *)
let run_in_pool pool plan =
  if Sqp_parallel.Pool.domains pool = 1 then run_with None plan
  else run_with (Some pool) plan

(* {2 Explain} *)

let explain ?(parallelism = 1) ?annotate plan =
  let buf = Buffer.create 256 in
  let rec go depth plan =
    let rows = estimated_rows plan in
    let line depth fmt =
      (* Append the caller's per-node annotation (e.g. the optimizer's
         predicted-cost column) to whatever the node prints. *)
      Printf.ksprintf
        (fun s ->
          let suffix =
            match annotate with
            | None -> ""
            | Some f -> ( match f plan with "" -> "" | a -> "  " ^ a)
          in
          Buffer.add_string buf (String.make (2 * depth) ' ');
          Buffer.add_string buf s;
          Buffer.add_string buf suffix;
          Buffer.add_char buf '\n')
        fmt
    in
    (match plan with
    | Scan r ->
        line depth "scan %s %s (~%.0f rows)"
          (match Relation.name r with "" -> "<anon>" | n -> n)
          (Format.asprintf "%a" Schema.pp (Relation.schema r))
          rows
    | Scan_stored st ->
        line depth "scan stored %s %s (%d pages, ~%.0f rows)"
          (match Stored.name st with "" -> "<anon>" | n -> n)
          (Format.asprintf "%a" Schema.pp (Stored.schema st))
          (Stored.pages st) rows
    | Select (p, _) -> line depth "select [%s] (~%.0f rows)" p.description rows
    | Project (names, _) -> line depth "project distinct {%s} (~%.0f rows)" (String.concat ", " names) rows
    | Project_all (names, _) -> line depth "project {%s} (~%.0f rows)" (String.concat ", " names) rows
    | Rename (renames, _) ->
        line depth "rename {%s}"
          (String.concat ", " (List.map (fun (o, n) -> o ^ " -> " ^ n) renames))
    | Sort (keys, _) -> line depth "sort by {%s}" (String.concat ", " keys)
    | Natural_join (_, _) -> line depth "natural join (~%.0f rows)" rows
    | Spatial_join { zl; zr; left; right; impl } ->
        let forced = match impl with Some _ -> " (forced)" | None -> "" in
        let impl =
          match resolve_impl impl (estimated_rows left) (estimated_rows right) with
          | Merge ->
              if parallelism > 1 then
                Printf.sprintf "parallel z-merge (%d domains)" parallelism
              else "z-merge"
          | Nested_loop -> "nested loop"
        in
        line depth "spatial join %s <> %s via %s%s (~%.0f rows)" zl zr impl forced
          rows
    | Product _ -> line depth "product (~%.0f rows)" rows
    | Union _ -> line depth "union (~%.0f rows)" rows);
    match plan with
    | Scan _ | Scan_stored _ -> ()
    | Select (_, i) | Project (_, i) | Project_all (_, i) | Rename (_, i) | Sort (_, i) ->
        go (depth + 1) i
    | Natural_join (a, b) | Product (a, b) | Union (a, b) ->
        go (depth + 1) a;
        go (depth + 1) b
    | Spatial_join { left; right; _ } ->
        go (depth + 1) left;
        go (depth + 1) right
  in
  go 0 plan;
  Buffer.contents buf

(* {2 EXPLAIN ANALYZE} *)

module Stats = Sqp_storage.Stats

type shard_row = {
  shard : int;
  shard_items : int;
  shard_pairs : int;
  shard_comparisons : int;
}

type node_report = {
  op : string;
  rows : int;
  elapsed : float;
  pages : Stats.t;
  node_attrs : (string * int) list;
  shard_table : shard_row list;
  children : node_report list;
}

type analysis = {
  result : Relation.t;
  report : node_report;
  total_pages : Stats.t;
  wall_seconds : float;
  parallelism : int;
}

(* The live Stats counters reachable from the plan's stored scans,
   deduplicated physically (two Scan_stored of the same relation share
   one disk, hence one counter). *)
let rec stats_sources acc = function
  | Scan_stored st ->
      let s = Stored.stats st in
      if List.memq s acc then acc else s :: acc
  | Scan _ -> acc
  | Select (_, i) | Project (_, i) | Project_all (_, i) | Rename (_, i) | Sort (_, i) ->
      stats_sources acc i
  | Natural_join (a, b) | Product (a, b) | Union (a, b) ->
      stats_sources (stats_sources acc a) b
  | Spatial_join { left; right; _ } -> stats_sources (stats_sources acc left) right

let delta sources befores =
  Stats.sum
    (List.map2
       (fun live before -> Stats.diff ~after:(Stats.snapshot live) ~before)
       sources befores)

let sum_pages report =
  let rec go acc r = List.fold_left go (Stats.add acc r.pages) r.children in
  go (Stats.create ()) report

let join_attrs (s : Spatial_join.stats) =
  [
    ("pairs", s.Spatial_join.pairs);
    ("comparisons", s.Spatial_join.comparisons);
    ("sorted_items", s.Spatial_join.sorted_items);
    ("max_stack", s.Spatial_join.max_stack);
  ]

let row_of_shard_report (r : Sqp_parallel.Par_spatial_join.shard_report) =
  {
    shard = r.Sqp_parallel.Par_spatial_join.shard;
    shard_items = r.Sqp_parallel.Par_spatial_join.items;
    shard_pairs = r.Sqp_parallel.Par_spatial_join.pairs;
    shard_comparisons = r.Sqp_parallel.Par_spatial_join.comparisons;
  }

let analyze_impl ?(parallelism = 1) ?pool plan =
  if parallelism < 1 then invalid_arg "Plan.run_analyze: parallelism must be >= 1";
  let parallelism =
    match pool with
    | Some p -> Sqp_parallel.Pool.domains p
    | None -> parallelism
  in
  let sources = stats_sources [] plan in
  let tracer = Sqp_obs.Trace.global () in
  let now = Unix.gettimeofday in
  let exec pool =
    (* Children run (and are charged) before their parent's own work, so
       each node's [pages]/[elapsed] are exclusive: tree sums equal the
       run's totals exactly. *)
    let node op children f : Relation.t * node_report =
      let befores = List.map Stats.snapshot sources in
      Sqp_obs.Trace.span_begin tracer ("plan." ^ op);
      let t0 = now () in
      let rel, node_attrs, shard_table = f () in
      let elapsed = now () -. t0 in
      Sqp_obs.Trace.span_end
        ~attrs:(fun () ->
          ("rows", Sqp_obs.Trace.Int (Relation.cardinality rel))
          :: List.map (fun (k, v) -> (k, Sqp_obs.Trace.Int v)) node_attrs)
        tracer;
      let pages = delta sources befores in
      ( rel,
        {
          op;
          rows = Relation.cardinality rel;
          elapsed;
          pages;
          node_attrs;
          shard_table;
          children;
        } )
    in
    let simple op children f = node op children (fun () -> (f (), [], [])) in
    let rec go plan =
      match plan with
      | Scan r ->
          simple
            (Printf.sprintf "scan %s"
               (match Relation.name r with "" -> "<anon>" | n -> n))
            []
            (fun () -> r)
      | Scan_stored st ->
          node
            (Printf.sprintf "scan stored %s"
               (match Stored.name st with "" -> "<anon>" | n -> n))
            []
            (fun () -> (Stored.scan st, [ ("data_pages", Stored.pages st) ], []))
      | Select (p, inner) ->
          let rel, child = go inner in
          let s = Relation.schema rel in
          simple
            (Printf.sprintf "select [%s]" p.description)
            [ child ]
            (fun () -> Ops.select (fun tu -> p.test tu s) rel)
      | Project (names, inner) ->
          let rel, child = go inner in
          simple
            (Printf.sprintf "project distinct {%s}" (String.concat ", " names))
            [ child ]
            (fun () -> Ops.project names rel)
      | Project_all (names, inner) ->
          let rel, child = go inner in
          simple
            (Printf.sprintf "project {%s}" (String.concat ", " names))
            [ child ]
            (fun () -> Ops.project_all names rel)
      | Rename (renames, inner) ->
          let rel, child = go inner in
          simple
            (Printf.sprintf "rename {%s}"
               (String.concat ", " (List.map (fun (o, n) -> o ^ " -> " ^ n) renames)))
            [ child ]
            (fun () -> Ops.rename renames rel)
      | Sort (keys, inner) ->
          let rel, child = go inner in
          simple
            (Printf.sprintf "sort by {%s}" (String.concat ", " keys))
            [ child ]
            (fun () -> Ops.sort_by keys rel)
      | Natural_join (a, b) ->
          let ra, ca = go a in
          let rb, cb = go b in
          simple "natural join" [ ca; cb ] (fun () -> Ops.natural_join ra rb)
      | Product (a, b) ->
          let ra, ca = go a in
          let rb, cb = go b in
          simple "product" [ ca; cb ] (fun () -> Ops.product ra rb)
      | Union (a, b) ->
          let ra, ca = go a in
          let rb, cb = go b in
          simple "union" [ ca; cb ] (fun () -> Ops.union ra rb)
      | Spatial_join { zl; zr; left; right; impl } ->
          let rl, cl = go left in
          let rr, cr = go right in
          let chosen =
            resolve_impl impl
              (float_of_int (Relation.cardinality rl))
              (float_of_int (Relation.cardinality rr))
          in
          let impl, f =
            match chosen with
            | Merge -> (
                match pool with
                | Some pool ->
                    ( Printf.sprintf "parallel z-merge (%d domains)"
                        (Sqp_parallel.Pool.domains pool),
                      fun () ->
                        let joined, s, reports =
                          Spatial_join.merge_parallel_detailed pool rl ~zr:zl rr
                            ~zs:zr
                        in
                        (joined, join_attrs s, List.map row_of_shard_report reports)
                    )
                | None ->
                    ( "z-merge",
                      fun () ->
                        let joined, s = Spatial_join.merge rl ~zr:zl rr ~zs:zr in
                        (joined, join_attrs s, []) ))
            | Nested_loop ->
                ( "nested loop",
                  fun () ->
                    let joined, s = Spatial_join.nested_loop rl ~zr:zl rr ~zs:zr in
                    (joined, join_attrs s, []) )
          in
          node
            (Printf.sprintf "spatial join %s <> %s via %s" zl zr impl)
            [ cl; cr ] f
    in
    go plan
  in
  let befores = List.map Stats.snapshot sources in
  Sqp_obs.Trace.span_begin tracer "plan.run_analyze";
  let t0 = now () in
  let result, report =
    match pool with
    | Some p -> exec (if Sqp_parallel.Pool.domains p = 1 then None else Some p)
    | None ->
        if parallelism = 1 then exec None
        else
          Sqp_parallel.Pool.with_pool ~domains:parallelism (fun pool ->
              exec (Some pool))
  in
  let wall_seconds = now () -. t0 in
  Sqp_obs.Trace.span_end
    ~attrs:(fun () -> [ ("rows", Sqp_obs.Trace.Int (Relation.cardinality result)) ])
    tracer;
  let total_pages = delta sources befores in
  { result; report; total_pages; wall_seconds; parallelism }

let run_analyze ?parallelism plan = analyze_impl ?parallelism plan
let run_analyze_in_pool pool plan = analyze_impl ~pool plan

let render_analysis a =
  let buf = Buffer.create 1024 in
  let line depth fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf (String.make (2 * depth) ' ');
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let pages_str (p : Stats.t) =
    if
      p.Stats.physical_reads = 0 && p.Stats.physical_writes = 0
      && p.Stats.pool_hits = 0 && p.Stats.pool_misses = 0
    then ""
    else
      Printf.sprintf ", pages: %dr/%dw (pool %dh/%dm)" p.Stats.physical_reads
        p.Stats.physical_writes p.Stats.pool_hits p.Stats.pool_misses
  in
  line 0 "EXPLAIN ANALYZE (parallelism=%d, wall %.3f ms, total pages: %dr/%dw, pool %dh/%dm)"
    a.parallelism
    (a.wall_seconds *. 1e3)
    a.total_pages.Stats.physical_reads a.total_pages.Stats.physical_writes
    a.total_pages.Stats.pool_hits a.total_pages.Stats.pool_misses;
  let rec go depth r =
    let attrs =
      String.concat ""
        (List.map (fun (k, v) -> Printf.sprintf ", %s=%d" k v) r.node_attrs)
    in
    line depth "%s (rows=%d, %.3f ms%s%s)" r.op r.rows (r.elapsed *. 1e3) attrs
      (pages_str r.pages);
    if r.shard_table <> [] then begin
      line (depth + 1) "per-shard: %-6s %8s %8s %12s" "shard" "items" "pairs"
        "comparisons";
      List.iter
        (fun row ->
          line (depth + 1) "           %-6s %8d %8d %12d"
            (if row.shard < 0 then "span" else string_of_int row.shard)
            row.shard_items row.shard_pairs row.shard_comparisons)
        r.shard_table
    end;
    List.iter (go (depth + 1)) r.children
  in
  go 0 a.report;
  Buffer.contents buf

let explain_analyze ?parallelism plan = render_analysis (run_analyze ?parallelism plan)
