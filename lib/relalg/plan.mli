(** Logical query plans over the relational substrate.

    The PROBE framing of Section 2 is that the DBMS optimizes
    set-at-a-time operations while the object class supplies the
    element-level semantics.  This module is that thin optimizer layer: a
    plan algebra including the spatial join, a cost-estimating EXPLAIN,
    and a rewriter that pushes selections below joins and picks the
    spatial-join implementation (z-merge vs nested loop) from estimated
    input sizes. *)

type pred = {
  description : string;          (** shown by EXPLAIN *)
  attrs : string list;           (** attributes the predicate reads *)
  test : Relation.tuple -> Schema.t -> bool;
}

val pred : string -> string list -> (Relation.tuple -> Schema.t -> bool) -> pred
(** [pred description attrs test] builds an arbitrary predicate.
    [attrs] must list every attribute [test] reads — the optimizer uses
    it to decide how far below joins the selection may be pushed. *)

val attr_equals : string -> Value.t -> pred
(** [attr = value]. *)

val attr_between : string -> Value.t -> Value.t -> pred
(** Inclusive range on one attribute. *)

type join_impl =
  | Merge        (** sort both sides by z value and stack-merge *)
  | Nested_loop  (** compare every left element to every right element *)
(** A forced spatial-join implementation choice, produced by the
    cost-based optimizer ({!Sqp_optimizer.Optimizer}). *)

type t =
  | Scan of Relation.t
  | Scan_stored of Stored.t
      (** scan a paged relation through its buffer pool, paying (and
          recording) page accesses — see {!Stored} *)
  | Select of pred * t
  | Project of string list * t       (** duplicate-eliminating *)
  | Project_all of string list * t   (** bag projection *)
  | Rename of (string * string) list * t
  | Sort of string list * t
  | Natural_join of t * t
  | Spatial_join of {
      zl : string;
      zr : string;
      left : t;
      right : t;
      impl : join_impl option;
          (** [None] (the default everywhere outside the optimizer):
              choose z-merge vs nested loop at execution time from the
              actual input cardinalities, exactly as before this field
              existed.  [Some _]: the optimizer's costed choice; the
              executor obeys it unconditionally. *)
    }
  | Product of t * t
  | Union of t * t

val spatial_join : ?impl:join_impl -> zl:string -> zr:string -> t -> t -> t
(** [spatial_join ~zl ~zr left right] is
    [Spatial_join { zl; zr; left; right; impl }] with [impl] defaulting
    to [None]. *)

val default_join_impl : left_rows:float -> right_rows:float -> join_impl
(** The size heuristic an un-forced ([impl = None]) spatial join applies
    at execution time: z-merge when the estimated comparison count
    [left_rows * right_rows] exceeds a fixed threshold, nested loop
    otherwise.  Exposed so the cost-based optimizer can report what the
    default would have done. *)

val schema : t -> Schema.t
(** Output schema; raises [Invalid_argument]/[Not_found] on malformed
    plans (name clashes, missing attributes). *)

val estimated_rows : t -> float
(** Crude textbook cardinality estimate (selections 1/3, natural joins
    via 1/max-side, spatial joins via element fan-out). *)

val optimize : t -> t
(** Rewrites: push selections below renames, products and joins when
    their attributes allow; fuse [Select] over [Select]; drop redundant
    [Sort] under [Sort].  Semantics-preserving. *)

val run : ?parallelism:int -> t -> Relation.t
(** Execute (materializing operator by operator).  [parallelism] (default
    1) is the number of execution streams: with more than one, a domain
    pool is created for the duration of the run and every z-merge spatial
    join executes shard-parallel ({!Spatial_join.merge_parallel}), with
    results identical to the sequential plan.
    @raise Invalid_argument if [parallelism < 1]. *)

val run_in_pool : Sqp_parallel.Pool.t -> t -> Relation.t
(** Like {!run}, but executing on a caller-provided (long-lived) domain
    pool instead of spawning one per run — the mode the network server
    uses, where many concurrent sessions share one pool.  A 1-domain
    pool takes the plain sequential path; results are identical to
    {!run} at any parallelism. *)

val explain : ?parallelism:int -> ?annotate:(t -> string) -> t -> string
(** An indented operator tree with schemas and row estimates, plus the
    implementation choice for each spatial join — including whether the
    z-merge would run sequentially or sharded over [parallelism]
    domains.  A spatial join whose [impl] was forced by the optimizer is
    marked [(forced)].  [annotate], when given, is called on every node
    and its non-empty result is appended to that node's line — the
    optimizer uses it to add the predicted-cost column. *)

(** {2 EXPLAIN ANALYZE}

    {!run_analyze} executes a plan while measuring it: every operator is
    wrapped in a {!Sqp_obs.Trace} span and reports its actual output
    rows, exclusive wall time, and exclusive page accesses (charged by
    snapshotting the live {!Stored.stats} counters of every stored
    relation in the plan before and after the operator's own work —
    children are charged separately, so the per-node numbers sum exactly
    to the run's totals). *)

type shard_row = {
  shard : int;       (** shard index, or [-1] for the spanner pass *)
  shard_items : int;       (** items the shard swept *)
  shard_pairs : int;       (** pairs it emitted *)
  shard_comparisons : int; (** element comparisons it performed *)
}
(** One row of the per-shard breakdown a sharded spatial join reports. *)

type node_report = {
  op : string;               (** operator label, as in {!explain} *)
  rows : int;                (** actual output cardinality *)
  elapsed : float;           (** exclusive wall seconds (children excluded) *)
  pages : Sqp_storage.Stats.t;  (** exclusive page accesses *)
  node_attrs : (string * int) list;
      (** operator-specific counters (e.g. a spatial join's
          [comparisons]) *)
  shard_table : shard_row list;
      (** per-shard work, non-empty only for parallel spatial joins *)
  children : node_report list;
}
(** Measured execution of one plan operator and its subtree. *)

type analysis = {
  result : Relation.t;       (** the query result *)
  report : node_report;      (** the measured operator tree *)
  total_pages : Sqp_storage.Stats.t;
      (** whole-run page accesses; equals {!sum_pages}[ report] *)
  wall_seconds : float;      (** whole-run wall time *)
  parallelism : int;         (** execution streams used *)
}
(** Everything {!run_analyze} measured, plus the result itself. *)

val run_analyze : ?parallelism:int -> t -> analysis
(** Execute [plan] under measurement.  Produces the same result as
    {!run} with the same [parallelism] (default 1; with 2 or more, a
    domain pool is created and z-merge spatial joins run sharded,
    additionally filling in their [shard_table]).
    @raise Invalid_argument if [parallelism < 1]. *)

val run_analyze_in_pool : Sqp_parallel.Pool.t -> t -> analysis
(** {!run_analyze} on a caller-provided pool (see {!run_in_pool}); the
    analysis's [parallelism] field reports the pool's domain count. *)

val sum_pages : node_report -> Sqp_storage.Stats.t
(** Sum of [pages] over the whole report tree.  Always equal, counter
    for counter, to the analysis's [total_pages] — the accounting
    invariant the test suite checks. *)

val render_analysis : analysis -> string
(** The annotated operator tree as text: one line per operator with
    actual rows, milliseconds, operator counters and page accesses,
    followed by the per-shard table under any parallel spatial join. *)

val explain_analyze : ?parallelism:int -> t -> string
(** [render_analysis (run_analyze ?parallelism plan)]. *)
