module Z = Sqp_zorder

let coord_attr i = Printf.sprintf "x%d" i

let points_relation ?(name = "P") space points =
  let k = Z.Space.dims space in
  let schema =
    Schema.make
      ((("id", Value.TInt) :: ("z", Value.TZval) :: [])
      @ List.init k (fun i -> (coord_attr i, Value.TInt)))
  in
  let tuples =
    List.map
      (fun (id, p) ->
        Array.of_list
          (Value.Int id
           :: Value.Zval (Z.Interleave.shuffle space p)
           :: List.init k (fun i -> Value.Int p.(i))))
      points
  in
  Relation.make ~name schema tuples

let decompose_relation ?(name = "R") ?options space objects =
  let schema = Schema.make [ ("id", Value.TInt); ("z", Value.TZval) ] in
  let tuples =
    List.concat_map
      (fun (id, shape) ->
        List.map
          (fun e -> [| Value.Int id; Value.Zval e |])
          (Sqp_geom.Shape.decompose ?options space shape))
      objects
  in
  Relation.make ~name schema tuples

let box_relation ?(name = "B") space box =
  let schema = Schema.make [ ("z", Value.TZval) ] in
  let els =
    Z.Decompose.decompose_box space ~lo:(Sqp_geom.Box.lo box) ~hi:(Sqp_geom.Box.hi box)
  in
  Relation.make ~name schema (List.map (fun e -> [| Value.Zval e |]) els)

let range_query space points box =
  let k = Z.Space.dims space in
  let p = points_relation space points in
  let b = Ops.rename [ ("z", "zb") ] (box_relation space box) in
  let joined, _ = Spatial_join.merge p ~zr:"z" b ~zs:"zb" in
  Ops.project (List.init k coord_attr) joined

let stored_overlap_plan ?options ?tuples_per_page ?pool_capacity space
    r_objects s_objects =
  let stored name renames objects =
    Stored.store ?tuples_per_page ?pool_capacity
      (Ops.rename renames (decompose_relation ?options ~name space objects))
  in
  let r = stored "R" [ ("id", "rid"); ("z", "zr") ] r_objects in
  let s = stored "S" [ ("id", "sid"); ("z", "zs") ] s_objects in
  Plan.Project
    ( [ "rid"; "sid" ],
      Plan.Spatial_join
        {
          zl = "zr";
          zr = "zs";
          left = Plan.Scan_stored r;
          right = Plan.Scan_stored s;
          impl = None;
        } )

let overlapping_pairs ?options space r_objects s_objects =
  let r = decompose_relation ?options ~name:"R" space r_objects in
  let s =
    Ops.rename [ ("id", "sid"); ("z", "zs") ]
      (decompose_relation ?options ~name:"S" space s_objects)
  in
  let r = Ops.rename [ ("id", "rid"); ("z", "zr") ] r in
  let joined, _ = Spatial_join.merge r ~zr:"zr" s ~zs:"zs" in
  Ops.project [ "rid"; "sid" ] joined
