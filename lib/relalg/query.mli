(** The query scenarios of Section 4, scripted against the relational
    operators: decompose spatial relations, spatial-join them, project. *)

val points_relation :
  ?name:string ->
  Sqp_zorder.Space.t ->
  (int * Sqp_geom.Point.t) list ->
  Relation.t
(** [P(p@, zp, x, y, ...) := Points\[p@, shuffle(...), coords\]]: one tuple
    per point with its id, full-resolution z value, and coordinates
    (attributes ["id"; "z"; "x0"; "x1"; ...]). *)

val decompose_relation :
  ?name:string ->
  ?options:Sqp_zorder.Decompose.options ->
  Sqp_zorder.Space.t ->
  (int * Sqp_geom.Shape.t) list ->
  Relation.t
(** [R(q@, zr) := Decompose(Q)]: one tuple per (object id, element) — the
    decompose-then-flatten step (attributes ["id"; "z"]). *)

val box_relation :
  ?name:string -> Sqp_zorder.Space.t -> Sqp_geom.Box.t -> Relation.t
(** [B(zb) := Decompose(Box)] (attribute ["z"]). *)

val range_query :
  Sqp_zorder.Space.t ->
  (int * Sqp_geom.Point.t) list ->
  Sqp_geom.Box.t ->
  Relation.t
(** The full script at the end of Section 4:
    [Result := (P\[zp <> zb\]B)\[coords\]] — returns the relation of
    coordinates of points inside the box (attributes ["x0"; "x1"; ...]). *)

val stored_overlap_plan :
  ?options:Sqp_zorder.Decompose.options ->
  ?tuples_per_page:int ->
  ?pool_capacity:int ->
  Sqp_zorder.Space.t ->
  (int * Sqp_geom.Shape.t) list ->
  (int * Sqp_geom.Shape.t) list ->
  Plan.t
(** {!overlapping_pairs} as an unexecuted {!Plan.t} whose inputs are
    materialized onto paged {!Stored} relations first, so running it
    costs page accesses — the query {!Plan.run_analyze} and the CLI's
    [query] subcommand measure.  [tuples_per_page]/[pool_capacity] are
    passed to {!Stored.store}. *)

val overlapping_pairs :
  ?options:Sqp_zorder.Decompose.options ->
  Sqp_zorder.Space.t ->
  (int * Sqp_geom.Shape.t) list ->
  (int * Sqp_geom.Shape.t) list ->
  Relation.t
(** [RS := R\[zr <> zs\]S] projected to id pairs: candidate overlapping
    object pairs (attributes ["rid"; "sid"]).  With exact decompositions
    the candidates whose elements touch only boundary pixels may
    over-approximate true geometric overlap; refine with exact geometry
    if needed. *)
