module B = Sqp_zorder.Bitstring

type stats = {
  pairs : int;
  comparisons : int;
  sorted_items : int;
  max_stack : int;
}

let out_schema r s =
  Schema.concat (Relation.schema r) (Relation.schema s)

let zval_of schema attr tu =
  match Relation.get tu schema attr with
  | Value.Zval z -> z
  | _ -> invalid_arg "Spatial_join: z attribute does not hold an element"

(* Observability: one span per join with its work counters, plus running
   totals in the ambient metrics registry.  One branch when tracing is
   off. *)
let observed name join =
  if not (Sqp_obs.Trace.global_enabled ()) then join ()
  else begin
    let tracer = Sqp_obs.Trace.global () in
    Sqp_obs.Trace.span_begin tracer name;
    let ((_, s) as r) = join () in
    Sqp_obs.Trace.span_end
      ~attrs:(fun () ->
        Sqp_obs.Trace.
          [
            ("pairs", Int s.pairs);
            ("comparisons", Int s.comparisons);
            ("sorted_items", Int s.sorted_items);
            ("max_stack", Int s.max_stack);
          ])
      tracer;
    let m = Sqp_obs.Metrics.global () in
    let bump suffix n =
      Sqp_obs.Metrics.add (Sqp_obs.Metrics.counter m (name ^ "." ^ suffix)) n
    in
    bump "joins" 1;
    bump "pairs" s.pairs;
    bump "comparisons" s.comparisons;
    Sqp_obs.Metrics.record_max
      (Sqp_obs.Metrics.gauge m (name ^ ".max_stack"))
      s.max_stack;
    r
  end

let nested_loop_impl r ~zr s ~zs =
  let schema = out_schema r s in
  let sr = Relation.schema r and ss = Relation.schema s in
  let comparisons = ref 0 in
  let tuples =
    List.concat_map
      (fun tr ->
        let zrv = zval_of sr zr tr in
        List.filter_map
          (fun ts ->
            let zsv = zval_of ss zs ts in
            incr comparisons;
            if B.is_prefix zrv zsv || B.is_prefix zsv zrv then
              Some (Array.append tr ts)
            else None)
          (Relation.tuples s))
      (Relation.tuples r)
  in
  ( Relation.make schema tuples,
    {
      pairs = List.length tuples;
      comparisons = !comparisons;
      sorted_items = 0;
      max_stack = 0;
    } )

let nested_loop r ~zr s ~zs = observed "spatial_join.nested_loop" (fun () -> nested_loop_impl r ~zr s ~zs)

type side = R | S

let merge_reference_impl r ~zr s ~zs =
  let schema = out_schema r s in
  let sr = Relation.schema r and ss = Relation.schema s in
  let comparisons = ref 0 in
  let items =
    List.map (fun tu -> (zval_of sr zr tu, R, tu)) (Relation.tuples r)
    @ List.map (fun tu -> (zval_of ss zs tu, S, tu)) (Relation.tuples s)
  in
  let items =
    List.sort
      (fun (za, _, _) (zb, _, _) ->
        incr comparisons;
        B.compare za zb)
      items
  in
  (* Stacks of open (containing) elements per side; an element stays open
     while the sweep position is within its z range, i.e. while it is a
     prefix of the current item's z value. *)
  let stack_r = ref [] and stack_s = ref [] in
  let max_stack = ref 0 in
  let note_depth () =
    let d = List.length !stack_r + List.length !stack_s in
    if d > !max_stack then max_stack := d
  in
  let pop_closed z stack =
    let rec go = function
      | (ze, _) :: rest when
          (incr comparisons;
           not (B.is_prefix ze z)) ->
          go rest
      | kept -> kept
    in
    stack := go !stack
  in
  let out = ref [] and pairs = ref 0 in
  List.iter
    (fun (z, side, tu) ->
      pop_closed z stack_r;
      pop_closed z stack_s;
      (match side with
      | R ->
          List.iter
            (fun (_, ts) ->
              incr pairs;
              out := Array.append tu ts :: !out)
            !stack_s;
          stack_r := (z, tu) :: !stack_r
      | S ->
          List.iter
            (fun (_, tr) ->
              incr pairs;
              out := Array.append tr tu :: !out)
            !stack_r;
          stack_s := (z, tu) :: !stack_s);
      note_depth ())
    items;
  ( Relation.make schema (List.rev !out),
    {
      pairs = !pairs;
      comparisons = !comparisons;
      sorted_items = List.length items;
      max_stack = !max_stack;
    } )

let merge_reference r ~zr s ~zs =
  observed "spatial_join.merge_reference" (fun () -> merge_reference_impl r ~zr s ~zs)

(* Fast path: both sides' z values packed into words, sorted by stable
   permutation and swept with the flat-array kernel.  Tuple output —
   content and order — is bit-identical to the reference sweep; any
   overlong z value falls back wholesale. *)
let merge_impl r ~zr s ~zs =
  let sr = Relation.schema r and ss = Relation.schema s in
  let tr = Array.of_list (Relation.tuples r)
  and ts = Array.of_list (Relation.tuples s) in
  let zrv = Array.map (zval_of sr zr) tr and zsv = Array.map (zval_of ss zs) ts in
  match (Sqp_zorder.Zpacked.pack_array zrv, Sqp_zorder.Zpacked.pack_array zsv) with
  | Some pr, Some ps ->
      let schema = out_schema r s in
      let comparisons = ref 0 in
      let perm_r, kr = Sqp_zorder.Zkernel.sort_keyed ~comparisons pr
      and perm_s, ks = Sqp_zorder.Zkernel.sort_keyed ~comparisons ps in
      let out = ref [] in
      let emit li ri =
        out := Array.append tr.(perm_r.(li)) ts.(perm_s.(ri)) :: !out
      in
      let st =
        match (kr, ks) with
        | Some kr, Some ks ->
            Sqp_zorder.Zkernel.sweep_pairs_keyed ~comparisons kr ks emit
        | _ ->
            let spr = Array.map (fun k -> pr.(k)) perm_r
            and sps = Array.map (fun k -> ps.(k)) perm_s in
            Sqp_zorder.Zkernel.sweep_pairs ~comparisons spr sps emit
      in
      ( Relation.make schema (List.rev !out),
        {
          pairs = st.Sqp_zorder.Zkernel.pairs;
          comparisons = !comparisons;
          sorted_items = Array.length tr + Array.length ts;
          max_stack = st.Sqp_zorder.Zkernel.max_stack;
        } )
  | _ -> merge_reference_impl r ~zr s ~zs

let merge r ~zr s ~zs = observed "spatial_join.merge" (fun () -> merge_impl r ~zr s ~zs)

let merge_parallel_detailed ?shard_bits pool r ~zr s ~zs =
  let schema = out_schema r s in
  let sr = Relation.schema r and ss = Relation.schema s in
  let left = List.map (fun tu -> (zval_of sr zr tu, tu)) (Relation.tuples r) in
  let right = List.map (fun tu -> (zval_of ss zs tu, tu)) (Relation.tuples s) in
  let pairs, pstats, reports =
    Sqp_parallel.Par_spatial_join.pairs_detailed ?shard_bits pool left right
  in
  let tuples = List.map (fun (tr, ts) -> Array.append tr ts) pairs in
  ( Relation.make schema tuples,
    {
      pairs = pstats.Sqp_parallel.Par_spatial_join.pairs;
      comparisons = pstats.Sqp_parallel.Par_spatial_join.comparisons;
      sorted_items = pstats.Sqp_parallel.Par_spatial_join.sorted_items;
      max_stack = 0 (* not tracked by the sharded sweeps *);
    },
    reports )

let merge_parallel ?shard_bits pool r ~zr s ~zs =
  observed "spatial_join.merge_parallel" (fun () ->
      let joined, stats, _ = merge_parallel_detailed ?shard_bits pool r ~zr s ~zs in
      (joined, stats))
