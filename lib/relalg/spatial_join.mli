(** The spatial join [R\[zr <> zs\]S] (Section 4).

    Both relations carry an element-valued attribute.  The join emits a
    combined tuple for every pair whose elements are related by
    containment in either direction — which, for decomposed objects,
    means the objects overlap.

    Three implementations:
    - [merge]: sort both inputs into z order and sweep once, keeping a
      stack of currently "open" (containing) elements per side — the
      z-order analogue of sort-merge join.  O(n log n + output).
    - [merge_parallel]: the same sweep, z-sharded over a domain pool
      ({!Sqp_parallel.Par_spatial_join}); output identical to [merge],
      including tuple order.
    - [nested_loop]: compare all pairs; the correctness oracle. *)

type stats = {
  pairs : int;         (** tuples emitted *)
  comparisons : int;   (** element comparisons performed *)
  sorted_items : int;  (** total items sorted (merge only) *)
  max_stack : int;
      (** deepest combined open-element stack the sweep reached ([merge]
          only; 0 for [nested_loop] and the sharded plan) *)
}

val merge :
  Relation.t -> zr:string -> Relation.t -> zs:string -> Relation.t * stats
(** Runs on the packed word kernel ({!Sqp_zorder.Zkernel.sweep_pairs})
    whenever every z value fits [Zpacked.max_bits] bits, falling back to
    {!merge_reference} otherwise; both produce the same tuples in the
    same order.
    @raise Invalid_argument if attribute names of the two relations
    clash (rename first) or the z attributes hold non-[Zval] values. *)

val merge_reference :
  Relation.t -> zr:string -> Relation.t -> zs:string -> Relation.t * stats
(** The list-based bitstring sweep (any z length) — the differential
    oracle for {!merge} and the benchmark baseline.  Same preconditions
    as {!merge}. *)

val nested_loop :
  Relation.t -> zr:string -> Relation.t -> zs:string -> Relation.t * stats
(** Compare all pairs directly — O(|R| * |S|), the correctness oracle
    and the planner's choice for small inputs.  Same preconditions as
    {!merge}. *)

val merge_parallel :
  ?shard_bits:int ->
  Sqp_parallel.Pool.t ->
  Relation.t ->
  zr:string ->
  Relation.t ->
  zs:string ->
  Relation.t * stats
(** Same result (and tuple order) as {!merge}, computed shard-by-shard on
    the pool.  [stats.comparisons] reflects the parallel plan's own work,
    so it differs from [merge]'s count; [pairs] is always equal. *)

val merge_parallel_detailed :
  ?shard_bits:int ->
  Sqp_parallel.Pool.t ->
  Relation.t ->
  zr:string ->
  Relation.t ->
  zs:string ->
  Relation.t * stats * Sqp_parallel.Par_spatial_join.shard_report list
(** {!merge_parallel}, additionally returning the per-shard work
    breakdown ({!Sqp_parallel.Par_spatial_join.shard_report}) that
    EXPLAIN ANALYZE renders as its shard table. *)
