module Pager = Sqp_storage.Pager
module Buffer_pool = Sqp_storage.Buffer_pool

type t = {
  name : string;
  schema : Schema.t;
  pager : Relation.tuple array Pager.t;
  page_ids : Pager.page_id array;
  pool : Relation.tuple array Buffer_pool.t;
  cardinality : int;
  tuples_per_page : int;
  latch : Mutex.t;
      (* Serializes access to the buffer pool (whose frame table and
         replacement state are unsynchronized) so concurrent server
         sessions may scan the same stored relation — the relational
         analogue of a page latch. *)
}

let store ?name ?(tuples_per_page = 32) ?(pool_capacity = 8) ?policy r =
  if tuples_per_page < 1 then invalid_arg "Stored.store: tuples_per_page < 1";
  let name = match name with Some n -> n | None -> Relation.name r in
  let pager = Pager.create () in
  let tuples = Array.of_list (Relation.tuples r) in
  let n = Array.length tuples in
  let npages = (n + tuples_per_page - 1) / tuples_per_page in
  let page_ids =
    Array.init npages (fun p ->
        let base = p * tuples_per_page in
        let len = min tuples_per_page (n - base) in
        Pager.alloc pager (Array.sub tuples base len))
  in
  {
    name;
    schema = Relation.schema r;
    pager;
    page_ids;
    pool = Buffer_pool.create ?policy ~capacity:pool_capacity pager;
    cardinality = n;
    tuples_per_page;
    latch = Mutex.create ();
  }

let name t = t.name

let schema t = t.schema

let cardinality t = t.cardinality

let pages t = Array.length t.page_ids

let tuples_per_page t = t.tuples_per_page

let stats t = Pager.stats t.pager

(* {2 Durable form}

   A stored relation can be dumped to a real file through the journaled
   {!Sqp_storage.File_pager}, one store page per in-memory page group, so
   relation snapshots get the same crash-safety as the spatial index.

   Meta page payload: "SQPR" | tuples_per_page:u16 | cardinality:i64 |
   name_len:u16 | name | attr_count:u16 |
   attr_count x ( ty:u8 | name_len:u16 | name ).
   Data page payload: count:u16 | count x tuple; each value is tagged:
   0=Null, 1=Int:i64, 2=Float:i64 (IEEE bits), 3=Str:u32|bytes,
   4=Bool:u8, 5=Zval:u32|bits-as-text. *)

module FP = Sqp_storage.File_pager
module Storage_error = Sqp_storage.Storage_error

let rel_magic = "SQPR"

let ty_tag = function
  | Value.TInt -> 1
  | Value.TFloat -> 2
  | Value.TStr -> 3
  | Value.TBool -> 4
  | Value.TZval -> 5

let ty_of_tag ~path = function
  | 1 -> Value.TInt
  | 2 -> Value.TFloat
  | 3 -> Value.TStr
  | 4 -> Value.TBool
  | 5 -> Value.TZval
  | n -> Storage_error.corrupt ~path (Printf.sprintf "unknown attribute type tag %d" n)

let add_u16 b n =
  if n < 0 || n > 0xFFFF then invalid_arg "Stored.save_to: value out of u16 range";
  Buffer.add_uint16_be b n

let add_str b s =
  if String.length s > 0xFFFF then invalid_arg "Stored.save_to: name too long";
  add_u16 b (String.length s);
  Buffer.add_string b s

let add_value b = function
  | Value.Null -> Buffer.add_uint8 b 0
  | Value.Int i ->
      Buffer.add_uint8 b 1;
      Buffer.add_int64_be b (Int64.of_int i)
  | Value.Float f ->
      Buffer.add_uint8 b 2;
      Buffer.add_int64_be b (Int64.bits_of_float f)
  | Value.Str s ->
      Buffer.add_uint8 b 3;
      Buffer.add_int32_be b (Int32.of_int (String.length s));
      Buffer.add_string b s
  | Value.Bool v ->
      Buffer.add_uint8 b 4;
      Buffer.add_uint8 b (if v then 1 else 0)
  | Value.Zval z ->
      let s = Sqp_zorder.Bitstring.to_string z in
      Buffer.add_uint8 b 5;
      Buffer.add_int32_be b (Int32.of_int (String.length s));
      Buffer.add_string b s

let encode_rel_meta t =
  let b = Buffer.create 64 in
  Buffer.add_string b rel_magic;
  add_u16 b t.tuples_per_page;
  Buffer.add_int64_be b (Int64.of_int t.cardinality);
  add_str b t.name;
  let attrs = Schema.attrs t.schema in
  add_u16 b (List.length attrs);
  List.iter
    (fun (n, ty) ->
      Buffer.add_uint8 b (ty_tag ty);
      add_str b n)
    attrs;
  Buffer.to_bytes b

let encode_rel_page tuples =
  let b = Buffer.create 256 in
  add_u16 b (Array.length tuples);
  Array.iter (fun tup -> Array.iter (add_value b) tup) tuples;
  Buffer.to_bytes b

(* A little cursor over a page payload, bounds-checked so torn or
   hand-damaged payloads surface as [Corrupt], not [Invalid_argument]. *)
type cursor = { cpath : string; buf : bytes; mutable pos : int }

let need c n =
  if c.pos + n > Bytes.length c.buf then
    Storage_error.corrupt ~path:c.cpath "relation page payload truncated"

let get_u8 c = need c 1; let v = Bytes.get_uint8 c.buf c.pos in c.pos <- c.pos + 1; v

let get_u16 c = need c 2; let v = Bytes.get_uint16_be c.buf c.pos in c.pos <- c.pos + 2; v

let get_i64 c =
  need c 8;
  let v = Bytes.get_int64_be c.buf c.pos in
  c.pos <- c.pos + 8;
  v

let get_len32 c =
  need c 4;
  let v = Int32.to_int (Bytes.get_int32_be c.buf c.pos) in
  c.pos <- c.pos + 4;
  if v < 0 then Storage_error.corrupt ~path:c.cpath "negative length in relation page";
  v

let get_str c n = need c n; let s = Bytes.sub_string c.buf c.pos n in c.pos <- c.pos + n; s

let get_sized_str c =
  let n = get_len32 c in
  get_str c n

let get_value c =
  match get_u8 c with
  | 0 -> Value.Null
  | 1 -> Value.Int (Int64.to_int (get_i64 c))
  | 2 -> Value.Float (Int64.float_of_bits (get_i64 c))
  | 3 -> Value.Str (get_sized_str c)
  | 4 -> Value.Bool (get_u8 c <> 0)
  | 5 -> Value.Zval (Sqp_zorder.Bitstring.of_string (get_sized_str c))
  | n -> Storage_error.corrupt ~path:c.cpath (Printf.sprintf "unknown value tag %d" n)

let save_to ?io ~path ?(page_bytes = 4096) t =
  let io = match io with Some i -> i | None -> Sqp_storage.Faulty_io.none in
  (* Same atomic-replace protocol as Persist.save: journaled batch into a
     temporary store, then rename over the destination. *)
  let tmp = path ^ ".tmp" in
  let store = FP.create ~io ~page_bytes tmp in
  (try
     let capacity = FP.payload_capacity store in
     let put payload =
       if Bytes.length payload > capacity then
         invalid_arg
           (Printf.sprintf
              "Stored.save_to: page payload of %d bytes exceeds capacity %d; raise \
               page_bytes or lower tuples_per_page"
              (Bytes.length payload) capacity);
       ignore (FP.alloc store payload)
     in
     FP.begin_batch store;
     put (encode_rel_meta t);
     Array.iter (fun pid -> put (encode_rel_page (Pager.read t.pager pid))) t.page_ids;
     FP.commit_batch store;
     FP.close store
   with e ->
     FP.close store;
     (try Sys.remove tmp with Sys_error _ -> ());
     (try Sys.remove (Sqp_storage.Journal.journal_path tmp) with Sys_error _ -> ());
     raise e);
  Sqp_storage.Faulty_io.rename io ~src:tmp ~dst:path

let load_from ?io ?pool_capacity ?policy ~path () =
  let io = match io with Some i -> i | None -> Sqp_storage.Faulty_io.none in
  let fp = FP.open_existing ~io path in
  Fun.protect
    ~finally:(fun () -> FP.close fp)
    (fun () ->
      let meta = ref None in
      let tuples = ref [] in
      FP.iter fp (fun _ payload ->
          let c = { cpath = path; buf = payload; pos = 0 } in
          match !meta with
          | None ->
              if get_str c 4 <> rel_magic then
                Storage_error.corrupt ~path "bad relation metadata page";
              let tpp = get_u16 c in
              let cardinality = Int64.to_int (get_i64 c) in
              let name_len = get_u16 c in
              let name = get_str c name_len in
              let nattrs = get_u16 c in
              let attrs = ref [] in
              for _ = 1 to nattrs do
                let ty = ty_of_tag ~path (get_u8 c) in
                let len = get_u16 c in
                attrs := (get_str c len, ty) :: !attrs
              done;
              let attrs = List.rev !attrs in
              meta := Some (tpp, cardinality, name, Schema.make attrs)
          | Some (_, _, _, schema) ->
              let arity = Schema.arity schema in
              let count = get_u16 c in
              for _ = 1 to count do
                let tup = Array.make arity Value.Null in
                for i = 0 to arity - 1 do
                  tup.(i) <- get_value c
                done;
                tuples := tup :: !tuples
              done);
      match !meta with
      | None -> Storage_error.corrupt ~path "empty store: no relation metadata page"
      | Some (tuples_per_page, cardinality, name, schema) ->
          let tuples = List.rev !tuples in
          if List.length tuples <> cardinality then
            Storage_error.corrupt ~path
              (Printf.sprintf "tuple count mismatch: metadata says %d, found %d" cardinality
                 (List.length tuples));
          store ~name ~tuples_per_page ?pool_capacity ?policy
            (Relation.make ~name schema tuples))

let scan t =
  Mutex.lock t.latch;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.latch)
    (fun () ->
      (* Forward page order (a real sequential scan), accumulating
         reversed. *)
      let out = ref [] in
      for p = 0 to Array.length t.page_ids - 1 do
        let page = Buffer_pool.get t.pool t.page_ids.(p) in
        for k = 0 to Array.length page - 1 do
          out := page.(k) :: !out
        done
      done;
      Relation.make ~name:t.name t.schema (List.rev !out))
