(** Relations materialized onto the simulated disk (Section 5's page
    model applied to the relational layer).

    A stored relation chunks its tuples into fixed-size pages on a
    private {!Sqp_storage.Pager} and reads them back through a
    {!Sqp_storage.Buffer_pool}, so scanning it {e costs page accesses} —
    the unit the paper measures — and those costs show up in the
    relation's {!stats} exactly like the B+-tree's do.  [Plan.Scan_stored]
    scans one of these inside a query plan, which is what lets EXPLAIN
    ANALYZE attribute page reads, buffer hits and misses to individual
    plan operators. *)

type t
(** A paged relation: schema + tuples chunked into pager pages, fronted
    by a buffer pool. *)

val store :
  ?name:string ->
  ?tuples_per_page:int ->
  ?pool_capacity:int ->
  ?policy:Sqp_storage.Buffer_pool.policy ->
  Relation.t ->
  t
(** Materialize [r] onto a fresh simulated disk.  [tuples_per_page]
    (default 32) is the page capacity — the paper's "20 points per page"
    knob; [pool_capacity] (default 8 frames) and [policy] (default LRU)
    configure the buffer pool.  Writing the pages is itself counted (one
    allocation + one physical write per page).
    @raise Invalid_argument if [tuples_per_page < 1].  [name] defaults to
    the relation's name. *)

val name : t -> string
(** The relation's name (possibly [""]). *)

val schema : t -> Schema.t
(** The stored schema. *)

val cardinality : t -> int
(** Tuple count (known without touching pages). *)

val pages : t -> int
(** Number of data pages the tuples occupy. *)

val tuples_per_page : t -> int
(** Page capacity this relation was stored with. *)

val stats : t -> Sqp_storage.Stats.t
(** The {e live} access counters of the backing disk (shared by the pager
    and its buffer pool).  Snapshot before/after an operation to charge
    its page accesses, as [Plan.run_analyze] does. *)

val scan : t -> Relation.t
(** Read every page (in order, through the buffer pool) and rebuild the
    relation.  Each scan costs [pages t] buffer-pool lookups; hits and
    misses depend on pool capacity and what ran before.  Scans of the
    same relation from concurrent threads are serialized on an internal
    latch (the buffer pool's replacement state is unsynchronized), so
    server sessions may share one catalog safely. *)

(** {1 Durable snapshots}

    The in-memory pager above simulates access costs; these two dump and
    restore a stored relation through the journaled, checksummed
    {!Sqp_storage.File_pager}, one store page per in-memory page group,
    with the same atomic-replace protocol as the index's [Persist.save]
    (journaled batch into [path ^ ".tmp"], then rename). *)

val save_to :
  ?io:Sqp_storage.Faulty_io.injector ->
  path:string ->
  ?page_bytes:int ->
  t ->
  unit
(** Write the relation (schema, name, page grouping and all tuples) to a
    store file at [path], atomically.  [page_bytes] defaults to 4096.
    @raise Invalid_argument if a page group encodes to more than a store
    page holds — raise [page_bytes] or re-[store] with fewer
    [tuples_per_page]. *)

val load_from :
  ?io:Sqp_storage.Faulty_io.injector ->
  ?pool_capacity:int ->
  ?policy:Sqp_storage.Buffer_pool.policy ->
  path:string ->
  unit ->
  t
(** Rebuild a stored relation from a file written by {!save_to}; the
    original name, schema, tuple order and [tuples_per_page] are
    restored ([pool_capacity]/[policy] configure the fresh buffer pool).
    @raise Sqp_storage.Storage_error.Corrupt on format or checksum
    errors. *)
