(* Binary codecs for values, schemas, relations and closure-free plans.
   Everything here must be total on hostile input: decoders bounds-check
   through the cursor and raise only [Corrupt]. *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

type cursor = { buf : string; mutable pos : int }

let cursor buf = { buf; pos = 0 }

let cursor_at buf pos =
  if pos < 0 || pos > String.length buf then invalid_arg "Wire.cursor_at";
  { buf; pos }

let remaining c = String.length c.buf - c.pos
let at_end c = remaining c = 0

let need c n what = if remaining c < n then corrupt "truncated %s" what

(* {1 Scalars} *)

let write_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let read_u8 c =
  need c 1 "u8";
  let v = Char.code c.buf.[c.pos] in
  c.pos <- c.pos + 1;
  v

let write_u32 b v =
  if v < 0 || v > 0xffff_ffff then invalid_arg "Wire.write_u32";
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (v land 0xff))

let read_u32 c =
  need c 4 "u32";
  let byte i = Char.code c.buf.[c.pos + i] in
  let v = (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3 in
  c.pos <- c.pos + 4;
  v

let write_i64 b v =
  let v = Int64.of_int v in
  for i = 7 downto 0 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL)))
  done

let read_i64 c =
  need c 8 "i64";
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code c.buf.[c.pos + i]))
  done;
  c.pos <- c.pos + 8;
  Int64.to_int !v

let write_string b s =
  write_u32 b (String.length s);
  Buffer.add_string b s

let read_string c =
  let n = read_u32 c in
  need c n "string body";
  let s = String.sub c.buf c.pos n in
  c.pos <- c.pos + n;
  s

let write_int_array b a =
  write_u32 b (Array.length a);
  Array.iter (write_i64 b) a

let read_int_array c =
  let n = read_u32 c in
  if n > 64 then corrupt "dimension count %d" n;
  Array.init n (fun _ -> read_i64 c)

let write_point_list b points =
  write_u32 b (List.length points);
  List.iter
    (fun (p, payload) ->
      write_int_array b p;
      write_i64 b payload)
    points

let read_point_list c =
  let n = read_u32 c in
  let out = ref [] in
  for _ = 1 to n do
    let p = read_int_array c in
    let payload = read_i64 c in
    out := (p, payload) :: !out
  done;
  List.rev !out

(* {1 Bitstrings}

   Bit length, then the bits packed MSB-first — the same layout
   [Sqp_zorder.Bitstring] uses internally, rebuilt bit by bit through its
   public interface. *)

let write_bitstring b bits =
  let module B = Sqp_zorder.Bitstring in
  let n = B.length bits in
  write_u32 b n;
  let byte = ref 0 in
  for i = 0 to n - 1 do
    if B.get bits i then byte := !byte lor (0x80 lsr (i mod 8));
    if i mod 8 = 7 then begin
      Buffer.add_char b (Char.chr !byte);
      byte := 0
    end
  done;
  if n mod 8 <> 0 then Buffer.add_char b (Char.chr !byte)

let read_bitstring c =
  let module B = Sqp_zorder.Bitstring in
  let n = read_u32 c in
  let nbytes = (n + 7) / 8 in
  need c nbytes "bitstring body";
  let base = c.pos in
  let bits =
    B.init n (fun i ->
        Char.code c.buf.[base + (i / 8)] land (0x80 lsr (i mod 8)) <> 0)
  in
  c.pos <- c.pos + nbytes;
  bits

(* {1 Values} *)

let write_value b (v : Value.t) =
  match v with
  | Value.Null -> write_u8 b 0
  | Value.Int i ->
      write_u8 b 1;
      write_i64 b i
  | Value.Float f ->
      write_u8 b 2;
      let bits = Int64.bits_of_float f in
      for i = 7 downto 0 do
        Buffer.add_char b
          (Char.chr
             (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xffL)))
      done
  | Value.Str s ->
      write_u8 b 3;
      write_string b s
  | Value.Bool bo ->
      write_u8 b 4;
      write_u8 b (if bo then 1 else 0)
  | Value.Zval z ->
      write_u8 b 5;
      write_bitstring b z

let read_value c : Value.t =
  match read_u8 c with
  | 0 -> Value.Null
  | 1 -> Value.Int (read_i64 c)
  | 2 ->
      need c 8 "float";
      let bits = ref 0L in
      for i = 0 to 7 do
        bits :=
          Int64.logor (Int64.shift_left !bits 8)
            (Int64.of_int (Char.code c.buf.[c.pos + i]))
      done;
      c.pos <- c.pos + 8;
      Value.Float (Int64.float_of_bits !bits)
  | 3 -> Value.Str (read_string c)
  | 4 -> (
      match read_u8 c with
      | 0 -> Value.Bool false
      | 1 -> Value.Bool true
      | n -> corrupt "bool byte %d" n)
  | 5 -> Value.Zval (read_bitstring c)
  | t -> corrupt "unknown value tag %d" t

(* {1 Schemas and relations} *)

let ty_code : Value.ty -> int = function
  | Value.TInt -> 0
  | Value.TFloat -> 1
  | Value.TStr -> 2
  | Value.TBool -> 3
  | Value.TZval -> 4

let ty_of_code = function
  | 0 -> Value.TInt
  | 1 -> Value.TFloat
  | 2 -> Value.TStr
  | 3 -> Value.TBool
  | 4 -> Value.TZval
  | n -> corrupt "unknown type code %d" n

let write_schema b s =
  let attrs = Schema.attrs s in
  write_u32 b (List.length attrs);
  List.iter
    (fun (name, ty) ->
      write_string b name;
      write_u8 b (ty_code ty))
    attrs

let read_schema c =
  let n = read_u32 c in
  if n > 10_000 then corrupt "schema arity %d" n;
  let attrs =
    List.init n (fun _ ->
        let name = read_string c in
        let ty = ty_of_code (read_u8 c) in
        (name, ty))
  in
  match Schema.make attrs with
  | s -> s
  | exception Invalid_argument m -> corrupt "bad schema: %s" m

let write_relation b r =
  write_string b (Relation.name r);
  write_schema b (Relation.schema r);
  write_u32 b (Relation.cardinality r);
  Relation.iter r (fun tu -> Array.iter (write_value b) tu)

let read_relation c =
  let name = read_string c in
  let schema = read_schema c in
  let count = read_u32 c in
  let arity = Schema.arity schema in
  (* Each value costs at least one tag byte, so a frame of [remaining]
     bytes cannot hold more than that many values — reject inflated
     counts before allocating. *)
  if count * (max arity 1) > remaining c then corrupt "relation count %d" count;
  let tuples =
    List.init count (fun _ -> Array.init arity (fun _ -> read_value c))
  in
  let check_tuple tu =
    List.iteri
      (fun i (attr, ty) ->
        match Value.type_of tu.(i) with
        | None -> ()
        | Some got ->
            if got <> ty then
              corrupt "attribute %s: value is %s, schema says %s" attr
                (Value.ty_to_string got) (Value.ty_to_string ty))
      (Schema.attrs schema)
  in
  List.iter check_tuple tuples;
  match Relation.make ~name schema tuples with
  | r -> r
  | exception Invalid_argument m -> corrupt "bad relation: %s" m

(* {1 Plans} *)

type plan =
  | Scan of string
  | Select_equals of string * Value.t * plan
  | Select_between of string * Value.t * Value.t * plan
  | Project of string list * plan
  | Project_all of string list * plan
  | Rename of (string * string) list * plan
  | Sort of string list * plan
  | Natural_join of plan * plan
  | Spatial_join of { zl : string; zr : string; left : plan; right : plan }
  | Product of plan * plan
  | Union of plan * plan

let max_plan_depth = 64

exception Unknown_relation of string

let to_plan ~resolve plan =
  let rec go = function
    | Scan name -> (
        match resolve name with
        | Some p -> p
        | None -> raise (Unknown_relation name))
    | Select_equals (attr, v, p) -> Plan.Select (Plan.attr_equals attr v, go p)
    | Select_between (attr, lo, hi, p) ->
        Plan.Select (Plan.attr_between attr lo hi, go p)
    | Project (names, p) -> Plan.Project (names, go p)
    | Project_all (names, p) -> Plan.Project_all (names, go p)
    | Rename (renames, p) -> Plan.Rename (renames, go p)
    | Sort (keys, p) -> Plan.Sort (keys, go p)
    | Natural_join (a, b) -> Plan.Natural_join (go a, go b)
    | Spatial_join { zl; zr; left; right } ->
        Plan.Spatial_join { zl; zr; left = go left; right = go right; impl = None }
    | Product (a, b) -> Plan.Product (go a, go b)
    | Union (a, b) -> Plan.Union (go a, go b)
  in
  go plan

let write_string_list b l =
  write_u32 b (List.length l);
  List.iter (write_string b) l

let read_string_list c =
  let n = read_u32 c in
  if n > remaining c then corrupt "string list length %d" n;
  List.init n (fun _ -> read_string c)

let rec write_plan b = function
  | Scan name ->
      write_u8 b 1;
      write_string b name
  | Select_equals (attr, v, p) ->
      write_u8 b 2;
      write_string b attr;
      write_value b v;
      write_plan b p
  | Select_between (attr, lo, hi, p) ->
      write_u8 b 3;
      write_string b attr;
      write_value b lo;
      write_value b hi;
      write_plan b p
  | Project (names, p) ->
      write_u8 b 4;
      write_string_list b names;
      write_plan b p
  | Project_all (names, p) ->
      write_u8 b 5;
      write_string_list b names;
      write_plan b p
  | Rename (renames, p) ->
      write_u8 b 6;
      write_u32 b (List.length renames);
      List.iter
        (fun (o, n) ->
          write_string b o;
          write_string b n)
        renames;
      write_plan b p
  | Sort (keys, p) ->
      write_u8 b 7;
      write_string_list b keys;
      write_plan b p
  | Natural_join (a, b') ->
      write_u8 b 8;
      write_plan b a;
      write_plan b b'
  | Spatial_join { zl; zr; left; right } ->
      write_u8 b 9;
      write_string b zl;
      write_string b zr;
      write_plan b left;
      write_plan b right
  | Product (a, b') ->
      write_u8 b 10;
      write_plan b a;
      write_plan b b'
  | Union (a, b') ->
      write_u8 b 11;
      write_plan b a;
      write_plan b b'

let read_plan c =
  let rec go depth =
    if depth > max_plan_depth then corrupt "plan deeper than %d" max_plan_depth;
    match read_u8 c with
    | 1 -> Scan (read_string c)
    | 2 ->
        let attr = read_string c in
        let v = read_value c in
        Select_equals (attr, v, go (depth + 1))
    | 3 ->
        let attr = read_string c in
        let lo = read_value c in
        let hi = read_value c in
        Select_between (attr, lo, hi, go (depth + 1))
    | 4 ->
        let names = read_string_list c in
        Project (names, go (depth + 1))
    | 5 ->
        let names = read_string_list c in
        Project_all (names, go (depth + 1))
    | 6 ->
        let n = read_u32 c in
        if n > remaining c then corrupt "rename list length %d" n;
        let renames =
          List.init n (fun _ ->
              let o = read_string c in
              let n = read_string c in
              (o, n))
        in
        Rename (renames, go (depth + 1))
    | 7 ->
        let keys = read_string_list c in
        Sort (keys, go (depth + 1))
    | 8 ->
        let a = go (depth + 1) in
        let b = go (depth + 1) in
        Natural_join (a, b)
    | 9 ->
        let zl = read_string c in
        let zr = read_string c in
        let left = go (depth + 1) in
        let right = go (depth + 1) in
        Spatial_join { zl; zr; left; right }
    | 10 ->
        let a = go (depth + 1) in
        let b = go (depth + 1) in
        Product (a, b)
    | 11 ->
        let a = go (depth + 1) in
        let b = go (depth + 1) in
        Union (a, b)
    | t -> corrupt "unknown plan tag %d" t
  in
  go 0

(* {1 Convenience} *)

let encode writer v =
  let b = Buffer.create 256 in
  writer b v;
  Buffer.contents b

let decode reader s =
  let c = cursor s in
  match reader c with
  | v -> if at_end c then Ok v else Error "trailing bytes"
  | exception Corrupt m -> Error m
