(** Binary (de)serialization of relational data and plans for the wire.

    The network layer ({!Sqp_server.Protocol}) ships query results and —
    in the request direction — {e plans} between processes.  A full
    {!Plan.t} cannot cross a process boundary because selection
    predicates are closures; this module therefore defines {!plan}, the
    declarative subset a client may send: base relations are referred to
    {e by name} (resolved against the server's catalog) and selections
    are restricted to the two predicate constructors {!Plan.attr_equals}
    and {!Plan.attr_between} whose meaning is pure data.

    All codecs are length-safe: {!type-cursor} reads never step past the
    end of the buffer, decoders raise only {!Corrupt} (never
    out-of-bounds exceptions), and every [encode]/[decode] pair
    roundtrips — property-tested with seeded fuzz in
    [test/test_protocol.ml].

    Scalars are fixed-width big-endian: [u8]/[u32] for tags and counts,
    two's-complement [i64] for ints, IEEE-754 bits for floats.  Strings
    and bitstrings are length-prefixed. *)

exception Corrupt of string
(** Raised by every [decode_*]/[read_*] function on malformed input:
    truncated buffers, unknown tags, lengths past the end, arity
    mismatches, over-deep plan trees. *)

(** {1 Cursors}

    A cursor is a read position over an immutable buffer; all [read_*]
    functions bump it.  Kept abstract so decoders cannot skip the bounds
    checks. *)

type cursor

val cursor : string -> cursor
(** A cursor at position 0. *)

val cursor_at : string -> int -> cursor
(** A cursor at byte [pos].
    @raise Invalid_argument if [pos] is out of bounds. *)

val remaining : cursor -> int
(** Bytes left to read. *)

val at_end : cursor -> bool

(** {1 Scalar codecs} *)

val write_u8 : Buffer.t -> int -> unit
val read_u8 : cursor -> int

val write_u32 : Buffer.t -> int -> unit
(** @raise Invalid_argument if negative or [>= 2^32]. *)

val read_u32 : cursor -> int

val write_i64 : Buffer.t -> int -> unit
val read_i64 : cursor -> int

val write_string : Buffer.t -> string -> unit
(** [u32] byte length, then the bytes. *)

val read_string : cursor -> string

val write_int_array : Buffer.t -> int array -> unit
(** [u32] count, then each element as [i64] — the codec for point
    coordinates and other small integer vectors (range bounds, the
    insert/delete mutation frames). *)

val read_int_array : cursor -> int array
(** @raise Corrupt if the advertised count exceeds 64 (a coordinate
    vector, not bulk data). *)

val write_point_list : Buffer.t -> (int array * int) list -> unit
(** [u32] count, then each (coordinates, payload) pair — the body of an
    insert frame. *)

val read_point_list : cursor -> (int array * int) list

(** {1 Relational codecs} *)

val write_value : Buffer.t -> Value.t -> unit
val read_value : cursor -> Value.t

val write_schema : Buffer.t -> Schema.t -> unit
val read_schema : cursor -> Schema.t

val write_relation : Buffer.t -> Relation.t -> unit
(** Name, schema, then every tuple (each value self-describing). *)

val read_relation : cursor -> Relation.t
(** @raise Corrupt also when a tuple's value types contradict the
    schema. *)

(** {1 Plans} *)

type plan =
  | Scan of string  (** a named relation of the server's catalog *)
  | Select_equals of string * Value.t * plan
  | Select_between of string * Value.t * Value.t * plan
  | Project of string list * plan
  | Project_all of string list * plan
  | Rename of (string * string) list * plan
  | Sort of string list * plan
  | Natural_join of plan * plan
  | Spatial_join of { zl : string; zr : string; left : plan; right : plan }
  | Product of plan * plan
  | Union of plan * plan
      (** The closure-free plan algebra a client may send.  Mirrors
          {!Plan.t} except that leaves are names and selections are the
          two data-only predicates. *)

val max_plan_depth : int
(** Decoder nesting bound (prevents stack abuse from hostile frames). *)

exception Unknown_relation of string
(** Raised by {!to_plan} when [resolve] has no relation of that name. *)

val to_plan : resolve:(string -> Plan.t option) -> plan -> Plan.t
(** Instantiate a wire plan against a catalog: every [Scan name] becomes
    [resolve name], selections become {!Plan.attr_equals} /
    {!Plan.attr_between}.
    @raise Unknown_relation on an unresolvable name. *)

val write_plan : Buffer.t -> plan -> unit
val read_plan : cursor -> plan

(** {1 Convenience} *)

val encode : (Buffer.t -> 'a -> unit) -> 'a -> string
(** Run a writer into a fresh buffer. *)

val decode : (cursor -> 'a) -> string -> ('a, string) result
(** Run a reader over a whole buffer; [Error] if it raises {!Corrupt}
    or leaves trailing bytes. *)
