module Metrics = Sqp_obs.Metrics

type t = {
  max_in_flight : int;
  max_queue : int;
  m : Mutex.t;
  mutable in_flight : int;
  mutable queue_depth : int;
  mutable is_draining : bool;
  g_in_flight : Metrics.gauge;
  g_queue : Metrics.gauge;
  c_shed : Metrics.counter;
  c_timeouts : Metrics.counter;
  h_queue_wait : Metrics.histogram;
}

let create ?metrics ~max_in_flight ~max_queue () =
  if max_in_flight < 1 then invalid_arg "Admission.create: max_in_flight < 1";
  if max_queue < 0 then invalid_arg "Admission.create: max_queue < 0";
  let reg = match metrics with Some m -> m | None -> Metrics.global () in
  {
    max_in_flight;
    max_queue;
    m = Mutex.create ();
    in_flight = 0;
    queue_depth = 0;
    is_draining = false;
    g_in_flight = Metrics.gauge reg "server.in_flight";
    g_queue = Metrics.gauge reg "server.queue_depth";
    c_shed = Metrics.counter reg "server.shed";
    c_timeouts = Metrics.counter reg "server.timeouts";
    h_queue_wait = Metrics.histogram reg "server.queue_wait_us";
  }

type outcome = Admitted | Shed | Timed_out | Draining

(* The queue-wait loop polls at 1ms rather than using Condition
   variables: OCaml's [Condition] has no timed wait, and deadlines must
   fire even when no slot is ever released.  At server time scales the
   extra millisecond of wake-up latency is noise. *)
let poll_interval = 0.001

let admit t =
  t.in_flight <- t.in_flight + 1;
  Metrics.set_gauge t.g_in_flight t.in_flight

let acquire ?deadline t =
  let enqueued_at = Unix.gettimeofday () in
  Mutex.lock t.m;
  if t.is_draining then begin
    Mutex.unlock t.m;
    Draining
  end
  else if t.in_flight < t.max_in_flight then begin
    admit t;
    Mutex.unlock t.m;
    Admitted
  end
  else if t.queue_depth >= t.max_queue then begin
    Mutex.unlock t.m;
    Metrics.incr t.c_shed;
    Shed
  end
  else begin
    t.queue_depth <- t.queue_depth + 1;
    Metrics.set_gauge t.g_queue t.queue_depth;
    let leave outcome =
      t.queue_depth <- t.queue_depth - 1;
      Metrics.set_gauge t.g_queue t.queue_depth;
      Mutex.unlock t.m;
      Metrics.observe t.h_queue_wait
        (int_of_float ((Unix.gettimeofday () -. enqueued_at) *. 1e6));
      (match outcome with Timed_out -> Metrics.incr t.c_timeouts | _ -> ());
      outcome
    in
    let rec wait () =
      if t.is_draining then leave Draining
      else if
        match deadline with
        | Some d -> Unix.gettimeofday () >= d
        | None -> false
      then leave Timed_out
      else if t.in_flight < t.max_in_flight then begin
        admit t;
        leave Admitted
      end
      else begin
        Mutex.unlock t.m;
        Thread.delay poll_interval;
        Mutex.lock t.m;
        wait ()
      end
    in
    wait ()
  end

let release t =
  Mutex.lock t.m;
  if t.in_flight <= 0 then begin
    Mutex.unlock t.m;
    invalid_arg "Admission.release without acquire"
  end;
  t.in_flight <- t.in_flight - 1;
  Metrics.set_gauge t.g_in_flight t.in_flight;
  Mutex.unlock t.m

let with_slot ?deadline t f =
  match acquire ?deadline t with
  | Admitted ->
      Fun.protect ~finally:(fun () -> release t) (fun () -> Ok (f ()))
  | (Shed | Timed_out | Draining) as o -> Error o

let begin_drain t =
  Mutex.lock t.m;
  t.is_draining <- true;
  Mutex.unlock t.m

let draining t =
  Mutex.lock t.m;
  let d = t.is_draining in
  Mutex.unlock t.m;
  d

let await_drain t =
  let rec wait () =
    Mutex.lock t.m;
    let busy = t.in_flight > 0 || t.queue_depth > 0 in
    Mutex.unlock t.m;
    if busy then begin
      Thread.delay poll_interval;
      wait ()
    end
  in
  wait ()

let in_flight t =
  Mutex.lock t.m;
  let n = t.in_flight in
  Mutex.unlock t.m;
  n

let queued t =
  Mutex.lock t.m;
  let n = t.queue_depth in
  Mutex.unlock t.m;
  n

let stats t =
  Mutex.lock t.m;
  let s = (t.in_flight, t.queue_depth, t.is_draining) in
  Mutex.unlock t.m;
  s
