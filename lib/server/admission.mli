(** Admission control: a bounded in-flight limit with a bounded wait
    queue, per-request deadlines, load shedding and graceful drain.

    The server admits at most [max_in_flight] queries into execution.
    When every slot is busy, up to [max_queue] callers wait; beyond
    that, {!acquire} returns {!Shed} immediately — the caller answers
    [Overloaded] and the connection survives (load shedding, not
    collapse).  A queued caller whose deadline passes leaves the queue
    with {!Timed_out}, freeing its queue slot.  After {!begin_drain},
    new callers get {!Draining} while already-admitted work finishes;
    {!await_drain} blocks until the last slot is released.

    All transitions are recorded in an {!Sqp_obs.Metrics} registry:
    [server.in_flight] and [server.queue_depth] gauges,
    [server.queue_wait_us] histogram, [server.shed] / [server.timeouts]
    counters — the backpressure half of the serving dashboards. *)

type t

val create :
  ?metrics:Sqp_obs.Metrics.t -> max_in_flight:int -> max_queue:int -> unit -> t
(** [metrics] defaults to {!Sqp_obs.Metrics.global}.
    @raise Invalid_argument if [max_in_flight < 1] or [max_queue < 0]. *)

type outcome =
  | Admitted  (** a slot is held; the caller must {!release} it *)
  | Shed  (** queue full — answer [Overloaded] *)
  | Timed_out  (** deadline expired while queued *)
  | Draining  (** {!begin_drain} was called — answer [Shutting_down] *)

val acquire : ?deadline:float -> t -> outcome
(** Take an execution slot, waiting in the queue if necessary.
    [deadline] is an absolute {!Unix.gettimeofday} instant.  Only
    {!Admitted} transfers ownership of a slot. *)

val release : t -> unit
(** Return a slot taken by a successful {!acquire}.  Must be called
    exactly once per {!Admitted}. *)

val with_slot :
  ?deadline:float -> t -> (unit -> 'a) -> ('a, outcome) result
(** [with_slot t f]: acquire, run [f], always release; [Error] carries
    the non-admission outcome. *)

val begin_drain : t -> unit
(** Stop admitting (idempotent).  Queued callers leave with
    {!Draining}; in-flight callers are unaffected. *)

val draining : t -> bool

val await_drain : t -> unit
(** Block until no query is in flight or queued.  Call after
    {!begin_drain} (otherwise new admissions may keep it waiting). *)

val in_flight : t -> int
val queued : t -> int

val stats : t -> int * int * bool
(** [(in_flight, queued, draining)] read under one lock — a consistent
    triple for health reports. *)
